// Command ldmo-factory builds a labeled (layout, decomposition,
// optimized-mask, EPE) dataset corpus at scale: a supervisor shards the
// layout space across N worker processes (this same binary re-exec'd with
// -worker) that coordinate purely through the filesystem — lease-claimed
// shards, heartbeat reclaim, poison quarantine — and publishes the finished
// corpus under a sealed, content-addressed manifest.
//
// Usage:
//
//	ldmo-factory -dir corpus -count 200 -workers 8
//	ldmo-factory -dir corpus -resume              # continue after any crash
//	ldmo-factory -dir corpus -inprocess           # goroutine workers, no re-exec
//	ldmo-factory -dir corpus -warm pairs.gob      # extract warm-start training
//	                                              # pairs from a built corpus
//
// Robustness: every durable write is atomic and the build is crash-only — a
// SIGKILL'd worker (or supervisor) loses at most in-flight labeling work,
// and -resume converges to a corpus byte-identical to an undisturbed run. A
// layout that kills its worker -poison-k times is quarantined as
// shard_NNNNN.poison with the panic and stack recorded, so the build always
// terminates with an explicit poison list instead of crash-looping.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"syscall"
	"time"

	"ldmo/internal/factory"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/runx"
	"ldmo/internal/sampling"
)

func main() {
	dir := flag.String("dir", "ldmo-corpus", "factory directory (spec, shards, manifest)")
	count := flag.Int("count", 50, "number of layouts to generate and label")
	seed := flag.Int64("seed", 7, "layout generator seed")
	workers := flag.Int("workers", 0, "worker processes (0 = GOMAXPROCS / LDMO_WORKERS)")
	resume := flag.Bool("resume", false, "continue an initialized factory directory")
	deadline := flag.Duration("deadline", 0, "overall wall budget (0 = unlimited)")
	poisonK := flag.Int("poison-k", 0, "worker deaths before a layout is quarantined (0 = 3)")
	fast := flag.Bool("fast", false, "few-iteration ILT labels (smoke-scale corpus)")
	inprocess := flag.Bool("inprocess", false, "run workers as goroutines instead of processes")
	workerMode := flag.Bool("worker", false, "internal: run as a factory worker (set by the supervisor)")
	warmOut := flag.String("warm", "", "extract warm-start training pairs from -dir into this file instead of building")
	warmPer := flag.Int("warm-per", 0, "decompositions harvested per layout with -warm (0 = 2)")
	warmSize := flag.Int("warm-size", 0, "warm-pair field edge with -warm (0 = the spec's image size)")
	quiet := flag.Bool("q", false, "suppress supervision logging")
	flag.Parse()

	log := os.Stderr
	if *quiet {
		log = nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	if *workerMode {
		runWorker(ctx, log)
		return
	}

	if *warmOut != "" {
		extractWarm(ctx, *dir, *warmOut, *warmPer, *warmSize, log)
		return
	}

	pool, err := layout.GenerateSet(*seed, *count, layout.DefaultGenParams())
	if err != nil {
		fatalf("generate layouts: %v", err)
	}
	cfg := sampling.DefaultConfig()
	if *fast {
		cfg.ILT.MaxIters = 4
	}
	spec := factory.Spec{Layouts: pool, Sampling: cfg, PoisonK: *poisonK}

	self, err := os.Executable()
	if err != nil {
		fatalf("locate own binary: %v", err)
	}
	bcfg := factory.Config{
		Dir:     *dir,
		Spec:    spec,
		Workers: *workers,
		Resume:  *resume,
		Log:     log,
	}
	if !*inprocess {
		bcfg.WorkerCommand = func(dir string) *exec.Cmd {
			cmd := exec.Command(self, "-worker", "-q")
			cmd.Stderr = os.Stderr
			return cmd
		}
	}

	start := time.Now()
	rep, err := factory.Build(ctx, bcfg)
	if err != nil {
		if runx.Interrupted(err) {
			fmt.Fprintf(os.Stderr, "ldmo-factory: interrupted with %d/%d shards sealed; rerun with -resume to continue\n",
				rep.Sealed, rep.Layouts)
			os.Exit(130)
		}
		fatalf("%v", err)
	}
	fmt.Printf("corpus %s: %d layouts, %d sealed, %d poisoned, %d kept after dedupe (%d clusters)\n",
		*dir, rep.Layouts, rep.Sealed, len(rep.Poisoned), rep.Kept, rep.Clusters)
	fmt.Printf("supervision: %d reclaims, %d restarts, %d hung kills in %.1fs\n",
		rep.Reclaims, rep.Restarts, rep.HungKills, time.Since(start).Seconds())
	for _, i := range rep.Poisoned {
		p, err := factory.ReadPoison(*dir, i)
		if err != nil {
			fmt.Printf("poison shard %05d: record unreadable: %v\n", i, err)
			continue
		}
		fmt.Printf("poison shard %05d (%s): %d deaths, last: %s\n", i, p.Layout, p.Attempts, p.Reason)
	}
	fmt.Printf("manifest: %s\n", rep.ManifestPath)
}

// extractWarm is the -warm mode: replay the sealed spec's labeling path over
// an initialized factory directory and publish the (cold mask, optimized
// field) pairs as a sealed warm-start training dataset.
func extractWarm(ctx context.Context, dir, out string, per, size int, log *os.File) {
	var sink io.Writer
	if log != nil {
		sink = log
	}
	ds, err := factory.ExtractWarmDataset(ctx, dir, sampling.WarmPairConfig{PerLayout: per, Size: size}, sink)
	if err != nil {
		if runx.Interrupted(err) {
			fmt.Fprintf(os.Stderr, "ldmo-factory: warm-pair extraction interrupted\n")
			os.Exit(130)
		}
		fatalf("extract warm pairs: %v", err)
	}
	if err := model.SaveWarmDataset(ds, out); err != nil {
		fatalf("save warm pairs: %v", err)
	}
	fmt.Printf("wrote %s: %d warm pairs at %dx%d from %s\n", out, ds.Len(), ds.Size, ds.Size, dir)
}

// runWorker serves one worker process: the supervisor passes the factory
// directory and identity through the environment.
func runWorker(ctx context.Context, log *os.File) {
	dir := os.Getenv(factory.EnvWorkerDir)
	if dir == "" {
		fatalf("-worker requires %s in the environment", factory.EnvWorkerDir)
	}
	var sink io.Writer
	if log != nil {
		sink = log
	}
	err := factory.RunWorker(ctx, dir, os.Getenv(factory.EnvWorkerToken), sink)
	switch {
	case err == nil:
		os.Exit(0)
	case runx.Interrupted(err):
		os.Exit(130)
	default:
		fmt.Fprintf(os.Stderr, "ldmo-factory worker: %v\n", err)
		if _, ok := factory.AsCrash(err); ok {
			os.Exit(3) // the crash record is durably on disk
		}
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldmo-factory: "+format+"\n", args...)
	os.Exit(1)
}
