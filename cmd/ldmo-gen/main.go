// Command ldmo-gen generates the synthetic contact-layout dataset standing
// in for the paper's 8000 NanGate-like designs, verifies it against the
// design rules, and writes one CSV per layout (pattern rectangles in nm).
//
// Usage:
//
//	ldmo-gen -n 100 -o layouts/          # 100 layouts as CSV into layouts/
//	ldmo-gen -n 100 -gds lib.gds         # the whole dataset as one GDSII file
//	ldmo-gen -n 10 -stats                # print statistics only
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"ldmo/internal/artifact"
	"ldmo/internal/gds"
	"ldmo/internal/layout"
)

func main() {
	n := flag.Int("n", 100, "number of layouts")
	seed := flag.Int64("seed", 1, "random seed")
	outDir := flag.String("o", "", "output directory for CSV files")
	gdsPath := flag.String("gds", "", "write the dataset as one GDSII library file")
	stats := flag.Bool("stats", false, "print dataset statistics instead of writing files")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	set, err := layout.GenerateSet(*seed, *n, layout.DefaultGenParams())
	if err != nil {
		fatalf("%v", err)
	}

	if *stats {
		counts := map[int]int{}
		classTotals := map[layout.Class]int{}
		cp := layout.DefaultClassifyParams()
		for _, l := range set {
			counts[len(l.Patterns)]++
			for _, c := range layout.Classify(l.Patterns, cp) {
				classTotals[c]++
			}
		}
		fmt.Printf("%d layouts (seed %d)\n", len(set), *seed)
		for k := 1; k <= 9; k++ {
			if counts[k] > 0 {
				fmt.Printf("  %d contacts: %d layouts\n", k, counts[k])
			}
		}
		fmt.Printf("pattern classes: SP %d, VP %d, NP %d\n",
			classTotals[layout.ClassSP], classTotals[layout.ClassVP], classTotals[layout.ClassNP])
		return
	}

	if *gdsPath != "" {
		// Atomic write: an interrupt or disk-full mid-export leaves either
		// the previous library or nothing, never a truncated stream.
		if err := artifact.AtomicWrite(*gdsPath, func(w io.Writer) error {
			return gds.Write(w, set)
		}); err != nil {
			fatalf("write gds: %v", err)
		}
		fmt.Printf("wrote %d layouts to %s\n", len(set), *gdsPath)
		if *outDir == "" {
			return
		}
	}
	if *outDir == "" {
		fatalf("need -o DIR, -gds FILE, or -stats")
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatalf("%v", err)
	}
	for i, l := range set {
		// Each CSV is written whole; an interrupt between files leaves only
		// complete layouts behind.
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "ldmo-gen: interrupted; %d/%d layouts written to %s\n", i, len(set), *outDir)
			os.Exit(130)
		}
		path := filepath.Join(*outDir, l.Name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fatalf("%v", err)
		}
		if err := l.WriteCSV(f); err != nil {
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Printf("wrote %d layouts to %s\n", len(set), *outDir)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldmo-gen: "+format+"\n", args...)
	os.Exit(1)
}
