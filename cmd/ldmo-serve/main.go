// Command ldmo-serve is the long-running mask-optimization service: a JSON
// HTTP API accepting layout jobs (library cell, generator seed, GDS upload,
// or CSV), running the decompose -> predict -> ILT flow asynchronously on
// the pipelined scheduler, and serving job status and results.
//
// Usage:
//
//	ldmo-serve -addr :8347 -dir /var/lib/ldmo/jobs
//	ldmo-serve -model pred.gob -queue 128 -workers 8
//	ldmo-serve -model pred.gob -warmstart warm.gob   # jobs may opt into
//	                                                 # learned ILT warm-start
//
// API:
//
//	POST /v1/jobs        submit  {"cell":"NAND3_X2"} | {"gen_seed":7} |
//	                             {"gds_b64":"..."} | {"csv":"..."}
//	                             + optional "fast", "deadline_ms",
//	                             "max_attempts", "name", "warm"
//	                     -> 202 accepted (job is durably queued)
//	                     -> 200 cached result (dedupe hit)
//	                     -> 429 + Retry-After when the queue is full
//	GET  /v1/jobs/{id}   job status + result
//	GET  /v1/jobs        job summaries
//	GET  /v1/stats       server counters
//	GET  /healthz        liveness (always 200 while the process runs)
//	GET  /readyz         readiness (503 while draining or saturated)
//
// Robustness: accepted jobs are sealed into artifact envelopes on disk, so a
// crash — including SIGKILL — loses nothing: on restart, queued and running
// jobs are requeued and recomputed to bit-identical results. SIGTERM drains
// gracefully: admission stops, running jobs checkpoint back to queued, and
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ldmo/internal/artifact"
	"ldmo/internal/model"
	"ldmo/internal/runx"
	"ldmo/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8347", "listen address")
	dir := flag.String("dir", "ldmo-jobs", "job store directory")
	modelPath := flag.String("model", "", "trained predictor file (optional)")
	warmPath := flag.String("warmstart", "", "trained ILT warm-start net (see ldmo-train -warmstart); applied to jobs submitted with \"warm\":true")
	queueCap := flag.Int("queue", 64, "admission queue capacity (full queue sheds with 429)")
	workers := flag.Int("workers", 0, "flow worker lanes (0 = GOMAXPROCS / LDMO_WORKERS)")
	wave := flag.Int("wave", 0, "max jobs per pipelined wave (0 = max(2, workers))")
	jobDeadline := flag.Duration("job-deadline", 0, "default per-job wall budget (0 = unlimited)")
	candIters := flag.Int("cand-iters", 0, "per-candidate ILT iteration cap (0 = optimizer default)")
	retries := flag.Int("retries", 0, "attempts per job for transient failures (0 = 3)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	quiet := flag.Bool("q", false, "suppress operational logging")
	flag.Parse()

	cfg := serve.Config{
		Dir:      *dir,
		QueueCap: *queueCap,
		Workers:  *workers,
		Wave:     *wave,
		Budget: runx.Budget{
			Wall:           *jobDeadline,
			CandidateIters: *candIters,
		},
		Retry:      runx.RetryConfig{Attempts: *retries},
		RetryAfter: *retryAfter,
	}
	if !*quiet {
		cfg.Log = os.Stderr
	}
	if *modelPath != "" {
		pred, err := model.Load(*modelPath)
		if err != nil {
			if artifact.Rejected(err) {
				fatalf("load model: %v\n  the file is damaged or from an incompatible build — re-export it with ldmo-train", err)
			}
			fatalf("load model: %v", err)
		}
		cfg.Scorer = pred
	}
	if *warmPath != "" {
		ws, err := model.LoadWarmStarter(*warmPath)
		if err != nil {
			if artifact.Rejected(err) {
				fatalf("load warm-start net: %v\n  the file is damaged or from an incompatible build — re-export it with ldmo-train -warmstart", err)
			}
			fatalf("load warm-start net: %v", err)
		}
		cfg.WarmStarter = ws
	}

	s, err := serve.NewServer(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	s.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	if !*quiet {
		fmt.Fprintf(os.Stderr, "ldmo-serve: listening on %s, job store %s\n", *addr, *dir)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("%v", err)
		}
	case got := <-sig:
		if !*quiet {
			fmt.Fprintf(os.Stderr, "ldmo-serve: %v: draining (admission stopped, checkpointing running jobs)\n", got)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "ldmo-serve: drain: %v\n", err)
			httpSrv.Close()
			os.Exit(1)
		}
		httpSrv.Shutdown(ctx)
		if !*quiet {
			fmt.Fprintln(os.Stderr, "ldmo-serve: drained; all accepted jobs are durable")
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldmo-serve: "+format+"\n", args...)
	os.Exit(1)
}
