// Command ldmo runs the deep-learning-driven LDMO flow (paper Fig. 2) on a
// library cell or a generated layout and reports the optimized masks'
// printability.
//
// Usage:
//
//	ldmo -cell NAND3_X2                  # run a library cell
//	ldmo -cell list                      # list library cells
//	ldmo -gen 7                          # run generated layout with seed 7
//	ldmo -model pred.gob -cell DFF_X1    # use a trained predictor
//	ldmo -cell BUF_X1 -out out/          # dump PGM images of masks/print
//	ldmo -cell BUF_X1 -fast              # coarse 8nm raster
//	ldmo -cell BUF_X1 -pw                # process-window analysis
//	ldmo -file my.gds                    # run a layout from a GDSII/CSV file
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"ldmo"
	"ldmo/internal/artifact"
	"ldmo/internal/core"
	"ldmo/internal/gds"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/pw"
)

func main() {
	cellName := flag.String("cell", "", "library cell name, or 'list'")
	genSeed := flag.Int64("gen", -1, "generate a random layout with this seed instead of -cell")
	filePath := flag.String("file", "", "layout file (.gds or .csv) instead of -cell")
	modelPath := flag.String("model", "", "trained predictor file (optional)")
	outDir := flag.String("out", "", "directory for PGM image dumps (optional)")
	fast := flag.Bool("fast", false, "coarse 8nm raster")
	procWin := flag.Bool("pw", false, "evaluate the optimized masks across process corners")
	deadline := flag.Duration("deadline", 0, "return the best result found after this wall time, e.g. 90s")
	candDeadline := flag.Duration("cand-deadline", 0, "per-candidate ILT wall budget before falling through")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *cellName == "list" {
		for i, name := range ldmo.CellNames() {
			fmt.Printf("%2d  %s\n", i+1, name)
		}
		return
	}

	var l ldmo.Layout
	var err error
	switch {
	case *cellName != "":
		l, err = ldmo.Cell(*cellName)
	case *filePath != "":
		l, err = loadLayoutFile(*filePath)
	case *genSeed >= 0:
		l, err = layout.Generate(rand.New(rand.NewSource(*genSeed)), layout.DefaultGenParams())
	default:
		fatalf("need -cell NAME, -file PATH, or -gen SEED (try -cell list)")
	}
	if err != nil {
		fatalf("%v", err)
	}

	var scorer core.Scorer
	if *modelPath != "" {
		pred, err := model.Load(*modelPath)
		if err != nil {
			if artifact.Rejected(err) {
				fatalf("load model: %v\n  the file is damaged or from an incompatible build — re-export it with ldmo-train", err)
			}
			fatalf("load model: %v", err)
		}
		scorer = pred
	}

	cfg := ldmo.DefaultFlowConfig()
	if *fast {
		cfg.ILT.Litho.Resolution = 8
	}
	cfg.Budget = ldmo.Budget{Wall: *deadline, CandidateWall: *candDeadline}
	flow := ldmo.NewFlow(scorer, cfg)
	res, err := flow.RunContext(ctx, l)
	if err != nil {
		if res.Interrupted {
			fatalf("interrupted before any usable result: %v", err)
		}
		fatalf("%v", err)
	}

	fmt.Printf("layout        %s (%d patterns)\n", l.Name, len(l.Patterns))
	fmt.Printf("candidates    %d generated, %d attempted", res.Candidates, res.Attempts)
	if res.Forced {
		fmt.Printf(" (all aborted; forced best-effort run)")
	}
	fmt.Println()
	if res.Interrupted {
		fmt.Printf("NOTE          run interrupted (%v budget); reporting best state reached\n", *deadline)
	}
	if res.ScorerFallback {
		fmt.Printf("NOTE          predictor failed (%v); fell back to generator order\n", res.ScorerErr)
	}
	fmt.Printf("decomposition %s\n", res.Chosen.Key())
	fmt.Printf("EPE           %d violations (max %.1fnm, mean %.1fnm)\n",
		res.ILT.EPE.Violations, res.ILT.EPE.MaxAbs, res.ILT.EPE.MeanAbs)
	fmt.Printf("L2 error      %.1f\n", res.ILT.L2)
	fmt.Printf("violations    %d bridges, %d missing, %d extra\n",
		res.ILT.Violations.Bridges, res.ILT.Violations.Missing, res.ILT.Violations.Extra)
	fmt.Printf("model time    %.1fs (DS %.1fs, MO %.1fs)\n",
		res.Seconds, res.Clock.PhaseSeconds(core.PhaseDS), res.Clock.PhaseSeconds(core.PhaseMO))

	if *procWin {
		an, err := pw.NewAnalyzer(l, cfg.ILT.Litho, nil)
		if err != nil {
			fatalf("%v", err)
		}
		rep := an.Analyze(res.ILT.M1, res.ILT.M2)
		fmt.Println("process window:")
		for _, c := range rep.Corners {
			fmt.Printf("  %-10s EPE %2d  L2 %8.1f  violations %d\n",
				c.Corner.Name, c.EPE.Violations, c.L2, c.Violations.Total())
		}
		fmt.Printf("  PV band area %d px (worst-corner EPE %d)\n", rep.PVBandArea, rep.WorstEPE())
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
		base := strings.ToLower(l.Name)
		dumps := map[string]*ldmo.Grid{
			"target": l.Rasterize(cfg.ILT.Litho.Resolution),
			"m1":     res.ILT.M1,
			"m2":     res.ILT.M2,
			"print":  res.ILT.Printed,
		}
		for tag, img := range dumps {
			path := filepath.Join(*outDir, fmt.Sprintf("%s_%s.pgm", base, tag))
			if err := img.SavePGM(path, 0, 1); err != nil {
				fatalf("save %s: %v", path, err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

// loadLayoutFile reads a layout from a .gds library (first structure) or a
// dataset .csv file.
func loadLayoutFile(path string) (ldmo.Layout, error) {
	f, err := os.Open(path)
	if err != nil {
		return ldmo.Layout{}, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".gds") {
		layouts, err := gds.Read(f)
		if err != nil {
			return ldmo.Layout{}, fmt.Errorf("%s: %w", path, err)
		}
		if len(layouts) == 0 {
			return ldmo.Layout{}, fmt.Errorf("%s contains no structures", path)
		}
		return layouts[0], nil
	}
	name := filepath.Base(path)
	name = strings.TrimSuffix(name, filepath.Ext(name))
	return layout.ReadCSV(f, name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldmo: "+format+"\n", args...)
	os.Exit(1)
}
