// Command ldmo-bench regenerates the paper's tables and figures on the
// reproduced system.
//
// Usage:
//
//	ldmo-bench -exp table1            # Table I (all four flows, 13 cells)
//	ldmo-bench -exp fig1b             # EPE convergence trajectories
//	ldmo-bench -exp fig1c             # DS/MO runtime split of [10]
//	ldmo-bench -exp fig7 -out figs/   # printed-image comparison + PGM dumps
//	ldmo-bench -exp fig8              # sampling-strategy comparison
//	ldmo-bench -exp ablation          # selection-policy ablation
//	ldmo-bench -exp parbench          # serial-vs-parallel OracleSelect,
//	                                  # emits BENCH_parallel.json
//	ldmo-bench -exp fftbench          # complex-vs-real spectral engine A/B
//	                                  # plus scalar-vs-AVX kernel A/B on
//	                                  # amd64, emits BENCH_fft.json
//	ldmo-bench -exp nnbench           # naive-vs-blocked NN compute core A/B,
//	                                  # emits BENCH_nn.json
//	ldmo-bench -exp pipebench         # stage-at-a-time vs pipelined flow,
//	                                  # emits BENCH_pipeline.json
//	ldmo-bench -exp servebench        # job-service latency/throughput/shed
//	                                  # drill, emits BENCH_serve.json
//	ldmo-bench -exp factorybench      # dataset-factory scaling + chaos
//	                                  # drill, emits BENCH_factory.json
//	ldmo-bench -exp warmbench         # learned ILT warm-start cold-vs-warm
//	                                  # A/B, emits BENCH_warmstart.json
//	ldmo-bench -exp all               # everything
//
// Flags:
//
//	-fast          coarse raster + small training budget (CI mode)
//	-model PATH    use a predictor trained by ldmo-train instead of
//	               training one ad hoc (table1/fig7 only need it)
//	-seed N        seed for all stochastic stages
//	-out DIR       output directory for fig7 images / BENCH_*.json
//	-workers N     parallel worker lanes (0 = GOMAXPROCS, honoring
//	               LDMO_WORKERS)
//	-cpuprofile F  write a CPU profile of the run to F
//	-memprofile F  write a heap profile at exit to F
//	-q             suppress progress logging
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"ldmo/internal/artifact"
	"ldmo/internal/experiments"
	"ldmo/internal/model"
	"ldmo/internal/prof"
	"ldmo/internal/runx"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, fig1b, fig1c, fig7, fig8, ablation, parbench, fftbench, nnbench, pipebench, servebench, factorybench, warmbench, all")
	fast := flag.Bool("fast", false, "coarse raster and reduced training budget")
	modelPath := flag.String("model", "", "path to a trained predictor (optional)")
	seed := flag.Int64("seed", 1, "random seed")
	outDir := flag.String("out", "", "output directory for fig7 images and BENCH_*.json")
	workers := flag.Int("workers", 0, "parallel worker lanes (0 = GOMAXPROCS / LDMO_WORKERS)")
	deadline := flag.Duration("deadline", 0, "abandon remaining work after this wall time, e.g. 30m")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	opt := experiments.Options{Fast: *fast, Seed: *seed, Workers: *workers, Ctx: ctx}
	if !*quiet {
		opt.Log = os.Stderr
	}
	if *modelPath != "" {
		pred, err := model.Load(*modelPath)
		if err != nil {
			if artifact.Rejected(err) {
				fatalf("load model: %v\n  the file is damaged or from an incompatible build — re-export it with ldmo-train", err)
			}
			fatalf("load model: %v", err)
		}
		opt.Predictor = pred
	}

	run := func(name string) {
		if err := runExperiment(name, opt, *outDir, os.Stdout); err != nil {
			if runx.Interrupted(err) {
				fmt.Fprintf(os.Stderr, "ldmo-bench: %s interrupted: %v\n", name, err)
				os.Exit(130)
			}
			fatalf("%s: %v", name, err)
		}
	}
	switch *exp {
	case "all":
		for _, name := range []string{"table1", "fig1b", "fig1c", "fig7", "fig8"} {
			run(name)
			fmt.Println()
		}
	case "table1", "fig1b", "fig1c", "fig7", "fig8", "ablation", "parbench", "fftbench", "nnbench", "pipebench", "servebench", "factorybench", "warmbench":
		run(*exp)
	default:
		fatalf("unknown experiment %q", *exp)
	}
}

func runExperiment(name string, opt experiments.Options, outDir string, w io.Writer) error {
	switch name {
	case "table1":
		pred, err := experiments.TrainPredictor(opt)
		if err != nil {
			return err
		}
		t, err := experiments.RunTable1(pred, opt)
		if err != nil {
			return err
		}
		t.Render(w)
	case "fig1b":
		f, err := experiments.RunFig1b(opt)
		if err != nil {
			return err
		}
		f.Render(w)
	case "fig1c":
		f, err := experiments.RunFig1c(opt)
		if err != nil {
			return err
		}
		f.Render(w)
	case "fig7":
		pred, err := experiments.TrainPredictor(opt)
		if err != nil {
			return err
		}
		f, err := experiments.RunFig7(pred, opt, outDir)
		if err != nil {
			return err
		}
		f.Render(w)
	case "fig8":
		f, err := experiments.RunFig8(opt)
		if err != nil {
			return err
		}
		f.Render(w)
	case "ablation":
		pred, err := experiments.TrainPredictor(opt)
		if err != nil {
			return err
		}
		a, err := experiments.RunAblation(pred, opt)
		if err != nil {
			return err
		}
		a.Render(w)
	case "fftbench":
		b, err := experiments.RunFFTBench(opt)
		if err != nil {
			return err
		}
		b.Render(w)
		path := "BENCH_fft.json"
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			path = filepath.Join(outDir, path)
		}
		if err := b.WriteJSON(path); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	case "nnbench":
		b, err := experiments.RunNNBench(opt)
		if err != nil {
			return err
		}
		b.Render(w)
		path := "BENCH_nn.json"
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			path = filepath.Join(outDir, path)
		}
		if err := b.WriteJSON(path); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	case "pipebench":
		b, err := experiments.RunPipelineBench(opt)
		if err != nil {
			return err
		}
		b.Render(w)
		path := "BENCH_pipeline.json"
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			path = filepath.Join(outDir, path)
		}
		if err := b.WriteJSON(path); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	case "servebench":
		b, err := experiments.RunServeBench(opt)
		if err != nil {
			return err
		}
		b.Render(w)
		path := "BENCH_serve.json"
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			path = filepath.Join(outDir, path)
		}
		if err := b.WriteJSON(path); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	case "factorybench":
		b, err := experiments.RunFactoryBench(opt)
		if err != nil {
			return err
		}
		b.Render(w)
		path := "BENCH_factory.json"
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			path = filepath.Join(outDir, path)
		}
		if err := b.WriteJSON(path); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	case "warmbench":
		b, err := experiments.RunWarmBench(opt)
		if err != nil {
			return err
		}
		b.Render(w)
		path := "BENCH_warmstart.json"
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			path = filepath.Join(outDir, path)
		}
		if err := b.WriteJSON(path); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	case "parbench":
		b, err := experiments.RunParallelBench(opt)
		if err != nil {
			return err
		}
		b.Render(w)
		path := "BENCH_parallel.json"
		if outDir != "" {
			if err := os.MkdirAll(outDir, 0o755); err != nil {
				return err
			}
			path = filepath.Join(outDir, path)
		}
		if err := b.WriteJSON(path); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldmo-bench: "+format+"\n", args...)
	os.Exit(1)
}
