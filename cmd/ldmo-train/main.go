// Command ldmo-train builds a training set with the paper's sampling
// pipeline (SIFT + k-medoids layout sampling, MST + 3-wise decomposition
// sampling, ILT labeling) and trains the printability predictor.
//
// Usage:
//
//	ldmo-train -o pred.gob                       # default CPU-scale run
//	ldmo-train -o pred.gob -pool 200 -clusters 12 -per 4 -epochs 40
//	ldmo-train -o pred.gob -paper                # paper constants (slow)
//	ldmo-train -o pred.gob -random               # random-sampling baseline
//	ldmo-train -o pred.gob -checkpoint ckpt/     # persist progress; Ctrl-C safe
//	ldmo-train -o pred.gob -checkpoint ckpt/ -resume
//	ldmo-train -warmstart -o warm.gob            # ILT warm-start surrogate
//	ldmo-train -warmstart -warm-data pairs.gob -o warm.gob
//
// With -warmstart the command trains the learned ILT mask-initialization
// net instead of the printability predictor: (cold mask, optimized field)
// pairs are harvested with the same sampling pipeline (or loaded from a
// dataset extracted by `ldmo-factory -warm`), and the resulting checkpoint
// plugs into `ldmo-serve -warmstart` and `ldmo -warmstart`.
//
// With -checkpoint, labeled-layout shards and the training trajectory are
// written atomically as they complete; SIGINT/SIGTERM (or -deadline) stops
// the run at the next safe point, and a later invocation with -resume picks
// up where it left off, producing a model bit-identical to an uninterrupted
// run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"ldmo/internal/artifact"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/prof"
	"ldmo/internal/runx"
	"ldmo/internal/sampling"
)

func main() {
	out := flag.String("o", "predictor.gob", "output model file")
	poolSize := flag.Int("pool", 120, "generated layout pool size")
	clusters := flag.Int("clusters", 12, "k-medoids cluster count (paper: 50)")
	perCluster := flag.Int("per", 4, "layouts drawn per cluster (paper: 5)")
	epochs := flag.Int("epochs", 40, "training epochs")
	batch := flag.Int("batch", 16, "batch size")
	lr := flag.Float64("lr", 1e-3, "Adam learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "parallel labeling lanes (0 = GOMAXPROCS / LDMO_WORKERS)")
	paper := flag.Bool("paper", false, "use the paper's published sampling constants (slow)")
	random := flag.Bool("random", false, "random-sampling baseline instead of the paper pipeline")
	warmstart := flag.Bool("warmstart", false, "train the ILT warm-start surrogate instead of the predictor")
	warmData := flag.String("warm-data", "", "pre-extracted warm-pair dataset (see ldmo-factory -warm); harvests in-process when empty")
	warmPer := flag.Int("warm-per", 2, "decompositions harvested per layout in -warmstart mode")
	noAugment := flag.Bool("no-augment", false, "disable dihedral augmentation")
	ckptDir := flag.String("checkpoint", "", "directory for labeling shards and training state")
	resume := flag.Bool("resume", false, "continue from an existing -checkpoint directory")
	deadline := flag.Duration("deadline", 0, "stop (checkpointing if enabled) after this wall time, e.g. 30m")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	var log *os.File
	if !*quiet {
		log = os.Stderr
	}

	if *warmstart {
		if *ckptDir != "" || *resume || *random || *paper {
			fatalf("-warmstart does not combine with -checkpoint/-resume/-random/-paper")
		}
		trainWarmStarter(ctx, warmOpts{
			out: *out, data: *warmData, poolSize: *poolSize,
			clusters: *clusters, perCluster: *perCluster, perLayout: *warmPer,
			epochs: *epochs, batch: *batch, lr: *lr, seed: *seed,
			workers: *workers, augment: !*noAugment, log: log,
		})
		return
	}

	var shardDir, trainCkpt string
	if *ckptDir != "" {
		shardDir = filepath.Join(*ckptDir, "shards")
		trainCkpt = filepath.Join(*ckptDir, "train.ckpt")
		if !*resume && checkpointExists(shardDir, trainCkpt) {
			fatalf("checkpoint directory %s already holds state; pass -resume to continue it or remove it to start over", *ckptDir)
		}
		if *resume && *random {
			fatalf("-resume is not supported with -random (the baseline labels unsharded)")
		}
		if *resume {
			if reason := model.CheckpointStatus(trainCkpt); reason != "" {
				fmt.Fprintf(os.Stderr, "ldmo-train: warning: training checkpoint %s is not resumable (%s); training will start from epoch 0\n",
					trainCkpt, reason)
			}
		}
	} else if *resume {
		fatalf("-resume requires -checkpoint DIR")
	}

	pool, err := layout.GenerateSet(*seed, *poolSize, layout.DefaultGenParams())
	if err != nil {
		fatalf("generate pool: %v", err)
	}

	sc := sampling.DefaultConfig()
	if *paper {
		sc = sampling.PaperConfig()
	}
	sc.Clusters = *clusters
	sc.PerCluster = *perCluster
	sc.Seed = *seed
	sc.Workers = *workers

	var ds *model.Dataset
	if *random {
		// Match the paper pipeline's labeling budget.
		selected, err := sampling.SelectLayouts(pool, sc)
		if err != nil {
			fatalf("select: %v", err)
		}
		ref, _, err := sampling.BuildDatasetCtx(ctx, selected, sc, nil)
		if err != nil {
			exitInterruptible("budget probe", err, *ckptDir)
		}
		ds, _, err = sampling.BuildRandomDataset(pool, ref.Len(), sc, log)
		if err != nil {
			fatalf("random dataset: %v", err)
		}
	} else {
		selected, err := sampling.SelectLayouts(pool, sc)
		if err != nil {
			fatalf("select: %v", err)
		}
		sc.Checkpoint = shardDir
		if *resume && shardDir != "" {
			fmt.Fprintf(os.Stderr, "resuming: %d/%d layout shards already labeled\n",
				sampling.CheckpointShards(shardDir, len(selected)), len(selected))
		}
		fmt.Fprintf(os.Stderr, "selected %d representative layouts\n", len(selected))
		ds, _, err = sampling.BuildDatasetCtx(ctx, selected, sc, log)
		if err != nil {
			exitInterruptible("build dataset", err, *ckptDir)
		}
	}
	fmt.Fprintf(os.Stderr, "labeled %d samples\n", ds.Len())
	if !*noAugment {
		ds = ds.Augmented()
		fmt.Fprintf(os.Stderr, "augmented to %d samples\n", ds.Len())
	}

	pred, err := model.New(model.TinyConfig())
	if err != nil {
		fatalf("%v", err)
	}
	tc := model.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.BatchSize = *batch
	tc.LR = *lr
	tc.Seed = *seed
	tc.Log = log
	tc.DecayAt = (*epochs * 2) / 3
	tc.Checkpoint = trainCkpt
	hist, err := pred.TrainCtx(ctx, ds, tc)
	if err != nil {
		exitInterruptible("train", err, *ckptDir)
	}
	fmt.Fprintf(os.Stderr, "final loss %.4f\n", hist[len(hist)-1])
	if err := pred.Save(*out); err != nil {
		fatalf("save: %v", err)
	}
	fmt.Printf("wrote %s (%d parameters)\n", *out, pred.Net.ParamCount())
}

// warmOpts carries the -warmstart mode's settings.
type warmOpts struct {
	out, data                                 string
	poolSize, clusters, perCluster, perLayout int
	epochs, batch                             int
	lr                                        float64
	seed                                      int64
	workers                                   int
	augment                                   bool
	log                                       *os.File
}

// trainWarmStarter is the -warmstart mode: harvest (or load) warm pairs,
// train the mask-initialization surrogate, save its checkpoint.
func trainWarmStarter(ctx context.Context, o warmOpts) {
	var ds *model.WarmDataset
	if o.data != "" {
		var err error
		ds, err = model.LoadWarmDataset(o.data)
		if err != nil {
			if artifact.Rejected(err) {
				fatalf("load warm pairs: %v\n  the file is damaged or from an incompatible build — re-extract it with ldmo-factory -warm", err)
			}
			fatalf("load warm pairs: %v", err)
		}
	} else {
		pool, err := layout.GenerateSet(o.seed, o.poolSize, layout.DefaultGenParams())
		if err != nil {
			fatalf("generate pool: %v", err)
		}
		sc := sampling.DefaultConfig()
		sc.Clusters = o.clusters
		sc.PerCluster = o.perCluster
		sc.Seed = o.seed
		sc.Workers = o.workers
		selected, err := sampling.SelectLayouts(pool, sc)
		if err != nil {
			fatalf("select: %v", err)
		}
		fmt.Fprintf(os.Stderr, "selected %d representative layouts\n", len(selected))
		ds, err = sampling.BuildWarmPairsCtx(ctx, selected, sc, sampling.WarmPairConfig{PerLayout: o.perLayout}, o.log)
		if err != nil {
			exitInterruptible("harvest warm pairs", err, "")
		}
	}
	fmt.Fprintf(os.Stderr, "harvested %d warm pairs\n", ds.Len())
	if o.augment {
		ds = ds.Augmented()
		fmt.Fprintf(os.Stderr, "augmented to %d pairs\n", ds.Len())
	}

	wcfg := model.DefaultWarmConfig()
	wcfg.Seed = o.seed
	ws, err := model.NewWarmStarter(wcfg)
	if err != nil {
		fatalf("%v", err)
	}
	wtc := model.DefaultWarmTrainConfig()
	wtc.Epochs = o.epochs
	wtc.BatchSize = o.batch
	wtc.LR = o.lr
	wtc.Seed = o.seed
	wtc.Log = o.log
	hist, err := ws.TrainCtx(ctx, ds, wtc)
	if err != nil {
		exitInterruptible("train warm-starter", err, "")
	}
	fmt.Fprintf(os.Stderr, "final loss %.6f\n", hist[len(hist)-1])
	if err := ws.Save(o.out); err != nil {
		fatalf("save: %v", err)
	}
	fmt.Printf("wrote %s (net %.12s)\n", o.out, ws.Digest())
}

// checkpointExists reports whether a prior run left resumable state behind.
func checkpointExists(shardDir, trainCkpt string) bool {
	if entries, err := os.ReadDir(shardDir); err == nil && len(entries) > 0 {
		return true
	}
	_, err := os.Stat(trainCkpt)
	return err == nil
}

// exitInterruptible distinguishes a cancellation (state saved, resumable)
// from numerical divergence and from a genuine failure.
func exitInterruptible(stage string, err error, ckptDir string) {
	if runx.Interrupted(err) {
		if ckptDir != "" {
			fmt.Fprintf(os.Stderr, "ldmo-train: %s interrupted; progress saved under %s — rerun with -resume to continue\n",
				stage, ckptDir)
		} else {
			fmt.Fprintf(os.Stderr, "ldmo-train: %s interrupted (no -checkpoint, progress lost)\n", stage)
		}
		os.Exit(130)
	}
	if ne, ok := runx.AsNumerical(err); ok {
		fmt.Fprintf(os.Stderr, "ldmo-train: %s diverged: %v — try a lower -lr or a different -seed\n", stage, ne)
		os.Exit(2)
	}
	if artifact.Rejected(err) {
		fatalf("%s: %v\n  the artifact is damaged or from an incompatible build; remove it (or the -checkpoint dir) and rerun", stage, err)
	}
	fatalf("%s: %v", stage, err)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldmo-train: "+format+"\n", args...)
	os.Exit(1)
}
