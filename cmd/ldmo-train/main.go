// Command ldmo-train builds a training set with the paper's sampling
// pipeline (SIFT + k-medoids layout sampling, MST + 3-wise decomposition
// sampling, ILT labeling) and trains the printability predictor.
//
// Usage:
//
//	ldmo-train -o pred.gob                       # default CPU-scale run
//	ldmo-train -o pred.gob -pool 200 -clusters 12 -per 4 -epochs 40
//	ldmo-train -o pred.gob -paper                # paper constants (slow)
//	ldmo-train -o pred.gob -random               # random-sampling baseline
package main

import (
	"flag"
	"fmt"
	"os"

	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/sampling"
)

func main() {
	out := flag.String("o", "predictor.gob", "output model file")
	poolSize := flag.Int("pool", 120, "generated layout pool size")
	clusters := flag.Int("clusters", 12, "k-medoids cluster count (paper: 50)")
	perCluster := flag.Int("per", 4, "layouts drawn per cluster (paper: 5)")
	epochs := flag.Int("epochs", 40, "training epochs")
	batch := flag.Int("batch", 16, "batch size")
	lr := flag.Float64("lr", 1e-3, "Adam learning rate")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "parallel labeling lanes (0 = GOMAXPROCS / LDMO_WORKERS)")
	paper := flag.Bool("paper", false, "use the paper's published sampling constants (slow)")
	random := flag.Bool("random", false, "random-sampling baseline instead of the paper pipeline")
	noAugment := flag.Bool("no-augment", false, "disable dihedral augmentation")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	var log *os.File
	if !*quiet {
		log = os.Stderr
	}

	pool, err := layout.GenerateSet(*seed, *poolSize, layout.DefaultGenParams())
	if err != nil {
		fatalf("generate pool: %v", err)
	}

	sc := sampling.DefaultConfig()
	if *paper {
		sc = sampling.PaperConfig()
	}
	sc.Clusters = *clusters
	sc.PerCluster = *perCluster
	sc.Seed = *seed
	sc.Workers = *workers

	var ds *model.Dataset
	if *random {
		// Match the paper pipeline's labeling budget.
		selected, err := sampling.SelectLayouts(pool, sc)
		if err != nil {
			fatalf("select: %v", err)
		}
		ref, _, err := sampling.BuildDataset(selected, sc, nil)
		if err != nil {
			fatalf("budget probe: %v", err)
		}
		ds, _, err = sampling.BuildRandomDataset(pool, ref.Len(), sc, log)
		if err != nil {
			fatalf("random dataset: %v", err)
		}
	} else {
		selected, err := sampling.SelectLayouts(pool, sc)
		if err != nil {
			fatalf("select: %v", err)
		}
		fmt.Fprintf(os.Stderr, "selected %d representative layouts\n", len(selected))
		ds, _, err = sampling.BuildDataset(selected, sc, log)
		if err != nil {
			fatalf("build dataset: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "labeled %d samples\n", ds.Len())
	if !*noAugment {
		ds = ds.Augmented()
		fmt.Fprintf(os.Stderr, "augmented to %d samples\n", ds.Len())
	}

	pred, err := model.New(model.TinyConfig())
	if err != nil {
		fatalf("%v", err)
	}
	tc := model.DefaultTrainConfig()
	tc.Epochs = *epochs
	tc.BatchSize = *batch
	tc.LR = *lr
	tc.Seed = *seed
	tc.Log = log
	tc.DecayAt = (*epochs * 2) / 3
	hist, err := pred.Train(ds, tc)
	if err != nil {
		fatalf("train: %v", err)
	}
	fmt.Fprintf(os.Stderr, "final loss %.4f\n", hist[len(hist)-1])
	if err := pred.Save(*out); err != nil {
		fatalf("save: %v", err)
	}
	fmt.Printf("wrote %s (%d parameters)\n", *out, pred.Net.ParamCount())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ldmo-train: "+format+"\n", args...)
	os.Exit(1)
}
