// Package ldmo is the public API of this reproduction of "Deep
// Learning-Driven Simultaneous Layout Decomposition and Mask Optimization"
// (Zhong, Hu, Ma, Yang, Ma, Yu — DAC 2020).
//
// The package re-exports the pieces a downstream user composes:
//
//   - Layout and the synthetic NanGate-like cell library (Cell, Cells,
//     GenerateLayouts) — the inputs;
//   - Decomposition generation (GenerateDecompositions) — MST + n-wise
//     candidate enumeration;
//   - the lithography/ILT stack (LithoParams, ILTConfig, NewOptimizer) —
//     the physics;
//   - the CNN printability predictor (NewPredictor, TrainPredictor,
//     LoadPredictor) — the learned selector;
//   - Flow (NewFlow) — the paper's Fig. 2 loop tying it all together.
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	l, _ := ldmo.Cell("NAND3_X2")
//	flow := ldmo.NewFlow(nil, ldmo.DefaultFlowConfig()) // nil: no predictor yet
//	res, _ := flow.Run(l)
//	fmt.Println(res.ILT.EPE.Violations, "EPE violations")
//
// Training a predictor and using it:
//
//	pool, _ := ldmo.GenerateLayouts(1, 200)
//	pred, _, _ := ldmo.TrainPredictor(pool, ldmo.DefaultSamplingConfig(),
//	    ldmo.DefaultPredictorConfig(), ldmo.DefaultTrainConfig(), os.Stderr)
//	flow := ldmo.NewFlow(pred, ldmo.DefaultFlowConfig())
package ldmo

import (
	"io"

	"ldmo/internal/core"
	"ldmo/internal/decomp"
	"ldmo/internal/epe"
	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
	"ldmo/internal/model"
	"ldmo/internal/runx"
	"ldmo/internal/sampling"
	"ldmo/internal/simclock"
)

// Geometry and layout types.
type (
	// Point is a layout-space coordinate in nanometers.
	Point = geom.Point
	// Rect is an axis-aligned rectangle in nanometers.
	Rect = geom.Rect
	// Layout is a named set of target patterns in a simulation window.
	Layout = layout.Layout
	// Grid is a dense raster with physical resolution metadata.
	Grid = grid.Grid
	// Decomposition assigns a layout's patterns onto two masks.
	Decomposition = decomp.Decomposition
)

// Physics and optimization types.
type (
	// LithoParams is the forward lithography process model.
	LithoParams = litho.Params
	// ILTConfig configures the gradient-descent mask optimizer.
	ILTConfig = ilt.Config
	// ILTResult is one mask-optimization outcome.
	ILTResult = ilt.Result
	// EPEMeter measures edge placement errors.
	EPEMeter = epe.Meter
)

// Predictor and flow types.
type (
	// Predictor is the CNN printability estimator.
	Predictor = model.Predictor
	// PredictorConfig describes the predictor architecture.
	PredictorConfig = model.Config
	// TrainConfig controls predictor training.
	TrainConfig = model.TrainConfig
	// SamplingConfig controls training-set construction.
	SamplingConfig = sampling.Config
	// FlowConfig configures the Fig. 2 LDMO flow.
	FlowConfig = core.Config
	// Budget bounds a flow run: total wall clock, per-candidate wall clock,
	// and per-candidate ILT iterations (FlowConfig.Budget; zero = unlimited).
	Budget = runx.Budget
	// Flow is the deep-learning-driven LDMO engine.
	Flow = core.Flow
	// FlowResult is one flow outcome.
	FlowResult = core.Result
	// Clock is the deterministic runtime accounting used by the
	// experiments.
	Clock = simclock.Clock
)

// NewRect builds a normalized rectangle from two corners, in nanometers.
func NewRect(x0, y0, x1, y1 int) Rect { return geom.NewRect(x0, y0, x1, y1) }

// RectWH builds a rectangle from a corner and a width/height.
func RectWH(x, y, w, h int) Rect { return geom.RectWH(x, y, w, h) }

// Cell returns the named cell of the synthetic NanGate-like library
// (BUF_X1 ... DFF_X1; see CellNames).
func Cell(name string) (Layout, error) { return layout.Cell(name) }

// Cells returns the 13-cell library in the paper's Table I order.
func Cells() []Layout { return layout.Cells() }

// CellNames lists the library cells in Table I order.
func CellNames() []string { return layout.CellNames() }

// GenerateLayouts produces count random contact layouts deterministically
// from seed, all DRC-clean and double-patterning decomposable. It stands in
// for the paper's 8000-design dataset.
func GenerateLayouts(seed int64, count int) ([]Layout, error) {
	return layout.GenerateSet(seed, count, layout.DefaultGenParams())
}

// GenerateDecompositions enumerates the MST + n-wise decomposition
// candidates of a layout with the paper's settings (3-wise over MST
// components and violated patterns, pairwise over normal patterns,
// canonicalized and deduplicated).
func GenerateDecompositions(l Layout) ([]Decomposition, error) {
	return decomp.NewGenerator().Generate(l)
}

// DefaultLithoParams returns the calibrated 193nm-immersion-like process
// with the paper's sigmoid slopes (theta_m=8, theta_z=120); the paper's
// threshold constant is available verbatim via litho.PaperParams.
func DefaultLithoParams() LithoParams { return litho.DefaultParams() }

// DefaultILTConfig returns the paper's optimizer settings: at most 29
// iterations, violation checks every 3.
func DefaultILTConfig() ILTConfig { return ilt.DefaultConfig() }

// NewOptimizer builds a standalone ILT mask optimizer for one layout.
func NewOptimizer(l Layout, cfg ILTConfig) (*ilt.Optimizer, error) {
	return ilt.NewOptimizer(l, cfg)
}

// DefaultPredictorConfig returns the CPU-scale predictor architecture. The
// paper-faithful ResNet-18 (224x224) is available as ResNet18Config.
func DefaultPredictorConfig() PredictorConfig { return model.TinyConfig() }

// ResNet18Config returns the paper's full ResNet-18 architecture (Fig. 5).
func ResNet18Config() PredictorConfig { return model.ResNet18Config() }

// NewPredictor builds an untrained predictor.
func NewPredictor(cfg PredictorConfig) (*Predictor, error) { return model.New(cfg) }

// LoadPredictor reads a predictor saved with (*Predictor).Save.
func LoadPredictor(path string) (*Predictor, error) { return model.Load(path) }

// DefaultSamplingConfig returns the CPU-scale training-set pipeline
// (SIFT + k-medoids layout sampling, MST + 3-wise decomposition sampling,
// ILT labeling). The paper's published constants are sampling.PaperConfig.
func DefaultSamplingConfig() SamplingConfig { return sampling.DefaultConfig() }

// DefaultTrainConfig returns predictor training settings.
func DefaultTrainConfig() TrainConfig { return model.DefaultTrainConfig() }

// TrainPredictor runs the paper's full training pipeline: select
// representative layouts from the pool, sample and label decompositions
// with full ILT, augment with the exact dihedral symmetries of the optical
// model, and fit the predictor. It returns the trained predictor and the
// size of the labeled (pre-augmentation) dataset. Progress goes to log when
// non-nil.
func TrainPredictor(pool []Layout, sc SamplingConfig, pc PredictorConfig, tc TrainConfig, log io.Writer) (*Predictor, int, error) {
	selected, err := sampling.SelectLayouts(pool, sc)
	if err != nil {
		return nil, 0, err
	}
	ds, _, err := sampling.BuildDataset(selected, sc, log)
	if err != nil {
		return nil, 0, err
	}
	pred, err := model.New(pc)
	if err != nil {
		return nil, 0, err
	}
	if _, err := pred.Train(ds.Augmented(), tc); err != nil {
		return nil, 0, err
	}
	return pred, ds.Len(), nil
}

// DefaultFlowConfig returns the paper's flow settings.
func DefaultFlowConfig() FlowConfig { return core.DefaultConfig() }

// NewFlow builds the Fig. 2 LDMO flow. scorer may be nil, in which case
// candidates are tried in generation order (the no-predictor ablation).
func NewFlow(scorer core.Scorer, cfg FlowConfig) *Flow { return core.NewFlow(scorer, cfg) }
