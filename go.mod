module ldmo

go 1.22
