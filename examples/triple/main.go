// Triple: the multiple-patterning extension. Three contacts in a mutual
// conflict triangle (every pair below nmin) cannot be decomposed onto two
// masks — the SP conflict graph is an odd cycle — but decompose and print
// cleanly with three masks.
//
//	go run ./examples/triple
package main

import (
	"fmt"
	"log"

	"ldmo"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
	"ldmo/internal/mpl"
)

func main() {
	l := ldmo.Layout{
		Name:   "triangle",
		Window: ldmo.RectWH(0, 0, 544, 544),
		Patterns: []ldmo.Rect{
			ldmo.RectWH(100, 100, 65, 65),
			ldmo.RectWH(230, 100, 65, 65),
			ldmo.RectWH(165, 225, 65, 65),
		},
	}
	adj := layout.ConflictGraph(l.Patterns, 80)
	if ok, _ := layout.IsBipartite(adj); ok {
		log.Fatal("expected an odd conflict cycle")
	}
	fmt.Println("conflict triangle: not decomposable onto 2 masks")

	p := litho.FastParams()

	// Double patterning is forced to put an SP pair on one mask.
	opt, err := mpl.NewOptimizer(l, p)
	if err != nil {
		log.Fatal(err)
	}
	dp := mpl.New(l, 2, []uint8{0, 1, 0})
	r2 := opt.Run(dp)
	fmt.Printf("2 masks: EPE %d violations, print violations %+v\n",
		r2.EPE.Violations, r2.Violations)

	// Triple patterning separates all three.
	cands, err := mpl.Generate(l, layout.DefaultClassifyParams(), 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	opt3, err := mpl.NewOptimizer(l, p)
	if err != nil {
		log.Fatal(err)
	}
	r3 := opt3.Run(cands[0])
	fmt.Printf("3 masks: EPE %d violations, print violations %+v\n",
		r3.EPE.Violations, r3.Violations)

	fmt.Println("\nprinted image with 3 masks:")
	fmt.Print(r3.Printed.Threshold(0.5).ASCII(" .#", 68))
}
