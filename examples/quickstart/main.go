// Quickstart: run the deep-learning-driven LDMO flow end-to-end on one
// standard cell, without a trained predictor (candidates are tried in
// generation order with the print-violation feedback loop).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ldmo"
)

func main() {
	// A cell from the synthetic NanGate-like library (contact layer).
	cell, err := ldmo.Cell("NAND3_X2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizing %s: %d contact patterns in a %dnm tile\n",
		cell.Name, len(cell.Patterns), cell.Window.W())

	// The decomposition candidates the flow will choose between.
	cands, err := ldmo.GenerateDecompositions(cell)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MST + n-wise generation produced %d candidates:\n", len(cands))
	for _, d := range cands {
		fmt.Printf("  %s\n", d.Key())
	}

	// Run the full flow: candidate generation -> (predictor) -> ILT with
	// violation feedback. The coarse 8nm raster keeps this example fast.
	cfg := ldmo.DefaultFlowConfig()
	cfg.ILT.Litho.Resolution = 8
	flow := ldmo.NewFlow(nil, cfg)
	res, err := flow.Run(cell)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchose %s after %d attempt(s)\n", res.Chosen.Key(), res.Attempts)
	fmt.Printf("final printability: %d EPE violations, L2 error %.1f\n",
		res.ILT.EPE.Violations, res.ILT.L2)
	fmt.Printf("print violations: %+v\n", res.ILT.Violations)

	// The printed wafer image, as ASCII art.
	fmt.Println("\nprinted image:")
	fmt.Print(res.ILT.Printed.Threshold(0.5).ASCII(" .#", 68))
}
