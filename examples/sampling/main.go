// Sampling: reproduce the paper's Fig. 8 comparison at example scale — the
// SIFT + k-medoids + 3-wise training-set sampling strategy against plain
// random sampling at the same labeling budget. Both predictors then drive
// the flow over a few cells.
//
//	go run ./examples/sampling
package main

import (
	"fmt"
	"log"
	"os"

	"ldmo"
	"ldmo/internal/model"
	"ldmo/internal/sampling"
)

func main() {
	// A small layout pool standing in for the paper's 8000-design dataset.
	pool, err := ldmo.GenerateLayouts(1, 30)
	if err != nil {
		log.Fatal(err)
	}

	sc := sampling.DefaultConfig()
	sc.Clusters = 6
	sc.PerCluster = 3

	// Paper pipeline: representative layouts, representative decompositions.
	selected, err := sampling.SelectLayouts(pool, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d representative layouts from pool of %d\n", len(selected), len(pool))
	dsOurs, _, err := sampling.BuildDataset(selected, sc, os.Stderr)
	if err != nil {
		log.Fatal(err)
	}

	// Random baseline at the same budget.
	dsRand, _, err := sampling.BuildRandomDataset(pool, dsOurs.Len(), sc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labeled %d samples per strategy\n", dsOurs.Len())

	train := func(ds *model.Dataset) *model.Predictor {
		pred, err := model.New(model.TinyConfig())
		if err != nil {
			log.Fatal(err)
		}
		tc := model.DefaultTrainConfig()
		tc.Epochs = 20
		if _, err := pred.Train(ds.Augmented(), tc); err != nil {
			log.Fatal(err)
		}
		return pred
	}
	predOurs := train(dsOurs)
	predRand := train(dsRand)

	// Evaluate both: average EPE of the flow over a few cells.
	cfg := ldmo.DefaultFlowConfig()
	cfg.ILT.Litho.Resolution = 8
	eval := func(pred *model.Predictor) float64 {
		flow := ldmo.NewFlow(pred, cfg)
		total := 0
		cells := []string{"NAND3_X2", "AOI211_X1", "OAI22_X1", "DFF_X1"}
		for _, name := range cells {
			cell, err := ldmo.Cell(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := flow.Run(cell)
			if err != nil {
				log.Fatal(err)
			}
			total += res.ILT.EPE.Violations
		}
		return float64(total) / 4
	}

	ours := eval(predOurs)
	random := eval(predRand)
	fmt.Printf("\navg EPE violations, paper sampling:  %.2f\n", ours)
	fmt.Printf("avg EPE violations, random sampling: %.2f\n", random)
	if ours > 0 {
		fmt.Printf("ratio (random/ours): %.2f  (paper Fig. 8 reports ~2x)\n", random/ours)
	}
}
