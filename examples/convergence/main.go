// Convergence: reproduce the paper's Fig. 1(b) observation — different
// decompositions of the same layout follow different EPE trajectories under
// mask optimization, and the trajectories can cross, so intermediate
// printability misranks candidates.
//
//	go run ./examples/convergence
package main

import (
	"fmt"
	"log"
	"strings"

	"ldmo"
)

func main() {
	cell, err := ldmo.Cell("AOI211_X1")
	if err != nil {
		log.Fatal(err)
	}
	cands, err := ldmo.GenerateDecompositions(cell)
	if err != nil {
		log.Fatal(err)
	}
	if len(cands) > 3 {
		cands = cands[:3]
	}

	cfg := ldmo.DefaultILTConfig()
	cfg.Litho.Resolution = 8 // coarse raster keeps the example fast
	cfg.AbortOnViolation = false
	opt, err := ldmo.NewOptimizer(cell, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("EPE convergence of %d decompositions of %s (cf. paper Fig. 1b)\n\n",
		len(cands), cell.Name)
	var curves [][]int
	for i, d := range cands {
		r := opt.Run(d)
		curve := make([]int, len(r.Trace))
		for j, s := range r.Trace {
			curve[j] = s.EPEViolations
		}
		curves = append(curves, curve)
		fmt.Printf("DECMP#%d (%s): EPE %d -> %d\n", i+1, d.Key(), curve[0], curve[len(curve)-1])
	}

	// Terminal plot: one column per iteration.
	fmt.Println("\niteration:  " + header(len(curves[0])))
	for i, c := range curves {
		var b strings.Builder
		for _, v := range c {
			b.WriteString(fmt.Sprintf("%3d", v))
		}
		fmt.Printf("DECMP#%d  %s\n", i+1, b.String())
	}
	fmt.Println("\nNote how rankings at early iterations differ from the final" +
		" ranking: this is why the paper predicts final printability with a" +
		" CNN instead of trusting intermediate mask-optimization results.")
}

func header(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		b.WriteString(fmt.Sprintf("%3d", i))
	}
	return b.String()
}
