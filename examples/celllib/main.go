// Celllib: optimize the three cells the paper pictures in Fig. 7 (AOI211_X1,
// NAND3_X2, BUF_X1) with the full flow and dump target/mask/print images as
// PGM files for visual inspection.
//
//	go run ./examples/celllib [-model pred.gob] [-out fig7]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"ldmo"
	"ldmo/internal/core"
	"ldmo/internal/model"
)

func main() {
	modelPath := flag.String("model", "", "trained predictor (optional)")
	outDir := flag.String("out", "fig7-images", "output directory for PGM images")
	flag.Parse()

	var scorer core.Scorer
	if *modelPath != "" {
		pred, err := model.Load(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		scorer = pred
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	cfg := ldmo.DefaultFlowConfig()
	cfg.ILT.Litho.Resolution = 8 // coarse raster keeps the example fast
	flow := ldmo.NewFlow(scorer, cfg)

	for _, name := range []string{"AOI211_X1", "NAND3_X2", "BUF_X1"} {
		cell, err := ldmo.Cell(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := flow.Run(cell)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s decomposition %s  EPE %d  L2 %.1f  (attempts %d)\n",
			name, res.Chosen.Key(), res.ILT.EPE.Violations, res.ILT.L2, res.Attempts)

		base := strings.ToLower(name)
		for tag, img := range map[string]*ldmo.Grid{
			"target": cell.Rasterize(cfg.ILT.Litho.Resolution),
			"m1":     res.ILT.M1,
			"m2":     res.ILT.M2,
			"print":  res.ILT.Printed,
		} {
			path := filepath.Join(*outDir, base+"_"+tag+".pgm")
			if err := img.SavePGM(path, 0, 1); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("images written under %s/\n", *outDir)
}
