#!/bin/sh
# CI gate: clean-tree guard, vet, build, full test suite, the race detector
# over the packages with concurrent hot paths (worker pool, FFT scratch
# sharing, kernel-parallel simulator, candidate fan-out), and a short fuzz
# smoke on the GDS reader so hostile-input regressions surface before a long
# fuzz campaign would find them.
set -eux

cd "$(dirname "$0")/.."

# Generated files, gofmt drift, or test litter in the tree fail fast.
git diff --exit-code

go vet ./...
go build ./...
go test -timeout 300s ./...
go test -timeout 600s -race ./internal/litho ./internal/fft ./internal/core ./internal/par ./internal/sampling ./internal/runx ./internal/faultinject ./internal/artifact ./internal/model
go test -run='^$' -fuzz='^FuzzReadGDS$' -fuzztime=10s ./internal/gds
