#!/bin/sh
# CI gate: clean-tree guard, vet, build, full test suite, the race detector
# over the packages with concurrent hot paths (worker pool, FFT scratch
# sharing, kernel-parallel simulator, candidate fan-out), and a short fuzz
# smoke on the GDS reader so hostile-input regressions surface before a long
# fuzz campaign would find them.
set -eux

cd "$(dirname "$0")/.."

# Generated files, gofmt drift, or test litter in the tree fail fast.
git diff --exit-code

go vet ./...
go build ./...
go test -timeout 300s -shuffle=on ./...
go test -timeout 600s -race ./internal/litho ./internal/fft ./internal/core ./internal/par ./internal/sampling ./internal/runx ./internal/faultinject ./internal/artifact ./internal/model ./internal/serve ./internal/factory
go test -run='^$' -fuzz='^FuzzReadGDS$' -fuzztime=10s ./internal/gds

# Spectral-engine gates: alloc-regression tests on the ILT hot path, a
# 100-iteration FFT benchmark smoke (both engines), and a deadline-bounded
# quick A/B bench writing outside the tree so the clean-tree guard stays
# meaningful on reruns.
go test -timeout 120s -run='ZeroAlloc|SteadyStateAllocs|HotPathZeroAlloc' ./internal/fft ./internal/litho ./internal/ilt ./internal/nn ./internal/tensor ./internal/par ./internal/model
go test -run='^$' -bench='^BenchmarkFFT' -benchtime=100x ./internal/fft

# Vector-kernel gates. go vet's asmdecl pass cross-checks every assembly
# function against its Go declaration (frame size, argument offsets); run it
# explicitly over the package carrying the .s files so the gate is visible
# even if the repo-wide vet above ever narrows. Then the spectral suites and
# their consumers run a second time with LDMO_FFT_ASM=off, so the pure-Go
# scalar reference — the only engine on non-amd64 hosts — cannot rot, the
# engine-equivalence fuzz seeds get a smoke run, and the zero-alloc contract
# is proven under both engines.
go vet ./internal/fft
LDMO_FFT_ASM=off go test -timeout 300s ./internal/fft ./internal/litho ./internal/ilt ./internal/core
LDMO_FFT_ASM=off go test -timeout 120s -run='ZeroAlloc|SteadyStateAllocs|HotPathZeroAlloc' ./internal/fft ./internal/litho ./internal/ilt
go test -run='^$' -fuzz='^FuzzVecEquivalence$' -fuzztime=10s ./internal/fft
tmpout="$(mktemp -d)"
trap 'rm -rf "$tmpout"' EXIT
go run ./cmd/ldmo-bench -exp fftbench -fast -deadline 120s -out "$tmpout"

# NN compute-core gates: the GEMM engine golden (bit-identical blocked vs
# naive training trajectory) and sharded PredictBatch over folded replicas
# already run under -race via ./internal/model above; here the quick
# naive-vs-blocked A/B bench proves the folded path stays zero-alloc and the
# blocked engine stays ahead.
go run ./cmd/ldmo-bench -exp nnbench -fast -deadline 120s -out "$tmpout"

# Pipeline gates: the bitwise serial==pipelined golden, the coalescer, and the
# mid-pipeline cancellation/fault-injection drains already run under -race via
# ./internal/core ./internal/par above, and the alloc line asserts the
# coalescing queue and shared prediction buffers add zero steady-state
# allocations; here the quick stage-at-a-time vs pipelined A/B bench
# cross-checks identity end to end and records the coalescing factor.
go run ./cmd/ldmo-bench -exp pipebench -fast -deadline 120s -out "$tmpout"

# Serving gates: the httptest endpoint smoke (submit -> poll -> result, 429
# shed, dedupe) and both crash drills — including a real SIGKILL'd daemon —
# run under -race via ./internal/serve above; the quick service bench drives
# a multi-client overload burst and records latency percentiles, throughput,
# and shed rate to BENCH_serve.json.
go run ./cmd/ldmo-bench -exp servebench -fast -deadline 120s -out "$tmpout"

# Factory gates: lease claiming, reclaim, hung-worker kill, poison quarantine,
# and both re-exec'd chaos drills (SIGKILL mid-build converging byte-identical
# to the serial reference) run under -race via ./internal/factory above; the
# quick bench repeats the chaos drill in-process, measures scaling, reclaim and
# resume cost, and fails if the chaos manifest diverges from the serial one.
go run ./cmd/ldmo-bench -exp factorybench -fast -deadline 180s -out "$tmpout"

# Warm-start gates. The packages that consume the LDMO_WARMSTART gate run a
# second time with it forced off, so the kill switch's bitwise-identical
# off-path (pinned by the core/ilt golden tests) cannot rot; the zero-alloc
# line proves warm inference stays allocation-free in steady state (the
# WarmMasksInto gate also runs inside the SteadyStateAllocs sweep above); and
# the quick warmbench smoke trains a small surrogate and cross-checks the
# off-gate end to end, writing BENCH_warmstart.json outside the tree.
LDMO_WARMSTART=off go test -timeout 300s ./internal/ilt ./internal/core ./internal/serve
go test -timeout 120s -run='WarmMasksIntoSteadyStateAllocs' ./internal/model
go run ./cmd/ldmo-bench -exp warmbench -fast -deadline 600s -out "$tmpout"
