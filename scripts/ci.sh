#!/bin/sh
# CI gate: vet, build, full test suite, then the race detector over the
# packages with concurrent hot paths (worker pool, FFT scratch sharing,
# kernel-parallel simulator, candidate fan-out).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -timeout 300s ./...
go test -timeout 600s -race ./internal/litho ./internal/fft ./internal/core ./internal/par ./internal/sampling ./internal/runx ./internal/faultinject
