package ldmo_test

import (
	"strings"
	"testing"

	"ldmo"
	"ldmo/internal/litho"
)

func TestPublicCellLibrary(t *testing.T) {
	names := ldmo.CellNames()
	if len(names) != 13 {
		t.Fatalf("cell names = %d", len(names))
	}
	for _, n := range names {
		l, err := ldmo.Cell(n)
		if err != nil {
			t.Fatal(err)
		}
		if l.Name != n || len(l.Patterns) == 0 {
			t.Fatalf("cell %s malformed", n)
		}
	}
	if _, err := ldmo.Cell("BOGUS"); err == nil {
		t.Fatal("unknown cell must error")
	} else if !strings.Contains(err.Error(), "BUF_X1") {
		t.Fatal("error should list known cells")
	}
}

func TestPublicGeometryHelpers(t *testing.T) {
	r := ldmo.NewRect(10, 20, 3, 5)
	if r.X0 != 3 || r.Y1 != 20 {
		t.Fatalf("NewRect = %v", r)
	}
	if w := ldmo.RectWH(0, 0, 65, 65).W(); w != 65 {
		t.Fatalf("RectWH width = %d", w)
	}
}

func TestPublicGenerateLayouts(t *testing.T) {
	set, err := ldmo.GenerateLayouts(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 8 {
		t.Fatalf("generated %d", len(set))
	}
}

func TestPublicGenerateDecompositions(t *testing.T) {
	l, err := ldmo.Cell("AOI211_X1")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := ldmo.GenerateDecompositions(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
}

func TestPublicConfigs(t *testing.T) {
	if err := ldmo.DefaultLithoParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg := ldmo.DefaultILTConfig(); cfg.MaxIters != 29 || cfg.CheckEvery != 3 {
		t.Fatalf("ILT defaults = %+v", cfg)
	}
	if cfg := ldmo.DefaultPredictorConfig(); cfg.Validate() != nil {
		t.Fatal("predictor config invalid")
	}
	if cfg := ldmo.ResNet18Config(); cfg.InputSize != 224 || cfg.StageChannels[3] != 512 {
		t.Fatalf("resnet18 config = %+v", cfg)
	}
	if sc := ldmo.DefaultSamplingConfig(); sc.Dth != 0.7 || sc.MatchCount != 60 {
		t.Fatalf("sampling config = %+v", sc)
	}
}

func TestPublicOptimizerAndFlow(t *testing.T) {
	l, err := ldmo.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ldmo.DefaultILTConfig()
	cfg.Litho = litho.FastParams()
	cfg.MaxIters = 4
	opt, err := ldmo.NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := ldmo.GenerateDecompositions(l)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.Run(cands[0])
	if r.Printed == nil {
		t.Fatal("no printed image")
	}

	fcfg := ldmo.DefaultFlowConfig()
	fcfg.ILT = cfg
	flow := ldmo.NewFlow(nil, fcfg)
	res, err := flow.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates == 0 {
		t.Fatal("flow produced no candidates")
	}
}

func TestPublicPredictorRoundTrip(t *testing.T) {
	cfg := ldmo.DefaultPredictorConfig()
	cfg.InputSize = 32
	cfg.StemChannels = 4
	cfg.StageChannels = [4]int{4, 4, 8, 8}
	cfg.HiddenDim = 8
	pred, err := ldmo.NewPredictor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/p.gob"
	if err := pred.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ldmo.LoadPredictor(path); err != nil {
		t.Fatal(err)
	}
}
