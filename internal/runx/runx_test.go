package runx

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestRecoverPassesThrough(t *testing.T) {
	if err := Recover(func() error { return nil }); err != nil {
		t.Fatalf("Recover of clean fn returned %v", err)
	}
	want := errors.New("plain failure")
	if err := Recover(func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Recover rewrote a plain error: %v", err)
	}
}

func TestRecoverConvertsPanic(t *testing.T) {
	err := Recover(func() error { panic("boom at site") })
	if err == nil {
		t.Fatal("panic was swallowed")
	}
	pe, ok := AsPanic(err)
	if !ok {
		t.Fatalf("error %T is not a PanicError", err)
	}
	if pe.Value != "boom at site" {
		t.Fatalf("panic value %v lost", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "runx_test") {
		t.Fatalf("stack does not mention the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(err.Error(), "boom at site") {
		t.Fatalf("Error() %q hides the cause", err.Error())
	}
}

func TestNewPanicErrorIdempotent(t *testing.T) {
	inner := &PanicError{Value: "original", Stack: []byte("worker stack")}
	err := Recover(func() error { panic(inner) })
	pe, ok := AsPanic(err)
	if !ok || pe != inner {
		t.Fatalf("re-raised PanicError was re-wrapped: %v", err)
	}
}

func TestAsPanicWrapped(t *testing.T) {
	pe := &PanicError{Value: 42}
	wrapped := fmt.Errorf("flow: scorer failed: %w", pe)
	got, ok := AsPanic(wrapped)
	if !ok || got != pe {
		t.Fatalf("AsPanic failed to unwrap: %v %v", got, ok)
	}
	if _, ok := AsPanic(errors.New("not a panic")); ok {
		t.Fatal("AsPanic matched a non-panic error")
	}
}

func TestInterrupted(t *testing.T) {
	if !Interrupted(context.Canceled) || !Interrupted(context.DeadlineExceeded) {
		t.Fatal("context errors must read as interrupted")
	}
	if !Interrupted(fmt.Errorf("run stopped: %w", context.Canceled)) {
		t.Fatal("wrapped cancellation must read as interrupted")
	}
	if Interrupted(errors.New("disk full")) || Interrupted(nil) {
		t.Fatal("non-cancellation errors must not read as interrupted")
	}
}

func TestBudgetApplyUnlimited(t *testing.T) {
	var b Budget
	if !b.Unlimited() {
		t.Fatal("zero Budget must be unlimited")
	}
	ctx, cancel := b.Apply(context.Background())
	defer cancel()
	if ctx.Done() != nil {
		t.Fatal("unlimited budget must not add a Done channel")
	}
	cctx, ccancel := b.Candidate(ctx)
	defer ccancel()
	if cctx.Done() != nil {
		t.Fatal("unlimited candidate budget must not add a Done channel")
	}
}

func TestBudgetApplyWall(t *testing.T) {
	b := Budget{Wall: time.Hour}
	ctx, cancel := b.Apply(nil)
	defer cancel()
	dl, ok := ctx.Deadline()
	if !ok {
		t.Fatal("wall budget must set a deadline")
	}
	if until := time.Until(dl); until <= 0 || until > time.Hour {
		t.Fatalf("deadline %v out of range", until)
	}
	cctx, ccancel := (Budget{CandidateWall: time.Minute}).Candidate(ctx)
	defer ccancel()
	if cdl, ok := cctx.Deadline(); !ok || cdl.After(dl) {
		t.Fatalf("candidate deadline %v must tighten the run deadline %v", cdl, dl)
	}
}
