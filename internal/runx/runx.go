// Package runx is the framework's runtime-hardening layer: budgets
// (cancellation, wall-clock deadlines, deterministic iteration limits) and
// panic-recovery boundaries that convert crashes in the numeric substrates
// (nn, litho, tensor, fft) into typed errors a long-running service can log
// and degrade around instead of dying.
//
// The design splits responsibilities: Budget describes *how much* a run may
// consume, the context derived from it carries the cancellation signal, and
// Recover fences *where* a panic stops propagating. Packages below runx
// (par, ilt, core) consume these; nothing in runx knows about the flow.
package runx

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// PanicError is a panic converted into an error at a Recover boundary (or by
// par's worker pool). Value is the original panic payload, preserved so
// callers can still inspect it; Stack is the stack of the goroutine that
// panicked, captured at the panic site.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error. The worker stack is not included — log e.Stack
// explicitly where the full trace is wanted.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// NewPanicError captures the current goroutine's stack around a recovered
// panic value. If v already is a *PanicError (a re-raised worker panic), it
// is returned unchanged so the original stack survives nested boundaries.
func NewPanicError(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// AsPanic unwraps err to a *PanicError when one is in its chain.
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// Recover runs fn and converts a panic into a *PanicError return. Errors
// returned by fn pass through unchanged. This is the boundary the flow wraps
// around scorer inference and other crash-prone numeric calls.
func Recover(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPanicError(r)
		}
	}()
	return fn()
}

// NumericalError reports that an iterative numeric computation produced
// NaN/Inf and its bounded rollback-and-retry recovery was exhausted — the
// run diverged for real, it was not a transient fault. Op names the
// computation (e.g. "model.TrainCtx"), Detail says where and what was tried.
type NumericalError struct {
	Op     string
	Detail string
}

// Error implements error.
func (e *NumericalError) Error() string {
	return fmt.Sprintf("%s: numerical divergence: %s", e.Op, e.Detail)
}

// AsNumerical unwraps err to a *NumericalError when one is in its chain.
func AsNumerical(err error) (*NumericalError, bool) {
	var ne *NumericalError
	if errors.As(err, &ne) {
		return ne, true
	}
	return nil, false
}

// Interrupted reports whether err stems from cancellation or a deadline —
// the two "stop now, keep what you have" conditions a budgeted run handles
// by returning partial state instead of failing.
func Interrupted(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Budget bounds a run. The zero value is "unlimited": no deadline, no
// per-candidate limits. Wall limits are inherently nondeterministic (they
// depend on the machine); CandidateIters is the deterministic knob and the
// one tests rely on.
type Budget struct {
	// Wall bounds the total wall-clock time of the run; 0 means unlimited.
	Wall time.Duration
	// CandidateWall bounds each candidate attempt inside the run; 0 means
	// unlimited. An attempt that exceeds it is abandoned (its best state is
	// kept) and the run falls through to the next candidate.
	CandidateWall time.Duration
	// CandidateIters caps gradient iterations per candidate attempt; 0
	// keeps the optimizer's configured budget. A candidate that spends the
	// cap without reaching a violation-free print falls through to the next
	// candidate.
	CandidateIters int
}

// Unlimited reports whether the budget imposes no limit at all.
func (b Budget) Unlimited() bool {
	return b.Wall <= 0 && b.CandidateWall <= 0 && b.CandidateIters <= 0
}

// Apply derives the run context: ctx plus the total wall deadline when one
// is set. The returned cancel must be called to release the timer. When no
// wall limit is set, ctx is returned unchanged with a no-op cancel so that
// an unlimited budget adds no Done channel (and hence no snapshot overhead)
// to a background run.
func (b Budget) Apply(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if b.Wall > 0 {
		return context.WithTimeout(ctx, b.Wall)
	}
	return ctx, func() {}
}

// Candidate derives the per-attempt context from the run context.
func (b Budget) Candidate(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	if b.CandidateWall > 0 {
		return context.WithTimeout(ctx, b.CandidateWall)
	}
	return ctx, func() {}
}
