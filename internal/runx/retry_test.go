package runx

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeSleep records requested backoffs without waiting.
type fakeSleep struct {
	ds []time.Duration
}

func (f *fakeSleep) sleep(ctx context.Context, d time.Duration) error {
	f.ds = append(f.ds, d)
	return ctx.Err()
}

func TestRetryFirstAttemptSucceeds(t *testing.T) {
	fs := &fakeSleep{}
	calls := 0
	err := Retry(context.Background(), RetryConfig{Sleep: fs.sleep}, func(attempt int) error {
		calls++
		if attempt != 1 {
			t.Fatalf("attempt numbering starts at %d, want 1", attempt)
		}
		return nil
	})
	if err != nil || calls != 1 || len(fs.ds) != 0 {
		t.Fatalf("clean first attempt: err=%v calls=%d sleeps=%v", err, calls, fs.ds)
	}
}

func TestRetryRecoversTransient(t *testing.T) {
	fs := &fakeSleep{}
	calls := 0
	err := Retry(context.Background(), RetryConfig{Attempts: 5, Sleep: fs.sleep}, func(int) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry failed despite eventual success: %v", err)
	}
	if calls != 3 || len(fs.ds) != 2 {
		t.Fatalf("calls=%d sleeps=%d, want 3 and 2", calls, len(fs.ds))
	}
}

func TestRetryExhaustion(t *testing.T) {
	fs := &fakeSleep{}
	boom := errors.New("always fails")
	err := Retry(context.Background(), RetryConfig{Attempts: 3, Sleep: fs.sleep}, func(int) error {
		return boom
	})
	re, ok := AsRetry(err)
	if !ok {
		t.Fatalf("give-up error %T is not a RetryError", err)
	}
	if re.Attempts != 3 || re.Permanent {
		t.Fatalf("RetryError = %+v, want 3 non-permanent attempts", re)
	}
	if !errors.Is(err, boom) {
		t.Fatal("RetryError must unwrap to the last attempt's error")
	}
}

func TestRetryPermanentClassification(t *testing.T) {
	fs := &fakeSleep{}
	fatal := errors.New("bad input")
	calls := 0
	err := Retry(context.Background(), RetryConfig{
		Attempts:  5,
		Sleep:     fs.sleep,
		Retryable: func(err error) bool { return !errors.Is(err, fatal) },
	}, func(int) error {
		calls++
		return fatal
	})
	re, ok := AsRetry(err)
	if !ok || !re.Permanent || re.Attempts != 1 || calls != 1 {
		t.Fatalf("permanent error retried: err=%v calls=%d", err, calls)
	}
	if len(fs.ds) != 0 {
		t.Fatal("permanent error must not back off")
	}
}

func TestRetryInterruptedAttemptNotRetried(t *testing.T) {
	fs := &fakeSleep{}
	calls := 0
	err := Retry(context.Background(), RetryConfig{Attempts: 5, Sleep: fs.sleep}, func(int) error {
		calls++
		return fmt.Errorf("run stopped: %w", context.DeadlineExceeded)
	})
	re, ok := AsRetry(err)
	if !ok || calls != 1 || re.Attempts != 1 {
		t.Fatalf("interrupted attempt was retried: err=%v calls=%d", err, calls)
	}
	if !Interrupted(err) {
		t.Fatal("RetryError must preserve the Interrupted classification")
	}
}

func TestRetryDeadContextBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, RetryConfig{Sleep: (&fakeSleep{}).sleep}, func(int) error {
		calls++
		return nil
	})
	re, ok := AsRetry(err)
	if !ok || calls != 0 || re.Attempts != 0 {
		t.Fatalf("dead context still attempted: err=%v calls=%d", err, calls)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("give-up must carry the context error, got %v", err)
	}
}

func TestRetryRefusesSleepPastDeadline(t *testing.T) {
	// The remaining budget (10ms) cannot cover the first backoff (>=25s), so
	// the retry gives up immediately instead of sleeping into the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	fs := &fakeSleep{}
	calls := 0
	start := time.Now()
	err := Retry(ctx, RetryConfig{
		Attempts: 5,
		Base:     50 * time.Second,
		Sleep:    fs.sleep,
	}, func(int) error {
		calls++
		return errors.New("transient")
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry slept toward a dead deadline (%v)", elapsed)
	}
	re, ok := AsRetry(err)
	if !ok || calls != 1 || re.Attempts != 1 {
		t.Fatalf("deadline-doomed backoff not short-circuited: err=%v calls=%d", err, calls)
	}
	if len(fs.ds) != 0 {
		t.Fatalf("slept %v despite doomed deadline", fs.ds)
	}
}

func TestRetryBackoffScheduleDeterministic(t *testing.T) {
	schedule := func() []time.Duration {
		fs := &fakeSleep{}
		Retry(context.Background(), RetryConfig{
			Attempts: 5,
			Base:     100 * time.Millisecond,
			Max:      time.Second,
			Seed:     7,
			Sleep:    fs.sleep,
		}, func(int) error { return errors.New("x") })
		return fs.ds
	}
	a, b := schedule(), schedule()
	if len(a) != 4 {
		t.Fatalf("5 attempts must back off 4 times, got %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter schedule not reproducible: %v vs %v", a, b)
		}
	}
	// Exponential shape with 50% jitter: each backoff lies in [d/2, d] for
	// d = min(base*2^i, max).
	want := []time.Duration{100, 200, 400, 800}
	for i, d := range a {
		lo, hi := want[i]*time.Millisecond/2, want[i]*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("backoff %d = %v outside [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestRetryBackoffSaturates(t *testing.T) {
	fs := &fakeSleep{}
	Retry(context.Background(), RetryConfig{
		Attempts: 12,
		Base:     time.Millisecond,
		Max:      8 * time.Millisecond,
		Jitter:   0, // exact doubling, no randomization
		Sleep:    fs.sleep,
	}, func(int) error { return errors.New("x") })
	want := []time.Duration{1, 2, 4, 8, 8, 8, 8, 8, 8, 8, 8}
	if len(fs.ds) != len(want) {
		t.Fatalf("got %d backoffs, want %d", len(fs.ds), len(want))
	}
	for i, d := range fs.ds {
		if d != want[i]*time.Millisecond {
			t.Fatalf("backoff %d = %v, want %v (schedule %v)", i, d, want[i]*time.Millisecond, fs.ds)
		}
	}
}

func TestRetryCancelledDuringSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, RetryConfig{
		Attempts: 5,
		Sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the context dies mid-backoff
			return ctx.Err()
		},
	}, func(int) error {
		calls++
		return errors.New("transient")
	})
	re, ok := AsRetry(err)
	if !ok || calls != 1 || re.Attempts != 1 {
		t.Fatalf("cancellation during backoff not honored: err=%v calls=%d", err, calls)
	}
	if !Interrupted(err) {
		t.Fatalf("cancellation during backoff not classified Interrupted: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("context error lost from chain: %v", err)
	}
}

// TestRetryCancelledMidBackoffPrompt pins the real-sleep path: a cancel that
// lands mid-backoff must return well before the jittered delay elapses and
// carry the Interrupted classification, not just the attempt's own error.
func TestRetryCancelledMidBackoffPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	attemptErr := errors.New("transient")
	start := time.Now()
	err := Retry(ctx, RetryConfig{
		Attempts: 3,
		Base:     2 * time.Second, // first backoff far exceeds the cancel point
		Max:      2 * time.Second,
		Jitter:   0,
	}, func(int) error { return attemptErr })
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("cancelled retry slept %v, want prompt return", elapsed)
	}
	if !Interrupted(err) {
		t.Fatalf("cancelled backoff not classified Interrupted: %v", err)
	}
	if !errors.Is(err, attemptErr) {
		t.Fatalf("attempt error lost from chain: %v", err)
	}
	re, ok := AsRetry(err)
	if !ok || re.Attempts != 1 {
		t.Fatalf("unexpected retry shape: %+v ok=%v", re, ok)
	}
}
