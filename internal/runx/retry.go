package runx

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// RetryConfig parameterizes Retry. The zero value selects the defaults: 3
// attempts, 50ms base backoff doubling to a 2s cap, 50% jitter, every error
// retryable except cancellation/deadline.
type RetryConfig struct {
	// Attempts is the total attempt budget, including the first; <=0 selects 3.
	Attempts int
	// Base is the backoff before the second attempt; it doubles per retry up
	// to Max. <=0 selects 50ms (Base) / 2s (Max).
	Base time.Duration
	Max  time.Duration
	// Jitter is the fraction of each backoff that is randomized: the actual
	// sleep is d*(1-Jitter) + U[0,1)*d*Jitter. Clamped to [0,1]; a negative
	// value selects the 0.5 default, 0 disables jitter entirely.
	Jitter float64
	// Seed drives the jitter RNG, so a given (seed, error sequence) produces
	// an exactly reproducible backoff schedule. 0 selects 1.
	Seed int64
	// Retryable classifies errors; nil means every error is retryable. A
	// cancellation/deadline error (Interrupted) is never retried regardless —
	// the budget owns that decision, not the classifier.
	Retryable func(error) bool
	// Sleep replaces the backoff sleep, for tests and external clocks. nil
	// selects a real context-aware sleep. It must return ctx.Err() when the
	// context dies before the duration elapses.
	Sleep func(ctx context.Context, d time.Duration) error
}

// RetryError is the typed give-up: the attempt budget is spent, or the
// context/budget died, or the last error was classified permanent. Last is
// the error of the final attempt (or the context error when the budget died
// between attempts) and is exposed via Unwrap, so errors.Is/As reach through
// to the underlying cause.
type RetryError struct {
	// Attempts counts the attempts actually made.
	Attempts int
	// Permanent reports the give-up reason was classification, not
	// exhaustion: the last error was not retryable.
	Permanent bool
	// Last is the final attempt's error.
	Last error
}

// Error implements error.
func (e *RetryError) Error() string {
	why := "attempts exhausted"
	switch {
	case e.Permanent:
		why = "permanent error"
	case Interrupted(e.Last):
		why = "budget exhausted"
	}
	return fmt.Sprintf("retry gave up after %d attempt(s) (%s): %v", e.Attempts, why, e.Last)
}

// Unwrap exposes the final attempt's error to errors.Is/As.
func (e *RetryError) Unwrap() error { return e.Last }

// AsRetry unwraps err to a *RetryError when one is in its chain.
func AsRetry(err error) (*RetryError, bool) {
	var re *RetryError
	if errors.As(err, &re) {
		return re, true
	}
	return nil, false
}

// Retry runs fn under jittered exponential backoff until it succeeds, the
// attempt budget is spent, the error is classified permanent, or the context
// dies. fn receives the 1-based attempt number. A failure is reported as a
// *RetryError wrapping the last attempt's error; nil means an attempt
// succeeded.
//
// Retry is budget-aware in both directions: it polls ctx before every
// attempt, and it refuses to start a backoff sleep that cannot complete
// before the context deadline — a retry that would wake up dead gives up
// immediately instead of burning the remaining budget asleep.
func Retry(ctx context.Context, cfg RetryConfig, fn func(attempt int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	attempts := cfg.Attempts
	if attempts <= 0 {
		attempts = 3
	}
	base := cfg.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := cfg.Max
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	jitter := cfg.Jitter
	if jitter < 0 {
		jitter = 0.5
	}
	if jitter > 1 {
		jitter = 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = realSleep
	}
	rng := rand.New(rand.NewSource(seed))

	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last == nil {
				last = err
			}
			return &RetryError{Attempts: attempt - 1, Last: last}
		}
		last = fn(attempt)
		if last == nil {
			return nil
		}
		if Interrupted(last) {
			// The budget, not the operation, stopped the attempt: more tries
			// cannot help and would double-spend an already-drained budget.
			return &RetryError{Attempts: attempt, Last: last}
		}
		if cfg.Retryable != nil && !cfg.Retryable(last) {
			return &RetryError{Attempts: attempt, Permanent: true, Last: last}
		}
		if attempt >= attempts {
			return &RetryError{Attempts: attempt, Last: last}
		}
		d := backoff(base, maxd, attempt-1)
		if jitter > 0 {
			d = time.Duration(float64(d)*(1-jitter) + rng.Float64()*float64(d)*jitter)
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
			return &RetryError{Attempts: attempt, Last: last}
		}
		if err := sleep(ctx, d); err != nil {
			// The context died mid-backoff: classify the give-up as
			// interrupted while keeping the attempt's own error reachable.
			return &RetryError{Attempts: attempt, Last: errors.Join(err, last)}
		}
	}
}

// backoff returns base*2^n capped at max, saturating instead of overflowing.
func backoff(base, max time.Duration, n int) time.Duration {
	d := base
	for i := 0; i < n; i++ {
		if d >= max/2 {
			return max
		}
		d *= 2
	}
	if d > max {
		return max
	}
	return d
}

// realSleep waits d or until ctx dies, whichever comes first.
func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
