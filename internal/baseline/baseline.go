// Package baseline implements the comparison flows of the paper's Table I:
//
//   - TwoStageSpacing: a spacing-uniformity-aware layout decomposition in the
//     spirit of SUALD [16], followed by one independent ILT run [6];
//   - TwoStageRelaxation: a relaxation-rounding decomposition standing in for
//     the SDP-based decomposer of [17], followed by one ILT run;
//   - UnifiedGreedy: the ICCAD'17 simultaneous framework [10], which selects
//     among candidates by greedy pruning on *intermediate* mask-optimization
//     printability — accurate but expensive, and myopic when trajectories
//     cross (the paper's Fig. 1b argument).
//
// All flows share the decomposition-candidate generator and the ILT engine,
// so Table I differences come from the selection policy alone — exactly the
// comparison the paper makes.
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"ldmo/internal/decomp"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/simclock"
)

// Result is the outcome of one baseline flow on one layout.
type Result struct {
	Flow    string
	Decomp  decomp.Decomposition
	ILT     ilt.Result
	Seconds float64 // deterministic model seconds (simclock)
	// DSSeconds/MOSeconds split Seconds into decomposition selection and
	// mask optimization (the Fig. 1c breakdown). Zero for flows that do
	// not separate the phases.
	DSSeconds float64
	MOSeconds float64
}

// phase names used for the Fig. 1(c) runtime breakdown.
const (
	PhaseDS = "DS" // decomposition selection
	PhaseMO = "MO" // mask optimization
)

// sameMaskStats returns the minimum and variance of same-mask pair spacings
// within the optical interaction range.
func sameMaskStats(d decomp.Decomposition, nmax float64) (minDist, variance float64) {
	var dists []float64
	minDist = math.Inf(1)
	pats := d.Layout.Patterns
	for i := 0; i < len(pats); i++ {
		for j := i + 1; j < len(pats); j++ {
			if d.Assign[i] != d.Assign[j] {
				continue
			}
			dd := pats[i].Dist(pats[j])
			if dd > 2*nmax {
				continue
			}
			dists = append(dists, dd)
			if dd < minDist {
				minDist = dd
			}
		}
	}
	if len(dists) == 0 {
		return math.Inf(1), 0
	}
	mean := 0.0
	for _, v := range dists {
		mean += v
	}
	mean /= float64(len(dists))
	for _, v := range dists {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(dists))
	return minDist, variance
}

// SpacingColoring picks, among the raw legal colorings, the decomposition
// with the most uniform same-mask spacing: minimize the variance of
// same-mask spacings, breaking ties by the larger minimum distance. This is
// the spacing-uniformity objective of SUALD [16], evaluated litho-blind over
// the coloring space that predates this paper's MST + n-wise generation.
func SpacingColoring(l layout.Layout, cp layout.ClassifyParams, clock *simclock.Clock) (decomp.Decomposition, error) {
	cands, err := legalColorings(l, 64, clock)
	if err != nil {
		return decomp.Decomposition{}, err
	}
	best := 0
	bestMin, bestVar := math.Inf(-1), math.Inf(1)
	for i, d := range cands {
		mn, vr := sameMaskStats(d, cp.NMax)
		if vr < bestVar || (vr == bestVar && mn > bestMin) {
			best, bestMin, bestVar = i, mn, vr
		}
	}
	if clock != nil {
		// The discrete spacing-uniformity solve is the expensive stage
		// of the two-stage flow.
		clock.Charge(simclock.CostSDPSolve, 1)
	}
	return cands[best], nil
}

// RelaxationColoring stands in for the SDP-based decomposer of [17]: the
// +-1 mask assignment is relaxed to [-1, 1], the weighted conflict objective
// sum w_ij x_i x_j is minimized by projected gradient descent, the result is
// rounded by sign, and SP violations are repaired by greedy flips.
func RelaxationColoring(l layout.Layout, cp layout.ClassifyParams, seed int64, clock *simclock.Clock) (decomp.Decomposition, error) {
	n := len(l.Patterns)
	if n == 0 {
		return decomp.Decomposition{}, fmt.Errorf("baseline: layout %q has no patterns", l.Name)
	}
	// Interaction weights: quadratic in inverse spacing, heavy for SP.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := l.Patterns[i].Dist(l.Patterns[j])
			if d > cp.NMax {
				continue
			}
			if d < 1 {
				d = 1
			}
			wij := (cp.NMax / d) * (cp.NMax / d)
			if d <= cp.NMin {
				wij *= 10 // hard conflicts dominate the objective
			}
			w[i][j] = wij
			w[j][i] = wij
		}
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	const iters = 300
	const step = 0.02
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			g := 0.0
			for j := 0; j < n; j++ {
				g += w[i][j] * x[j]
			}
			x[i] -= step * g
			if x[i] > 1 {
				x[i] = 1
			} else if x[i] < -1 {
				x[i] = -1
			}
		}
	}
	assign := make([]uint8, n)
	for i, v := range x {
		if v < 0 {
			assign[i] = 1
		}
	}
	repairSP(l, cp.NMin, assign)
	if clock != nil {
		clock.Charge(simclock.CostSDPSolve, 1)
		clock.Charge(simclock.CostGraphOp, iters)
	}
	return decomp.New(l, assign).Canonicalize(), nil
}

// repairSP greedily flips vertices until no same-mask SP pair remains (or no
// flip helps; decomposable layouts always converge).
func repairSP(l layout.Layout, nmin float64, assign []uint8) {
	adj := layout.ConflictGraph(l.Patterns, nmin)
	conflicts := func() int {
		c := 0
		for u, nbrs := range adj {
			for _, v := range nbrs {
				if v > u && assign[u] == assign[v] {
					c++
				}
			}
		}
		return c
	}
	for iter := 0; iter < len(assign)*4; iter++ {
		cur := conflicts()
		if cur == 0 {
			return
		}
		bestV, bestGain := -1, 0
		for v := range assign {
			local := 0
			for _, u := range adj[v] {
				if assign[u] == assign[v] {
					local++
				} else {
					local--
				}
			}
			if local > bestGain {
				bestGain = local
				bestV = v
			}
		}
		if bestV < 0 {
			return
		}
		assign[bestV] ^= 1
	}
}

// TwoStage runs a litho-blind decomposition followed by one full ILT run.
// variant selects the decomposer: "spacing" ([16]-like) or "relaxation"
// ([17]-like).
func TwoStage(variant string, l layout.Layout, cfg ilt.Config, clockModel simclock.Model) (Result, error) {
	clock := simclock.New(clockModel)
	clock.SetPhase(PhaseDS)
	cp := layout.DefaultClassifyParams()
	var d decomp.Decomposition
	var err error
	switch variant {
	case "spacing":
		d, err = SpacingColoring(l, cp, clock)
	case "relaxation":
		d, err = RelaxationColoring(l, cp, 1, clock)
	default:
		return Result{}, fmt.Errorf("baseline: unknown two-stage variant %q", variant)
	}
	if err != nil {
		return Result{}, err
	}
	cfg.AbortOnViolation = false // two-stage flows cannot reselect
	opt, err := ilt.NewOptimizer(l, cfg)
	if err != nil {
		return Result{}, err
	}
	clock.SetPhase(PhaseMO)
	opt.SetClock(clock)
	res := opt.Run(d)
	return Result{
		Flow:    "twostage-" + variant,
		Decomp:  d,
		ILT:     res,
		Seconds: clock.Seconds(),
	}, nil
}

// GreedyConfig tunes the unified greedy-pruning flow.
type GreedyConfig struct {
	// MaxCandidates caps the enumerated legal colorings the flow probes.
	// The ICCAD'17 discrete engine explores raw colorings — it predates
	// this paper's MST + n-wise candidate generation — so the baseline
	// enumerates the exhaustive legal set up to this cap.
	MaxCandidates int
	// PruneEvery is the optimization interval between pruning decisions:
	// every PruneEvery iterations the surviving candidate set shrinks to
	// KeepFraction of its size (strictly decreasing, at least one kept)
	// by intermediate printability.
	PruneEvery int
	// KeepFraction of candidates survives each pruning decision.
	KeepFraction float64
	// Weights score the intermediate results.
	Weights model.ScoreWeights
}

// DefaultGreedyConfig mirrors the ICCAD'17 behaviour: all legal colorings
// are co-optimized with warm-started ILT, and every three iterations the
// worse half is pruned by *intermediate* printability until one survivor
// takes the remaining budget. Intermediate quality is measured the way the
// ICCAD'17 engine measures it — the L2 objective it descends plus hard
// print violations; per-checkpoint EPE counting during selection is this
// paper's addition. Early commitment on that estimate is exactly what the
// paper criticizes: when trajectories cross (Fig. 1b), intermediate scores
// misrank candidates and the pruned set loses the eventual winner.
func DefaultGreedyConfig() GreedyConfig {
	return GreedyConfig{
		MaxCandidates: 32,
		PruneEvery:    3,
		KeepFraction:  0.75,
		Weights:       model.ScoreWeights{Alpha: 1, Beta: 0, Gamma: 8000},
	}
}

// legalColorings enumerates the legal double-patterning colorings of l (no
// same-mask SP pair), capped at maxN candidates in canonical order. Layouts
// whose legal space is empty (non-bipartite conflict graphs) fall back to
// the repaired relaxation coloring.
func legalColorings(l layout.Layout, maxN int, clock *simclock.Clock) ([]decomp.Decomposition, error) {
	if len(l.Patterns) == 0 {
		return nil, fmt.Errorf("baseline: layout %q has no patterns", l.Name)
	}
	if maxN <= 0 {
		maxN = 16
	}
	cp := layout.DefaultClassifyParams()
	all := decomp.EnumerateAll(l)
	var out []decomp.Decomposition
	for _, d := range all {
		if d.Valid(cp.NMin) {
			out = append(out, d)
			if len(out) >= maxN {
				break
			}
		}
	}
	if clock != nil {
		clock.Charge(simclock.CostGraphOp, len(all))
	}
	if len(out) == 0 {
		d, err := RelaxationColoring(l, cp, 1, clock)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// UnifiedGreedy implements the [10]-style simultaneous flow: every legal
// coloring is optimized in lockstep with warm-started ILT sessions, pruned
// by intermediate printability every PruneEvery iterations, and the last
// survivor finishes the full budget. The cost of iterations spent on
// eventually-pruned candidates is the decomposition-selection (DS) share,
// the winner's own trajectory the mask-optimization (MO) share — the
// Fig. 1(c) split.
func UnifiedGreedy(l layout.Layout, cfg ilt.Config, gc GreedyConfig, clockModel simclock.Model) (Result, *simclock.Clock, error) {
	clock := simclock.New(clockModel)
	cands, err := legalColorings(l, gc.MaxCandidates, clock)
	if err != nil {
		return Result{}, nil, err
	}
	pruneEvery := gc.PruneEvery
	if pruneEvery <= 0 {
		pruneEvery = 3
	}
	cfg.AbortOnViolation = false
	opt, err := ilt.NewOptimizer(l, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	opt.SetClock(clock)

	type track struct {
		d     decomp.Decomposition
		s     *ilt.Session
		score float64
	}
	alive := make([]*track, len(cands))
	for i, d := range cands {
		alive[i] = &track{d: d, s: opt.NewSession(d)}
	}
	loserIters := 0
	for len(alive) > 1 {
		for _, t := range alive {
			t.s.Step(pruneEvery)
			snap := t.s.Snapshot()
			t.score = snap.Score(gc.Weights.Alpha, gc.Weights.Beta, gc.Weights.Gamma)
		}
		sort.Slice(alive, func(i, j int) bool { return alive[i].score < alive[j].score })
		kf := gc.KeepFraction
		if kf <= 0 || kf >= 1 {
			kf = 0.5
		}
		keep := int(math.Ceil(float64(len(alive)) * kf))
		if keep >= len(alive) {
			keep = len(alive) - 1
		}
		if keep < 1 {
			keep = 1
		}
		for _, t := range alive[keep:] {
			loserIters += t.s.Iter()
		}
		alive = alive[:keep]
		if alive[0].s.Remaining() == 0 {
			break
		}
	}
	winner := alive[0]
	for _, t := range alive[1:] {
		loserIters += t.s.Iter()
	}
	winner.s.Step(winner.s.Remaining())
	res := winner.s.Snapshot()

	total := clock.Seconds()
	winnerIters := winner.s.Iter()
	den := float64(loserIters + winnerIters)
	moSec := total
	if den > 0 {
		moSec = total * float64(winnerIters) / den
	}
	return Result{
		Flow:      "unified-greedy",
		Decomp:    winner.d,
		ILT:       res,
		Seconds:   total,
		DSSeconds: total - moSec,
		MOSeconds: moSec,
	}, clock, nil
}
