package baseline

import (
	"math"
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/geom"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
	"ldmo/internal/simclock"
)

// cellRect places a contact at library slot (c, r).
func cellRect(c, r int) geom.Rect {
	return geom.RectWH(layout.SlotOriginNM+layout.SlotPitchXNM*c,
		layout.SlotOriginNM+layout.SlotPitchYNM*r,
		layout.ContactNM, layout.ContactNM)
}

func layoutWindow() geom.Rect { return geom.RectWH(0, 0, layout.TileNM, layout.TileNM) }

func fastILT() ilt.Config {
	cfg := ilt.DefaultConfig()
	cfg.Litho = litho.FastParams()
	cfg.MaxIters = 6
	return cfg
}

func TestSpacingColoringLegal(t *testing.T) {
	cp := layout.DefaultClassifyParams()
	for _, cell := range layout.Cells() {
		d, err := SpacingColoring(cell, cp, nil)
		if err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
		if !d.Valid(cp.NMin) {
			t.Fatalf("%s: spacing coloring leaves SP pair on one mask", cell.Name)
		}
	}
}

func TestRelaxationColoringLegal(t *testing.T) {
	cp := layout.DefaultClassifyParams()
	for _, cell := range layout.Cells() {
		d, err := RelaxationColoring(cell, cp, 1, nil)
		if err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
		if !d.Valid(cp.NMin) {
			t.Fatalf("%s: relaxation coloring leaves SP pair on one mask", cell.Name)
		}
		if d.Assign[0] != 0 {
			t.Fatalf("%s: result not canonical", cell.Name)
		}
	}
}

func TestRelaxationColoringEmptyLayout(t *testing.T) {
	if _, err := RelaxationColoring(layout.Layout{Name: "x"}, layout.DefaultClassifyParams(), 1, nil); err == nil {
		t.Fatal("empty layout must error")
	}
}

func TestRepairSPFixesViolations(t *testing.T) {
	l, err := layout.Cell("NAND3_X2")
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]uint8, len(l.Patterns)) // all on one mask: many conflicts
	repairSP(l, 80, assign)
	if !decomp.New(l, assign).Valid(80) {
		t.Fatal("repair did not clear SP conflicts")
	}
}

func TestTwoStageFlows(t *testing.T) {
	l, err := layout.Cell("NAND3_X2")
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []string{"spacing", "relaxation"} {
		res, err := TwoStage(variant, l, fastILT(), simclock.DefaultModel())
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if res.Flow != "twostage-"+variant {
			t.Fatalf("flow name %q", res.Flow)
		}
		if res.Seconds <= 0 {
			t.Fatalf("%s: no model time accumulated", variant)
		}
		if res.ILT.Printed == nil {
			t.Fatalf("%s: no printed image", variant)
		}
		// The SDP-style solve must dominate a short ILT in model time.
		if res.Seconds < simclock.DefaultModel()[simclock.CostSDPSolve] {
			t.Fatalf("%s: model time %g below the decomposition solve cost", variant, res.Seconds)
		}
	}
	if _, err := TwoStage("bogus", l, fastILT(), simclock.DefaultModel()); err == nil {
		t.Fatal("unknown variant must error")
	}
}

func TestUnifiedGreedy(t *testing.T) {
	l, err := layout.Cell("AOI211_X1")
	if err != nil {
		t.Fatal(err)
	}
	res, clock, err := UnifiedGreedy(l, fastILT(), DefaultGreedyConfig(), simclock.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow != "unified-greedy" {
		t.Fatalf("flow name %q", res.Flow)
	}
	if res.DSSeconds <= 0 || res.MOSeconds <= 0 {
		t.Fatalf("phase seconds DS=%g MO=%g", res.DSSeconds, res.MOSeconds)
	}
	// The defining property of the [10]-style flow: decomposition
	// selection costs more than mask optimization (paper Fig. 1c).
	if res.DSSeconds <= res.MOSeconds {
		t.Fatalf("DS %g not dominant over MO %g", res.DSSeconds, res.MOSeconds)
	}
	if clock.Seconds() <= 0 {
		t.Fatal("clock empty")
	}
	if got := res.DSSeconds + res.MOSeconds; got < res.Seconds*0.99 || got > res.Seconds*1.01 {
		t.Fatalf("DS+MO = %g, total = %g", got, res.Seconds)
	}
	if !res.Decomp.Valid(80) {
		t.Fatal("selected decomposition illegal")
	}
}

func TestUnifiedGreedySingleCandidate(t *testing.T) {
	// A layout with a unique legal decomposition must short-circuit.
	l := layout.Layout{Name: "single", Window: layoutWindow()}
	l.Patterns = append(l.Patterns,
		cellRect(0, 0), cellRect(1, 0)) // one SP pair: unique split
	res, _, err := UnifiedGreedy(l, fastILT(), DefaultGreedyConfig(), simclock.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decomp.Valid(80) {
		t.Fatal("invalid decomposition")
	}
}

func TestSameMaskStats(t *testing.T) {
	l, err := layout.Cell("NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	// Alternating row assignment: same-mask pairs exist at 130nm pitch.
	d := decomp.New(l, []uint8{0, 1, 0, 1, 0})
	mn, vr := sameMaskStats(d, 98)
	if mn <= 0 || vr < 0 {
		t.Fatalf("stats = %g, %g", mn, vr)
	}
	// A two-pattern layout split across masks has no same-mask pairs.
	pair := layout.Layout{Name: "p", Window: layoutWindow(),
		Patterns: []geom.Rect{cellRect(0, 0), cellRect(2, 2)}}
	dp := decomp.New(pair, []uint8{0, 1})
	mn, vr = sameMaskStats(dp, 98)
	if !math.IsInf(mn, 1) || vr != 0 {
		t.Fatalf("empty stats = %g, %g", mn, vr)
	}
}
