package baseline

import (
	"math/rand"
	"testing"

	"ldmo/internal/layout"
	"ldmo/internal/simclock"
)

func TestLegalColoringsAllValid(t *testing.T) {
	for _, cell := range layout.Cells() {
		cands, err := legalColorings(cell, 32, nil)
		if err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
		if len(cands) == 0 {
			t.Fatalf("%s: no legal colorings", cell.Name)
		}
		seen := map[string]bool{}
		for _, d := range cands {
			if !d.Valid(80) {
				t.Fatalf("%s: illegal coloring %s", cell.Name, d.Key())
			}
			if seen[d.Key()] {
				t.Fatalf("%s: duplicate coloring", cell.Name)
			}
			seen[d.Key()] = true
		}
	}
}

func TestLegalColoringsCap(t *testing.T) {
	l, err := layout.Cell("DFF_X1")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := legalColorings(l, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 4 {
		t.Fatalf("cap ignored: %d", len(cands))
	}
	// Zero cap falls back to the default.
	cands, err = legalColorings(l, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || len(cands) > 16 {
		t.Fatalf("default cap gave %d", len(cands))
	}
}

func TestLegalColoringsEmptyLayout(t *testing.T) {
	if _, err := legalColorings(layout.Layout{Name: "e"}, 8, nil); err == nil {
		t.Fatal("empty layout must error")
	}
}

func TestLegalColoringsChargesClock(t *testing.T) {
	clk := simclock.New(simclock.DefaultModel())
	l, err := layout.Cell("NAND3_X2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := legalColorings(l, 16, clk); err != nil {
		t.Fatal(err)
	}
	if clk.Count(simclock.CostGraphOp) == 0 {
		t.Fatal("no graph ops charged")
	}
}

func TestRelaxationColoringDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pool, err := layout.GenerateSet(rng.Int63(), 5, layout.DefaultGenParams())
	if err != nil {
		t.Fatal(err)
	}
	cp := layout.DefaultClassifyParams()
	for _, l := range pool {
		a, err := RelaxationColoring(l, cp, 9, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RelaxationColoring(l, cp, 9, nil)
		if err != nil {
			t.Fatal(err)
		}
		if a.Key() != b.Key() {
			t.Fatalf("%s: relaxation not deterministic", l.Name)
		}
		if !a.Valid(cp.NMin) {
			t.Fatalf("%s: relaxation coloring invalid", l.Name)
		}
	}
}
