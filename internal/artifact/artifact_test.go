package artifact

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldmo/internal/faultinject"
)

const (
	testKind    = "test-blob"
	testVersion = 3
)

func sealFile(t *testing.T, name string, payload []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := WriteFile(path, testKind, testVersion, payload); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox\x00\x01\x02")
	path := sealFile(t, "a.bin", payload)
	got, err := ReadFile(path, testKind, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload did not round-trip: %q", got)
	}
	// Identical payloads seal to identical bytes (the artifact contract).
	other := sealFile(t, "b.bin", payload)
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(other)
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical payloads sealed to different bytes")
	}
}

func TestWriteFileLeavesNoLitter(t *testing.T) {
	path := sealFile(t, "a.bin", []byte("x"))
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "a.bin" {
		t.Fatalf("unexpected dir contents: %v", entries)
	}
}

func TestMissingFileIsNotExist(t *testing.T) {
	_, err := ReadFile(filepath.Join(t.TempDir(), "nope.bin"), testKind, testVersion)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file returned %v, want fs.ErrNotExist in chain", err)
	}
	if Rejected(err) {
		t.Fatal("a missing file must not count as a rejected artifact")
	}
}

// TestCorruptionClasses flips or chops every region of the envelope and
// demands the matching typed error with the path in the message.
func TestCorruptionClasses(t *testing.T) {
	payload := []byte("payload payload payload")
	cases := []struct {
		name     string
		mutate   func(b []byte) []byte
		sentinel error
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, ErrCorrupt},
		{"payload bitflip", func(b []byte) []byte { b[len(b)-3] ^= 0x10; return b }, ErrCorrupt},
		{"crc bitflip", func(b []byte) []byte { b[len(b)-len(payload)-1] ^= 0x01; return b }, ErrCorrupt},
		{"truncated header", func(b []byte) []byte { return b[:5] }, ErrCorrupt},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-4] }, ErrCorrupt},
		{"empty file", func(b []byte) []byte { return nil }, ErrCorrupt},
		{"envelope version skew", func(b []byte) []byte { b[5] ^= 0x07; return b }, ErrVersionMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := sealFile(t, "v.bin", payload)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = ReadFile(path, testKind, testVersion)
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("got %v, want %v", err, tc.sentinel)
			}
			if !Rejected(err) {
				t.Fatalf("Rejected(%v) = false", err)
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("error does not name the file: %v", err)
			}
		})
	}
}

func TestWrongKindAndPayloadVersion(t *testing.T) {
	path := sealFile(t, "k.bin", []byte("data"))
	if _, err := ReadFile(path, "other-kind", testVersion); !errors.Is(err, ErrWrongKind) {
		t.Fatalf("wrong kind returned %v", err)
	}
	if _, err := ReadFile(path, testKind, testVersion+1); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("payload version skew returned %v", err)
	}
	// The error must say what was found and what was expected.
	_, err := ReadFile(path, "other-kind", testVersion)
	if !strings.Contains(err.Error(), testKind) || !strings.Contains(err.Error(), "other-kind") {
		t.Fatalf("wrong-kind error lacks expected/found kinds: %v", err)
	}
}

func TestQuarantine(t *testing.T) {
	path := sealFile(t, "q.bin", []byte("data"))
	q, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if q != path+QuarantineSuffix {
		t.Fatalf("quarantine path %q", q)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("original file still present after quarantine")
	}
	if _, err := os.Stat(q); err != nil {
		t.Fatal("quarantined file missing")
	}
}

// TestQuarantineTwice: quarantining the same path again must not clobber the
// first corpse — each call picks the next free suffix and reports it.
func TestQuarantineTwice(t *testing.T) {
	path := sealFile(t, "q.bin", []byte("first corpse"))
	q1, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if q1 != path+QuarantineSuffix {
		t.Fatalf("first quarantine path %q", q1)
	}

	if err := WriteFile(path, testKind, testVersion, []byte("second corpse")); err != nil {
		t.Fatal(err)
	}
	q2, err := Quarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := path + QuarantineSuffix + ".1"; q2 != want {
		t.Fatalf("second quarantine path %q, want %q", q2, want)
	}

	got1, err := ReadFile(q1, testKind, testVersion)
	if err != nil {
		t.Fatalf("first corpse unreadable: %v", err)
	}
	if string(got1) != "first corpse" {
		t.Fatalf("first corpse payload %q", got1)
	}
	got2, err := ReadFile(q2, testKind, testVersion)
	if err != nil {
		t.Fatalf("second corpse unreadable: %v", err)
	}
	if string(got2) != "second corpse" {
		t.Fatalf("second corpse payload %q", got2)
	}
	if _, err := os.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("original path still present after second quarantine")
	}
}

// TestFaultBitflip: the armed point corrupts exactly one matching read, on
// disk, then disarms.
func TestFaultBitflip(t *testing.T) {
	defer faultinject.Reset()
	path := sealFile(t, "shard_00001.bin", []byte("shard bytes"))
	clean := sealFile(t, "shard_00002.bin", []byte("other bytes"))

	faultinject.Set(faultinject.ArtifactBitflip, "shard_00001")
	if _, err := ReadFile(clean, testKind, testVersion); err != nil {
		t.Fatalf("non-matching file was corrupted: %v", err)
	}
	if _, err := ReadFile(path, testKind, testVersion); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bitflipped read returned %v, want ErrCorrupt", err)
	}
	// The corruption is at rest: a second read of the same bytes fails too,
	// and the point has disarmed.
	if faultinject.Enabled(faultinject.ArtifactBitflip) {
		t.Fatal("bitflip point still armed after firing")
	}
	if _, err := ReadFile(path, testKind, testVersion); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("re-read of corrupted file returned %v", err)
	}
}

func TestFaultTruncate(t *testing.T) {
	defer faultinject.Reset()
	path := sealFile(t, "t.bin", bytes.Repeat([]byte("abcd"), 64))
	faultinject.Set(faultinject.ArtifactTruncate, "")
	if _, err := ReadFile(path, testKind, testVersion); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated read returned %v, want ErrCorrupt", err)
	}
	if faultinject.Enabled(faultinject.ArtifactTruncate) {
		t.Fatal("truncate point still armed after firing")
	}
}
