// Package artifact is the persistence integrity layer: every durable blob
// the flow depends on (train checkpoints, dataset shards, exported models)
// travels inside a sealed envelope — magic, format version, payload kind,
// payload schema version, and a CRC32C over the payload — written atomically
// (temp file in the target directory, fsync, rename). A torn write, a bit
// flip, a file from another build, or a file of the wrong kind therefore
// surfaces as a typed error (ErrCorrupt / ErrVersionMismatch / ErrWrongKind)
// instead of being silently accepted or crashing a decoder, and callers can
// quarantine the bad file and recover instead of dying.
//
// Envelope layout (all integers big-endian):
//
//	offset  size  field
//	0       4     magic "LDMA"
//	4       2     envelope format version (currently 1)
//	6       2     payload kind length K
//	8       K     payload kind (ASCII, e.g. "train-checkpoint")
//	8+K     2     payload schema version (per kind, bumped on schema change)
//	10+K    8     payload length N
//	18+K    4     CRC32C (Castagnoli) of the payload bytes
//	22+K    N     payload (gob or JSON; the envelope does not care)
//
// Version policy: the envelope version changes only when this header layout
// changes; the payload schema version is owned by the writing package and
// bumped whenever its gob/JSON schema changes incompatibly. Readers demand
// an exact match on both — checkpoints are cheap to rebuild, so there is no
// migration machinery, only honest rejection.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"ldmo/internal/faultinject"
)

// Magic identifies a sealed LDMO artifact file.
const Magic = "LDMA"

// EnvelopeVersion is the header-layout version written by Seal.
const EnvelopeVersion uint16 = 1

// QuarantineSuffix is appended to a file name by Quarantine.
const QuarantineSuffix = ".quarantined"

// Sentinel errors distinguishing why a load was rejected. Wrapped errors
// carry the concrete detail (path, expected vs found); test with errors.Is.
var (
	// ErrCorrupt: the bytes are not a well-formed sealed artifact — bad
	// magic, truncated header or payload, or a CRC mismatch.
	ErrCorrupt = errors.New("artifact corrupt")
	// ErrVersionMismatch: the envelope or payload schema version differs
	// from what this build reads — the file comes from another build.
	ErrVersionMismatch = errors.New("artifact version mismatch")
	// ErrWrongKind: the file is a valid artifact of a different kind (e.g.
	// a dataset shard where a train checkpoint was expected).
	ErrWrongKind = errors.New("artifact kind mismatch")
)

// castagnoli is the CRC32C table (the polynomial with hardware support on
// amd64/arm64, the same checksum production storage systems use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal writes one sealed envelope around payload to w.
func Seal(w io.Writer, kind string, version uint16, payload []byte) error {
	if len(kind) == 0 || len(kind) > 255 {
		return fmt.Errorf("artifact: invalid kind %q", kind)
	}
	var hdr bytes.Buffer
	hdr.WriteString(Magic)
	be16 := func(v uint16) {
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], v)
		hdr.Write(b[:])
	}
	be16(EnvelopeVersion)
	be16(uint16(len(kind)))
	hdr.WriteString(kind)
	be16(version)
	var b8 [8]byte
	binary.BigEndian.PutUint64(b8[:], uint64(len(payload)))
	hdr.Write(b8[:])
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], crc32.Checksum(payload, castagnoli))
	hdr.Write(b4[:])
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Unseal reads one sealed envelope from r and returns the verified payload.
// name labels errors (usually the file path).
func Unseal(r io.Reader, name, kind string, version uint16) ([]byte, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("artifact %s: truncated before magic: %w", name, ErrCorrupt)
	}
	if string(magic[:]) != Magic {
		return nil, fmt.Errorf("artifact %s: bad magic %q (not a sealed artifact): %w", name, magic[:], ErrCorrupt)
	}
	r16 := func(field string) (uint16, error) {
		var b [2]byte
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, fmt.Errorf("artifact %s: truncated in %s: %w", name, field, ErrCorrupt)
		}
		return binary.BigEndian.Uint16(b[:]), nil
	}
	env, err := r16("envelope version")
	if err != nil {
		return nil, err
	}
	if env != EnvelopeVersion {
		return nil, fmt.Errorf("artifact %s: envelope version %d, this build reads %d: %w",
			name, env, EnvelopeVersion, ErrVersionMismatch)
	}
	klen, err := r16("kind length")
	if err != nil {
		return nil, err
	}
	if klen == 0 || klen > 255 {
		return nil, fmt.Errorf("artifact %s: implausible kind length %d: %w", name, klen, ErrCorrupt)
	}
	kb := make([]byte, klen)
	if _, err := io.ReadFull(r, kb); err != nil {
		return nil, fmt.Errorf("artifact %s: truncated in kind: %w", name, ErrCorrupt)
	}
	if string(kb) != kind {
		return nil, fmt.Errorf("artifact %s: holds %q, expected %q: %w", name, kb, kind, ErrWrongKind)
	}
	pv, err := r16("payload version")
	if err != nil {
		return nil, err
	}
	if pv != version {
		return nil, fmt.Errorf("artifact %s: %s schema version %d, this build reads %d: %w",
			name, kind, pv, version, ErrVersionMismatch)
	}
	var b8 [8]byte
	if _, err := io.ReadFull(r, b8[:]); err != nil {
		return nil, fmt.Errorf("artifact %s: truncated in payload length: %w", name, ErrCorrupt)
	}
	plen := binary.BigEndian.Uint64(b8[:])
	const maxPayload = 1 << 33 // 8 GiB: far above any real artifact, below alloc bombs
	if plen > maxPayload {
		return nil, fmt.Errorf("artifact %s: implausible payload length %d: %w", name, plen, ErrCorrupt)
	}
	var b4 [4]byte
	if _, err := io.ReadFull(r, b4[:]); err != nil {
		return nil, fmt.Errorf("artifact %s: truncated in checksum: %w", name, ErrCorrupt)
	}
	wantCRC := binary.BigEndian.Uint32(b4[:])
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("artifact %s: payload truncated: %w", name, ErrCorrupt)
	}
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("artifact %s: checksum mismatch (stored %08x, computed %08x): %w",
			name, wantCRC, got, ErrCorrupt)
	}
	return payload, nil
}

// WriteFile seals payload into path atomically: temp file in the target
// directory, fsync, rename. A crash mid-write leaves any previous file
// intact; a torn write can never produce a file that passes Unseal.
func WriteFile(path, kind string, version uint16, payload []byte) error {
	return AtomicWrite(path, func(w io.Writer) error {
		return Seal(w, kind, version, payload)
	})
}

// AtomicWrite writes a file with the crash-safety protocol of sealed
// artifacts — temp file in the target directory, fsync, rename — without the
// envelope. It exists for interchange formats (GDSII exports, say) that other
// tools must read: they get all-or-nothing durability even though their bytes
// cannot carry the LDMA header. write receives the temp file.
func AtomicWrite(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("artifact %s: dir: %w", path, err)
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("artifact %s: temp: %w", path, err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("artifact %s: write: %w", path, err)
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("artifact %s: write: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("artifact %s: commit: %w", path, err)
	}
	return nil
}

// ReadFile opens, unseals and verifies path. A missing file surfaces as the
// plain os.Open error (fs.ErrNotExist in the chain), so callers keep their
// "nothing to resume" fast path.
func ReadFile(path, kind string, version uint16) ([]byte, error) {
	corruptPoint(path)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Unseal(f, path, kind, version)
}

// Quarantine renames a rejected artifact aside so the next write can land
// cleanly and the operator can inspect (or delete) the bad bytes. The name is
// path+".quarantined", or path+".quarantined.N" for the smallest N that does
// not collide — quarantining the same path twice keeps both corpses instead
// of silently overwriting the earlier evidence. Returns the name actually
// used. (The probe-then-rename pair is not atomic across processes; two
// simultaneous quarantines of one path may race, which at worst merges two
// corpses — never loses the live file.)
func Quarantine(path string) (string, error) {
	q := path + QuarantineSuffix
	for n := 1; ; n++ {
		if _, err := os.Lstat(q); errors.Is(err, fs.ErrNotExist) {
			break
		} else if err != nil {
			return "", fmt.Errorf("artifact %s: quarantine probe %s: %w", path, q, err)
		}
		q = fmt.Sprintf("%s%s.%d", path, QuarantineSuffix, n)
	}
	if err := os.Rename(path, q); err != nil {
		return "", fmt.Errorf("artifact %s: quarantine: %w", path, err)
	}
	return q, nil
}

// Rejected reports whether err is one of the envelope rejection classes —
// the "quarantine and recover" conditions, as opposed to I/O failures or a
// simply missing file.
func Rejected(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersionMismatch) || errors.Is(err, ErrWrongKind)
}

// corruptPoint is the artifact-bitflip / artifact-truncate fault injection
// site: when armed with an argument that matches the file's base name as a
// substring (empty matches everything), the file is corrupted in place on
// disk — one payload byte inverted, or the file cut to half length — and the
// point disarms itself, so exactly one read observes at-rest corruption.
// Disarmed cost: two atomic loads per ReadFile.
func corruptPoint(path string) {
	bitflip := matchPoint(faultinject.ArtifactBitflip, path)
	truncate := matchPoint(faultinject.ArtifactTruncate, path)
	if !bitflip && !truncate {
		return
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		return // nothing to corrupt; stay armed for the next matching read
	}
	if bitflip {
		faultinject.Clear(faultinject.ArtifactBitflip)
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return
		}
		defer f.Close()
		// Invert the last byte: always inside the payload (or, for a
		// pathological empty payload, inside the CRC — either way Unseal
		// must reject the file).
		var b [1]byte
		if _, err := f.ReadAt(b[:], info.Size()-1); err != nil {
			return
		}
		b[0] ^= 0xFF
		f.WriteAt(b[:], info.Size()-1)
		return
	}
	faultinject.Clear(faultinject.ArtifactTruncate)
	os.Truncate(path, info.Size()/2)
}

// matchPoint reports whether the fault point is armed for this path.
func matchPoint(point, path string) bool {
	arg, ok := faultinject.Arg(point)
	if !ok {
		return false
	}
	return arg == "" || strings.Contains(filepath.Base(path), arg)
}

// StabilizeGob assigns encoding/gob's process-global type IDs to the given
// values' types, in argument order. gob hands out IDs from a global counter
// at first encode, so two encodings of identical state can differ byte for
// byte when unrelated code encoded other types first — which breaks the
// sealed artifacts' "identical state, identical bytes" contract and any
// byte-level resume comparison. Packages that persist artifacts call this
// from init() with every type they encode; init order is fixed by the import
// graph, so every process of a given binary assigns the same IDs and sealed
// payloads become byte-stable.
// Digest returns the canonical content fingerprint of a payload: the
// lowercase-hex SHA-256 of its bytes. Model checkpoints expose it as their
// provenance identity, and the job service folds it into dedupe cache keys
// so results computed by one set of weights are never served for another.
func Digest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

func StabilizeGob(vals ...any) {
	enc := gob.NewEncoder(io.Discard)
	for _, v := range vals {
		if err := enc.Encode(v); err != nil {
			panic(fmt.Sprintf("artifact: StabilizeGob(%T): %v", v, err))
		}
	}
}
