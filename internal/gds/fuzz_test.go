package gds

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"ldmo/internal/layout"
)

// validStream returns the serialized cell library — the seed every mutation
// below starts from.
func validStream(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, layout.Cells()[:3]); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadGDS throws mutated streams at the reader. The property under test
// is total robustness: Read must return a layout list or a descriptive error
// — never panic, never hang — and anything it accepts must re-serialize.
func FuzzReadGDS(f *testing.F) {
	valid := validStream(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x06, 0x00, 0x02, 0x02, 0x58}) // lone HEADER v600
	// Truncations at every small prefix and at record-ish boundaries.
	for _, n := range []int{1, 2, 3, 4, 5, 6, 10, len(valid) / 2, len(valid) - 4, len(valid) - 1} {
		if n >= 0 && n <= len(valid) {
			f.Add(valid[:n])
		}
	}
	// Dropped ENDLIB.
	f.Add(valid[:len(valid)-4])
	// A record that declares a length below its own 4-byte header.
	short := append([]byte(nil), valid...)
	short[0], short[1] = 0, 3
	f.Add(short)
	zero := append([]byte(nil), valid...)
	zero[0], zero[1] = 0, 0
	f.Add(zero)
	// An XY payload cut to a non-multiple of 8 coordinate bytes.
	if i := bytes.Index(valid, []byte{0x10, 0x03}); i >= 2 {
		odd := append([]byte(nil), valid...)
		odd[i-2], odd[i-1] = 0, 4+12 // 12 payload bytes: not a whole point pair
		f.Add(odd)
	}
	// Version skew in the HEADER payload.
	skew := append([]byte(nil), valid...)
	skew[4], skew[5] = 0xFF, 0xFF
	f.Add(skew)
	// Wrong leading record (a BGNLIB where the HEADER belongs).
	f.Add(append([]byte{0x00, 0x04, 0x01, 0x02}, valid...))

	f.Fuzz(func(t *testing.T, data []byte) {
		layouts, err := Read(bytes.NewReader(data))
		if err != nil {
			if !strings.HasPrefix(err.Error(), "gds: ") {
				t.Fatalf("error without package context: %v", err)
			}
			return
		}
		// Accepted input must be re-serializable (unnamed structures are the
		// one thing Read tolerates that Write refuses).
		for _, l := range layouts {
			if l.Name == "" {
				return
			}
		}
		if err := Write(io.Discard, layouts); err != nil {
			t.Fatalf("accepted layouts do not re-serialize: %v", err)
		}
	})
}

// TestReadCorruptionClasses pins a descriptive, typed rejection to every
// corruption class on the GDS artifact: bit-flipped record length,
// truncation, version skew, and a wrong leading record kind.
func TestReadCorruptionClasses(t *testing.T) {
	valid := validStream(t)
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"length-bitflip-below-header", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0], c[1] = 0, 2 // HEADER claims 2 bytes total
			return c
		}, "below the 4-byte header"},
		{"truncated-mid-record", func(b []byte) []byte {
			i := bytes.Index(b, []byte{0x10, 0x03})
			if i < 2 {
				t.Fatal("no XY record in the seed stream")
			}
			return b[:i+2+8] // stream ends inside the XY payload
		}, "truncated record 0x1003"},
		{"truncated-mid-header", func(b []byte) []byte {
			return b[:len(b)-7] // leave a partial 4-byte record header
		}, "truncated record header"},
		{"missing-endlib", func(b []byte) []byte {
			return b[:len(b)-4]
		}, "missing ENDLIB"},
		{"version-skew", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4], c[5] = 0x27, 0x0F // HEADER version 9999
			return c
		}, "unsupported GDSII stream version 9999"},
		{"wrong-first-record", func(b []byte) []byte {
			return append([]byte{0x00, 0x04, 0x01, 0x02}, b...)
		}, "not a GDSII stream"},
		{"empty-stream", func(b []byte) []byte {
			return nil
		}, "reading header"},
		{"short-units", func(b []byte) []byte {
			// Rewrite the UNITS record (type 0x0305) to carry 8 bytes only.
			i := bytes.Index(b, []byte{0x03, 0x05})
			if i < 2 {
				t.Fatal("no UNITS record in the seed stream")
			}
			c := append([]byte(nil), b[:i-2]...)
			c = append(c, 0x00, 0x0C, 0x03, 0x05)
			c = append(c, make([]byte, 8)...)
			return append(c, b[i+2+16:]...)
		}, "UNITS record carries 8 bytes"},
		{"zero-database-unit", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			i := bytes.Index(c, []byte{0x03, 0x05})
			if i < 2 {
				t.Fatal("no UNITS record in the seed stream")
			}
			for j := 0; j < 8; j++ { // zero the meters-per-dbu real
				c[i+2+8+j] = 0
			}
			return c
		}, "invalid database unit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(bytes.NewReader(tc.mutate(valid)))
			if err == nil {
				t.Fatal("corrupted stream accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestReadMisalignedXY: an XY record whose payload is not a whole number of
// coordinate pairs must be rejected by name, not rounded down.
func TestReadMisalignedXY(t *testing.T) {
	valid := validStream(t)
	i := bytes.Index(valid, []byte{0x10, 0x03})
	if i < 2 {
		t.Fatal("no XY record in the seed stream")
	}
	// Shrink the record to 12 payload bytes (1.5 points) and splice the
	// stream back together after the original 40-byte payload.
	c := append([]byte(nil), valid[:i-2]...)
	c = append(c, 0x00, 4+12, 0x10, 0x03)
	c = append(c, valid[i+2:i+2+12]...)
	c = append(c, valid[i+2+40:]...)
	_, err := Read(bytes.NewReader(c))
	if err == nil || !strings.Contains(err.Error(), "malformed XY") {
		t.Fatalf("misaligned XY returned %v, want a malformed-XY error", err)
	}
}

// TestReadUnterminatedStructure: ENDLIB arriving inside an open structure is
// a torn stream, not a valid library.
func TestReadUnterminatedStructure(t *testing.T) {
	var buf bytes.Buffer
	for _, rec := range []struct {
		typ     uint16
		payload []byte
	}{
		{recHeader, int16Payload(600)},
		{recBgnLib, int16Payload(make([]int16, 12)...)},
		{recLibName, asciiPayload("LDMO")},
		{recBgnStr, int16Payload(make([]int16, 12)...)},
		{recStrName, asciiPayload("torn")},
		{recEndLib, nil},
	} {
		if err := writeRecord(&buf, rec.typ, rec.payload); err != nil {
			t.Fatal(err)
		}
	}
	_, err := Read(&buf)
	if err == nil || !strings.Contains(err.Error(), "unterminated structure") {
		t.Fatalf("unterminated structure returned %v", err)
	}
}
