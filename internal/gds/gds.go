// Package gds reads and writes layouts as GDSII stream files, the de facto
// interchange format of physical design. The subset implemented is what
// contact layouts need: one structure per layout, BOUNDARY elements with
// axis-aligned rectangular polygons, 1nm database units. The simulation
// window is stored as a boundary on WindowLayer so layouts round-trip
// exactly; patterns live on ContactLayer.
//
// Files written here are deterministic (all timestamps zero), so golden
// tests and reproducible dataset exports work.
package gds

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ldmo/internal/geom"
	"ldmo/internal/layout"
)

// GDSII layer assignments used by this package.
const (
	// WindowLayer carries one rectangle per structure: the simulation
	// window.
	WindowLayer = 0
	// ContactLayer carries the contact patterns.
	ContactLayer = 1
)

// GDSII record types (subset).
const (
	recHeader   = 0x0002
	recBgnLib   = 0x0102
	recLibName  = 0x0206
	recUnits    = 0x0305
	recBgnStr   = 0x0502
	recStrName  = 0x0606
	recEndStr   = 0x0700
	recBoundary = 0x0800
	recLayer    = 0x0D02
	recDatatype = 0x0E02
	recXY       = 0x1003
	recEndEl    = 0x1100
	recEndLib   = 0x0400
)

// writeRecord emits one GDSII record: 2-byte length (including header),
// 2-byte type code, payload.
func writeRecord(w io.Writer, recType uint16, payload []byte) error {
	total := len(payload) + 4
	if total > math.MaxUint16 {
		return fmt.Errorf("gds: record 0x%04x too long (%d bytes)", recType, total)
	}
	hdr := [4]byte{}
	binary.BigEndian.PutUint16(hdr[0:], uint16(total))
	binary.BigEndian.PutUint16(hdr[2:], recType)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

func int16Payload(vals ...int16) []byte {
	out := make([]byte, 2*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint16(out[2*i:], uint16(v))
	}
	return out
}

func int32Payload(vals ...int32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.BigEndian.PutUint32(out[4*i:], uint32(v))
	}
	return out
}

// asciiPayload pads the name to even length with NUL, per the spec.
func asciiPayload(s string) []byte {
	b := []byte(s)
	if len(b)%2 == 1 {
		b = append(b, 0)
	}
	return b
}

// gdsReal8 encodes an excess-64 base-16 GDSII real.
func gdsReal8(v float64) []byte {
	out := make([]byte, 8)
	if v == 0 {
		return out
	}
	sign := byte(0)
	if v < 0 {
		sign = 0x80
		v = -v
	}
	exp := 0
	for v >= 1 {
		v /= 16
		exp++
	}
	for v < 1.0/16 {
		v *= 16
		exp--
	}
	out[0] = sign | byte(exp+64)
	mant := v
	for i := 1; i < 8; i++ {
		mant *= 256
		d := math.Floor(mant)
		out[i] = byte(d)
		mant -= d
	}
	return out
}

// parseReal8 decodes an excess-64 base-16 GDSII real.
func parseReal8(b []byte) float64 {
	if len(b) < 8 {
		return 0
	}
	sign := 1.0
	if b[0]&0x80 != 0 {
		sign = -1
	}
	exp := int(b[0]&0x7F) - 64
	mant := 0.0
	for i := 7; i >= 1; i-- {
		mant = (mant + float64(b[i])) / 256
	}
	return sign * mant * math.Pow(16, float64(exp))
}

// boundary emits one rectangular BOUNDARY element.
func boundary(w io.Writer, layer int16, r geom.Rect) error {
	if err := writeRecord(w, recBoundary, nil); err != nil {
		return err
	}
	if err := writeRecord(w, recLayer, int16Payload(layer)); err != nil {
		return err
	}
	if err := writeRecord(w, recDatatype, int16Payload(0)); err != nil {
		return err
	}
	xy := int32Payload(
		int32(r.X0), int32(r.Y0),
		int32(r.X1), int32(r.Y0),
		int32(r.X1), int32(r.Y1),
		int32(r.X0), int32(r.Y1),
		int32(r.X0), int32(r.Y0), // closed loop
	)
	if err := writeRecord(w, recXY, xy); err != nil {
		return err
	}
	return writeRecord(w, recEndEl, nil)
}

// Write streams the layouts as one GDSII library, one structure per layout.
func Write(w io.Writer, layouts []layout.Layout) error {
	if err := writeRecord(w, recHeader, int16Payload(600)); err != nil {
		return err
	}
	// Deterministic zero timestamps (12 int16 fields).
	if err := writeRecord(w, recBgnLib, int16Payload(make([]int16, 12)...)); err != nil {
		return err
	}
	if err := writeRecord(w, recLibName, asciiPayload("LDMO")); err != nil {
		return err
	}
	// Units: 1 user unit = 1nm = 1e-9 m; database unit = user unit.
	units := append(gdsReal8(1), gdsReal8(1e-9)...)
	if err := writeRecord(w, recUnits, units); err != nil {
		return err
	}
	for _, l := range layouts {
		if l.Name == "" {
			return fmt.Errorf("gds: layout without a name")
		}
		if err := writeRecord(w, recBgnStr, int16Payload(make([]int16, 12)...)); err != nil {
			return err
		}
		if err := writeRecord(w, recStrName, asciiPayload(l.Name)); err != nil {
			return err
		}
		if err := boundary(w, WindowLayer, l.Window); err != nil {
			return err
		}
		for _, r := range l.Patterns {
			if err := boundary(w, ContactLayer, r); err != nil {
				return err
			}
		}
		if err := writeRecord(w, recEndStr, nil); err != nil {
			return err
		}
	}
	return writeRecord(w, recEndLib, nil)
}

// record is one parsed GDSII record.
type record struct {
	typ  uint16
	data []byte
}

func readRecord(r io.Reader) (record, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			// A clean end-of-stream; Read turns this into "missing ENDLIB".
			return record{}, io.EOF
		}
		return record{}, fmt.Errorf("gds: truncated record header: %w", err)
	}
	total := int(binary.BigEndian.Uint16(hdr[0:]))
	typ := binary.BigEndian.Uint16(hdr[2:])
	if total < 4 {
		// A length below the 4 header bytes cannot advance the stream; a
		// naive reader loops forever here on a flipped length byte.
		return record{}, fmt.Errorf("gds: record 0x%04x declares length %d, below the 4-byte header", typ, total)
	}
	data := make([]byte, total-4)
	if n, err := io.ReadFull(r, data); err != nil {
		return record{}, fmt.Errorf("gds: truncated record 0x%04x (%d of %d payload bytes): %w", typ, n, total-4, err)
	}
	return record{typ: typ, data: data}, nil
}

// knownStreamVersions are the GDSII stream format versions this reader
// understands. The on-wire subset is identical across them; anything else is
// either a future format or a corrupted header, and both are rejected rather
// than guessed at.
func knownStreamVersion(v uint16) bool {
	switch v {
	case 0, 3, 4, 5, 6, 7, 600, 605:
		return true
	}
	return false
}

// Read parses a GDSII library written by Write (or any library restricted to
// the supported subset: BOUNDARY elements with rectangular 5-point loops).
// Malformed input — truncation anywhere, impossible record lengths, version
// skew, misaligned coordinate payloads, a missing ENDLIB — returns a
// descriptive error naming the offending record; Read never panics or loops
// on hostile bytes.
func Read(r io.Reader) ([]layout.Layout, error) {
	first, err := readRecord(r)
	if err != nil {
		return nil, fmt.Errorf("gds: reading header: %w", err)
	}
	if first.typ != recHeader {
		return nil, fmt.Errorf("gds: not a GDSII stream (first record 0x%04x, want HEADER)", first.typ)
	}
	if len(first.data) < 2 {
		return nil, fmt.Errorf("gds: HEADER record carries %d bytes, want a 2-byte version", len(first.data))
	}
	if v := binary.BigEndian.Uint16(first.data); !knownStreamVersion(v) {
		return nil, fmt.Errorf("gds: unsupported GDSII stream version %d", v)
	}
	var layouts []layout.Layout
	var cur *layout.Layout
	curLayer := int16(-1)
	scale := 1.0 // database units per nm; set by UNITS
	for {
		rec, err := readRecord(r)
		if err == io.EOF {
			return nil, fmt.Errorf("gds: missing ENDLIB")
		}
		if err != nil {
			return nil, err
		}
		switch rec.typ {
		case recEndLib:
			if cur != nil {
				return nil, fmt.Errorf("gds: ENDLIB inside unterminated structure %q", cur.Name)
			}
			return layouts, nil
		case recUnits:
			if len(rec.data) < 16 {
				return nil, fmt.Errorf("gds: UNITS record carries %d bytes, want two 8-byte reals", len(rec.data))
			}
			meters := parseReal8(rec.data[8:16])
			// A database unit outside (0, 1mm] is not a unit any layout tool
			// emits — it is a rotted UNITS record. Bounding it also keeps the
			// scaled int32 coordinates safely inside the int range.
			if math.IsNaN(meters) || meters <= 0 || meters > 1e-3 {
				return nil, fmt.Errorf("gds: invalid database unit %v m", meters)
			}
			scale = meters / 1e-9
		case recBgnStr:
			layouts = append(layouts, layout.Layout{})
			cur = &layouts[len(layouts)-1]
		case recStrName:
			if cur != nil {
				cur.Name = string(trimNul(rec.data))
			}
		case recLayer:
			if len(rec.data) >= 2 {
				curLayer = int16(binary.BigEndian.Uint16(rec.data))
			}
		case recXY:
			if cur == nil {
				continue
			}
			rect, err := xyToRect(rec.data, scale)
			if err != nil {
				return nil, err
			}
			switch curLayer {
			case WindowLayer:
				cur.Window = rect
			case ContactLayer:
				cur.Patterns = append(cur.Patterns, rect)
			}
		case recEndStr:
			cur = nil
		}
	}
}

func trimNul(b []byte) []byte {
	for len(b) > 0 && b[len(b)-1] == 0 {
		b = b[:len(b)-1]
	}
	return b
}

// xyToRect converts a closed rectangular point loop to a Rect.
func xyToRect(data []byte, scale float64) (geom.Rect, error) {
	if len(data)%8 != 0 || len(data) < 16 {
		return geom.Rect{}, fmt.Errorf("gds: malformed XY record (%d bytes)", len(data))
	}
	n := len(data) / 8
	minX, minY := math.MaxInt32, math.MaxInt32
	maxX, maxY := math.MinInt32, math.MinInt32
	for i := 0; i < n; i++ {
		x := int(int32(binary.BigEndian.Uint32(data[8*i:])))
		y := int(int32(binary.BigEndian.Uint32(data[8*i+4:])))
		minX = min(minX, x)
		minY = min(minY, y)
		maxX = max(maxX, x)
		maxY = max(maxY, y)
	}
	s := func(v int) int { return int(math.Round(float64(v) * scale)) }
	return geom.NewRect(s(minX), s(minY), s(maxX), s(maxY)), nil
}
