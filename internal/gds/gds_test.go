package gds

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"ldmo/internal/layout"
)

func TestRoundTripCellLibrary(t *testing.T) {
	cells := layout.Cells()
	var buf bytes.Buffer
	if err := Write(&buf, cells); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cells) {
		t.Fatalf("read %d layouts, wrote %d", len(got), len(cells))
	}
	for i, want := range cells {
		g := got[i]
		if g.Name != want.Name {
			t.Fatalf("layout %d name %q != %q", i, g.Name, want.Name)
		}
		if g.Window != want.Window {
			t.Fatalf("%s window %v != %v", want.Name, g.Window, want.Window)
		}
		if len(g.Patterns) != len(want.Patterns) {
			t.Fatalf("%s patterns %d != %d", want.Name, len(g.Patterns), len(want.Patterns))
		}
		for j := range want.Patterns {
			if g.Patterns[j] != want.Patterns[j] {
				t.Fatalf("%s pattern %d: %v != %v", want.Name, j, g.Patterns[j], want.Patterns[j])
			}
		}
	}
}

func TestRoundTripGeneratedQuick(t *testing.T) {
	f := func(seed int64) bool {
		set, err := layout.GenerateSet(seed, 3, layout.DefaultGenParams())
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, set); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(set) {
			return false
		}
		for i := range set {
			if got[i].Name != set[i].Name || len(got[i].Patterns) != len(set[i].Patterns) {
				return false
			}
			for j := range set[i].Patterns {
				if got[i].Patterns[j] != set[i].Patterns[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestWriteDeterministic(t *testing.T) {
	cells := layout.Cells()[:3]
	var a, b bytes.Buffer
	if err := Write(&a, cells); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, cells); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("GDS output not byte-deterministic")
	}
}

func TestStreamStructure(t *testing.T) {
	l, err := layout.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, []layout.Layout{l}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// First record: HEADER with version 600.
	if binary.BigEndian.Uint16(data[2:]) != recHeader {
		t.Fatal("stream does not start with HEADER")
	}
	if binary.BigEndian.Uint16(data[4:]) != 600 {
		t.Fatalf("version = %d", binary.BigEndian.Uint16(data[4:]))
	}
	// Last record: ENDLIB.
	if binary.BigEndian.Uint16(data[len(data)-2:]) != recEndLib {
		t.Fatal("stream does not end with ENDLIB")
	}
}

func TestReal8RoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, 1e-9, 0.25, 12345.678, -3.5, 1e12} {
		got := parseReal8(gdsReal8(v))
		if v == 0 {
			if got != 0 {
				t.Fatalf("real8(0) = %g", got)
			}
			continue
		}
		if math.Abs(got-v) > math.Abs(v)*1e-12 {
			t.Fatalf("real8 roundtrip %g -> %g", v, got)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{0, 8, 0xFF, 0xFF, 1, 2, 3, 4})); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// A valid header but no ENDLIB.
	var buf bytes.Buffer
	if err := writeRecord(&buf, recHeader, int16Payload(600)); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("missing ENDLIB accepted")
	}
}

func TestWriteRejectsUnnamedLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []layout.Layout{{}}); err == nil {
		t.Fatal("unnamed layout accepted")
	}
}

func TestUnitsScale(t *testing.T) {
	// A library written with 1nm units must read back identically even if
	// we re-parse the UNITS record (scale 1).
	l, err := layout.Cell("BUF_X1")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, []layout.Layout{l}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Patterns[0] != l.Patterns[0] {
		t.Fatalf("units scaling broke coordinates: %v != %v", got[0].Patterns[0], l.Patterns[0])
	}
}
