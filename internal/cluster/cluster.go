// Package cluster implements the k-medoids (PAM-style) clustering of the
// paper's layout-sampling stage (§IV-A): representative layouts are chosen
// as real cluster members ("medoids"), which is less sensitive to noise than
// k-means centroids, and quality is measured by the sum of layout distances
// to each medoid (Eq. 8, "SLD").
package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Result is one clustering outcome.
type Result struct {
	// Medoids holds the item index of each cluster's representative.
	Medoids []int
	// Assign maps each item to its cluster (index into Medoids).
	Assign []int
	// SLD is the Eq. 8 objective: the total distance from every item to
	// its cluster medoid.
	SLD float64
}

// Members returns the item indices of each cluster.
func (r Result) Members() [][]int {
	out := make([][]int, len(r.Medoids))
	for i, c := range r.Assign {
		out[c] = append(out[c], i)
	}
	return out
}

// KMedoids clusters n items described by a symmetric n x n distance matrix
// into k clusters using alternating assignment/update (Voronoi-iteration
// PAM). Initialization is distance-weighted (k-means++ style) and
// deterministic in seed.
func KMedoids(dist [][]float64, k int, seed int64, maxIters int) (Result, error) {
	n := len(dist)
	if n == 0 {
		return Result{}, fmt.Errorf("cluster: empty distance matrix")
	}
	for i, row := range dist {
		if len(row) != n {
			return Result{}, fmt.Errorf("cluster: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if k > n {
		k = n
	}
	if maxIters <= 0 {
		maxIters = 50
	}

	// Voronoi-iteration PAM converges to a local optimum, so run several
	// restarts with different initializations and keep the best SLD.
	const restarts = 8
	var best Result
	bestSLD := math.Inf(1)
	for r := 0; r < restarts; r++ {
		res := kMedoidsOnce(dist, k, seed+int64(r)*7919, maxIters)
		if res.SLD < bestSLD {
			bestSLD = res.SLD
			best = res
		}
	}
	return best, nil
}

func kMedoidsOnce(dist [][]float64, k int, seed int64, maxIters int) Result {
	n := len(dist)
	rng := rand.New(rand.NewSource(seed))
	medoids := initMedoids(dist, k, rng)
	assign := make([]int, n)

	var sld float64
	for iter := 0; iter < maxIters; iter++ {
		// Assignment step.
		sld = 0
		for i := 0; i < n; i++ {
			best, bestD := 0, math.Inf(1)
			for c, m := range medoids {
				if d := dist[i][m]; d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			sld += bestD
		}
		// Update step: each cluster's medoid becomes the member with the
		// smallest total distance to the rest of the cluster.
		changed := false
		for c := range medoids {
			var members []int
			for i, a := range assign {
				if a == c {
					members = append(members, i)
				}
			}
			if len(members) == 0 {
				continue
			}
			best, bestCost := medoids[c], math.Inf(1)
			for _, cand := range members {
				cost := 0.0
				for _, m := range members {
					cost += dist[cand][m]
				}
				if cost < bestCost {
					best, bestCost = cand, cost
				}
			}
			if best != medoids[c] {
				medoids[c] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Final assignment against the converged medoids.
	sld = 0
	for i := 0; i < n; i++ {
		best, bestD := 0, math.Inf(1)
		for c, m := range medoids {
			if d := dist[i][m]; d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		sld += bestD
	}
	return Result{Medoids: medoids, Assign: assign, SLD: sld}
}

// initMedoids seeds the medoid set with a distance-weighted greedy pick:
// the first medoid is random, each further one is sampled proportionally to
// its distance from the nearest already-chosen medoid.
func initMedoids(dist [][]float64, k int, rng *rand.Rand) []int {
	n := len(dist)
	medoids := make([]int, 0, k)
	medoids = append(medoids, rng.Intn(n))
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = dist[i][medoids[0]]
	}
	for len(medoids) < k {
		total := 0.0
		for _, d := range minD {
			total += d
		}
		var pick int
		if total <= 0 {
			// All remaining distances zero: any non-medoid will do.
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i, d := range minD {
				r -= d
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		medoids = append(medoids, pick)
		for i := range minD {
			if d := dist[i][pick]; d < minD[i] {
				minD[i] = d
			}
		}
	}
	return medoids
}

// SLD computes the Eq. 8 objective of an arbitrary medoid/assignment pair,
// for verification and tests.
func SLD(dist [][]float64, medoids, assign []int) float64 {
	total := 0.0
	for i, c := range assign {
		total += dist[i][medoids[c]]
	}
	return total
}
