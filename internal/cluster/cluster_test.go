package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// pointsDist builds a distance matrix from 1-D points.
func pointsDist(pts []float64) [][]float64 {
	n := len(pts)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = math.Abs(pts[i] - pts[j])
		}
	}
	return d
}

func TestKMedoidsSeparatesObviousClusters(t *testing.T) {
	pts := []float64{0, 1, 2, 100, 101, 102}
	res, err := KMedoids(pointsDist(pts), 2, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 2 {
		t.Fatalf("medoids = %v", res.Medoids)
	}
	// Items 0-2 together, 3-5 together.
	if res.Assign[0] != res.Assign[1] || res.Assign[1] != res.Assign[2] {
		t.Fatalf("low cluster split: %v", res.Assign)
	}
	if res.Assign[3] != res.Assign[4] || res.Assign[4] != res.Assign[5] {
		t.Fatalf("high cluster split: %v", res.Assign)
	}
	if res.Assign[0] == res.Assign[3] {
		t.Fatalf("clusters merged: %v", res.Assign)
	}
	// Optimal medoids are the middle points; SLD = 1+1 per cluster.
	if res.SLD != 4 {
		t.Fatalf("SLD = %g, want 4", res.SLD)
	}
}

func TestKMedoidsMedoidsAreMembers(t *testing.T) {
	pts := []float64{5, 6, 9, 30, 31, 60}
	res, err := KMedoids(pointsDist(pts), 3, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	for c, m := range res.Medoids {
		if res.Assign[m] != c {
			t.Fatalf("medoid %d of cluster %d assigned to cluster %d", m, c, res.Assign[m])
		}
	}
}

func TestKMedoidsErrors(t *testing.T) {
	if _, err := KMedoids(nil, 2, 1, 10); err == nil {
		t.Fatal("empty matrix must error")
	}
	if _, err := KMedoids([][]float64{{0, 1}}, 1, 1, 10); err == nil {
		t.Fatal("ragged matrix must error")
	}
	if _, err := KMedoids(pointsDist([]float64{1, 2}), 0, 1, 10); err == nil {
		t.Fatal("k=0 must error")
	}
}

func TestKMedoidsKLargerThanN(t *testing.T) {
	res, err := KMedoids(pointsDist([]float64{1, 5}), 10, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Medoids) != 2 || res.SLD != 0 {
		t.Fatalf("k>n result = %+v", res)
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	pts := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	a, _ := KMedoids(pointsDist(pts), 3, 42, 50)
	b, _ := KMedoids(pointsDist(pts), 3, 42, 50)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestMembersPartition(t *testing.T) {
	pts := []float64{0, 1, 50, 51, 100}
	res, err := KMedoids(pointsDist(pts), 3, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	members := res.Members()
	seen := map[int]bool{}
	for _, ms := range members {
		for _, i := range ms {
			if seen[i] {
				t.Fatal("item in two clusters")
			}
			seen[i] = true
		}
	}
	if len(seen) != len(pts) {
		t.Fatalf("partition covers %d of %d items", len(seen), len(pts))
	}
}

func TestAssignmentIsNearestMedoidQuick(t *testing.T) {
	// Property: every item ends assigned to its nearest medoid, and the
	// reported SLD matches the recomputed one.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = rng.Float64() * 100
		}
		d := pointsDist(pts)
		k := 1 + rng.Intn(4)
		res, err := KMedoids(d, k, seed, 50)
		if err != nil {
			return false
		}
		for i := range pts {
			best := math.Inf(1)
			for _, m := range res.Medoids {
				best = math.Min(best, d[i][m])
			}
			if d[i][res.Medoids[res.Assign[i]]] > best+1e-12 {
				return false
			}
		}
		return math.Abs(SLD(d, res.Medoids, res.Assign)-res.SLD) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSLDBeatsRandomMedoids(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]float64, 40)
	for i := range pts {
		pts[i] = rng.Float64() * 100
	}
	d := pointsDist(pts)
	res, err := KMedoids(d, 5, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-restart PAM must be no more than marginally worse than the
	// best of 20 random medoid sets (it is a local-search heuristic, so an
	// occasional lucky random draw is tolerated within 5%).
	bestRandom := math.Inf(1)
	for trial := 0; trial < 20; trial++ {
		meds := rng.Perm(len(pts))[:5]
		assign := make([]int, len(pts))
		for i := range pts {
			best, bestD := 0, math.Inf(1)
			for c, m := range meds {
				if d[i][m] < bestD {
					best, bestD = c, d[i][m]
				}
			}
			assign[i] = best
		}
		bestRandom = math.Min(bestRandom, SLD(d, meds, assign))
	}
	if res.SLD > bestRandom*1.05 {
		t.Fatalf("PAM SLD %g far worse than best random %g", res.SLD, bestRandom)
	}
}
