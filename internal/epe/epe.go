// Package epe implements the paper's printability metrics: edge placement
// error (Definition 1), its violation count, the L2 image error
// (Definition 2), and the print-violation detector (bridge / missing
// pattern) that the ILT loop consults every three iterations.
package epe

import (
	"math"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
)

// Checkpoint is one EPE measurement site: a point on a target-pattern edge
// with the outward edge normal.
type Checkpoint struct {
	Pos     geom.Point // on the design edge, nanometers
	Normal  geom.Point // outward unit normal, one of (+-1,0),(0,+-1)
	Pattern int        // index of the target pattern the edge belongs to
}

// GenerateCheckpoints places measurement sites on every edge of every target
// rectangle: one at each edge midpoint, plus additional sites every spacing
// nanometers on edges longer than spacing. Contact-scale features get the
// classic four-midpoint arrangement; long bars get a comb.
func GenerateCheckpoints(targets []geom.Rect, spacing int) []Checkpoint {
	if spacing <= 0 {
		spacing = 40
	}
	var cps []Checkpoint
	for pi, r := range targets {
		// Horizontal positions along top/bottom edges.
		for _, x := range edgeStops(r.X0, r.X1, spacing) {
			cps = append(cps,
				Checkpoint{Pos: geom.Point{X: x, Y: r.Y0}, Normal: geom.Point{Y: -1}, Pattern: pi},
				Checkpoint{Pos: geom.Point{X: x, Y: r.Y1}, Normal: geom.Point{Y: 1}, Pattern: pi},
			)
		}
		// Vertical positions along left/right edges.
		for _, y := range edgeStops(r.Y0, r.Y1, spacing) {
			cps = append(cps,
				Checkpoint{Pos: geom.Point{X: r.X0, Y: y}, Normal: geom.Point{X: -1}, Pattern: pi},
				Checkpoint{Pos: geom.Point{X: r.X1, Y: y}, Normal: geom.Point{X: 1}, Pattern: pi},
			)
		}
	}
	return cps
}

// edgeStops returns measurement coordinates along [lo, hi]: the midpoint for
// short edges, a uniform comb with roughly `spacing` pitch for long ones.
func edgeStops(lo, hi, spacing int) []int {
	length := hi - lo
	n := length / spacing
	if n < 2 {
		return []int{(lo + hi) / 2}
	}
	stops := make([]int, 0, n+1)
	for i := 0; i <= n; i++ {
		stops = append(stops, lo+length*(2*i+1)/(2*(n+1)))
	}
	return stops
}

// Meter measures EPE against a resist image. SearchRange bounds the contour
// walk from the design edge, in nanometers; checkpoints whose contour is not
// found within the range are assigned EPE = SearchRange (a hard miss).
type Meter struct {
	// Threshold is the EPE violation threshold in nanometers (paper: 10).
	Threshold float64
	// PrintLevel is the resist-image level defining the printed contour
	// (0.5 for the sigmoid resist model).
	PrintLevel float64
	// SearchRange is the maximum contour displacement representable, nm.
	SearchRange float64
	// Step is the contour-walk sampling step in nanometers.
	Step float64
}

// NewMeter returns a meter with the paper's 10nm violation threshold and a
// search range generous enough to see heavily displaced contours.
func NewMeter() Meter {
	return Meter{Threshold: 10, PrintLevel: 0.5, SearchRange: 40, Step: 2}
}

// Result is the outcome of one EPE measurement pass.
type Result struct {
	EPEs       []float64 // per checkpoint, signed nm (+ = overprint outward)
	Violations int       // |EPE| > Threshold
	MaxAbs     float64
	MeanAbs    float64
}

// Measure evaluates every checkpoint against the (continuous) resist image t.
// The printed edge position is located by walking along the checkpoint
// normal and linearly interpolating the PrintLevel crossing; positive EPE
// means the printed edge lies outside the design edge.
func (m Meter) Measure(t *grid.Grid, cps []Checkpoint) Result {
	res := Result{EPEs: make([]float64, len(cps))}
	sumAbs := 0.0
	for i, cp := range cps {
		e := m.edgeOffset(t, cp)
		res.EPEs[i] = e
		a := math.Abs(e)
		sumAbs += a
		if a > m.Threshold {
			res.Violations++
		}
		if a > res.MaxAbs {
			res.MaxAbs = a
		}
	}
	if len(cps) > 0 {
		res.MeanAbs = sumAbs / float64(len(cps))
	}
	return res
}

// edgeOffset walks the resist image along the checkpoint normal and returns
// the signed distance from the design edge to the printed contour.
func (m Meter) edgeOffset(t *grid.Grid, cp Checkpoint) float64 {
	sample := func(d float64) float64 {
		return t.SampleNM(
			float64(cp.Pos.X)+d*float64(cp.Normal.X),
			float64(cp.Pos.Y)+d*float64(cp.Normal.Y),
		)
	}
	inner := sample(-m.SearchRange)
	if inner < m.PrintLevel {
		// The pattern interior is not printed at all within range:
		// treat as a full-range pullback.
		return -m.SearchRange
	}
	// Walk outward from deep inside; the first inside->outside crossing is
	// the printed edge.
	prevD := -m.SearchRange
	prevV := inner
	for d := -m.SearchRange + m.Step; d <= m.SearchRange+1e-9; d += m.Step {
		v := sample(d)
		if prevV >= m.PrintLevel && v < m.PrintLevel {
			// Linear interpolation for the sub-step crossing.
			frac := (prevV - m.PrintLevel) / (prevV - v)
			return prevD + frac*m.Step
		}
		prevD, prevV = d, v
	}
	// Still printed at the far end: overprint beyond range (or a bridge).
	return m.SearchRange
}

// L2Error returns the squared L2 difference between the printed image and
// the binary target image (paper Definition 2).
func L2Error(printed, target *grid.Grid) float64 { return printed.L2Diff(target) }

// Violations describes lithographic print failures detected on a binarized
// printed image: components bridging several target patterns, targets that
// did not print, and printed blobs touching no target at all.
type Violations struct {
	Bridges int // printed components overlapping >= 2 targets
	Missing int // targets with no printed pixels
	Extra   int // printed components overlapping no target
}

// Total returns the total violation count used in the paper's score (Eq. 9).
func (v Violations) Total() int { return v.Bridges + v.Missing + v.Extra }

// Any reports whether any print violation was detected.
func (v Violations) Any() bool { return v.Total() > 0 }

// CheckPrintViolations binarizes the resist image at printLevel and compares
// its connected components against the target patterns.
func CheckPrintViolations(t *grid.Grid, targets []geom.Rect, printLevel float64) Violations {
	bin := t.Threshold(printLevel)
	labels, n := bin.Components()
	if n == 0 {
		return Violations{Missing: len(targets)}
	}
	// For every component, the set of targets it overlaps; for every
	// target, whether anything printed inside it.
	compTargets := make([]map[int]struct{}, n+1)
	targetHit := make([]bool, len(targets))
	for ti, r := range targets {
		x0, y0, x1, y1, ok := bin.PixelRect(r)
		if !ok {
			continue
		}
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				l := labels[y*bin.W+x]
				if l == 0 {
					continue
				}
				targetHit[ti] = true
				if compTargets[l] == nil {
					compTargets[l] = make(map[int]struct{})
				}
				compTargets[l][ti] = struct{}{}
			}
		}
	}
	var v Violations
	for l := 1; l <= n; l++ {
		switch {
		case compTargets[l] == nil:
			v.Extra++
		case len(compTargets[l]) >= 2:
			v.Bridges++
		}
	}
	for _, hit := range targetHit {
		if !hit {
			v.Missing++
		}
	}
	return v
}
