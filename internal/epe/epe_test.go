package epe

import (
	"math"
	"testing"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/litho"
)

func TestGenerateCheckpointsContact(t *testing.T) {
	// A 70nm contact with 40nm spacing gets one site per edge (midpoints).
	cps := GenerateCheckpoints([]geom.Rect{geom.RectWH(100, 100, 70, 70)}, 40)
	if len(cps) != 4 {
		t.Fatalf("checkpoints = %d, want 4 (one midpoint per edge)", len(cps))
	}
	// All on the rect boundary, normals outward.
	r := geom.RectWH(100, 100, 70, 70)
	for _, cp := range cps {
		onEdge := cp.Pos.X == r.X0 || cp.Pos.X == r.X1 || cp.Pos.Y == r.Y0 || cp.Pos.Y == r.Y1
		if !onEdge {
			t.Fatalf("checkpoint %v not on edge", cp.Pos)
		}
		if cp.Pattern != 0 {
			t.Fatalf("pattern index = %d", cp.Pattern)
		}
		n := cp.Normal
		if (n.X == 0) == (n.Y == 0) || abs(n.X)+abs(n.Y) != 1 {
			t.Fatalf("bad normal %v", n)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestGenerateCheckpointsLongBar(t *testing.T) {
	// A 200nm bar at 40nm spacing gets a comb along its long edges.
	cps := GenerateCheckpoints([]geom.Rect{geom.RectWH(0, 0, 200, 40)}, 40)
	long := 0
	for _, cp := range cps {
		if cp.Normal.Y != 0 {
			long++
		}
	}
	if long < 8 {
		t.Fatalf("long-edge checkpoints = %d, want >= 8", long)
	}
}

func TestEdgeStopsCentered(t *testing.T) {
	stops := edgeStops(0, 70, 40)
	if len(stops) != 1 || stops[0] != 35 {
		t.Fatalf("stops = %v", stops)
	}
	stops = edgeStops(0, 120, 40)
	if len(stops) != 4 {
		t.Fatalf("stops = %v", stops)
	}
	for i := 1; i < len(stops); i++ {
		if stops[i] <= stops[i-1] {
			t.Fatalf("stops not increasing: %v", stops)
		}
	}
}

// syntheticEdge builds a resist image whose printed region is x <= xedge
// (sharp sigmoid in x), on a 128x128 raster at 4nm/px.
func syntheticEdge(xedge float64) *grid.Grid {
	g := grid.New(128, 128, 4, geom.Point{})
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			xc := float64(x)*4 + 2
			g.Data[y*g.W+x] = 1 / (1 + math.Exp((xc-xedge)/2))
		}
	}
	return g
}

func TestMeasureKnownOffset(t *testing.T) {
	m := NewMeter()
	for _, off := range []float64{-8, -3, 0, 3, 8, 14} {
		img := syntheticEdge(200 + off)
		cps := []Checkpoint{{Pos: geom.Point{X: 200, Y: 256}, Normal: geom.Point{X: 1}}}
		res := m.Measure(img, cps)
		if math.Abs(res.EPEs[0]-off) > 1.0 {
			t.Errorf("offset %g measured as %g", off, res.EPEs[0])
		}
		wantViol := 0
		if math.Abs(off) > m.Threshold {
			wantViol = 1
		}
		if res.Violations != wantViol {
			t.Errorf("offset %g: violations = %d, want %d", off, res.Violations, wantViol)
		}
	}
}

func TestMeasureMissingPattern(t *testing.T) {
	m := NewMeter()
	img := grid.New(64, 64, 4, geom.Point{}) // nothing printed
	cps := GenerateCheckpoints([]geom.Rect{geom.RectWH(100, 100, 70, 70)}, 40)
	res := m.Measure(img, cps)
	if res.Violations != len(cps) {
		t.Fatalf("violations = %d, want all %d", res.Violations, len(cps))
	}
	for _, e := range res.EPEs {
		if e != -m.SearchRange {
			t.Fatalf("missing-pattern EPE = %g, want %g", e, -m.SearchRange)
		}
	}
}

func TestMeasureOverprintBeyondRange(t *testing.T) {
	m := NewMeter()
	img := grid.New(64, 64, 4, geom.Point{})
	img.Fill(1) // everything printed
	cps := []Checkpoint{{Pos: geom.Point{X: 128, Y: 128}, Normal: geom.Point{X: 1}}}
	res := m.Measure(img, cps)
	if res.EPEs[0] != m.SearchRange {
		t.Fatalf("overprint EPE = %g, want %g", res.EPEs[0], m.SearchRange)
	}
}

func TestMeasureStats(t *testing.T) {
	m := NewMeter()
	img := syntheticEdge(200)
	cps := []Checkpoint{
		{Pos: geom.Point{X: 200, Y: 256}, Normal: geom.Point{X: 1}},
		{Pos: geom.Point{X: 188, Y: 256}, Normal: geom.Point{X: 1}}, // sees +12nm
	}
	res := m.Measure(img, cps)
	if res.Violations != 1 {
		t.Fatalf("violations = %d", res.Violations)
	}
	if res.MaxAbs < 10 || res.MaxAbs > 14 {
		t.Fatalf("maxabs = %g", res.MaxAbs)
	}
	if res.MeanAbs <= 0 || res.MeanAbs > res.MaxAbs {
		t.Fatalf("meanabs = %g", res.MeanAbs)
	}
}

func TestEndToEndEPEOnSimulatedContact(t *testing.T) {
	// A well-printed isolated contact must have no EPE violations after
	// simulation with the calibrated default process.
	p := litho.DefaultParams()
	s, err := litho.NewSimulator(128, 128, p)
	if err != nil {
		t.Fatal(err)
	}
	target := geom.RectWH(223, 223, 65, 65)
	mask := grid.New(128, 128, p.Resolution, geom.Point{})
	mask.FillRect(target, 1)
	printed := s.PrintedImage(mask)
	m := NewMeter()
	res := m.Measure(printed, GenerateCheckpoints([]geom.Rect{target}, 40))
	if res.Violations != 0 {
		t.Fatalf("isolated contact has %d EPE violations (max %giu nm)", res.Violations, res.MaxAbs)
	}
}

func TestL2Error(t *testing.T) {
	a := grid.New(4, 4, 1, geom.Point{})
	b := grid.New(4, 4, 1, geom.Point{})
	b.Data[0] = 1
	if L2Error(a, b) != 1 {
		t.Fatal("L2Error wrong")
	}
}

func TestCheckPrintViolationsClean(t *testing.T) {
	g := grid.New(64, 64, 4, geom.Point{})
	targets := []geom.Rect{geom.RectWH(20, 20, 60, 60), geom.RectWH(150, 150, 60, 60)}
	for _, r := range targets {
		g.FillRect(r, 1)
	}
	v := CheckPrintViolations(g, targets, 0.5)
	if v.Any() {
		t.Fatalf("clean print flagged: %+v", v)
	}
}

func TestCheckPrintViolationsBridge(t *testing.T) {
	g := grid.New(64, 64, 4, geom.Point{})
	targets := []geom.Rect{geom.RectWH(20, 20, 60, 60), geom.RectWH(120, 20, 60, 60)}
	g.FillRect(geom.RectWH(20, 20, 160, 60), 1) // one blob over both
	v := CheckPrintViolations(g, targets, 0.5)
	if v.Bridges != 1 || v.Missing != 0 {
		t.Fatalf("bridge not detected: %+v", v)
	}
	if v.Total() != 1 || !v.Any() {
		t.Fatalf("totals wrong: %+v", v)
	}
}

func TestCheckPrintViolationsMissing(t *testing.T) {
	g := grid.New(64, 64, 4, geom.Point{})
	targets := []geom.Rect{geom.RectWH(20, 20, 60, 60), geom.RectWH(150, 150, 60, 60)}
	g.FillRect(targets[0], 1)
	v := CheckPrintViolations(g, targets, 0.5)
	if v.Missing != 1 || v.Bridges != 0 {
		t.Fatalf("missing not detected: %+v", v)
	}
}

func TestCheckPrintViolationsExtra(t *testing.T) {
	g := grid.New(64, 64, 4, geom.Point{})
	targets := []geom.Rect{geom.RectWH(20, 20, 60, 60)}
	g.FillRect(targets[0], 1)
	g.FillRect(geom.RectWH(180, 180, 40, 40), 1) // spurious blob
	v := CheckPrintViolations(g, targets, 0.5)
	if v.Extra != 1 {
		t.Fatalf("extra not detected: %+v", v)
	}
}

func TestCheckPrintViolationsAllMissing(t *testing.T) {
	g := grid.New(32, 32, 4, geom.Point{})
	targets := []geom.Rect{geom.RectWH(20, 20, 60, 60), geom.RectWH(80, 20, 30, 30)}
	v := CheckPrintViolations(g, targets, 0.5)
	if v.Missing != 2 {
		t.Fatalf("blank image: %+v", v)
	}
}
