package epe

import (
	"math"
	"testing"
	"testing/quick"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
)

func TestMeasureMirrorSymmetry(t *testing.T) {
	// Mirroring the resist image and the checkpoints together must leave
	// every EPE unchanged (the invariance training augmentation relies on).
	img := syntheticEdge(200)
	mir := img.FlipH()
	winW := float64(img.W * img.Res)
	cp := Checkpoint{Pos: geom.Point{X: 200, Y: 256}, Normal: geom.Point{X: 1}}
	cpMir := Checkpoint{
		Pos:    geom.Point{X: int(winW) - 200, Y: 256},
		Normal: geom.Point{X: -1},
	}
	m := NewMeter()
	a := m.Measure(img, []Checkpoint{cp})
	b := m.Measure(mir, []Checkpoint{cpMir})
	if math.Abs(a.EPEs[0]-b.EPEs[0]) > 0.5 {
		t.Fatalf("mirror asymmetry: %g vs %g", a.EPEs[0], b.EPEs[0])
	}
}

func TestGenerateCheckpointsEmptyInput(t *testing.T) {
	if cps := GenerateCheckpoints(nil, 40); len(cps) != 0 {
		t.Fatalf("nil targets gave %d checkpoints", len(cps))
	}
}

func TestGenerateCheckpointsDefaultSpacing(t *testing.T) {
	// Non-positive spacing must fall back rather than divide by zero.
	cps := GenerateCheckpoints([]geom.Rect{geom.RectWH(0, 0, 200, 200)}, 0)
	if len(cps) == 0 {
		t.Fatal("zero spacing produced no checkpoints")
	}
}

func TestMeterThresholdBoundaryQuick(t *testing.T) {
	// Property: violation counting is consistent with the threshold for
	// synthetic edges at arbitrary offsets.
	m := NewMeter()
	f := func(raw int8) bool {
		off := float64(raw%30) / 2.0 // [-14.5, 14.5]
		img := syntheticEdge(200 + off)
		res := m.Measure(img, []Checkpoint{{Pos: geom.Point{X: 200, Y: 256}, Normal: geom.Point{X: 1}}})
		measured := res.EPEs[0]
		wantViolation := math.Abs(measured) > m.Threshold
		return (res.Violations == 1) == wantViolation
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCheckPrintViolationsThresholdSensitivity(t *testing.T) {
	// A faint blob below the print level must not count as printed.
	g := grid.New(32, 32, 4, geom.Point{})
	target := geom.RectWH(20, 20, 60, 60)
	g.FillRect(target, 0.3)
	v := CheckPrintViolations(g, []geom.Rect{target}, 0.5)
	if v.Missing != 1 {
		t.Fatalf("faint print not flagged missing: %+v", v)
	}
	v = CheckPrintViolations(g, []geom.Rect{target}, 0.2)
	if v.Missing != 0 {
		t.Fatalf("printed blob flagged missing at low threshold: %+v", v)
	}
}

func TestViolationsTotalAndAny(t *testing.T) {
	v := Violations{Bridges: 1, Missing: 2, Extra: 3}
	if v.Total() != 6 || !v.Any() {
		t.Fatalf("totals: %+v", v)
	}
	var zero Violations
	if zero.Total() != 0 || zero.Any() {
		t.Fatal("zero violations misreported")
	}
}
