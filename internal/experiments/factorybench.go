package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ldmo/internal/factory"
	"ldmo/internal/faultinject"
	"ldmo/internal/layout"
	"ldmo/internal/par"
)

// FactoryRun is one supervised build at a fixed worker count.
type FactoryRun struct {
	Workers       int     `json:"workers"`
	WallSec       float64 `json:"wall_sec"`
	LayoutsPerSec float64 `json:"layouts_per_sec"`
}

// FactoryBench is the machine-readable record of the dataset-factory
// benchmark that cmd/ldmo-bench writes to BENCH_factory.json: labeling
// throughput vs worker count, the cost of chaos (reclaims and restarts under
// injected worker kills), resume cost, and the byte-identity check against
// the serial reference.
type FactoryBench struct {
	// Layouts is the corpus size; GOMAXPROCS/NumCPU describe the host and
	// Constrained flags GOMAXPROCS=1, where in-process workers interleave
	// on one core and scaling cannot show.
	Layouts     int  `json:"layouts"`
	GOMAXPROCS  int  `json:"gomaxprocs"`
	NumCPU      int  `json:"numcpu"`
	Constrained bool `json:"constrained"`
	// SerialSec is the undisturbed single-process BuildDatasetCtx
	// reference (including manifest publication).
	SerialSec float64 `json:"serial_sec"`
	// Runs are undisturbed supervised builds at increasing worker counts.
	Runs []FactoryRun `json:"runs"`
	// Chaos run: workers repeatedly killed right after claiming.
	ChaosWallSec  float64 `json:"chaos_wall_sec"`
	ChaosReclaims int     `json:"chaos_reclaims"`
	ChaosRestarts int     `json:"chaos_restarts"`
	Poisoned      int     `json:"poisoned"`
	// ResumeSec is the cost of resuming an already-complete corpus: pure
	// verification + manifest rebuild, the fixed overhead every restart
	// pays.
	ResumeSec float64 `json:"resume_sec"`
	// Identical reports the chaos manifest was byte-identical to the
	// serial reference — the factory's correctness contract.
	Identical bool `json:"identical"`
}

// RunFactoryBench measures the dataset factory end to end with in-process
// workers: serial reference, scaling runs, a chaos run under injected
// worker kills, and a resume pass — all over the same generated corpus.
func RunFactoryBench(o Options) (FactoryBench, error) {
	ctx := o.context()
	workers := o.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	n := 8
	if o.Fast {
		n = 4
	}
	out := FactoryBench{
		Layouts:    n,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	out.Constrained = out.GOMAXPROCS == 1
	if out.Constrained {
		o.logf("factorybench: WARNING: GOMAXPROCS=1 (numcpu=%d) — in-process workers interleave on one core; throughput scaling cannot show. Marking the record constrained\n", out.NumCPU)
	}

	pool, err := layout.GenerateSet(o.Seed+31, n, layout.DefaultGenParams())
	if err != nil {
		return out, err
	}
	scfg := o.samplingConfig()
	if o.Fast {
		scfg.ILT.MaxIters = 4
	}
	spec := factory.Spec{Layouts: pool, Sampling: scfg, HeartbeatMS: 25, StaleAfterMS: 300}

	root, err := os.MkdirTemp("", "ldmo-factorybench-")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(root)

	// Undisturbed serial reference.
	serialDir := filepath.Join(root, "serial")
	start := time.Now()
	if _, err := factory.Serial(ctx, serialDir, spec, nil); err != nil {
		return out, err
	}
	out.SerialSec = time.Since(start).Seconds()
	o.logf("factorybench: serial reference %.2fs (%d layouts)\n", out.SerialSec, n)

	counts := []int{1, workers}
	if workers == 1 {
		counts = []int{1}
	}
	for _, w := range counts {
		dir := filepath.Join(root, fmt.Sprintf("w%d", w))
		start = time.Now()
		rep, err := factory.Build(ctx, factory.Config{Dir: dir, Spec: spec, Workers: w})
		if err != nil {
			return out, err
		}
		if rep.Sealed != n {
			return out, fmt.Errorf("factorybench: w=%d build incomplete: %+v", w, rep)
		}
		wall := time.Since(start).Seconds()
		out.Runs = append(out.Runs, FactoryRun{Workers: w, WallSec: wall, LayoutsPerSec: float64(n) / wall})
		o.logf("factorybench: %d worker(s) %.2fs\n", w, wall)
	}

	// Chaos run: arm a one-shot kill up front and re-arm it a few times
	// while the build runs; every armed shot kills at most one claim, so
	// the drill always converges.
	chaosDir := filepath.Join(root, "chaos")
	faultinject.Set(faultinject.WorkerSigkill, "0")
	stop := make(chan struct{})
	go func() {
		for i := 0; i < 3; i++ {
			select {
			case <-stop:
				return
			case <-time.After(150 * time.Millisecond):
				faultinject.Set(faultinject.WorkerSigkill, "0")
			}
		}
	}()
	start = time.Now()
	rep, err := factory.Build(ctx, factory.Config{
		Dir: chaosDir, Spec: spec, Workers: max(2, workers),
		RestartBase: 10 * time.Millisecond, RestartMax: 100 * time.Millisecond,
	})
	close(stop)
	faultinject.Reset()
	if err != nil {
		return out, err
	}
	out.ChaosWallSec = time.Since(start).Seconds()
	out.ChaosReclaims = rep.Reclaims
	out.ChaosRestarts = rep.Restarts
	out.Poisoned = len(rep.Poisoned)
	o.logf("factorybench: chaos run %.2fs (%d reclaims, %d restarts)\n", out.ChaosWallSec, rep.Reclaims, rep.Restarts)

	// Resume over the complete chaos corpus: verification + manifest only.
	start = time.Now()
	if _, err := factory.Build(ctx, factory.Config{Dir: chaosDir, Spec: spec, Workers: 1, Resume: true}); err != nil {
		return out, err
	}
	out.ResumeSec = time.Since(start).Seconds()

	chaosManifest, err := os.ReadFile(filepath.Join(chaosDir, factory.ManifestFile))
	if err != nil {
		return out, err
	}
	serialManifest, err := os.ReadFile(filepath.Join(serialDir, factory.ManifestFile))
	if err != nil {
		return out, err
	}
	out.Identical = string(chaosManifest) == string(serialManifest)
	if !out.Identical {
		return out, fmt.Errorf("factorybench: chaos manifest differs from the serial reference")
	}
	return out, nil
}

// WriteJSON writes the bench record to path.
func (b FactoryBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the human-readable summary.
func (b FactoryBench) Render(w io.Writer) {
	fmt.Fprintln(w, "Dataset factory benchmark")
	fmt.Fprintf(w, "layouts %d  (GOMAXPROCS %d, numcpu %d)\n", b.Layouts, b.GOMAXPROCS, b.NumCPU)
	fmt.Fprintf(w, "serial reference %.2fs\n", b.SerialSec)
	for _, r := range b.Runs {
		fmt.Fprintf(w, "workers %2d: %.2fs  (%.2f layouts/s)\n", r.Workers, r.WallSec, r.LayoutsPerSec)
	}
	fmt.Fprintf(w, "chaos: %.2fs with %d reclaims, %d restarts, %d poisoned  resume %.3fs  identical=%v\n",
		b.ChaosWallSec, b.ChaosReclaims, b.ChaosRestarts, b.Poisoned, b.ResumeSec, b.Identical)
	if b.Constrained {
		fmt.Fprintln(w, "*** CONSTRAINED RUN: GOMAXPROCS=1 — worker scaling cannot show on one core ***")
	}
}
