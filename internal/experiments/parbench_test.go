package experiments

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

// TestParbenchRecordsHostConstraint pins the constrained-host contract: a
// GOMAXPROCS=1 run must record gomaxprocs/numcpu in the JSON artifact, set
// the constrained flag, warn in the progress log, and banner the rendered
// summary — otherwise single-core speedup numbers get read as real scaling.
func TestParbenchRecordsHostConstraint(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)

	var log bytes.Buffer
	b, err := RunParallelBench(Options{Fast: true, Seed: 1, Workers: 2, Log: &log})
	if err != nil {
		t.Fatal(err)
	}
	if b.GOMAXPROCS != 1 || b.NumCPU != runtime.NumCPU() || !b.Constrained {
		t.Fatalf("host recording: gomaxprocs=%d numcpu=%d constrained=%v", b.GOMAXPROCS, b.NumCPU, b.Constrained)
	}
	if !strings.Contains(log.String(), "WARNING: GOMAXPROCS=1") {
		t.Fatalf("constrained run must warn in the log, got %q", log.String())
	}

	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"gomaxprocs":1`, `"numcpu":`, `"constrained":true`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("BENCH_parallel.json record lost %s: %s", key, data)
		}
	}

	var rendered bytes.Buffer
	b.Render(&rendered)
	if !strings.Contains(rendered.String(), "CONSTRAINED RUN") {
		t.Fatal("rendered summary must banner the constrained run")
	}
}
