package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ldmo/internal/par"
	"ldmo/internal/serve"
)

// ServeBench is the machine-readable record of the job-service benchmark that
// cmd/ldmo-bench writes to BENCH_serve.json: end-to-end submit->done latency
// percentiles, throughput, and load-shedding behavior of internal/serve under
// a multi-client burst that deliberately overflows the admission queue.
type ServeBench struct {
	// Jobs is the total distinct jobs completed; Clients the concurrent
	// submitters; QueueCap the admission bound (sized below the burst so the
	// bench exercises shedding, not just the happy path).
	Jobs     int `json:"jobs"`
	Clients  int `json:"clients"`
	QueueCap int `json:"queue_cap"`
	// Workers / GOMAXPROCS / NumCPU describe the executor and host;
	// Constrained flags a GOMAXPROCS=1 run, where latency includes queueing
	// behind a single lane and throughput cannot exceed serial flow speed.
	Workers     int  `json:"workers"`
	GOMAXPROCS  int  `json:"gomaxprocs"`
	NumCPU      int  `json:"numcpu"`
	Constrained bool `json:"constrained"`
	// Submitted counts POST attempts including shed retries; Shed the 429s.
	Submitted int     `json:"submitted"`
	Shed      int     `json:"shed"`
	ShedRate  float64 `json:"shed_rate"`
	Failed    int     `json:"failed"`
	// Wall-clock throughput and end-to-end (first submit attempt -> done)
	// latency distribution.
	WallSec       float64 `json:"wall_sec"`
	JobsPerSec    float64 `json:"jobs_per_sec"`
	LatencyP50Sec float64 `json:"latency_p50_sec"`
	LatencyP99Sec float64 `json:"latency_p99_sec"`
	LatencyMaxSec float64 `json:"latency_max_sec"`
	// CacheHits / CacheP50Sec measure the dedupe path: every job resubmitted
	// after completion must return its stored result without recomputation.
	CacheHits   int     `json:"cache_hits"`
	CacheP50Sec float64 `json:"cache_p50_sec"`
}

// RunServeBench stands up an in-process serve.Server plus HTTP front end,
// drives it with concurrent clients submitting distinct generated layouts,
// and measures latency percentiles, throughput, and shed rate. The queue is
// sized below the burst on purpose: a serving benchmark that never sheds says
// nothing about overload behavior.
func RunServeBench(o Options) (ServeBench, error) {
	ctx := o.context()
	workers := o.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	clients := 3
	perClient := 8
	if o.Fast {
		perClient = 3
	}
	out := ServeBench{
		Jobs:       clients * perClient,
		Clients:    clients,
		QueueCap:   clients * perClient / 3,
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	out.Constrained = out.GOMAXPROCS == 1
	if out.Constrained {
		o.logf("servebench: WARNING: GOMAXPROCS=1 (numcpu=%d) — jobs queue behind a single flow lane, so latency percentiles include serialization; marking the record constrained\n", out.NumCPU)
	}

	dir, err := os.MkdirTemp("", "ldmo-servebench-")
	if err != nil {
		return out, err
	}
	defer os.RemoveAll(dir)
	s, err := serve.NewServer(serve.Config{
		Dir:      dir,
		QueueCap: out.QueueCap,
		Workers:  workers,
		Scorer:   o.Predictor, // nil means generator order — fine for a serving bench
	})
	if err != nil {
		return out, err
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Drain(ctx)
	}()

	type sample struct {
		latency time.Duration
		id      string
		body    string
		err     error
	}
	samples := make([]sample, out.Jobs)
	var mu sync.Mutex
	shed, submitted := 0, 0

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			hc := ts.Client()
			// Burst phase: fire the whole batch before waiting on anything —
			// that is what overflows the queue and exercises shedding.
			starts := make([]time.Time, perClient)
			for j := 0; j < perClient; j++ {
				idx := c*perClient + j
				seed := o.Seed + int64(idx)
				body := fmt.Sprintf(`{"gen_seed":%d,"fast":%v,"max_attempts":1}`, seed, o.Fast)
				starts[j] = time.Now()
				id, nShed, nSub, err := submitUntilAccepted(ctx, hc, ts.URL, fmt.Sprintf("client%d", c), body)
				mu.Lock()
				shed += nShed
				submitted += nSub
				mu.Unlock()
				samples[idx] = sample{id: id, body: body, err: err}
			}
			// Drain phase: end-to-end latency is first submit attempt -> done.
			for j := 0; j < perClient; j++ {
				idx := c*perClient + j
				if samples[idx].err != nil {
					continue
				}
				samples[idx].err = waitServeJob(ctx, hc, ts.URL, samples[idx].id)
				samples[idx].latency = time.Since(starts[j])
			}
		}(c)
	}
	wg.Wait()
	out.WallSec = time.Since(start).Seconds()

	var latencies []time.Duration
	for _, sm := range samples {
		if sm.err != nil {
			out.Failed++
			o.logf("servebench: job %s: %v\n", sm.id, sm.err)
			continue
		}
		latencies = append(latencies, sm.latency)
	}
	out.Submitted = submitted
	out.Shed = shed
	if submitted > 0 {
		out.ShedRate = float64(shed) / float64(submitted)
	}
	if out.WallSec > 0 {
		out.JobsPerSec = float64(len(latencies)) / out.WallSec
	}
	out.LatencyP50Sec = percentile(latencies, 0.50)
	out.LatencyP99Sec = percentile(latencies, 0.99)
	out.LatencyMaxSec = percentile(latencies, 1.00)

	// Dedupe pass: every completed job resubmitted must come back cached.
	var cacheLat []time.Duration
	hc := ts.Client()
	for _, sm := range samples {
		if sm.err != nil {
			continue
		}
		t0 := time.Now()
		resp, err := hc.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(sm.body))
		if err != nil {
			return out, err
		}
		cached := resp.StatusCode == http.StatusOK
		resp.Body.Close()
		if cached {
			out.CacheHits++
			cacheLat = append(cacheLat, time.Since(t0))
		}
	}
	out.CacheP50Sec = percentile(cacheLat, 0.50)

	o.logf("servebench: %d jobs, %d clients, queue %d: p50 %.3fs p99 %.3fs, %.2f jobs/s, shed %d/%d (%.0f%%), cache hits %d\n",
		len(latencies), clients, out.QueueCap, out.LatencyP50Sec, out.LatencyP99Sec,
		out.JobsPerSec, shed, submitted, out.ShedRate*100, out.CacheHits)
	return out, nil
}

// submitUntilAccepted POSTs the job, backing off briefly on 429 shed, and
// returns the job ID plus shed/attempt counts.
func submitUntilAccepted(ctx interface{ Err() error }, hc *http.Client, base, client, body string) (string, int, int, error) {
	shed, attempts := 0, 0
	for {
		if err := ctx.Err(); err != nil {
			return "", shed, attempts, err
		}
		attempts++
		req, err := http.NewRequest("POST", base+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			return "", shed, attempts, err
		}
		req.Header.Set("X-LDMO-Client", client)
		resp, err := hc.Do(req)
		if err != nil {
			return "", shed, attempts, err
		}
		var sr serve.SubmitResponse
		json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted, http.StatusOK:
			return sr.ID, shed, attempts, nil
		case http.StatusTooManyRequests:
			shed++
			time.Sleep(25 * time.Millisecond)
		default:
			return "", shed, attempts, fmt.Errorf("submit: HTTP %d", resp.StatusCode)
		}
	}
}

// waitServeJob polls the job until it settles.
func waitServeJob(ctx interface{ Err() error }, hc *http.Client, base, id string) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := hc.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return err
		}
		var sr serve.SubmitResponse
		json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		switch sr.Status {
		case serve.StatusDone:
			return nil
		case serve.StatusFailed:
			return fmt.Errorf("job failed: %s", sr.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// percentile returns the p-quantile of ds in seconds (nearest-rank; 0 for an
// empty set).
func percentile(ds []time.Duration, p float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Seconds()
}

// WriteJSON writes the bench record to path.
func (b ServeBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the human-readable summary.
func (b ServeBench) Render(w io.Writer) {
	fmt.Fprintln(w, "Job service benchmark")
	fmt.Fprintf(w, "jobs %d  clients %d  queue cap %d  workers %d (GOMAXPROCS %d, numcpu %d)\n",
		b.Jobs, b.Clients, b.QueueCap, b.Workers, b.GOMAXPROCS, b.NumCPU)
	fmt.Fprintf(w, "latency p50 %.3fs  p99 %.3fs  max %.3fs  throughput %.2f jobs/s over %.2fs\n",
		b.LatencyP50Sec, b.LatencyP99Sec, b.LatencyMaxSec, b.JobsPerSec, b.WallSec)
	fmt.Fprintf(w, "shed %d of %d submissions (%.0f%%)  failed %d  cache hits %d (p50 %.4fs)\n",
		b.Shed, b.Submitted, b.ShedRate*100, b.Failed, b.CacheHits, b.CacheP50Sec)
	if b.Constrained {
		fmt.Fprintln(w, "*** CONSTRAINED RUN: GOMAXPROCS=1 — latency includes serialization behind one flow lane ***")
	}
}
