package experiments

import (
	"fmt"
	"io"

	"ldmo/internal/baseline"
	"ldmo/internal/core"
	"ldmo/internal/layout"
	"ldmo/internal/model"
)

// Ablation isolates the contribution of the CNN selector by running the
// same ILT engine under four selection policies over the cell library:
//
//	oracle   full ILT on every candidate, keep the best (upper bound)
//	cnn      the paper's flow (predictor selection + violation fallback)
//	blind    first generated candidate (no selection)
//	spacing  litho-blind spacing-uniformity heuristic
type Ablation struct {
	Policies []string
	AvgEPE   []float64
	Cells    int
}

// RunAblation executes the four policies.
func RunAblation(pred *model.Predictor, o Options) (Ablation, error) {
	cells := layout.Cells()
	a := Ablation{
		Policies: []string{"oracle", "cnn", "blind", "spacing"},
		AvgEPE:   make([]float64, 4),
		Cells:    len(cells),
	}
	flowCfg := o.flowConfig()
	cnnFlow := core.NewFlow(scorerOf(pred), flowCfg)
	blindFlow := core.NewFlow(nil, flowCfg)
	w := model.DefaultScoreWeights()
	for _, cell := range cells {
		_, oracleRes, err := core.OracleSelect(cell, flowCfg, w.Alpha, w.Beta, w.Gamma)
		if err != nil {
			return a, fmt.Errorf("ablation/oracle/%s: %w", cell.Name, err)
		}
		a.AvgEPE[0] += float64(oracleRes.EPE.Violations)

		cnnRes, err := cnnFlow.Run(cell)
		if err != nil {
			return a, fmt.Errorf("ablation/cnn/%s: %w", cell.Name, err)
		}
		a.AvgEPE[1] += float64(cnnRes.ILT.EPE.Violations)

		blindRes, err := blindFlow.Run(cell)
		if err != nil {
			return a, fmt.Errorf("ablation/blind/%s: %w", cell.Name, err)
		}
		a.AvgEPE[2] += float64(blindRes.ILT.EPE.Violations)

		spacingRes, err := baseline.TwoStage("spacing", cell, o.iltConfig(), o.clockModelOrDefault())
		if err != nil {
			return a, fmt.Errorf("ablation/spacing/%s: %w", cell.Name, err)
		}
		a.AvgEPE[3] += float64(spacingRes.ILT.EPE.Violations)

		o.logf("ablation %-10s oracle=%d cnn=%d blind=%d spacing=%d\n", cell.Name,
			oracleRes.EPE.Violations, cnnRes.ILT.EPE.Violations,
			blindRes.ILT.EPE.Violations, spacingRes.ILT.EPE.Violations)
	}
	for i := range a.AvgEPE {
		a.AvgEPE[i] /= float64(len(cells))
	}
	return a, nil
}

// Render prints the policy comparison.
func (a Ablation) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation: decomposition-selection policy (avg EPE over %d cells)\n", a.Cells)
	for i, p := range a.Policies {
		fmt.Fprintf(w, "%-10s %6.2f\n", p, a.AvgEPE[i])
	}
}
