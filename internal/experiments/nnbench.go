package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/model"
	"ldmo/internal/nn"
	"ldmo/internal/tensor"
)

// NNBenchOp is one before/after measurement of the NN compute core: the same
// operation timed under the naive reference kernels (LDMO_GEMM=naive) and
// the blocked/packed engine.
type NNBenchOp struct {
	// NaiveNs and BlockedNs are ns/op under each engine; Speedup is their
	// ratio (naive/blocked, >1 means the overhaul won).
	NaiveNs   float64 `json:"naive_ns_op"`
	BlockedNs float64 `json:"blocked_ns_op"`
	Speedup   float64 `json:"speedup"`
	// Reps is how many iterations each timing loop completed (quick mode
	// and deadlines shrink it; it never reaches 0 on a completed bench).
	Reps int `json:"reps"`
}

// NNBench is the machine-readable record cmd/ldmo-bench writes to
// BENCH_nn.json: the A/B comparison of the NN compute-core overhaul
// (blocked GEMM + whole-batch im2col + folded inference path).
type NNBench struct {
	// InputSize is the predictor input edge for the Predict measurements;
	// TrainSize/TrainBatch describe the training-step measurement. The
	// comparison is algorithmic: GEMM worker lanes stay at 1.
	InputSize  int  `json:"input_size"`
	TrainSize  int  `json:"train_size"`
	TrainBatch int  `json:"train_batch"`
	GOMAXPROCS int  `json:"gomaxprocs"`
	Quick      bool `json:"quick"`

	// Predict1/Predict8 are full predictor inferences (folded network)
	// at batch 1 and batch 8; TrainStep is one forward+loss+backward+Adam
	// step of the reduced topology.
	Predict1  NNBenchOp `json:"predict_batch1"`
	Predict8  NNBenchOp `json:"predict_batch8"`
	TrainStep NNBenchOp `json:"train_step"`

	// GEMMStem/GEMMMid are the isolated layer-shaped kernels: the stem
	// convolution's 8 x 49 x (112*112) product and a mid-stage
	// 48 x 288 x 784 product.
	GEMMStem NNBenchOp `json:"gemm_stem"`
	GEMMMid  NNBenchOp `json:"gemm_mid"`

	// ForwardAllocs is the steady-state allocation count of one inference
	// forward through the folded network — the zero-alloc contract,
	// re-proven on every bench run.
	ForwardAllocs float64 `json:"inference_forward_allocs_op"`
}

// withGEMMMode runs fn with LDMO_GEMM set to mode (empty = blocked default),
// restoring the previous value. The engine is read per call, so no state
// needs rebuilding between modes.
func withGEMMMode(mode string, fn func() error) error {
	prev, had := os.LookupEnv(tensor.EnvGEMM)
	if mode == "" {
		os.Unsetenv(tensor.EnvGEMM)
	} else {
		os.Setenv(tensor.EnvGEMM, mode)
	}
	defer func() {
		if had {
			os.Setenv(tensor.EnvGEMM, prev)
		} else {
			os.Unsetenv(tensor.EnvGEMM)
		}
	}()
	return fn()
}

// nnBenchConfig is the paper-resolution predictor at CPU-scale widths: full
// 224x224 inputs (the dominant GEMM shapes of ResNet-18's stem and early
// stages) with the reduced channel counts the experiments train.
func nnBenchConfig(inputSize int) model.Config {
	return model.Config{
		InputSize:     inputSize,
		StemChannels:  8,
		StageBlocks:   [4]int{1, 1, 1, 1},
		StageChannels: [4]int{8, 16, 32, 48},
		HiddenDim:     64,
		Seed:          1,
	}
}

// RunNNBench measures the NN compute core A/B: predictor inference at batch
// 1 and 8, one training step, and the two dominant GEMM shapes, each under
// the naive reference kernels and the blocked engine, plus the steady-state
// allocation count of the folded inference forward.
func RunNNBench(o Options) (NNBench, error) {
	ctx := o.context()
	out := NNBench{
		InputSize:  224,
		TrainSize:  64,
		TrainBatch: 16,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      o.Fast,
	}
	predReps, trainReps, gemmReps := 10, 10, 30
	if o.Fast {
		out.InputSize = 64
		out.TrainBatch = 8
		predReps, trainReps, gemmReps = 3, 3, 8
	}

	// Predictor inference through the folded replicas. The frozen cache is
	// engine-independent (folding touches weights, not GEMM calls), so one
	// predictor serves both modes.
	pred, err := model.New(nnBenchConfig(out.InputSize))
	if err != nil {
		return out, err
	}
	pred.SetWorkers(1)
	rng := rand.New(rand.NewSource(o.Seed))
	mkImgs := func(n int) []*grid.Grid {
		imgs := make([]*grid.Grid, n)
		for i := range imgs {
			g := grid.New(out.InputSize, out.InputSize, 4, geom.Point{})
			for j := range g.Data {
				g.Data[j] = rng.Float64()
			}
			imgs[i] = g
		}
		return imgs
	}
	imgs1, imgs8 := mkImgs(1), mkImgs(8)
	predictOp := func(imgs []*grid.Grid) func() (float64, int, error) {
		return func() (float64, int, error) {
			return timeOp(ctx, predReps, func() { pred.PredictBatch(imgs) })
		}
	}

	// One training step of the reduced topology on TrainSize inputs.
	trng := rand.New(rand.NewSource(o.Seed + 1))
	net := nn.NewNetwork(
		nn.NewConv2D(trng, 1, 8, 7, 2, 3, false),
		nn.NewBatchNorm2D(8),
		nn.NewReLU(),
		nn.NewMaxPool2D(3, 2, 1),
		nn.NewBasicBlock(trng, 8, 8, 1),
		nn.NewBasicBlock(trng, 8, 16, 2),
		nn.NewBasicBlock(trng, 16, 32, 2),
		nn.NewBasicBlock(trng, 32, 48, 2),
		nn.NewGlobalAvgPool(),
		nn.NewLinear(trng, 48, 64),
		nn.NewReLU(),
		nn.NewLinear(trng, 64, 1),
	)
	params := net.Params()
	adam := nn.NewAdam(1e-3)
	loss := &nn.MAE{}
	x := tensor.New(out.TrainBatch, 1, out.TrainSize, out.TrainSize)
	for i := range x.Data {
		x.Data[i] = trng.Float64()
	}
	tgt := tensor.New(out.TrainBatch, 1, 1, 1)
	trainStep := func() {
		p := net.Forward(x, true)
		_, grad := loss.Eval(p, tgt)
		nn.ZeroGrads(params)
		net.Backward(grad)
		adam.Step(params)
	}
	trainOp := func() (float64, int, error) { return timeOp(ctx, trainReps, trainStep) }

	// Isolated layer-shaped GEMMs: the stem convolution at 112x112 output
	// resolution and a mid-stage 3x3 convolution.
	gemmOp := func(m, k, n int) func() (float64, int, error) {
		grng := rand.New(rand.NewSource(o.Seed + 2))
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		for i := range a {
			a[i] = grng.NormFloat64()
		}
		for i := range b {
			b[i] = grng.NormFloat64()
		}
		dst := make([]float64, m*n)
		return func() (float64, int, error) {
			return timeOp(ctx, gemmReps, func() { tensor.MatMul(a, m, k, b, n, dst) })
		}
	}

	measure := func(name string, dst *NNBenchOp, op func() (float64, int, error)) error {
		var err error
		if e := withGEMMMode(tensor.ModeNaive, func() error {
			dst.NaiveNs, dst.Reps, err = op()
			return err
		}); e != nil {
			return fmt.Errorf("%s (naive): %w", name, e)
		}
		if e := withGEMMMode("", func() error {
			dst.BlockedNs, _, err = op()
			return err
		}); e != nil {
			return fmt.Errorf("%s (blocked): %w", name, e)
		}
		if dst.BlockedNs > 0 {
			dst.Speedup = dst.NaiveNs / dst.BlockedNs
		}
		o.logf("nnbench %-14s naive %12.0f ns/op  blocked %12.0f ns/op  speedup %.2fx\n",
			name, dst.NaiveNs, dst.BlockedNs, dst.Speedup)
		return nil
	}

	if err := measure("predict-b1", &out.Predict1, predictOp(imgs1)); err != nil {
		return out, err
	}
	if err := measure("predict-b8", &out.Predict8, predictOp(imgs8)); err != nil {
		return out, err
	}
	if err := measure("train-step", &out.TrainStep, trainOp); err != nil {
		return out, err
	}
	if err := measure("gemm-stem", &out.GEMMStem, gemmOp(8, 49, 112*112)); err != nil {
		return out, err
	}
	if err := measure("gemm-mid", &out.GEMMMid, gemmOp(48, 288, 784)); err != nil {
		return out, err
	}

	// Steady-state allocation proof on the folded inference path.
	if err := withGEMMMode("", func() error {
		frozen := pred.Net.Freeze()
		xi := tensor.New(1, 1, out.InputSize, out.InputSize)
		copy(xi.Data, imgs1[0].Data)
		frozen.Forward(xi, false)
		frozen.Forward(xi, false)
		out.ForwardAllocs = testing.AllocsPerRun(3, func() { frozen.Forward(xi, false) })
		return nil
	}); err != nil {
		return out, err
	}
	return out, nil
}

// WriteJSON writes the bench record to path.
func (b NNBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the human-readable summary.
func (b NNBench) Render(w io.Writer) {
	fmt.Fprintln(w, "NN compute core A/B benchmark (naive reference vs blocked engine)")
	fmt.Fprintf(w, "predict input %dx%d  train %dx%d batch %d  GOMAXPROCS %d  quick %v\n",
		b.InputSize, b.InputSize, b.TrainSize, b.TrainSize, b.TrainBatch, b.GOMAXPROCS, b.Quick)
	row := func(name string, op NNBenchOp) {
		fmt.Fprintf(w, "%-16s naive %12.0f ns/op   blocked %12.0f ns/op   speedup %.2fx\n",
			name, op.NaiveNs, op.BlockedNs, op.Speedup)
	}
	row("Predict batch=1", b.Predict1)
	row("Predict batch=8", b.Predict8)
	row("Train step", b.TrainStep)
	row("GEMM stem", b.GEMMStem)
	row("GEMM mid", b.GEMMMid)
	fmt.Fprintf(w, "steady-state allocs/op (folded inference forward): %.1f\n", b.ForwardAllocs)
}
