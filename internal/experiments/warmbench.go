package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"ldmo/internal/decomp"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/sampling"
	"ldmo/internal/simclock"
)

// WarmCellBench is one library cell's cold-vs-warm ILT comparison inside
// BENCH_warmstart.json. Both runs use the same convergence early-stop
// settings; the only difference is the learned initializer, so every delta is
// attributable to the warm start.
type WarmCellBench struct {
	Cell string `json:"cell"`
	// ItersCold/ItersWarm are gradient iterations to convergence (or to the
	// iteration budget when the run never plateaus — Converged says which).
	ItersCold     int  `json:"iters_cold"`
	ItersWarm     int  `json:"iters_warm"`
	ConvergedCold bool `json:"converged_cold"`
	ConvergedWarm bool `json:"converged_warm"`
	// Wall-clock seconds for the ILT run (the warm number includes surrogate
	// inference) and deterministic simclock model-seconds for the same.
	WallColdSec float64 `json:"wall_cold_sec"`
	WallWarmSec float64 `json:"wall_warm_sec"`
	SimColdSec  float64 `json:"sim_cold_sec"`
	SimWarmSec  float64 `json:"sim_warm_sec"`
	// Final printability verdicts of both runs.
	EPECold  int     `json:"epe_cold"`
	EPEWarm  int     `json:"epe_warm"`
	ViolCold int     `json:"viol_cold"`
	ViolWarm int     `json:"viol_warm"`
	L2Cold   float64 `json:"l2_cold"`
	L2Warm   float64 `json:"l2_warm"`
	// L2Cold0/L2Warm0 are the trajectories' starting L2 (trace[0]): how much
	// closer to printable the learned initialization begins.
	L2Cold0 float64 `json:"l2_cold0"`
	L2Warm0 float64 `json:"l2_warm0"`
	// VerdictParity: the warm run's discrete verdicts (EPE and print-check
	// violation counts) match the cold run's — warm-starting saved iterations
	// without changing what the flow would decide about this cell.
	VerdictParity bool `json:"verdict_parity"`
}

// WarmBench is the machine-readable record cmd/ldmo-bench writes to
// BENCH_warmstart.json: a warm-start surrogate is trained from scratch on
// harvested (cold mask, optimized field) pairs, then every eval cell runs
// ILT cold and warm under identical early-stop settings.
type WarmBench struct {
	// Harvest/training provenance.
	TrainLayouts int    `json:"train_layouts"`
	TrainPairs   int    `json:"train_pairs"`
	TrainSamples int    `json:"train_samples"` // after dihedral augmentation
	TrainEpochs  int    `json:"train_epochs"`
	NetDigest    string `json:"net_digest"`
	// Early-stop settings shared by the cold and warm runs.
	Window int     `json:"window"`
	Tol    float64 `json:"tol"`

	Cells []WarmCellBench `json:"cells"`

	// Aggregates over the eval cells.
	ItersColdTotal int `json:"iters_cold_total"`
	ItersWarmTotal int `json:"iters_warm_total"`
	// IterReduction = 1 - warm/cold iterations: the headline latency win.
	IterReduction float64 `json:"iter_reduction"`
	WallReduction float64 `json:"wall_reduction"`
	SimReduction  float64 `json:"sim_reduction"`
	// EPEDelta is total warm minus cold EPE violations (<=0 means the warm
	// masks print no worse).
	EPEDelta int `json:"epe_delta"`
	// VerdictParity aggregates the per-cell flags.
	VerdictParity bool `json:"verdict_parity"`
	// OffIdentical: on the first eval cell, running the warm config with
	// LDMO_WARMSTART=off reproduced a config that never heard of
	// warm-starting bitwise (masks, L2, iteration count) — the gate's kill
	// switch really restores the pre-warm-start optimizer.
	OffIdentical bool `json:"off_identical"`
	// Pass is the acceptance verdict: >=30% iteration reduction, model time
	// reduced, EPE no worse, and the off gate bitwise-clean.
	Pass bool `json:"pass"`
}

// warmEvalCells picks the library cells the bench evaluates on. Training
// pairs come from generated layouts only, so every eval cell is unseen.
func warmEvalCells(fast bool) []string {
	if fast {
		return []string{"INV_X1", "NAND3_X2", "AOI211_X1"}
	}
	out := make([]string, 0, 13)
	for _, c := range layout.Cells() {
		out = append(out, c.Name)
	}
	return out
}

// RunWarmBench measures the learned ILT warm-start end to end: harvest
// training pairs, train the surrogate, then compare cold and warm ILT on
// unseen library cells under identical convergence settings.
func RunWarmBench(o Options) (WarmBench, error) {
	out := WarmBench{
		Window: ilt.DefaultConvergeWindow,
		Tol:    ilt.DefaultConvergeTol,
	}

	// Harvest: generated layouts through the dataset factory's labeling path.
	pool, err := o.Pool()
	if err != nil {
		return out, err
	}
	// Harvesting is cheap (generated layouts are small and one fast ILT run
	// takes well under a second); training compute is the budget, so the
	// harvest size is the same in both modes.
	nTrain := 48
	if nTrain > len(pool) {
		nTrain = len(pool)
	}
	out.TrainLayouts = nTrain
	o.logf("warmbench: harvesting pairs from %d layouts\n", nTrain)
	ds, err := sampling.BuildWarmPairsCtx(o.context(), pool[:nTrain], o.samplingConfig(), sampling.WarmPairConfig{}, o.Log)
	if err != nil {
		return out, err
	}
	out.TrainPairs = ds.Len()
	aug := ds.Augmented()
	out.TrainSamples = aug.Len()

	// Train the surrogate from scratch.
	wcfg := model.DefaultWarmConfig()
	wcfg.Seed = o.Seed
	ws, err := model.NewWarmStarter(wcfg)
	if err != nil {
		return out, err
	}
	wtc := model.DefaultWarmTrainConfig()
	wtc.Seed = o.Seed
	wtc.Log = o.Log
	if o.Fast {
		wtc.Epochs = 30
	}
	out.TrainEpochs = wtc.Epochs
	if _, err := ws.TrainCtx(o.context(), aug, wtc); err != nil {
		return out, err
	}
	out.NetDigest = ws.Digest()

	// Evaluate on unseen library cells: first decomposition candidate of
	// each, cold vs warm under identical early-stop settings.
	base := o.iltConfig()
	base.AbortOnViolation = false
	base.ConvergeWindow = out.Window
	base.ConvergeTol = out.Tol
	warmCfg := base
	warmCfg.Init = ws

	run := func(l layout.Layout, d decomp.Decomposition, cfg ilt.Config) (ilt.Result, float64, float64, error) {
		opt, err := ilt.NewOptimizer(l, cfg)
		if err != nil {
			return ilt.Result{}, 0, 0, err
		}
		clk := simclock.New(o.clockModelOrDefault())
		opt.SetClock(clk)
		start := time.Now()
		r := opt.RunCtx(o.context(), d)
		return r, time.Since(start).Seconds(), clk.Seconds(), nil
	}

	flowCfg := o.flowConfig()
	for _, name := range warmEvalCells(o.Fast) {
		if o.context().Err() != nil {
			o.logf("warmbench: deadline hit, stopping after %d cells\n", len(out.Cells))
			break
		}
		cell, err := layout.Cell(name)
		if err != nil {
			return out, err
		}
		gen := decomp.NewGenerator()
		gen.Classify = flowCfg.Classify
		gen.Seed = flowCfg.Seed
		cands, err := gen.Generate(cell)
		if err != nil {
			return out, err
		}
		if len(cands) == 0 {
			continue
		}
		d := cands[0]

		cold, wallCold, simCold, err := run(cell, d, base)
		if err != nil {
			return out, err
		}
		warm, wallWarm, simWarm, err := run(cell, d, warmCfg)
		if err != nil {
			return out, err
		}

		// Kill-switch check, once (the first cell): with the gate forced off,
		// the warm config must reproduce a config that never heard of
		// warm-starting — no initializer AND no early stop, i.e. the pre-PR
		// optimizer — bitwise.
		if len(out.Cells) == 0 {
			plain := o.iltConfig()
			plain.AbortOnViolation = false
			pre, _, _, err := run(cell, d, plain)
			if err != nil {
				return out, err
			}
			prev, had := os.LookupEnv(ilt.EnvWarm)
			os.Setenv(ilt.EnvWarm, "off")
			off, _, _, err := run(cell, d, warmCfg)
			if had {
				os.Setenv(ilt.EnvWarm, prev)
			} else {
				os.Unsetenv(ilt.EnvWarm)
			}
			if err != nil {
				return out, err
			}
			out.OffIdentical = off.L2 == pre.L2 && off.Iters == pre.Iters &&
				!off.WarmStart && !off.Converged &&
				gridEqual(off.M1.Data, pre.M1.Data) && gridEqual(off.M2.Data, pre.M2.Data)
		}

		cb := WarmCellBench{
			Cell:          name,
			ItersCold:     cold.Iters,
			ItersWarm:     warm.Iters,
			ConvergedCold: cold.Converged,
			ConvergedWarm: warm.Converged,
			WallColdSec:   wallCold,
			WallWarmSec:   wallWarm,
			SimColdSec:    simCold,
			SimWarmSec:    simWarm,
			EPECold:       cold.EPE.Violations,
			EPEWarm:       warm.EPE.Violations,
			ViolCold:      cold.Violations.Total(),
			ViolWarm:      warm.Violations.Total(),
			L2Cold:        cold.L2,
			L2Warm:        warm.L2,
		}
		if len(cold.Trace) > 0 {
			cb.L2Cold0 = cold.Trace[0].L2
		}
		if len(warm.Trace) > 0 {
			cb.L2Warm0 = warm.Trace[0].L2
		}
		cb.VerdictParity = cb.EPEWarm == cb.EPECold && cb.ViolWarm == cb.ViolCold
		out.Cells = append(out.Cells, cb)
		o.logf("warmbench %-12s iters %2d -> %2d  L2[0] %.0f -> %.0f  sim %.2fs -> %.2fs  EPE %d -> %d  parity=%v\n",
			name, cb.ItersCold, cb.ItersWarm, cb.L2Cold0, cb.L2Warm0, cb.SimColdSec, cb.SimWarmSec,
			cb.EPECold, cb.EPEWarm, cb.VerdictParity)
	}
	if len(out.Cells) == 0 {
		return out, fmt.Errorf("warmbench: no cells evaluated")
	}

	var wallCold, wallWarm, simCold, simWarm float64
	out.VerdictParity = true
	for _, c := range out.Cells {
		out.ItersColdTotal += c.ItersCold
		out.ItersWarmTotal += c.ItersWarm
		wallCold += c.WallColdSec
		wallWarm += c.WallWarmSec
		simCold += c.SimColdSec
		simWarm += c.SimWarmSec
		out.EPEDelta += c.EPEWarm - c.EPECold
		out.VerdictParity = out.VerdictParity && c.VerdictParity
	}
	if out.ItersColdTotal > 0 {
		out.IterReduction = 1 - float64(out.ItersWarmTotal)/float64(out.ItersColdTotal)
	}
	if wallCold > 0 {
		out.WallReduction = 1 - wallWarm/wallCold
	}
	if simCold > 0 {
		out.SimReduction = 1 - simWarm/simCold
	}
	out.Pass = out.IterReduction >= 0.30 && out.SimReduction > 0 &&
		out.EPEDelta <= 0 && out.OffIdentical
	o.logf("warmbench: iters %d -> %d (%.0f%% reduction), sim %.2fs -> %.2fs, EPE delta %+d, pass=%v\n",
		out.ItersColdTotal, out.ItersWarmTotal, 100*out.IterReduction, simCold, simWarm, out.EPEDelta, out.Pass)
	return out, nil
}

// WriteJSON writes the bench record to path.
func (b WarmBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the human-readable summary.
func (b WarmBench) Render(w io.Writer) {
	fmt.Fprintln(w, "Learned ILT warm-start benchmark")
	fmt.Fprintf(w, "trained on %d pairs (%d augmented) from %d layouts, %d epochs, net %.12s\n",
		b.TrainPairs, b.TrainSamples, b.TrainLayouts, b.TrainEpochs, b.NetDigest)
	fmt.Fprintf(w, "%-14s %22s %22s %12s\n", "cell", "iters cold->warm", "sim-sec cold->warm", "EPE")
	for _, c := range b.Cells {
		fmt.Fprintf(w, "%-14s %10d -> %-7d %11.2f -> %-7.2f %4d -> %d\n",
			c.Cell, c.ItersCold, c.ItersWarm, c.SimColdSec, c.SimWarmSec, c.EPECold, c.EPEWarm)
	}
	fmt.Fprintf(w, "iteration reduction %.0f%%  sim-time reduction %.0f%%  wall reduction %.0f%%\n",
		100*b.IterReduction, 100*b.SimReduction, 100*b.WallReduction)
	fmt.Fprintf(w, "EPE delta %+d  verdict parity %v  off-gate identical %v  PASS=%v\n",
		b.EPEDelta, b.VerdictParity, b.OffIdentical, b.Pass)
}
