package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"ldmo/internal/decomp"
	"ldmo/internal/fft"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
)

// FFTBenchOp is one before/after measurement of the spectral engine: the
// same operation timed under the complex reference path (LDMO_FFT=complex)
// and the real-input half-spectrum path.
type FFTBenchOp struct {
	// ComplexNs and RealNs are ns/op under each engine; Speedup is their
	// ratio (complex/real, >1 means the overhaul won).
	ComplexNs float64 `json:"complex_ns_op"`
	RealNs    float64 `json:"real_ns_op"`
	Speedup   float64 `json:"speedup"`
	// Reps is how many iterations each timing loop completed (quick mode
	// and deadlines shrink it; it never reaches 0 on a completed bench).
	Reps int `json:"reps"`
}

// FFTVecOp is one scalar-vs-vector measurement of the same operation: the
// pure-Go reference engine (LDMO_FFT_ASM=off) against the amd64 AVX kernels.
// Both run the default real-input spectral mode; the two engines produce
// bit-identical output, so the ratio is pure instruction throughput.
type FFTVecOp struct {
	// ScalarNs and VectorNs are ns/op under each kernel engine; Speedup is
	// scalar/vector (>1 means the vector kernels won).
	ScalarNs float64 `json:"scalar_ns_op"`
	VectorNs float64 `json:"vector_ns_op"`
	Speedup  float64 `json:"speedup"`
	// Reps is how many iterations each timing loop completed.
	Reps int `json:"reps"`
}

// FFTBench is the machine-readable record cmd/ldmo-bench writes to
// BENCH_fft.json: the A/B comparison of the spectral engine overhaul, plus
// the scalar-vs-vector kernel comparison on hosts with the AVX engine.
type FFTBench struct {
	// Raster/Kernel are the benchmark geometry (pixels); GOMAXPROCS and
	// Workers document that the comparison is algorithmic, not parallel
	// (worker lanes are pinned to 1). NumCPU and CPUFeatures identify the
	// host so ns/op records are interpretable across machines.
	Raster      int      `json:"raster"`
	Kernel      int      `json:"kernel"`
	GOMAXPROCS  int      `json:"gomaxprocs"`
	NumCPU      int      `json:"numcpu"`
	CPUFeatures []string `json:"cpu_features"`
	Workers     int      `json:"workers"`
	Quick       bool     `json:"quick"`

	// Convolve is one Plan.Convolve (forward + product + inverse);
	// Aerial/Backward are full SOCS forward and adjoint evaluations over
	// the kernel bank.
	Convolve FFTBenchOp `json:"convolve"`
	Aerial   FFTBenchOp `json:"aerial"`
	Backward FFTBenchOp `json:"aerial_backward"`

	// Steady-state allocations per call on the real path — the ILT inner
	// loop's zero-alloc contract, re-proven on every bench run.
	ConvolveAllocs float64 `json:"convolve_allocs_op"`
	AerialAllocs   float64 `json:"aerial_allocs_op"`
	BackwardAllocs float64 `json:"aerial_backward_allocs_op"`

	// ILTCell / ILTIters / ILT are the end-to-end check: one full ILT run
	// (all gradient iterations) on a real cell under each engine.
	ILTCell  string     `json:"ilt_cell"`
	ILTIters int        `json:"ilt_iters"`
	ILT      FFTBenchOp `json:"ilt_wall"`

	// VectorEnabled reports whether the host ran the scalar-vs-vector leg
	// (amd64 with AVX2); the Vec* records are zero when it could not.
	// VecForward is the butterfly-dominated 2-D forward transform;
	// VecApplySpec is the pointwise product + inverse (Plan.ApplySpecWith,
	// correlate form); VecAccumulate is the pure pointwise fused-gradient
	// kernel (fft.AccumulateConj over one spectrum); VecBackward is the full
	// SOCS fused adjoint; VecILT is the end-to-end ILT wall time.
	VectorEnabled bool     `json:"vector_enabled"`
	VecForward    FFTVecOp `json:"vec_forward"`
	VecApplySpec  FFTVecOp `json:"vec_apply_spec"`
	VecAccumulate FFTVecOp `json:"vec_accumulate_conj"`
	VecBackward   FFTVecOp `json:"vec_aerial_backward"`
	VecILT        FFTVecOp `json:"vec_ilt_wall"`
}

// withFFTMode runs fn with LDMO_FFT set to mode, restoring the previous
// value. Plans capture the mode at construction, so fn must build every
// plan/simulator it measures.
func withFFTMode(mode string, fn func() error) error {
	prev, had := os.LookupEnv(fft.EnvMode)
	os.Setenv(fft.EnvMode, mode)
	defer func() {
		if had {
			os.Setenv(fft.EnvMode, prev)
		} else {
			os.Unsetenv(fft.EnvMode)
		}
	}()
	return fn()
}

// withFFTASM runs fn with LDMO_FFT_ASM set to mode, restoring the previous
// value. Plans capture the kernel engine at construction, so fn must build
// every plan/simulator it measures.
func withFFTASM(mode string, fn func() error) error {
	prev, had := os.LookupEnv(fft.EnvASM)
	os.Setenv(fft.EnvASM, mode)
	defer func() {
		if had {
			os.Setenv(fft.EnvASM, prev)
		} else {
			os.Unsetenv(fft.EnvASM)
		}
	}()
	return fn()
}

// timeOp measures fn over up to reps iterations, stopping early (but after
// at least one) once ctx is done — this is what makes the bench respect
// -deadline in CI. It returns ns/op and the iterations completed.
func timeOp(ctx context.Context, reps int, fn func()) (float64, int, error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	fn() // warm caches, tables and lazy state outside the timed region
	done := 0
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
		done++
		if ctx.Err() != nil {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(done), done, nil
}

// RunFFTBench measures the spectral engine A/B: Plan.Convolve, SOCS Aerial,
// and the fused AerialBackward under both engine modes, plus one end-to-end
// ILT run per mode, all serial (workers=1) so the ratio is algorithmic.
func RunFFTBench(o Options) (FFTBench, error) {
	ctx := o.context()
	out := FFTBench{
		Raster:      224,
		Kernel:      31,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		CPUFeatures: fft.CPUFeatures(),
		Workers:     1,
		Quick:       o.Fast,
	}
	reps := 40
	iltCell := "AOI211_X1"
	if o.Fast {
		out.Raster = 112
		reps = 10
	}

	// Synthetic raster + smoothing kernel for the Plan-level measurement.
	img := make([]float64, out.Raster*out.Raster)
	for i := range img {
		img[i] = float64(i%13) / 13
	}
	kernel := make([]float64, out.Kernel*out.Kernel)
	for i := range kernel {
		kernel[i] = 1.0 / float64(len(kernel))
	}
	convOp := func() (float64, int, error) {
		p := fft.NewPlan(out.Raster, out.Raster, out.Kernel, out.Kernel)
		kf := p.TransformKernel(kernel)
		dst := make([]float64, len(img))
		return timeOp(ctx, reps, func() { p.Convolve(img, kf, dst) })
	}

	// SOCS simulator for the Aerial / fused-backward measurement.
	params := litho.DefaultParams()
	simOp := func(backward bool) (float64, int, error) {
		sim, err := litho.NewSimulator(out.Raster, out.Raster, params)
		if err != nil {
			return 0, 0, err
		}
		sim.SetWorkers(1)
		fields := sim.NewFields()
		aerial := make([]float64, len(img))
		grad := make([]float64, len(img))
		sim.Aerial(img, aerial, fields)
		if backward {
			return timeOp(ctx, reps, func() { sim.AerialBackward(aerial, fields, grad) })
		}
		return timeOp(ctx, reps, func() { sim.Aerial(img, aerial, fields) })
	}

	iltOp := func() (float64, int, error) {
		cell, err := layout.Cell(iltCell)
		if err != nil {
			return 0, 0, err
		}
		cfg := o.iltConfig()
		cfg.AbortOnViolation = false // full budget: both engines do identical work
		opt, err := ilt.NewOptimizer(cell, cfg)
		if err != nil {
			return 0, 0, err
		}
		cands, err := decomp.NewGenerator().Generate(cell)
		if err != nil {
			return 0, 0, err
		}
		out.ILTIters = cfg.Normalize().MaxIters
		if err := ctx.Err(); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		r := opt.RunCtx(ctx, cands[0])
		if r.Interrupted {
			return 0, 0, ctx.Err()
		}
		return float64(time.Since(start).Nanoseconds()), 1, nil
	}

	measure := func(name string, dst *FFTBenchOp, op func() (float64, int, error)) error {
		var err error
		if e := withFFTMode(fft.ModeComplex, func() error {
			dst.ComplexNs, dst.Reps, err = op()
			return err
		}); e != nil {
			return fmt.Errorf("%s (complex): %w", name, e)
		}
		if e := withFFTMode("", func() error {
			dst.RealNs, _, err = op()
			return err
		}); e != nil {
			return fmt.Errorf("%s (real): %w", name, e)
		}
		if dst.RealNs > 0 {
			dst.Speedup = dst.ComplexNs / dst.RealNs
		}
		o.logf("fftbench %-16s complex %12.0f ns/op  real %12.0f ns/op  speedup %.2fx\n",
			name, dst.ComplexNs, dst.RealNs, dst.Speedup)
		return nil
	}

	if err := measure("convolve", &out.Convolve, convOp); err != nil {
		return out, err
	}
	if err := measure("aerial", &out.Aerial, func() (float64, int, error) { return simOp(false) }); err != nil {
		return out, err
	}
	if err := measure("backward", &out.Backward, func() (float64, int, error) { return simOp(true) }); err != nil {
		return out, err
	}

	// Steady-state allocation proof on the real (default) path.
	if err := withFFTMode("", func() error {
		p := fft.NewPlan(out.Raster, out.Raster, out.Kernel, out.Kernel)
		kf := p.TransformKernel(kernel)
		dst := make([]float64, len(img))
		out.ConvolveAllocs = testing.AllocsPerRun(5, func() { p.Convolve(img, kf, dst) })
		sim, err := litho.NewSimulator(out.Raster, out.Raster, params)
		if err != nil {
			return err
		}
		sim.SetWorkers(1)
		fields := sim.NewFields()
		aerial := make([]float64, len(img))
		grad := make([]float64, len(img))
		sim.Aerial(img, aerial, fields)
		out.AerialAllocs = testing.AllocsPerRun(5, func() { sim.Aerial(img, aerial, fields) })
		out.BackwardAllocs = testing.AllocsPerRun(5, func() { sim.AerialBackward(aerial, fields, grad) })
		return nil
	}); err != nil {
		return out, err
	}

	out.ILTCell = iltCell
	if err := measure("ilt-e2e", &out.ILT, iltOp); err != nil {
		return out, err
	}

	// Scalar-vs-vector kernel comparison, real mode on both sides. Skipped
	// (records stay zero) on hosts without the AVX engine.
	if !fft.ASMAvailable() {
		o.logf("fftbench: vector engine unavailable; skipping scalar-vs-vector leg\n")
		return out, nil
	}
	out.VectorEnabled = true
	fwdOp := func() (float64, int, error) {
		p := fft.NewPlan(out.Raster, out.Raster, out.Kernel, out.Kernel)
		return timeOp(ctx, reps, func() { p.Forward(img) })
	}
	applyOp := func() (float64, int, error) {
		p := fft.NewPlan(out.Raster, out.Raster, out.Kernel, out.Kernel)
		kf := p.TransformKernel(kernel)
		dst := make([]float64, len(img))
		s := p.NewScratch()
		spec := p.ForwardInto(s, img)
		return timeOp(ctx, reps, func() { p.ApplySpecWith(s, spec, kf, dst, true) })
	}
	accumOp := func() (float64, int, error) {
		p := fft.NewPlan(out.Raster, out.Raster, out.Kernel, out.Kernel)
		kf := p.TransformKernel(kernel)
		spec := p.Forward(img)
		acc := make([]complex128, p.SpecLen())
		// Pointwise reps scale up: one spectrum pass is far cheaper than a
		// whole convolution, and the kernel is what this record isolates.
		return timeOp(ctx, reps*8, func() { fft.AccumulateConj(acc, spec, kf) })
	}
	measureVec := func(name string, dst *FFTVecOp, op func() (float64, int, error)) error {
		var err error
		if e := withFFTASM(fft.ASMOff, func() error {
			dst.ScalarNs, dst.Reps, err = op()
			return err
		}); e != nil {
			return fmt.Errorf("%s (scalar): %w", name, e)
		}
		if e := withFFTASM("", func() error {
			dst.VectorNs, _, err = op()
			return err
		}); e != nil {
			return fmt.Errorf("%s (vector): %w", name, e)
		}
		if dst.VectorNs > 0 {
			dst.Speedup = dst.ScalarNs / dst.VectorNs
		}
		o.logf("fftbench %-16s scalar  %12.0f ns/op  vec  %12.0f ns/op  speedup %.2fx\n",
			name, dst.ScalarNs, dst.VectorNs, dst.Speedup)
		return nil
	}
	if err := measureVec("vec-forward", &out.VecForward, fwdOp); err != nil {
		return out, err
	}
	if err := measureVec("vec-applyspec", &out.VecApplySpec, applyOp); err != nil {
		return out, err
	}
	if err := measureVec("vec-accumulate", &out.VecAccumulate, accumOp); err != nil {
		return out, err
	}
	if err := measureVec("vec-backward", &out.VecBackward, func() (float64, int, error) { return simOp(true) }); err != nil {
		return out, err
	}
	if err := measureVec("vec-ilt-e2e", &out.VecILT, iltOp); err != nil {
		return out, err
	}
	return out, nil
}

// WriteJSON writes the bench record to path.
func (b FFTBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the human-readable summary.
func (b FFTBench) Render(w io.Writer) {
	fmt.Fprintln(w, "Spectral engine A/B benchmark (complex reference vs real-input path)")
	fmt.Fprintf(w, "raster %dx%d  kernel %dx%d  workers %d (GOMAXPROCS %d, %d CPUs, features %v)  quick %v\n",
		b.Raster, b.Raster, b.Kernel, b.Kernel, b.Workers, b.GOMAXPROCS, b.NumCPU, b.CPUFeatures, b.Quick)
	row := func(name string, op FFTBenchOp) {
		fmt.Fprintf(w, "%-16s complex %12.0f ns/op   real %12.0f ns/op   speedup %.2fx\n",
			name, op.ComplexNs, op.RealNs, op.Speedup)
	}
	row("Plan.Convolve", b.Convolve)
	row("Aerial", b.Aerial)
	row("AerialBackward", b.Backward)
	row("ILT end-to-end", b.ILT)
	fmt.Fprintf(w, "steady-state allocs/op (real path): convolve %.1f  aerial %.1f  backward %.1f\n",
		b.ConvolveAllocs, b.AerialAllocs, b.BackwardAllocs)
	fmt.Fprintf(w, "ILT: cell %s, %d iterations per engine\n", b.ILTCell, b.ILTIters)
	if !b.VectorEnabled {
		fmt.Fprintln(w, "vector kernels: unavailable on this host (scalar reference only)")
		return
	}
	fmt.Fprintln(w, "Kernel engine A/B (pure-Go scalar vs amd64 AVX, bit-identical output)")
	vrow := func(name string, op FFTVecOp) {
		fmt.Fprintf(w, "%-16s scalar  %12.0f ns/op   vec  %12.0f ns/op   speedup %.2fx\n",
			name, op.ScalarNs, op.VectorNs, op.Speedup)
	}
	vrow("Forward", b.VecForward)
	vrow("ApplySpec", b.VecApplySpec)
	vrow("AccumulateConj", b.VecAccumulate)
	vrow("AerialBackward", b.VecBackward)
	vrow("ILT end-to-end", b.VecILT)
}
