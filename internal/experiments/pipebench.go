package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ldmo/internal/core"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/par"
)

// PipelineBench is the machine-readable record of the stage-at-a-time vs
// pipelined flow comparison that cmd/ldmo-bench writes to BENCH_pipeline.json.
type PipelineBench struct {
	// Cells lists the benchmark layouts; Layouts is their count.
	Cells   []string `json:"cells"`
	Layouts int      `json:"layouts"`
	// Workers and Chunk are the scheduler parameters actually run (the
	// scheduler bumps Workers up to Chunk so a coalescing wave can always
	// assemble); GOMAXPROCS and NumCPU describe the host.
	Workers    int `json:"workers"`
	Chunk      int `json:"chunk"`
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// Constrained flags a GOMAXPROCS=1 run: pipeline timings then measure
	// scheduling overhead plus batching amortization, not stage overlap.
	// Warning carries the caveat as text inside the record itself, so a
	// JSON consumer that never looks at the boolean cannot misquote the
	// numbers silently.
	Constrained bool   `json:"constrained"`
	Warning     string `json:"warning,omitempty"`
	// SerialSec is the wall time of a layout-at-a-time RunContext loop;
	// PipelineSec the wall time of RunPipeline over the same slice.
	SerialSec   float64 `json:"serial_sec"`
	PipelineSec float64 `json:"pipeline_sec"`
	Speedup     float64 `json:"speedup"`
	// SerialPredictCalls counts scorer invocations in the serial loop (one
	// per multi-candidate layout); PipelinePredictCalls counts the coalesced
	// flushes that served the same requests. MaxBatch is the largest single
	// coalesced batch in layouts; Images the total candidate images scored.
	SerialPredictCalls   int `json:"serial_predict_calls"`
	PipelinePredictCalls int `json:"pipeline_predict_calls"`
	MaxBatch             int `json:"max_batch"`
	Images               int `json:"images"`
	// Per-stage worker occupancy of the pipelined run, each in [0,1]:
	// busy time summed over workers divided by wall * workers. ScoreWait is
	// time blocked waiting for a prediction wave to assemble.
	GenOccupancy       float64 `json:"gen_occupancy"`
	PredictOccupancy   float64 `json:"predict_occupancy"`
	ScoreWaitOccupancy float64 `json:"score_wait_occupancy"`
	OptOccupancy       float64 `json:"opt_occupancy"`
	// Identical asserts every pipelined result is bitwise-equal to its
	// serial counterpart (choice, scores, masks, printed image, model
	// seconds) — the determinism guarantee, checked on every bench run.
	Identical bool `json:"identical"`
}

// countingScorer wraps a scorer and counts PredictBatch invocations. It
// deliberately does not forward the PredictBatchInto fast path: the count is
// the point, and PredictBatch returns bitwise the same scores.
type countingScorer struct {
	inner core.Scorer
	calls int
}

func (c *countingScorer) PredictBatch(imgs []*grid.Grid) []float64 {
	c.calls++
	return c.inner.PredictBatch(imgs)
}

// RunPipelineBench measures the full flow over the cell library twice — a
// layout-at-a-time RunContext loop against the pipelined scheduler with
// coalesced cross-layout prediction — and cross-checks that both produce
// byte-identical results. The scorer is an untrained predictor: prediction
// cost and batching behavior are architecture properties, not weight
// properties, and skipping training keeps the bench inside CI budgets.
func RunPipelineBench(o Options) (PipelineBench, error) {
	ls := layout.Cells()
	if o.Fast {
		ls = ls[:6]
	}
	cfg := o.flowConfig()

	workers := o.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	out := PipelineBench{
		Layouts:    len(ls),
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, l := range ls {
		out.Cells = append(out.Cells, l.Name)
	}
	out.Constrained = out.GOMAXPROCS == 1
	if out.Constrained {
		out.Warning = fmt.Sprintf("GOMAXPROCS=1 (numcpu=%d): stages cannot physically overlap, so pipeline_sec measures batching amortization plus scheduling overhead, not stage overlap", out.NumCPU)
		o.logf("pipebench: WARNING: %s\n", out.Warning)
	}

	pred := o.Predictor
	if pred == nil {
		var err error
		pred, err = model.New(model.TinyConfig())
		if err != nil {
			return out, err
		}
	}

	// Serial reference: stage-at-a-time, one scorer invocation per layout.
	counter := &countingScorer{inner: pred}
	serialFlow := core.NewFlow(counter, cfg)
	ref := make([]core.Result, len(ls))
	start := time.Now()
	for i, l := range ls {
		r, err := serialFlow.Run(l)
		if err != nil {
			return out, fmt.Errorf("pipebench: serial %s: %w", l.Name, err)
		}
		ref[i] = r
	}
	out.SerialSec = time.Since(start).Seconds()
	out.SerialPredictCalls = counter.calls

	pipeFlow := core.NewFlow(pred, cfg)
	start = time.Now()
	results, stats := pipeFlow.RunPipeline(ls, core.PipelineOptions{Workers: workers})
	out.PipelineSec = time.Since(start).Seconds()

	out.Chunk = stats.Chunk
	out.Workers = stats.Workers
	out.PipelinePredictCalls = stats.Coalesce.Flushes
	out.MaxBatch = stats.Coalesce.MaxBatch
	out.Images = stats.Images
	out.GenOccupancy = stats.Occupancy(stats.GenBusy)
	out.PredictOccupancy = stats.Occupancy(stats.PredictBusy)
	out.ScoreWaitOccupancy = stats.Occupancy(stats.ScoreWait)
	out.OptOccupancy = stats.Occupancy(stats.OptBusy)
	if out.PipelineSec > 0 {
		out.Speedup = out.SerialSec / out.PipelineSec
	}

	out.Identical = true
	for i := range ls {
		if results[i].Err != nil {
			return out, fmt.Errorf("pipebench: pipeline %s: %w", ls[i].Name, results[i].Err)
		}
		if !resultsEqual(ref[i], results[i].Res) {
			out.Identical = false
			o.logf("pipebench: MISMATCH on %s: pipelined result differs from serial\n", ls[i].Name)
		}
	}
	o.logf("pipebench: %d layouts, serial %.2fs (%d predict calls), pipeline %.2fs (%d flushes, max batch %d) @%d workers chunk %d (%.2fx), identical=%v\n",
		out.Layouts, out.SerialSec, out.SerialPredictCalls, out.PipelineSec,
		out.PipelinePredictCalls, out.MaxBatch, out.Workers, out.Chunk, out.Speedup, out.Identical)
	return out, nil
}

// resultsEqual compares two flow results for the bitwise-identity guarantee:
// same choice, same predictor scores, same masks and printed image, same
// deterministic model seconds.
func resultsEqual(a, b core.Result) bool {
	if a.Chosen.Key() != b.Chosen.Key() ||
		a.Candidates != b.Candidates || a.Attempts != b.Attempts ||
		a.Forced != b.Forced || a.Interrupted != b.Interrupted ||
		a.ScorerFallback != b.ScorerFallback ||
		a.Seconds != b.Seconds ||
		a.ILT.L2 != b.ILT.L2 || a.ILT.Iters != b.ILT.Iters ||
		a.ILT.EPE.Violations != b.ILT.EPE.Violations {
		return false
	}
	if !gridEqual(a.PredScores, b.PredScores) {
		return false
	}
	return gridEqual(a.ILT.M1.Data, b.ILT.M1.Data) &&
		gridEqual(a.ILT.M2.Data, b.ILT.M2.Data) &&
		gridEqual(a.ILT.Printed.Data, b.ILT.Printed.Data)
}

// WriteJSON writes the bench record to path.
func (b PipelineBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the human-readable summary.
func (b PipelineBench) Render(w io.Writer) {
	fmt.Fprintln(w, "Pipelined flow benchmark")
	fmt.Fprintf(w, "layouts %d  workers %d  chunk %d (GOMAXPROCS %d, numcpu %d)\n",
		b.Layouts, b.Workers, b.Chunk, b.GOMAXPROCS, b.NumCPU)
	fmt.Fprintf(w, "serial %.2fs (%d predict calls)  pipeline %.2fs (%d flushes, max batch %d, %d images)  speedup %.2fx\n",
		b.SerialSec, b.SerialPredictCalls, b.PipelineSec, b.PipelinePredictCalls,
		b.MaxBatch, b.Images, b.Speedup)
	fmt.Fprintf(w, "occupancy  gen %.2f  predict %.2f  score-wait %.2f  opt %.2f\n",
		b.GenOccupancy, b.PredictOccupancy, b.ScoreWaitOccupancy, b.OptOccupancy)
	fmt.Fprintf(w, "identical %v\n", b.Identical)
	if b.Constrained {
		fmt.Fprintln(w, "*** CONSTRAINED RUN: GOMAXPROCS=1 — stages cannot overlap; numbers show batching amortization and overhead only ***")
	}
}
