package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ldmo/internal/baseline"
	"ldmo/internal/core"
	"ldmo/internal/decomp"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/par"
	"ldmo/internal/sampling"
	"ldmo/internal/simclock"
)

// Fig1b holds the EPE-vs-iteration trajectories of several decompositions of
// one layout (the paper's motivating figure: trajectories cross, so early
// printability misranks candidates).
type Fig1b struct {
	Cell   string
	Keys   []string
	Curves [][]int // per decomposition, EPE violations per iteration
}

// RunFig1b optimizes the first several decomposition candidates of a
// candidate-rich cell with full-length ILT and records the traces.
func RunFig1b(o Options) (Fig1b, error) {
	cell, err := layout.Cell("AOI211_X1")
	if err != nil {
		return Fig1b{}, err
	}
	gen := decomp.NewGenerator()
	cands, err := gen.Generate(cell)
	if err != nil {
		return Fig1b{}, err
	}
	if len(cands) > 3 {
		cands = cands[:3]
	}
	cfg := o.iltConfig()
	cfg.AbortOnViolation = false
	opt, err := ilt.NewOptimizer(cell, cfg)
	if err != nil {
		return Fig1b{}, err
	}
	out := Fig1b{Cell: cell.Name}
	for i, d := range cands {
		r := opt.Run(d)
		curve := make([]int, len(r.Trace))
		for j, s := range r.Trace {
			curve[j] = s.EPEViolations
		}
		out.Keys = append(out.Keys, fmt.Sprintf("DECMP#%d %s", i+1, d.Key()))
		out.Curves = append(out.Curves, curve)
		o.logf("fig1b %s: final EPE %d\n", d.Key(), r.EPE.Violations)
	}
	return out, nil
}

// Render prints the trajectories as CSV-ish series plus a terminal sketch.
func (f Fig1b) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 1(b): EPE convergence of decompositions of %s\n", f.Cell)
	fmt.Fprint(w, "iter")
	for _, k := range f.Keys {
		fmt.Fprintf(w, ",%s", k)
	}
	fmt.Fprintln(w)
	maxLen := 0
	for _, c := range f.Curves {
		if len(c) > maxLen {
			maxLen = len(c)
		}
	}
	for it := 0; it < maxLen; it++ {
		fmt.Fprintf(w, "%d", it+1)
		for _, c := range f.Curves {
			if it < len(c) {
				fmt.Fprintf(w, ",%d", c[it])
			} else {
				fmt.Fprint(w, ",")
			}
		}
		fmt.Fprintln(w)
	}
}

// Fig1c is the runtime breakdown of the ICCAD'17-style unified flow.
type Fig1c struct {
	DSSeconds, MOSeconds float64
}

// DSFraction returns the decomposition-selection share (paper: 59.1%).
func (f Fig1c) DSFraction() float64 {
	total := f.DSSeconds + f.MOSeconds
	if total == 0 {
		return 0
	}
	return f.DSSeconds / total
}

// RunFig1c accumulates the DS/MO split of the unified greedy flow over the
// cell library. Cells fan out over the worker pool; the split is summed in
// cell order afterwards, so the totals are bit-identical to the serial sweep.
func RunFig1c(o Options) (Fig1c, error) {
	var out Fig1c
	iltCfg := o.iltConfig()
	gc := baseline.DefaultGreedyConfig()
	cells := layout.Cells()
	type split struct {
		ds, mo float64
		err    error
	}
	pool := par.NewPool(o.Workers)
	results := par.MapSlice(pool, len(cells), func(_, i int) split {
		r, _, err := baseline.UnifiedGreedy(cells[i], iltCfg, gc, simclock.DefaultModel())
		if err != nil {
			return split{err: fmt.Errorf("fig1c/%s: %w", cells[i].Name, err)}
		}
		return split{ds: r.DSSeconds, mo: r.MOSeconds}
	})
	for _, r := range results {
		if r.err != nil {
			return out, r.err
		}
		out.DSSeconds += r.ds
		out.MOSeconds += r.mo
	}
	return out, nil
}

// Render prints the percentage split like the paper's pie chart.
func (f Fig1c) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 1(c): runtime breakdown of the unified greedy flow [10]\n")
	fmt.Fprintf(w, "DS %6.1f%%  (%.1fs)\n", 100*f.DSFraction(), f.DSSeconds)
	fmt.Fprintf(w, "MO %6.1f%%  (%.1fs)\n", 100*(1-f.DSFraction()), f.MOSeconds)
}

// Fig7Entry compares our flow against the ICCAD'17-style flow on one of the
// three cells the paper pictures.
type Fig7Entry struct {
	Cell      string
	OursEPE   int
	ICCADEPE  int
	OursFiles []string // written PGM images (target, masks, print)
}

// Fig7 is the printed-image comparison experiment.
type Fig7 struct {
	Entries []Fig7Entry
	Dir     string
}

// RunFig7 optimizes the three Fig. 7 cells with both flows and dumps
// grayscale PGM images under dir (created when missing; empty dir skips
// image output).
func RunFig7(pred *model.Predictor, o Options, dir string) (Fig7, error) {
	out := Fig7{Dir: dir}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return out, err
		}
	}
	iltCfg := o.iltConfig()
	flow := core.NewFlow(scorerOf(pred), o.flowConfig())
	gc := baseline.DefaultGreedyConfig()
	for _, name := range []string{"AOI211_X1", "NAND3_X2", "BUF_X1"} {
		cell, err := layout.Cell(name)
		if err != nil {
			return out, err
		}
		ours, err := flow.Run(cell)
		if err != nil {
			return out, fmt.Errorf("fig7/%s: %w", name, err)
		}
		iccad, _, err := baseline.UnifiedGreedy(cell, iltCfg, gc, simclock.DefaultModel())
		if err != nil {
			return out, fmt.Errorf("fig7/%s: %w", name, err)
		}
		e := Fig7Entry{Cell: name, OursEPE: ours.ILT.EPE.Violations, ICCADEPE: iccad.ILT.EPE.Violations}
		if dir != "" {
			res := o.iltConfig().Litho.Resolution
			files := map[string]interface {
				SavePGM(string, float64, float64) error
			}{
				"target":      cell.Rasterize(res),
				"ours_print":  ours.ILT.Printed,
				"ours_m1":     ours.ILT.M1,
				"ours_m2":     ours.ILT.M2,
				"iccad_print": iccad.ILT.Printed,
			}
			for tag, img := range files {
				path := filepath.Join(dir, fmt.Sprintf("%s_%s.pgm", strings.ToLower(name), tag))
				if err := img.SavePGM(path, 0, 1); err != nil {
					return out, err
				}
				e.OursFiles = append(e.OursFiles, path)
			}
		}
		out.Entries = append(out.Entries, e)
		o.logf("fig7 %-10s ours EPE=%d  iccad17 EPE=%d\n", name, e.OursEPE, e.ICCADEPE)
	}
	return out, nil
}

// Render prints the per-cell comparison.
func (f Fig7) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 7: printed-image comparison vs ICCAD'17 [10]")
	fmt.Fprintf(w, "%-12s %12s %12s\n", "cell", "ICCAD'17 EPE", "Ours EPE")
	for _, e := range f.Entries {
		fmt.Fprintf(w, "%-12s %12d %12d\n", e.Cell, e.ICCADEPE, e.OursEPE)
	}
	if f.Dir != "" {
		fmt.Fprintf(w, "images written under %s\n", f.Dir)
	}
}

// Fig8 compares the paper's sampling strategy against random sampling at
// equal labeling budget.
type Fig8 struct {
	// Average EPE violations of flows driven by each predictor over the
	// cell library.
	OursEPE, RandomEPE float64
	// Wall-clock seconds spent building each training set + training.
	OursBuildSec, RandomBuildSec float64
	// Dataset sizes (equalized).
	Samples int
}

// EPERatio returns random/ours (paper: about 2x).
func (f Fig8) EPERatio() float64 {
	if f.OursEPE == 0 {
		return 0
	}
	return f.RandomEPE / f.OursEPE
}

// RuntimeRatio returns the training-pipeline wall ratio (paper: about 1x).
func (f Fig8) RuntimeRatio() float64 {
	if f.OursBuildSec == 0 {
		return 0
	}
	return f.RandomBuildSec / f.OursBuildSec
}

// RunFig8 builds both training sets from the same pool, trains two identical
// architectures, and evaluates both flows over the cell library.
func RunFig8(o Options) (Fig8, error) {
	pool, err := o.Pool()
	if err != nil {
		return Fig8{}, err
	}
	sc := o.samplingConfig()
	tc := o.trainConfig()

	start := time.Now()
	selected, err := sampling.SelectLayouts(pool, sc)
	if err != nil {
		return Fig8{}, err
	}
	dsOurs, _, err := sampling.BuildDataset(selected, sc, o.Log)
	if err != nil {
		return Fig8{}, err
	}
	predOurs, err := model.New(model.TinyConfig())
	if err != nil {
		return Fig8{}, err
	}
	if _, err := predOurs.Train(dsOurs.Augmented(), tc); err != nil {
		return Fig8{}, err
	}
	oursBuild := time.Since(start).Seconds()

	start = time.Now()
	dsRand, _, err := sampling.BuildRandomDataset(pool, dsOurs.Len(), sc, o.Log)
	if err != nil {
		return Fig8{}, err
	}
	predRand, err := model.New(model.TinyConfig())
	if err != nil {
		return Fig8{}, err
	}
	if _, err := predRand.Train(dsRand.Augmented(), tc); err != nil {
		return Fig8{}, err
	}
	randBuild := time.Since(start).Seconds()

	out := Fig8{OursBuildSec: oursBuild, RandomBuildSec: randBuild, Samples: dsOurs.Len()}
	evalFlow := func(pred *model.Predictor) (float64, error) {
		flow := core.NewFlow(pred, o.flowConfig())
		total := 0.0
		cells := layout.Cells()
		for _, cell := range cells {
			r, err := flow.Run(cell)
			if err != nil {
				return 0, err
			}
			total += float64(r.ILT.EPE.Violations)
		}
		return total / float64(len(cells)), nil
	}
	if out.OursEPE, err = evalFlow(predOurs); err != nil {
		return out, err
	}
	if out.RandomEPE, err = evalFlow(predRand); err != nil {
		return out, err
	}
	o.logf("fig8 ours EPE=%.2f random EPE=%.2f (ratio %.2f)\n",
		out.OursEPE, out.RandomEPE, out.EPERatio())
	return out, nil
}

// Render prints the two-bar comparison of the paper's Fig. 8.
func (f Fig8) Render(w io.Writer) {
	fmt.Fprintln(w, "Fig. 8: sampling strategy comparison (equal labeling budget)")
	fmt.Fprintf(w, "%-18s %10s %12s\n", "strategy", "avg EPE#", "build time(s)")
	fmt.Fprintf(w, "%-18s %10.2f %12.1f\n", "Ours (SIFT+3wise)", f.OursEPE, f.OursBuildSec)
	fmt.Fprintf(w, "%-18s %10.2f %12.1f\n", "Random sampling", f.RandomEPE, f.RandomBuildSec)
	fmt.Fprintf(w, "EPE ratio (random/ours): %.2f   runtime ratio: %.2f   samples: %d\n",
		f.EPERatio(), f.RuntimeRatio(), f.Samples)
}
