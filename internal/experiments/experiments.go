// Package experiments regenerates every table and figure of the paper's
// evaluation section on the reproduced system:
//
//   - Table I  — EPE violations and runtime of four flows over 13 cells;
//   - Fig. 1b  — EPE convergence trajectories of different decompositions;
//   - Fig. 1c  — DS/MO runtime breakdown of the ICCAD'17-style flow;
//   - Fig. 7   — printed-image comparison on BUF_X1 / NAND3_X2 / AOI211_X1;
//   - Fig. 8   — paper sampling strategy vs random sampling.
//
// Absolute numbers differ from the paper (the substrate is a synthetic
// simulator, not the authors' testbed); the comparisons reproduce the shape:
// who wins, by roughly what factor, and where the runtime goes. Runtimes are
// deterministic model seconds from package simclock; wall-clock is reported
// alongside where it matters.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"ldmo/internal/baseline"
	"ldmo/internal/core"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/par"
	"ldmo/internal/sampling"
	"ldmo/internal/simclock"
)

// Options configures a harness run.
type Options struct {
	// Fast coarsens the lithography raster (8nm pixels) and shrinks the
	// training pipeline so a full harness pass finishes in CI time. The
	// default (false) uses the 4nm raster of the headline experiments.
	Fast bool
	// Seed drives every stochastic stage.
	Seed int64
	// Log receives progress lines when non-nil.
	Log io.Writer
	// PoolSize is the generated-layout dataset size standing in for the
	// paper's 8000 designs (0 = default).
	PoolSize int
	// Predictor, when non-nil, is used instead of training one ad hoc.
	Predictor *model.Predictor
	// Workers bounds the harness's parallel fan-outs (candidate ILT,
	// labeling, per-cell sweeps); 0 selects par.Workers(), 1 forces every
	// path serial. All outputs are bit-identical at any worker count.
	Workers int
	// Ctx, when non-nil, bounds the run: training observes it at batch
	// granularity, labeling stops claiming layouts once it is done, and the
	// cell sweeps abandon remaining cells. Nil means context.Background().
	Ctx context.Context
}

// context returns the run's context, tolerating the nil default.
func (o Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// logf writes progress if a log sink is configured.
func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format, args...)
	}
}

func (o Options) poolSize() int {
	if o.PoolSize > 0 {
		return o.PoolSize
	}
	if o.Fast {
		return 100
	}
	return 240
}

// iltConfig returns the mask-optimization settings of the run.
func (o Options) iltConfig() ilt.Config {
	cfg := ilt.DefaultConfig()
	if o.Fast {
		cfg.Litho.Resolution = 8
	}
	return cfg
}

// samplingConfig returns the training pipeline settings. Labels are
// produced on the same raster the flow later runs on (8nm in fast mode,
// 4nm otherwise): training on mismatched-resolution labels measurably hurts
// selection on the hardest cells.
func (o Options) samplingConfig() sampling.Config {
	sc := sampling.DefaultConfig()
	sc.Seed = o.Seed
	sc.Workers = o.Workers
	sc.ILT = o.iltConfig()
	sc.ILT.AbortOnViolation = false // labels need full trajectories
	if o.Fast {
		sc.Clusters = 16
		sc.PerCluster = 5
	} else {
		sc.Clusters = 24
		sc.PerCluster = 6
	}
	return sc
}

func (o Options) trainConfig() model.TrainConfig {
	tc := model.DefaultTrainConfig()
	tc.Seed = o.Seed
	tc.Epochs = 40
	if o.Fast {
		tc.Epochs = 30
	}
	tc.DecayAt = tc.Epochs * 2 / 3
	return tc
}

func (o Options) flowConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.ILT = o.iltConfig()
	cfg.Seed = o.Seed
	cfg.Workers = o.Workers
	return cfg
}

// clockModelOrDefault returns the cost model for deterministic runtimes.
func (o Options) clockModelOrDefault() simclock.Model { return simclock.DefaultModel() }

// Pool generates the layout dataset for the run. Pool layouts carry at
// least four contacts: smaller ones have at most two decomposition
// candidates and teach the predictor nothing.
func (o Options) Pool() ([]layout.Layout, error) {
	gp := layout.DefaultGenParams()
	gp.MinContacts = 4
	return layout.GenerateSet(o.Seed, o.poolSize(), gp)
}

// TrainPredictor builds the training set with the paper's sampling pipeline
// and fits the reduced-architecture predictor. The trained predictor is
// cached on the Options value is NOT modified; callers keep the return.
func TrainPredictor(o Options) (*model.Predictor, error) {
	if o.Predictor != nil {
		return o.Predictor, nil
	}
	pool, err := o.Pool()
	if err != nil {
		return nil, err
	}
	sc := o.samplingConfig()
	o.logf("selecting representative layouts from pool of %d...\n", len(pool))
	selected, err := sampling.SelectLayouts(pool, sc)
	if err != nil {
		return nil, err
	}
	o.logf("labeling %d layouts with full ILT...\n", len(selected))
	ds, _, err := sampling.BuildDatasetCtx(o.context(), selected, sc, o.Log)
	if err != nil {
		return nil, err
	}
	pred, err := model.New(model.TinyConfig())
	if err != nil {
		return nil, err
	}
	aug := ds.Augmented()
	o.logf("training predictor on %d samples (%d augmented)...\n", ds.Len(), aug.Len())
	if _, err := pred.TrainCtx(o.context(), aug, o.trainConfig()); err != nil {
		return nil, err
	}
	return pred, nil
}

// FlowNames are the Table I columns in paper order.
var FlowNames = [4]string{"[16]+[6]", "[17]+[6]", "[10]", "Ours"}

// scorerOf converts a possibly-nil predictor into a flow scorer without
// producing a non-nil interface wrapping a nil pointer.
func scorerOf(pred *model.Predictor) core.Scorer {
	if pred == nil {
		return nil
	}
	return pred
}

// Table1Row is one benchmark circuit's results across the four flows.
type Table1Row struct {
	ID   int
	Cell string
	EPE  [4]int
	Time [4]float64 // deterministic model seconds
	Wall [4]float64 // measured wall seconds
}

// Table1 is the full reproduction of the paper's Table I.
type Table1 struct {
	Rows    []Table1Row
	AvgEPE  [4]float64
	AvgTime [4]float64
	// Ratio* are normalized to the "Ours" column like the paper's last row.
	RatioEPE  [4]float64
	RatioTime [4]float64
}

// RunTable1 executes all four flows over the 13-cell library. Within each
// cell the four flows run concurrently (they share nothing but the mutex-
// guarded clock model constructors; only the "Ours" column touches the
// predictor); columns land in fixed slots, so the table is deterministic.
func RunTable1(pred *model.Predictor, o Options) (Table1, error) {
	cells := layout.Cells()
	iltCfg := o.iltConfig()
	flowCfg := o.flowConfig()
	gc := baseline.DefaultGreedyConfig()
	flow := core.NewFlow(scorerOf(pred), flowCfg)
	pool := par.NewPool(o.Workers)

	var t Table1
	for i, cell := range cells {
		if err := o.context().Err(); err != nil {
			return t, fmt.Errorf("experiments: table1 interrupted after %d of %d cells: %w",
				len(t.Rows), len(cells), err)
		}
		row := Table1Row{ID: i + 1, Cell: cell.Name}

		flows := [4]func() (int, float64, error){
			func() (int, float64, error) {
				r, err := baseline.TwoStage("spacing", cell, iltCfg, simclock.DefaultModel())
				return r.ILT.EPE.Violations, r.Seconds, err
			},
			func() (int, float64, error) {
				r, err := baseline.TwoStage("relaxation", cell, iltCfg, simclock.DefaultModel())
				return r.ILT.EPE.Violations, r.Seconds, err
			},
			func() (int, float64, error) {
				r, _, err := baseline.UnifiedGreedy(cell, iltCfg, gc, simclock.DefaultModel())
				return r.ILT.EPE.Violations, r.Seconds, err
			},
			func() (int, float64, error) {
				r, err := flow.Run(cell)
				return r.ILT.EPE.Violations, r.Seconds, err
			},
		}
		var errs [4]error
		pool.Map(len(flows), func(_, col int) {
			start := time.Now()
			epeN, sec, err := flows[col]()
			if err != nil {
				errs[col] = fmt.Errorf("%s/%s: %w", FlowNames[col], cell.Name, err)
				return
			}
			row.EPE[col] = epeN
			row.Time[col] = sec
			row.Wall[col] = time.Since(start).Seconds()
		})
		for _, err := range errs {
			if err != nil {
				return t, err
			}
		}
		t.Rows = append(t.Rows, row)
		o.logf("table1 %2d/%d %-10s EPE %v\n", i+1, len(cells), cell.Name, row.EPE)
	}
	n := float64(len(t.Rows))
	for _, row := range t.Rows {
		for c := 0; c < 4; c++ {
			t.AvgEPE[c] += float64(row.EPE[c]) / n
			t.AvgTime[c] += row.Time[c] / n
		}
	}
	for c := 0; c < 4; c++ {
		if t.AvgEPE[3] > 0 {
			t.RatioEPE[c] = t.AvgEPE[c] / t.AvgEPE[3]
		}
		if t.AvgTime[3] > 0 {
			t.RatioTime[c] = t.AvgTime[c] / t.AvgTime[3]
		}
	}
	return t, nil
}

// Render prints the table in the paper's layout.
func (t Table1) Render(w io.Writer) {
	fmt.Fprintf(w, "TABLE I: Comparison with previous frameworks\n")
	fmt.Fprintf(w, "%-4s", "ID")
	for _, f := range FlowNames {
		fmt.Fprintf(w, " | %-9s %9s", f+" EPE#", "Time(s)")
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-4d", r.ID)
		for c := 0; c < 4; c++ {
			fmt.Fprintf(w, " | %-9d %9.2f", r.EPE[c], r.Time[c])
		}
		fmt.Fprintf(w, "   (%s)\n", r.Cell)
	}
	fmt.Fprintf(w, "%-4s", "Ave.")
	for c := 0; c < 4; c++ {
		fmt.Fprintf(w, " | %-9.2f %9.2f", t.AvgEPE[c], t.AvgTime[c])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-4s", "Rat.")
	for c := 0; c < 4; c++ {
		fmt.Fprintf(w, " | %-9.2f %9.2f", t.RatioEPE[c], t.RatioTime[c])
	}
	fmt.Fprintln(w)
}
