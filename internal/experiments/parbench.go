package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"ldmo/internal/core"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/par"
)

// ParallelBench is the machine-readable record of the serial-vs-parallel
// OracleSelect comparison that cmd/ldmo-bench writes to BENCH_parallel.json.
type ParallelBench struct {
	// Cell is the benchmark layout; Candidates its decomposition count.
	Cell       string `json:"cell"`
	Candidates int    `json:"candidates"`
	// Workers is the parallel lane count measured against the serial run;
	// GOMAXPROCS records how much hardware parallelism the Go runtime will
	// actually schedule and NumCPU how many cores the host reports (speedup
	// is bounded by the min of the three).
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
	// Constrained flags a run taken with GOMAXPROCS=1: the speedup number
	// then measures scheduling overhead, not parallelism, and must not be
	// read as the flow's parallel scaling. Warning carries that caveat as
	// text inside the record itself, so a JSON consumer that never looks at
	// the boolean cannot misquote the numbers silently.
	Constrained bool   `json:"constrained"`
	Warning     string `json:"warning,omitempty"`
	// SerialSec and ParallelSec are wall-clock seconds for the full
	// OracleSelect sweep at 1 and Workers lanes; Speedup = serial/parallel.
	SerialSec   float64 `json:"serial_sec"`
	ParallelSec float64 `json:"parallel_sec"`
	Speedup     float64 `json:"speedup"`
	// Identical asserts the parallel run selected the same decomposition
	// with byte-identical masks and printed image — the determinism
	// guarantee, checked on every bench run.
	Identical bool `json:"identical"`
}

// RunParallelBench measures OracleSelect — full ILT on every decomposition
// candidate of a candidate-rich cell — serially and with the worker pool,
// and cross-checks that both selections are byte-identical.
func RunParallelBench(o Options) (ParallelBench, error) {
	cell, err := layout.Cell("AOI211_X1")
	if err != nil {
		return ParallelBench{}, err
	}
	cfg := o.flowConfig()
	w := model.DefaultScoreWeights()

	workers := o.Workers
	if workers <= 0 {
		workers = par.Workers()
	}
	out := ParallelBench{
		Cell:       cell.Name,
		Workers:    workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	out.Constrained = out.GOMAXPROCS == 1
	if out.Constrained {
		out.Warning = fmt.Sprintf("GOMAXPROCS=1 (numcpu=%d): every goroutine runs on one core, so parallel timings measure scheduling overhead only, not the flow's parallel scaling", out.NumCPU)
		o.logf("parbench: WARNING: %s\n", out.Warning)
	}

	cfg.Workers = 1
	start := time.Now()
	dSerial, rSerial, err := core.OracleSelect(cell, cfg, w.Alpha, w.Beta, w.Gamma)
	if err != nil {
		return out, err
	}
	out.SerialSec = time.Since(start).Seconds()

	cfg.Workers = workers
	start = time.Now()
	dPar, rPar, err := core.OracleSelect(cell, cfg, w.Alpha, w.Beta, w.Gamma)
	if err != nil {
		return out, err
	}
	out.ParallelSec = time.Since(start).Seconds()

	if out.ParallelSec > 0 {
		out.Speedup = out.SerialSec / out.ParallelSec
	}
	flow := core.NewFlow(nil, cfg)
	if cands, _, err := flow.RankCandidates(cell); err == nil {
		out.Candidates = len(cands)
	}
	out.Identical = dSerial.Key() == dPar.Key() &&
		rSerial.L2 == rPar.L2 &&
		rSerial.EPE.Violations == rPar.EPE.Violations &&
		gridEqual(rSerial.M1.Data, rPar.M1.Data) &&
		gridEqual(rSerial.M2.Data, rPar.M2.Data) &&
		gridEqual(rSerial.Printed.Data, rPar.Printed.Data)
	o.logf("parbench %s: %d candidates, serial %.2fs, parallel %.2fs @%d workers (%.2fx), identical=%v\n",
		out.Cell, out.Candidates, out.SerialSec, out.ParallelSec, out.Workers, out.Speedup, out.Identical)
	return out, nil
}

// gridEqual compares two rasters for exact (bitwise) equality.
func gridEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteJSON writes the bench record to path.
func (b ParallelBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Render prints the human-readable summary.
func (b ParallelBench) Render(w io.Writer) {
	fmt.Fprintln(w, "Parallel OracleSelect benchmark")
	fmt.Fprintf(w, "cell %s  candidates %d  workers %d (GOMAXPROCS %d, numcpu %d)\n",
		b.Cell, b.Candidates, b.Workers, b.GOMAXPROCS, b.NumCPU)
	fmt.Fprintf(w, "serial %.2fs  parallel %.2fs  speedup %.2fx  identical %v\n",
		b.SerialSec, b.ParallelSec, b.Speedup, b.Identical)
	if b.Constrained {
		fmt.Fprintln(w, "*** CONSTRAINED RUN: GOMAXPROCS=1 — speedup reflects scheduling overhead, not parallel scaling ***")
	}
}
