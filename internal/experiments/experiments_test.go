package experiments

import (
	"strings"
	"testing"

	"ldmo/internal/model"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.poolSize() != 240 {
		t.Fatalf("default pool = %d", o.poolSize())
	}
	o.Fast = true
	if o.poolSize() != 100 {
		t.Fatalf("fast pool = %d", o.poolSize())
	}
	o.PoolSize = 7
	if o.poolSize() != 7 {
		t.Fatalf("explicit pool = %d", o.poolSize())
	}
	if o.iltConfig().Litho.Resolution != 8 {
		t.Fatal("fast mode must coarsen the raster")
	}
	o.Fast = false
	if o.iltConfig().Litho.Resolution != 4 {
		t.Fatal("default raster must be 4nm")
	}
}

func TestPoolGeneration(t *testing.T) {
	o := Options{Fast: true, Seed: 3, PoolSize: 10}
	pool, err := o.Pool()
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 10 {
		t.Fatalf("pool size %d", len(pool))
	}
	for _, l := range pool {
		if len(l.Patterns) < 4 {
			t.Fatalf("pool layout %s has %d patterns, want >= 4", l.Name, len(l.Patterns))
		}
	}
}

func TestTrainPredictorUsesProvided(t *testing.T) {
	pred, err := model.New(model.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := TrainPredictor(Options{Predictor: pred})
	if err != nil {
		t.Fatal(err)
	}
	if got != pred {
		t.Fatal("provided predictor not reused")
	}
}

func TestTable1Render(t *testing.T) {
	tab := Table1{
		Rows: []Table1Row{{ID: 1, Cell: "BUF_X1", EPE: [4]int{3, 2, 1, 0},
			Time: [4]float64{40, 41, 80, 10}}},
		AvgEPE:    [4]float64{3, 2, 1, 0.5},
		AvgTime:   [4]float64{40, 41, 80, 10},
		RatioEPE:  [4]float64{6, 4, 2, 1},
		RatioTime: [4]float64{4, 4.1, 8, 1},
	}
	var b strings.Builder
	tab.Render(&b)
	out := b.String()
	for _, want := range []string{"TABLE I", "BUF_X1", "[16]+[6]", "Ours", "Ave.", "8.00"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig1bRunAndRender(t *testing.T) {
	f, err := RunFig1b(Options{Fast: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Curves) < 2 {
		t.Fatalf("only %d curves", len(f.Curves))
	}
	for i, c := range f.Curves {
		if len(c) < 10 {
			t.Fatalf("curve %d has %d points", i, len(c))
		}
	}
	var b strings.Builder
	f.Render(&b)
	if !strings.Contains(b.String(), "DECMP#1") {
		t.Fatal("render missing series name")
	}
}

func TestFig1cFraction(t *testing.T) {
	f := Fig1c{DSSeconds: 59.1, MOSeconds: 40.9}
	if frac := f.DSFraction(); frac < 0.59 || frac > 0.592 {
		t.Fatalf("fraction = %g", frac)
	}
	if (Fig1c{}).DSFraction() != 0 {
		t.Fatal("empty fraction must be 0")
	}
	var b strings.Builder
	f.Render(&b)
	if !strings.Contains(b.String(), "DS") || !strings.Contains(b.String(), "MO") {
		t.Fatal("render incomplete")
	}
}

func TestFig7Render(t *testing.T) {
	f := Fig7{Entries: []Fig7Entry{{Cell: "BUF_X1", OursEPE: 0, ICCADEPE: 2}}}
	var b strings.Builder
	f.Render(&b)
	if !strings.Contains(b.String(), "BUF_X1") {
		t.Fatal("render missing cell")
	}
}

func TestFig8Ratios(t *testing.T) {
	f := Fig8{OursEPE: 1, RandomEPE: 2, OursBuildSec: 10, RandomBuildSec: 11}
	if f.EPERatio() != 2 {
		t.Fatalf("epe ratio = %g", f.EPERatio())
	}
	if f.RuntimeRatio() != 1.1 {
		t.Fatalf("runtime ratio = %g", f.RuntimeRatio())
	}
	zero := Fig8{}
	if zero.EPERatio() != 0 || zero.RuntimeRatio() != 0 {
		t.Fatal("zero ratios must be 0")
	}
	var b strings.Builder
	f.Render(&b)
	if !strings.Contains(b.String(), "Random sampling") {
		t.Fatal("render incomplete")
	}
}

func TestScorerOfNil(t *testing.T) {
	if scorerOf(nil) != nil {
		t.Fatal("nil predictor must give nil scorer (typed-nil interface bug)")
	}
	pred, err := model.New(model.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if scorerOf(pred) == nil {
		t.Fatal("non-nil predictor must give scorer")
	}
}

func TestRunFig7NoImages(t *testing.T) {
	if testing.Short() {
		t.Skip("fig7 runs full flows")
	}
	f, err := RunFig7(nil, Options{Fast: true, Seed: 1}, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Entries) != 3 {
		t.Fatalf("entries = %d", len(f.Entries))
	}
	names := map[string]bool{}
	for _, e := range f.Entries {
		names[e.Cell] = true
	}
	for _, want := range []string{"AOI211_X1", "NAND3_X2", "BUF_X1"} {
		if !names[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestAblationRender(t *testing.T) {
	a := Ablation{
		Policies: []string{"oracle", "cnn", "blind", "spacing"},
		AvgEPE:   []float64{0.5, 0.7, 2.2, 1.4},
		Cells:    13,
	}
	var b strings.Builder
	a.Render(&b)
	for _, want := range []string{"oracle", "cnn", "blind", "spacing", "13"} {
		if !strings.Contains(b.String(), want) {
			t.Fatalf("ablation render missing %q", want)
		}
	}
}
