package ilt

import (
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/grid"
	"ldmo/internal/simclock"
)

// fieldInit is a test Initializer that hands out fixed fields (an oracle
// warm start when fed the optimized masks of a previous run).
type fieldInit struct {
	w1, w2 []float64
	ok     bool
	calls  int
}

func (f *fieldInit) WarmMasksInto(c1, c2 *grid.Grid, w1, w2 []float64) bool {
	f.calls++
	if !f.ok {
		return false
	}
	copy(w1, f.w1)
	copy(w2, f.w2)
	return true
}

// coldRun optimizes the first candidate of the two-row layout without any
// warm-start machinery and returns the layout, candidate, and result.
func coldRun(t *testing.T, cfg Config) (Result, decomp.Decomposition) {
	t.Helper()
	l := twoRowLayout()
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return opt.Run(cands[0]), cands[0]
}

func TestWarmInitSeedsRun(t *testing.T) {
	t.Setenv(EnvWarm, "on")
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	cold, d := coldRun(t, cfg)

	init := &fieldInit{w1: cold.M1.Data, w2: cold.M2.Data, ok: true}
	warmCfg := cfg
	warmCfg.Init = init
	opt, err := NewOptimizer(twoRowLayout(), warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := opt.Run(d)
	if init.calls != 1 {
		t.Fatalf("initializer called %d times, want 1", init.calls)
	}
	if !warm.WarmStart {
		t.Fatal("result not tagged WarmStart")
	}
	if cold.WarmStart {
		t.Fatal("cold result tagged WarmStart")
	}
	// Seeded with the cold run's optimum, iteration 1 must already be close
	// to the cold final loss — below the cold run's first iteration.
	if warm.Trace[0].L2 >= cold.Trace[0].L2 {
		t.Fatalf("warm first-iteration L2 %g not below cold first-iteration L2 %g",
			warm.Trace[0].L2, cold.Trace[0].L2)
	}
	// The InitClip re-projection pulls saturated pixels back into
	// [InitClip, 1-InitClip], so the seeded loss sits somewhat above the
	// cold final loss — but must stay in its neighborhood, nowhere near the
	// cold start.
	if warm.Trace[0].L2 > cold.L2*1.35 {
		t.Fatalf("warm first-iteration L2 %g far from cold final L2 %g", warm.Trace[0].L2, cold.L2)
	}
}

func TestWarmGateOffBitwiseIdentical(t *testing.T) {
	t.Setenv(EnvWarm, "off")
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	cold, d := coldRun(t, cfg)

	// A fully warm-configured optimizer under LDMO_WARMSTART=off must not
	// call the initializer and must reproduce the cold run bit for bit.
	init := &fieldInit{w1: cold.M1.Data, w2: cold.M2.Data, ok: true}
	warmCfg := cfg
	warmCfg.Init = init
	warmCfg.ConvergeWindow = DefaultConvergeWindow
	opt, err := NewOptimizer(twoRowLayout(), warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.Run(d)
	if init.calls != 0 {
		t.Fatalf("initializer called %d times under %s=off", init.calls, EnvWarm)
	}
	if r.WarmStart || r.Converged {
		t.Fatalf("off-path result tagged WarmStart=%v Converged=%v", r.WarmStart, r.Converged)
	}
	if r.L2 != cold.L2 || r.Iters != cold.Iters || r.EPE.Violations != cold.EPE.Violations {
		t.Fatalf("off-path diverged: L2 %g vs %g, iters %d vs %d", r.L2, cold.L2, r.Iters, cold.Iters)
	}
	for i := range r.M1.Data {
		if r.M1.Data[i] != cold.M1.Data[i] || r.M2.Data[i] != cold.M2.Data[i] {
			t.Fatalf("off-path masks differ at %d", i)
		}
	}
}

func TestWarmInitRejectedFallsBackCold(t *testing.T) {
	t.Setenv(EnvWarm, "on")
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	cold, d := coldRun(t, cfg)

	warmCfg := cfg
	warmCfg.Init = &fieldInit{ok: false}
	opt, err := NewOptimizer(twoRowLayout(), warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.Run(d)
	if r.WarmStart {
		t.Fatal("rejected warm init still tagged WarmStart")
	}
	if r.L2 != cold.L2 || r.Iters != cold.Iters {
		t.Fatalf("rejected warm init diverged from cold: L2 %g vs %g", r.L2, cold.L2)
	}
}

func TestConvergeEarlyStop(t *testing.T) {
	t.Setenv(EnvWarm, "on")
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	cold, d := coldRun(t, cfg)

	warmCfg := cfg
	warmCfg.Init = &fieldInit{w1: cold.M1.Data, w2: cold.M2.Data, ok: true}
	warmCfg.ConvergeWindow = DefaultConvergeWindow
	opt, err := NewOptimizer(twoRowLayout(), warmCfg)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.Run(d)
	if !r.Converged {
		t.Fatalf("oracle-seeded run did not converge early (iters %d/%d)", r.Iters, cfg.Normalize().MaxIters)
	}
	if r.Iters >= cold.Iters {
		t.Fatalf("early stop saved nothing: %d iters vs cold %d", r.Iters, cold.Iters)
	}
	if r.ConvergeIter != r.Iters {
		t.Fatalf("ConvergeIter %d != Iters %d", r.ConvergeIter, r.Iters)
	}
	if len(r.Trace) != r.Iters+1 {
		t.Fatalf("trace length %d for %d iters", len(r.Trace), r.Iters)
	}
}

func TestConvergeEarlyStopSavesClock(t *testing.T) {
	t.Setenv(EnvWarm, "on")
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	l := twoRowLayout()
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	run := func(c Config) (Result, float64) {
		opt, err := NewOptimizer(l, c)
		if err != nil {
			t.Fatal(err)
		}
		clk := simclock.New(simclock.DefaultModel())
		opt.SetClock(clk)
		r := opt.Run(cands[0])
		return r, clk.Seconds()
	}
	cold, coldSec := run(cfg)

	warmCfg := cfg
	warmCfg.Init = &fieldInit{w1: cold.M1.Data, w2: cold.M2.Data, ok: true}
	warmCfg.ConvergeWindow = DefaultConvergeWindow
	warm, warmSec := run(warmCfg)
	if !warm.Converged {
		t.Fatal("warm run did not converge early")
	}
	if warmSec >= coldSec {
		t.Fatalf("warm run cost %.3f model-seconds, cold %.3f — early stop saved nothing", warmSec, coldSec)
	}
}
