// Package ilt implements the paper's mask-optimization engine (§III-C):
// gradient-descent inverse lithography over the two double-patterning masks,
// with the sigmoid mask/resist relaxations of Eq. 1-3, per-iteration
// printability traces, and the every-third-iteration print-violation check
// that sends the flow back to decomposition selection.
package ilt

import (
	"context"
	"fmt"

	"ldmo/internal/decomp"
	"ldmo/internal/epe"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
	"ldmo/internal/simclock"
)

// Config collects the optimizer settings. Zero values are replaced by the
// paper's constants via Normalize.
type Config struct {
	// MaxIters is the gradient-descent iteration budget (paper: 29).
	MaxIters int
	// CheckEvery is the print-violation check period (paper: 3).
	CheckEvery int
	// StepSize is the gradient-descent step on the unbounded parameter P.
	StepSize float64
	// InitClip keeps the initial mask away from the sigmoid's saturated
	// tails so gradients can move it; the rasterized binary decomposition
	// is clamped into [InitClip, 1-InitClip] before inversion.
	InitClip float64
	// AbortOnViolation stops the run as soon as the periodic check finds a
	// print violation (bridge / missing / spurious pattern). The flow then
	// falls back to the next decomposition candidate. When false the run
	// always uses the full budget — needed for forced best-effort runs.
	AbortOnViolation bool
	// CheckpointSpacing is the EPE checkpoint pitch in nm (paper-style 40).
	CheckpointSpacing int
	// Init, when non-nil, supplies a learned warm initial mask field per
	// decomposition instead of the raw rasterized decomposition. It is
	// honored only while WarmEnabled() (the LDMO_WARMSTART gate) holds; the
	// gate is sampled at NewOptimizer time.
	Init Initializer
	// WarmClip is the clamp applied to a warm initial field before sigmoid
	// inversion, replacing InitClip for warmed sessions only. InitClip
	// protects a binary cold raster from the sigmoid's dead tails, but it
	// also erases the saturation depth a converged continuous field carries
	// — re-projecting an optimum through [0.02, 0.98] replays the cold
	// trajectory almost exactly. A warm field therefore gets a much wider
	// band (default 0.005) so the surrogate's prediction survives
	// projection with its saturation intact while gradients still flow.
	WarmClip float64
	// ConvergeWindow enables convergence-aware early stop: at each
	// violation-check boundary the run halts once the snapshot is perfect
	// on every verdict metric (zero EPE and print violations — a warm start
	// frequently begins there), or once the relative L2 improvement over
	// the trailing ConvergeWindow iterations drops below ConvergeTol with
	// no print violations outstanding. Zero disables the early stop (full
	// budget, today's behavior); like Init it is gated behind
	// LDMO_WARMSTART.
	ConvergeWindow int
	ConvergeTol    float64
	// Litho is the process model.
	Litho litho.Params
	// Meter measures EPE.
	Meter epe.Meter
}

// DefaultConfig returns the paper's optimizer settings over the calibrated
// default process.
func DefaultConfig() Config {
	return Config{
		MaxIters:          29,
		CheckEvery:        3,
		StepSize:          2.0,
		InitClip:          0.02,
		WarmClip:          0.005,
		AbortOnViolation:  true,
		CheckpointSpacing: 40,
		Litho:             litho.DefaultParams(),
		Meter:             epe.NewMeter(),
	}
}

// Normalize fills unset fields with the defaults.
func (c Config) Normalize() Config {
	d := DefaultConfig()
	if c.MaxIters <= 0 {
		c.MaxIters = d.MaxIters
	}
	if c.CheckEvery <= 0 {
		c.CheckEvery = d.CheckEvery
	}
	if c.StepSize <= 0 {
		c.StepSize = d.StepSize
	}
	if c.InitClip <= 0 || c.InitClip >= 0.5 {
		c.InitClip = d.InitClip
	}
	if c.WarmClip <= 0 || c.WarmClip >= 0.5 {
		c.WarmClip = d.WarmClip
	}
	if c.CheckpointSpacing <= 0 {
		c.CheckpointSpacing = d.CheckpointSpacing
	}
	if c.ConvergeWindow > 0 && c.ConvergeTol <= 0 {
		c.ConvergeTol = DefaultConvergeTol
	}
	if c.Litho.Resolution == 0 {
		c.Litho = d.Litho
	}
	if c.Meter.SearchRange == 0 {
		c.Meter = d.Meter
	}
	return c
}

// IterStat is one row of the convergence trace (the data behind Fig. 1(b)).
type IterStat struct {
	Iter          int
	L2            float64
	EPEViolations int
}

// Result is the outcome of one ILT run.
type Result struct {
	// M1, M2 are the final continuous masks; Printed is the composed
	// double-patterning resist image.
	M1, M2, Printed *grid.Grid
	// L2 is the final squared image error against the target.
	L2 float64
	// EPE is the final edge-placement measurement.
	EPE epe.Result
	// Violations is the final print-violation summary.
	Violations epe.Violations
	// Aborted reports that the periodic check tripped; AbortIter is the
	// iteration at which it did.
	Aborted   bool
	AbortIter int
	// Interrupted reports that cancellation or a deadline cut the run
	// short; the result then carries the best state reached at a
	// violation-check boundary (or the initial state when the run never
	// reached one), not a discarded run.
	Interrupted bool
	// NumericalFault reports that the run produced NaN/Inf in its loss or
	// gradient and the bounded rollback-and-halve recovery was exhausted;
	// the result carries the last finite state and is also tagged Aborted,
	// so the flow falls through to the next candidate. NaNRecoveries counts
	// the rollbacks that did succeed (non-zero on a run that recovered).
	NumericalFault bool
	NaNRecoveries  int
	// WarmStart reports that the run was seeded by a Config.Init warm field
	// rather than the cold rasterized decomposition.
	WarmStart bool
	// Converged reports that the convergence-aware early stop halted the run
	// before the budget was spent; ConvergeIter is the iteration at which
	// the plateau was detected.
	Converged    bool
	ConvergeIter int
	// Iters is the number of gradient steps actually performed.
	Iters int
	// Trace records per-iteration statistics.
	Trace []IterStat
}

// Score aggregates the result into the paper's Eq. 9 selection score with
// the given weights (alpha*L2 + beta*EPE# + gamma*Violation#).
func (r Result) Score(alpha, beta, gamma float64) float64 {
	return alpha*r.L2 + beta*float64(r.EPE.Violations) + gamma*float64(r.Violations.Total())
}

// Optimizer runs ILT for decompositions of one fixed layout.
type Optimizer struct {
	cfg      Config
	maxIters int // configured budget, restorable after SetMaxIters
	layout   layout.Layout
	sim      *litho.Simulator
	target   *grid.Grid
	cps      []epe.Checkpoint
	clock    *simclock.Clock
	warmOn   bool     // LDMO_WARMSTART gate, sampled at construction
	spare    *Session // recycled between RunCtx calls; see session()
}

// NewOptimizer builds an optimizer for the layout under the given config.
func NewOptimizer(l layout.Layout, cfg Config) (*Optimizer, error) {
	cfg = cfg.Normalize()
	if len(l.Patterns) == 0 {
		return nil, fmt.Errorf("ilt: layout %q has no patterns", l.Name)
	}
	res := cfg.Litho.Resolution
	w := l.Window.W() / res
	h := l.Window.H() / res
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("ilt: window %v too small for resolution %d", l.Window, res)
	}
	sim, err := litho.NewSimulator(w, h, cfg.Litho)
	if err != nil {
		return nil, err
	}
	return &Optimizer{
		cfg:      cfg,
		maxIters: cfg.MaxIters,
		warmOn:   WarmEnabled(),
		layout:   l,
		sim:      sim,
		target:   l.Rasterize(res),
		cps:      epe.GenerateCheckpoints(l.Patterns, cfg.CheckpointSpacing),
	}, nil
}

// SetClock attaches deterministic cost accounting to the optimizer's
// simulator.
func (o *Optimizer) SetClock(c *simclock.Clock) {
	o.clock = c
	o.sim.SetClock(c)
}

// Config returns the normalized configuration in use.
func (o *Optimizer) Config() Config { return o.cfg }

// SetAbortOnViolation toggles the periodic print-violation abort on the
// existing optimizer. The flow's forced best-effort rerun uses this to reuse
// the optimizer — and with it the derived kernel bank and kernel FFTs —
// instead of rebuilding a second one.
func (o *Optimizer) SetAbortOnViolation(abort bool) { o.cfg.AbortOnViolation = abort }

// SetMaxIters overrides the iteration budget on the existing optimizer;
// n <= 0 restores the configured value. The flow applies per-candidate
// iteration budgets this way so the kernel bank is built once.
func (o *Optimizer) SetMaxIters(n int) {
	if n <= 0 {
		n = o.maxIters
	}
	o.cfg.MaxIters = n
}

// Target returns the rasterized target image (shared; do not mutate).
func (o *Optimizer) Target() *grid.Grid { return o.target }

// session acquires an initialized session for d: the recycled spare when one
// is available, a fresh allocation otherwise. A Result shares no memory with
// the session that produced it (Snapshot copies masks and trace), so RunCtx
// recycles its session on return and a flow's per-candidate runs reuse one
// buffer set. Reset state is bitwise-identical to a fresh session's.
func (o *Optimizer) session(d decomp.Decomposition) *Session {
	if s := o.spare; s != nil {
		o.spare = nil
		s.reset(d)
		return s
	}
	return o.NewSession(d)
}

// Run optimizes the masks of decomposition d: gradient steps in CheckEvery
// chunks with a print-violation snapshot between chunks (the Fig. 2 feedback
// check). See Result for outputs. Run is RunCtx without cancellation.
func (o *Optimizer) Run(d decomp.Decomposition) Result {
	return o.RunCtx(context.Background(), d)
}

// RunCtx is Run with cooperative cancellation: between violation-check
// chunks it polls ctx, and — only when ctx is cancellable — snapshots the
// best state seen so far at each check boundary. On cancellation or
// deadline it returns that best-so-far snapshot tagged Interrupted instead
// of discarding the run, so a budgeted caller always gets usable masks.
//
// With a non-cancellable context (Done() == nil, e.g. context.Background()),
// RunCtx performs no extra snapshots and is step-for-step identical to the
// historical Run, including its deterministic cost accounting.
func (o *Optimizer) RunCtx(ctx context.Context, d decomp.Decomposition) Result {
	s := o.session(d)
	defer func() { o.spare = s }()
	track := ctx != nil && ctx.Done() != nil
	var best Result
	hasBest := false
	// keep retains the better of two check-boundary snapshots: fewer print
	// violations first, then lower L2.
	keep := func(snap Result) {
		if !hasBest ||
			snap.Violations.Total() < best.Violations.Total() ||
			(snap.Violations.Total() == best.Violations.Total() && snap.L2 < best.L2) {
			best = snap
			hasBest = true
		}
	}
	interrupted := func() Result {
		if !hasBest {
			// Cancelled before the first check boundary: the initial (or
			// current) state is all there is — still a usable mask pair.
			best = s.Snapshot()
		}
		best.Interrupted = true
		return best
	}
	for s.Remaining() > 0 {
		if track && ctx.Err() != nil {
			return interrupted()
		}
		n := o.cfg.CheckEvery
		if r := s.Remaining(); n > r {
			n = r
		}
		s.Step(n)
		if s.Faulted() {
			// NaN/Inf escaped into the loss or gradient. Roll back to the
			// last violation-check snapshot with a halved step and retry;
			// once the bounded retries are spent, fail the candidate
			// cleanly: Aborted sends the flow to its next candidate, and
			// the returned masks are the last finite state.
			if s.recover() {
				continue
			}
			snap := s.Snapshot()
			snap.Aborted = true
			snap.NumericalFault = true
			snap.AbortIter = s.Iter()
			return snap
		}
		s.markGood()
		if s.Remaining() > 0 {
			// The convergence early stop is disabled unless configured and
			// LDMO_WARMSTART allows it, so the cold path's snapshot schedule
			// is untouched when the gate is off.
			earlyStop := o.warmOn && o.cfg.ConvergeWindow > 0
			plateau := earlyStop && s.plateaued(o.cfg.ConvergeWindow, o.cfg.ConvergeTol)
			if o.cfg.AbortOnViolation || track || earlyStop {
				snap := s.Snapshot()
				if o.cfg.AbortOnViolation && snap.Violations.Any() {
					snap.Aborted = true
					snap.AbortIter = s.Iter()
					return snap
				}
				// Converged means there is nothing left for the flow to gain:
				// either the snapshot is already perfect on every verdict
				// metric (zero EPE violations, zero print violations — a warm
				// start frequently begins here), or the L2 trace has
				// plateaued into a violation-free state. A plateau alone is
				// not enough — stopping with violations outstanding would
				// trade mask quality for iterations.
				if earlyStop && !snap.Violations.Any() && (snap.EPE.Violations == 0 || plateau) {
					snap.Converged = true
					snap.ConvergeIter = s.Iter()
					return snap
				}
				if track {
					keep(snap)
				}
			}
		}
	}
	// A deadline expiring during the final chunk is moot: the run
	// completed, so the full result is returned untagged.
	return s.Snapshot()
}

// finalize copies the working buffers into result grids.
func (o *Optimizer) finalize(res *Result, m [2][]float64, composed *grid.Grid) {
	res.M1 = grid.NewLike(o.target)
	copy(res.M1.Data, m[0])
	res.M2 = grid.NewLike(o.target)
	copy(res.M2.Data, m[1])
	res.Printed = composed.Clone()
}
