package ilt

import (
	"math"
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/geom"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
	"ldmo/internal/simclock"
)

// fastConfig runs ILT on the coarse 8nm raster so tests stay quick.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Litho = litho.FastParams()
	return cfg
}

// twoRowLayout builds the canonical 2x3 benchmark layout: two SP rows of
// three contacts, 95nm apart vertically.
func twoRowLayout() layout.Layout {
	l := layout.Layout{Name: "tworow", Window: geom.RectWH(0, 0, layout.TileNM, layout.TileNM)}
	for _, y := range []int{130, 290} {
		for _, x := range []int{66, 196, 326} {
			l.Patterns = append(l.Patterns, geom.RectWH(x, y, layout.ContactNM, layout.ContactNM))
		}
	}
	return l
}

func TestConfigNormalize(t *testing.T) {
	var c Config
	n := c.Normalize()
	d := DefaultConfig()
	if n.MaxIters != d.MaxIters || n.CheckEvery != d.CheckEvery ||
		n.StepSize != d.StepSize || n.InitClip != d.InitClip ||
		n.CheckpointSpacing != d.CheckpointSpacing ||
		n.Litho.Resolution != d.Litho.Resolution ||
		n.Meter.SearchRange != d.Meter.SearchRange {
		t.Fatalf("normalize = %+v", n)
	}
	// Existing values survive.
	c.MaxIters = 5
	if c.Normalize().MaxIters != 5 {
		t.Fatal("normalize overwrote MaxIters")
	}
}

func TestNewOptimizerErrors(t *testing.T) {
	if _, err := NewOptimizer(layout.Layout{Name: "empty"}, DefaultConfig()); err == nil {
		t.Fatal("empty layout must error")
	}
	l := twoRowLayout()
	cfg := DefaultConfig()
	cfg.Litho.Sigma = -1
	if _, err := NewOptimizer(l, cfg); err == nil {
		t.Fatal("bad litho params must error")
	}
}

func TestILTReducesEPEAndL2(t *testing.T) {
	l := twoRowLayout()
	gen := decomp.NewGenerator()
	cands, err := gen.Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	improved := false
	for _, d := range cands {
		r := opt.Run(d)
		first := r.Trace[0]
		if r.L2 >= first.L2 {
			t.Errorf("cand %s: L2 did not improve (%g -> %g)", d.Key(), first.L2, r.L2)
		}
		if r.EPE.Violations < first.EPEViolations {
			improved = true
		}
		if r.Iters != cfg.MaxIters {
			t.Errorf("cand %s: ran %d iters, want %d", d.Key(), r.Iters, cfg.MaxIters)
		}
		if len(r.Trace) != cfg.MaxIters+1 {
			t.Errorf("cand %s: trace length %d", d.Key(), len(r.Trace))
		}
	}
	if !improved {
		t.Fatal("no candidate improved its EPE count")
	}
}

func TestILTDecompositionQualityDiffers(t *testing.T) {
	// The paper's premise (Fig. 1b): different decompositions converge to
	// different final printability.
	l := twoRowLayout()
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("expected >= 2 candidates, got %d", len(cands))
	}
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	scores := map[float64]bool{}
	for _, d := range cands {
		r := opt.Run(d)
		scores[r.Score(1, 3500, 8000)] = true
	}
	if len(scores) < 2 {
		t.Fatal("all decompositions scored identically; no selection signal")
	}
}

func TestILTAbortsOnSameMaskSPPair(t *testing.T) {
	// Forcing an SP pair onto one mask must trip the periodic violation
	// check (the printed contacts bridge).
	l := layout.Layout{Name: "sp-pair", Window: geom.RectWH(0, 0, layout.TileNM, layout.TileNM)}
	l.Patterns = []geom.Rect{
		geom.RectWH(160, 240, 65, 65),
		geom.RectWH(290, 240, 65, 65), // 65nm gap: SP
	}
	cfg := fastConfig()
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := decomp.New(l, []uint8{0, 0}) // same mask: illegal
	r := opt.Run(bad)
	if !r.Aborted {
		t.Fatal("same-mask SP pair did not abort")
	}
	if r.AbortIter%cfg.CheckEvery != 0 {
		t.Fatalf("abort at iter %d, not on a check boundary", r.AbortIter)
	}
	if !r.Violations.Any() {
		t.Fatal("aborted without recorded violations")
	}
	if r.Printed == nil || r.M1 == nil || r.M2 == nil {
		t.Fatal("aborted result missing images")
	}

	good := decomp.New(l, []uint8{0, 1})
	if rg := opt.Run(good); rg.Aborted {
		t.Fatal("legal decomposition aborted")
	}
}

func TestILTNoAbortWhenDisabled(t *testing.T) {
	l := layout.Layout{Name: "sp-pair", Window: geom.RectWH(0, 0, layout.TileNM, layout.TileNM)}
	l.Patterns = []geom.Rect{
		geom.RectWH(160, 240, 65, 65),
		geom.RectWH(290, 240, 65, 65),
	}
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.Run(decomp.New(l, []uint8{0, 0}))
	if r.Aborted {
		t.Fatal("aborted despite AbortOnViolation=false")
	}
	if r.Iters != cfg.MaxIters {
		t.Fatalf("ran %d iters", r.Iters)
	}
}

func TestILTChargesClock(t *testing.T) {
	l := twoRowLayout()
	cfg := fastConfig()
	cfg.MaxIters = 3
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New(simclock.DefaultModel())
	opt.SetClock(clk)
	d := decomp.New(l, []uint8{0, 1, 0, 1, 0, 1})
	opt.Run(d)
	if clk.Count(simclock.CostConvolution) == 0 {
		t.Fatal("no convolutions charged")
	}
}

func TestScore(t *testing.T) {
	r := Result{L2: 10}
	r.EPE.Violations = 2
	r.Violations.Bridges = 1
	got := r.Score(1, 3500, 8000)
	if got != 10+2*3500+8000 {
		t.Fatalf("score = %g", got)
	}
}

func TestILTGradientMatchesNumerical(t *testing.T) {
	// Full-chain gradient check: compare the analytic dL/dP step against a
	// numerical derivative of the composed loss on a tiny layout.
	l := layout.Layout{Name: "tiny", Window: geom.RectWH(0, 0, 256, 256)}
	l.Patterns = []geom.Rect{geom.RectWH(96, 96, 65, 65)}
	p := litho.FastParams()
	p.Sigma = 24
	p.DefocusWeight = 0

	res := p.Resolution
	w := l.Window.W() / res
	sim, err := litho.NewSimulator(w, w, p)
	if err != nil {
		t.Fatal(err)
	}
	target := l.Rasterize(res)
	n := w * w

	loss := func(pp []float64) float64 {
		m := make([]float64, n)
		litho.MaskSigmoid(p.ThetaM, pp, m)
		aerial := make([]float64, n)
		sim.Aerial(m, aerial, nil)
		tt := make([]float64, n)
		sim.Resist(aerial, tt)
		s := 0.0
		for i := range tt {
			d := tt[i] - target.Data[i]
			s += d * d
		}
		return s
	}

	pp := make([]float64, n)
	for i := range pp {
		pp[i] = 0.1 * math.Sin(float64(i))
	}

	// Analytic gradient via the simulator's backward passes.
	m := make([]float64, n)
	litho.MaskSigmoid(p.ThetaM, pp, m)
	fields := sim.NewFields()
	aerial := make([]float64, n)
	sim.Aerial(m, aerial, fields)
	tt := make([]float64, n)
	sim.Resist(aerial, tt)
	gradT := make([]float64, n)
	for i := range gradT {
		gradT[i] = 2 * (tt[i] - target.Data[i])
	}
	gradI := make([]float64, n)
	sim.ResistBackward(gradT, tt, gradI)
	gradM := make([]float64, n)
	sim.AerialBackward(gradI, fields, gradM)

	const eps = 1e-6
	for _, idx := range []int{n / 2, n/2 + 7, 3} {
		analytic := gradM[idx] * p.ThetaM * m[idx] * (1 - m[idx])
		save := pp[idx]
		pp[idx] = save + eps
		up := loss(pp)
		pp[idx] = save - eps
		down := loss(pp)
		pp[idx] = save
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-analytic) > 1e-4*(math.Abs(numeric)+1e-3) {
			t.Fatalf("dL/dP[%d]: analytic %g, numeric %g", idx, analytic, numeric)
		}
	}
}
