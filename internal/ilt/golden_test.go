package ilt

import (
	"math"
	"runtime"
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/fft"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
)

// optimizerCandidates generates the decomposition candidates of l, capped so
// the cross-engine sweeps stay fast.
func optimizerCandidates(l layout.Layout) ([]decomp.Decomposition, error) {
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		return nil, err
	}
	if len(cands) > 3 {
		cands = cands[:3]
	}
	return cands, nil
}

// allocBytes reports cumulative heap bytes allocated by this test process.
func allocBytes() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// TestEngineGoldenILT is the decision-level golden guard at the optimizer
// layer: a full ILT run under the real-input spectral engine makes exactly
// the same discrete decisions — per-iteration EPE violation counts, final
// violation verdicts, abort behavior — as the complex reference engine, and
// its continuous outputs (L2, final masks) agree to tolerance.
func TestEngineGoldenILT(t *testing.T) {
	cell, err := layout.Cell("AOI211_X1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Litho = litho.FastParams()
	cfg.MaxIters = 9
	cfg.AbortOnViolation = false

	run := func(mode string) []Result {
		t.Setenv(fft.EnvMode, mode)
		opt, err := NewOptimizer(cell, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cands, err := optimizerCandidates(cell)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]Result, len(cands))
		for i, d := range cands {
			out[i] = opt.Run(d)
		}
		return out
	}
	ref := run(fft.ModeComplex)
	got := run("")
	if len(ref) != len(got) {
		t.Fatalf("candidate counts differ: %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		r, g := ref[i], got[i]
		if g.EPE.Violations != r.EPE.Violations {
			t.Errorf("cand %d: EPE violations %d (real) vs %d (complex)", i, g.EPE.Violations, r.EPE.Violations)
		}
		if g.Violations != r.Violations {
			t.Errorf("cand %d: print verdicts %+v (real) vs %+v (complex)", i, g.Violations, r.Violations)
		}
		if g.Aborted != r.Aborted || g.Iters != r.Iters {
			t.Errorf("cand %d: aborted/iters %v/%d vs %v/%d", i, g.Aborted, g.Iters, r.Aborted, r.Iters)
		}
		if len(g.Trace) != len(r.Trace) {
			t.Fatalf("cand %d: trace lengths %d vs %d", i, len(g.Trace), len(r.Trace))
		}
		for j := range r.Trace {
			if g.Trace[j].EPEViolations != r.Trace[j].EPEViolations {
				t.Errorf("cand %d iter %d: EPE %d vs %d", i, j, g.Trace[j].EPEViolations, r.Trace[j].EPEViolations)
			}
		}
		if rel := math.Abs(g.L2-r.L2) / (math.Abs(r.L2) + 1); rel > 1e-9 {
			t.Errorf("cand %d: L2 %g vs %g (rel %g)", i, g.L2, r.L2, rel)
		}
		for j := range r.Printed.Data {
			if d := math.Abs(g.Printed.Data[j] - r.Printed.Data[j]); d > 1e-9 {
				t.Fatalf("cand %d: printed image differs at %d by %g", i, j, d)
			}
		}
	}
}

// TestSessionStepSteadyStateAllocs pins the ILT inner loop's allocation
// behavior: after the first violation-check chunk has warmed the session,
// further gradient steps allocate only what the EPE meter needs (the trace
// is preallocated to the full budget).
func TestSessionStepSteadyStateAllocs(t *testing.T) {
	cell, err := layout.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Litho = litho.FastParams()
	cfg.MaxIters = 64
	opt, err := NewOptimizer(cell, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := optimizerCandidates(cell)
	if err != nil {
		t.Fatal(err)
	}
	s := opt.NewSession(cands[0])
	s.Step(3) // warm
	before := allocBytes()
	s.Step(8)
	grew := allocBytes() - before
	// The fft/litho layers must contribute nothing; the budget below is the
	// EPE meter's small per-measure bookkeeping only (well under one raster).
	raster := uint64(opt.sim.W * opt.sim.H * 8)
	if grew > raster {
		t.Errorf("8 ILT steps allocated %d bytes, more than one %d-byte raster", grew, raster)
	}
}
