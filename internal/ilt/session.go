package ilt

import (
	"math"

	"ldmo/internal/epe"
	"ldmo/internal/faultinject"
	"ldmo/internal/grid"
	"ldmo/internal/litho"
	"ldmo/internal/simclock"
)

// Session is an incremental ILT run: the optimizer state of one
// decomposition that can be stepped a few iterations at a time and evaluated
// between steps. The greedy-pruning baseline uses sessions to prune
// candidates on warm intermediate states exactly as the ICCAD'17 flow does;
// Optimizer.Run is itself implemented on top of a session.
//
// Sessions of the same Optimizer share its simulator scratch buffers, so
// only one session may be stepped at a time (interleaving Step calls across
// sessions is fine; calling Step concurrently is not).
type Session struct {
	o    *Optimizer
	p    [2][]float64
	m    [2][]float64
	iter int

	aerial   [2][]float64
	resist   [2][]float64
	fields   [2]*litho.Fields
	composed *grid.Grid
	sat      []bool
	gradT    []float64
	gradI    []float64
	gradM    []float64

	trace []IterStat

	// NaN-resilience state: snapP holds the mask parameters at the last
	// violation-check boundary (markGood); a non-finite loss or gradient
	// latches fault and halts stepping until restoreGood rolls the session
	// back. stepScale shrinks on every rollback, bounding the retried
	// trajectory away from the divergence.
	snapP        [2][]float64
	snapIter     int
	snapTraceLen int
	stepScale    float64
	nanRetries   int
	fault        bool

	// Warm-start state: warm holds the initializer's predicted fields
	// (lazily allocated on first warm reset, reused after); warmed records
	// that the current run was seeded from them.
	warm   [2][]float64
	warmed bool
}

// maxNaNRetries bounds rollback-and-halve recovery attempts per run; a run
// still non-finite after this many is declared divergent and fails cleanly.
const maxNaNRetries = 3

// NewSession initializes optimizer state for decomposition d.
func (o *Optimizer) NewSession(d interface {
	Masks(res int) (*grid.Grid, *grid.Grid)
}) *Session {
	n := o.sim.W * o.sim.H
	s := &Session{
		o:        o,
		composed: grid.NewLike(o.target),
		sat:      make([]bool, n),
		gradT:    make([]float64, n),
		gradI:    make([]float64, n),
		gradM:    make([]float64, n),
		// The trace grows by one row per iteration; reserving the full
		// budget up front keeps the steady-state Step loop append-free.
		trace: make([]IterStat, 0, o.cfg.MaxIters+1),
	}
	for i := 0; i < 2; i++ {
		s.p[i] = make([]float64, n)
		s.m[i] = make([]float64, n)
		s.aerial[i] = make([]float64, n)
		s.resist[i] = make([]float64, n)
		s.fields[i] = o.sim.NewFields()
		s.snapP[i] = make([]float64, n)
	}
	s.reset(d)
	return s
}

// reset re-derives the session's optimizer state for decomposition d without
// allocating: every buffer of the session is reused, so a recycled session is
// exactly as cheap as restarting on warm memory. The resulting state is
// bitwise-identical to a freshly constructed session's — the initializer is a
// pure function of d and the optimizer config.
func (s *Session) reset(d interface {
	Masks(res int) (*grid.Grid, *grid.Grid)
}) {
	o := s.o
	m1g, m2g := d.Masks(o.cfg.Litho.Resolution)
	s.iter = 0
	// The budget may have grown via SetMaxIters since this session was built.
	if cap(s.trace) < o.cfg.MaxIters+1 {
		s.trace = make([]IterStat, 0, o.cfg.MaxIters+1)
	} else {
		s.trace = s.trace[:0]
	}
	s.snapIter = 0
	s.snapTraceLen = 0
	s.stepScale = 1
	s.nanRetries = 0
	s.fault = false
	masks := [2][]float64{m1g.Data, m2g.Data}
	s.warmed = false
	if o.cfg.Init != nil && o.warmOn {
		if s.warm[0] == nil {
			s.warm[0] = make([]float64, len(masks[0]))
			s.warm[1] = make([]float64, len(masks[1]))
		}
		if o.cfg.Init.WarmMasksInto(m1g, m2g, s.warm[0], s.warm[1]) {
			masks = s.warm
			s.warmed = true
			if o.clock != nil {
				// The warm prediction is one CNN inference in the
				// deterministic cost model; the iterations it saves are
				// charged (or rather, not charged) by the simulator.
				o.clock.Charge(simclock.CostCNNInference, 1)
			}
		}
	}
	// A warm continuous field keeps its saturation depth through the wider
	// WarmClip band; the binary cold raster still gets InitClip's protection
	// from the sigmoid's dead tails. The step size is tuned for the cold
	// transient — from a near-optimal warm start the full step overshoots
	// and oscillates away the head start, so warmed sessions descend at
	// half scale (the NaN-recovery halving stacks on top as usual).
	clip := o.cfg.InitClip
	if s.warmed {
		clip = o.cfg.WarmClip
		s.stepScale = 0.5
	}
	for i := 0; i < 2; i++ {
		// s.m[i] doubles as the clamp scratch; forward overwrites it anyway.
		for j, v := range masks[i] {
			s.m[i][j] = math.Min(math.Max(v, clip), 1-clip)
		}
		litho.MaskSigmoidInverse(o.cfg.Litho.ThetaM, s.m[i], s.p[i])
		copy(s.snapP[i], s.p[i])
	}
}

// Iter returns the number of gradient iterations performed so far.
func (s *Session) Iter() int { return s.iter }

// forward evaluates the current masks into the session's image buffers.
func (s *Session) forward(withFields bool) {
	for i := 0; i < 2; i++ {
		litho.MaskSigmoid(s.o.cfg.Litho.ThetaM, s.p[i], s.m[i])
		f := s.fields[i]
		if !withFields {
			f = nil
		}
		s.o.sim.Aerial(s.m[i], s.aerial[i], f)
		s.o.sim.Resist(s.aerial[i], s.resist[i])
	}
	litho.ComposeDouble(s.resist[0], s.resist[1], s.composed.Data, s.sat)
}

// Step performs n gradient iterations (not exceeding the configured budget)
// and appends to the trace. It returns the iterations actually performed.
// A non-finite loss or gradient latches the fault flag and halts stepping
// immediately — before the poisoned update can reach the mask parameters'
// snapshot — leaving recovery (rollback with a halved step) to the caller.
func (s *Session) Step(n int) int {
	done := 0
	for ; done < n && s.iter < s.o.cfg.MaxIters && !s.fault; done++ {
		s.forward(true)
		s.iter++
		l2 := s.composed.L2Diff(s.o.target)
		if faultinject.FireAt(faultinject.ILTNaN, s.iter) {
			l2 = math.NaN()
		}
		if math.IsNaN(l2) || math.IsInf(l2, 0) {
			s.fault = true
			break
		}
		em := s.o.cfg.Meter.Measure(s.composed, s.o.cps)
		s.trace = append(s.trace, IterStat{Iter: s.iter, L2: l2, EPEViolations: em.Violations})

		for j := range s.gradT {
			if s.sat[j] {
				s.gradT[j] = 0
			} else {
				s.gradT[j] = 2 * (s.composed.Data[j] - s.o.target.Data[j])
			}
		}
		for i := 0; i < 2; i++ {
			s.o.sim.ResistBackward(s.gradT, s.resist[i], s.gradI)
			s.o.sim.AerialBackward(s.gradI, s.fields[i], s.gradM)
			if !finiteSlice(s.gradM) {
				s.fault = true
				break
			}
			tm := s.o.cfg.Litho.ThetaM
			pi := s.p[i]
			mi := s.m[i]
			for j := range pi {
				pi[j] -= s.o.cfg.StepSize * s.stepScale * s.gradM[j] * tm * mi[j] * (1 - mi[j])
			}
		}
		s.divergePoint()
	}
	return done
}

// finiteSlice reports whether xs is free of NaN/Inf.
func finiteSlice(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Faulted reports whether the session hit a non-finite loss or gradient and
// is halted pending a rollback.
func (s *Session) Faulted() bool { return s.fault }

// markGood records the current mask parameters as the rollback target; the
// optimizer calls it at every violation-check boundary that passed finite.
func (s *Session) markGood() {
	for i := 0; i < 2; i++ {
		copy(s.snapP[i], s.p[i])
	}
	s.snapIter = s.iter
	s.snapTraceLen = len(s.trace)
}

// restoreGood rewinds the session to the last markGood state — parameters,
// iteration counter and trace — clearing the fault latch.
func (s *Session) restoreGood() {
	for i := 0; i < 2; i++ {
		copy(s.p[i], s.snapP[i])
	}
	s.iter = s.snapIter
	s.trace = s.trace[:s.snapTraceLen]
	s.fault = false
}

// recover attempts one bounded rollback: restore the last good state and
// halve the effective step size. It returns false once the retry budget is
// spent (the state is still restored, so a final Snapshot is finite).
func (s *Session) recover() bool {
	s.restoreGood()
	if s.nanRetries >= maxNaNRetries {
		return false
	}
	s.nanRetries++
	s.stepScale /= 2
	return true
}

// divergePoint is the ilt-diverge fault injection site: when armed and the
// run has reached the configured iteration (default 0), both mask
// parameters are slammed deep into the sigmoid's zero tail, so nothing
// prints and every subsequent violation check reports missing patterns.
// Disarmed cost: one atomic load per iteration.
func (s *Session) divergePoint() {
	if !faultinject.Enabled(faultinject.ILTDiverge) {
		return
	}
	if s.iter < faultinject.ArgInt(faultinject.ILTDiverge, 0) {
		return
	}
	for i := 0; i < 2; i++ {
		for j := range s.p[i] {
			s.p[i][j] = -40
		}
	}
}

// Remaining returns the unused iteration budget.
func (s *Session) Remaining() int { return s.o.cfg.MaxIters - s.iter }

// plateaued reports whether the relative L2 improvement over the trailing
// window iterations of the trace has dropped below tol — the convergence
// signal behind the warm-start early stop. It is a pure read of the trace:
// no forward pass, no cost-model charge.
func (s *Session) plateaued(window int, tol float64) bool {
	n := len(s.trace)
	if n <= window {
		return false
	}
	first := s.trace[n-1-window].L2
	last := s.trace[n-1].L2
	if first <= 0 {
		return true // already at (or below) zero loss: nothing left to gain
	}
	return (first-last)/first < tol
}

// Snapshot evaluates the current masks (one forward pass) and returns the
// full printability measurement without advancing the iteration counter.
func (s *Session) Snapshot() Result {
	s.forward(false)
	res := Result{Iters: s.iter, NaNRecoveries: s.nanRetries, WarmStart: s.warmed, Trace: append([]IterStat(nil), s.trace...)}
	res.L2 = s.composed.L2Diff(s.o.target)
	res.EPE = s.o.cfg.Meter.Measure(s.composed, s.o.cps)
	res.Violations = epe.CheckPrintViolations(s.composed, s.o.layout.Patterns, s.o.cfg.Litho.PrintThreshold)
	res.Trace = append(res.Trace, IterStat{Iter: s.iter + 1, L2: res.L2, EPEViolations: res.EPE.Violations})
	s.o.finalize(&res, s.m, s.composed)
	return res
}
