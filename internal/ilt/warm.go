package ilt

import (
	"os"

	"ldmo/internal/grid"
)

// EnvWarm is the kill switch for the learned warm-start path. The feature is
// opt-in twice over: nothing changes unless a Config carries an Initializer
// (and/or a convergence window), and even then setting LDMO_WARMSTART=off
// (or 0/false) restores the cold-start behavior bit for bit. The gate is
// sampled once per Optimizer at construction, so a single run never mixes
// modes.
const EnvWarm = "LDMO_WARMSTART"

// WarmEnabled reports whether the learned warm-start feature set (initial
// mask injection and convergence-aware early stop) is allowed by the
// environment. Unset means enabled: the feature is already opt-in through
// Config, so the environment variable only needs to be a kill switch.
func WarmEnabled() bool {
	switch os.Getenv(EnvWarm) {
	case "off", "0", "false":
		return false
	}
	return true
}

// Default convergence parameters for the warm-start early stop: with the
// paper's CheckEvery=3 cadence, a six-iteration window that improved L2 by
// less than two percent is treated as a plateau. Callers that enable the
// early stop with ConvergeWindow > 0 but leave ConvergeTol unset get
// DefaultConvergeTol via Config.Normalize.
const (
	DefaultConvergeWindow = 6
	DefaultConvergeTol    = 0.02
)

// Initializer supplies a warm initial mask field for an ILT run: given the
// cold rasterized decomposition masks, it fills warm1/warm2 (both length
// W*H, row-major like the grids) with predicted quasi-optimized fields in
// [0, 1] and returns true. Returning false falls back to the cold start.
//
// The session clamps the returned fields into [WarmClip, 1-WarmClip] and
// re-projects them through the inverse mask sigmoid, so an initializer never
// needs to worry about the sigmoid's saturated tails. Implementations must
// not retain or mutate the input grids, and must be safe for concurrent use:
// the pipelined flow optimizes several layouts at once against one shared
// initializer.
type Initializer interface {
	WarmMasksInto(cold1, cold2 *grid.Grid, warm1, warm2 []float64) bool
}
