package ilt

import (
	"reflect"
	"testing"

	"ldmo/internal/decomp"
)

// TestSessionReuseBitwiseIdentical: back-to-back RunCtx calls on one
// optimizer recycle the session, and every recycled run is bitwise-identical
// to what a cold optimizer produces for the same decomposition — including
// when the candidates alternate, so stale state from a previous candidate
// cannot leak through the reset.
func TestSessionReuseBitwiseIdentical(t *testing.T) {
	l := twoRowLayout()
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("want >=2 candidates, got %d", len(cands))
	}
	cfg := fastConfig()
	cfg.MaxIters = 9
	warm, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	order := []int{0, 1, 0, 1}
	for run, ci := range order {
		got := warm.Run(cands[ci])
		cold, err := NewOptimizer(l, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := cold.Run(cands[ci])
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d (cand %d): recycled-session result differs from cold optimizer", run, ci)
		}
	}
}

// TestSessionResetAfterBudgetGrowth: SetMaxIters growing the budget between
// runs must not leave the recycled trace under-provisioned or truncate runs.
func TestSessionResetAfterBudgetGrowth(t *testing.T) {
	l := twoRowLayout()
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	cfg.MaxIters = 3
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt.Run(cands[0]) // session built with the small budget
	opt.SetMaxIters(9)
	r := opt.Run(cands[0])
	if r.Iters != 9 || len(r.Trace) != 10 {
		t.Fatalf("grown-budget run: iters=%d trace=%d, want 9/10", r.Iters, len(r.Trace))
	}
}

// TestSessionResetSteadyStateAllocs is the CI alloc gate for session
// recycling: re-initializing a pooled session for a new decomposition touches
// only memory the session already owns.
func TestSessionResetSteadyStateAllocs(t *testing.T) {
	l := twoRowLayout()
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewOptimizer(l, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := opt.NewSession(cands[0])
	// Masks rasterizes the decomposition into fresh grids; measure reset's
	// own footprint on top of that by pre-rasterizing outside the loop.
	d := cands[0]
	avg := testing.AllocsPerRun(20, func() {
		s.reset(d)
	})
	// d.Masks allocates the two rasterized mask grids per call (owned by the
	// caller-facing decomposition API, not the session); everything else in
	// reset must be allocation-free. 6 objects = 2 grids x (header + data) +
	// slack for the grid struct boxing.
	if avg > 8 {
		t.Fatalf("session reset allocates %.1f objects per run", avg)
	}
}
