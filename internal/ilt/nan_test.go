package ilt

import (
	"math"
	"testing"

	"ldmo/internal/faultinject"
)

func finiteGrid(t *testing.T, name string, data []float64) {
	t.Helper()
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s contains non-finite values", name)
		}
	}
}

// TestILTNaNOneShotRecovers: a transient NaN injected mid-run must roll the
// optimizer back to the last violation-check snapshot and complete the run
// with a halved step — the result is finite, untagged, and records exactly
// the one recovery.
func TestILTNaNOneShotRecovers(t *testing.T) {
	defer faultinject.Reset()
	d, opt := firstCand(t)

	faultinject.Set(faultinject.ILTNaN, "5") // fire once at iteration 5
	r := opt.Run(d)
	if r.NumericalFault {
		t.Fatal("one-shot NaN must be recoverable, not a numerical fault")
	}
	if r.Aborted || r.Interrupted {
		t.Fatalf("recovered run mis-tagged: aborted=%v interrupted=%v", r.Aborted, r.Interrupted)
	}
	if r.NaNRecoveries != 1 {
		t.Fatalf("NaNRecoveries = %d, want 1", r.NaNRecoveries)
	}
	if r.Iters != opt.Config().MaxIters {
		t.Fatalf("recovered run performed %d iterations, want the full %d", r.Iters, opt.Config().MaxIters)
	}
	finiteGrid(t, "M1", r.M1.Data)
	finiteGrid(t, "M2", r.M2.Data)
	finiteGrid(t, "Printed", r.Printed.Data)
	if math.IsNaN(r.L2) || math.IsInf(r.L2, 0) {
		t.Fatalf("recovered run has non-finite L2 %v", r.L2)
	}
	if faultinject.Enabled(faultinject.ILTNaN) {
		t.Fatal("one-shot point still armed after firing")
	}
}

// TestILTNaNStickyFailsCleanly: a persistent NaN source must exhaust the
// bounded retries and fail the candidate the way a tripped violation check
// does — Aborted plus NumericalFault, with the last finite state as masks —
// instead of looping or returning poisoned numbers.
func TestILTNaNStickyFailsCleanly(t *testing.T) {
	defer faultinject.Reset()
	d, opt := firstCand(t)

	faultinject.Set(faultinject.ILTNaN, "-5") // fire at every iteration >= 5
	r := opt.Run(d)
	if !r.NumericalFault {
		t.Fatal("persistent NaN did not surface as NumericalFault")
	}
	if !r.Aborted {
		t.Fatal("numerical fault must tag Aborted so the flow tries the next candidate")
	}
	finiteGrid(t, "M1", r.M1.Data)
	finiteGrid(t, "M2", r.M2.Data)
	if math.IsNaN(r.L2) || math.IsInf(r.L2, 0) {
		t.Fatalf("failed run leaked non-finite L2 %v", r.L2)
	}
	// The run rolled back to the last good boundary before giving up, so the
	// reported iteration count sits at or below the injection point.
	if r.Iters >= 5 {
		t.Fatalf("failed run reports %d iterations, want the pre-fault snapshot (< 5)", r.Iters)
	}
}

// TestILTNaNRecoveryDoesNotDisturbCleanRuns: with the point disarmed, the
// NaN guard must be invisible — two identical runs stay bit-identical.
func TestILTNaNRecoveryDoesNotDisturbCleanRuns(t *testing.T) {
	d, opt := firstCand(t)
	a := opt.Run(d)
	b := opt.Run(d)
	if a.NaNRecoveries != 0 || b.NaNRecoveries != 0 {
		t.Fatal("clean runs recorded NaN recoveries")
	}
	if a.L2 != b.L2 || a.Iters != b.Iters {
		t.Fatalf("clean runs diverged: %v/%d vs %v/%d", a.L2, a.Iters, b.L2, b.Iters)
	}
	for i := range a.M1.Data {
		if a.M1.Data[i] != b.M1.Data[i] {
			t.Fatal("clean runs produced different masks")
		}
	}
}
