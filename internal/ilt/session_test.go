package ilt

import (
	"testing"

	"ldmo/internal/decomp"
)

func TestSessionStepMatchesRun(t *testing.T) {
	// A session stepped in chunks must reach exactly the same state as
	// Optimizer.Run (same deterministic arithmetic).
	l := twoRowLayout()
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d := decomp.New(l, []uint8{0, 1, 0, 1, 0, 1})
	want := opt.Run(d)

	s := opt.NewSession(d)
	for s.Remaining() > 0 {
		s.Step(5)
	}
	got := s.Snapshot()
	if got.L2 != want.L2 {
		t.Fatalf("session L2 %g != run L2 %g", got.L2, want.L2)
	}
	if got.EPE.Violations != want.EPE.Violations {
		t.Fatalf("session EPE %d != run EPE %d", got.EPE.Violations, want.EPE.Violations)
	}
	if !got.Printed.Equal(want.Printed, 0) {
		t.Fatal("printed images differ")
	}
}

func TestSessionBudget(t *testing.T) {
	l := twoRowLayout()
	cfg := fastConfig()
	cfg.MaxIters = 7
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := opt.NewSession(decomp.New(l, []uint8{0, 1, 0, 1, 0, 1}))
	if got := s.Step(3); got != 3 {
		t.Fatalf("stepped %d", got)
	}
	if s.Iter() != 3 || s.Remaining() != 4 {
		t.Fatalf("iter=%d remaining=%d", s.Iter(), s.Remaining())
	}
	if got := s.Step(10); got != 4 {
		t.Fatalf("budget-capped step did %d", got)
	}
	if s.Remaining() != 0 {
		t.Fatalf("remaining = %d", s.Remaining())
	}
	if got := s.Step(1); got != 0 {
		t.Fatal("stepping an exhausted session must do nothing")
	}
}

func TestSessionSnapshotDoesNotAdvance(t *testing.T) {
	l := twoRowLayout()
	opt, err := NewOptimizer(l, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := opt.NewSession(decomp.New(l, []uint8{0, 1, 0, 1, 0, 1}))
	s.Step(4)
	a := s.Snapshot()
	b := s.Snapshot()
	if s.Iter() != 4 {
		t.Fatalf("snapshot advanced iter to %d", s.Iter())
	}
	if a.L2 != b.L2 || a.EPE.Violations != b.EPE.Violations {
		t.Fatal("repeated snapshots differ")
	}
	if len(a.Trace) != 5 { // 4 step entries + snapshot entry
		t.Fatalf("trace length %d", len(a.Trace))
	}
}

func TestInterleavedSessionsIndependent(t *testing.T) {
	// Stepping two sessions alternately must give the same results as
	// running them serially (shared scratch buffers must not leak state).
	l := twoRowLayout()
	cfg := fastConfig()
	cfg.MaxIters = 6
	cfg.AbortOnViolation = false
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1 := decomp.New(l, []uint8{0, 1, 0, 1, 0, 1})
	d2 := decomp.New(l, []uint8{0, 1, 0, 0, 1, 0})

	want1 := opt.Run(d1)
	want2 := opt.Run(d2)

	s1 := opt.NewSession(d1)
	s2 := opt.NewSession(d2)
	for s1.Remaining() > 0 || s2.Remaining() > 0 {
		s1.Step(2)
		s2.Step(2)
	}
	got1 := s1.Snapshot()
	got2 := s2.Snapshot()
	if got1.L2 != want1.L2 || got2.L2 != want2.L2 {
		t.Fatalf("interleaved L2 (%g, %g) != serial (%g, %g)",
			got1.L2, got2.L2, want1.L2, want2.L2)
	}
}
