package ilt

import (
	"context"
	"reflect"
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/faultinject"
)

// firstCand returns a deterministic decomposition of the test layout.
func firstCand(t *testing.T) (decomp.Decomposition, *Optimizer) {
	t.Helper()
	l := twoRowLayout()
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil || len(cands) == 0 {
		t.Fatalf("generate: %v (%d candidates)", err, len(cands))
	}
	cfg := fastConfig()
	cfg.AbortOnViolation = false
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cands[0], opt
}

// TestRunCtxBackgroundMatchesRun: a non-cancellable context must reproduce
// Run bit for bit (same masks, same trace, same accounting path).
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	d, opt := firstCand(t)
	want := opt.Run(d)
	got := opt.RunCtx(context.Background(), d)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("RunCtx(Background) differs from Run")
	}
	if got.Interrupted {
		t.Fatal("uncancelled run tagged Interrupted")
	}
}

// TestRunCtxCancelledUpFront: cancelling before the run still yields a
// usable (initial-state) result, tagged.
func TestRunCtxCancelledUpFront(t *testing.T) {
	d, opt := firstCand(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := opt.RunCtx(ctx, d)
	if !r.Interrupted {
		t.Fatal("cancelled run not tagged Interrupted")
	}
	if r.M1 == nil || r.M2 == nil || r.Printed == nil {
		t.Fatal("interrupted result lost its masks")
	}
	if r.Iters != 0 {
		t.Fatalf("cancelled-up-front run performed %d iterations", r.Iters)
	}
}

// TestRunCtxMidRunCancelKeepsBestSoFar: cancelling after a few check
// intervals returns the best snapshot reached, not a discarded run.
func TestRunCtxMidRunCancelKeepsBestSoFar(t *testing.T) {
	d, opt := firstCand(t)
	full := opt.Run(d)

	// Cancel after the third Step chunk by counting context polls: the
	// cancel is driven from the context itself so the cut point is exact.
	ctx := &cancelAfterPolls{Context: context.Background(), allow: 3}
	r := opt.RunCtx(ctx, d)
	if !r.Interrupted {
		t.Fatal("mid-run cancellation not tagged Interrupted")
	}
	if r.M1 == nil || r.M2 == nil || r.Printed == nil {
		t.Fatal("interrupted result lost its masks")
	}
	if r.Iters <= 0 || r.Iters >= full.Iters {
		t.Fatalf("interrupted run performed %d iterations, want partial progress below %d",
			r.Iters, full.Iters)
	}
	if len(r.Trace) == 0 {
		t.Fatal("interrupted result lost its trace")
	}
}

// cancelAfterPolls is a deterministic context: Err() starts failing after
// `allow` calls. Done() is non-nil so RunCtx enters tracking mode.
type cancelAfterPolls struct {
	context.Context
	allow int
	polls int
}

func (c *cancelAfterPolls) Done() <-chan struct{} {
	return make(chan struct{})
}

func (c *cancelAfterPolls) Err() error {
	c.polls++
	if c.polls > c.allow {
		return context.Canceled
	}
	return nil
}

// TestSetMaxIters: the override caps the run and 0 restores the configured
// budget without rebuilding the optimizer.
func TestSetMaxIters(t *testing.T) {
	d, opt := firstCand(t)
	opt.SetMaxIters(4)
	if r := opt.Run(d); r.Iters != 4 {
		t.Fatalf("capped run performed %d iterations, want 4", r.Iters)
	}
	opt.SetMaxIters(0)
	want := opt.Config().MaxIters
	if r := opt.Run(d); r.Iters != want {
		t.Fatalf("restored run performed %d iterations, want %d", r.Iters, want)
	}
}

// TestILTDivergeFaultTripsAbort: the armed divergence point must make an
// abort-enabled run trip its first violation check.
func TestILTDivergeFaultTripsAbort(t *testing.T) {
	defer faultinject.Reset()
	l := twoRowLayout()
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil || len(cands) == 0 {
		t.Fatalf("generate: %v", err)
	}
	cfg := fastConfig()
	cfg.AbortOnViolation = true
	opt, err := NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(faultinject.ILTDiverge, "0")
	r := opt.Run(cands[0])
	if !r.Aborted {
		t.Fatal("diverged run did not trip the violation check")
	}
	if r.AbortIter != opt.Config().CheckEvery {
		t.Fatalf("abort at iteration %d, want the first check (%d)", r.AbortIter, opt.Config().CheckEvery)
	}
	if !r.Violations.Any() || r.Violations.Missing == 0 {
		t.Fatalf("divergence should report missing patterns, got %+v", r.Violations)
	}
}
