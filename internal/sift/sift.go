// Package sift implements the scale-invariant feature transform the paper's
// layout-sampling stage relies on (§IV-A, Fig. 6): a Gaussian/DoG scale-space
// keypoint detector with 128-dimensional gradient-histogram descriptors, the
// Eq. 7 feature distance, and the Algorithm 2 layout-similarity measure.
//
// The implementation follows Lowe's construction — scale-space extrema,
// dominant-orientation assignment, 4x4x8 descriptor grid with clipped
// renormalization — specialized to the single-channel layout rasters this
// framework feeds it. It replaces the OpenCV dependency of the original
// work; see DESIGN.md, substitution table row 5.
package sift

import (
	"math"
	"sort"

	"ldmo/internal/grid"
)

// Params configures the detector.
type Params struct {
	// Octaves is the number of pyramid octaves (each halves resolution).
	Octaves int
	// Scales is the number of DoG levels probed per octave.
	Scales int
	// SigmaBase is the blur of the first pyramid level, in pixels.
	SigmaBase float64
	// ContrastThreshold rejects weak DoG extrema.
	ContrastThreshold float64
}

// DefaultParams returns settings tuned for 128-ish-pixel binary layout
// rasters, where features are contact corners and edges.
func DefaultParams() Params {
	return Params{Octaves: 3, Scales: 3, SigmaBase: 1.6, ContrastThreshold: 0.015}
}

// DescriptorLen is the descriptor dimensionality (4x4 cells x 8 bins).
const DescriptorLen = 128

// Feature is one detected keypoint with its descriptor.
type Feature struct {
	X, Y        float64 // position in input-image pixels
	Scale       float64 // blur sigma at detection, in input-image pixels
	Orientation float64 // dominant gradient direction, radians
	Desc        [DescriptorLen]float64
}

// image is a minimal float plane for pyramid levels.
type image struct {
	w, h int
	pix  []float64
}

func newImage(w, h int) *image { return &image{w: w, h: h, pix: make([]float64, w*h)} }

func (im *image) at(x, y int) float64 {
	if x < 0 {
		x = 0
	} else if x >= im.w {
		x = im.w - 1
	}
	if y < 0 {
		y = 0
	} else if y >= im.h {
		y = im.h - 1
	}
	return im.pix[y*im.w+x]
}

// gaussianBlur returns im blurred with a separable Gaussian of the given
// sigma (clamp-to-edge boundary).
func gaussianBlur(im *image, sigma float64) *image {
	r := int(math.Ceil(3 * sigma))
	if r < 1 {
		r = 1
	}
	kern := make([]float64, 2*r+1)
	sum := 0.0
	for i := -r; i <= r; i++ {
		v := math.Exp(-float64(i*i) / (2 * sigma * sigma))
		kern[i+r] = v
		sum += v
	}
	for i := range kern {
		kern[i] /= sum
	}
	tmp := newImage(im.w, im.h)
	for y := 0; y < im.h; y++ {
		for x := 0; x < im.w; x++ {
			s := 0.0
			for i := -r; i <= r; i++ {
				s += kern[i+r] * im.at(x+i, y)
			}
			tmp.pix[y*im.w+x] = s
		}
	}
	out := newImage(im.w, im.h)
	for y := 0; y < im.h; y++ {
		for x := 0; x < im.w; x++ {
			s := 0.0
			for i := -r; i <= r; i++ {
				s += kern[i+r] * tmp.at(x, y+i)
			}
			out.pix[y*im.w+x] = s
		}
	}
	return out
}

// downsample halves the image by 2x2 averaging.
func downsample(im *image) *image {
	w, h := im.w/2, im.h/2
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := newImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			out.pix[y*w+x] = (im.at(2*x, 2*y) + im.at(2*x+1, 2*y) +
				im.at(2*x, 2*y+1) + im.at(2*x+1, 2*y+1)) / 4
		}
	}
	return out
}

// Detect finds keypoints and computes their descriptors.
func Detect(g *grid.Grid, p Params) []Feature {
	if p.Octaves <= 0 || p.Scales <= 0 {
		p = DefaultParams()
	}
	base := newImage(g.W, g.H)
	copy(base.pix, g.Data)

	var features []Feature
	oct := base
	for o := 0; o < p.Octaves && oct.w >= 16 && oct.h >= 16; o++ {
		k := math.Pow(2, 1/float64(p.Scales))
		nLevels := p.Scales + 3
		gauss := make([]*image, nLevels)
		sigmas := make([]float64, nLevels)
		for i := 0; i < nLevels; i++ {
			sigmas[i] = p.SigmaBase * math.Pow(k, float64(i))
			gauss[i] = gaussianBlur(oct, sigmas[i])
		}
		dog := make([]*image, nLevels-1)
		for i := range dog {
			d := newImage(oct.w, oct.h)
			for j := range d.pix {
				d.pix[j] = gauss[i+1].pix[j] - gauss[i].pix[j]
			}
			dog[i] = d
		}
		scaleFactor := math.Pow(2, float64(o))
		for lvl := 1; lvl < len(dog)-1; lvl++ {
			for y := 1; y < oct.h-1; y++ {
				for x := 1; x < oct.w-1; x++ {
					v := dog[lvl].at(x, y)
					if math.Abs(v) < p.ContrastThreshold {
						continue
					}
					if !isExtremum(dog, lvl, x, y, v) {
						continue
					}
					f := Feature{
						X:     float64(x) * scaleFactor,
						Y:     float64(y) * scaleFactor,
						Scale: sigmas[lvl] * scaleFactor,
					}
					f.Orientation = dominantOrientation(gauss[lvl], x, y, sigmas[lvl])
					buildDescriptor(gauss[lvl], x, y, sigmas[lvl], f.Orientation, &f.Desc)
					features = append(features, f)
				}
			}
		}
		oct = downsample(gauss[p.Scales])
	}
	return features
}

// isExtremum reports whether v is a strict min or max of its 3x3x3 DoG
// neighborhood.
func isExtremum(dog []*image, lvl, x, y int, v float64) bool {
	isMax, isMin := true, true
	for dl := -1; dl <= 1; dl++ {
		d := dog[lvl+dl]
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dl == 0 && dx == 0 && dy == 0 {
					continue
				}
				n := d.at(x+dx, y+dy)
				if n >= v {
					isMax = false
				}
				if n <= v {
					isMin = false
				}
				if !isMax && !isMin {
					return false
				}
			}
		}
	}
	return isMax || isMin
}

// dominantOrientation returns the peak of the 36-bin gradient-orientation
// histogram in a sigma-scaled window, Gaussian-weighted.
func dominantOrientation(im *image, x, y int, sigma float64) float64 {
	const bins = 36
	var hist [bins]float64
	r := int(math.Ceil(3 * sigma))
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			gx := im.at(x+dx+1, y+dy) - im.at(x+dx-1, y+dy)
			gy := im.at(x+dx, y+dy+1) - im.at(x+dx, y+dy-1)
			mag := math.Hypot(gx, gy)
			if mag == 0 {
				continue
			}
			w := math.Exp(-float64(dx*dx+dy*dy) / (2 * (1.5 * sigma) * (1.5 * sigma)))
			ang := math.Atan2(gy, gx) // [-pi, pi]
			bin := int((ang + math.Pi) / (2 * math.Pi) * bins)
			if bin >= bins {
				bin = bins - 1
			}
			hist[bin] += w * mag
		}
	}
	best := 0
	for i := 1; i < bins; i++ {
		if hist[i] > hist[best] {
			best = i
		}
	}
	return (float64(best)+0.5)/bins*2*math.Pi - math.Pi
}

// buildDescriptor fills the 4x4x8 gradient histogram sampled on a grid
// rotated to the keypoint orientation, then normalizes with the standard
// clip-at-0.2 renormalization.
func buildDescriptor(im *image, x, y int, sigma, orientation float64, desc *[DescriptorLen]float64) {
	for i := range desc {
		desc[i] = 0
	}
	cos, sin := math.Cos(-orientation), math.Sin(-orientation)
	cell := 2.0 * sigma // pixels per descriptor cell
	half := 2.0 * cell  // descriptor covers [-2,2) cells
	r := int(math.Ceil(half * math.Sqrt2))
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			// Rotate the offset into the keypoint frame.
			rx := cos*float64(dx) - sin*float64(dy)
			ry := sin*float64(dx) + cos*float64(dy)
			cx := rx/cell + 2 // cell coordinates in [0,4)
			cy := ry/cell + 2
			if cx < 0 || cx >= 4 || cy < 0 || cy >= 4 {
				continue
			}
			gx := im.at(x+dx+1, y+dy) - im.at(x+dx-1, y+dy)
			gy := im.at(x+dx, y+dy+1) - im.at(x+dx, y+dy-1)
			mag := math.Hypot(gx, gy)
			if mag == 0 {
				continue
			}
			ang := math.Atan2(gy, gx) - orientation
			for ang < -math.Pi {
				ang += 2 * math.Pi
			}
			for ang >= math.Pi {
				ang -= 2 * math.Pi
			}
			ob := int((ang + math.Pi) / (2 * math.Pi) * 8)
			if ob >= 8 {
				ob = 7
			}
			w := math.Exp(-(rx*rx + ry*ry) / (2 * half * half))
			idx := (int(cy)*4+int(cx))*8 + ob
			desc[idx] += w * mag
		}
	}
	normalizeDescriptor(desc)
}

func normalizeDescriptor(desc *[DescriptorLen]float64) {
	norm := 0.0
	for _, v := range desc {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	if norm < 1e-12 {
		return
	}
	for i := range desc {
		desc[i] /= norm
		if desc[i] > 0.2 {
			desc[i] = 0.2
		}
	}
	norm = 0
	for _, v := range desc {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	for i := range desc {
		desc[i] /= norm
	}
}

// Distance implements the paper's Eq. 7: the Euclidean descriptor distance
// when the features match (distance <= dth), otherwise the unit L2-norm 1.
func Distance(a, b *Feature, dth float64) float64 {
	s := 0.0
	for i := range a.Desc {
		d := a.Desc[i] - b.Desc[i]
		s += d * d
	}
	d := math.Sqrt(s)
	if d <= dth {
		return d
	}
	return 1
}

// LayoutSimilarity implements Algorithm 2: greedily match each feature of
// layout w to its nearest unmatched feature of layout s, record matched
// distances (1 for unmatched), sort ascending, and sum the first c values.
// Lower values mean more similar layouts.
func LayoutSimilarity(w, s []Feature, dth float64, c int) float64 {
	used := make([]bool, len(s))
	dws := make([]float64, 0, len(w))
	for i := range w {
		bestJ := -1
		bestSq := math.Inf(1)
		for j := range s {
			if used[j] {
				continue
			}
			// Raw squared descriptor distance decides the best
			// candidate, with early abandoning once the partial sum
			// exceeds the best so far (the clustering stage compares
			// thousands of pairs, and most are far apart).
			sum := 0.0
			desc := &s[j].Desc
			for k := 0; k < DescriptorLen; k += 8 {
				for m := k; m < k+8; m++ {
					d := w[i].Desc[m] - desc[m]
					sum += d * d
				}
				if sum >= bestSq {
					break
				}
			}
			if sum < bestSq {
				bestSq = sum
				bestJ = j
			}
		}
		best := math.Sqrt(bestSq)
		if bestJ >= 0 && best <= dth {
			used[bestJ] = true
			dws = append(dws, best)
		} else {
			dws = append(dws, 1)
		}
	}
	sort.Float64s(dws)
	n := min(c, len(dws))
	total := 0.0
	for i := 0; i < n; i++ {
		total += dws[i]
	}
	// Layouts with fewer than c features pad with the unmatched distance 1
	// so similarity values stay comparable across feature counts.
	total += float64(c - n)
	return total
}
