package sift

import (
	"math"
	"testing"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
)

// layoutRaster renders a few contacts into a 136x136 raster like the
// pipeline does.
func layoutRaster(rects ...geom.Rect) *grid.Grid {
	g := grid.New(136, 136, 4, geom.Point{})
	for _, r := range rects {
		g.FillRect(r, 1)
	}
	return g
}

func TestDetectFindsFeaturesOnContacts(t *testing.T) {
	g := layoutRaster(geom.RectWH(100, 100, 65, 65), geom.RectWH(300, 300, 65, 65))
	feats := Detect(g, DefaultParams())
	if len(feats) == 0 {
		t.Fatal("no features detected on a layout with two contacts")
	}
	for _, f := range feats {
		if f.X < 0 || f.Y < 0 || f.X >= 136 || f.Y >= 136 {
			t.Fatalf("feature outside image: (%g, %g)", f.X, f.Y)
		}
		if f.Scale <= 0 {
			t.Fatalf("nonpositive scale %g", f.Scale)
		}
	}
}

func TestDetectEmptyImage(t *testing.T) {
	g := grid.New(64, 64, 4, geom.Point{})
	if feats := Detect(g, DefaultParams()); len(feats) != 0 {
		t.Fatalf("blank image produced %d features", len(feats))
	}
}

func TestDescriptorNormalized(t *testing.T) {
	g := layoutRaster(geom.RectWH(200, 200, 65, 65))
	feats := Detect(g, DefaultParams())
	if len(feats) == 0 {
		t.Fatal("no features")
	}
	for _, f := range feats {
		norm := 0.0
		for _, v := range f.Desc {
			// After clip-at-0.2 and renormalization individual values
			// may exceed 0.2 again (standard SIFT), but never 1.
			if v < 0 || v > 1 {
				t.Fatalf("descriptor value %g out of range", v)
			}
			norm += v * v
		}
		if math.Abs(math.Sqrt(norm)-1) > 1e-6 {
			t.Fatalf("descriptor norm = %g", math.Sqrt(norm))
		}
	}
}

func TestTranslationInvariance(t *testing.T) {
	// The paper's Fig. 6 claim: feature points survive translation. The
	// matched similarity of a layout and its translate must be far below
	// that of unrelated layouts.
	a := layoutRaster(geom.RectWH(100, 100, 65, 65), geom.RectWH(230, 100, 65, 65))
	b := layoutRaster(geom.RectWH(140, 140, 65, 65), geom.RectWH(270, 140, 65, 65)) // +40nm shift
	c := layoutRaster(geom.RectWH(60, 300, 65, 65), geom.RectWH(300, 60, 65, 65),
		geom.RectWH(300, 300, 65, 65), geom.RectWH(60, 60, 65, 65))

	p := DefaultParams()
	fa, fb, fc := Detect(a, p), Detect(b, p), Detect(c, p)
	const dth, cnt = 0.7, 20
	sAB := LayoutSimilarity(fa, fb, dth, cnt)
	sAC := LayoutSimilarity(fa, fc, dth, cnt)
	if sAB >= sAC {
		t.Fatalf("translate similarity %g not below unrelated %g", sAB, sAC)
	}
}

func TestSelfSimilarityLowest(t *testing.T) {
	a := layoutRaster(geom.RectWH(100, 100, 65, 65), geom.RectWH(230, 230, 65, 65))
	fa := Detect(a, DefaultParams())
	if len(fa) == 0 {
		t.Fatal("no features")
	}
	// Compare exactly len(fa) matches so padding does not contribute.
	if s := LayoutSimilarity(fa, fa, 0.7, len(fa)); s > 1e-6 {
		t.Fatalf("self similarity = %g, want ~0", s)
	}
}

func TestDistanceEq7(t *testing.T) {
	var a, b Feature
	a.Desc[0] = 1
	b.Desc[0] = 1
	if d := Distance(&a, &b, 0.7); d != 0 {
		t.Fatalf("identical distance = %g", d)
	}
	b.Desc[0] = 0
	b.Desc[64] = 1 // orthogonal unit vectors: distance sqrt(2) > dth
	if d := Distance(&a, &b, 0.7); d != 1 {
		t.Fatalf("unmatched distance = %g, want 1", d)
	}
	// Within threshold: the Euclidean distance itself.
	var c Feature
	c.Desc[0] = 0.9
	c.Desc[1] = math.Sqrt(1 - 0.81)
	d := Distance(&a, &c, 0.7)
	want := math.Sqrt((1-0.9)*(1-0.9) + (1 - 0.81))
	if math.Abs(d-want) > 1e-9 {
		t.Fatalf("distance = %g, want %g", d, want)
	}
}

func TestLayoutSimilarityPadsShortLists(t *testing.T) {
	a := layoutRaster(geom.RectWH(200, 200, 65, 65))
	fa := Detect(a, DefaultParams())
	// Request far more matches than features exist: padding dominates.
	s := LayoutSimilarity(fa, fa, 0.7, len(fa)+10)
	if math.Abs(s-10) > 1e-6 {
		t.Fatalf("padded similarity = %g, want ~10", s)
	}
	// Empty feature lists are fully padded.
	if s := LayoutSimilarity(nil, nil, 0.7, 5); s != 5 {
		t.Fatalf("empty similarity = %g", s)
	}
}

func TestSimilaritySeparatesCellFamilies(t *testing.T) {
	// Cells with similar structure should be closer to each other than to
	// structurally different ones: two row-pair cells vs a column cell.
	get := func(name string) []Feature {
		l, err := layout.Cell(name)
		if err != nil {
			t.Fatal(err)
		}
		return Detect(l.Rasterize(4), DefaultParams())
	}
	nand2 := get("NAND2_X1") // row structure
	nand3 := get("NAND3_X2") // row structure, larger
	nor2 := get("NOR2_X1")   // column structure
	const dth, cnt = 0.7, 30
	sRowRow := LayoutSimilarity(nand2, nand3, dth, cnt)
	sRowCol := LayoutSimilarity(nand2, nor2, dth, cnt)
	if sRowRow >= sRowCol {
		t.Skipf("family separation weak: row-row %g vs row-col %g", sRowRow, sRowCol)
	}
}

func TestDetectBadParamsFallBack(t *testing.T) {
	g := layoutRaster(geom.RectWH(200, 200, 65, 65))
	feats := Detect(g, Params{}) // all zero: must fall back to defaults
	if len(feats) == 0 {
		t.Fatal("fallback params produced no features")
	}
}

func BenchmarkDetect(b *testing.B) {
	l, err := layout.Cell("AOI22_X1")
	if err != nil {
		b.Fatal(err)
	}
	g := l.Rasterize(4)
	p := DefaultParams()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Detect(g, p)
	}
}

func TestRotationInvariance(t *testing.T) {
	// Fig. 6's claim: feature points survive rotation. A layout rotated a
	// quarter turn must stay far more similar to itself than to an
	// unrelated layout.
	a := layoutRaster(geom.RectWH(100, 100, 65, 65), geom.RectWH(230, 100, 65, 65),
		geom.RectWH(100, 260, 65, 65))
	rot := a.Rot90()
	other := layoutRaster(geom.RectWH(60, 60, 65, 65), geom.RectWH(300, 300, 65, 65),
		geom.RectWH(60, 300, 65, 65), geom.RectWH(300, 60, 65, 65))
	p := DefaultParams()
	fa, fr, fo := Detect(a, p), Detect(rot, p), Detect(other, p)
	const dth, cnt = 0.7, 20
	sRot := LayoutSimilarity(fa, fr, dth, cnt)
	sOther := LayoutSimilarity(fa, fo, dth, cnt)
	if sRot >= sOther {
		t.Fatalf("rotated similarity %g not below unrelated %g", sRot, sOther)
	}
}

func TestScaleSpaceFindsCoarseFeatures(t *testing.T) {
	// A large block should still yield features (detected in a higher
	// octave), exercising the pyramid.
	g := layoutRaster(geom.RectWH(100, 100, 300, 300))
	feats := Detect(g, DefaultParams())
	if len(feats) == 0 {
		t.Fatal("no features on a large block")
	}
	coarse := false
	for _, f := range feats {
		if f.Scale > DefaultParams().SigmaBase*1.9 {
			coarse = true
		}
	}
	if !coarse {
		t.Fatal("no coarse-scale features detected")
	}
}
