package par

import (
	"errors"
	"sync"
	"testing"
)

// TestCoalescerBatchesWave: a wave of announced producers is served by one
// flush carrying every request, and each producer reads its own slot.
func TestCoalescerBatchesWave(t *testing.T) {
	c := NewCoalescer(0, func(reqs []int, resps []int) error {
		for i, r := range reqs {
			resps[i] = r * 10
		}
		return nil
	})
	const n = 8
	c.Expect(n)
	var wg sync.WaitGroup
	out := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = c.Do(i)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("Do(%d): %v", i, errs[i])
		}
		if out[i] != i*10 {
			t.Fatalf("Do(%d) = %d, want %d", i, out[i], i*10)
		}
	}
	s := c.Stats()
	if s.Flushes != 1 || s.Requests != n || s.MaxBatch != n {
		t.Fatalf("stats = %+v, want one flush of %d", s, n)
	}
}

// TestCoalescerForgoCompletesWave: producers that withdraw still release the
// batch; the flush carries only the submitted requests.
func TestCoalescerForgoCompletesWave(t *testing.T) {
	c := NewCoalescer(0, func(reqs []int, resps []int) error {
		copy(resps, reqs)
		return nil
	})
	c.Expect(3)
	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			v, _ := c.Do(i)
			done <- v
		}(i)
	}
	// Neither Do can complete until the third announced producer resolves.
	c.Forgo()
	got := map[int]bool{}
	for i := 0; i < 2; i++ {
		got[<-done] = true
	}
	if !got[0] || !got[1] {
		t.Fatalf("responses lost: %v", got)
	}
	if s := c.Stats(); s.Flushes != 1 || s.Requests != 2 {
		t.Fatalf("stats = %+v, want one flush of 2", s)
	}
}

// TestCoalescerBatchCap: a full batch flushes without waiting for the rest
// of the wave.
func TestCoalescerBatchCap(t *testing.T) {
	c := NewCoalescer(2, func(reqs []int, resps []int) error {
		copy(resps, reqs)
		return nil
	})
	c.Expect(3)
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			c.Do(i)
			done <- struct{}{}
		}(i)
	}
	// Two requests fill the cap and must flush even though a third producer
	// is still announced.
	<-done
	<-done
	if s := c.Stats(); s.Flushes != 1 || s.Requests != 2 {
		t.Fatalf("stats = %+v, want a capped flush of 2", s)
	}
	c.Forgo()
}

// TestCoalescerFlushErrorFailsBatch: a flush error is delivered to every
// waiter of that batch, and later batches recover.
func TestCoalescerFlushErrorFailsBatch(t *testing.T) {
	boom := errors.New("boom")
	fail := true
	c := NewCoalescer(0, func(reqs []int, resps []int) error {
		if fail {
			return boom
		}
		copy(resps, reqs)
		return nil
	})
	c.Expect(1)
	if _, err := c.Do(1); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	fail = false
	c.Expect(1)
	if v, err := c.Do(7); err != nil || v != 7 {
		t.Fatalf("recovered Do = %d, %v", v, err)
	}
}

// TestCoalescerUnannouncedDoFlushesAlone: Do without Expect degrades to an
// immediate single-request flush instead of deadlocking.
func TestCoalescerUnannouncedDoFlushesAlone(t *testing.T) {
	c := NewCoalescer(0, func(reqs []int, resps []int) error {
		copy(resps, reqs)
		return nil
	})
	if v, err := c.Do(3); err != nil || v != 3 {
		t.Fatalf("Do = %d, %v", v, err)
	}
	if s := c.Stats(); s.Flushes != 1 || s.MaxBatch != 1 {
		t.Fatalf("stats = %+v, want one flush of 1", s)
	}
}

// TestCoalescerWaveDuringFlushIsNotStranded: a wave that completes while a
// previous batch is mid-flush is picked up by the same flusher loop.
func TestCoalescerWaveDuringFlushIsNotStranded(t *testing.T) {
	inFlush := make(chan struct{})
	proceed := make(chan struct{})
	first := true
	c := NewCoalescer(0, func(reqs []int, resps []int) error {
		if first {
			first = false
			inFlush <- struct{}{}
			<-proceed
		}
		copy(resps, reqs)
		return nil
	})
	c.Expect(1)
	r1 := make(chan int)
	go func() { v, _ := c.Do(1); r1 <- v }()
	<-inFlush // flusher is parked inside flush #1
	c.Expect(1)
	r2 := make(chan int)
	go func() { v, _ := c.Do(2); r2 <- v }()
	close(proceed)
	if v := <-r1; v != 1 {
		t.Fatalf("first wave = %d", v)
	}
	if v := <-r2; v != 2 {
		t.Fatalf("second wave = %d", v)
	}
	if s := c.Stats(); s.Flushes != 2 || s.Requests != 2 {
		t.Fatalf("stats = %+v, want two flushes", s)
	}
}

// TestCoalescerSteadyStateAllocs is the CI alloc gate for the queue itself:
// after warmup, an announce/submit/flush cycle allocates nothing — batch
// buffers and generation records are recycled.
func TestCoalescerSteadyStateAllocs(t *testing.T) {
	c := NewCoalescer(0, func(reqs []int, resps []int) error {
		copy(resps, reqs)
		return nil
	})
	// Warm the free list and batch buffers.
	for i := 0; i < 4; i++ {
		c.Expect(1)
		c.Do(i)
	}
	avg := testing.AllocsPerRun(200, func() {
		c.Expect(1)
		if _, err := c.Do(5); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state coalescer cycle allocates %.1f objects, want 0", avg)
	}
}

// TestCoalescerForgoRacesFlush hammers the withdrawal path: submissions and
// withdrawals of one wave race freely (so a completing Forgo may run the
// flush while later Do calls queue into the next generation), and every
// submitted request must still read its own response. Run under -race this
// pins the lock discipline of Forgo-triggered flushes.
func TestCoalescerForgoRacesFlush(t *testing.T) {
	c := NewCoalescer(0, func(reqs []int, resps []int) error {
		for i, r := range reqs {
			resps[i] = r + 100
		}
		return nil
	})
	const rounds, n = 200, 8
	for round := 0; round < rounds; round++ {
		c.Expect(n)
		var wg sync.WaitGroup
		out := make([]int, n)
		errs := make([]error, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			if i%2 == 0 {
				go func(i int) {
					defer wg.Done()
					out[i], errs[i] = c.Do(i)
				}(i)
			} else {
				go func() {
					defer wg.Done()
					c.Forgo()
				}()
			}
		}
		wg.Wait()
		for i := 0; i < n; i += 2 {
			if errs[i] != nil {
				t.Fatalf("round %d: Do(%d) failed: %v", round, i, errs[i])
			}
			if out[i] != i+100 {
				t.Fatalf("round %d: Do(%d) read %d — a racing Forgo crossed responses", round, i, out[i])
			}
		}
	}
	if s := c.Stats(); s.Requests != rounds*n/2 {
		t.Fatalf("served %d requests, want %d", s.Requests, rounds*n/2)
	}
}

// TestCoalescerGenerationRecycledAfterDrainedWave pins the recycling
// contract: once the last waiter of a wave has read its slot, the generation
// record returns to the free list fully reset, and the next wave flushes
// from that recycled record instead of allocating a fresh one.
func TestCoalescerGenerationRecycledAfterDrainedWave(t *testing.T) {
	c := NewCoalescer(0, func(reqs []int, resps []int) error {
		copy(resps, reqs)
		return nil
	})
	wave := func(n int) {
		c.Expect(n)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if v, err := c.Do(i); err != nil || v != i {
					t.Errorf("Do(%d) = %d, %v", i, v, err)
				}
			}(i)
		}
		wg.Wait()
	}

	wave(4)
	c.mu.Lock()
	if len(c.free) != 1 {
		c.mu.Unlock()
		t.Fatalf("drained wave left %d free generations, want 1", len(c.free))
	}
	gen := c.free[0]
	if len(gen.reqs) != 0 || len(gen.resps) != 0 || gen.done || gen.readers != 0 || gen.err != nil {
		c.mu.Unlock()
		t.Fatalf("recycled generation not reset: %+v", gen)
	}
	c.mu.Unlock()

	// The next wave must reuse the recycled record as its accumulating
	// generation (popped from the free list at flush time) — the free list
	// does not grow and the recycled pointer is live again.
	wave(4)
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.free) != 1 {
		t.Fatalf("second wave grew the free list to %d, want 1 (generation not recycled)", len(c.free))
	}
	if c.cur != gen {
		t.Fatal("second wave allocated a fresh generation instead of reusing the drained one")
	}
}
