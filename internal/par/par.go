// Package par is the framework's parallel execution layer: a bounded worker
// pool with an ordered Map primitive. Every hot loop that fans out — per-kernel
// SOCS convolutions, per-candidate ILT runs, training-set labeling, predictor
// batch sharding — goes through this package so parallelism policy (worker
// count, env override, nesting) lives in one place.
//
// Determinism is the design constraint: Map runs fn(i) for every i exactly
// once, each i writing only into its own slot of the caller's output, and the
// caller reduces in fixed index order afterwards. Because every fn(i) is
// itself deterministic and independent, the result is byte-identical to the
// serial loop `for i := 0; i < n; i++ { fn(i) }` regardless of worker count
// or scheduling.
package par

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable that overrides the default worker
// count. Invalid or non-positive values are ignored.
const EnvWorkers = "LDMO_WORKERS"

// Workers returns the default pool size: the value of LDMO_WORKERS when set
// to a positive integer, otherwise runtime.GOMAXPROCS(0).
func Workers() int {
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a bounded worker pool. The zero value is not usable; construct with
// NewPool. A Pool is stateless between Map calls and safe for concurrent use.
type Pool struct {
	size int
}

// NewPool returns a pool of n workers; n <= 0 selects Workers().
func NewPool(n int) *Pool {
	if n <= 0 {
		n = Workers()
	}
	return &Pool{size: n}
}

// Size returns the configured worker count.
func (p *Pool) Size() int { return p.size }

// Map runs fn(worker, i) for every i in [0, n) across at most Size() workers
// and returns once all calls have completed. worker identifies which of the
// pool's lanes is executing (0 <= worker < min(Size(), n)), so callers can
// hand each lane its own single-goroutine resources (a Simulator, a Plan, an
// Optimizer) built once before the call.
//
// Items are claimed dynamically, so lane assignment is nondeterministic —
// per-worker resources must be interchangeable replicas. Output determinism
// is the caller's contract: fn(i) writes only to slot i of its results, and
// any reduction happens in index order after Map returns.
//
// With one worker (or n <= 1) Map degenerates to the serial loop on the
// calling goroutine. A panic in any fn is re-raised on the caller.
func (p *Pool) Map(n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := p.size
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		pmu      sync.Mutex
		panicked any
	)
	for lane := 0; lane < w; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if panicked == nil {
						panicked = r
					}
					pmu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(lane, i)
			}
		}(lane)
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("par: worker panicked: %v", panicked))
	}
}

// MapSlice runs fn across the pool and collects out[i] = fn(worker, i),
// preserving index order. It is the common "gather" form of Map.
func MapSlice[T any](p *Pool, n int, fn func(worker, i int) T) []T {
	out := make([]T, n)
	p.Map(n, func(worker, i int) {
		out[i] = fn(worker, i)
	})
	return out
}
