// Package par is the framework's parallel execution layer: a bounded worker
// pool with an ordered Map primitive. Every hot loop that fans out — per-kernel
// SOCS convolutions, per-candidate ILT runs, training-set labeling, predictor
// batch sharding — goes through this package so parallelism policy (worker
// count, env override, nesting) lives in one place.
//
// Determinism is the design constraint: Map runs fn(i) for every i exactly
// once, each i writing only into its own slot of the caller's output, and the
// caller reduces in fixed index order afterwards. Because every fn(i) is
// itself deterministic and independent, the result is byte-identical to the
// serial loop `for i := 0; i < n; i++ { fn(i) }` regardless of worker count
// or scheduling.
//
// MapCtx extends the contract to cancellation: workers stop claiming items
// once the context is done, every claimed item still completes, and because
// items are claimed in increasing order the completed set is exactly a
// prefix [0, done) — the ordered-reduction determinism holds over it.
package par

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ldmo/internal/faultinject"
	"ldmo/internal/runx"
)

// EnvWorkers is the environment variable that overrides the default worker
// count. An invalid or non-positive value falls back to GOMAXPROCS with a
// one-time warning on stderr.
const EnvWorkers = "LDMO_WORKERS"

// warnOnce/warnWriter gate the one-time invalid-LDMO_WORKERS warning; tests
// substitute both.
var (
	warnOnce   sync.Once
	warnWriter io.Writer = os.Stderr
)

// Workers returns the default pool size: the value of LDMO_WORKERS when set
// to a positive integer, otherwise runtime.GOMAXPROCS(0).
func Workers() int {
	return workersFrom(os.Getenv(EnvWorkers), &warnOnce)
}

// workersFrom parses an EnvWorkers value, warning (at most once per `once`)
// when a non-empty value is unusable so a mistyped override does not
// silently serialize or misconfigure a production run.
func workersFrom(v string, once *sync.Once) int {
	fallback := runtime.GOMAXPROCS(0)
	if v == "" {
		return fallback
	}
	n, err := strconv.Atoi(v)
	if err == nil && n > 0 {
		return n
	}
	once.Do(func() {
		fmt.Fprintf(warnWriter, "par: ignoring invalid %s=%q; using GOMAXPROCS=%d\n",
			EnvWorkers, v, fallback)
	})
	return fallback
}

// Pool is a bounded worker pool. The zero value is not usable; construct with
// NewPool. A Pool is stateless between Map calls and safe for concurrent use.
type Pool struct {
	size int
}

// NewPool returns a pool of n workers; n <= 0 selects Workers().
func NewPool(n int) *Pool {
	if n <= 0 {
		n = Workers()
	}
	return &Pool{size: n}
}

// Size returns the configured worker count.
func (p *Pool) Size() int { return p.size }

// Map runs fn(worker, i) for every i in [0, n) across at most Size() workers
// and returns once all calls have completed. worker identifies which of the
// pool's lanes is executing (0 <= worker < min(Size(), n)), so callers can
// hand each lane its own single-goroutine resources (a Simulator, a Plan, an
// Optimizer) built once before the call.
//
// Items are claimed dynamically, so lane assignment is nondeterministic —
// per-worker resources must be interchangeable replicas. Output determinism
// is the caller's contract: fn(i) writes only to slot i of its results, and
// any reduction happens in index order after Map returns.
//
// With one worker (or n <= 1) Map degenerates to the serial loop on the
// calling goroutine. A panic in any fn is re-raised on the caller as a
// *runx.PanicError carrying the original panic value and the worker's stack.
func (p *Pool) Map(n int, fn func(worker, i int)) {
	p.mapCtx(nil, n, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, workers
// stop claiming new items (items already claimed run to completion — fn is
// never abandoned mid-flight). It returns done, the completed-prefix length:
// every i < done has run exactly once, no i >= done has run, and the
// caller's ordered reduction over [0, done) is byte-identical to a serial
// loop stopped at done. err is ctx.Err() when the run was cut short, nil
// when all n items completed.
func (p *Pool) MapCtx(ctx context.Context, n int, fn func(worker, i int)) (done int, err error) {
	return p.mapCtx(ctx, n, fn)
}

func (p *Pool) mapCtx(ctx context.Context, n int, fn func(worker, i int)) (int, error) {
	if n <= 0 {
		return 0, ctxErr(ctx)
	}
	// A context without a Done channel can never be cancelled; drop it so
	// the hot loop pays nothing.
	if ctx != nil && ctx.Done() == nil {
		ctx = nil
	}
	w := p.size
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return i, ctx.Err()
			}
			stallPoint(i)
			fn(0, i)
		}
		return n, ctxErr(ctx)
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		pmu      sync.Mutex
		panicked *runx.PanicError
	)
	for lane := 0; lane < w; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pe := runx.NewPanicError(r)
					pmu.Lock()
					if panicked == nil {
						panicked = pe
					}
					pmu.Unlock()
				}
			}()
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				stallPoint(i)
				fn(lane, i)
			}
		}(lane)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	claimed := int(next.Load())
	if claimed > n {
		claimed = n
	}
	if claimed < n {
		return claimed, ctx.Err()
	}
	return n, ctxErr(ctx)
}

// ctxErr is ctx.Err() tolerant of the nil context used internally.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// stallPoint is the worker-stall fault injection site: when armed, the
// worker about to run item Arg (default 0) sleeps long enough for a
// cancellation or timeout to land mid-Map. Disarmed cost: one atomic load.
func stallPoint(i int) {
	if !faultinject.Enabled(faultinject.WorkerStall) {
		return
	}
	if i == faultinject.ArgInt(faultinject.WorkerStall, 0) {
		time.Sleep(25 * time.Millisecond)
	}
}

// MapSlice runs fn across the pool and collects out[i] = fn(worker, i),
// preserving index order. It is the common "gather" form of Map.
func MapSlice[T any](p *Pool, n int, fn func(worker, i int) T) []T {
	out := make([]T, n)
	p.Map(n, func(worker, i int) {
		out[i] = fn(worker, i)
	})
	return out
}
