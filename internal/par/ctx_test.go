package par

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ldmo/internal/faultinject"
)

// TestMapCtxCompletesAll: an un-cancelled context behaves exactly like Map.
func TestMapCtxCompletesAll(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 4} {
		var counts [n]atomic.Int32
		done, err := NewPool(workers).MapCtx(context.Background(), n, func(_, i int) {
			counts[i].Add(1)
		})
		if err != nil || done != n {
			t.Fatalf("workers=%d: done=%d err=%v, want %d nil", workers, done, err, n)
		}
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, counts[i].Load())
			}
		}
	}
}

// TestMapCtxCancelledUpFront: a dead context runs nothing and reports it.
func TestMapCtxCancelledUpFront(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		ran := atomic.Int32{}
		done, err := NewPool(workers).MapCtx(ctx, 50, func(_, _ int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		// Workers may claim at most a handful of items before observing
		// cancellation; with the check before every claim, none should run.
		if done != 0 || ran.Load() != 0 {
			t.Fatalf("workers=%d: done=%d ran=%d, want 0", workers, done, ran.Load())
		}
	}
}

// TestMapCtxPrefixContract: cancelling mid-run yields a completed prefix —
// every index below done ran exactly once, nothing at or above done ran.
func TestMapCtxPrefixContract(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 3, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		var counts [n]atomic.Int32
		var fired atomic.Bool
		done, err := NewPool(workers).MapCtx(ctx, n, func(_, i int) {
			counts[i].Add(1)
			if i >= 40 && fired.CompareAndSwap(false, true) {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want Canceled", workers, err)
		}
		if done <= 0 || done >= n {
			t.Fatalf("workers=%d: done = %d, want a strict prefix", workers, done)
		}
		for i := 0; i < n; i++ {
			c := counts[i].Load()
			switch {
			case i < done && c != 1:
				t.Fatalf("workers=%d: prefix index %d ran %d times", workers, i, c)
			case i >= done && c != 0:
				t.Fatalf("workers=%d: index %d beyond done=%d ran", workers, i, done)
			}
		}
	}
}

// TestMapCtxDeadlineWithStalledWorker: the worker-stall fault point holds an
// item long enough for a deadline to expire; the pool must stop claiming and
// report the prefix instead of hanging.
func TestMapCtxDeadlineWithStalledWorker(t *testing.T) {
	defer faultinject.Reset()

	// Serial path: items 0..9 run, the stall before item 10 outlives the
	// deadline, item 10 itself still completes (claimed items are never
	// abandoned), then the loop observes the expired context.
	faultinject.Set(faultinject.WorkerStall, "10")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	const n = 100
	done, err := NewPool(1).MapCtx(ctx, n, func(_, i int) {})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("serial: err = %v, want DeadlineExceeded", err)
	}
	if done != 11 {
		t.Fatalf("serial: done = %d, want 11 (stalled item still completes)", done)
	}

	// Parallel path: one lane stalls on item 0 while the others burn
	// through slow items until the deadline; the pool must return the
	// completed prefix promptly instead of draining all n items.
	faultinject.Set(faultinject.WorkerStall, "0")
	pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer pcancel()
	const pn = 100000
	start := time.Now()
	pdone, perr := NewPool(4).MapCtx(pctx, pn, func(_, i int) {
		time.Sleep(100 * time.Microsecond)
	})
	if !errors.Is(perr, context.DeadlineExceeded) {
		t.Fatalf("parallel: err = %v, want DeadlineExceeded", perr)
	}
	if pdone <= 0 || pdone >= pn {
		t.Fatalf("parallel: done = %d, want a strict prefix", pdone)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("parallel: MapCtx took %v; cancellation did not stop the claim loop", elapsed)
	}
}

// TestMapCtxNilContext: nil context degrades to Map semantics.
func TestMapCtxNilContext(t *testing.T) {
	done, err := NewPool(4).MapCtx(nil, 10, func(_, _ int) {})
	if done != 10 || err != nil {
		t.Fatalf("done=%d err=%v, want 10 nil", done, err)
	}
}
