// Coalescer is the framework's request-coalescing queue: many producer
// goroutines block in Do, their requests accumulate, and one flush call
// services the whole accumulated batch. The pipelined flow scheduler uses it
// to merge the per-layout CNN-prediction requests of every in-flight layout
// into one large PredictBatch call, amortizing GEMM setup even on one core.
//
// The flush trigger is supply-driven: producers are announced with Expect
// before they start, and the batch flushes exactly when every announced
// producer has either submitted (Do) or withdrawn (Forgo) — or when the
// batch cap is reached. The flush runs on the goroutine whose Do/Forgo
// completed the batch, so the queue needs no goroutine of its own and adds
// nothing to the process's steady-state goroutine count.
//
// Responses are positional: flush(reqs, resps) must fill resps[i] with the
// answer to reqs[i]. Because each Do call's result depends only on its own
// request (never on its batchmates), batch composition is a pure scheduling
// artifact — callers get bitwise-identical answers at any coalescing
// granularity. That invariance is what lets the pipelined flow preserve the
// serial==parallel contract while batching across layouts.
package par

import "sync"

// CoalesceStats counts the queue's amortization at a point in time.
type CoalesceStats struct {
	// Flushes is the number of flush calls issued; Requests the total Do
	// calls they served. Requests/Flushes is the achieved batching factor.
	Flushes  int
	Requests int
	// MaxBatch is the largest single flush.
	MaxBatch int
}

// coalesceGen is one batch generation: requests accumulate into it until the
// flush trigger fires, then every waiter of the generation reads its slot.
// Generations are recycled once their last waiter has left, so steady-state
// Do calls touch only previously-allocated memory.
type coalesceGen[Req, Resp any] struct {
	reqs    []Req
	resps   []Resp
	err     error
	done    bool
	readers int
}

// Coalescer batches blocking requests; see the package comment above. The
// zero value is not usable, construct with NewCoalescer. All methods are
// safe for concurrent use.
type Coalescer[Req, Resp any] struct {
	mu   sync.Mutex
	cond *sync.Cond

	flush    func(reqs []Req, resps []Resp) error
	maxBatch int

	expected int // announced producers that have not submitted or withdrawn
	cur      *coalesceGen[Req, Resp]
	free     []*coalesceGen[Req, Resp]
	flushing bool

	stats CoalesceStats
}

// NewCoalescer builds a coalescer around a flush function. flush receives
// the batched requests and a response slice of equal length to fill;
// returning an error fails every request of the batch with that error.
// maxBatch bounds how many requests one flush may carry (<= 0 means
// unbounded): a full batch flushes immediately without waiting for the
// remaining announced producers.
func NewCoalescer[Req, Resp any](maxBatch int, flush func(reqs []Req, resps []Resp) error) *Coalescer[Req, Resp] {
	c := &Coalescer[Req, Resp]{flush: flush, maxBatch: maxBatch}
	c.cond = sync.NewCond(&c.mu)
	c.cur = &coalesceGen[Req, Resp]{}
	return c
}

// Expect announces n upcoming Do or Forgo calls. The current batch will not
// flush while announced calls are outstanding (unless it hits the cap), so
// callers announce work as they dispatch it and the queue waits for the
// whole wave before issuing one flush.
func (c *Coalescer[Req, Resp]) Expect(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.expected += n
	c.mu.Unlock()
}

// Forgo withdraws one announced call that will not arrive (the producer was
// cancelled, or turned out to have nothing to ask). If that withdrawal
// completes the wave, the pending batch flushes on this goroutine.
func (c *Coalescer[Req, Resp]) Forgo() {
	c.mu.Lock()
	c.expected--
	c.runFlushes()
	c.mu.Unlock()
}

// Do submits one request and blocks until its batch has been flushed,
// returning this request's response and the batch error, if any. Each Do
// consumes one Expect announcement; a Do without a prior Expect flushes
// immediately (a batch of whatever is queued). Steady-state Do calls perform
// no allocation: batch buffers and generation records are recycled.
func (c *Coalescer[Req, Resp]) Do(req Req) (Resp, error) {
	c.mu.Lock()
	gen := c.cur
	idx := len(gen.reqs)
	gen.reqs = append(gen.reqs, req)
	gen.readers++
	c.expected--
	c.runFlushes()
	for !gen.done {
		c.cond.Wait()
	}
	resp := gen.resps[idx]
	err := gen.err
	c.release(gen)
	c.mu.Unlock()
	return resp, err
}

// release returns a fully-read generation to the free list.
func (c *Coalescer[Req, Resp]) release(gen *coalesceGen[Req, Resp]) {
	gen.readers--
	if gen.readers == 0 && gen.done {
		gen.reqs = gen.reqs[:0]
		gen.resps = gen.resps[:0]
		gen.err = nil
		gen.done = false
		c.free = append(c.free, gen)
	}
}

// ready reports whether the current batch should flush now: a non-empty
// queue with no announced producers outstanding, or a full batch. Callers
// hold c.mu.
func (c *Coalescer[Req, Resp]) ready() bool {
	if len(c.cur.reqs) == 0 {
		return false
	}
	if c.maxBatch > 0 && len(c.cur.reqs) >= c.maxBatch {
		return true
	}
	return c.expected <= 0
}

// runFlushes drains ready batches on the calling goroutine. Only one
// goroutine flushes at a time (the flush itself runs unlocked, so producers
// keep queueing into the next generation meanwhile); after each flush the
// trigger is re-evaluated, so a wave that completed during the flush is not
// stranded. Callers hold c.mu.
func (c *Coalescer[Req, Resp]) runFlushes() {
	if c.flushing {
		return
	}
	c.flushing = true
	for c.ready() {
		gen := c.cur
		if n := len(c.free); n > 0 {
			c.cur = c.free[n-1]
			c.free = c.free[:n-1]
		} else {
			c.cur = &coalesceGen[Req, Resp]{}
		}
		c.stats.Flushes++
		c.stats.Requests += len(gen.reqs)
		if len(gen.reqs) > c.stats.MaxBatch {
			c.stats.MaxBatch = len(gen.reqs)
		}
		for len(gen.resps) < len(gen.reqs) {
			var zero Resp
			gen.resps = append(gen.resps, zero)
		}
		c.mu.Unlock()
		err := c.flush(gen.reqs, gen.resps)
		c.mu.Lock()
		gen.err = err
		gen.done = true
		// Every queued request has a Do waiter still registered (readers > 0),
		// so the generation is recycled by its last reader, not here.
		c.cond.Broadcast()
	}
	c.flushing = false
}

// Stats returns a snapshot of the amortization counters.
func (c *Coalescer[Req, Resp]) Stats() CoalesceStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
