package par

import (
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	t.Setenv(EnvWorkers, "")
	os.Unsetenv(EnvWorkers)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv(EnvWorkers, "7")
	if got := Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7 from env", got)
	}
	for _, bad := range []string{"0", "-2", "three", "2.5"} {
		t.Setenv(EnvWorkers, bad)
		if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
			t.Fatalf("Workers() with %s=%q = %d, want fallback %d", EnvWorkers, bad, got, want)
		}
	}
}

func TestNewPoolDefaults(t *testing.T) {
	t.Setenv(EnvWorkers, "5")
	if got := NewPool(0).Size(); got != 5 {
		t.Fatalf("NewPool(0).Size() = %d, want env 5", got)
	}
	if got := NewPool(3).Size(); got != 3 {
		t.Fatalf("NewPool(3).Size() = %d, want 3", got)
	}
}

// TestMapMatchesSerial checks the contract: fn(i) into slot i equals the
// serial loop, at several worker counts including more workers than items.
func TestMapMatchesSerial(t *testing.T) {
	const n = 137
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 3, 8, 200} {
		got := MapSlice(NewPool(workers), n, func(_, i int) int { return i * i })
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapEachOnce verifies every index runs exactly once.
func TestMapEachOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	NewPool(8).Map(n, func(_, i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestMapLaneBounds verifies the worker index stays within
// [0, min(size, n)) so callers can index per-lane resources.
func TestMapLaneBounds(t *testing.T) {
	const n, workers = 50, 4
	var bad atomic.Int32
	NewPool(workers).Map(n, func(lane, _ int) {
		if lane < 0 || lane >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker lane out of bounds")
	}
	// More workers than items: lanes must stay below the item count, since
	// callers size per-lane resources as min(Size(), n).
	NewPool(16).Map(3, func(lane, _ int) {
		if lane >= 3 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker lane exceeded item count")
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	ran := false
	p := NewPool(4)
	p.Map(0, func(_, _ int) { ran = true })
	p.Map(-3, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic payload %v lost the cause", r)
		}
	}()
	NewPool(4).Map(16, func(_, i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

func TestMapSerialFastPathPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on serial path")
		}
	}()
	NewPool(1).Map(4, func(_, i int) { panic("serial boom") })
}
