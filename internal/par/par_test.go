package par

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ldmo/internal/runx"
)

func TestWorkersDefault(t *testing.T) {
	t.Setenv(EnvWorkers, "")
	os.Unsetenv(EnvWorkers)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
}

func TestWorkersEnvOverride(t *testing.T) {
	t.Setenv(EnvWorkers, "7")
	if got := Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want 7 from env", got)
	}
	for _, bad := range []string{"0", "-2", "three", "2.5"} {
		t.Setenv(EnvWorkers, bad)
		if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
			t.Fatalf("Workers() with %s=%q = %d, want fallback %d", EnvWorkers, bad, got, want)
		}
	}
}

func TestNewPoolDefaults(t *testing.T) {
	t.Setenv(EnvWorkers, "5")
	if got := NewPool(0).Size(); got != 5 {
		t.Fatalf("NewPool(0).Size() = %d, want env 5", got)
	}
	if got := NewPool(3).Size(); got != 3 {
		t.Fatalf("NewPool(3).Size() = %d, want 3", got)
	}
}

// TestMapMatchesSerial checks the contract: fn(i) into slot i equals the
// serial loop, at several worker counts including more workers than items.
func TestMapMatchesSerial(t *testing.T) {
	const n = 137
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 2, 3, 8, 200} {
		got := MapSlice(NewPool(workers), n, func(_, i int) int { return i * i })
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapEachOnce verifies every index runs exactly once.
func TestMapEachOnce(t *testing.T) {
	const n = 1000
	var counts [n]atomic.Int32
	NewPool(8).Map(n, func(_, i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestMapLaneBounds verifies the worker index stays within
// [0, min(size, n)) so callers can index per-lane resources.
func TestMapLaneBounds(t *testing.T) {
	const n, workers = 50, 4
	var bad atomic.Int32
	NewPool(workers).Map(n, func(lane, _ int) {
		if lane < 0 || lane >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker lane out of bounds")
	}
	// More workers than items: lanes must stay below the item count, since
	// callers size per-lane resources as min(Size(), n).
	NewPool(16).Map(3, func(lane, _ int) {
		if lane >= 3 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker lane exceeded item count")
	}
}

func TestMapZeroAndNegative(t *testing.T) {
	ran := false
	p := NewPool(4)
	p.Map(0, func(_, _ int) { ran = true })
	p.Map(-3, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("fn ran for n <= 0")
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		// The re-raised panic must preserve both the original payload and
		// the panicking worker's stack (the old fmt.Sprintf re-raise
		// destroyed both).
		pe, ok := r.(*runx.PanicError)
		if !ok {
			t.Fatalf("panic payload %T is not a *runx.PanicError", r)
		}
		if pe.Value != "boom" {
			t.Fatalf("original panic value lost: %v", pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "par_test") {
			t.Fatalf("worker stack lost:\n%s", pe.Stack)
		}
		if !strings.Contains(fmt.Sprint(pe), "boom") {
			t.Fatalf("panic message %v hides the cause", pe)
		}
	}()
	NewPool(4).Map(16, func(_, i int) {
		if i == 7 {
			panic("boom")
		}
	})
}

// TestWorkersInvalidWarnsOnce checks that a bad LDMO_WORKERS value is
// reported (naming the value and the fallback) exactly once per process.
func TestWorkersInvalidWarnsOnce(t *testing.T) {
	var buf bytes.Buffer
	old := warnWriter
	warnWriter = &buf
	defer func() { warnWriter = old }()

	var once sync.Once
	want := runtime.GOMAXPROCS(0)
	for i := 0; i < 3; i++ {
		if got := workersFrom("three", &once); got != want {
			t.Fatalf("workersFrom(invalid) = %d, want fallback %d", got, want)
		}
	}
	out := buf.String()
	if strings.Count(out, "ignoring invalid") != 1 {
		t.Fatalf("want exactly one warning, got:\n%s", out)
	}
	if !strings.Contains(out, `"three"`) || !strings.Contains(out, EnvWorkers) ||
		!strings.Contains(out, fmt.Sprintf("GOMAXPROCS=%d", want)) {
		t.Fatalf("warning must name the bad value and the fallback, got:\n%s", out)
	}

	// Valid and empty values never warn.
	buf.Reset()
	var once2 sync.Once
	if got := workersFrom("6", &once2); got != 6 {
		t.Fatalf("workersFrom(6) = %d", got)
	}
	if got := workersFrom("", &once2); got != want {
		t.Fatalf("workersFrom(empty) = %d, want %d", got, want)
	}
	if buf.Len() != 0 {
		t.Fatalf("unexpected warning: %s", buf.String())
	}
}

func TestMapSerialFastPathPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on serial path")
		}
	}()
	NewPool(1).Map(4, func(_, i int) { panic("serial boom") })
}
