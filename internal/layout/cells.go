package layout

import (
	"fmt"
	"sort"

	"ldmo/internal/geom"
)

// Geometry of the synthetic standard-cell tile. Contacts are 65nm squares
// (the NanGate FreePDK45 contact size) on an asymmetric pitch chosen so the
// slot grid exercises all three of the paper's interaction bands:
//
//   - column pitch 130nm -> 65nm horizontal gaps: SP pairs (<= nmin = 80),
//     which a legal decomposition must separate;
//   - row pitch 160nm -> 95nm vertical gaps: VP pairs (80 < d <= 98 = nmax),
//     printable on one mask but with visible proximity distortion;
//   - diagonal neighbors sit at ~115nm and two-apart slots at >= 195nm: NP.
//
// Same-row runs of contacts therefore form the SP conflict components whose
// MSTs anchor decomposition generation, lone contacts above/below a run are
// the VP free factors, and isolated corners are NP factors.
const (
	// TileNM is the edge of the simulation window in nanometers.
	TileNM = 544
	// ContactNM is the contact edge length in nanometers.
	ContactNM = 65
	// SlotOriginNM is the origin of slot column/row 0.
	SlotOriginNM = 66
	// SlotPitchXNM is the column pitch in nanometers.
	SlotPitchXNM = 130
	// SlotPitchYNM is the row pitch in nanometers.
	SlotPitchYNM = 160
)

// slot places a contact at grid slot (c, r) with an optional nudge.
type slot struct {
	c, r   int
	dx, dy int
}

func slotRect(s slot) geom.Rect {
	x := SlotOriginNM + SlotPitchXNM*s.c + s.dx
	y := SlotOriginNM + SlotPitchYNM*s.r + s.dy
	return geom.RectWH(x, y, ContactNM, ContactNM)
}

func cellFromSlots(name string, slots []slot) Layout {
	l := Layout{
		Name:   name,
		Window: geom.RectWH(0, 0, TileNM, TileNM),
	}
	for _, s := range slots {
		l.Patterns = append(l.Patterns, slotRect(s))
	}
	return l
}

// cellDefs is the 13-cell synthetic library backing Table I, in ID order.
// The three cells the paper's Fig. 7 names — BUF_X1, NAND3_X2, AOI211_X1 —
// are among them. Pattern counts and decomposition-candidate richness grow
// roughly with the ID, mirroring the difficulty spread of the paper's suite.
var cellDefs = []struct {
	name  string
	slots []slot
}{
	{"BUF_X1", []slot{{c: 0, r: 1}, {c: 1, r: 1}, {c: 2, r: 0}, {c: 2, r: 2}}},
	{"INV_X1", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 1, r: 1}}},
	{"NAND2_X1", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 2, r: 0}, {c: 0, r: 1}, {c: 1, r: 1}}},
	{"NOR2_X1", []slot{{c: 0, r: 0}, {c: 0, r: 1}, {c: 0, r: 2}, {c: 2, r: 0}, {c: 2, r: 1}}},
	{"OAI21_X1", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 0, r: 1}, {c: 2, r: 1}, {c: 1, r: 2}, {c: 2, r: 2}}},
	{"NAND3_X2", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 2, r: 0}, {c: 1, r: 1}, {c: 0, r: 2}, {c: 1, r: 2}, {c: 2, r: 2}}},
	{"AOI21_X1", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 0, r: 2}, {c: 1, r: 2}, {c: 2, r: 1}, {c: 0, r: 1}}},
	{"AOI211_X1", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 2, r: 0}, {c: 0, r: 1}, {c: 2, r: 1}, {c: 0, r: 2}, {c: 1, r: 2}, {c: 2, r: 2}}},
	{"OAI211_X1", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 2, r: 0}, {c: 1, r: 1}, {c: 2, r: 1}, {c: 0, r: 2}, {c: 1, r: 2}, {c: 2, r: 2}}},
	{"AOI22_X1", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 2, r: 0}, {c: 0, r: 1}, {c: 1, r: 1}, {c: 2, r: 1}, {c: 0, r: 2}, {c: 1, r: 2}, {c: 2, r: 2}}},
	{"NOR3_X1", []slot{{c: 0, r: 0}, {c: 0, r: 1}, {c: 0, r: 2}, {c: 1, r: 1}, {c: 2, r: 0}, {c: 2, r: 1}, {c: 2, r: 2}}},
	{"OAI22_X1", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 2, r: 0}, {c: 0, r: 1}, {c: 1, r: 1}, {c: 0, r: 2}, {c: 1, r: 2}, {c: 2, r: 2}}},
	{"DFF_X1", []slot{{c: 0, r: 0}, {c: 1, r: 0}, {c: 2, r: 0}, {c: 0, r: 1}, {c: 2, r: 1}, {c: 0, r: 2}, {c: 1, r: 2}, {c: 2, r: 2, dx: 20}, {c: 1, r: 1, dx: 20}}},
}

// Cell returns the named library cell, or an error listing the known names.
func Cell(name string) (Layout, error) {
	for _, def := range cellDefs {
		if def.name == name {
			return cellFromSlots(def.name, def.slots), nil
		}
	}
	return Layout{}, fmt.Errorf("layout: unknown cell %q (known: %v)", name, CellNames())
}

// Cells returns the full 13-cell library in Table I order (IDs 1-13).
func Cells() []Layout {
	out := make([]Layout, len(cellDefs))
	for i, def := range cellDefs {
		out[i] = cellFromSlots(def.name, def.slots)
	}
	return out
}

// CellNames returns the library cell names in Table I order.
func CellNames() []string {
	out := make([]string, len(cellDefs))
	for i, def := range cellDefs {
		out[i] = def.name
	}
	return out
}

// SortedCellNames returns the library cell names sorted alphabetically.
func SortedCellNames() []string {
	out := CellNames()
	sort.Strings(out)
	return out
}
