package layout

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ldmo/internal/geom"
)

// WriteCSV writes one layout in the dataset CSV form: a `# window` header
// line followed by one `x0,y0,x1,y1` line per pattern (nanometers).
func (l Layout) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# window %d %d %d %d\n",
		l.Window.X0, l.Window.Y0, l.Window.X1, l.Window.Y1); err != nil {
		return err
	}
	for _, r := range l.Patterns {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d\n", r.X0, r.Y0, r.X1, r.Y1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a layout written by WriteCSV. The name is supplied by the
// caller (usually the file name).
func ReadCSV(r io.Reader, name string) (Layout, error) {
	l := Layout{Name: name}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(strings.TrimPrefix(line, "#"))
			if len(fields) == 5 && fields[0] == "window" {
				vals, err := parseInts(fields[1:])
				if err != nil {
					return Layout{}, fmt.Errorf("layout: line %d: %w", lineNo, err)
				}
				l.Window = geom.NewRect(vals[0], vals[1], vals[2], vals[3])
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 4 {
			return Layout{}, fmt.Errorf("layout: line %d: want 4 comma-separated values, got %q", lineNo, line)
		}
		vals, err := parseInts(parts)
		if err != nil {
			return Layout{}, fmt.Errorf("layout: line %d: %w", lineNo, err)
		}
		l.Patterns = append(l.Patterns, geom.NewRect(vals[0], vals[1], vals[2], vals[3]))
	}
	if err := sc.Err(); err != nil {
		return Layout{}, err
	}
	if len(l.Patterns) == 0 {
		return Layout{}, fmt.Errorf("layout: %s has no patterns", name)
	}
	if l.Window.Empty() {
		// Derive a window with the standard optical margin when the
		// header is absent.
		bb, _ := geom.BoundingBox(l.Patterns)
		l.Window = bb.Inflate(DefaultDRCParams().Margin)
	}
	return l, nil
}

func parseInts(fields []string) ([]int, error) {
	out := make([]int, len(fields))
	for i, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out[i] = v
	}
	return out, nil
}
