package layout

import (
	"math/rand"
	"testing"

	"ldmo/internal/geom"
)

func TestClassifyBands(t *testing.T) {
	// Three contacts in a row: A-B gap 60 (SP pair), C at gap 90 from B
	// (VP), and a far-away D (NP).
	pats := []geom.Rect{
		geom.RectWH(0, 0, 70, 70),
		geom.RectWH(130, 0, 70, 70),   // 60 from A
		geom.RectWH(290, 0, 70, 70),   // 90 from B
		geom.RectWH(290, 400, 70, 70), // far from all
	}
	got := Classify(pats, DefaultClassifyParams())
	want := []Class{ClassSP, ClassSP, ClassVP, ClassNP}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pattern %d: class %v, want %v", i, got[i], want[i])
		}
	}
}

func TestClassifySingle(t *testing.T) {
	got := Classify([]geom.Rect{geom.RectWH(0, 0, 70, 70)}, DefaultClassifyParams())
	if got[0] != ClassNP {
		t.Fatalf("lone pattern = %v, want NP", got[0])
	}
}

func TestClassifyBoundaryInclusive(t *testing.T) {
	// Exactly nmin apart -> SP; exactly nmax -> VP.
	p := DefaultClassifyParams()
	at := func(gap int) Class {
		pats := []geom.Rect{geom.RectWH(0, 0, 70, 70), geom.RectWH(70+gap, 0, 70, 70)}
		return Classify(pats, p)[0]
	}
	if got := at(80); got != ClassSP {
		t.Errorf("gap 80 = %v, want SP", got)
	}
	if got := at(81); got != ClassVP {
		t.Errorf("gap 81 = %v, want VP", got)
	}
	if got := at(98); got != ClassVP {
		t.Errorf("gap 98 = %v, want VP", got)
	}
	if got := at(99); got != ClassNP {
		t.Errorf("gap 99 = %v, want NP", got)
	}
}

func TestClassString(t *testing.T) {
	if ClassSP.String() != "SP" || ClassVP.String() != "VP" || ClassNP.String() != "NP" {
		t.Fatal("class names wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class string empty")
	}
}

func TestConflictGraph(t *testing.T) {
	pats := []geom.Rect{
		geom.RectWH(0, 0, 70, 70),
		geom.RectWH(130, 0, 70, 70), // SP with 0
		geom.RectWH(400, 0, 70, 70), // isolated
	}
	adj := ConflictGraph(pats, 80)
	if len(adj[0]) != 1 || adj[0][0] != 1 || len(adj[1]) != 1 || len(adj[2]) != 0 {
		t.Fatalf("adjacency = %v", adj)
	}
}

func TestIsBipartite(t *testing.T) {
	// Even cycle: bipartite.
	even := [][]int{{1, 3}, {0, 2}, {1, 3}, {2, 0}}
	ok, coloring := IsBipartite(even)
	if !ok {
		t.Fatal("even cycle reported non-bipartite")
	}
	for u, nbrs := range even {
		for _, v := range nbrs {
			if coloring[u] == coloring[v] {
				t.Fatal("witness coloring invalid")
			}
		}
	}
	// Odd cycle: not bipartite.
	odd := [][]int{{1, 2}, {0, 2}, {1, 0}}
	if ok, _ := IsBipartite(odd); ok {
		t.Fatal("triangle reported bipartite")
	}
	// Empty graph.
	if ok, _ := IsBipartite(nil); !ok {
		t.Fatal("empty graph must be bipartite")
	}
}

func TestRasterize(t *testing.T) {
	l := Layout{
		Name:     "t",
		Window:   geom.RectWH(0, 0, 512, 512),
		Patterns: []geom.Rect{geom.RectWH(100, 100, 70, 70)},
	}
	g := l.Rasterize(4)
	if g.W != 128 || g.H != 128 {
		t.Fatalf("raster %dx%d", g.W, g.H)
	}
	// 70nm at 4nm/px covers 17-18 px per axis.
	if s := g.Sum(); s < 16*16 || s > 18*18 {
		t.Fatalf("raster sum = %g", s)
	}
}

func TestCloneIndependent(t *testing.T) {
	l, err := Cell("BUF_X1")
	if err != nil {
		t.Fatal(err)
	}
	c := l.Clone()
	c.Patterns[0] = geom.RectWH(0, 0, 1, 1)
	if l.Patterns[0] == c.Patterns[0] {
		t.Fatal("Clone shares pattern storage")
	}
}

func TestCheckDRC(t *testing.T) {
	win := geom.RectWH(0, 0, 512, 512)
	rules := DefaultDRCParams()
	clean := Layout{Window: win, Patterns: []geom.Rect{
		geom.RectWH(100, 100, 70, 70), geom.RectWH(300, 100, 70, 70)}}
	if v := clean.CheckDRC(rules); len(v) != 0 {
		t.Fatalf("clean layout flagged: %v", v)
	}
	thin := Layout{Window: win, Patterns: []geom.Rect{geom.RectWH(100, 100, 30, 70)}}
	if v := thin.CheckDRC(rules); len(v) != 1 || v[0].Rule != "min-width" {
		t.Fatalf("thin: %v", v)
	}
	tight := Layout{Window: win, Patterns: []geom.Rect{
		geom.RectWH(100, 100, 70, 70), geom.RectWH(180, 100, 70, 70)}}
	if v := tight.CheckDRC(rules); len(v) != 1 || v[0].Rule != "min-spacing" {
		t.Fatalf("tight: %v", v)
	}
	edge := Layout{Window: win, Patterns: []geom.Rect{geom.RectWH(10, 100, 70, 70)}}
	if v := edge.CheckDRC(rules); len(v) != 1 || v[0].Rule != "window-margin" {
		t.Fatalf("edge: %v", v)
	}
	if s := (DRCViolation{Rule: "min-spacing", A: 0, B: 1}).String(); s == "" {
		t.Fatal("violation string empty")
	}
	if s := (DRCViolation{Rule: "min-width", A: 0, B: -1}).String(); s == "" {
		t.Fatal("violation string empty")
	}
}

func TestCellLibraryComplete(t *testing.T) {
	cells := Cells()
	if len(cells) != 13 {
		t.Fatalf("library has %d cells, want 13 (Table I)", len(cells))
	}
	names := map[string]bool{}
	for _, c := range cells {
		names[c.Name] = true
	}
	for _, want := range []string{"BUF_X1", "NAND3_X2", "AOI211_X1"} {
		if !names[want] {
			t.Errorf("Fig. 7 cell %s missing from library", want)
		}
	}
}

func TestCellLibraryValid(t *testing.T) {
	rules := DefaultDRCParams()
	cp := DefaultClassifyParams()
	for _, c := range Cells() {
		if v := c.CheckDRC(rules); len(v) != 0 {
			t.Errorf("%s: DRC violations %v", c.Name, v)
		}
		if ok, _ := IsBipartite(ConflictGraph(c.Patterns, cp.NMin)); !ok {
			t.Errorf("%s: SP conflict graph not 2-colorable", c.Name)
		}
		if len(c.Patterns) < 3 {
			t.Errorf("%s: only %d patterns", c.Name, len(c.Patterns))
		}
	}
}

func TestCellLookup(t *testing.T) {
	l, err := Cell("NAND3_X2")
	if err != nil {
		t.Fatal(err)
	}
	if l.Name != "NAND3_X2" || len(l.Patterns) != 7 {
		t.Fatalf("NAND3_X2 = %s with %d patterns", l.Name, len(l.Patterns))
	}
	if _, err := Cell("NOPE"); err == nil {
		t.Fatal("unknown cell must error")
	}
}

func TestCellNamesOrder(t *testing.T) {
	names := CellNames()
	if len(names) != 13 || names[0] != "BUF_X1" {
		t.Fatalf("names = %v", names)
	}
	sorted := SortedCellNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("SortedCellNames not sorted")
		}
	}
}

func TestGenerateValidLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultGenParams()
	for i := 0; i < 50; i++ {
		l, err := Generate(rng, p)
		if err != nil {
			t.Fatal(err)
		}
		if v := l.CheckDRC(p.DRC); len(v) != 0 {
			t.Fatalf("generated layout %d violates DRC: %v", i, v)
		}
		if ok, _ := IsBipartite(ConflictGraph(l.Patterns, p.Classify.NMin)); !ok {
			t.Fatalf("generated layout %d not decomposable", i)
		}
		if n := len(l.Patterns); n < p.MinContacts || n > p.MaxContacts {
			t.Fatalf("generated layout %d has %d patterns", i, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := GenerateSet(42, 5, DefaultGenParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateSet(42, 5, DefaultGenParams())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Patterns) != len(b[i].Patterns) {
			t.Fatal("not deterministic")
		}
		for j := range a[i].Patterns {
			if a[i].Patterns[j] != b[i].Patterns[j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestGenerateParamsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultGenParams()
	p.MaxContacts = 10
	if _, err := Generate(rng, p); err == nil {
		t.Fatal("expected range error")
	}
	p = DefaultGenParams()
	p.MinContacts = 5
	p.MaxContacts = 4
	if _, err := Generate(rng, p); err == nil {
		t.Fatal("expected range error")
	}
}

func TestGenerateSetDistinct(t *testing.T) {
	set, err := GenerateSet(7, 20, DefaultGenParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 20 {
		t.Fatalf("got %d layouts", len(set))
	}
	// At least two different pattern counts across the set.
	counts := map[int]bool{}
	for _, l := range set {
		counts[len(l.Patterns)] = true
	}
	if len(counts) < 2 {
		t.Fatal("generator produced uniform layouts")
	}
}
