// Package layout defines the target-layout substrate: contact-layer layouts,
// the paper's SP/VP/NP pattern classification (Eq. 6), a design-rule checker,
// a synthetic NanGate-like standard-cell library, and a random layout
// generator standing in for the paper's 8000-design contact dataset.
//
// The paper evaluates on contact layouts resembling the NanGate FreePDK45
// library, verified with Mentor Calibre. Neither is redistributable, so the
// cells here are synthetic: 70nm contacts placed on a 130nm pitch inside a
// 512nm tile, which reproduces the spacing statistics the paper's
// classification bands (nmin=80, nmax=98) were chosen for. See DESIGN.md.
package layout

import (
	"fmt"
	"math"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
)

// Layout is a named set of target patterns inside a simulation window.
type Layout struct {
	Name     string
	Window   geom.Rect   // simulation window, nanometers
	Patterns []geom.Rect // target patterns (contacts), nanometers
}

// Class is the paper's pattern classification (Eq. 6).
type Class int

const (
	// ClassSP marks separated patterns: nearest-neighbor distance
	// d <= nmin. Same-mask placement always causes a print violation.
	ClassSP Class = iota
	// ClassVP marks violated patterns: nmin < d <= nmax. Same-mask
	// placement degrades printability without hard failure.
	ClassVP
	// ClassNP marks normal patterns: d > nmax. Interaction is negligible.
	ClassNP
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassSP:
		return "SP"
	case ClassVP:
		return "VP"
	case ClassNP:
		return "NP"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ClassifyParams holds the interaction bands of Eq. 6 in nanometers.
type ClassifyParams struct {
	NMin float64 // print-violation radius (paper: 80)
	NMax float64 // optical-interaction radius (paper: 98)
}

// DefaultClassifyParams returns the paper's nmin=80, nmax=98.
func DefaultClassifyParams() ClassifyParams { return ClassifyParams{NMin: 80, NMax: 98} }

// Classify assigns each pattern its Eq. 6 class from the distance to its
// nearest neighbor. A single isolated pattern is NP.
func Classify(patterns []geom.Rect, p ClassifyParams) []Class {
	out := make([]Class, len(patterns))
	for i := range patterns {
		d := math.Inf(1)
		for j := range patterns {
			if i == j {
				continue
			}
			if dd := patterns[i].Dist(patterns[j]); dd < d {
				d = dd
			}
		}
		switch {
		case d <= p.NMin:
			out[i] = ClassSP
		case d <= p.NMax:
			out[i] = ClassVP
		default:
			out[i] = ClassNP
		}
	}
	return out
}

// ConflictGraph returns the adjacency lists of the SP conflict graph: an
// edge joins two patterns whose spacing is at most nmin, i.e. the pairs a
// legal double-patterning decomposition must separate.
func ConflictGraph(patterns []geom.Rect, nmin float64) [][]int {
	adj := make([][]int, len(patterns))
	for i := 0; i < len(patterns); i++ {
		for j := i + 1; j < len(patterns); j++ {
			if patterns[i].Dist(patterns[j]) <= nmin {
				adj[i] = append(adj[i], j)
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj
}

// IsBipartite reports whether the conflict graph admits a 2-coloring, i.e.
// whether the layout is decomposable onto two masks without a same-mask SP
// pair. The second return is a witness coloring when one exists.
func IsBipartite(adj [][]int) (bool, []int) {
	color := make([]int, len(adj))
	for i := range color {
		color[i] = -1
	}
	var queue []int
	for s := range adj {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if color[v] == -1 {
					color[v] = 1 - color[u]
					queue = append(queue, v)
				} else if color[v] == color[u] {
					return false, nil
				}
			}
		}
	}
	return true, color
}

// Rasterize draws the layout's patterns as a binary target image at the
// given resolution (nm/pixel). The grid covers exactly the layout window.
func (l Layout) Rasterize(res int) *grid.Grid {
	w := l.Window.W() / res
	h := l.Window.H() / res
	g := grid.New(w, h, res, geom.Point{X: l.Window.X0, Y: l.Window.Y0})
	for _, r := range l.Patterns {
		g.FillRect(r, 1)
	}
	return g
}

// Clone returns a deep copy of l.
func (l Layout) Clone() Layout {
	out := l
	out.Patterns = append([]geom.Rect(nil), l.Patterns...)
	return out
}

// DRCParams are the design rules the generator and checker enforce.
type DRCParams struct {
	MinWidth   int // minimum feature edge, nm
	MinSpacing int // minimum pattern spacing, nm
	Margin     int // minimum distance from the window boundary, nm
}

// DefaultDRCParams returns contact-layer rules consistent with the
// calibrated optical model: features no thinner than 45nm, spacings no
// tighter than 30nm, and a 60nm optical margin to the window edge.
func DefaultDRCParams() DRCParams {
	return DRCParams{MinWidth: 45, MinSpacing: 30, Margin: 60}
}

// DRCViolation describes one design-rule failure.
type DRCViolation struct {
	Rule string
	A, B int // pattern indices; B is -1 for single-pattern rules
}

// String implements fmt.Stringer.
func (v DRCViolation) String() string {
	if v.B < 0 {
		return fmt.Sprintf("%s on pattern %d", v.Rule, v.A)
	}
	return fmt.Sprintf("%s between patterns %d and %d", v.Rule, v.A, v.B)
}

// CheckDRC verifies the layout against the rules and returns all violations.
func (l Layout) CheckDRC(p DRCParams) []DRCViolation {
	var out []DRCViolation
	inner := geom.Rect{
		X0: l.Window.X0 + p.Margin, Y0: l.Window.Y0 + p.Margin,
		X1: l.Window.X1 - p.Margin, Y1: l.Window.Y1 - p.Margin,
	}
	for i, r := range l.Patterns {
		if r.W() < p.MinWidth || r.H() < p.MinWidth {
			out = append(out, DRCViolation{Rule: "min-width", A: i, B: -1})
		}
		if r.X0 < inner.X0 || r.Y0 < inner.Y0 || r.X1 > inner.X1 || r.Y1 > inner.Y1 {
			out = append(out, DRCViolation{Rule: "window-margin", A: i, B: -1})
		}
		for j := i + 1; j < len(l.Patterns); j++ {
			if r.Dist(l.Patterns[j]) < float64(p.MinSpacing) {
				out = append(out, DRCViolation{Rule: "min-spacing", A: i, B: j})
			}
		}
	}
	return out
}
