package layout

import (
	"fmt"
	"math/rand"

	"ldmo/internal/geom"
)

// GenParams controls the random contact-layout generator that stands in for
// the paper's 8000-design dataset.
type GenParams struct {
	MinContacts int // smallest pattern count (inclusive)
	MaxContacts int // largest pattern count (inclusive)
	Jitter      int // per-slot placement jitter, nm
	// AlignProb is the probability that a layout is emitted grid-aligned
	// (zero jitter), like the standard-cell library the dataset resembles.
	AlignProb   float64
	NudgeProb   float64
	Classify    ClassifyParams
	DRC         DRCParams
	MaxAttempts int // rejection-sampling budget per layout
}

// DefaultGenParams matches the cell-library geometry: 3-9 contacts on the
// 3x3 slot grid with mild jitter, rejecting layouts that violate DRC or are
// not two-mask decomposable.
func DefaultGenParams() GenParams {
	return GenParams{
		MinContacts: 3,
		MaxContacts: 9,
		Jitter:      8,
		AlignProb:   0.5,
		NudgeProb:   0.25,
		Classify:    DefaultClassifyParams(),
		DRC:         DefaultDRCParams(),
		MaxAttempts: 200,
	}
}

// Generate produces one random layout via rejection sampling: slot subsets
// with jitter and occasional outward corner nudges, retried until the result
// passes DRC and its SP conflict graph is bipartite (so a legal double-
// patterning decomposition exists). It is deterministic in rng.
func Generate(rng *rand.Rand, p GenParams) (Layout, error) {
	if p.MinContacts < 1 || p.MaxContacts > 9 || p.MinContacts > p.MaxContacts {
		return Layout{}, fmt.Errorf("layout: contact count range [%d,%d] outside [1,9]",
			p.MinContacts, p.MaxContacts)
	}
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		n := p.MinContacts + rng.Intn(p.MaxContacts-p.MinContacts+1)
		jitter := p.Jitter
		if rng.Float64() < p.AlignProb {
			jitter = 0
		}
		perm := rng.Perm(9)[:n]
		l := Layout{
			Name:   fmt.Sprintf("gen-%d", rng.Int63()),
			Window: geom.RectWH(0, 0, TileNM, TileNM),
		}
		for _, si := range perm {
			s := slot{c: si % 3, r: si / 3}
			if jitter > 0 {
				s.dx = rng.Intn(2*jitter+1) - jitter
				s.dy = rng.Intn(2*jitter+1) - jitter
			}
			// Outward nudges on border slots open VP-band spacings
			// without shrinking any gap below the DRC floor.
			if rng.Float64() < p.NudgeProb {
				if s.c == 2 {
					s.dx += 10 + rng.Intn(11)
				}
				if s.r == 2 {
					s.dy += 10 + rng.Intn(11)
				}
			}
			l.Patterns = append(l.Patterns, slotRect(s))
		}
		if len(l.CheckDRC(p.DRC)) > 0 {
			continue
		}
		if ok, _ := IsBipartite(ConflictGraph(l.Patterns, p.Classify.NMin)); !ok {
			continue
		}
		return l, nil
	}
	return Layout{}, fmt.Errorf("layout: no valid layout in %d attempts", p.MaxAttempts)
}

// GenerateSet produces count layouts deterministically from seed. Contact
// counts are balanced across [MinContacts, MaxContacts] by cycling, so large
// (hard) layouts are as frequent as small ones — plain rejection sampling
// would skew toward small layouts, which are accepted more often.
func GenerateSet(seed int64, count int, p GenParams) ([]Layout, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Layout, 0, count)
	for i := 0; i < count; i++ {
		q := p
		q.MinContacts = p.MinContacts + i%(p.MaxContacts-p.MinContacts+1)
		q.MaxContacts = q.MinContacts
		l, err := Generate(rng, q)
		if err != nil {
			return nil, fmt.Errorf("layout %d: %w", i, err)
		}
		l.Name = fmt.Sprintf("gen-%04d", i)
		out = append(out, l)
	}
	return out, nil
}
