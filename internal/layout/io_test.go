package layout

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	for _, cell := range Cells() {
		var buf bytes.Buffer
		if err := cell.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadCSV(&buf, cell.Name)
		if err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
		if got.Window != cell.Window {
			t.Fatalf("%s: window %v != %v", cell.Name, got.Window, cell.Window)
		}
		if len(got.Patterns) != len(cell.Patterns) {
			t.Fatalf("%s: %d patterns != %d", cell.Name, len(got.Patterns), len(cell.Patterns))
		}
		for i := range cell.Patterns {
			if got.Patterns[i] != cell.Patterns[i] {
				t.Fatalf("%s: pattern %d differs", cell.Name, i)
			}
		}
	}
}

func TestReadCSVWithoutWindowDerivesMargin(t *testing.T) {
	in := "100,100,165,165\n300,100,365,165\n"
	l, err := ReadCSV(strings.NewReader(in), "bare")
	if err != nil {
		t.Fatal(err)
	}
	if l.Window.Empty() {
		t.Fatal("no window derived")
	}
	margin := DefaultDRCParams().Margin
	if l.Window.X0 != 100-margin || l.Window.X1 != 365+margin {
		t.Fatalf("derived window %v", l.Window)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                   // empty
		"1,2,3\n",            // wrong arity
		"a,b,c,d\n",          // non-integer
		"# window 1 2 3 x\n", // bad header then no patterns
	}
	for _, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "bad"); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestReadCSVSkipsBlanksAndComments(t *testing.T) {
	in := "# comment\n\n# window 0 0 544 544\n66,66,131,131\n\n"
	l, err := ReadCSV(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Patterns) != 1 || l.Window.W() != 544 {
		t.Fatalf("parsed %+v", l)
	}
}
