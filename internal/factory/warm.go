package factory

import (
	"context"
	"io"

	"ldmo/internal/model"
	"ldmo/internal/sampling"
)

// ExtractWarmDataset harvests warm-start training pairs from an initialized
// factory directory: it reads the sealed spec and replays the factory's own
// deterministic per-layout labeling path, recording the (cold mask,
// optimized field) pairs the score labels discard. The harvest is a pure
// function of the spec, so the extracted dataset is as reproducible as the
// corpus itself — the same directory always yields byte-identical pairs.
//
// wcfg.Workers-style parallelism follows the spec's sampling config; pass a
// cancellable ctx to bound the ILT spend.
func ExtractWarmDataset(ctx context.Context, dir string, wcfg sampling.WarmPairConfig, log io.Writer) (*model.WarmDataset, error) {
	spec, err := ReadSpec(dir)
	if err != nil {
		return nil, err
	}
	return sampling.BuildWarmPairsCtx(ctx, spec.Layouts, spec.Sampling, wcfg, log)
}
