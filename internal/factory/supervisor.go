package factory

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldmo/internal/faultinject"
	"ldmo/internal/par"
	"ldmo/internal/runx"
)

// Config parameterizes one supervised factory build.
type Config struct {
	// Dir is the factory directory: spec, leases, shards, poison records,
	// and the final manifest all live here.
	Dir string
	// Spec is the build to run. On resume it must match the sealed spec in
	// Dir byte for byte.
	Spec Spec
	// Workers is the number of worker slots; <=0 selects par.Workers().
	Workers int
	// Resume allows continuing an initialized factory directory; without
	// it, a directory that already holds a spec is refused.
	Resume bool
	// WorkerCommand builds the command for one worker process (the same
	// binary re-exec'd in worker mode); the supervisor adds the factory
	// environment before starting it. nil runs workers as in-process
	// goroutines instead — same loop, same lease protocol, used by fast
	// drills and single-process builds.
	WorkerCommand func(dir string) *exec.Cmd
	// RestartBase/RestartMax bound the runx.Retry backoff between worker
	// restarts; <=0 selects 100ms / 2s.
	RestartBase time.Duration
	RestartMax  time.Duration
	// Log receives supervision events (reclaims, restarts, poisonings).
	Log io.Writer
}

// Report summarizes a completed (or interrupted) build.
type Report struct {
	// Layouts is the corpus size; Sealed counts sealed shards and Poisoned
	// lists quarantined shard indices (Sealed + len(Poisoned) == Layouts on
	// a completed build).
	Layouts  int
	Sealed   int
	Poisoned []int
	// Reclaims counts leases taken back from dead or hung workers;
	// Restarts counts worker respawns; HungKills counts live workers
	// killed for a stale heartbeat.
	Reclaims  int
	Restarts  int
	HungKills int
	// Kept/Dropped/Clusters mirror the manifest's dedupe summary.
	Kept     int
	Dropped  int
	Clusters int
	// ManifestPath is the sealed manifest location.
	ManifestPath string
}

// handle is the supervisor's view of one spawned worker, process or
// goroutine: an identity, a way to kill it, and a death notification.
type handle struct {
	token string
	kill  func()
	done  chan error
	dead  atomic.Bool
}

func (h *handle) isDead() bool { return h.dead.Load() }

type supervisor struct {
	cfg    Config
	spec   Spec
	dir    string
	runCtx context.Context // workers' context: dies on Build cancellation

	mu       sync.Mutex
	registry map[string]*handle

	reclaims  atomic.Int64
	restarts  atomic.Int64
	hungKills atomic.Int64
}

func (s *supervisor) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

func (s *supervisor) lookup(token string) *handle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.registry[token]
}

func (s *supervisor) register(h *handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registry[h.token] = h
}

func (s *supervisor) killAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, h := range s.registry {
		if !h.isDead() {
			h.kill()
		}
	}
}

// Build runs the factory to completion: initialize or resume the directory,
// supervise Workers slots until every shard is sealed or poisoned, then
// publish the sealed manifest. It only fails on configuration errors,
// unreadable state, or cancellation — worker deaths, hangs, and poison
// layouts are handled, not fatal.
func Build(ctx context.Context, cfg Config) (Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec := cfg.Spec.normalized()
	if len(spec.Layouts) == 0 {
		return Report{}, errors.New("factory: empty layout set")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = par.Workers()
	}
	if cfg.RestartBase <= 0 {
		cfg.RestartBase = 100 * time.Millisecond
	}
	if cfg.RestartMax <= 0 {
		cfg.RestartMax = 2 * time.Second
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return Report{}, fmt.Errorf("factory: %w", err)
	}
	if err := initSpec(cfg.Dir, spec, cfg.Resume); err != nil {
		return Report{}, err
	}

	s := &supervisor{cfg: cfg, spec: spec, dir: cfg.Dir, registry: map[string]*handle{}}
	if err := s.sweepStartup(); err != nil {
		return Report{}, err
	}

	runCtx, runCancel := context.WithCancel(context.Background())
	defer runCancel()
	s.runCtx = runCtx
	// spawnCtx governs only the restart backoff sleeps, so slots parked in
	// backoff wake immediately on completion instead of sleeping it out.
	spawnCtx, spawnCancel := context.WithCancel(ctx)
	defer spawnCancel()

	done := make(chan struct{}) // closed when every shard is sealed|poisoned
	var wg sync.WaitGroup
	for slot := 0; slot < cfg.Workers; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			s.runSlot(spawnCtx, slot, done)
		}(slot)
	}

	n := len(spec.Layouts)
	tick := time.NewTicker(spec.heartbeat() / 2)
	defer tick.Stop()
	var finErr error
	for finErr == nil {
		select {
		case <-ctx.Done():
			finErr = ctx.Err()
		case <-tick.C:
			states, err := scanShards(s.dir, n)
			if err != nil {
				finErr = err
				break
			}
			s.reap(states, time.Now())
			if allDone(states) {
				close(done)
				spawnCancel()
				wg.Wait()
				return s.finish(states)
			}
		}
	}
	// Interrupted or broken: stop everything, leave the directory as-is
	// (crash-only — a resume picks up from the leases and shards on disk).
	spawnCancel()
	runCancel()
	s.killAll()
	wg.Wait()
	states, _ := scanShards(s.dir, n) // best-effort progress snapshot
	return s.report(states, nil), finErr
}

// initSpec writes the sealed spec on first use and byte-verifies it on
// resume, refusing to reuse an initialized directory without Resume or with
// a different configuration.
func initSpec(dir string, spec Spec, resume bool) error {
	path := filepath.Join(dir, SpecFile)
	_, err := os.Lstat(path)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return writeSpec(dir, spec)
	case err != nil:
		return fmt.Errorf("factory: %w", err)
	}
	if !resume {
		return fmt.Errorf("factory: %s is already an initialized factory dir; pass Resume to continue it", dir)
	}
	stored, err := readSpecBytes(dir)
	if err != nil {
		return err
	}
	want, err := encodeSpec(spec)
	if err != nil {
		return err
	}
	if !bytes.Equal(stored, want) {
		return fmt.Errorf("factory: resume spec differs from the sealed config in %s", dir)
	}
	return nil
}

// sweepStartup removes leftover leases and crash records from a previous
// supervisor incarnation. No worker of ours is alive yet, so every lease is
// an orphan; stale crash records are discarded *without* counting attempts —
// undercounting a death across supervisor restarts is safe (the shard just
// gets PoisonK fresh chances), overcounting could poison a healthy layout.
func (s *supervisor) sweepStartup() error {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("factory: %w", err)
	}
	for _, e := range entries {
		i, suffix, ok := parseShardName(e.Name())
		if !ok {
			continue
		}
		if suffix == ".lease" || suffix == ".crash" {
			if err := os.Remove(filepath.Join(s.dir, e.Name())); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("factory: startup sweep: %w", err)
			}
			s.logf("factory: startup sweep removed stale %s (shard %d)", e.Name(), i)
		}
	}
	return nil
}

// runSlot keeps one worker slot occupied: spawn a worker, wait for it, and
// respawn under backoff when it dies, until the corpus completes or the
// build is cancelled. runx.Retry provides the jittered restart backoff and
// stops retrying the moment the context dies.
func (s *supervisor) runSlot(ctx context.Context, slot int, done chan struct{}) {
	_ = runx.Retry(ctx, runx.RetryConfig{
		Attempts: math.MaxInt32,
		Base:     s.cfg.RestartBase,
		Max:      s.cfg.RestartMax,
		Seed:     int64(slot) + 1,
	}, func(attempt int) error {
		select {
		case <-done:
			return nil
		default:
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if attempt > 1 {
			s.restarts.Add(1)
			s.logf("factory: restarting worker slot %d (attempt %d)", slot, attempt)
		}
		h, err := s.spawn(slot, attempt-1)
		if err != nil {
			return err
		}
		werr := <-h.done
		h.dead.Store(true)
		if werr == nil {
			return nil // the worker saw the corpus complete
		}
		select {
		case <-done:
			return nil
		default:
		}
		if runx.Interrupted(werr) {
			return werr
		}
		return fmt.Errorf("factory: worker %s died: %w", h.token, werr)
	})
}

// spawn starts one worker — a re-exec'd process or a goroutine — and
// registers its handle. Restarted workers (gen > 0) get the one-shot chaos
// fault points stripped from their environment, so an armed worker-sigkill
// kills the first generation once instead of crash-looping the slot forever;
// label-panic-sticky stays, because a poison layout must keep killing its
// workers until the quarantine rule fires.
func (s *supervisor) spawn(slot, gen int) (*handle, error) {
	token := fmt.Sprintf("w%d-%d", slot, gen)
	h := &handle{token: token, done: make(chan error, 1)}
	if s.cfg.WorkerCommand != nil {
		cmd := s.cfg.WorkerCommand(s.dir)
		env := cmd.Env
		if env == nil {
			env = os.Environ()
		}
		env = setEnv(env, EnvWorkerDir, s.dir)
		env = setEnv(env, EnvWorkerToken, token)
		if gen > 0 {
			env = stripChaosFaults(env)
		}
		cmd.Env = env
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("factory: spawn worker %s: %w", token, err)
		}
		proc := cmd.Process
		h.kill = func() { _ = proc.Kill() }
		go func() { h.done <- cmd.Wait() }()
	} else {
		w := &worker{dir: s.dir, spec: s.spec, token: token, log: s.cfg.Log, killCh: make(chan struct{})}
		var once sync.Once
		h.kill = func() {
			once.Do(func() {
				w.dead.Store(true)
				close(w.killCh)
			})
		}
		go func() { h.done <- w.run(s.runCtx) }()
	}
	s.register(h)
	return h, nil
}

// reap reclaims every lease whose holder is dead or whose heartbeat went
// stale. A stale lease with a *live* holder means the worker is hung —
// heartbeating stopped but the process never exited — so the supervisor
// kills it first: otherwise N hung workers would stall the build forever
// with nothing left to restart.
func (s *supervisor) reap(states []shardState, now time.Time) {
	stale := s.spec.staleAfter()
	for i, st := range states {
		if !st.leased {
			continue
		}
		if st.finished() {
			// A claim raced a finished shard (reclaimed build completed
			// anyway); the lease is meaningless, drop it without ceremony.
			_ = os.Remove(leasePath(s.dir, i))
			continue
		}
		l, err := readLease(leasePath(s.dir, i))
		if err != nil {
			// Torn or vanished lease: only staleness can judge it.
			if !st.leaseMod.IsZero() && now.Sub(st.leaseMod) > stale {
				s.reclaim(i, lease{}, "unreadable lease")
			}
			continue
		}
		h := s.lookup(l.Token)
		isStale := now.Sub(st.leaseMod) > stale
		switch {
		case h == nil:
			// A token we never spawned (previous run's leftovers slipping
			// past the sweep, or a manual worker): staleness decides.
			if isStale {
				s.reclaim(i, l, "orphan lease")
			}
		case h.isDead():
			s.reclaim(i, l, "worker dead")
		case isStale:
			s.hungKills.Add(1)
			s.logf("factory: killing hung worker %s (shard %d heartbeat stale)", l.Token, i)
			h.kill()
			s.reclaim(i, l, "heartbeat stale")
		}
	}
}

// reclaim takes shard i's lease back: fold the worker's crash record (if it
// wrote one) into the persistent attempt count — poisoning the shard at
// PoisonK deaths — then remove the lease so another worker can claim it.
func (s *supervisor) reclaim(i int, l lease, why string) {
	// TOCTOU guard: if the lease changed hands since we judged it, the new
	// holder is alive and fresh — leave it alone.
	if cur, err := readLease(leasePath(s.dir, i)); err == nil && l.Token != "" && cur.Token != l.Token {
		return
	}
	if rec, ok, err := readCrash(s.dir, i); err == nil && ok {
		s.recordAttempt(i, rec)
		_ = os.Remove(crashPath(s.dir, i))
	}
	_ = os.Remove(leasePath(s.dir, i))
	s.reclaims.Add(1)
	s.logf("factory: reclaimed shard %05d lease (%s, worker %q)", i, why, l.Token)
}

// recordAttempt persists one labeler death against shard i and quarantines
// the layout as poison at the PoisonK-th. The count lives in a file, not in
// memory, so the bound holds across supervisor restarts.
func (s *supervisor) recordAttempt(i int, rec crashRecord) {
	a, _, err := readAttempts(s.dir, i)
	if err != nil {
		s.logf("factory: shard %05d attempts record unreadable (%v); restarting count", i, err)
		a = attemptsRecord{}
	}
	a.Index = i
	a.Count++
	a.LastReason, a.LastStack = rec.Reason, rec.Stack
	if a.Count >= s.spec.PoisonK {
		p := PoisonRecord{Index: i, Layout: s.spec.Layouts[i].Name, Attempts: a.Count, Reason: rec.Reason, Stack: rec.Stack}
		if err := writePoison(s.dir, p); err != nil {
			s.logf("factory: shard %05d poison write failed: %v", i, err)
			return
		}
		_ = os.Remove(attemptsPath(s.dir, i))
		s.logf("factory: shard %05d poisoned after %d worker deaths: %s", i, a.Count, rec.Reason)
		return
	}
	if err := writeAttempts(s.dir, a); err != nil {
		s.logf("factory: shard %05d attempts write failed: %v", i, err)
	}
	s.logf("factory: shard %05d death %d/%d: %s", i, a.Count, s.spec.PoisonK, rec.Reason)
}

// finish publishes the manifest over the completed shard set and assembles
// the report.
func (s *supervisor) finish(states []shardState) (Report, error) {
	m, err := BuildManifest(s.dir, s.spec, s.cfg.Log)
	if err != nil {
		return s.report(states, nil), err
	}
	if err := writeManifest(s.dir, m); err != nil {
		return s.report(states, nil), err
	}
	r := s.report(states, m)
	s.logf("factory: corpus complete: %d sealed, %d poisoned, %d kept after dedupe (%d reclaims, %d restarts)",
		r.Sealed, len(r.Poisoned), r.Kept, r.Reclaims, r.Restarts)
	return r, nil
}

func (s *supervisor) report(states []shardState, m *Manifest) Report {
	r := Report{
		Layouts:   len(s.spec.Layouts),
		Reclaims:  int(s.reclaims.Load()),
		Restarts:  int(s.restarts.Load()),
		HungKills: int(s.hungKills.Load()),
	}
	for i, st := range states {
		if st.sealed {
			r.Sealed++
		}
		if st.poisoned {
			r.Poisoned = append(r.Poisoned, i)
		}
	}
	if m != nil {
		r.Kept, r.Dropped, r.Clusters = m.Kept, m.Dropped, m.Clusters
		r.ManifestPath = filepath.Join(s.dir, ManifestFile)
	}
	return r
}

// setEnv returns env with key set to value, replacing an existing entry.
func setEnv(env []string, key, value string) []string {
	prefix := key + "="
	for i, kv := range env {
		if strings.HasPrefix(kv, prefix) {
			env[i] = prefix + value
			return env
		}
	}
	return append(env, prefix+value)
}

// stripChaosFaults removes the one-shot worker chaos points from LDMO_FAULTS
// so restarted workers run clean, while sticky points (label-panic-sticky)
// survive the restart.
func stripChaosFaults(env []string) []string {
	const prefix = faultinject.EnvFaults + "="
	for i, kv := range env {
		if !strings.HasPrefix(kv, prefix) {
			continue
		}
		var kept []string
		for _, entry := range strings.Split(kv[len(prefix):], ",") {
			point, _, _ := strings.Cut(entry, "=")
			if point == faultinject.WorkerSigkill || point == faultinject.LeaseStale {
				continue
			}
			if entry != "" {
				kept = append(kept, entry)
			}
		}
		env[i] = prefix + strings.Join(kept, ",")
	}
	return env
}
