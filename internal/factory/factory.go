// Package factory is the multi-process dataset factory: a supervisor shards
// the layout space across N worker processes (the same binary re-exec'd in
// worker mode) that coordinate purely through the filesystem, crash-only by
// construction. There is no IPC and no shared memory — a worker claims shard
// i by atomically creating shard_NNNNN.lease, heartbeats the lease's mtime
// while labeling, and seals the result as the same shard_NNNNN.gob envelope a
// serial sampling.BuildDatasetCtx run would write. The supervisor reclaims
// leases whose holder died or whose heartbeat went stale, restarts dead
// workers under runx.Retry backoff, and quarantines a poison layout — one
// that kills its worker PoisonK times — as shard_NNNNN.poison, so the build
// always terminates with an explicit poison list instead of crash-looping.
//
// Because per-layout labeling is deterministic and every durable write is
// atomic, any interleaving of crashes, reclaims, and duplicate builds
// converges to the same sealed shard set, and the published manifest is
// byte-identical to an undisturbed single-process build.
//
// Shard lifecycle (one state per index, derived purely from which files
// exist):
//
//	unclaimed ──claim──▶ leased ──seal──▶ sealed
//	                       │
//	                       └──K deaths──▶ poison
package factory

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"ldmo/internal/artifact"
	"ldmo/internal/layout"
	"ldmo/internal/sampling"
)

// Sealed-envelope identities of the factory's durable records.
const (
	specKind        = "factory-config"
	specVersion     = 1
	poisonKind      = "factory-poison"
	poisonVersion   = 1
	manifestKind    = "dataset-manifest"
	manifestVersion = 1
)

// Coordination files inside the factory directory. Everything else in the
// directory (quarantine corpses, editor droppings) is ignored by every scan.
const (
	// SpecFile is the sealed build configuration, written once at factory
	// init; a resume must present a byte-identical Spec.
	SpecFile = "factory.gob"
	// ManifestFile is the sealed corpus manifest, written when every shard
	// is sealed or poisoned.
	ManifestFile = "manifest.gob"
)

// Environment variables handed to re-exec'd worker processes.
const (
	// EnvWorkerDir tells a worker-mode process which factory directory to
	// serve.
	EnvWorkerDir = "LDMO_FACTORY_DIR"
	// EnvWorkerToken is the supervisor-issued identity a worker records in
	// every lease it claims, tying leases to spawned processes.
	EnvWorkerToken = "LDMO_FACTORY_TOKEN"
)

// Per-shard coordination file names. The sealed shard itself is
// sampling.ShardFile (shard_NNNNN.gob).
func leasePath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_%05d.lease", i))
}

func poisonPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_%05d.poison", i))
}

func crashPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_%05d.crash", i))
}

func attemptsPath(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard_%05d.attempts", i))
}

// Persisted factory types claim their gob type IDs at init, after sampling's
// (factory imports sampling, fixing the order), so sealed spec bytes are a
// pure function of the configuration and resume can byte-compare them.
func init() {
	artifact.StabilizeGob(Spec{})
}

// Spec is the complete, immutable description of one corpus build: the layout
// list, the labeling configuration, and the failure-handling knobs. It is
// sealed into the factory directory at init; workers read it from there, so a
// worker process needs nothing but the directory path.
type Spec struct {
	// Layouts is the ordered layout list; shard i is Layouts[i].
	Layouts []layout.Layout
	// Sampling configures per-layout labeling. Its Checkpoint and Workers
	// fields are ignored (the factory directory is the checkpoint, and each
	// worker labels one layout at a time).
	Sampling sampling.Config
	// PoisonK is how many worker deaths a shard survives before it is
	// quarantined as poison; <=0 selects 3.
	PoisonK int
	// HeartbeatMS is the lease heartbeat period in milliseconds; <=0
	// selects 250.
	HeartbeatMS int64
	// StaleAfterMS is how stale a lease's heartbeat mtime must be before
	// the supervisor reclaims it; <=0 selects 4x the heartbeat.
	StaleAfterMS int64
	// Manifest configures dedupe and clustering of the published corpus.
	Manifest ManifestConfig
}

// normalized returns the Spec with defaults applied and the
// factory-irrelevant sampling fields cleared, so the sealed spec bytes are
// independent of the caller's incidental settings.
func (s Spec) normalized() Spec {
	s.Sampling.Checkpoint = ""
	s.Sampling.Workers = 0
	if s.PoisonK <= 0 {
		s.PoisonK = 3
	}
	if s.HeartbeatMS <= 0 {
		s.HeartbeatMS = 250
	}
	if s.StaleAfterMS <= 0 {
		s.StaleAfterMS = 4 * s.HeartbeatMS
	}
	s.Manifest = s.Manifest.normalized()
	return s
}

func (s Spec) heartbeat() time.Duration {
	return time.Duration(s.HeartbeatMS) * time.Millisecond
}

func (s Spec) staleAfter() time.Duration {
	return time.Duration(s.StaleAfterMS) * time.Millisecond
}

// encodeSpec produces the byte-stable gob encoding resume comparisons use.
func encodeSpec(s Spec) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("factory: encode spec: %w", err)
	}
	return buf.Bytes(), nil
}

// writeSpec seals the spec into dir.
func writeSpec(dir string, s Spec) error {
	payload, err := encodeSpec(s)
	if err != nil {
		return err
	}
	if err := artifact.WriteFile(filepath.Join(dir, SpecFile), specKind, specVersion, payload); err != nil {
		return fmt.Errorf("factory: write spec: %w", err)
	}
	return nil
}

// readSpecBytes loads the sealed spec payload from dir.
func readSpecBytes(dir string) ([]byte, error) {
	payload, err := artifact.ReadFile(filepath.Join(dir, SpecFile), specKind, specVersion)
	if err != nil {
		return nil, fmt.Errorf("factory: read spec: %w", err)
	}
	return payload, nil
}

// ReadSpec loads the sealed build configuration from a factory directory —
// the first thing a worker-mode process does.
func ReadSpec(dir string) (Spec, error) {
	payload, err := readSpecBytes(dir)
	if err != nil {
		return Spec{}, err
	}
	var s Spec
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("factory: spec undecodable (%v): %w", err, artifact.ErrCorrupt)
	}
	return s, nil
}

// lease is the JSON body of a shard_NNNNN.lease file: who claimed the shard.
// Liveness is carried by the file's mtime (the heartbeat), not the body.
type lease struct {
	Token string `json:"token"`
	PID   int    `json:"pid"`
	Index int    `json:"index"`
}

// claimLease atomically claims shard i for token. O_EXCL is the arbiter:
// exactly one claimant wins; ok=false means someone else holds the lease.
func claimLease(dir string, i int, token string) (ok bool, err error) {
	f, err := os.OpenFile(leasePath(dir, i), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if errors.Is(err, fs.ErrExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("factory: claim shard %d: %w", i, err)
	}
	werr := json.NewEncoder(f).Encode(lease{Token: token, PID: os.Getpid(), Index: i})
	cerr := f.Close()
	if werr != nil || cerr != nil {
		return false, fmt.Errorf("factory: write lease %d: %w", i, errors.Join(werr, cerr))
	}
	return true, nil
}

// readLease parses a lease file. A lease that cannot be read or parsed (torn
// mid-write, or its writer died between create and write) comes back as an
// error; the supervisor falls back to pure mtime staleness for those.
func readLease(path string) (lease, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return lease{}, err
	}
	var l lease
	if err := json.Unmarshal(b, &l); err != nil {
		return lease{}, fmt.Errorf("factory: lease %s unparsable: %w", path, err)
	}
	return l, nil
}

// crashRecord is what a worker durably writes about its own death when the
// labeler panics or fails, just before exiting: the evidence the supervisor
// folds into the shard's attempt count. A SIGKILL'd worker leaves no record —
// its death is machine violence, not the layout's fault, and does not count
// toward poisoning.
type crashRecord struct {
	Index  int    `json:"index"`
	Token  string `json:"token"`
	PID    int    `json:"pid"`
	Reason string `json:"reason"`
	Stack  string `json:"stack,omitempty"`
}

func writeCrash(dir string, c crashRecord) error {
	return artifact.AtomicWrite(crashPath(dir, c.Index), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(c)
	})
}

func readCrash(dir string, i int) (crashRecord, bool, error) {
	b, err := os.ReadFile(crashPath(dir, i))
	if errors.Is(err, fs.ErrNotExist) {
		return crashRecord{}, false, nil
	}
	if err != nil {
		return crashRecord{}, false, err
	}
	var c crashRecord
	if err := json.Unmarshal(b, &c); err != nil {
		return crashRecord{}, false, fmt.Errorf("factory: crash record %d unparsable: %w", i, err)
	}
	return c, true, nil
}

// attemptsRecord is the supervisor's persistent death count for one shard —
// what survives a supervisor restart so PoisonK bounds total deaths, not
// deaths per supervisor incarnation.
type attemptsRecord struct {
	Index      int    `json:"index"`
	Count      int    `json:"count"`
	LastReason string `json:"last_reason"`
	LastStack  string `json:"last_stack,omitempty"`
}

func writeAttempts(dir string, a attemptsRecord) error {
	return artifact.AtomicWrite(attemptsPath(dir, a.Index), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(a)
	})
}

func readAttempts(dir string, i int) (attemptsRecord, bool, error) {
	b, err := os.ReadFile(attemptsPath(dir, i))
	if errors.Is(err, fs.ErrNotExist) {
		return attemptsRecord{}, false, nil
	}
	if err != nil {
		return attemptsRecord{}, false, err
	}
	var a attemptsRecord
	if err := json.Unmarshal(b, &a); err != nil {
		return attemptsRecord{}, false, fmt.Errorf("factory: attempts record %d unparsable: %w", i, err)
	}
	return a, true, nil
}

// PoisonRecord is the sealed quarantine verdict for a layout that killed its
// worker PoisonK times: which layout, how many deaths, and the last death's
// reason and stack (via runx.PanicError when the labeler panicked).
type PoisonRecord struct {
	Index    int    `json:"index"`
	Layout   string `json:"layout"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
	Stack    string `json:"stack,omitempty"`
}

func writePoison(dir string, p PoisonRecord) error {
	payload, err := json.Marshal(p)
	if err != nil {
		return fmt.Errorf("factory: encode poison %d: %w", p.Index, err)
	}
	if err := artifact.WriteFile(poisonPath(dir, p.Index), poisonKind, poisonVersion, payload); err != nil {
		return fmt.Errorf("factory: write poison %d: %w", p.Index, err)
	}
	return nil
}

// ReadPoison loads shard i's sealed poison record.
func ReadPoison(dir string, i int) (PoisonRecord, error) {
	payload, err := artifact.ReadFile(poisonPath(dir, i), poisonKind, poisonVersion)
	if err != nil {
		return PoisonRecord{}, fmt.Errorf("factory: read poison %d: %w", i, err)
	}
	var p PoisonRecord
	if err := json.Unmarshal(payload, &p); err != nil {
		return PoisonRecord{}, fmt.Errorf("factory: poison %d undecodable (%v): %w", i, err, artifact.ErrCorrupt)
	}
	return p, nil
}

// shardState is one shard's coordination state, derived purely from which
// files exist in the directory.
type shardState struct {
	sealed   bool
	leased   bool
	poisoned bool
	leaseMod time.Time
}

// finished reports the shard needs no more work.
func (st shardState) finished() bool { return st.sealed || st.poisoned }

// claimable reports the shard is open for a lease.
func (st shardState) claimable() bool { return !st.finished() && !st.leased }

// scanShards reads the factory directory once and derives every shard's
// state. Names that are not exactly shard_NNNNN.{gob,lease,poison} — crash
// and attempts records, quarantine corpses, the spec and manifest, foreign
// junk — are ignored, which is also what keeps sampling's resume scan safe
// inside a factory directory.
func scanShards(dir string, n int) ([]shardState, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("factory: scan %s: %w", dir, err)
	}
	states := make([]shardState, n)
	for _, e := range entries {
		i, suffix, ok := parseShardName(e.Name())
		if !ok || i >= n {
			continue
		}
		switch suffix {
		case ".gob":
			states[i].sealed = true
		case ".poison":
			states[i].poisoned = true
		case ".lease":
			states[i].leased = true
			if info, err := e.Info(); err == nil {
				states[i].leaseMod = info.ModTime()
			}
		}
	}
	return states, nil
}

// allDone reports whether every shard is sealed or poisoned — the factory's
// termination condition, visible to supervisor and workers alike.
func allDone(states []shardState) bool {
	for _, st := range states {
		if !st.finished() {
			return false
		}
	}
	return true
}

// parseShardName splits "shard_00042.lease" into (42, ".lease", true). The
// parse is strict — exactly five digits, exactly one known suffix — so
// "shard_00042.gob.quarantined" and friends never masquerade as state.
func parseShardName(name string) (int, string, bool) {
	const prefix = "shard_"
	if !strings.HasPrefix(name, prefix) {
		return 0, "", false
	}
	rest := name[len(prefix):]
	if len(rest) < 6 {
		return 0, "", false
	}
	digits, suffix := rest[:5], rest[5:]
	switch suffix {
	case ".gob", ".lease", ".poison", ".crash", ".attempts":
	default:
		return 0, "", false
	}
	i, err := strconv.Atoi(digits)
	if err != nil || i < 0 || digits[0] == '+' || digits[0] == '-' {
		return 0, "", false
	}
	return i, suffix, true
}
