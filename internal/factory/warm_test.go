package factory

import (
	"context"
	"testing"

	"ldmo/internal/sampling"
)

func TestExtractWarmDatasetFromFactoryDir(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(t, 2)
	if _, err := Serial(context.Background(), dir, spec, nil); err != nil {
		t.Fatal(err)
	}
	if err := writeSpec(dir, spec.normalized()); err != nil {
		t.Fatal(err)
	}
	wcfg := sampling.WarmPairConfig{PerLayout: 1, Size: 32}
	ds, err := ExtractWarmDataset(context.Background(), dir, wcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() == 0 {
		t.Fatal("no warm pairs extracted")
	}
	if ds.Size != 32 {
		t.Fatalf("pair size %d, want 32", ds.Size)
	}
	// The extraction is a pure function of the sealed spec: a second pass
	// over the same directory yields byte-identical pairs.
	again, err := ExtractWarmDataset(context.Background(), dir, wcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != ds.Len() {
		t.Fatalf("re-extraction changed pair count: %d vs %d", again.Len(), ds.Len())
	}
	for i := range ds.Pairs {
		for j := range ds.Pairs[i].Opt1.Data {
			if ds.Pairs[i].Opt1.Data[j] != again.Pairs[i].Opt1.Data[j] {
				t.Fatalf("pair %d differs between extractions at %d", i, j)
			}
		}
	}
	// A directory without a spec is a typed failure, not a crash.
	if _, err := ExtractWarmDataset(context.Background(), t.TempDir(), wcfg, nil); err == nil {
		t.Fatal("extraction from an empty directory must fail")
	}
}
