package factory

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"ldmo/internal/faultinject"
	"ldmo/internal/layout"
	"ldmo/internal/sampling"
)

// syncLog is a goroutine-safe log sink: workers, slots, and the supervisor
// all write to it concurrently.
type syncLog struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *syncLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *syncLog) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// testSpec builds a small, fast corpus spec: n generated layouts, a
// few-iteration ILT label, and drill-friendly heartbeat timings.
func testSpec(t *testing.T, n int) Spec {
	t.Helper()
	pool, err := layout.GenerateSet(11, n, layout.DefaultGenParams())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampling.DefaultConfig()
	cfg.ILT.MaxIters = 4
	cfg.MatchCount = 20
	return Spec{
		Layouts:      pool,
		Sampling:     cfg,
		HeartbeatMS:  25,
		StaleAfterMS: 300,
	}
}

// fastRestart returns drill-speed supervisor timings.
func fastRestart(cfg *Config) {
	cfg.RestartBase = 10 * time.Millisecond
	cfg.RestartMax = 100 * time.Millisecond
}

// readFileT reads a file or fails the test.
func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// requireManifestIdentical byte-compares the sealed manifests of two factory
// directories — the chaos drill's acceptance bar — plus every shard file.
func requireManifestIdentical(t *testing.T, gotDir, wantDir string, n int) {
	t.Helper()
	got := readFileT(t, gotDir+"/"+ManifestFile)
	want := readFileT(t, wantDir+"/"+ManifestFile)
	if string(got) != string(want) {
		t.Fatalf("manifest bytes differ between %s and %s", gotDir, wantDir)
	}
	for i := 0; i < n; i++ {
		gs := readFileT(t, sampling.ShardFile(gotDir, i))
		ws := readFileT(t, sampling.ShardFile(wantDir, i))
		if string(gs) != string(ws) {
			t.Fatalf("shard %d bytes differ between builds", i)
		}
	}
}

// TestFactoryMatchesSerial: an undisturbed in-process factory build seals the
// same shards and publishes the same manifest, byte for byte, as a serial
// sampling.BuildDatasetCtx run.
func TestFactoryMatchesSerial(t *testing.T) {
	spec := testSpec(t, 3)
	serialDir := t.TempDir()
	want, err := Serial(context.Background(), serialDir, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want.Kept == 0 || want.Poisoned != 0 {
		t.Fatalf("serial reference degenerate: %+v", want)
	}

	dir := t.TempDir()
	cfg := Config{Dir: dir, Spec: spec, Workers: 2}
	fastRestart(&cfg)
	rep, err := Build(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sealed != 3 || len(rep.Poisoned) != 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Kept != want.Kept || rep.Dropped != want.Dropped {
		t.Fatalf("dedupe summary diverged: report %+v, want %+v", rep, want)
	}
	requireManifestIdentical(t, dir, serialDir, 3)
}

// TestFactoryChaosConvergesToSerial is the in-process chaos drill: workers
// are repeatedly "SIGKILL'd" right after claiming a lease, and the build must
// still converge to a manifest byte-identical to the undisturbed serial
// reference, with every reclaim logged and zero poisoned shards.
func TestFactoryChaosConvergesToSerial(t *testing.T) {
	defer faultinject.Reset()
	spec := testSpec(t, 4)
	serialDir := t.TempDir()
	if _, err := Serial(context.Background(), serialDir, spec, nil); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	log := &syncLog{}
	cfg := Config{Dir: dir, Spec: spec, Workers: 2, Log: log}
	fastRestart(&cfg)

	// Arm the kill point before the build so the very first claim dies,
	// then keep re-arming it from the side for a while: each arm kills at
	// most one claim (FireAt disarms on fire), so progress between kills is
	// guaranteed and the drill always converges.
	faultinject.Set(faultinject.WorkerSigkill, "0")
	stopKiller := make(chan struct{})
	var killerWG sync.WaitGroup
	killerWG.Add(1)
	go func() {
		defer killerWG.Done()
		for i := 0; i < 4; i++ {
			select {
			case <-stopKiller:
				return
			case <-time.After(120 * time.Millisecond):
				faultinject.Set(faultinject.WorkerSigkill, "0")
			}
		}
	}()

	rep, err := Build(context.Background(), cfg)
	close(stopKiller)
	killerWG.Wait()
	faultinject.Reset()
	if err != nil {
		t.Fatalf("chaos build failed: %v\nlog:\n%s", err, log.String())
	}
	if rep.Sealed != 4 || len(rep.Poisoned) != 0 {
		t.Fatalf("chaos build incomplete: %+v\nlog:\n%s", rep, log.String())
	}
	if rep.Reclaims < 1 || rep.Restarts < 1 {
		t.Fatalf("chaos build saw no kills: %+v\nlog:\n%s", rep, log.String())
	}
	if !strings.Contains(log.String(), "reclaimed shard") {
		t.Fatalf("reclaims not logged:\n%s", log.String())
	}
	requireManifestIdentical(t, dir, serialDir, 4)
}

// TestFactoryHungWorkerReclaim: a worker that stops heartbeating without
// dying (lease-stale drill) must be killed by the supervisor and its shard
// reclaimed and completed — hung workers must never stall the build.
func TestFactoryHungWorkerReclaim(t *testing.T) {
	defer faultinject.Reset()
	spec := testSpec(t, 3)
	dir := t.TempDir()
	log := &syncLog{}
	cfg := Config{Dir: dir, Spec: spec, Workers: 1, Log: log}
	fastRestart(&cfg)

	faultinject.Set(faultinject.LeaseStale, "1")
	rep, err := Build(context.Background(), cfg)
	faultinject.Reset()
	if err != nil {
		t.Fatalf("build failed: %v\nlog:\n%s", err, log.String())
	}
	if rep.Sealed != 3 || len(rep.Poisoned) != 0 {
		t.Fatalf("build incomplete: %+v\nlog:\n%s", rep, log.String())
	}
	if rep.HungKills < 1 || rep.Reclaims < 1 || rep.Restarts < 1 {
		t.Fatalf("hung worker not reclaimed: %+v\nlog:\n%s", rep, log.String())
	}
	if !strings.Contains(log.String(), "killing hung worker") {
		t.Fatalf("hung-worker kill not logged:\n%s", log.String())
	}
}

// TestFactoryPoisonQuarantine: a layout whose labeler panics on every
// attempt kills its worker PoisonK times, is quarantined as poison with the
// panic and stack recorded, and the build still completes with the rest of
// the corpus sealed — never a crash loop, never a hang.
func TestFactoryPoisonQuarantine(t *testing.T) {
	defer faultinject.Reset()
	spec := testSpec(t, 3)
	spec.PoisonK = 2
	dir := t.TempDir()
	log := &syncLog{}
	cfg := Config{Dir: dir, Spec: spec, Workers: 2, Log: log}
	fastRestart(&cfg)

	faultinject.Set(faultinject.LabelPanicSticky, "1")
	rep, err := Build(context.Background(), cfg)
	faultinject.Reset()
	if err != nil {
		t.Fatalf("build failed: %v\nlog:\n%s", err, log.String())
	}
	if rep.Sealed != 2 || len(rep.Poisoned) != 1 || rep.Poisoned[0] != 1 {
		t.Fatalf("poison not quarantined: %+v\nlog:\n%s", rep, log.String())
	}
	p, err := ReadPoison(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Attempts != 2 || p.Layout != spec.Layouts[1].Name {
		t.Fatalf("poison record wrong: %+v", p)
	}
	if !strings.Contains(p.Reason, "sticky label panic") || p.Stack == "" {
		t.Fatalf("poison record missing panic evidence: %+v", p)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Poisoned != 1 || !m.Entries[1].Poison || m.Entries[1].Digest != "" {
		t.Fatalf("manifest poison entry wrong: %+v", m.Entries[1])
	}
}

// TestFactoryResume: a build cancelled mid-flight resumes from the leases
// and shards on disk and converges to the same manifest as the serial
// reference; an initialized directory is refused without Resume, and a
// resume with a different spec is refused too.
func TestFactoryResume(t *testing.T) {
	spec := testSpec(t, 3)
	serialDir := t.TempDir()
	if _, err := Serial(context.Background(), serialDir, spec, nil); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	cfg := Config{Dir: dir, Spec: spec, Workers: 2}
	fastRestart(&cfg)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	_, err := Build(ctx, cfg)
	cancel()
	if err == nil {
		// The whole corpus finished inside the timeout; the resume below
		// still exercises the resume-over-complete path.
		t.Log("build completed before the interrupt landed")
	}

	if _, err := Build(context.Background(), cfg); err == nil {
		t.Fatal("re-running an initialized factory dir without Resume must fail")
	}

	bad := cfg
	bad.Resume = true
	bad.Spec.PoisonK = 7
	if _, err := Build(context.Background(), bad); err == nil ||
		!strings.Contains(err.Error(), "differs") {
		t.Fatalf("resume with a different spec must be refused, got %v", err)
	}

	cfg.Resume = true
	rep, err := Build(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if rep.Sealed != 3 || len(rep.Poisoned) != 0 {
		t.Fatalf("resume incomplete: %+v", rep)
	}
	requireManifestIdentical(t, dir, serialDir, 3)
}

// TestParseShardName pins the strict coordination-file parse: only exact
// shard_NNNNN.{gob,lease,poison,crash,attempts} names are factory state.
func TestParseShardName(t *testing.T) {
	cases := []struct {
		name   string
		i      int
		suffix string
		ok     bool
	}{
		{"shard_00042.lease", 42, ".lease", true},
		{"shard_00000.gob", 0, ".gob", true},
		{"shard_00007.poison", 7, ".poison", true},
		{"shard_00007.crash", 7, ".crash", true},
		{"shard_00007.attempts", 7, ".attempts", true},
		{"shard_00042.gob.quarantined", 0, "", false},
		{"shard_00042.gob.tmp", 0, "", false},
		{"shard_42.gob", 0, "", false},
		{"shard_abcde.gob", 0, "", false},
		{"factory.gob", 0, "", false},
		{"manifest.gob", 0, "", false},
		{"notes.txt", 0, "", false},
	}
	for _, c := range cases {
		i, suffix, ok := parseShardName(c.name)
		if ok != c.ok || (ok && (i != c.i || suffix != c.suffix)) {
			t.Errorf("parseShardName(%q) = (%d, %q, %v), want (%d, %q, %v)",
				c.name, i, suffix, ok, c.i, c.suffix, c.ok)
		}
	}
}

// TestClaimLeaseExclusive: O_EXCL arbitration — exactly one of many
// concurrent claimants wins each shard.
func TestClaimLeaseExclusive(t *testing.T) {
	dir := t.TempDir()
	const claimants = 8
	wins := make(chan string, claimants)
	var wg sync.WaitGroup
	for c := 0; c < claimants; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			token := "w" + strings.Repeat("x", c+1)
			ok, err := claimLease(dir, 5, token)
			if err != nil {
				t.Error(err)
				return
			}
			if ok {
				wins <- token
			}
		}(c)
	}
	wg.Wait()
	close(wins)
	var winners []string
	for w := range wins {
		winners = append(winners, w)
	}
	if len(winners) != 1 {
		t.Fatalf("lease claimed by %d workers: %v", len(winners), winners)
	}
	l, err := readLease(leasePath(dir, 5))
	if err != nil {
		t.Fatal(err)
	}
	if l.Token != winners[0] || l.Index != 5 {
		t.Fatalf("lease body %+v does not match winner %s", l, winners[0])
	}
}

// TestStripChaosFaults: restarted workers lose the one-shot kill points but
// keep sticky ones.
func TestStripChaosFaults(t *testing.T) {
	env := []string{
		"PATH=/bin",
		faultinject.EnvFaults + "=" + faultinject.WorkerSigkill + "=0," +
			faultinject.LabelPanicSticky + "=2," + faultinject.LeaseStale + "=1",
	}
	got := stripChaosFaults(env)
	want := faultinject.EnvFaults + "=" + faultinject.LabelPanicSticky + "=2"
	if got[1] != want {
		t.Fatalf("stripChaosFaults = %q, want %q", got[1], want)
	}
	if got[0] != "PATH=/bin" {
		t.Fatalf("unrelated env disturbed: %q", got[0])
	}
}
