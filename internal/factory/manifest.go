package factory

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"ldmo/internal/artifact"
	"ldmo/internal/cluster"
	"ldmo/internal/sampling"
	"ldmo/internal/sift"
)

// ManifestConfig parameterizes corpus dedupe and clustering. The zero value
// is sensible: exact-signature dedupe only, clusters sized to the kept set,
// pairwise work capped at 2048 comparisons' worth of layouts.
type ManifestConfig struct {
	// DedupeThreshold drops a layout whose symmetrized SIFT distance to an
	// earlier kept layout is <= the threshold. 0 dedupes only exact
	// signature matches; negative disables dedupe entirely.
	DedupeThreshold float64
	// Clusters is the k-medoids cluster count over the kept set; <=0
	// selects max(1, kept/8).
	Clusters int
	// PairwiseCap bounds the O(n^2) SIFT similarity work: when the
	// non-poison layout count squared exceeds it, similarity dedupe and
	// clustering are skipped (exact-signature dedupe still runs) and the
	// skip is logged. <=0 selects 2048.
	PairwiseCap int
}

func (m ManifestConfig) normalized() ManifestConfig {
	if m.PairwiseCap <= 0 {
		m.PairwiseCap = 2048
	}
	return m
}

// Entry is one layout's line in the manifest.
type Entry struct {
	// Index and Layout identify the shard.
	Index  int    `json:"index"`
	Layout string `json:"layout"`
	// Digest is the sha256 of the sealed shard file's bytes — the
	// content address a consumer verifies before training on the shard.
	// Empty for poison entries, which have no shard.
	Digest string `json:"digest,omitempty"`
	// Sig is the sha256 of the layout's SIFT descriptors — the dedupe
	// signature, a function of the layout geometry alone.
	Sig string `json:"sig,omitempty"`
	// Poison marks a quarantined layout (see its shard_NNNNN.poison
	// record for the evidence).
	Poison bool `json:"poison,omitempty"`
	// Dropped marks a near-duplicate removed by dedupe; DupOf is the kept
	// entry it duplicated (-1 otherwise).
	Dropped bool `json:"dropped,omitempty"`
	DupOf   int  `json:"dup_of"`
	// Cluster is the k-medoids cluster of a kept entry (-1 when not
	// clustered).
	Cluster int `json:"cluster"`
}

// Manifest is the sealed description of a published corpus. It contains no
// timestamps, PIDs, stacks, or any other run-dependent data — every field is
// a pure function of (layouts, config, shard bytes) — which is what makes a
// chaos-ridden multi-process build's manifest byte-identical to a serial
// one's.
type Manifest struct {
	Layouts  int     `json:"layouts"`
	Sealed   int     `json:"sealed"`
	Poisoned int     `json:"poisoned"`
	Kept     int     `json:"kept"`
	Dropped  int     `json:"dropped"`
	Clusters int     `json:"clusters"`
	Entries  []Entry `json:"entries"`
}

// BuildManifest verifies every sealed shard, digests it, computes SIFT
// dedupe signatures, drops near-duplicate layouts deterministically (earliest
// index wins), and clusters the kept set with k-medoids. It requires the
// corpus to be complete: every index sealed or poisoned.
func BuildManifest(dir string, spec Spec, log io.Writer) (*Manifest, error) {
	spec = spec.normalized()
	mc := spec.Manifest
	n := len(spec.Layouts)
	entries := make([]Entry, n)
	feats := make([][]sift.Feature, n)
	poisoned := 0
	for i, l := range spec.Layouts {
		e := Entry{Index: i, Layout: l.Name, DupOf: -1, Cluster: -1}
		if _, err := os.Lstat(poisonPath(dir, i)); err == nil {
			e.Poison = true
			poisoned++
			entries[i] = e
			continue
		}
		if err := sampling.VerifyShard(dir, i, l.Name); err != nil {
			return nil, fmt.Errorf("factory: manifest: %w", err)
		}
		b, err := os.ReadFile(sampling.ShardFile(dir, i))
		if err != nil {
			return nil, fmt.Errorf("factory: manifest: %w", err)
		}
		sum := sha256.Sum256(b)
		e.Digest = hex.EncodeToString(sum[:])
		feats[i] = sift.Detect(l.Rasterize(spec.Sampling.Res), spec.Sampling.SIFT)
		e.Sig = sigOf(feats[i])
		entries[i] = e
	}

	nonPoison := n - poisoned
	pairwise := mc.DedupeThreshold >= 0 && nonPoison*nonPoison <= mc.PairwiseCap
	if !pairwise && mc.DedupeThreshold >= 0 && log != nil {
		fmt.Fprintf(log, "factory: manifest: %d layouts exceed pairwise cap %d — similarity dedupe and clustering skipped, exact-signature dedupe only\n",
			nonPoison, mc.PairwiseCap)
	}

	dist := func(a, b int) float64 {
		return (sift.LayoutSimilarity(feats[a], feats[b], spec.Sampling.Dth, spec.Sampling.MatchCount) +
			sift.LayoutSimilarity(feats[b], feats[a], spec.Sampling.Dth, spec.Sampling.MatchCount)) / 2
	}

	// Dedupe in index order: the earliest of a duplicate group is kept, so
	// the outcome does not depend on build interleaving.
	var kept []int
	for i := range entries {
		e := &entries[i]
		if e.Poison {
			continue
		}
		if mc.DedupeThreshold < 0 {
			kept = append(kept, i)
			continue
		}
		dup := -1
		for _, k := range kept {
			if entries[k].Sig == e.Sig {
				dup = k
				break
			}
			if pairwise && mc.DedupeThreshold > 0 && dist(k, i) <= mc.DedupeThreshold {
				dup = k
				break
			}
		}
		if dup >= 0 {
			e.Dropped = true
			e.DupOf = dup
			continue
		}
		kept = append(kept, i)
	}

	clusters := 0
	if pairwise && len(kept) > 1 {
		k := mc.Clusters
		if k <= 0 {
			k = max(1, len(kept)/8)
		}
		if k > len(kept) {
			k = len(kept)
		}
		dm := make([][]float64, len(kept))
		for a := range kept {
			dm[a] = make([]float64, len(kept))
		}
		for a := 0; a < len(kept); a++ {
			for b := a + 1; b < len(kept); b++ {
				d := dist(kept[a], kept[b])
				dm[a][b] = d
				dm[b][a] = d
			}
		}
		res, err := cluster.KMedoids(dm, k, spec.Sampling.Seed, 100)
		if err != nil {
			return nil, fmt.Errorf("factory: manifest clustering: %w", err)
		}
		for j, i := range kept {
			entries[i].Cluster = res.Assign[j]
		}
		clusters = k
	}

	return &Manifest{
		Layouts:  n,
		Sealed:   nonPoison,
		Poisoned: poisoned,
		Kept:     len(kept),
		Dropped:  nonPoison - len(kept),
		Clusters: clusters,
		Entries:  entries,
	}, nil
}

// sigOf hashes a feature set's geometry and descriptors through their exact
// float64 bit patterns — stable across processes, architectures be damned.
func sigOf(feats []sift.Feature) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, f := range feats {
		put(f.X)
		put(f.Y)
		put(f.Scale)
		put(f.Orientation)
		for _, d := range f.Desc {
			put(d)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeManifest seals the manifest into dir.
func writeManifest(dir string, m *Manifest) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("factory: encode manifest: %w", err)
	}
	if err := artifact.WriteFile(filepath.Join(dir, ManifestFile), manifestKind, manifestVersion, payload); err != nil {
		return fmt.Errorf("factory: write manifest: %w", err)
	}
	return nil
}

// ReadManifest loads a sealed corpus manifest.
func ReadManifest(dir string) (*Manifest, error) {
	payload, err := artifact.ReadFile(filepath.Join(dir, ManifestFile), manifestKind, manifestVersion)
	if err != nil {
		return nil, fmt.Errorf("factory: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("factory: manifest undecodable (%v): %w", err, artifact.ErrCorrupt)
	}
	return &m, nil
}

// Serial builds the same corpus in-process on sampling.BuildDatasetCtx and
// publishes the same manifest — the undisturbed reference the chaos drill
// compares a supervised build against, and the single-process fallback for
// small corpora.
func Serial(ctx context.Context, dir string, spec Spec, log io.Writer) (*Manifest, error) {
	spec = spec.normalized()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("factory: %w", err)
	}
	cfg := spec.Sampling
	cfg.Checkpoint = dir
	cfg.Workers = 1
	if _, _, err := sampling.BuildDatasetCtx(ctx, spec.Layouts, cfg, log); err != nil {
		return nil, err
	}
	m, err := BuildManifest(dir, spec, log)
	if err != nil {
		return nil, err
	}
	if err := writeManifest(dir, m); err != nil {
		return nil, err
	}
	return m, nil
}
