package factory

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"ldmo/internal/faultinject"
	"ldmo/internal/runx"
	"ldmo/internal/sampling"
)

// errKilled is an in-process worker's stand-in for SIGKILL: the run loop
// returns it the instant the supervisor (or a fault point) "kills" the
// worker, leaving its lease behind exactly as a dead process would.
var errKilled = errors.New("factory: worker killed")

// crashExit reports that the labeler died on a shard and the worker durably
// wrote its crash record before exiting — the path a worker-mode process
// turns into a nonzero exit code.
type crashExit struct {
	index int
	cause error
}

func (e *crashExit) Error() string {
	return fmt.Sprintf("factory: labeling shard %d died: %v", e.index, e.cause)
}

func (e *crashExit) Unwrap() error { return e.cause }

// AsCrash unwraps err to the shard index of a labeler death, when err is one.
func AsCrash(err error) (int, bool) {
	var ce *crashExit
	if errors.As(err, &ce) {
		return ce.index, true
	}
	return 0, false
}

// worker is one labeling loop: scan, claim, heartbeat, build, seal, repeat
// until every shard is sealed or poisoned. The same loop runs as a re-exec'd
// process (RunWorker) and as a supervisor goroutine (in-process mode); the
// only difference is how it dies.
type worker struct {
	dir   string
	spec  Spec
	token string
	log   io.Writer
	// killCh is non-nil in in-process mode; the supervisor closes it to
	// simulate SIGKILL. dead latches the same condition.
	killCh chan struct{}
	dead   atomic.Bool
}

// RunWorker serves one worker process: read the sealed spec from dir, then
// claim-and-label until the corpus is complete (nil), the context dies
// (Interrupted), or the labeler crashes after durably recording it
// (crashExit). token identifies this worker in leases; empty selects a
// PID-derived token for supervisor-less (manual) workers.
func RunWorker(ctx context.Context, dir, token string, log io.Writer) error {
	spec, err := ReadSpec(dir)
	if err != nil {
		return err
	}
	if token == "" {
		token = fmt.Sprintf("pid-%d", os.Getpid())
	}
	w := &worker{dir: dir, spec: spec.normalized(), token: token, log: log}
	return w.run(ctx)
}

func (w *worker) logf(format string, args ...any) {
	if w.log != nil {
		fmt.Fprintf(w.log, format+"\n", args...)
	}
}

// alive returns the reason to stop, if any: a supervisor kill or a dead
// context.
func (w *worker) alive(ctx context.Context) error {
	if w.dead.Load() {
		return errKilled
	}
	select {
	case <-w.killCh: // nil channel in process mode: never ready
		return errKilled
	default:
	}
	return ctx.Err()
}

// run is the claim loop. Workers do not exit when all remaining work is
// merely leased elsewhere — a lease may yet be reclaimed and need a builder —
// only when every shard is sealed or poisoned.
func (w *worker) run(ctx context.Context) error {
	hb := w.spec.heartbeat()
	claims := 0
	for {
		if err := w.alive(ctx); err != nil {
			return err
		}
		states, err := scanShards(w.dir, len(w.spec.Layouts))
		if err != nil {
			return err
		}
		if allDone(states) {
			return nil
		}
		claimed := false
		for i, st := range states {
			if !st.claimable() {
				continue
			}
			if err := w.alive(ctx); err != nil {
				return err
			}
			ok, err := claimLease(w.dir, i, w.token)
			if err != nil {
				return err
			}
			if !ok {
				continue // lost the race; next shard
			}
			claimed = true
			// Chaos drill: die right after the arg-th successful claim,
			// lease freshly planted and unheartbeaten — the worst moment.
			if faultinject.FireAt(faultinject.WorkerSigkill, claims) {
				return w.die()
			}
			claims++
			if err := w.build(ctx, i, hb); err != nil {
				return err
			}
		}
		if !claimed {
			// Everything is sealed, poisoned, or leased by someone else.
			// Sleep a heartbeat and rescan: a reclaim may free work.
			if err := w.sleep(ctx, hb); err != nil {
				return err
			}
		}
	}
}

// die is the worker's simulated SIGKILL. A real process kills itself with
// the actual signal (no deferred cleanup runs, exactly like machine
// violence); an in-process worker latches dead and unwinds with errKilled,
// leaving its lease behind.
func (w *worker) die() error {
	if w.killCh == nil {
		w.logf("worker %s: self-SIGKILL (chaos drill)", w.token)
		_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: the signal is not catchable
	}
	w.dead.Store(true)
	return errKilled
}

// build labels shard i under the already-held lease: heartbeat the lease
// mtime, run the deterministic labeler inside a panic boundary, seal or
// durably record the death.
func (w *worker) build(ctx context.Context, i int, hb time.Duration) error {
	// Hung-worker drill: the worker holding shard arg stops heartbeating
	// and hangs without dying, so only the supervisor's staleness rule can
	// recover the shard.
	if faultinject.ArgInt(faultinject.LeaseStale, -1) == i {
		faultinject.Clear(faultinject.LeaseStale)
		w.logf("worker %s: hanging on shard %d (lease-stale drill)", w.token, i)
		return w.hang(ctx)
	}

	stop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				now := time.Now()
				_ = os.Chtimes(leasePath(w.dir, i), now, now)
			}
		}
	}()

	err := runx.Recover(func() error {
		if faultinject.ArgInt(faultinject.LabelPanicSticky, -1) == i {
			panic(fmt.Sprintf("factory: sticky label panic on shard %d", i))
		}
		_, q, err := sampling.BuildShard(w.dir, i, w.spec.Layouts[i], w.spec.Sampling)
		if q != "" {
			w.logf("worker %s: quarantined rejected shard %d to %s; relabeled", w.token, i, q)
		}
		return err
	})
	close(stop)
	hbWG.Wait()

	if err != nil {
		if runx.Interrupted(err) {
			// Shutdown mid-build: leave the lease; a resume reclaims it.
			return err
		}
		rec := crashRecord{Index: i, Token: w.token, PID: os.Getpid(), Reason: err.Error()}
		if pe, ok := runx.AsPanic(err); ok {
			rec.Stack = string(pe.Stack)
		}
		if werr := writeCrash(w.dir, rec); werr != nil {
			return errors.Join(werr, err)
		}
		w.logf("worker %s: shard %d labeler died (%v); crash record written", w.token, i, err)
		return &crashExit{index: i, cause: err}
	}
	return w.releaseLease(i)
}

// releaseLease removes shard i's lease if this worker still holds it. The
// lease may already be gone (the supervisor reclaimed a stalled heartbeat
// while the build finished anyway — the seal was byte-identical and atomic,
// so that race is benign) or held by a successor, which must not lose it.
func (w *worker) releaseLease(i int) error {
	path := leasePath(w.dir, i)
	l, err := readLease(path)
	if errors.Is(err, fs.ErrNotExist) || (err == nil && l.Token != w.token) {
		return nil
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("factory: release lease %d: %w", i, err)
	}
	return nil
}

// hang blocks until killed or cancelled — the lease-stale drill's body.
func (w *worker) hang(ctx context.Context) error {
	select {
	case <-w.killCh:
		return errKilled
	case <-ctx.Done():
		return ctx.Err()
	}
}

// sleep waits d, interruptible by kill or cancellation.
func (w *worker) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-w.killCh:
		return errKilled
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
