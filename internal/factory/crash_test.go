package factory

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"ldmo/internal/faultinject"
	"ldmo/internal/runx"
)

// TestMain doubles as the factory worker: when LDMO_FACTORY_WORKER is set,
// the test binary re-execs into a real worker-mode process the supervisor
// can SIGKILL — the only honest way to drill crash-only coordination.
func TestMain(m *testing.M) {
	if os.Getenv("LDMO_FACTORY_WORKER") == "1" {
		workerMain()
		return
	}
	os.Exit(m.Run())
}

// workerMain mirrors cmd/ldmo-factory's worker mode: serve the directory
// from the environment, exit 0 on a complete corpus, 3 on a recorded labeler
// crash, 130 on interruption.
func workerMain() {
	dir := os.Getenv(EnvWorkerDir)
	token := os.Getenv(EnvWorkerToken)
	err := RunWorker(context.Background(), dir, token, os.Stderr)
	switch {
	case err == nil:
		os.Exit(0)
	case runx.Interrupted(err):
		os.Exit(130)
	default:
		fmt.Fprintln(os.Stderr, err)
		if _, ok := AsCrash(err); ok {
			os.Exit(3)
		}
		os.Exit(1)
	}
}

// TestFactoryRealProcessChaosDrill is the tentpole acceptance drill with
// real processes: every first-generation worker is re-exec'd with an armed
// worker-sigkill fault and SIGKILLs itself right after claiming its first
// lease; the supervisor must reclaim each abandoned lease, restart the slots
// with the chaos point stripped, and converge to a manifest byte-identical
// to the undisturbed serial build.
func TestFactoryRealProcessChaosDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec drill skipped in -short")
	}
	spec := testSpec(t, 3)
	serialDir := t.TempDir()
	if _, err := Serial(context.Background(), serialDir, spec, nil); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	log := &syncLog{}
	cfg := Config{
		Dir:     dir,
		Spec:    spec,
		Workers: 2,
		Log:     log,
		WorkerCommand: func(dir string) *exec.Cmd {
			cmd := exec.Command(os.Args[0], "-test.run=^$")
			cmd.Env = append(os.Environ(),
				"LDMO_FACTORY_WORKER=1",
				faultinject.EnvFaults+"="+faultinject.WorkerSigkill+"=0",
			)
			cmd.Stderr = log
			return cmd
		},
	}
	fastRestart(&cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := Build(ctx, cfg)
	if err != nil {
		t.Fatalf("real-process chaos build failed: %v\nlog:\n%s", err, log.String())
	}
	if rep.Sealed != 3 || len(rep.Poisoned) != 0 {
		t.Fatalf("chaos build incomplete: %+v\nlog:\n%s", rep, log.String())
	}
	// Both gen-0 workers die once each: at least two reclaims and two
	// restarts, all logged.
	if rep.Reclaims < 2 || rep.Restarts < 2 {
		t.Fatalf("expected every gen-0 worker killed: %+v\nlog:\n%s", rep, log.String())
	}
	if strings.Count(log.String(), "reclaimed shard") < rep.Reclaims {
		t.Fatalf("reclaims not all logged (%d): \n%s", rep.Reclaims, log.String())
	}
	requireManifestIdentical(t, dir, serialDir, 3)
}

// TestFactoryRealProcessPoisonDrill runs the poison quarantine against real
// processes: a sticky label panic on shard 1 must survive the environment
// strip on restart (sticky points are kept), kill PoisonK real workers with
// exit code 3, and end in a sealed poison record, not a crash loop.
func TestFactoryRealProcessPoisonDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec drill skipped in -short")
	}
	spec := testSpec(t, 3)
	spec.PoisonK = 2
	dir := t.TempDir()
	log := &syncLog{}
	cfg := Config{
		Dir:     dir,
		Spec:    spec,
		Workers: 1,
		Log:     log,
		WorkerCommand: func(dir string) *exec.Cmd {
			cmd := exec.Command(os.Args[0], "-test.run=^$")
			cmd.Env = append(os.Environ(),
				"LDMO_FACTORY_WORKER=1",
				faultinject.EnvFaults+"="+faultinject.LabelPanicSticky+"=1",
			)
			cmd.Stderr = log
			return cmd
		},
	}
	fastRestart(&cfg)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := Build(ctx, cfg)
	if err != nil {
		t.Fatalf("poison drill failed: %v\nlog:\n%s", err, log.String())
	}
	if rep.Sealed != 2 || len(rep.Poisoned) != 1 || rep.Poisoned[0] != 1 {
		t.Fatalf("poison drill report: %+v\nlog:\n%s", rep, log.String())
	}
	p, err := ReadPoison(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Attempts != 2 || !strings.Contains(p.Reason, "sticky label panic") || p.Stack == "" {
		t.Fatalf("poison record missing evidence: %+v", p)
	}
}
