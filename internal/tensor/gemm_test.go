package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randSlice fills a slice with standard normals; exact zeros are measure-zero
// so the naive engine's zero-skip branch cannot introduce a bitwise divergence.
func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// gemmShapes are the randomized-property shapes: every remainder class of the
// 4-row strips and 4x4 dot tiles, the k=1/n=1/m=1 edges, and sizes spanning
// one panel up to several blocking panels in every dimension.
func gemmShapes(rng *rand.Rand) [][3]int {
	shapes := [][3]int{
		{1, 1, 1}, {1, 7, 1}, {4, 1, 4}, {3, 5, 2}, {5, 3, 9},
		{4, 4, 4}, {8, 49, 33}, {13, 17, 19}, {64, 256, 512},
		{65, 257, 513}, {2, 300, 600}, {48, 144, 784},
	}
	for i := 0; i < 8; i++ {
		shapes = append(shapes, [3]int{1 + rng.Intn(70), 1 + rng.Intn(300), 1 + rng.Intn(600)})
	}
	return shapes
}

// TestBlockedMatMulMatchesNaive is the kernel contract: on finite inputs the
// blocked engine reproduces the naive reference bit for bit (ascending-k
// accumulation per element), across remainder tiles and degenerate edges.
func TestBlockedMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, sh := range gemmShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		got := make([]float64, m*n)
		want := make([]float64, m*n)
		gemmPacked(a, false, m, k, b, n, got)
		matMulNaive(a, m, k, b, n, want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MatMul m=%d k=%d n=%d: out[%d] = %g (blocked) vs %g (naive), diff %g",
					m, k, n, i, got[i], want[i], got[i]-want[i])
			}
		}
	}
}

func TestBlockedMatMulATBMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sh := range gemmShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := randSlice(rng, k*m) // stored k x m, read transposed
		b := randSlice(rng, k*n)
		got := make([]float64, m*n)
		want := make([]float64, m*n)
		gemmPacked(a, true, m, k, b, n, got)
		matMulATBNaive(a, k, m, b, n, want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MatMulATB m=%d k=%d n=%d: out[%d] = %g vs %g", m, k, n, i, got[i], want[i])
			}
		}
	}
}

func TestBlockedMatMulABTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, sh := range gemmShapes(rng) {
		m, k, n := sh[0], sh[1], sh[2]
		a := randSlice(rng, m*k)
		b := randSlice(rng, n*k) // stored n x k, read transposed
		got := make([]float64, m*n)
		want := make([]float64, m*n)
		gemmABT(a, m, k, b, n, got)
		matMulABTNaive(a, m, k, b, n, want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MatMulABT m=%d k=%d n=%d: out[%d] = %g vs %g", m, k, n, i, got[i], want[i])
			}
		}
	}
}

// TestBlockedToleratesZeros covers the one input class where bitwise equality
// is not guaranteed by construction: exact zeros take the naive engine's skip
// branch. The contract there is the documented 1e-9 agreement.
func TestBlockedToleratesZeros(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	m, k, n := 9, 37, 21
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	for i := 0; i < len(a); i += 3 {
		a[i] = 0
	}
	for i := 0; i < len(b); i += 4 {
		b[i] = 0
	}
	got := make([]float64, m*n)
	want := make([]float64, m*n)
	gemmPacked(a, false, m, k, b, n, got)
	matMulNaive(a, m, k, b, n, want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("out[%d] = %g vs %g beyond 1e-9", i, got[i], want[i])
		}
	}
}

// TestEnvSelectsNaiveEngine proves the LDMO_GEMM=naive escape hatch reaches
// the reference kernels through the exported API.
func TestEnvSelectsNaiveEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	m, k, n := 5, 11, 7
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	blocked := make([]float64, m*n)
	naive := make([]float64, m*n)
	MatMul(a, m, k, b, n, blocked)
	t.Setenv(EnvGEMM, ModeNaive)
	MatMul(a, m, k, b, n, naive)
	for i := range naive {
		if blocked[i] != naive[i] {
			t.Fatalf("engines disagree at %d: %g vs %g", i, blocked[i], naive[i])
		}
	}
}

// TestRowParallelGEMMBitIdentical checks the fixed-shard-order contract:
// row-parallel blocked GEMM is bit-identical to serial at any lane count.
func TestRowParallelGEMMBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	defer SetWorkers(1)
	for _, sh := range [][3]int{{37, 120, 200}, {64, 256, 512}, {6, 30, 40}} {
		m, k, n := sh[0], sh[1], sh[2]
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		SetWorkers(1)
		serial := make([]float64, m*n)
		gemmPacked(a, false, m, k, b, n, serial)
		for _, w := range []int{2, 3, 8} {
			SetWorkers(w)
			got := make([]float64, m*n)
			gemmPacked(a, false, m, k, b, n, got)
			for i := range serial {
				if got[i] != serial[i] {
					t.Fatalf("workers=%d m=%d: out[%d] = %g vs serial %g", w, m, i, got[i], serial[i])
				}
			}
		}
	}
}

// TestIm2ColBatchMatchesPerImage checks the whole-batch column matrix holds
// exactly the per-image expansions in its column blocks.
func TestIm2ColBatchMatchesPerImage(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := ConvGeom{InC: 3, InH: 9, InW: 7, K: 3, Stride: 2, Pad: 1}
	nBatch := 4
	cols := g.OutH() * g.OutW()
	ck := g.InC * g.K * g.K
	imgLen := g.InC * g.InH * g.InW
	imgs := randSlice(rng, nBatch*imgLen)

	batch := make([]float64, ck*nBatch*cols)
	Im2ColBatch(imgs, nBatch, g, batch)
	single := make([]float64, ck*cols)
	for b := 0; b < nBatch; b++ {
		Im2Col(imgs[b*imgLen:(b+1)*imgLen], g, single)
		for r := 0; r < ck; r++ {
			for j := 0; j < cols; j++ {
				if got, want := batch[r*nBatch*cols+b*cols+j], single[r*cols+j]; got != want {
					t.Fatalf("img %d row %d col %d: %g vs %g", b, r, j, got, want)
				}
			}
		}
	}
}

// TestCol2ImAdjointIdentity verifies <col, Im2Col(x)> == <Col2Im(col), x>
// (within accumulation-order rounding), the defining property of the
// backward scatter — batch variant included.
func TestCol2ImAdjointIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for _, g := range []ConvGeom{
		{InC: 2, InH: 8, InW: 8, K: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 9, InW: 7, K: 3, Stride: 2, Pad: 1},
		{InC: 1, InH: 6, InW: 6, K: 1, Stride: 2, Pad: 0},
	} {
		nBatch := 3
		cols := g.OutH() * g.OutW()
		ck := g.InC * g.K * g.K
		imgLen := g.InC * g.InH * g.InW
		x := randSlice(rng, nBatch*imgLen)
		c := randSlice(rng, ck*nBatch*cols)

		fx := make([]float64, ck*nBatch*cols)
		Im2ColBatch(x, nBatch, g, fx)
		aty := make([]float64, nBatch*imgLen)
		Col2ImBatch(c, nBatch, g, aty)

		var lhs, rhs float64
		for i := range fx {
			lhs += c[i] * fx[i]
		}
		for i := range x {
			rhs += aty[i] * x[i]
		}
		scale := math.Abs(lhs) + math.Abs(rhs) + 1
		if math.Abs(lhs-rhs) > 1e-9*scale {
			t.Fatalf("geom %+v: <c, Ax> = %g but <A^T c, x> = %g", g, lhs, rhs)
		}
	}
}

// TestEnsureReusesStorage pins the cap-checked scratch semantics the nn
// layer caches depend on.
func TestEnsureReusesStorage(t *testing.T) {
	a := New(2, 3, 4, 4)
	b := Ensure(a, 1, 3, 4, 4)
	if &b.Data[0] != &a.Data[0] || b.Len() != 48 {
		t.Fatal("Ensure did not reuse storage for a smaller shape")
	}
	c := Ensure(b, 4, 3, 4, 4)
	if c == b && cap(c.Data) < 4*3*4*4 {
		t.Fatal("Ensure returned undersized tensor")
	}
	if d := Ensure(nil, 1, 1, 2, 2); d.Len() != 4 {
		t.Fatalf("Ensure(nil) shape %s", d.ShapeString())
	}
}

// TestGEMMSteadyStateAllocs enforces the pooled-scratch contract: once the
// size-class pools are warm, the blocked kernels allocate nothing. The
// off-block shape exercises the remainder paths too.
func TestGEMMSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops puts under the race detector")
	}
	rng := rand.New(rand.NewSource(17))
	const m, k, n = 13, 70, 530
	a := randSlice(rng, m*k)
	at := randSlice(rng, k*m)
	b := randSlice(rng, k*n)
	bt := randSlice(rng, n*k)
	out := make([]float64, m*n)
	outABT := make([]float64, m*n)
	step := func() {
		MatMul(a, m, k, b, n, out)
		MatMulATB(at, k, m, b[:k*n], n, out)
		MatMulABT(a, m, k, bt, n, outABT[:m*n])
	}
	step()
	step()
	if avg := testing.AllocsPerRun(10, step); avg != 0 {
		t.Fatalf("blocked GEMM kernels allocate %.1f times per run at steady state", avg)
	}
}

func benchGEMM(b *testing.B, m, k, n int, naive bool) {
	rng := rand.New(rand.NewSource(1))
	av := randSlice(rng, m*k)
	bv := randSlice(rng, k*n)
	out := make([]float64, m*n)
	if naive {
		b.Setenv(EnvGEMM, ModeNaive)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(av, m, k, bv, n, out)
	}
}

func BenchmarkGEMMStemBlocked(b *testing.B) { benchGEMM(b, 8, 49, 12544, false) }
func BenchmarkGEMMStemNaive(b *testing.B)   { benchGEMM(b, 8, 49, 12544, true) }
func BenchmarkGEMMMidBlocked(b *testing.B)  { benchGEMM(b, 48, 288, 784, false) }
func BenchmarkGEMMMidNaive(b *testing.B)    { benchGEMM(b, 48, 288, 784, true) }
