//go:build race

package tensor

// raceEnabled gates the AllocsPerRun regression tests: under the race
// detector sync.Pool randomly drops puts, so pooled-scratch paths allocate
// nondeterministically and the zero-alloc contract cannot be asserted.
const raceEnabled = true
