// Package tensor provides the dense NCHW tensors and the matrix/convolution
// primitives (GEMM, im2col/col2im) underneath the neural-network layers of
// the printability predictor. Everything is float64. The default matrix
// engine is the cache-blocked, panel-packed GEMM in gemm.go; LDMO_GEMM=naive
// selects the original reference loops, and both engines accumulate every
// output element in ascending-k order so they agree bit for bit on finite
// inputs. The kernels are serial unless SetWorkers enables the row-parallel
// (and still bit-identical) blocked drivers; batch-level parallelism lives
// in the callers.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense 4-D array in NCHW layout (batch, channels, height,
// width). Fully connected activations use H = W = 1. The zero Tensor is
// unusable; construct with New.
type Tensor struct {
	N, C, H, W int
	Data       []float64
}

// New returns a zero-filled tensor of the given shape.
func New(n, c, h, w int) *Tensor {
	if n <= 0 || c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%dx%d", n, c, h, w))
	}
	return &Tensor{N: n, C: c, H: h, W: w, Data: make([]float64, n*c*h*w)}
}

// NewLike returns a zero tensor with t's shape.
func NewLike(t *Tensor) *Tensor { return New(t.N, t.C, t.H, t.W) }

// Ensure returns a tensor of the given shape, reusing t's backing storage
// when its capacity suffices (t may be nil). Contents are unspecified:
// callers either overwrite every element or call Zero explicitly. This is
// the cap-checked scratch primitive behind the zero-alloc layer caches in
// internal/nn.
func Ensure(t *Tensor, n, c, h, w int) *Tensor {
	size := n * c * h * w
	if t != nil && cap(t.Data) >= size {
		t.N, t.C, t.H, t.W = n, c, h, w
		t.Data = t.Data[:size]
		return t
	}
	return New(n, c, h, w)
}

// Len returns the element count.
func (t *Tensor) Len() int { return t.N * t.C * t.H * t.W }

// SameShape reports whether t and u have identical dimensions.
func (t *Tensor) SameShape(u *Tensor) bool {
	return t.N == u.N && t.C == u.C && t.H == u.H && t.W == u.W
}

// ShapeString renders the shape for error messages.
func (t *Tensor) ShapeString() string {
	return fmt.Sprintf("%dx%dx%dx%d", t.N, t.C, t.H, t.W)
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := NewLike(t)
	copy(out.Data, t.Data)
	return out
}

// At returns the element at (n, c, h, w); no bounds checking beyond the
// slice's own.
func (t *Tensor) At(n, c, h, w int) float64 {
	return t.Data[((n*t.C+c)*t.H+h)*t.W+w]
}

// Set writes the element at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float64) {
	t.Data[((n*t.C+c)*t.H+h)*t.W+w] = v
}

// AddInto accumulates u into t element-wise.
func (t *Tensor) AddInto(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: add shape mismatch %s vs %s", t.ShapeString(), u.ShapeString()))
	}
	for i := range t.Data {
		t.Data[i] += u.Data[i]
	}
}

// Scale multiplies all elements by k.
func (t *Tensor) Scale(k float64) {
	for i := range t.Data {
		t.Data[i] *= k
	}
}

// Zero clears all elements.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		m = math.Max(m, math.Abs(v))
	}
	return m
}

// MatMul computes C = A x B for row-major matrices: A is m x k, B is k x n,
// out is m x n. out must not alias a or b. The default engine is the
// blocked/packed GEMM in gemm.go; LDMO_GEMM=naive selects the original ikj
// reference loop. Both accumulate each output element in ascending-k order,
// so on finite inputs the engines are bit-identical.
func MatMul(a []float64, m, k int, b []float64, n int, out []float64) {
	if len(a) < m*k || len(b) < k*n || len(out) < m*n {
		panic(fmt.Sprintf("tensor: matmul size mismatch m=%d k=%d n=%d (a=%d b=%d out=%d)",
			m, k, n, len(a), len(b), len(out)))
	}
	if naiveMode() {
		matMulNaive(a, m, k, b, n, out)
		return
	}
	gemmPacked(a, false, m, k, b, n, out)
}

// matMulNaive is the reference ikj loop the package started with, kept
// verbatim behind LDMO_GEMM=naive as the A/B baseline.
func matMulNaive(a []float64, m, k int, b []float64, n int, out []float64) {
	for i := 0; i < m*n; i++ {
		out[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulATB computes out = A^T x B where A is k x m (so A^T is m x k) and B
// is k x n; out is m x n. Used for weight gradients and the conv input
// gradient (W^T x gradOut).
func MatMulATB(a []float64, k, m int, b []float64, n int, out []float64) {
	if len(a) < k*m || len(b) < k*n || len(out) < m*n {
		panic("tensor: matmulATB size mismatch")
	}
	if naiveMode() {
		matMulATBNaive(a, k, m, b, n, out)
		return
	}
	gemmPacked(a, true, m, k, b, n, out)
}

// matMulATBNaive is the reference kij loop for the transposed-A product.
func matMulATBNaive(a []float64, k, m int, b []float64, n int, out []float64) {
	for i := 0; i < m*n; i++ {
		out[i] = 0
	}
	for kk := 0; kk < k; kk++ {
		arow := a[kk*m : (kk+1)*m]
		brow := b[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulABT computes out = A x B^T where A is m x k and B is n x k; out is
// m x n. Used for convolution weight gradients (gradOut x col^T).
func MatMulABT(a []float64, m, k int, b []float64, n int, out []float64) {
	if len(a) < m*k || len(b) < n*k || len(out) < m*n {
		panic("tensor: matmulABT size mismatch")
	}
	if naiveMode() {
		matMulABTNaive(a, m, k, b, n, out)
		return
	}
	gemmABT(a, m, k, b, n, out)
}

// matMulABTNaive is the reference dot-product loop for A x B^T.
func matMulABTNaive(a []float64, m, k int, b []float64, n int, out []float64) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * brow[kk]
			}
			orow[j] = s
		}
	}
}

// ConvGeom describes one convolution geometry.
type ConvGeom struct {
	InC, InH, InW int
	K             int // square kernel edge
	Stride, Pad   int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// Im2Col expands one image (C x H x W, flat) into a column matrix of shape
// (C*K*K) x (OutH*OutW), row-major, so convolution becomes a matmul with the
// (OutC) x (C*K*K) weight matrix. Out-of-bounds taps read 0.
func Im2Col(img []float64, g ConvGeom, col []float64) {
	cols := g.OutH() * g.OutW()
	if len(img) < g.InC*g.InH*g.InW || len(col) < g.InC*g.K*g.K*cols {
		panic("tensor: im2col size mismatch")
	}
	im2colStride(img, g, col, cols)
}

// Im2ColBatch expands an n-image NCHW batch into one whole-batch column
// matrix of shape (C*K*K) x (n*OutH*OutW), row-major, with image b occupying
// columns [b*OutH*OutW, (b+1)*OutH*OutW). One GEMM against the weight matrix
// then convolves the entire batch.
func Im2ColBatch(imgs []float64, n int, g ConvGeom, col []float64) {
	cols := g.OutH() * g.OutW()
	imgLen := g.InC * g.InH * g.InW
	if len(imgs) < n*imgLen || len(col) < g.InC*g.K*g.K*n*cols {
		panic("tensor: im2col batch size mismatch")
	}
	for b := 0; b < n; b++ {
		im2colStride(imgs[b*imgLen:(b+1)*imgLen], g, col[b*cols:], n*cols)
	}
}

// im2colStride writes one image's column block into col, whose rows are
// rowStride elements apart (rowStride = OutH*OutW for a single image,
// n*OutH*OutW inside a whole-batch matrix).
func im2colStride(img []float64, g ConvGeom, col []float64, rowStride int) {
	oh, ow := g.OutH(), g.OutW()
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := img[c*g.InH*g.InW:]
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				// The x-padding clip is the same for every output row, so
				// hoist it: positions [oxLo, oxHi) read the plane, the
				// fringes are zeros.
				oxLo, oxHi := clipRange(ow, g.Stride, kx-g.Pad, g.InW)
				dst := col[row*rowStride:]
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						zeroF(dst[i : i+ow])
						i += ow
						continue
					}
					base := iy*g.InW + kx - g.Pad
					zeroF(dst[i : i+oxLo])
					if g.Stride == 1 {
						copy(dst[i+oxLo:i+oxHi], plane[base+oxLo:base+oxHi])
					} else {
						ix := base + oxLo*g.Stride
						for ox := oxLo; ox < oxHi; ox++ {
							dst[i+ox] = plane[ix]
							ix += g.Stride
						}
					}
					zeroF(dst[i+oxHi : i+ow])
					i += ow
				}
				row++
			}
		}
	}
}

// clipRange returns the half-open output range [lo, hi) whose input index
// ox*stride+off lands inside [0, inW); positions outside it read padding.
func clipRange(ow, stride, off, inW int) (int, int) {
	lo := 0
	if off < 0 {
		lo = (-off + stride - 1) / stride
	}
	hi := ow
	if last := inW - 1 - off; last < 0 {
		hi = 0
	} else if h := last/stride + 1; h < ow {
		hi = h
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// zeroF clears a float slice (compiles to a memclr).
func zeroF(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// Col2Im scatters a column-matrix gradient back into image space, the adjoint
// of Im2Col. The image buffer is zeroed first.
func Col2Im(col []float64, g ConvGeom, img []float64) {
	cols := g.OutH() * g.OutW()
	if len(img) < g.InC*g.InH*g.InW || len(col) < g.InC*g.K*g.K*cols {
		panic("tensor: col2im size mismatch")
	}
	col2imStride(col, g, img, cols)
}

// Col2ImBatch scatters a whole-batch column-matrix gradient (the layout of
// Im2ColBatch) back into an n-image NCHW batch, the adjoint of Im2ColBatch.
// The image buffer is zeroed first.
func Col2ImBatch(col []float64, n int, g ConvGeom, imgs []float64) {
	cols := g.OutH() * g.OutW()
	imgLen := g.InC * g.InH * g.InW
	if len(imgs) < n*imgLen || len(col) < g.InC*g.K*g.K*n*cols {
		panic("tensor: col2im batch size mismatch")
	}
	for b := 0; b < n; b++ {
		col2imStride(col[b*cols:], g, imgs[b*imgLen:(b+1)*imgLen], n*cols)
	}
}

// col2imStride scatters one image's column block (rows rowStride apart)
// into img, zeroing img first.
func col2imStride(col []float64, g ConvGeom, img []float64, rowStride int) {
	oh, ow := g.OutH(), g.OutW()
	zeroF(img[:g.InC*g.InH*g.InW])
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := img[c*g.InH*g.InW:]
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				// Clipped positions contribute nothing; accumulate only the
				// in-bounds range, in the same ascending-ox order as before.
				oxLo, oxHi := clipRange(ow, g.Stride, kx-g.Pad, g.InW)
				src := col[row*rowStride:]
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						i += ow
						continue
					}
					ix := iy*g.InW + kx - g.Pad + oxLo*g.Stride
					for ox := oxLo; ox < oxHi; ox++ {
						plane[ix] += src[i+ox]
						ix += g.Stride
					}
					i += ow
				}
				row++
			}
		}
	}
}
