// Package tensor provides the dense NCHW tensors and the matrix/convolution
// primitives (matmul, im2col/col2im) underneath the neural-network layers of
// the printability predictor. Everything is float64 and single-threaded;
// batch-level parallelism lives in the training loop, not here.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense 4-D array in NCHW layout (batch, channels, height,
// width). Fully connected activations use H = W = 1. The zero Tensor is
// unusable; construct with New.
type Tensor struct {
	N, C, H, W int
	Data       []float64
}

// New returns a zero-filled tensor of the given shape.
func New(n, c, h, w int) *Tensor {
	if n <= 0 || c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%dx%d", n, c, h, w))
	}
	return &Tensor{N: n, C: c, H: h, W: w, Data: make([]float64, n*c*h*w)}
}

// NewLike returns a zero tensor with t's shape.
func NewLike(t *Tensor) *Tensor { return New(t.N, t.C, t.H, t.W) }

// Len returns the element count.
func (t *Tensor) Len() int { return t.N * t.C * t.H * t.W }

// SameShape reports whether t and u have identical dimensions.
func (t *Tensor) SameShape(u *Tensor) bool {
	return t.N == u.N && t.C == u.C && t.H == u.H && t.W == u.W
}

// ShapeString renders the shape for error messages.
func (t *Tensor) ShapeString() string {
	return fmt.Sprintf("%dx%dx%dx%d", t.N, t.C, t.H, t.W)
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := NewLike(t)
	copy(out.Data, t.Data)
	return out
}

// At returns the element at (n, c, h, w); no bounds checking beyond the
// slice's own.
func (t *Tensor) At(n, c, h, w int) float64 {
	return t.Data[((n*t.C+c)*t.H+h)*t.W+w]
}

// Set writes the element at (n, c, h, w).
func (t *Tensor) Set(n, c, h, w int, v float64) {
	t.Data[((n*t.C+c)*t.H+h)*t.W+w] = v
}

// AddInto accumulates u into t element-wise.
func (t *Tensor) AddInto(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: add shape mismatch %s vs %s", t.ShapeString(), u.ShapeString()))
	}
	for i := range t.Data {
		t.Data[i] += u.Data[i]
	}
}

// Scale multiplies all elements by k.
func (t *Tensor) Scale(k float64) {
	for i := range t.Data {
		t.Data[i] *= k
	}
}

// Zero clears all elements.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		m = math.Max(m, math.Abs(v))
	}
	return m
}

// MatMul computes C = A x B for row-major matrices: A is m x k, B is k x n,
// out is m x n. out must not alias a or b. The k-inner loop is ordered for
// sequential access on both operands (ikj loop), which is the difference
// between usable and unusable conv layers at these sizes.
func MatMul(a []float64, m, k int, b []float64, n int, out []float64) {
	if len(a) < m*k || len(b) < k*n || len(out) < m*n {
		panic(fmt.Sprintf("tensor: matmul size mismatch m=%d k=%d n=%d (a=%d b=%d out=%d)",
			m, k, n, len(a), len(b), len(out)))
	}
	for i := 0; i < m*n; i++ {
		out[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulATB computes out = A^T x B where A is k x m (so A^T is m x k) and B
// is k x n; out is m x n. Used for weight gradients.
func MatMulATB(a []float64, k, m int, b []float64, n int, out []float64) {
	if len(a) < k*m || len(b) < k*n || len(out) < m*n {
		panic("tensor: matmulATB size mismatch")
	}
	for i := 0; i < m*n; i++ {
		out[i] = 0
	}
	for kk := 0; kk < k; kk++ {
		arow := a[kk*m : (kk+1)*m]
		brow := b[kk*n : (kk+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulABT computes out = A x B^T where A is m x k and B is n x k; out is
// m x n. Used for convolution weight gradients (gradOut x col^T).
func MatMulABT(a []float64, m, k int, b []float64, n int, out []float64) {
	if len(a) < m*k || len(b) < n*k || len(out) < m*n {
		panic("tensor: matmulABT size mismatch")
	}
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += arow[kk] * brow[kk]
			}
			orow[j] = s
		}
	}
}

// ConvGeom describes one convolution geometry.
type ConvGeom struct {
	InC, InH, InW int
	K             int // square kernel edge
	Stride, Pad   int
}

// OutH returns the output height.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// Im2Col expands one image (C x H x W, flat) into a column matrix of shape
// (C*K*K) x (OutH*OutW), row-major, so convolution becomes a matmul with the
// (OutC) x (C*K*K) weight matrix. Out-of-bounds taps read 0.
func Im2Col(img []float64, g ConvGeom, col []float64) {
	oh, ow := g.OutH(), g.OutW()
	cols := oh * ow
	if len(img) < g.InC*g.InH*g.InW || len(col) < g.InC*g.K*g.K*cols {
		panic("tensor: im2col size mismatch")
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := img[c*g.InH*g.InW:]
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				dst := col[row*cols:]
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						for ox := 0; ox < ow; ox++ {
							dst[i] = 0
							i++
						}
						continue
					}
					base := iy * g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride - g.Pad + kx
						if ix < 0 || ix >= g.InW {
							dst[i] = 0
						} else {
							dst[i] = plane[base+ix]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Col2Im scatters a column-matrix gradient back into image space, the adjoint
// of Im2Col. The image buffer is zeroed first.
func Col2Im(col []float64, g ConvGeom, img []float64) {
	oh, ow := g.OutH(), g.OutW()
	cols := oh * ow
	if len(img) < g.InC*g.InH*g.InW || len(col) < g.InC*g.K*g.K*cols {
		panic("tensor: col2im size mismatch")
	}
	for i := 0; i < g.InC*g.InH*g.InW; i++ {
		img[i] = 0
	}
	row := 0
	for c := 0; c < g.InC; c++ {
		plane := img[c*g.InH*g.InW:]
		for ky := 0; ky < g.K; ky++ {
			for kx := 0; kx < g.K; kx++ {
				src := col[row*cols:]
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride - g.Pad + ky
					if iy < 0 || iy >= g.InH {
						i += ow
						continue
					}
					base := iy * g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride - g.Pad + kx
						if ix >= 0 && ix < g.InW {
							plane[base+ix] += src[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}
