// Size-keyed pooled scratch for the GEMM engine and its callers, following
// the fft plan-cache pattern: one sync.Pool per power-of-two size class,
// registered in a shared map, so steady-state hot paths (packing buffers,
// transient gradient accumulators) never allocate.
package tensor

import (
	"math/bits"
	"sync"
)

var (
	bufMu    sync.RWMutex
	bufPools = map[int]*sync.Pool{}
)

// sizeClass rounds n up to a power of two so recycled buffers are reusable
// across nearby sizes instead of fragmenting the pool per exact length.
func sizeClass(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

func poolFor(class int) *sync.Pool {
	bufMu.RLock()
	p := bufPools[class]
	bufMu.RUnlock()
	if p != nil {
		return p
	}
	bufMu.Lock()
	defer bufMu.Unlock()
	if p = bufPools[class]; p != nil {
		return p
	}
	p = &sync.Pool{New: func() any {
		s := make([]float64, class)
		return &s
	}}
	bufPools[class] = p
	return p
}

// getBuf returns a pooled float64 buffer with capacity >= n. Contents are
// unspecified; callers overwrite or zero what they read.
func getBuf(n int) *[]float64 {
	return poolFor(sizeClass(n)).Get().(*[]float64)
}

// putBuf recycles a buffer obtained from getBuf.
func putBuf(b *[]float64) {
	poolFor(sizeClass(cap(*b))).Put(b)
}

// GetScratch returns a pooled buffer sliced to length n, for callers outside
// the package (layer gradient accumulators, column matrices) that need
// transient zero-alloc scratch. Pair with PutScratch.
func GetScratch(n int) *[]float64 {
	b := getBuf(n)
	*b = (*b)[:n]
	return b
}

// PutScratch recycles a buffer obtained from GetScratch.
func PutScratch(b *[]float64) { putBuf(b) }
