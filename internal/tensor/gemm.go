// Blocked, panel-packed GEMM kernels — the compute core under every conv and
// linear layer. The naive ikj loops the package started with are kept as the
// A/B reference (select with LDMO_GEMM=naive); the default engine here blocks
// the operands into cache-sized panels, packs them into contiguous scratch
// (pooled, size-keyed — see scratch.go), and runs a register-tiled
// micro-kernel over fixed-order strips.
//
// Determinism is part of the kernel contract, exactly as for the spectral
// engine: every output element accumulates its k-products in ascending-k
// order regardless of blocking, packing, or row-parallel sharding, so the
// blocked engine is bit-identical to the naive reference on finite inputs
// and bit-identical to itself at any worker count. The golden tests in
// internal/nn and internal/model lean on this: swapping engines may not move
// a single discrete flow decision.
package tensor

import (
	"os"

	"ldmo/internal/par"
)

// EnvGEMM selects the matrix engine: the default is the blocked/packed
// engine; LDMO_GEMM=naive restores the original ikj reference kernels for
// A/B benchmarking and regression hunts.
const EnvGEMM = "LDMO_GEMM"

// ModeNaive is the EnvGEMM value selecting the naive reference kernels.
const ModeNaive = "naive"

// naiveMode reports whether the reference engine is requested. Read per
// call: the kernels are invoked once per layer per pass, so the lookup is
// noise next to the GEMM itself, and per-call dispatch lets benchmarks A/B
// both engines in one process without rebuilding any state.
func naiveMode() bool { return os.Getenv(EnvGEMM) == ModeNaive }

// Blocking parameters. kc*nc*8 bytes of packed B (~1 MiB) sits in L2 across
// a whole row sweep; each 4-row packed A strip (4*kc*8 = 8 KiB) stays in L1
// for the duration of its micro-kernel call.
const (
	blockMC = 64  // rows of A packed per panel
	blockKC = 256 // shared dimension per panel
	blockNC = 512 // columns of B packed per panel
)

// gemmWorkers is the row-parallel lane count for the blocked drivers;
// 1 (the default) keeps them serial. Shards are fixed contiguous strip
// ranges and every element's accumulation order is worker-independent, so
// serial and parallel results are bit-identical.
var gemmWorkers = 1

// SetWorkers sets the row-parallel lane count of the blocked GEMM drivers
// (n <= 1 forces serial). Parallel output is bit-identical to serial: lanes
// own disjoint 4-row output strips in fixed order and share only the
// read-only packed B panel.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	gemmWorkers = n
}

// packB copies the kc x nc panel of row-major b (full width n) starting at
// (pc, jc) into contiguous dst, row-major.
func packB(b []float64, n, pc, jc, kc, nc int, dst []float64) {
	for kk := 0; kk < kc; kk++ {
		copy(dst[kk*nc:(kk+1)*nc], b[(pc+kk)*n+jc:(pc+kk)*n+jc+nc])
	}
}

// packA interleaves an mr-row strip of A (row-major, leading dimension lda)
// starting at row i0, columns [pc, pc+kc), into dst so the micro-kernel
// reads dst[kk*mr+r] sequentially.
func packA(a []float64, lda, i0, pc, kc, mr int, dst []float64) {
	for r := 0; r < mr; r++ {
		row := a[(i0+r)*lda+pc:]
		for kk := 0; kk < kc; kk++ {
			dst[kk*mr+r] = row[kk]
		}
	}
}

// packAT is packA for a transposed operand: the logical A (m x k) is stored
// as a k x m row-major matrix and read a[kk*lda + i]. Same packed layout.
func packAT(a []float64, lda, i0, pc, kc, mr int, dst []float64) {
	for kk := 0; kk < kc; kk++ {
		src := a[(pc+kk)*lda+i0:]
		for r := 0; r < mr; r++ {
			dst[kk*mr+r] = src[r]
		}
	}
}

// kern4 accumulates a 4-row by nc-column strip: c[r][j] += sum_kk
// apack[kk*4+r] * bpack[kk*nc+j]. kk is the middle loop, so each output
// element sees ascending-k accumulation — the determinism contract.
func kern4(apack []float64, kc int, bpack []float64, nc int, c0, c1, c2, c3 []float64) {
	c0 = c0[:nc]
	c1 = c1[:nc]
	c2 = c2[:nc]
	c3 = c3[:nc]
	for kk := 0; kk < kc; kk++ {
		a0 := apack[kk*4]
		a1 := apack[kk*4+1]
		a2 := apack[kk*4+2]
		a3 := apack[kk*4+3]
		brow := bpack[kk*nc : kk*nc+nc]
		for j, bj := range brow {
			c0[j] += a0 * bj
			c1[j] += a1 * bj
			c2[j] += a2 * bj
			c3[j] += a3 * bj
		}
	}
}

// kern4Tail finishes the 1..3 column tail the vectorized kernel leaves
// behind, columns [j0, nc), with the same per-element ascending-k order.
func kern4Tail(apack []float64, kc int, bpack []float64, nc, j0 int, c0, c1, c2, c3 []float64) {
	for kk := 0; kk < kc; kk++ {
		a0 := apack[kk*4]
		a1 := apack[kk*4+1]
		a2 := apack[kk*4+2]
		a3 := apack[kk*4+3]
		brow := bpack[kk*nc : kk*nc+nc]
		for j := j0; j < nc; j++ {
			bj := brow[j]
			c0[j] += a0 * bj
			c1[j] += a1 * bj
			c2[j] += a2 * bj
			c3[j] += a3 * bj
		}
	}
}

// kern4Strip runs the full-width 4-row strip, vectorized when the host has
// AVX. Both paths accumulate each element in ascending-k order with scalar
// mul-then-add rounding, so they are bit-identical.
func kern4Strip(apack []float64, kc int, bpack []float64, nc int, c0, c1, c2, c3 []float64) {
	vec := nc &^ 3
	if haveAVX && vec > 0 {
		kern4AVX(&apack[0], &bpack[0], &c0[0], &c1[0], &c2[0], &c3[0], kc, vec*8, nc*8)
		if vec < nc {
			kern4Tail(apack, kc, bpack, nc, vec, c0, c1, c2, c3)
		}
		return
	}
	kern4(apack, kc, bpack, nc, c0, c1, c2, c3)
}

// kernN is the remainder kernel for 1..3 packed rows.
func kernN(apack []float64, kc, mr int, bpack []float64, nc int, c [][]float64) {
	for kk := 0; kk < kc; kk++ {
		brow := bpack[kk*nc : kk*nc+nc]
		for r := 0; r < mr; r++ {
			ar := apack[kk*mr+r]
			crow := c[r][:nc]
			for j, bj := range brow {
				crow[j] += ar * bj
			}
		}
	}
}

// gemmPacked is the shared blocked driver for out = A x B (and A^T x B when
// transA is set, with A stored k x m). out is m x n row-major and is zeroed
// here; panels are processed in ascending jc, pc order and rows in ascending
// strips, so accumulation per element is ascending-k.
func gemmPacked(a []float64, transA bool, m, k int, b []float64, n int, out []float64) {
	for i := 0; i < m*n; i++ {
		out[i] = 0
	}
	lda := k
	if transA {
		lda = m
	}
	bbuf := getBuf(blockKC * blockNC)
	bpack := (*bbuf)[:blockKC*blockNC]
	abuf := getBuf(4 * blockKC)
	apack := (*abuf)[:4*blockKC]
	workers := gemmWorkers
	strips := (m + 3) / 4
	for jc := 0; jc < n; jc += blockNC {
		nc := min(blockNC, n-jc)
		for pc := 0; pc < k; pc += blockKC {
			kc := min(blockKC, k-pc)
			packB(b, n, pc, jc, kc, nc, bpack)
			if workers > 1 && strips > 1 {
				runPanelParallel(a, transA, lda, m, n, pc, kc, jc, nc, bpack, out, workers, strips)
			} else {
				for s := 0; s < strips; s++ {
					runStrip(a, transA, lda, m, n, pc, kc, jc, nc, bpack, apack, out, s)
				}
			}
		}
	}
	putBuf(abuf)
	putBuf(bbuf)
}

// runStrip packs one 4-row (or remainder) strip of A for the current panel
// and runs the micro-kernel into its out rows.
func runStrip(a []float64, transA bool, lda, m, n, pc, kc, jc, nc int, bpack, apack, out []float64, s int) {
	i0 := s * 4
	mr := min(4, m-i0)
	if transA {
		packAT(a, lda, i0, pc, kc, mr, apack)
	} else {
		packA(a, lda, i0, pc, kc, mr, apack)
	}
	if mr == 4 {
		kern4Strip(apack, kc, bpack, nc,
			out[i0*n+jc:i0*n+jc+nc], out[(i0+1)*n+jc:(i0+1)*n+jc+nc],
			out[(i0+2)*n+jc:(i0+2)*n+jc+nc], out[(i0+3)*n+jc:(i0+3)*n+jc+nc])
	} else {
		var rows [3][]float64
		for r := 0; r < mr; r++ {
			rows[r] = out[(i0+r)*n+jc:]
		}
		kernN(apack, kc, mr, bpack, nc, rows[:mr])
	}
}

// runPanelParallel shards one packed panel's strips over a worker pool in
// fixed order: lane l owns strips l, l+w, l+2w, … Each strip writes only its
// own out rows; bpack is shared read-only, apack is per-lane, and every
// element's accumulation order is identical to the serial sweep.
func runPanelParallel(a []float64, transA bool, lda, m, n, pc, kc, jc, nc int, bpack, out []float64, workers, strips int) {
	pool := par.NewPool(min(workers, strips))
	abufs := make([]*[]float64, pool.Size())
	for l := range abufs {
		abufs[l] = getBuf(4 * blockKC)
	}
	pool.Map(strips, func(worker, s int) {
		runStrip(a, transA, lda, m, n, pc, kc, jc, nc, bpack, (*abufs[worker])[:4*blockKC], out, s)
	})
	for _, ab := range abufs {
		putBuf(ab)
	}
}

// gemmABT computes out = A x B^T (A m x k, B n x k, out m x n) with a
// register-tiled 4x4 dot micro-kernel: both operands stream sequentially
// along k, the tile quadruples reuse of each loaded row, and every output
// element is a single ascending-k dot product — the exact order of the
// naive reference.
func gemmABT(a []float64, m, k int, b []float64, n int, out []float64) {
	if haveAVX && k > 0 && m >= 4 && n >= 4 {
		gemmABTAVX(a, m, k, b, n, out)
		return
	}
	gemmABTGo(a, m, k, b, n, out)
}

// gemmABTAVX runs the A x B^T tiles through dot4x4AVX: four B rows are
// interleaved into a pooled panel (bpack[kk*4+s] = B[j0+s][kk]) so one
// vector load per kk serves four output columns; accumulators live in
// registers across the entire k extent, preserving the single ascending-k
// dot per element. Row and column remainders fall back to scalar dots.
func gemmABTAVX(a []float64, m, k int, b []float64, n int, out []float64) {
	bbuf := getBuf(4 * k)
	bp := (*bbuf)[:4*k]
	j := 0
	for ; j+4 <= n; j += 4 {
		for r := 0; r < 4; r++ {
			row := b[(j+r)*k : (j+r)*k+k]
			for kk, bv := range row {
				bp[kk*4+r] = bv
			}
		}
		i := 0
		for ; i+4 <= m; i += 4 {
			dot4x4AVX(&a[i*k], &a[(i+1)*k], &a[(i+2)*k], &a[(i+3)*k], &bp[0], k,
				&out[i*n+j], &out[(i+1)*n+j], &out[(i+2)*n+j], &out[(i+3)*n+j])
		}
		for ; i < m; i++ {
			arow := a[i*k : i*k+k]
			var c0, c1, c2, c3 float64
			for kk, av := range arow {
				c0 += av * bp[kk*4]
				c1 += av * bp[kk*4+1]
				c2 += av * bp[kk*4+2]
				c3 += av * bp[kk*4+3]
			}
			out[i*n+j], out[i*n+j+1], out[i*n+j+2], out[i*n+j+3] = c0, c1, c2, c3
		}
	}
	putBuf(bbuf)
	for ; j < n; j++ {
		brow := b[j*k : j*k+k]
		for i := 0; i < m; i++ {
			arow := a[i*k : i*k+k]
			s := 0.0
			for kk, bv := range brow {
				s += arow[kk] * bv
			}
			out[i*n+j] = s
		}
	}
}

// gemmABTGo is the portable register-tiled A x B^T kernel.
func gemmABTGo(a []float64, m, k int, b []float64, n int, out []float64) {
	i := 0
	for ; i+4 <= m; i += 4 {
		a0 := a[i*k : i*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		a2 := a[(i+2)*k : (i+2)*k+k]
		a3 := a[(i+3)*k : (i+3)*k+k]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : j*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var c00, c01, c02, c03, c10, c11, c12, c13 float64
			var c20, c21, c22, c23, c30, c31, c32, c33 float64
			for kk := 0; kk < k; kk++ {
				av0, av1, av2, av3 := a0[kk], a1[kk], a2[kk], a3[kk]
				bv0, bv1, bv2, bv3 := b0[kk], b1[kk], b2[kk], b3[kk]
				c00 += av0 * bv0
				c01 += av0 * bv1
				c02 += av0 * bv2
				c03 += av0 * bv3
				c10 += av1 * bv0
				c11 += av1 * bv1
				c12 += av1 * bv2
				c13 += av1 * bv3
				c20 += av2 * bv0
				c21 += av2 * bv1
				c22 += av2 * bv2
				c23 += av2 * bv3
				c30 += av3 * bv0
				c31 += av3 * bv1
				c32 += av3 * bv2
				c33 += av3 * bv3
			}
			out[i*n+j], out[i*n+j+1], out[i*n+j+2], out[i*n+j+3] = c00, c01, c02, c03
			out[(i+1)*n+j], out[(i+1)*n+j+1], out[(i+1)*n+j+2], out[(i+1)*n+j+3] = c10, c11, c12, c13
			out[(i+2)*n+j], out[(i+2)*n+j+1], out[(i+2)*n+j+2], out[(i+2)*n+j+3] = c20, c21, c22, c23
			out[(i+3)*n+j], out[(i+3)*n+j+1], out[(i+3)*n+j+2], out[(i+3)*n+j+3] = c30, c31, c32, c33
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var c0, c1, c2, c3 float64
			for kk, bv := range brow {
				c0 += a0[kk] * bv
				c1 += a1[kk] * bv
				c2 += a2[kk] * bv
				c3 += a3[kk] * bv
			}
			out[i*n+j], out[(i+1)*n+j], out[(i+2)*n+j], out[(i+3)*n+j] = c0, c1, c2, c3
		}
	}
	for ; i < m; i++ {
		arow := a[i*k : i*k+k]
		orow := out[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			s := 0.0
			for kk, bv := range brow {
				s += arow[kk] * bv
			}
			orow[j] = s
		}
	}
}
