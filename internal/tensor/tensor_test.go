package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	x := New(2, 3, 4, 5)
	if x.Len() != 120 || len(x.Data) != 120 {
		t.Fatalf("len = %d", x.Len())
	}
	x.Set(1, 2, 3, 4, 7)
	if x.At(1, 2, 3, 4) != 7 {
		t.Fatal("At/Set roundtrip")
	}
	if x.Data[119] != 7 {
		t.Fatal("NCHW layout wrong")
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 1, 1, 1)
}

func TestCloneAndShape(t *testing.T) {
	x := New(1, 2, 3, 4)
	x.Data[0] = 5
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 5 {
		t.Fatal("clone shares storage")
	}
	if !x.SameShape(y) || x.SameShape(New(1, 2, 4, 3)) {
		t.Fatal("SameShape wrong")
	}
	if x.ShapeString() != "1x2x3x4" {
		t.Fatalf("shape string %q", x.ShapeString())
	}
}

func TestAddScaleZeroMaxAbs(t *testing.T) {
	x := New(1, 1, 1, 3)
	copy(x.Data, []float64{1, -4, 2})
	y := x.Clone()
	x.AddInto(y)
	if x.Data[1] != -8 {
		t.Fatal("AddInto wrong")
	}
	x.Scale(0.5)
	if x.Data[1] != -4 {
		t.Fatal("Scale wrong")
	}
	if x.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %g", x.MaxAbs())
	}
	x.Zero()
	if x.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestAddIntoPanicsOnShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1, 1, 1, 2).AddInto(New(1, 1, 2, 1))
}

func TestMatMulKnown(t *testing.T) {
	// [1 2; 3 4] x [5 6; 7 8] = [19 22; 43 50]
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	out := make([]float64, 4)
	MatMul(a, 2, 2, b, 2, out)
	want := []float64{19, 22, 43, 50}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("matmul = %v", out)
		}
	}
}

func TestMatMulRect(t *testing.T) {
	// (1x3) x (3x2)
	a := []float64{1, 2, 3}
	b := []float64{1, 4, 2, 5, 3, 6}
	out := make([]float64, 2)
	MatMul(a, 1, 3, b, 2, out)
	if out[0] != 14 || out[1] != 32 {
		t.Fatalf("matmul = %v", out)
	}
}

func TestMatMulATBMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k, m, n := 7, 4, 5
	a := make([]float64, k*m)
	b := make([]float64, k*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	got := make([]float64, m*n)
	MatMulATB(a, k, m, b, n, got)
	// Reference: transpose A explicitly.
	at := make([]float64, m*k)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			at[j*k+i] = a[i*m+j]
		}
	}
	want := make([]float64, m*n)
	MatMul(at, m, k, b, n, want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ATB mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestMatMulPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(make([]float64, 3), 2, 2, make([]float64, 4), 2, make([]float64, 4))
}

func TestConvGeomOutDims(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 8, InW: 8, K: 3, Stride: 1, Pad: 1}
	if g.OutH() != 8 || g.OutW() != 8 {
		t.Fatalf("same conv out %dx%d", g.OutH(), g.OutW())
	}
	g = ConvGeom{InC: 1, InH: 8, InW: 8, K: 3, Stride: 2, Pad: 1}
	if g.OutH() != 4 || g.OutW() != 4 {
		t.Fatalf("strided conv out %dx%d", g.OutH(), g.OutW())
	}
	g = ConvGeom{InC: 1, InH: 7, InW: 7, K: 7, Stride: 1, Pad: 0}
	if g.OutH() != 1 || g.OutW() != 1 {
		t.Fatalf("full conv out %dx%d", g.OutH(), g.OutW())
	}
}

// directConv is the naive reference convolution for one image.
func directConv(img []float64, g ConvGeom, weight []float64, outC int) []float64 {
	oh, ow := g.OutH(), g.OutW()
	out := make([]float64, outC*oh*ow)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				s := 0.0
				for c := 0; c < g.InC; c++ {
					for ky := 0; ky < g.K; ky++ {
						for kx := 0; kx < g.K; kx++ {
							iy := oy*g.Stride - g.Pad + ky
							ix := ox*g.Stride - g.Pad + kx
							if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
								continue
							}
							w := weight[((oc*g.InC+c)*g.K+ky)*g.K+kx]
							s += w * img[(c*g.InH+iy)*g.InW+ix]
						}
					}
				}
				out[(oc*oh+oy)*ow+ox] = s
			}
		}
	}
	return out
}

func TestIm2ColConvMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := ConvGeom{InC: 3, InH: 9, InW: 7, K: 3, Stride: 2, Pad: 1}
	outC := 4
	img := make([]float64, g.InC*g.InH*g.InW)
	for i := range img {
		img[i] = rng.NormFloat64()
	}
	weight := make([]float64, outC*g.InC*g.K*g.K)
	for i := range weight {
		weight[i] = rng.NormFloat64()
	}
	cols := g.OutH() * g.OutW()
	col := make([]float64, g.InC*g.K*g.K*cols)
	Im2Col(img, g, col)
	got := make([]float64, outC*cols)
	MatMul(weight, outC, g.InC*g.K*g.K, col, cols, got)
	want := directConv(img, g, weight, outC)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("conv mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestCol2ImAdjoint(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the identity conv backward needs.
	rng := rand.New(rand.NewSource(5))
	g := ConvGeom{InC: 2, InH: 6, InW: 5, K: 3, Stride: 2, Pad: 1}
	cols := g.OutH() * g.OutW()
	x := make([]float64, g.InC*g.InH*g.InW)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, g.InC*g.K*g.K*cols)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	cx := make([]float64, len(y))
	Im2Col(x, g, cx)
	iy := make([]float64, len(x))
	Col2Im(y, g, iy)
	var lhs, rhs float64
	for i := range cx {
		lhs += cx[i] * y[i]
	}
	for i := range x {
		rhs += x[i] * iy[i]
	}
	if math.Abs(lhs-rhs) > 1e-9*(math.Abs(lhs)+1) {
		t.Fatalf("adjoint identity: %g vs %g", lhs, rhs)
	}
}

func TestMatMulAssociativityQuick(t *testing.T) {
	// (A x B) x 1s == A x (B x 1s) for random small matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		for i := range a {
			a[i] = float64(rng.Intn(7) - 3)
		}
		for i := range b {
			b[i] = float64(rng.Intn(7) - 3)
		}
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		ab := make([]float64, m*n)
		MatMul(a, m, k, b, n, ab)
		lhs := make([]float64, m)
		MatMul(ab, m, n, ones, 1, lhs)
		bOnes := make([]float64, k)
		MatMul(b, k, n, ones, 1, bOnes)
		rhs := make([]float64, m)
		MatMul(a, m, k, bOnes, 1, rhs)
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	const n = 64
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	out := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i % 13)
		bb[i] = float64(i % 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(a, n, n, bb, n, out)
	}
}
