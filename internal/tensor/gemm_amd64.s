// AVX kernels for the blocked GEMM engine. Vector lanes always map to
// DIFFERENT output elements (four adjacent output columns), never to the
// k-dimension, and products use separate VMULPD/VADDPD (no FMA): each output
// element therefore accumulates its k-products one at a time, in ascending-k
// order, with exactly the scalar mul-then-add rounding — which is what keeps
// the SIMD engine bit-identical to the naive reference kernels.

#include "textflag.h"

// func cpuidAVX() bool
//
// Reports AVX support: CPUID.1:ECX has OSXSAVE (bit 27) and AVX (bit 28),
// and XCR0 confirms the OS saves XMM+YMM state.
TEXT ·cpuidAVX(SB), NOSPLIT, $0-1
	MOVQ $1, AX
	XORQ CX, CX
	CPUID
	MOVQ CX, R8
	SHRQ $27, R8
	ANDQ $1, R8        // OSXSAVE
	MOVQ CX, R9
	SHRQ $28, R9
	ANDQ $1, R9        // AVX
	ANDQ R9, R8
	JZ   noavx
	XORL CX, CX
	XGETBV
	ANDQ $6, AX        // XCR0 bits 1..2: XMM and YMM state enabled
	CMPQ AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func kern4AVX(apack, bpack, c0, c1, c2, c3 *float64, kc, vecBytes, rowBytes int)
//
// The packed-panel micro-kernel: for kk in [0, kc), broadcast the four
// packed A values apack[kk*4+r] and accumulate c_r[j] += a_r * b[kk][j]
// over the first vecBytes/8 columns of each row, four columns per vector.
// bpack rows are rowBytes apart (the panel may be wider than the
// vectorized prefix; the Go caller handles the 1..3-column tail).
TEXT ·kern4AVX(SB), NOSPLIT, $0-72
	MOVQ apack+0(FP), AX
	MOVQ bpack+8(FP), BX
	MOVQ c0+16(FP), R8
	MOVQ c1+24(FP), R9
	MOVQ c2+32(FP), R10
	MOVQ c3+40(FP), R11
	MOVQ kc+48(FP), CX
	MOVQ vecBytes+56(FP), DX
	MOVQ rowBytes+64(FP), R12
kkloop:
	TESTQ CX, CX
	JZ    done
	VBROADCASTSD 0(AX), Y0
	VBROADCASTSD 8(AX), Y1
	VBROADCASTSD 16(AX), Y2
	VBROADCASTSD 24(AX), Y3
	XORQ SI, SI
jloop:
	CMPQ SI, DX
	JGE  jdone
	VMOVUPD (BX)(SI*1), Y4
	VMULPD  Y4, Y0, Y5
	VADDPD  (R8)(SI*1), Y5, Y5
	VMOVUPD Y5, (R8)(SI*1)
	VMULPD  Y4, Y1, Y6
	VADDPD  (R9)(SI*1), Y6, Y6
	VMOVUPD Y6, (R9)(SI*1)
	VMULPD  Y4, Y2, Y7
	VADDPD  (R10)(SI*1), Y7, Y7
	VMOVUPD Y7, (R10)(SI*1)
	VMULPD  Y4, Y3, Y8
	VADDPD  (R11)(SI*1), Y8, Y8
	VMOVUPD Y8, (R11)(SI*1)
	ADDQ $32, SI
	JMP  jloop
jdone:
	ADDQ $32, AX
	ADDQ R12, BX
	DECQ CX
	JMP  kkloop
done:
	VZEROUPPER
	RET

// func dot4x4AVX(a0, a1, a2, a3, bpack *float64, k int, o0, o1, o2, o3 *float64)
//
// The A x B^T register tile: four rows of A against four interleaved rows
// of B (bpack[kk*4+s] = B[j0+s][kk]). Accumulator lane (r, s) sums
// a_r[kk] * b_{j0+s}[kk] for ascending kk, entirely in registers, then the
// four-wide rows are stored to o_r.
TEXT ·dot4x4AVX(SB), NOSPLIT, $0-80
	MOVQ a0+0(FP), AX
	MOVQ a1+8(FP), BX
	MOVQ a2+16(FP), R8
	MOVQ a3+24(FP), R9
	MOVQ bpack+32(FP), R10
	MOVQ k+40(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ SI, SI
kloop:
	CMPQ SI, CX
	JGE  store
	VMOVUPD (R10), Y4
	ADDQ $32, R10
	VBROADCASTSD (AX)(SI*8), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	VBROADCASTSD (BX)(SI*8), Y6
	VMULPD Y4, Y6, Y6
	VADDPD Y6, Y1, Y1
	VBROADCASTSD (R8)(SI*8), Y7
	VMULPD Y4, Y7, Y7
	VADDPD Y7, Y2, Y2
	VBROADCASTSD (R9)(SI*8), Y8
	VMULPD Y4, Y8, Y8
	VADDPD Y8, Y3, Y3
	INCQ SI
	JMP  kloop
store:
	MOVQ o0+48(FP), DX
	VMOVUPD Y0, (DX)
	MOVQ o1+56(FP), DX
	VMOVUPD Y1, (DX)
	MOVQ o2+64(FP), DX
	VMOVUPD Y2, (DX)
	MOVQ o3+72(FP), DX
	VMOVUPD Y3, (DX)
	VZEROUPPER
	RET
