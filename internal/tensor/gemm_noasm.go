//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go kernels, which follow the same
// ascending-k accumulation order and are bit-identical to the SIMD path.
const haveAVX = false

func kern4AVX(apack, bpack, c0, c1, c2, c3 *float64, kc, vecBytes, rowBytes int) {
	panic("tensor: kern4AVX without AVX support")
}

func dot4x4AVX(a0, a1, a2, a3, bpack *float64, k int, o0, o1, o2, o3 *float64) {
	panic("tensor: dot4x4AVX without AVX support")
}
