package tensor

// haveAVX gates the SIMD micro-kernels. Detected once at init; when the host
// lacks AVX (or the OS doesn't save YMM state) the pure-Go kernels run
// instead, producing bit-identical results.
var haveAVX = cpuidAVX()

// cpuidAVX reports CPU+OS support for 256-bit AVX (CPUID feature flags plus
// XCR0 state enablement). Implemented in gemm_amd64.s.
func cpuidAVX() bool

// kern4AVX is the AVX form of kern4 over the first vecBytes/8 columns of the
// strip: c_r[j] += apack[kk*4+r] * bpack[kk][j] for ascending kk, four
// columns per vector. bpack rows are rowBytes apart. Implemented in
// gemm_amd64.s.
//
//go:noescape
func kern4AVX(apack, bpack, c0, c1, c2, c3 *float64, kc, vecBytes, rowBytes int)

// dot4x4AVX computes a 4x4 tile of A x B^T: o_r[0..3] = sum_kk a_r[kk] *
// bpack[kk*4+s], accumulated in registers over ascending kk and stored as
// four contiguous doubles per output row. Implemented in gemm_amd64.s.
//
//go:noescape
func dot4x4AVX(a0, a1, a2, a3, bpack *float64, k int, o0, o1, o2, o3 *float64)
