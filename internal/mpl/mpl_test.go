package mpl

import (
	"testing"

	"ldmo/internal/geom"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
)

// triangleLayout builds three mutually-conflicting contacts (an odd SP
// cycle): undecomposable with two masks, trivially decomposable with three.
func triangleLayout() layout.Layout {
	return layout.Layout{
		Name:   "triangle",
		Window: geom.RectWH(0, 0, layout.TileNM, layout.TileNM),
		Patterns: []geom.Rect{
			geom.RectWH(100, 100, 65, 65),
			geom.RectWH(230, 100, 65, 65), // 65nm from A
			geom.RectWH(165, 225, 65, 65), // 60nm above both
		},
	}
}

func TestTriangleIsOddCycle(t *testing.T) {
	l := triangleLayout()
	adj := layout.ConflictGraph(l.Patterns, 80)
	for i, nbrs := range adj {
		if len(nbrs) != 2 {
			t.Fatalf("vertex %d has degree %d, want 2", i, len(nbrs))
		}
	}
	if ok, _ := layout.IsBipartite(adj); ok {
		t.Fatal("triangle must not be 2-colorable")
	}
}

func TestGreedyColoringTriangle(t *testing.T) {
	l := triangleLayout()
	if _, err := GreedyColoring(l, 80, 2); err == nil {
		t.Fatal("2-coloring a triangle must fail")
	}
	colors, err := GreedyColoring(l, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	if colors[0] == colors[1] || colors[1] == colors[2] || colors[0] == colors[2] {
		t.Fatalf("triangle colors not distinct: %v", colors)
	}
}

func TestGreedyColoringLibraryCells(t *testing.T) {
	for _, cell := range layout.Cells() {
		colors, err := GreedyColoring(cell, 80, 3)
		if err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
		if !New(cell, 3, colors).Valid(80) {
			t.Fatalf("%s: greedy 3-coloring invalid", cell.Name)
		}
	}
}

func TestCanonicalizeRelabels(t *testing.T) {
	l := triangleLayout()
	a := New(l, 3, []uint8{2, 0, 1}).Canonicalize()
	if a.Assign[0] != 0 || a.Assign[1] != 1 || a.Assign[2] != 2 {
		t.Fatalf("canonical = %v", a.Assign)
	}
	// Permuted assignments share a key.
	b := New(l, 3, []uint8{1, 2, 0})
	if a.Key() != b.Key() {
		t.Fatalf("permutation keys differ: %s vs %s", a.Key(), b.Key())
	}
}

func TestNewPanicsOnLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(triangleLayout(), 3, []uint8{0})
}

func TestGenerateTriple(t *testing.T) {
	l := triangleLayout()
	cands, err := Generate(l, layout.DefaultClassifyParams(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, a := range cands {
		if !a.Valid(80) {
			t.Fatalf("candidate %s invalid", a.Key())
		}
		if a.Masks != 3 {
			t.Fatalf("masks = %d", a.Masks)
		}
	}
}

func TestGenerateWithFreePatterns(t *testing.T) {
	l := triangleLayout()
	// Add two isolated contacts: free ternary factors.
	l.Patterns = append(l.Patterns,
		geom.RectWH(400, 100, 65, 65),
		geom.RectWH(400, 350, 65, 65))
	cands, err := Generate(l, layout.DefaultClassifyParams(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 3 {
		t.Fatalf("free factors gave only %d candidates", len(cands))
	}
	keys := map[string]bool{}
	for _, a := range cands {
		if keys[a.Key()] {
			t.Fatal("duplicate candidate")
		}
		keys[a.Key()] = true
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(triangleLayout(), layout.DefaultClassifyParams(), 1, 1); err == nil {
		t.Fatal("k=1 must error")
	}
	if _, err := Generate(layout.Layout{Name: "empty"}, layout.DefaultClassifyParams(), 3, 1); err == nil {
		t.Fatal("empty layout must error")
	}
}

func TestMaskGridsPartition(t *testing.T) {
	l := triangleLayout()
	a := New(l, 3, []uint8{0, 1, 2})
	grids := a.MaskGrids(8)
	if len(grids) != 3 {
		t.Fatalf("grids = %d", len(grids))
	}
	total := 0.0
	for _, g := range grids {
		total += g.Sum()
	}
	if total != l.Rasterize(8).Sum() {
		t.Fatal("mask grids do not partition the target")
	}
}

func TestTripleILTPrintsOddCycle(t *testing.T) {
	// The headline of the extension: an odd SP cycle that double
	// patterning cannot manufacture prints cleanly with three masks.
	l := triangleLayout()
	p := litho.FastParams()
	opt, err := NewOptimizer(l, p)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Generate(l, layout.DefaultClassifyParams(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.Run(cands[0])
	if r.Violations.Any() {
		t.Fatalf("triple patterning left violations: %+v", r.Violations)
	}
	if r.EPE.Violations > 2 {
		t.Fatalf("triple patterning EPE = %d", r.EPE.Violations)
	}
	if len(r.Masks) != 3 || r.Printed == nil {
		t.Fatal("result images missing")
	}

	// The same layout on two masks must force a same-mask SP pair and
	// print with a bridge.
	dp := New(l, 2, []uint8{0, 1, 0})
	opt2, err := NewOptimizer(l, p)
	if err != nil {
		t.Fatal(err)
	}
	r2 := opt2.Run(dp)
	if !r2.Violations.Any() && r2.EPE.Violations <= r.EPE.Violations {
		t.Fatal("double patterning of an odd cycle should print worse than triple")
	}
}

func TestGenerateQuadruple(t *testing.T) {
	// Four masks trivially color any library cell; candidates stay legal
	// and deduplicated.
	l, err := layout.Cell("AOI22_X1")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := Generate(l, layout.DefaultClassifyParams(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	seen := map[string]bool{}
	for _, a := range cands {
		if !a.Valid(80) {
			t.Fatalf("invalid: %s", a.Key())
		}
		if seen[a.Key()] {
			t.Fatal("duplicate")
		}
		seen[a.Key()] = true
	}
}

func TestCanonicalizeFourMasks(t *testing.T) {
	l := triangleLayout()
	l.Patterns = append(l.Patterns, geom.RectWH(420, 420, 65, 65))
	a := New(l, 4, []uint8{3, 1, 0, 2}).Canonicalize()
	want := []uint8{0, 1, 2, 3}
	for i := range want {
		if a.Assign[i] != want[i] {
			t.Fatalf("canonical = %v", a.Assign)
		}
	}
}
