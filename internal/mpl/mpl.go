// Package mpl extends the framework from double to general multiple
// patterning (K masks, K = 3 for triple patterning). The paper treats DPL
// and cites the TPL decomposition literature ([1], [3], [4]) as the broader
// setting; this package is the corresponding future-work extension:
//
//   - K-mask assignments with canonical relabeling (masks are unordered,
//     generalizing the paper's Fig. 4(c) dual-mask merge);
//   - candidate generation by greedy K-coloring of the SP conflict graph
//     plus q-ary covering arrays over the free patterns (package nwise with
//     q = K);
//   - a K-mask ILT optimizer with the composition T = min(sum_k T_k, 1).
//
// Layouts whose SP conflict graphs contain odd cycles — undecomposable for
// two masks — become manufacturable here.
package mpl

import (
	"fmt"
	"strings"

	"ldmo/internal/epe"
	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
	"ldmo/internal/nwise"
)

// Assignment maps every pattern of a layout onto one of Masks masks.
type Assignment struct {
	Layout layout.Layout
	Masks  int
	Assign []uint8
}

// New builds an assignment with a defensive copy.
func New(l layout.Layout, masks int, assign []uint8) Assignment {
	if len(assign) != len(l.Patterns) {
		panic(fmt.Sprintf("mpl: %d assignments for %d patterns", len(assign), len(l.Patterns)))
	}
	return Assignment{Layout: l, Masks: masks, Assign: append([]uint8(nil), assign...)}
}

// Canonicalize relabels masks by order of first appearance (pattern 0 is
// always on mask 0, the next new mask seen becomes 1, and so on), so
// assignments differing only by a mask permutation collapse to one form.
// The receiver is modified and returned.
func (a Assignment) Canonicalize() Assignment {
	relabel := make([]int, a.Masks)
	for i := range relabel {
		relabel[i] = -1
	}
	next := uint8(0)
	for i, m := range a.Assign {
		if relabel[m] == -1 {
			relabel[m] = int(next)
			next++
		}
		a.Assign[i] = uint8(relabel[m])
	}
	return a
}

// Key returns the canonical identity string.
func (a Assignment) Key() string {
	c := New(a.Layout, a.Masks, a.Assign).Canonicalize()
	var b strings.Builder
	for _, m := range c.Assign {
		b.WriteByte('0' + m)
	}
	return b.String()
}

// Valid reports whether no SP pair (spacing <= nmin) shares a mask.
func (a Assignment) Valid(nmin float64) bool {
	adj := layout.ConflictGraph(a.Layout.Patterns, nmin)
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if a.Assign[u] == a.Assign[v] {
				return false
			}
		}
	}
	return true
}

// MaskGrids rasterizes the K mask target images.
func (a Assignment) MaskGrids(res int) []*grid.Grid {
	w := a.Layout.Window.W() / res
	h := a.Layout.Window.H() / res
	org := geom.Point{X: a.Layout.Window.X0, Y: a.Layout.Window.Y0}
	out := make([]*grid.Grid, a.Masks)
	for k := range out {
		out[k] = grid.New(w, h, res, org)
	}
	for i, r := range a.Layout.Patterns {
		out[a.Assign[i]].FillRect(r, 1)
	}
	return out
}

// GreedyColoring K-colors the SP conflict graph by smallest-available-color
// in degree order. It returns an error when K colors do not suffice (the
// greedy bound is maxdegree+1).
func GreedyColoring(l layout.Layout, nmin float64, k int) ([]uint8, error) {
	n := len(l.Patterns)
	if n == 0 {
		return nil, fmt.Errorf("mpl: layout %q has no patterns", l.Name)
	}
	adj := layout.ConflictGraph(l.Patterns, nmin)
	// Order vertices by decreasing degree (Welsh-Powell).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && len(adj[order[j]]) > len(adj[order[j-1]]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	colors := make([]int, n)
	for i := range colors {
		colors[i] = -1
	}
	for _, v := range order {
		used := make([]bool, k)
		for _, u := range adj[v] {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := -1
		for cand := 0; cand < k; cand++ {
			if !used[cand] {
				c = cand
				break
			}
		}
		if c < 0 {
			return nil, fmt.Errorf("mpl: layout %q not %d-colorable greedily", l.Name, k)
		}
		colors[v] = c
	}
	out := make([]uint8, n)
	for i, c := range colors {
		out[i] = uint8(c)
	}
	return out, nil
}

// Generate enumerates K-mask candidates: the greedy coloring anchors the SP
// patterns, and every pattern without an SP conflict becomes a free q-ary
// factor expanded with a strength-2 covering array (the DPL generator's
// 3-wise/2-wise split collapses to one q-ary pairwise array here; DPL-exact
// behaviour remains in package decomp).
func Generate(l layout.Layout, cp layout.ClassifyParams, k int, seed int64) ([]Assignment, error) {
	if k < 2 || k > 4 {
		return nil, fmt.Errorf("mpl: mask count %d outside [2,4]", k)
	}
	base, err := GreedyColoring(l, cp.NMin, k)
	if err != nil {
		return nil, err
	}
	adj := layout.ConflictGraph(l.Patterns, cp.NMin)
	var free []int
	for i := range l.Patterns {
		if len(adj[i]) == 0 {
			free = append(free, i)
		}
	}
	arr, err := nwise.GenerateQ(len(free), 2, k, seed)
	if err != nil {
		return nil, err
	}
	seen := map[string]struct{}{}
	var out []Assignment
	assign := make([]uint8, len(base))
	for _, row := range arr.Rows {
		copy(assign, base)
		for fi, pi := range free {
			assign[pi] = row[fi]
		}
		a := New(l, k, assign).Canonicalize()
		key := a.Key()
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out = append(out, a)
	}
	return out, nil
}

// Result is the outcome of one K-mask ILT run.
type Result struct {
	Masks      []*grid.Grid
	Printed    *grid.Grid
	L2         float64
	EPE        epe.Result
	Violations epe.Violations
	Iters      int
}

// Optimizer runs gradient-descent ILT over K masks of one layout.
type Optimizer struct {
	layout layout.Layout
	params litho.Params
	sim    *litho.Simulator
	target *grid.Grid
	cps    []epe.Checkpoint
	meter  epe.Meter

	maxIters int
	stepSize float64
	initClip float64
}

// NewOptimizer builds a K-mask optimizer with the paper's iteration budget.
func NewOptimizer(l layout.Layout, p litho.Params) (*Optimizer, error) {
	if len(l.Patterns) == 0 {
		return nil, fmt.Errorf("mpl: layout %q has no patterns", l.Name)
	}
	w := l.Window.W() / p.Resolution
	h := l.Window.H() / p.Resolution
	sim, err := litho.NewSimulator(w, h, p)
	if err != nil {
		return nil, err
	}
	return &Optimizer{
		layout:   l,
		params:   p,
		sim:      sim,
		target:   l.Rasterize(p.Resolution),
		cps:      epe.GenerateCheckpoints(l.Patterns, 40),
		meter:    epe.NewMeter(),
		maxIters: 29,
		stepSize: 2,
		initClip: 0.02,
	}, nil
}

// Run optimizes the masks of assignment a.
func (o *Optimizer) Run(a Assignment) Result {
	n := o.target.W * o.target.H
	k := a.Masks
	maskGrids := a.MaskGrids(o.params.Resolution)

	p := make([][]float64, k)
	m := make([][]float64, k)
	aerial := make([][]float64, k)
	resist := make([][]float64, k)
	fields := make([]*litho.Fields, k)
	for i := 0; i < k; i++ {
		p[i] = make([]float64, n)
		m[i] = make([]float64, n)
		aerial[i] = make([]float64, n)
		resist[i] = make([]float64, n)
		fields[i] = o.sim.NewFields()
		clamped := make([]float64, n)
		for j, v := range maskGrids[i].Data {
			clamped[j] = min(max(v, o.initClip), 1-o.initClip)
		}
		litho.MaskSigmoidInverse(o.params.ThetaM, clamped, p[i])
	}
	composed := grid.NewLike(o.target)
	sat := make([]bool, n)
	gradT := make([]float64, n)
	gradI := make([]float64, n)
	gradM := make([]float64, n)

	forward := func(withFields bool) {
		for j := range composed.Data {
			composed.Data[j] = 0
			sat[j] = false
		}
		for i := 0; i < k; i++ {
			litho.MaskSigmoid(o.params.ThetaM, p[i], m[i])
			f := fields[i]
			if !withFields {
				f = nil
			}
			o.sim.Aerial(m[i], aerial[i], f)
			o.sim.Resist(aerial[i], resist[i])
			for j, v := range resist[i] {
				composed.Data[j] += v
			}
		}
		for j, v := range composed.Data {
			if v > 1 {
				composed.Data[j] = 1
				sat[j] = true
			}
		}
	}

	res := Result{}
	for iter := 1; iter <= o.maxIters; iter++ {
		forward(true)
		res.Iters = iter
		for j := range gradT {
			if sat[j] {
				gradT[j] = 0
			} else {
				gradT[j] = 2 * (composed.Data[j] - o.target.Data[j])
			}
		}
		for i := 0; i < k; i++ {
			o.sim.ResistBackward(gradT, resist[i], gradI)
			o.sim.AerialBackward(gradI, fields[i], gradM)
			tm := o.params.ThetaM
			for j := range p[i] {
				p[i][j] -= o.stepSize * gradM[j] * tm * m[i][j] * (1 - m[i][j])
			}
		}
	}
	forward(false)
	res.L2 = composed.L2Diff(o.target)
	res.EPE = o.meter.Measure(composed, o.cps)
	res.Violations = epe.CheckPrintViolations(composed, o.layout.Patterns, o.params.PrintThreshold)
	res.Printed = composed.Clone()
	res.Masks = make([]*grid.Grid, k)
	for i := 0; i < k; i++ {
		res.Masks[i] = grid.NewLike(o.target)
		copy(res.Masks[i].Data, m[i])
	}
	return res
}
