// Package serve is the long-running mask-optimization service: a stdlib
// net/http JSON API that accepts layout jobs (library cell, generator seed,
// GDS upload, or CSV), runs the decompose -> predict -> ILT flow
// asynchronously on the pipelined scheduler, and exposes job status and
// results.
//
// Robustness is the package's defining property, layered end to end:
//
//   - admission control and fairness: a bounded job queue with round-robin
//     scheduling across clients; when full the server sheds load with 429 +
//     Retry-After instead of queuing unboundedly;
//   - per-job budgets and retry: every job runs under a runx.Budget, with
//     runx.Retry (jittered exponential backoff, budget-aware) wrapping
//     transient failures before the job falls through core.Flow's
//     degradation ladder to a failed-with-partial-result;
//   - crash-safe job store: every state transition is sealed as an
//     internal/artifact envelope on disk, so a killed daemon resumes
//     in-flight and queued jobs on restart with zero loss, and torn or
//     bit-rotted job files are quarantined and the job requeued;
//   - dedupe cache: job IDs are content-addressed (layout spec + config), so
//     repeat submissions return the cached result instead of recomputing;
//   - lifecycle: /healthz, /readyz, and SIGTERM drain (stop admitting,
//     checkpoint running jobs back to queued, exit clean).
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"ldmo/internal/core"
	"ldmo/internal/gds"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
)

// JobSpec is the client-supplied description of one mask-optimization job:
// exactly one layout source plus flow options. The spec is the unit of
// content addressing — two submissions with byte-identical canonical specs
// are the same job.
type JobSpec struct {
	// Cell names a library cell (see layout.Cells).
	Cell string `json:"cell,omitempty"`
	// GenSeed generates a random layout deterministically from this seed,
	// exactly like `ldmo -gen SEED`.
	GenSeed *int64 `json:"gen_seed,omitempty"`
	// GDSB64 is a base64-encoded GDSII stream; the first structure is used.
	GDSB64 string `json:"gds_b64,omitempty"`
	// CSV is an inline dataset CSV layout.
	CSV string `json:"csv,omitempty"`
	// Name labels CSV/GDS uploads (default "upload").
	Name string `json:"name,omitempty"`

	// Fast selects the coarse 8nm raster instead of the 4nm default.
	Fast bool `json:"fast,omitempty"`
	// DeadlineMS bounds the job's wall time in milliseconds; past it the job
	// completes with the best state reached (Result.Interrupted). 0 defers
	// to the server's default budget.
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// MaxAttempts bounds how many decomposition candidates are tried before
	// the forced best-effort run; 0 means all.
	MaxAttempts int `json:"max_attempts,omitempty"`
	// Warm opts the job into learned ILT warm-starting when the server was
	// started with a warm-start net (and the LDMO_WARMSTART gate is open).
	// Part of the content hash: a warm job and a cold job are different jobs
	// with separately cached results.
	Warm bool `json:"warm,omitempty"`
}

// Validate rejects specs with zero or several layout sources or out-of-range
// options, without materializing the layout.
func (s JobSpec) Validate() error {
	n := 0
	if s.Cell != "" {
		n++
	}
	if s.GenSeed != nil {
		n++
	}
	if s.GDSB64 != "" {
		n++
	}
	if s.CSV != "" {
		n++
	}
	if n != 1 {
		return fmt.Errorf("spec needs exactly one of cell, gen_seed, gds_b64, csv (got %d)", n)
	}
	if s.GenSeed != nil && *s.GenSeed < 0 {
		return fmt.Errorf("gen_seed must be >= 0")
	}
	if s.DeadlineMS < 0 || s.MaxAttempts < 0 {
		return fmt.Errorf("deadline_ms and max_attempts must be >= 0")
	}
	return nil
}

// Layout materializes the job's target layout. Deterministic: the same spec
// always produces the same layout, which is what makes job IDs
// content-addressed and restarted jobs bit-identical.
func (s JobSpec) Layout() (layout.Layout, error) {
	name := s.Name
	if name == "" {
		name = "upload"
	}
	switch {
	case s.Cell != "":
		return layout.Cell(s.Cell)
	case s.GenSeed != nil:
		return layout.Generate(rand.New(rand.NewSource(*s.GenSeed)), layout.DefaultGenParams())
	case s.GDSB64 != "":
		raw, err := base64.StdEncoding.DecodeString(s.GDSB64)
		if err != nil {
			return layout.Layout{}, fmt.Errorf("gds_b64: %w", err)
		}
		ls, err := gds.Read(bytes.NewReader(raw))
		if err != nil {
			return layout.Layout{}, fmt.Errorf("gds_b64: %w", err)
		}
		if len(ls) == 0 {
			return layout.Layout{}, fmt.Errorf("gds_b64: stream contains no structures")
		}
		return ls[0], nil
	case s.CSV != "":
		return layout.ReadCSV(strings.NewReader(s.CSV), name)
	}
	return layout.Layout{}, fmt.Errorf("empty job spec")
}

// ID derives the job's content-addressed identifier: "j-" plus the first 16
// hex digits of the SHA-256 of the canonical spec JSON. Options are part of
// the hash — the same layout under a different raster or budget is a
// different job with a different (cacheable) result.
func (s JobSpec) ID() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A JobSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return "j-" + hex.EncodeToString(sum[:8])
}

// groupKey buckets specs whose jobs can share one pipelined flow invocation:
// everything that feeds core.Config must match.
func (s JobSpec) groupKey() string {
	return fmt.Sprintf("fast=%v deadline=%d attempts=%d warm=%v", s.Fast, s.DeadlineMS, s.MaxAttempts, s.Warm)
}

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: accepted and durably recorded, waiting for a worker.
	StatusQueued Status = "queued"
	// StatusRunning: claimed by the executor. A crash while running requeues
	// the job on restart.
	StatusRunning Status = "running"
	// StatusDone: finished with a result (possibly degraded or interrupted —
	// the Result flags say so).
	StatusDone Status = "done"
	// StatusFailed: no usable masks were produced; Error says why. A partial
	// Result may still be attached.
	StatusFailed Status = "failed"
)

// Result is the JSON-serializable outcome of one job. For a given spec it is
// byte-for-byte reproducible: every field derives from the deterministic flow
// (wall-clock timestamps live on State, not here), which is what the
// kill-and-restart test asserts.
type Result struct {
	// Decomposition is the committed candidate's canonical key.
	Decomposition string `json:"decomposition"`
	// Candidates / Attempts mirror core.Result.
	Candidates int `json:"candidates"`
	Attempts   int `json:"attempts"`
	// Printability metrics of the final masks.
	EPEViolations   int     `json:"epe_violations"`
	EPEMaxNM        float64 `json:"epe_max_nm"`
	EPEMeanNM       float64 `json:"epe_mean_nm"`
	L2              float64 `json:"l2"`
	PrintViolations int     `json:"print_violations"`
	// Seconds is the deterministic simclock model time.
	Seconds float64 `json:"seconds"`
	// Degradation flags, straight from the flow ladder.
	Forced         bool `json:"forced,omitempty"`
	Interrupted    bool `json:"interrupted,omitempty"`
	ScorerFallback bool `json:"scorer_fallback,omitempty"`
	// Retries counts transient-failure retries consumed by the job; Degraded
	// reports that the retry budget ran out and the degraded-ladder result
	// was accepted as final.
	Retries  int  `json:"retries,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// SHA-256 of the mask and printed-image rasters, proving bitwise result
	// identity across runs and restarts without shipping megabytes of
	// float64s in every status poll.
	M1SHA256      string `json:"m1_sha256"`
	M2SHA256      string `json:"m2_sha256"`
	PrintedSHA256 string `json:"printed_sha256"`
}

// State is a job's durable record: everything needed to display, dedupe, and
// — for queued/running jobs — re-execute it after a crash.
type State struct {
	ID     string `json:"id"`
	Client string `json:"client"`
	Status Status `json:"status"`
	// Error is set on failed jobs (and on done-but-degraded jobs as a note).
	Error string `json:"error,omitempty"`
	// Result is set on done jobs, and on failed jobs that salvaged a partial.
	Result *Result `json:"result,omitempty"`
	// Wall-clock metadata; informational only, excluded from Result so the
	// result bytes stay reproducible.
	SubmittedUnix int64 `json:"submitted_unix"`
	StartedUnix   int64 `json:"started_unix,omitempty"`
	FinishedUnix  int64 `json:"finished_unix,omitempty"`
}

// resultOf converts a flow result into the job result record.
func resultOf(res core.Result) *Result {
	out := &Result{
		Decomposition:   res.Chosen.Key(),
		Candidates:      res.Candidates,
		Attempts:        res.Attempts,
		L2:              res.ILT.L2,
		EPEViolations:   res.ILT.EPE.Violations,
		EPEMaxNM:        res.ILT.EPE.MaxAbs,
		EPEMeanNM:       res.ILT.EPE.MeanAbs,
		PrintViolations: res.ILT.Violations.Total(),
		Seconds:         res.Seconds,
		Forced:          res.Forced,
		Interrupted:     res.Interrupted,
		ScorerFallback:  res.ScorerFallback,
		M1SHA256:        gridSHA(res.ILT.M1),
		M2SHA256:        gridSHA(res.ILT.M2),
		PrintedSHA256:   gridSHA(res.ILT.Printed),
	}
	return out
}

// gridSHA hashes a raster's float64 bit patterns; "" for a nil grid.
func gridSHA(g *grid.Grid) string {
	if g == nil {
		return ""
	}
	h := sha256.New()
	var b [8]byte
	for _, v := range g.Data {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
		h.Write(b[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}
