package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestMain doubles as the crash-test daemon: when LDMO_SERVE_CRASH_DAEMON is
// set, the test binary re-execs into a real ldmo-serve-shaped process that the
// parent test can SIGKILL — the only honest way to test crash recovery.
func TestMain(m *testing.M) {
	if os.Getenv("LDMO_SERVE_CRASH_DAEMON") == "1" {
		crashDaemon()
		return
	}
	os.Exit(m.Run())
}

func crashDaemon() {
	s, err := NewServer(Config{Dir: os.Getenv("LDMO_SERVE_CRASH_DIR"), Workers: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	s.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The parent reads the address from the first stdout line.
	fmt.Printf("ADDR %s\n", ln.Addr())
	http.Serve(ln, s.Handler())
}

// crashSpecs are the jobs both crash tests replay: cheap, deterministic, and
// free of wall budgets (wall budgets are machine-dependent and would make the
// byte-identity assertion meaningless).
var crashSpecs = []string{genJob(11), genJob(12), genJob(13)}

// referenceResults computes the clean-run result bytes for crashSpecs on a
// fresh server, keyed by job ID.
func referenceResults(t *testing.T) map[string]string {
	t.Helper()
	s, ts := newTestServer(t, nil)
	s.Start()
	ref := map[string]string{}
	for _, body := range crashSpecs {
		code, sr, _ := submit(t, ts, "ref", body)
		if code != http.StatusAccepted {
			t.Fatalf("reference submit: %d", code)
		}
		st := waitJob(t, ts, sr.ID)
		if st.Status != StatusDone {
			t.Fatalf("reference job %s: %q (%s)", sr.ID, st.Status, st.Error)
		}
		b, err := json.Marshal(st.Result)
		if err != nil {
			t.Fatal(err)
		}
		ref[sr.ID] = string(b)
	}
	return ref
}

// TestKillAndRestartZeroJobLoss is the in-process crash drill: accept jobs,
// hard-stop the executor mid-flight without any drain, stand a second server
// up on the same store, and require every accepted job to finish with result
// bytes identical to an uninterrupted run.
func TestKillAndRestartZeroJobLoss(t *testing.T) {
	ref := referenceResults(t)
	dir := t.TempDir()

	first, err := NewServer(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(first.Handler())
	first.Start()
	var ids []string
	for _, body := range crashSpecs {
		code, sr, _ := submit(t, ts1, "c", body)
		if code != http.StatusAccepted {
			t.Fatalf("submit: %d", code)
		}
		ids = append(ids, sr.ID)
	}
	// Kill mid-flight: cancel the executor's context with no drain, no
	// checkpoint — the moral equivalent of a power cut after the 202s.
	time.Sleep(30 * time.Millisecond)
	first.runCancel()
	<-first.done
	ts1.Close()

	second, ts2 := newTestServerOn(t, dir)
	second.Start()
	for _, id := range ids {
		st := waitJob(t, ts2, id)
		if st.Status != StatusDone || st.Result == nil {
			t.Fatalf("job %s after restart: %q (%s), want done", id, st.Status, st.Error)
		}
		b, _ := json.Marshal(st.Result)
		if string(b) != ref[id] {
			t.Errorf("job %s result bytes differ after crash:\n restart: %s\n clean:   %s", id, b, ref[id])
		}
	}
}

// newTestServerOn is newTestServer pinned to an existing store directory.
func newTestServerOn(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(Config{Dir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

// startCrashDaemon re-execs the test binary as a serve daemon on dir and
// returns the process plus its base URL.
func startCrashDaemon(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		"LDMO_SERVE_CRASH_DAEMON=1",
		"LDMO_SERVE_CRASH_DIR="+dir,
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(out).ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("daemon produced no address: %v", err)
	}
	addr := strings.TrimSpace(strings.TrimPrefix(line, "ADDR"))
	return cmd, "http://" + strings.TrimSpace(addr)
}

// TestSIGKILLDaemonRecovers runs the drill against a real process killed with
// an uncatchable SIGKILL: accepted jobs must survive the corpse and complete
// on the next daemon with clean-run result bytes.
func TestSIGKILLDaemonRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash drill skipped in -short")
	}
	ref := referenceResults(t)
	dir := t.TempDir()

	daemon1, base1 := startCrashDaemon(t, dir)
	var ids []string
	for _, body := range crashSpecs {
		resp, err := http.Post(base1+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var sr SubmitResponse
		json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d", resp.StatusCode)
		}
		ids = append(ids, sr.ID)
	}
	time.Sleep(50 * time.Millisecond) // let the executor get mid-flight
	if err := daemon1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	daemon1.Wait()

	daemon2, base2 := startCrashDaemon(t, dir)
	defer func() {
		daemon2.Process.Kill()
		daemon2.Wait()
	}()
	for _, id := range ids {
		st := waitDaemonJob(t, base2, id)
		if st.Status != StatusDone || st.Result == nil {
			t.Fatalf("job %s after SIGKILL restart: %q (%s)", id, st.Status, st.Error)
		}
		b, _ := json.Marshal(st.Result)
		if string(b) != ref[id] {
			t.Errorf("job %s bytes differ after SIGKILL:\n restart: %s\n clean:   %s", id, b, ref[id])
		}
	}
}

func waitDaemonJob(t *testing.T, base, id string) State {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sr SubmitResponse
		json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if sr.Status == StatusDone || sr.Status == StatusFailed {
			return sr.State
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never settled on the restarted daemon", id)
	return State{}
}
