package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ldmo/internal/grid"
	"ldmo/internal/runx"
)

func noSleep(context.Context, time.Duration) error { return nil }

// newTestServer builds a server on a throwaway store plus an httptest front
// end. The caller decides whether to Start the executor.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Dir:     t.TempDir(),
		Workers: 1,
		Retry:   runx.RetryConfig{Sleep: noSleep},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s, ts
}

func genJob(seed int64) string {
	return fmt.Sprintf(`{"gen_seed":%d,"fast":true,"max_attempts":1}`, seed)
}

func submit(t *testing.T, ts *httptest.Server, client, body string) (int, SubmitResponse, http.Header) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		req.Header.Set("X-LDMO-Client", client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr, resp.Header
}

func getStatus(t *testing.T, ts *httptest.Server, id string) (int, SubmitResponse) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	json.NewDecoder(resp.Body).Decode(&sr)
	return resp.StatusCode, sr
}

// waitJob polls until the job settles (done or failed).
func waitJob(t *testing.T, ts *httptest.Server, id string) State {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		code, sr := getStatus(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: %d", id, code)
		}
		if sr.Status == StatusDone || sr.Status == StatusFailed {
			return sr.State
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never settled", id)
	return State{}
}

func TestSubmitPollResult(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Start()

	code, sr, _ := submit(t, ts, "smoke", genJob(3))
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d, want 202", code)
	}
	if sr.Status != StatusQueued && sr.Status != StatusRunning && sr.Status != StatusDone {
		t.Fatalf("submit state: %q", sr.Status)
	}
	st := waitJob(t, ts, sr.ID)
	if st.Status != StatusDone || st.Result == nil {
		t.Fatalf("job settled %q (err %q), want done with result", st.Status, st.Error)
	}
	r := st.Result
	if r.Decomposition == "" || r.Candidates < 1 || len(r.M1SHA256) != 64 || len(r.PrintedSHA256) != 64 {
		t.Fatalf("result incomplete: %+v", r)
	}
	if r.Seconds <= 0 {
		t.Fatalf("deterministic model time missing: %+v", r)
	}

	// Listing returns a summary with the result stripped.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list []State
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != sr.ID || list[0].Result != nil {
		t.Fatalf("listing: %+v", list)
	}
	if got := s.Stats(); got.Done != 1 || got.Accepted != 1 {
		t.Fatalf("stats: %+v", got)
	}
}

func TestOverloadShedsWith429(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.QueueCap = 2 })
	// No Start: the queue cannot drain, modelling a saturated server.

	for seed := int64(1); seed <= 2; seed++ {
		if code, _, _ := submit(t, ts, "a", genJob(seed)); code != http.StatusAccepted {
			t.Fatalf("submit %d: %d, want 202", seed, code)
		}
	}
	code, _, hdr := submit(t, ts, "a", genJob(3))
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 must carry a Retry-After hint")
	}
	// Shedding bounds memory: nothing about the refused job is retained.
	if got := s.Stats(); got.Shed != 1 || got.Accepted != 2 || got.QueueLen != 2 {
		t.Fatalf("stats after shed: %+v", got)
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n != 2 {
		t.Fatalf("shed job leaked into memory: %d entries", n)
	}

	// Saturation flips readiness but not liveness.
	if code := getCode(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while saturated: %d, want 503", code)
	}
	if code := getCode(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while saturated: %d, want 200", code)
	}
}

func getCode(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestDedupeReturnsCachedResult(t *testing.T) {
	s, ts := newTestServer(t, nil)
	s.Start()

	_, first, _ := submit(t, ts, "a", genJob(4))
	done := waitJob(t, ts, first.ID)

	code, again, _ := submit(t, ts, "b", genJob(4))
	if code != http.StatusOK || !again.Cached {
		t.Fatalf("resubmit of a done job: code %d cached %v, want 200 cached", code, again.Cached)
	}
	if again.Result == nil || again.Result.M1SHA256 != done.Result.M1SHA256 {
		t.Fatalf("cached result differs: %+v vs %+v", again.Result, done.Result)
	}
	if got := s.Stats(); got.CacheHits != 1 || got.Done != 1 {
		t.Fatalf("stats: %+v (the cached hit must not recompute)", got)
	}
}

func TestResubmitWhileQueuedIsIdempotent(t *testing.T) {
	s, ts := newTestServer(t, nil) // no Start: job stays queued

	_, first, _ := submit(t, ts, "a", genJob(9))
	code, second, _ := submit(t, ts, "a", genJob(9))
	if code != http.StatusAccepted || second.ID != first.ID {
		t.Fatalf("idempotent resubmit: code %d id %s, want 202 with %s", code, second.ID, first.ID)
	}
	if got := s.Stats(); got.Accepted != 1 || got.QueueLen != 1 {
		t.Fatalf("duplicate submission must not double-queue: %+v", got)
	}
}

func TestSubmitRejectsMalformedSpecs(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, body := range []string{
		"not json at all",
		"{}",                           // no layout source
		`{"cell":"AND2","gen_seed":1}`, // two layout sources
		`{"gen_seed":-5}`,              // invalid seed
		`{"gds_b64":"%%%"}`,            // undecodable upload
		`{"cell":"NO_SUCH_CELL"}`,      // unknown library cell
	} {
		if code, _, _ := submit(t, ts, "a", body); code != http.StatusBadRequest {
			t.Errorf("submit %q: %d, want 400", body, code)
		}
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, nil)
	if code, _ := getStatus(t, ts, "j-missing"); code != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", code)
	}
}

func TestDrainStopsAdmission(t *testing.T) {
	s, ts := newTestServer(t, nil)
	if code := getCode(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if code := getCode(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	if code, _, _ := submit(t, ts, "a", genJob(1)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", code)
	}
	if code := getCode(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", code)
	}
}

// sumScorer is a deterministic stand-in predictor: score = pixel sum.
type sumScorer struct{ calls atomic.Int64 }

func (sc *sumScorer) PredictBatch(imgs []*grid.Grid) []float64 {
	sc.calls.Add(1)
	out := make([]float64, len(imgs))
	for i, g := range imgs {
		for _, v := range g.Data {
			out[i] += v
		}
	}
	return out
}

// flakyScorer panics for the first `panics` PredictBatch calls, then behaves.
type flakyScorer struct {
	sumScorer
	panics atomic.Int32
}

func (sc *flakyScorer) PredictBatch(imgs []*grid.Grid) []float64 {
	if sc.panics.Add(-1) >= 0 {
		panic("injected scorer crash")
	}
	return sc.sumScorer.PredictBatch(imgs)
}

func TestScorerPanicRetriesToCleanResult(t *testing.T) {
	flaky := &flakyScorer{}
	flaky.panics.Store(1)
	s, ts := newTestServer(t, func(c *Config) {
		c.Scorer = flaky
		c.Retry = runx.RetryConfig{Attempts: 3, Sleep: noSleep}
	})
	s.Start()

	_, sr, _ := submit(t, ts, "a", genJob(5))
	st := waitJob(t, ts, sr.ID)
	if st.Status != StatusDone || st.Result == nil {
		t.Fatalf("job: %q (%s), want done", st.Status, st.Error)
	}
	// Attempt 1 hit the panic and degraded; the retry got a healthy scorer,
	// so the final result is clean — not a fallback, not degraded.
	if st.Result.Retries != 1 || st.Result.ScorerFallback || st.Result.Degraded {
		t.Fatalf("retry outcome: %+v, want Retries=1 clean", st.Result)
	}
	if got := s.Stats(); got.Retries != 1 {
		t.Fatalf("stats: %+v, want Retries=1", got)
	}
}

func TestStickyScorerFaultFallsToDegradedResult(t *testing.T) {
	flaky := &flakyScorer{}
	flaky.panics.Store(1 << 20) // never recovers
	s, ts := newTestServer(t, func(c *Config) {
		c.Scorer = flaky
		c.Retry = runx.RetryConfig{Attempts: 2, Sleep: noSleep}
	})
	s.Start()

	_, sr, _ := submit(t, ts, "a", genJob(6))
	st := waitJob(t, ts, sr.ID)
	// Retries exhausted, but the flow's own ladder still produced masks in
	// generator order — the job completes degraded instead of failing.
	if st.Status != StatusDone || st.Result == nil {
		t.Fatalf("job: %q (%s), want degraded done", st.Status, st.Error)
	}
	if !st.Result.Degraded || !st.Result.ScorerFallback || st.Result.M1SHA256 == "" {
		t.Fatalf("degraded outcome: %+v", st.Result)
	}
	if st.Error == "" {
		t.Fatal("degraded job must carry the cause as a note")
	}
}
