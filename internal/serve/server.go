package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ldmo/internal/core"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/par"
	"ldmo/internal/runx"
)

// Config parameterizes the server. The zero value (plus a Dir) is usable.
type Config struct {
	// Dir is the job store directory (required).
	Dir string
	// QueueCap bounds the admission queue; submissions beyond it are shed
	// with 429. <=0 selects 64.
	QueueCap int
	// Wave bounds how many queued jobs one pipelined flow invocation carries;
	// <=0 selects max(2, Workers).
	Wave int
	// Workers bounds flow parallelism (the pipelined scheduler may run more
	// goroutines to assemble coalescing waves; CPU use stays bounded by
	// GOMAXPROCS). <=0 selects par.Workers().
	Workers int
	// Budget is the default per-job budget; a job's deadline_ms overrides
	// the wall limit. The zero value is unlimited.
	Budget runx.Budget
	// Retry bounds transient-failure retries per job (scorer panics,
	// numerical faults). Attempts counts total attempts including the first;
	// the zero value selects runx defaults (3 attempts).
	Retry runx.RetryConfig
	// Scorer is the optional trained predictor; nil degrades every job to
	// generator candidate order (the no-predictor ablation).
	Scorer core.Scorer
	// WarmStarter is the optional learned ILT warm-start net, applied to jobs
	// that set spec.Warm (subject to the LDMO_WARMSTART gate). nil runs every
	// job cold regardless of the spec.
	WarmStarter ilt.Initializer
	// RetryAfter is the hint sent with 429 responses; <=0 selects 1s.
	RetryAfter time.Duration
	// Log receives operational messages when non-nil.
	Log io.Writer
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	Submitted int64 `json:"submitted"`
	Accepted  int64 `json:"accepted"`
	Shed      int64 `json:"shed"`
	CacheHits int64 `json:"cache_hits"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Retries   int64 `json:"retries"`
	Requeued  int64 `json:"requeued"`
	QueueLen  int   `json:"queue_len"`
	Running   int   `json:"running"`
	Draining  bool  `json:"draining"`
}

// Server is the mask-optimization service. Create with NewServer, start the
// executor with Start, mount Handler on an http.Server, and stop with Drain.
type Server struct {
	cfg   Config
	store *Store
	queue *fairQueue

	mu   sync.Mutex
	jobs map[string]*jobEntry

	draining  atomic.Bool
	wake      chan struct{}
	runCtx    context.Context
	runCancel context.CancelFunc
	done      chan struct{}
	started   atomic.Bool

	nSubmitted, nAccepted, nShed, nCacheHits atomic.Int64
	nDone, nFailed, nRetries, nRequeued      atomic.Int64
}

// jobEntry is the in-memory record of one job; state is guarded by Server.mu
// and mirrored to the store on every transition.
type jobEntry struct {
	spec  JobSpec
	state State
}

// NewServer opens the job store, recovers every previously accepted job
// (requeuing queued/running ones, quarantining damaged envelopes), and
// returns a server ready to Start. No goroutines run yet.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = par.Workers()
	}
	if cfg.Wave <= 0 {
		cfg.Wave = max(2, cfg.Workers)
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		store: store,
		queue: newFairQueue(cfg.QueueCap),
		jobs:  map[string]*jobEntry{},
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	s.runCtx, s.runCancel = context.WithCancel(context.Background())

	rep, err := store.Recover()
	if err != nil {
		return nil, err
	}
	for _, q := range rep.Quarantined {
		s.logf("serve: recovery quarantined damaged envelope -> %s", q)
	}
	for _, id := range rep.Lost {
		s.logf("serve: recovery LOST job %s: spec envelope damaged (quarantined)", id)
	}
	requeued := 0
	for _, rj := range rep.Jobs {
		s.jobs[rj.State.ID] = &jobEntry{spec: rj.Spec, state: rj.State}
		if rj.Requeued {
			// Recovery ignores queue capacity: these jobs were accepted in a
			// previous life and must not be shed now.
			s.queue.Push(rj.State.Client, rj.State.ID)
			requeued++
		}
	}
	if len(rep.Jobs) > 0 || len(rep.Lost) > 0 {
		s.logf("serve: recovered %d job(s), requeued %d, quarantined %d envelope(s), lost %d",
			len(rep.Jobs), requeued, len(rep.Quarantined), len(rep.Lost))
	}
	s.nRequeued.Add(int64(requeued))
	return s, nil
}

// Start launches the executor. Safe to call once.
func (s *Server) Start() {
	if s.started.Swap(true) {
		return
	}
	go s.run()
}

// Drain stops the server gracefully: stop admitting (submissions get 503,
// readyz flips unready), cancel the executor, wait for it to exit, and
// checkpoint any still-running jobs back to queued so a later process
// resumes them with zero loss. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.runCancel()
	if s.started.Load() {
		select {
		case <-s.done:
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %w", ctx.Err())
		}
	}
	// Belt and braces: anything still marked running goes back to queued on
	// disk. The executor's own drain path normally did this already.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.jobs {
		if e.state.Status == StatusRunning {
			e.state.Status = StatusQueued
			e.state.StartedUnix = 0
			if err := s.store.PutState(e.state); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	running := 0
	for _, e := range s.jobs {
		if e.state.Status == StatusRunning {
			running++
		}
	}
	s.mu.Unlock()
	return Stats{
		Submitted: s.nSubmitted.Load(),
		Accepted:  s.nAccepted.Load(),
		Shed:      s.nShed.Load(),
		CacheHits: s.nCacheHits.Load(),
		Done:      s.nDone.Load(),
		Failed:    s.nFailed.Load(),
		Retries:   s.nRetries.Load(),
		Requeued:  s.nRequeued.Load(),
		QueueLen:  s.queue.Len(),
		Running:   running,
		Draining:  s.draining.Load(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		fmt.Fprintf(s.cfg.Log, format+"\n", args...)
	}
}

// ---------------------------------------------------------------- HTTP API

// SubmitResponse is the body of POST /v1/jobs and GET /v1/jobs/{id}.
type SubmitResponse struct {
	State
	// Cached reports a dedupe hit: the job had already completed and the
	// stored result is returned without recomputation.
	Cached bool `json:"cached,omitempty"`
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// clientOf identifies the submitting client for fair scheduling: the
// X-LDMO-Client header when present, else the remote host.
func clientOf(r *http.Request) string {
	if c := r.Header.Get("X-LDMO-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.nSubmitted.Add(1)
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode job spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	// Materialize now so a malformed GDS/CSV fails the submission with 400
	// instead of failing the job later.
	if _, err := spec.Layout(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid layout: %v", err)
		return
	}
	id := s.jobID(spec)
	client := clientOf(r)

	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.jobs[id]; ok {
		switch e.state.Status {
		case StatusDone:
			s.nCacheHits.Add(1)
			writeJSON(w, http.StatusOK, SubmitResponse{State: e.state, Cached: true})
		case StatusFailed:
			// Resubmitting a failed job requeues it: the failure may have
			// been environmental, and the client explicitly asked again.
			if !s.queue.Push(client, id) {
				s.shed(w)
				return
			}
			e.state.Status = StatusQueued
			e.state.Error = ""
			e.state.Result = nil
			e.state.StartedUnix, e.state.FinishedUnix = 0, 0
			if err := s.store.PutState(e.state); err != nil {
				s.queue.Remove(client, id)
				writeError(w, http.StatusInternalServerError, "persist job: %v", err)
				return
			}
			s.pokeExecutor()
			writeJSON(w, http.StatusAccepted, SubmitResponse{State: e.state})
		default: // queued or running: idempotent resubmit
			writeJSON(w, http.StatusAccepted, SubmitResponse{State: e.state})
		}
		return
	}

	// New job. Reserve a queue slot first (admission control), then make the
	// job durable — a 202 means the spec and queued state are on disk.
	if !s.queue.Push(client, id) {
		s.shed(w)
		return
	}
	state := State{
		ID:            id,
		Client:        client,
		Status:        StatusQueued,
		SubmittedUnix: time.Now().Unix(),
	}
	err := s.store.PutSpec(id, spec)
	if err == nil {
		err = s.store.PutState(state)
	}
	if err != nil {
		s.queue.Remove(client, id)
		writeError(w, http.StatusInternalServerError, "persist job: %v", err)
		return
	}
	s.jobs[id] = &jobEntry{spec: spec, state: state}
	s.nAccepted.Add(1)
	s.pokeExecutor()
	writeJSON(w, http.StatusAccepted, SubmitResponse{State: state})
}

// shed refuses a submission because the queue is full: 429 plus a
// Retry-After hint — the degradation the bounded queue buys.
func (s *Server) shed(w http.ResponseWriter) {
	s.nShed.Add(1)
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, "job queue full (%d); retry after %ds", s.queue.Len(), secs)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.jobs[id]
	var state State
	if ok {
		state = e.state
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, SubmitResponse{State: state})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]State, 0, len(s.jobs))
	for _, e := range s.jobs {
		st := e.state
		st.Result = nil // summaries only; fetch the job for its result
		out = append(out, st)
	}
	s.mu.Unlock()
	// Deterministic listing order: submission time, then ID.
	sortStates(out)
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	switch {
	case s.draining.Load():
		writeError(w, http.StatusServiceUnavailable, "draining")
	case s.queue.Full():
		writeError(w, http.StatusServiceUnavailable, "saturated")
	default:
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	}
}

// ---------------------------------------------------------------- executor

// pokeExecutor nudges the run loop; non-blocking.
func (s *Server) pokeExecutor() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// run is the executor loop: pop fair waves of queued jobs and carry each
// wave through the pipelined flow scheduler until drained.
func (s *Server) run() {
	defer close(s.done)
	for {
		if s.runCtx.Err() != nil {
			return
		}
		ids := s.popWave()
		if len(ids) == 0 {
			select {
			case <-s.wake:
			case <-s.runCtx.Done():
				return
			}
			continue
		}
		s.runWave(ids)
	}
}

// popWave claims up to Wave queued jobs (fair round-robin across clients)
// and marks them running.
func (s *Server) popWave() []string {
	var ids []string
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(ids) < s.cfg.Wave {
		id, ok := s.queue.Pop()
		if !ok {
			break
		}
		e, ok := s.jobs[id]
		if !ok || e.state.Status != StatusQueued {
			continue // removed or already settled; skip
		}
		e.state.Status = StatusRunning
		e.state.StartedUnix = time.Now().Unix()
		if err := s.store.PutState(e.state); err != nil {
			s.logf("serve: persist running %s: %v", id, err)
		}
		ids = append(ids, id)
	}
	return ids
}

// runWave executes claimed jobs: grouped by flow configuration, each group
// runs as ONE pipelined-scheduler invocation with coalesced prediction, then
// every member settles (possibly via individual retries).
func (s *Server) runWave(ids []string) {
	groups := map[string][]string{}
	var order []string
	s.mu.Lock()
	for _, id := range ids {
		k := s.jobs[id].spec.groupKey()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], id)
	}
	s.mu.Unlock()

	for _, k := range order {
		group := groups[k]
		if s.runCtx.Err() != nil {
			s.requeue(group)
			continue
		}
		s.runGroup(group)
	}
}

// runGroup runs one same-config batch of jobs through Flow.RunPipelineCtx.
func (s *Server) runGroup(ids []string) {
	s.mu.Lock()
	spec0 := s.jobs[ids[0]].spec
	specs := make([]JobSpec, len(ids))
	for i, id := range ids {
		specs[i] = s.jobs[id].spec
	}
	s.mu.Unlock()

	flow := core.NewFlow(s.cfg.Scorer, s.flowConfig(spec0))

	// Materialize layouts; a spec that stopped materializing (it did at
	// submission) fails permanently.
	var runIDs []string
	var ls []layout.Layout
	for i, id := range ids {
		l, err := specs[i].Layout()
		if err != nil {
			s.settleFailed(id, 0, fmt.Errorf("materialize layout: %w", err), nil)
			continue
		}
		runIDs = append(runIDs, id)
		ls = append(ls, l)
	}
	if len(runIDs) == 0 {
		return
	}

	results, _ := flow.RunPipelineCtx(s.runCtx, ls, core.PipelineOptions{Workers: s.cfg.Workers})
	for i, id := range runIDs {
		s.settle(id, ls[i], flow, results[i].Res, results[i].Err)
	}
}

// flowConfig derives the core.Config for a job spec.
func (s *Server) flowConfig(spec JobSpec) core.Config {
	cfg := core.DefaultConfig()
	if spec.Fast {
		cfg.ILT.Litho.Resolution = 8
	}
	cfg.MaxAttempts = spec.MaxAttempts
	cfg.Workers = s.cfg.Workers
	cfg.Budget = s.cfg.Budget
	if spec.DeadlineMS > 0 {
		cfg.Budget.Wall = time.Duration(spec.DeadlineMS) * time.Millisecond
	}
	if spec.Warm {
		cfg.WarmStarter = s.cfg.WarmStarter
	}
	return cfg
}

// jobID derives the dedupe identifier for a spec under THIS server's engine:
// the spec's content hash plus — when the server carries learned components
// that expose a checkpoint digest — those digests. Retraining the predictor
// or the warm-start net then invalidates the dedupe cache instead of serving
// results computed by a stale engine; a server with no digestable components
// keeps the plain spec.ID(), so job IDs (and on-disk stores) from before the
// provenance mechanism stay valid.
func (s *Server) jobID(spec JobSpec) string {
	fp := s.fingerprint()
	if fp == "" {
		return spec.ID()
	}
	b, err := json.Marshal(spec)
	if err != nil {
		// A JobSpec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	h := sha256.New()
	h.Write(b)
	h.Write([]byte{0})
	h.Write([]byte(fp))
	return "j-" + hex.EncodeToString(h.Sum(nil)[:8])
}

// fingerprint is the engine provenance string: the checkpoint digests of
// whichever learned components this server carries. Components that do not
// expose a Digest (test fakes, ablation stubs) contribute nothing.
func (s *Server) fingerprint() string {
	type digester interface{ Digest() string }
	var parts []string
	if d, ok := s.cfg.Scorer.(digester); ok {
		parts = append(parts, "scorer="+d.Digest())
	}
	if d, ok := s.cfg.WarmStarter.(digester); ok {
		parts = append(parts, "warm="+d.Digest())
	}
	return strings.Join(parts, " ")
}

// transientScorer marks a scorer fallback treated as transient: the
// prediction stage crashed, the flow degraded to generator order, and a
// retry may well get a healthy scorer back.
type transientScorer struct{ cause error }

func (e *transientScorer) Error() string {
	return fmt.Sprintf("transient scorer failure (degraded to generator order): %v", e.cause)
}
func (e *transientScorer) Unwrap() error { return e.cause }

// transientOutcome classifies one attempt: non-nil means the attempt should
// be retried (crash-shaped or numerical failures — not budget exhaustion,
// not malformed input).
func transientOutcome(res core.Result, err error) error {
	if err != nil {
		if runx.Interrupted(err) {
			return nil // budget spent; retrying would double-spend it
		}
		if _, ok := runx.AsPanic(err); ok {
			return err
		}
		if _, ok := runx.AsNumerical(err); ok {
			return err
		}
		return nil // permanent
	}
	if res.ScorerFallback {
		return &transientScorer{cause: res.ScorerErr}
	}
	return nil
}

// settle decides a job's fate from its first (pipelined) attempt, retrying
// transient failures individually under runx.Retry, and persists the final
// state. The full ladder, least to most severe:
//
//  1. clean result                       -> done;
//  2. transient failure, retry succeeds  -> done (Retries counts attempts);
//  3. retries exhausted, usable degraded
//     result from the flow's own ladder  -> done, Degraded, Error notes why;
//  4. no usable masks at all             -> failed (partial result attached
//     when one exists).
func (s *Server) settle(id string, l layout.Layout, flow *core.Flow, res core.Result, err error) {
	if s.runCtx.Err() != nil && (err != nil || res.Interrupted) {
		// The server is dying, not the job: an interrupted or errored result
		// under a dead server context is shutdown truncation, not a job
		// outcome. Put the job back for the next life, which recomputes it
		// in full — never persist shutdown-shaped bytes.
		s.requeue([]string{id})
		return
	}
	if terr := transientOutcome(res, err); terr == nil && err == nil {
		s.settleDone(id, res, 0, false, "")
		return
	}
	if s.runCtx.Err() != nil {
		// Transient failure, but no retries can run under a dead context.
		s.requeue([]string{id})
		return
	}

	retries := 0
	rcfg := s.cfg.Retry
	rcfg.Retryable = func(e error) bool {
		var ts *transientScorer
		if errors.As(e, &ts) {
			return true
		}
		if _, ok := runx.AsPanic(e); ok {
			return true
		}
		if _, ok := runx.AsNumerical(e); ok {
			return true
		}
		return false
	}
	rerr := runx.Retry(s.runCtx, rcfg, func(attempt int) error {
		if attempt > 1 {
			retries++
			res, err = flow.RunContext(s.runCtx, l)
		}
		if terr := transientOutcome(res, err); terr != nil {
			return terr
		}
		return err // nil on success; permanent/interrupted otherwise
	})
	s.nRetries.Add(int64(retries))
	if rerr == nil {
		s.settleDone(id, res, retries, false, "")
		return
	}
	if s.runCtx.Err() != nil && (err != nil || res.Interrupted) {
		// Shutdown landed during the retries: same rule as above — requeue
		// rather than persist truncated state.
		s.requeue([]string{id})
		return
	}
	if err == nil {
		// The flow itself always returned a (degraded) result — e.g. a sticky
		// scorer fault left every attempt on generator order. Accept it:
		// this is the flow ladder's output, marked Degraded.
		s.settleDone(id, res, retries, true, rerr.Error())
		return
	}
	if runx.Interrupted(err) && usable(res) {
		// Per-job budget exhausted mid-run with partial masks: that is a
		// result (Interrupted flag set), not a failure.
		s.settleDone(id, res, retries, false, "")
		return
	}
	var partial *Result
	if usable(res) {
		partial = resultOf(res)
		partial.Retries = retries
	}
	s.settleFailed(id, retries, err, partial)
}

// usable reports whether a flow result carries masks worth returning.
func usable(res core.Result) bool { return res.ILT.M1 != nil }

func (s *Server) settleDone(id string, res core.Result, retries int, degraded bool, note string) {
	r := resultOf(res)
	r.Retries = retries
	r.Degraded = degraded
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[id]
	if !ok {
		return
	}
	e.state.Status = StatusDone
	e.state.Result = r
	e.state.Error = note
	e.state.FinishedUnix = time.Now().Unix()
	if err := s.store.PutState(e.state); err != nil {
		s.logf("serve: persist done %s: %v", id, err)
	}
	s.nDone.Add(1)
}

func (s *Server) settleFailed(id string, retries int, cause error, partial *Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[id]
	if !ok {
		return
	}
	e.state.Status = StatusFailed
	e.state.Error = cause.Error()
	e.state.Result = partial
	e.state.FinishedUnix = time.Now().Unix()
	if err := s.store.PutState(e.state); err != nil {
		s.logf("serve: persist failed %s: %v", id, err)
	}
	s.nFailed.Add(1)
	s.logf("serve: job %s failed after %d retr%s: %v", id, retries, plural(retries, "y", "ies"), cause)
}

// requeue checkpoints claimed-but-unfinished jobs back to queued (drain and
// crash paths); the next executor life picks them up.
func (s *Server) requeue(ids []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		e, ok := s.jobs[id]
		if !ok || e.state.Status != StatusRunning {
			continue
		}
		e.state.Status = StatusQueued
		e.state.StartedUnix = 0
		if err := s.store.PutState(e.state); err != nil {
			s.logf("serve: persist requeue %s: %v", id, err)
		}
		s.nRequeued.Add(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// sortStates orders job summaries by submission time, then ID.
func sortStates(states []State) {
	sort.Slice(states, func(a, b int) bool {
		if states[a].SubmittedUnix != states[b].SubmittedUnix {
			return states[a].SubmittedUnix < states[b].SubmittedUnix
		}
		return states[a].ID < states[b].ID
	})
}
