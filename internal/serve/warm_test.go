package serve

import (
	"net/http"
	"sync/atomic"
	"testing"

	"ldmo/internal/grid"
	"ldmo/internal/ilt"
)

// fakeWarm is a deterministic warm-starter with a configurable checkpoint
// digest, standing in for a trained model.WarmStarter.
type fakeWarm struct {
	digest string
	calls  atomic.Int64
}

func (f *fakeWarm) WarmMasksInto(c1, c2 *grid.Grid, w1, w2 []float64) bool {
	f.calls.Add(1)
	for i, v := range c1.Data {
		w1[i] = 0.8*v + 0.1
	}
	for i, v := range c2.Data {
		w2[i] = 0.8*v + 0.1
	}
	return true
}

func (f *fakeWarm) Digest() string { return f.digest }

// fakeDigestScorer is a scorer that exposes provenance.
type fakeDigestScorer struct{ digest string }

func (f fakeDigestScorer) PredictBatch(imgs []*grid.Grid) []float64 {
	return make([]float64, len(imgs))
}
func (f fakeDigestScorer) Digest() string { return f.digest }

// TestJobIDFoldsEngineProvenance pins the dedupe-key contract: a server with
// no digestable learned components issues plain content-addressed spec IDs
// (compatible with stores written before provenance existed), while swapping
// in a retrained checkpoint — scorer or warm-starter — moves every job to a
// fresh ID so stale cached results cannot be served.
func TestJobIDFoldsEngineProvenance(t *testing.T) {
	spec := JobSpec{Cell: "INV_X1", Fast: true}

	bare, _ := newTestServer(t, nil)
	if got := bare.jobID(spec); got != spec.ID() {
		t.Fatalf("no-provenance server changed job IDs: %s vs %s", got, spec.ID())
	}

	warmA, _ := newTestServer(t, func(c *Config) { c.WarmStarter = &fakeWarm{digest: "aaaa"} })
	warmA2, _ := newTestServer(t, func(c *Config) { c.WarmStarter = &fakeWarm{digest: "aaaa"} })
	warmB, _ := newTestServer(t, func(c *Config) { c.WarmStarter = &fakeWarm{digest: "bbbb"} })
	idA, idA2, idB := warmA.jobID(spec), warmA2.jobID(spec), warmB.jobID(spec)
	if idA == spec.ID() {
		t.Fatal("warm-starter digest not folded into the job ID")
	}
	if idA != idA2 {
		t.Fatalf("same checkpoint, different IDs: %s vs %s", idA, idA2)
	}
	if idA == idB {
		t.Fatal("retrained warm-starter kept the old job ID (stale cache would be served)")
	}

	scored, _ := newTestServer(t, func(c *Config) { c.Scorer = fakeDigestScorer{digest: "ssss"} })
	both, _ := newTestServer(t, func(c *Config) {
		c.Scorer = fakeDigestScorer{digest: "ssss"}
		c.WarmStarter = &fakeWarm{digest: "aaaa"}
	})
	if scored.jobID(spec) == spec.ID() || scored.jobID(spec) == idA || both.jobID(spec) == scored.jobID(spec) {
		t.Fatal("scorer digest not independently folded into the job ID")
	}

	// A warm-starter without a Digest method (ablation stub) contributes no
	// provenance: IDs stay plain.
	plainWarm, _ := newTestServer(t, func(c *Config) { c.WarmStarter = noDigestWarm{} })
	if got := plainWarm.jobID(spec); got != spec.ID() {
		t.Fatalf("digestless component changed job IDs: %s vs %s", got, spec.ID())
	}
}

type noDigestWarm struct{}

func (noDigestWarm) WarmMasksInto(c1, c2 *grid.Grid, w1, w2 []float64) bool { return false }

// TestWarmJobTogglesPerSpec runs a warm and a cold job against one server:
// the warm spec is a distinct job (own ID, own group), the warm-starter is
// consulted exactly for it, and both settle done.
func TestWarmJobTogglesPerSpec(t *testing.T) {
	t.Setenv(ilt.EnvWarm, "on")
	fw := &fakeWarm{digest: "cafe"}
	s, ts := newTestServer(t, func(c *Config) { c.WarmStarter = fw })
	s.Start()

	cold := JobSpec{GenSeed: ptr(int64(4)), Fast: true, MaxAttempts: 1}
	warm := cold
	warm.Warm = true
	if cold.groupKey() == warm.groupKey() {
		t.Fatal("warm flag missing from the group key: warm and cold jobs would share a flow")
	}
	if s.jobID(cold) == s.jobID(warm) {
		t.Fatal("warm flag missing from the content hash")
	}

	code, srCold, _ := submit(t, ts, "a", `{"gen_seed":4,"fast":true,"max_attempts":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("cold submit: %d", code)
	}
	stCold := waitJob(t, ts, srCold.ID)
	if stCold.Status != StatusDone {
		t.Fatalf("cold job: %q (%s)", stCold.Status, stCold.Error)
	}
	if n := fw.calls.Load(); n != 0 {
		t.Fatalf("cold job consulted the warm-starter %d times", n)
	}

	code, srWarm, _ := submit(t, ts, "a", `{"gen_seed":4,"fast":true,"max_attempts":1,"warm":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("warm submit: %d", code)
	}
	if srWarm.ID == srCold.ID {
		t.Fatal("warm job deduped against the cold job")
	}
	stWarm := waitJob(t, ts, srWarm.ID)
	if stWarm.Status != StatusDone {
		t.Fatalf("warm job: %q (%s)", stWarm.Status, stWarm.Error)
	}
	if fw.calls.Load() == 0 {
		t.Fatal("warm job never consulted the warm-starter")
	}
}

func ptr[T any](v T) *T { return &v }
