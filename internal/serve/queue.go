package serve

import "sync"

// fairQueue is the bounded admission queue: per-client FIFO lanes served
// round-robin, so one client flooding the server delays only itself, and a
// hard capacity so overload turns into load shedding (the caller's 429)
// instead of unbounded memory growth.
type fairQueue struct {
	mu       sync.Mutex
	capacity int
	n        int
	pending  map[string][]string // client -> job IDs, FIFO
	ring     []string            // clients with pending work, round-robin order
	rr       int                 // next ring slot to serve
}

func newFairQueue(capacity int) *fairQueue {
	if capacity <= 0 {
		capacity = 64
	}
	return &fairQueue{capacity: capacity, pending: map[string][]string{}}
}

// Len returns the queued-job count.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Full reports whether the queue is at capacity.
func (q *fairQueue) Full() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n >= q.capacity
}

// Push enqueues a job for a client; false means the queue is full and the
// submission must be shed.
func (q *fairQueue) Push(client, id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n >= q.capacity {
		return false
	}
	if _, ok := q.pending[client]; !ok {
		q.ring = append(q.ring, client)
	}
	q.pending[client] = append(q.pending[client], id)
	q.n++
	return true
}

// Pop dequeues the next job round-robin across clients, FIFO within each.
func (q *fairQueue) Pop() (string, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		return "", false
	}
	if q.rr >= len(q.ring) {
		q.rr = 0
	}
	client := q.ring[q.rr]
	lane := q.pending[client]
	id := lane[0]
	if len(lane) == 1 {
		delete(q.pending, client)
		q.ring = append(q.ring[:q.rr], q.ring[q.rr+1:]...)
		// q.rr now indexes the next client already.
	} else {
		q.pending[client] = lane[1:]
		q.rr++
	}
	q.n--
	return id, true
}

// Remove deletes a specific queued job (admission rollback when persisting
// an accepted job fails). Reports whether the job was found.
func (q *fairQueue) Remove(client, id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	lane, ok := q.pending[client]
	if !ok {
		return false
	}
	for i, jid := range lane {
		if jid != id {
			continue
		}
		lane = append(lane[:i], lane[i+1:]...)
		if len(lane) == 0 {
			delete(q.pending, client)
			for ri, c := range q.ring {
				if c == client {
					q.ring = append(q.ring[:ri], q.ring[ri+1:]...)
					if q.rr > ri {
						q.rr--
					}
					break
				}
			}
		} else {
			q.pending[client] = lane
		}
		q.n--
		return true
	}
	return false
}
