package serve

import "testing"

func TestQueueBoundedAndSheds(t *testing.T) {
	q := newFairQueue(2)
	if !q.Push("a", "j1") || !q.Push("a", "j2") {
		t.Fatal("pushes under capacity must succeed")
	}
	if q.Push("a", "j3") {
		t.Fatal("push beyond capacity must be refused")
	}
	if q.Push("b", "j4") {
		t.Fatal("capacity is global, not per-client")
	}
	if !q.Full() || q.Len() != 2 {
		t.Fatalf("Full=%v Len=%d, want full with 2", q.Full(), q.Len())
	}
	q.Pop()
	if q.Full() {
		t.Fatal("queue must unfill after a pop")
	}
	if !q.Push("b", "j4") {
		t.Fatal("freed slot must be usable")
	}
}

func TestQueueRoundRobinFairness(t *testing.T) {
	q := newFairQueue(16)
	// Client a floods first; b and c each submit one job afterward.
	for _, id := range []string{"a1", "a2", "a3", "a4"} {
		q.Push("a", id)
	}
	q.Push("b", "b1")
	q.Push("c", "c1")
	var got []string
	for {
		id, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, id)
	}
	// Round-robin: a, b, c each get a turn per cycle; a's flood only delays a.
	want := []string{"a1", "b1", "c1", "a2", "a3", "a4"}
	if len(got) != len(want) {
		t.Fatalf("popped %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("popped %v, want %v (fairness violated at %d)", got, want, i)
		}
	}
}

func TestQueuePerClientFIFO(t *testing.T) {
	q := newFairQueue(8)
	q.Push("a", "a1")
	q.Push("a", "a2")
	q.Push("a", "a3")
	for _, want := range []string{"a1", "a2", "a3"} {
		if id, ok := q.Pop(); !ok || id != want {
			t.Fatalf("Pop = %q, want %q", id, want)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("empty queue must report not-ok")
	}
}

func TestQueueRemove(t *testing.T) {
	q := newFairQueue(8)
	q.Push("a", "a1")
	q.Push("a", "a2")
	q.Push("b", "b1")
	if !q.Remove("a", "a2") {
		t.Fatal("Remove of queued job must succeed")
	}
	if q.Remove("a", "a2") || q.Remove("x", "nope") {
		t.Fatal("Remove of absent job must report false")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after remove, want 2", q.Len())
	}
	// Removing a client's last job must drop its ring slot without breaking
	// rotation.
	if !q.Remove("b", "b1") {
		t.Fatal("Remove of b's only job must succeed")
	}
	if id, ok := q.Pop(); !ok || id != "a1" {
		t.Fatalf("Pop after removes = %q, want a1", id)
	}
}
