package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ldmo/internal/artifact"
)

// Artifact kinds and schema versions of the job store. The spec is written
// once at admission and never touched again; the state is rewritten (atomic
// temp+fsync+rename) on every lifecycle transition.
const (
	kindSpec  = "serve-job-spec"
	kindState = "serve-job-state"

	specVersion  uint16 = 1
	stateVersion uint16 = 1
)

// Store is the crash-safe on-disk job store: one sealed spec envelope plus
// one sealed state envelope per job. The split is what makes recovery
// lossless — the immutable spec survives any state-file corruption, so a
// torn state write costs a recomputation, never the job.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) a job store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store dir: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func (st *Store) specPath(id string) string  { return filepath.Join(st.dir, id+".spec") }
func (st *Store) statePath(id string) string { return filepath.Join(st.dir, id+".state") }

// PutSpec durably records a job's spec. Called exactly once, before the
// submission is acknowledged: a job is "accepted" only after this returns.
func (st *Store) PutSpec(id string, spec JobSpec) error {
	payload, err := json.Marshal(spec)
	if err != nil {
		return fmt.Errorf("serve: marshal spec %s: %w", id, err)
	}
	return artifact.WriteFile(st.specPath(id), kindSpec, specVersion, payload)
}

// PutState durably records a job's current lifecycle state.
func (st *Store) PutState(state State) error {
	payload, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("serve: marshal state %s: %w", state.ID, err)
	}
	return artifact.WriteFile(st.statePath(state.ID), kindState, stateVersion, payload)
}

// GetSpec reads and verifies a job's spec envelope.
func (st *Store) GetSpec(id string) (JobSpec, error) {
	payload, err := artifact.ReadFile(st.specPath(id), kindSpec, specVersion)
	if err != nil {
		return JobSpec{}, err
	}
	var spec JobSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		return JobSpec{}, fmt.Errorf("serve: decode spec %s: %w", id, err)
	}
	return spec, nil
}

// GetState reads and verifies a job's state envelope.
func (st *Store) GetState(id string) (State, error) {
	payload, err := artifact.ReadFile(st.statePath(id), kindState, stateVersion)
	if err != nil {
		return State{}, err
	}
	var state State
	if err := json.Unmarshal(payload, &state); err != nil {
		return State{}, fmt.Errorf("serve: decode state %s: %w", id, err)
	}
	return state, nil
}

// Delete removes a job's files (tests and operator tooling; the server never
// forgets a job on its own).
func (st *Store) Delete(id string) {
	os.Remove(st.specPath(id))
	os.Remove(st.statePath(id))
}

// RecoveredJob is one job reconstructed by Recover.
type RecoveredJob struct {
	Spec  JobSpec
	State State
	// Requeued reports the job came back as queued: it was queued or running
	// at the crash, or its state file was damaged and had to be discarded.
	Requeued bool
}

// RecoveryReport summarizes one Recover pass.
type RecoveryReport struct {
	// Jobs are the surviving jobs, submission-ordered.
	Jobs []RecoveredJob
	// Quarantined lists the quarantine paths of damaged envelopes.
	Quarantined []string
	// Lost lists job IDs whose *spec* envelope was damaged — with the spec
	// gone the job cannot be re-executed, so it is quarantined and dropped.
	// Specs are written before admission is acknowledged and never rewritten,
	// so this requires at-rest corruption of a sealed, fsynced file.
	Lost []string
}

// Recover scans the store and reconstructs every accepted job:
//
//   - done/failed jobs are returned as-is (they keep their results and feed
//     the dedupe cache);
//   - queued and running jobs are returned Requeued — a crash mid-run simply
//     recomputes, and determinism makes the recomputed result byte-identical;
//   - a damaged state envelope (torn write, bit rot — artifact.ErrCorrupt and
//     friends) is quarantined via artifact.Quarantine and the job rebuilt
//     from its spec as queued;
//   - a damaged spec envelope quarantines both files and reports the job
//     Lost.
//
// I/O errors other than rejection (permissions, disk) abort the recovery.
func (st *Store) Recover() (RecoveryReport, error) {
	var rep RecoveryReport
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return rep, fmt.Errorf("serve: recover: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".spec") || e.IsDir() {
			continue
		}
		id := strings.TrimSuffix(name, ".spec")
		spec, err := st.GetSpec(id)
		if err != nil {
			if !artifact.Rejected(err) {
				return rep, err
			}
			if q, qerr := artifact.Quarantine(st.specPath(id)); qerr == nil {
				rep.Quarantined = append(rep.Quarantined, q)
			}
			if _, serr := os.Stat(st.statePath(id)); serr == nil {
				if q, qerr := artifact.Quarantine(st.statePath(id)); qerr == nil {
					rep.Quarantined = append(rep.Quarantined, q)
				}
			}
			rep.Lost = append(rep.Lost, id)
			continue
		}
		state, err := st.GetState(id)
		switch {
		case err == nil:
			// fine
		case errors.Is(err, fs.ErrNotExist):
			// Crash between spec and first state write: the job was accepted
			// (the spec is durable), so it restarts queued.
			state = State{ID: id, Status: StatusQueued}
		case artifact.Rejected(err):
			if q, qerr := artifact.Quarantine(st.statePath(id)); qerr == nil {
				rep.Quarantined = append(rep.Quarantined, q)
			}
			state = State{ID: id, Status: StatusQueued}
		default:
			return rep, err
		}
		requeued := false
		if state.Status == StatusQueued || state.Status == StatusRunning {
			state.Status = StatusQueued
			state.StartedUnix = 0
			requeued = true
			if err := st.PutState(state); err != nil {
				return rep, err
			}
		}
		rep.Jobs = append(rep.Jobs, RecoveredJob{Spec: spec, State: state, Requeued: requeued})
	}
	// Submission order makes requeue order (and thus fairness) reproducible.
	sort.Slice(rep.Jobs, func(a, b int) bool {
		ja, jb := rep.Jobs[a], rep.Jobs[b]
		if ja.State.SubmittedUnix != jb.State.SubmittedUnix {
			return ja.State.SubmittedUnix < jb.State.SubmittedUnix
		}
		return ja.State.ID < jb.State.ID
	})
	return rep, nil
}
