package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldmo/internal/artifact"
	"ldmo/internal/faultinject"
)

func testSpec(seed int64) JobSpec {
	return JobSpec{GenSeed: &seed, Fast: true, MaxAttempts: 1}
}

func TestStoreRoundtrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(7)
	id := spec.ID()
	if err := st.PutSpec(id, spec); err != nil {
		t.Fatal(err)
	}
	state := State{ID: id, Client: "c1", Status: StatusQueued, SubmittedUnix: 100}
	if err := st.PutState(state); err != nil {
		t.Fatal(err)
	}
	gotSpec, err := st.GetSpec(id)
	if err != nil {
		t.Fatal(err)
	}
	if gotSpec.ID() != id {
		t.Fatalf("spec roundtrip changed identity: %s != %s", gotSpec.ID(), id)
	}
	gotState, err := st.GetState(id)
	if err != nil {
		t.Fatal(err)
	}
	if gotState != state {
		t.Fatalf("state roundtrip: %+v != %+v", gotState, state)
	}
}

func TestRecoverRequeuesQueuedAndRunning(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	specQ, specR, specD := testSpec(1), testSpec(2), testSpec(3)
	idQ, idR, idD := specQ.ID(), specR.ID(), specD.ID()
	st.PutSpec(idQ, specQ)
	st.PutState(State{ID: idQ, Status: StatusQueued, SubmittedUnix: 1})
	st.PutSpec(idR, specR)
	st.PutState(State{ID: idR, Status: StatusRunning, StartedUnix: 5, SubmittedUnix: 2})
	st.PutSpec(idD, specD)
	st.PutState(State{ID: idD, Status: StatusDone, Result: &Result{Decomposition: "x"}, SubmittedUnix: 3})

	rep, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 3 || len(rep.Lost) != 0 || len(rep.Quarantined) != 0 {
		t.Fatalf("report: %+v", rep)
	}
	byID := map[string]RecoveredJob{}
	for _, j := range rep.Jobs {
		byID[j.State.ID] = j
	}
	if j := byID[idQ]; !j.Requeued || j.State.Status != StatusQueued {
		t.Fatalf("queued job not requeued: %+v", j.State)
	}
	if j := byID[idR]; !j.Requeued || j.State.Status != StatusQueued || j.State.StartedUnix != 0 {
		t.Fatalf("running job must requeue as queued with cleared start: %+v", j.State)
	}
	if j := byID[idD]; j.Requeued || j.State.Status != StatusDone || j.State.Result == nil {
		t.Fatalf("done job must survive untouched: %+v", j.State)
	}
	// Submission order is preserved for fair requeue.
	if rep.Jobs[0].State.ID != idQ || rep.Jobs[1].State.ID != idR {
		t.Fatalf("recovery order not submission order: %v, %v", rep.Jobs[0].State.ID, rep.Jobs[1].State.ID)
	}
}

func TestRecoverCrashBetweenSpecAndState(t *testing.T) {
	st, _ := OpenStore(t.TempDir())
	spec := testSpec(4)
	id := spec.ID()
	st.PutSpec(id, spec) // crash before the first state write
	rep, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 1 || !rep.Jobs[0].Requeued || rep.Jobs[0].State.Status != StatusQueued {
		t.Fatalf("spec-only job must requeue: %+v", rep)
	}
}

// tornStateRecovery is the shared body of the artifact-truncate and
// artifact-bitflip cases: a done job's state envelope is corrupted at rest,
// recovery must quarantine exactly that envelope and requeue the job from
// its intact spec.
func tornStateRecovery(t *testing.T, point string) {
	t.Helper()
	defer faultinject.Reset()
	st, _ := OpenStore(t.TempDir())
	spec := testSpec(5)
	id := spec.ID()
	st.PutSpec(id, spec)
	st.PutState(State{
		ID: id, Client: "c", Status: StatusDone, SubmittedUnix: 9,
		Result: &Result{Decomposition: "d", M1SHA256: "aa"},
	})

	// Arm the one-shot fault: the next read of a *.state file observes
	// in-place corruption on disk, exactly like at-rest bit rot / torn write.
	faultinject.Set(point, ".state")
	rep, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 1 {
		t.Fatalf("job lost to a torn state file: %+v", rep)
	}
	j := rep.Jobs[0]
	if !j.Requeued || j.State.Status != StatusQueued || j.State.Result != nil {
		t.Fatalf("torn state must requeue fresh: %+v", j.State)
	}
	if j.Spec.ID() != id {
		t.Fatal("requeued job must keep its original spec")
	}
	q := st.statePath(id) + artifact.QuarantineSuffix
	if _, err := os.Stat(q); err != nil {
		t.Fatalf("torn envelope not quarantined at %s: %v", q, err)
	}
	// The rebuilt state envelope must now read cleanly.
	if got, err := st.GetState(id); err != nil || got.Status != StatusQueued {
		t.Fatalf("post-recovery state unreadable: %+v, %v", got, err)
	}
}

func TestRecoverQuarantinesTruncatedState(t *testing.T) {
	tornStateRecovery(t, faultinject.ArtifactTruncate)
}

func TestRecoverQuarantinesBitflippedState(t *testing.T) {
	tornStateRecovery(t, faultinject.ArtifactBitflip)
}

func TestRecoverCorruptSpecIsLostNotFatal(t *testing.T) {
	defer faultinject.Reset()
	st, _ := OpenStore(t.TempDir())
	bad, good := testSpec(6), testSpec(7)
	st.PutSpec(bad.ID(), bad)
	st.PutState(State{ID: bad.ID(), Status: StatusQueued})
	st.PutSpec(good.ID(), good)
	st.PutState(State{ID: good.ID(), Status: StatusQueued})

	faultinject.Set(faultinject.ArtifactTruncate, bad.ID()+".spec")
	rep, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Lost) != 1 || rep.Lost[0] != bad.ID() {
		t.Fatalf("damaged spec must report the job lost: %+v", rep)
	}
	if len(rep.Jobs) != 1 || rep.Jobs[0].Spec.ID() != good.ID() {
		t.Fatalf("healthy sibling must survive: %+v", rep)
	}
	// Both of the lost job's envelopes are quarantined for inspection.
	for _, p := range []string{st.specPath(bad.ID()), st.statePath(bad.ID())} {
		if _, err := os.Stat(p + artifact.QuarantineSuffix); err != nil {
			t.Fatalf("%s not quarantined: %v", p, err)
		}
		if _, err := os.Stat(p); err == nil {
			t.Fatalf("%s still present after quarantine", p)
		}
	}
}

func TestRecoverIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, _ := OpenStore(dir)
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a job"), 0o644)
	os.WriteFile(filepath.Join(dir, "stray.state"), []byte("orphan state"), 0o644)
	rep, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 0 || len(rep.Lost) != 0 {
		t.Fatalf("foreign files misread as jobs: %+v", rep)
	}
}

func TestJobIDContentAddressing(t *testing.T) {
	a, b := testSpec(1), testSpec(1)
	if a.ID() != b.ID() {
		t.Fatal("identical specs must share an ID")
	}
	c := testSpec(2)
	if a.ID() == c.ID() {
		t.Fatal("different layouts must get different IDs")
	}
	d := testSpec(1)
	d.Fast = false
	if a.ID() == d.ID() {
		t.Fatal("different flow options must get different IDs (they change the result)")
	}
	if !strings.HasPrefix(a.ID(), "j-") || len(a.ID()) != 18 {
		t.Fatalf("ID format drifted: %q", a.ID())
	}
}
