package pw

import (
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/geom"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
)

func analyzerFor(t *testing.T, name string) (*Analyzer, layout.Layout) {
	t.Helper()
	l, err := layout.Cell(name)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(l, litho.FastParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return a, l
}

func TestNewAnalyzerErrors(t *testing.T) {
	if _, err := NewAnalyzer(layout.Layout{Name: "empty"}, litho.FastParams(), nil); err == nil {
		t.Fatal("empty layout must error")
	}
	l, err := layout.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	bad := []Corner{{Name: "x", Dose: 0, Defocus: 1}}
	if _, err := NewAnalyzer(l, litho.FastParams(), bad); err == nil {
		t.Fatal("bad corner must error")
	}
}

func TestDefaultCorners(t *testing.T) {
	cs := DefaultCorners()
	if len(cs) != 5 || cs[0].Name != "nominal" {
		t.Fatalf("corners = %+v", cs)
	}
	if cs[0].Dose != 1 || cs[0].Defocus != 1 {
		t.Fatal("nominal corner not nominal")
	}
}

func TestAnalyzeNominalMatchesILT(t *testing.T) {
	// The nominal corner of the analyzer must agree with the optimizer's
	// own final measurement.
	a, l := analyzerFor(t, "NAND3_X2")
	cfg := ilt.DefaultConfig()
	cfg.Litho = litho.FastParams()
	cfg.AbortOnViolation = false
	cfg.MaxIters = 6
	opt, err := ilt.NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.Run(cands[0])
	rep := a.Analyze(r.M1, r.M2)
	if got, want := rep.Corners[0].EPE.Violations, r.EPE.Violations; got != want {
		t.Fatalf("nominal corner EPE %d != ILT EPE %d", got, want)
	}
	if rep.Corners[0].L2 != r.L2 {
		t.Fatalf("nominal corner L2 %g != ILT L2 %g", rep.Corners[0].L2, r.L2)
	}
}

func TestAnalyzeWindowDegradesOffNominal(t *testing.T) {
	// Off-nominal corners cannot beat the nominal corner's L2 on average,
	// and the PV band must be nonempty for any real mask.
	a, l := analyzerFor(t, "NAND3_X2")
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := cands[0].Masks(8)
	rep := a.Analyze(m1, m2)
	if len(rep.Corners) != 5 {
		t.Fatalf("corners = %d", len(rep.Corners))
	}
	nominal := rep.Corners[0].L2
	offSum := 0.0
	for _, c := range rep.Corners[1:] {
		offSum += c.L2
	}
	if offSum/4 < nominal {
		t.Fatalf("off-nominal average L2 %.1f better than nominal %.1f", offSum/4, nominal)
	}
	if rep.PVBandArea == 0 {
		t.Fatal("empty PV band")
	}
	if rep.PVBand == nil || int(rep.PVBand.Sum()) != rep.PVBandArea {
		t.Fatal("PV band raster inconsistent with area")
	}
}

func TestReportAggregates(t *testing.T) {
	a, l := analyzerFor(t, "INV_X1")
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := cands[0].Masks(8)
	rep := a.Analyze(m1, m2)
	worst := 0
	totalV := 0
	for _, c := range rep.Corners {
		if c.EPE.Violations > worst {
			worst = c.EPE.Violations
		}
		totalV += c.Violations.Total()
	}
	if rep.WorstEPE() != worst {
		t.Fatalf("WorstEPE = %d, want %d", rep.WorstEPE(), worst)
	}
	if rep.TotalViolations() != totalV {
		t.Fatalf("TotalViolations = %d, want %d", rep.TotalViolations(), totalV)
	}
}

func TestPVBandGrowsWithWiderWindow(t *testing.T) {
	l, err := layout.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	narrow := []Corner{
		{Name: "nominal", Dose: 1, Defocus: 1},
		{Name: "d+", Dose: 1.02, Defocus: 1},
		{Name: "d-", Dose: 0.98, Defocus: 1},
	}
	wide := []Corner{
		{Name: "nominal", Dose: 1, Defocus: 1},
		{Name: "d+", Dose: 1.1, Defocus: 1},
		{Name: "d-", Dose: 0.9, Defocus: 1},
	}
	cands, err := decomp.NewGenerator().Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := cands[0].Masks(8)
	an, err := NewAnalyzer(l, litho.FastParams(), narrow)
	if err != nil {
		t.Fatal(err)
	}
	aw, err := NewAnalyzer(l, litho.FastParams(), wide)
	if err != nil {
		t.Fatal(err)
	}
	if nb, wb := an.Analyze(m1, m2).PVBandArea, aw.Analyze(m1, m2).PVBandArea; wb <= nb {
		t.Fatalf("wider window band %d not larger than narrow %d", wb, nb)
	}
}

func TestOptimizedMasksShrinkPVBandVsWorstDecomposition(t *testing.T) {
	// ILT-optimized masks must have a no-worse process window than the
	// raw decomposition masks.
	l := layout.Layout{Name: "pair", Window: geom.RectWH(0, 0, layout.TileNM, layout.TileNM)}
	l.Patterns = []geom.Rect{
		geom.RectWH(100, 240, 65, 65),
		geom.RectWH(290, 240, 65, 65),
	}
	a, err := NewAnalyzer(l, litho.FastParams(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d := decomp.New(l, []uint8{0, 1})
	rawM1, rawM2 := d.Masks(8)
	raw := a.Analyze(rawM1, rawM2)

	cfg := ilt.DefaultConfig()
	cfg.Litho = litho.FastParams()
	cfg.AbortOnViolation = false
	opt, err := ilt.NewOptimizer(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := opt.Run(d)
	optimized := a.Analyze(r.M1, r.M2)
	if optimized.WorstEPE() > raw.WorstEPE() {
		t.Fatalf("optimization worsened worst-corner EPE: %d > %d",
			optimized.WorstEPE(), raw.WorstEPE())
	}
}
