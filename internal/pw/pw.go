// Package pw adds process-window analysis on top of the lithography
// substrate: a mask pair is evaluated not only at the nominal process corner
// but across dose and defocus excursions, yielding per-corner printability
// and the process-variation (PV) band. The mask-optimization literature the
// paper builds on ([6] MOSAIC, [7], [9]) treats process-window awareness as
// the mark of a production-grade flow; this package is the corresponding
// extension of the reproduction.
package pw

import (
	"fmt"

	"ldmo/internal/epe"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
)

// Corner is one process condition: a dose multiplier and a focus blur
// scale applied to the optical kernels.
type Corner struct {
	Name string
	// Dose scales exposure intensity (1 = nominal; 0.95 = 5% underdose).
	Dose float64
	// Defocus scales the kernel radii (1 = nominal; 1.1 = 10% blur).
	Defocus float64
}

// DefaultCorners returns the classic 5-corner window: nominal, dose +-5%,
// and defocus at nominal/overdosed conditions.
func DefaultCorners() []Corner {
	return []Corner{
		{Name: "nominal", Dose: 1, Defocus: 1},
		{Name: "dose+5%", Dose: 1.05, Defocus: 1},
		{Name: "dose-5%", Dose: 0.95, Defocus: 1},
		{Name: "defocus", Dose: 1, Defocus: 1.12},
		{Name: "worst", Dose: 0.95, Defocus: 1.12},
	}
}

// CornerResult is the printability of one corner.
type CornerResult struct {
	Corner     Corner
	EPE        epe.Result
	L2         float64
	Violations epe.Violations
	Printed    *grid.Grid
}

// Report is the process-window evaluation of one mask pair.
type Report struct {
	Corners []CornerResult
	// PVBandArea is the pixel count printed in some but not all corners —
	// the standard process-variation band measure.
	PVBandArea int
	// PVBand marks the band itself (1 where corners disagree).
	PVBand *grid.Grid
}

// WorstEPE returns the largest per-corner EPE violation count.
func (r Report) WorstEPE() int {
	worst := 0
	for _, c := range r.Corners {
		if c.EPE.Violations > worst {
			worst = c.EPE.Violations
		}
	}
	return worst
}

// TotalViolations sums print violations across corners.
func (r Report) TotalViolations() int {
	total := 0
	for _, c := range r.Corners {
		total += c.Violations.Total()
	}
	return total
}

// Analyzer evaluates mask pairs across process corners. It owns one
// simulator per corner (kernels differ per defocus scale).
type Analyzer struct {
	layout  layout.Layout
	params  litho.Params
	corners []Corner
	sims    []*litho.Simulator
	cps     []epe.Checkpoint
	meter   epe.Meter
	target  *grid.Grid
}

// NewAnalyzer builds a process-window analyzer for one layout. corners may
// be nil for the default 5-corner window.
func NewAnalyzer(l layout.Layout, p litho.Params, corners []Corner) (*Analyzer, error) {
	if len(l.Patterns) == 0 {
		return nil, fmt.Errorf("pw: layout %q has no patterns", l.Name)
	}
	if corners == nil {
		corners = DefaultCorners()
	}
	w := l.Window.W() / p.Resolution
	h := l.Window.H() / p.Resolution
	a := &Analyzer{
		layout:  l,
		params:  p,
		corners: corners,
		meter:   epe.NewMeter(),
		target:  l.Rasterize(p.Resolution),
	}
	for _, c := range corners {
		if c.Dose <= 0 || c.Defocus <= 0 {
			return nil, fmt.Errorf("pw: corner %q has non-positive dose/defocus", c.Name)
		}
		cp := p
		cp.Gain = p.Gain * c.Dose
		cp.Sigma = p.Sigma * c.Defocus
		cp.DefocusSigma = p.DefocusSigma * c.Defocus
		sim, err := litho.NewSimulator(w, h, cp)
		if err != nil {
			return nil, fmt.Errorf("pw: corner %q: %w", c.Name, err)
		}
		a.sims = append(a.sims, sim)
	}
	a.cps = epe.GenerateCheckpoints(l.Patterns, 40)
	return a, nil
}

// Analyze evaluates the given continuous masks (same raster as the layout)
// across all corners.
func (a *Analyzer) Analyze(m1, m2 *grid.Grid) Report {
	var rep Report
	n := a.target.W * a.target.H
	printedAll := make([]bool, n) // printed in every corner
	printedAny := make([]bool, n) // printed in some corner
	for i := range printedAll {
		printedAll[i] = true
	}
	aerial := make([]float64, n)
	resist1 := make([]float64, n)
	resist2 := make([]float64, n)
	for ci, sim := range a.sims {
		sim.Aerial(m1.Data, aerial, nil)
		sim.Resist(aerial, resist1)
		sim.Aerial(m2.Data, aerial, nil)
		sim.Resist(aerial, resist2)
		composed := grid.NewLike(a.target)
		litho.ComposeDouble(resist1, resist2, composed.Data, nil)

		cr := CornerResult{
			Corner:     a.corners[ci],
			EPE:        a.meter.Measure(composed, a.cps),
			L2:         composed.L2Diff(a.target),
			Violations: epe.CheckPrintViolations(composed, a.layout.Patterns, a.params.PrintThreshold),
			Printed:    composed,
		}
		rep.Corners = append(rep.Corners, cr)
		for i, v := range composed.Data {
			printed := v >= a.params.PrintThreshold
			printedAll[i] = printedAll[i] && printed
			printedAny[i] = printedAny[i] || printed
		}
	}
	rep.PVBand = grid.NewLike(a.target)
	for i := range printedAny {
		if printedAny[i] && !printedAll[i] {
			rep.PVBand.Data[i] = 1
			rep.PVBandArea++
		}
	}
	return rep
}
