// Package prof wires runtime/pprof to the -cpuprofile/-memprofile flags of
// the command-line tools.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling if cpuPath is non-empty and returns a stop
// function that finalizes the CPU profile and, if memPath is non-empty,
// writes a heap profile (after a GC, so live objects dominate). Either path
// may be empty; the stop function is always non-nil on success. Callers must
// invoke stop before the process exits — os.Exit skips defers, so fatal
// paths lose the profile, which is acceptable for failed runs.
func Start(cpuPath, memPath string) (func(), error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		cpuFile = f
	}
	stop := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mem profile: %v\n", err)
			}
			memPath = ""
		}
	}
	return stop, nil
}
