package nwise

import (
	"testing"
	"testing/quick"
)

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(-1, 2, 1); err == nil {
		t.Fatal("negative factors must error")
	}
	if _, err := Generate(4, 0, 1); err == nil {
		t.Fatal("zero strength must error")
	}
}

func TestGenerateZeroFactors(t *testing.T) {
	a, err := Generate(0, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 1 || len(a.Rows[0]) != 0 {
		t.Fatalf("rows = %v", a.Rows)
	}
	if !a.Covers() {
		t.Fatal("empty array must cover")
	}
}

func TestGenerateSmallIsCartesian(t *testing.T) {
	a, err := Generate(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("2 factors at strength 3: %d rows, want 4", len(a.Rows))
	}
	seen := map[[2]uint8]bool{}
	for _, r := range a.Rows {
		seen[[2]uint8{r[0], r[1]}] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rows not distinct: %v", a.Rows)
	}
}

func TestGenerateEqualFactorsStrength(t *testing.T) {
	a, err := Generate(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 8 || !a.Covers() {
		t.Fatalf("3/3 array: %d rows covers=%v", len(a.Rows), a.Covers())
	}
}

func TestPairwiseCoverage(t *testing.T) {
	for _, n := range []int{3, 4, 6, 10, 15} {
		a, err := Generate(n, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Covers() {
			t.Fatalf("pairwise array over %d factors does not cover", n)
		}
	}
}

func TestThreeWiseCoverage(t *testing.T) {
	for _, n := range []int{4, 5, 8, 12} {
		a, err := Generate(n, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Covers() {
			t.Fatalf("3-wise array over %d factors does not cover", n)
		}
	}
}

func TestRowCountSubExponential(t *testing.T) {
	// The point of n-wise sampling: "the number of instances didn't grow
	// too much with the number of factors" (paper Fig. 4 discussion).
	a10, err := Generate(10, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a10.Rows) > 16 {
		t.Fatalf("pairwise over 10 factors used %d rows, want <= 16", len(a10.Rows))
	}
	a12, err := Generate(12, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a12.Rows) > 50 {
		t.Fatalf("3-wise over 12 factors used %d rows, want << 4096", len(a12.Rows))
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := Generate(8, 2, 42)
	b, _ := Generate(8, 2, 42)
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("not deterministic")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatal("not deterministic")
			}
		}
	}
}

func TestCoversDetectsGap(t *testing.T) {
	a := Array{Factors: 3, Strength: 2, Rows: [][]uint8{
		{0, 0, 0}, {1, 1, 1},
	}}
	if a.Covers() {
		t.Fatal("two-row array cannot be pairwise complete")
	}
}

func TestCoversDetectsBadRowLength(t *testing.T) {
	a := Array{Factors: 3, Strength: 2, Rows: [][]uint8{{0, 0}}}
	if a.Covers() {
		t.Fatal("short row must fail verification")
	}
}

func TestCoverageQuick(t *testing.T) {
	// Property: generated arrays always satisfy the covering property for
	// random factor counts and strengths.
	f := func(seedRaw int64, nRaw, tRaw uint8) bool {
		n := 1 + int(nRaw%12)
		strength := 1 + int(tRaw%3)
		a, err := Generate(n, strength, seedRaw)
		if err != nil {
			return false
		}
		return a.Covers()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValuesAreBinary(t *testing.T) {
	a, err := Generate(9, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a.Rows {
		if len(r) != 9 {
			t.Fatalf("row length %d", len(r))
		}
		for _, v := range r {
			if v > 1 {
				t.Fatalf("non-binary value %d", v)
			}
		}
	}
}

func BenchmarkThreeWise12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(12, 3, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestGenerateQTernaryCoverage(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		a, err := GenerateQ(n, 2, 3, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Covers() {
			t.Fatalf("ternary pairwise over %d factors does not cover", n)
		}
		for _, row := range a.Rows {
			for _, v := range row {
				if v > 2 {
					t.Fatalf("value %d outside ternary alphabet", v)
				}
			}
		}
	}
}

func TestGenerateQCartesian(t *testing.T) {
	a, err := GenerateQ(2, 3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 9 {
		t.Fatalf("3^2 Cartesian = %d rows", len(a.Rows))
	}
	seen := map[[2]uint8]bool{}
	for _, r := range a.Rows {
		seen[[2]uint8{r[0], r[1]}] = true
	}
	if len(seen) != 9 {
		t.Fatal("Cartesian rows not distinct")
	}
}

func TestGenerateQErrors(t *testing.T) {
	if _, err := GenerateQ(4, 2, 1, 1); err == nil {
		t.Fatal("q=1 must error")
	}
	if _, err := GenerateQ(4, 2, 5, 1); err == nil {
		t.Fatal("q=5 must error")
	}
}

func TestGenerateQRowCountReasonable(t *testing.T) {
	a, err := GenerateQ(8, 2, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise ternary lower bound is 9 rows; greedy should stay well
	// under the 6561-row Cartesian product.
	if len(a.Rows) < 9 || len(a.Rows) > 40 {
		t.Fatalf("ternary pairwise rows = %d", len(a.Rows))
	}
}

func TestCoversRejectsOutOfAlphabet(t *testing.T) {
	a := Array{Factors: 2, Strength: 2, Q: 2, Rows: [][]uint8{{0, 2}}}
	if a.Covers() {
		t.Fatal("out-of-alphabet value accepted")
	}
}
