// Package nwise generates binary covering arrays of strength n, replacing
// the PICT tool [18] the paper uses for its n-wise decomposition sampling.
//
// A strength-t covering array over k binary factors is a set of rows such
// that, for every choice of t columns, every one of the 2^t value
// combinations appears in some row. The paper uses pairwise (t=2) arrays for
// normal patterns and 3-wise arrays for MST components plus violated
// patterns, which keeps the candidate count near-logarithmic in the pattern
// count while exhausting all local combinations.
//
// The construction is the classic AETG-style randomized greedy: each new row
// is seeded with an uncovered tuple, completed column-by-column to maximize
// newly covered tuples, and the best of several candidates is kept. The
// generator is deterministic in its seed.
package nwise

import (
	"fmt"
	"math/rand"
)

// Array is a covering array over q-valued factors (q = 2 for the paper's
// double-patterning case).
type Array struct {
	Factors  int
	Strength int
	Q        int
	Rows     [][]uint8
}

// candidates per row; more candidates give slightly smaller arrays at
// linearly higher construction cost.
const numCandidates = 30

// Generate builds a strength-`strength` covering array over `factors` binary
// factors, deterministically in seed. When factors <= strength the array is
// the full Cartesian product. factors may be 0 (a single empty row).
func Generate(factors, strength int, seed int64) (Array, error) {
	return GenerateQ(factors, strength, 2, seed)
}

// GenerateQ builds a strength-`strength` covering array over `factors`
// q-valued factors (2 <= q <= 4; q = 3 serves triple patterning).
func GenerateQ(factors, strength, q int, seed int64) (Array, error) {
	if factors < 0 {
		return Array{}, fmt.Errorf("nwise: negative factor count %d", factors)
	}
	if strength < 1 {
		return Array{}, fmt.Errorf("nwise: strength must be >= 1, got %d", strength)
	}
	if q < 2 || q > 4 {
		return Array{}, fmt.Errorf("nwise: alphabet size %d outside [2,4]", q)
	}
	a := Array{Factors: factors, Strength: strength, Q: q}
	if factors == 0 {
		a.Rows = [][]uint8{{}}
		return a, nil
	}
	if factors <= strength {
		// Full Cartesian product.
		total := 1
		for i := 0; i < factors; i++ {
			total *= q
		}
		for v := 0; v < total; v++ {
			row := make([]uint8, factors)
			x := v
			for c := 0; c < factors; c++ {
				row[c] = uint8(x % q)
				x /= q
			}
			a.Rows = append(a.Rows, row)
		}
		return a, nil
	}

	cov := newCoverage(factors, strength, q)
	rng := rand.New(rand.NewSource(seed))
	for cov.remaining > 0 {
		var best []uint8
		bestGain := -1
		for c := 0; c < numCandidates; c++ {
			row := cov.buildCandidate(rng)
			if gain := cov.gain(row); gain > bestGain {
				bestGain = gain
				best = row
			}
		}
		cov.mark(best)
		a.Rows = append(a.Rows, best)
	}
	return a, nil
}

// coverage tracks which (column-combination, value-combination) tuples are
// still uncovered.
type coverage struct {
	factors   int
	strength  int
	q         int
	combos    [][]int  // all C(factors, strength) column index sets
	covered   [][]bool // per combo, per value pattern (q^strength)
	remaining int
}

func newCoverage(factors, strength, q int) *coverage {
	cov := &coverage{factors: factors, strength: strength, q: q}
	cols := make([]int, strength)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == strength {
			cov.combos = append(cov.combos, append([]int(nil), cols...))
			return
		}
		for c := start; c < factors; c++ {
			cols[depth] = c
			rec(c+1, depth+1)
		}
	}
	rec(0, 0)
	nv := 1
	for i := 0; i < strength; i++ {
		nv *= q
	}
	cov.covered = make([][]bool, len(cov.combos))
	for i := range cov.covered {
		cov.covered[i] = make([]bool, nv)
	}
	cov.remaining = len(cov.combos) * nv
	return cov
}

// valueIndex packs the row's values at the combo's columns into a base-q
// index.
func (cov *coverage) valueIndex(row []uint8, combo []int) int {
	v := 0
	for i := len(combo) - 1; i >= 0; i-- {
		v = v*cov.q + int(row[combo[i]])
	}
	return v
}

// buildCandidate seeds a row with a random uncovered tuple and fills the
// remaining columns greedily in random order.
func (cov *coverage) buildCandidate(rng *rand.Rand) []uint8 {
	const unset = uint8(255)
	row := make([]uint8, cov.factors)
	for i := range row {
		row[i] = unset
	}
	// Seed: a random uncovered tuple (scan from a random start).
	start := rng.Intn(len(cov.combos))
	for off := 0; off < len(cov.combos); off++ {
		ci := (start + off) % len(cov.combos)
		vals := cov.covered[ci]
		vstart := rng.Intn(len(vals))
		found := false
		for voff := 0; voff < len(vals); voff++ {
			vi := (vstart + voff) % len(vals)
			if !vals[vi] {
				x := vi
				for _, col := range cov.combos[ci] {
					row[col] = uint8(x % cov.q)
					x /= cov.q
				}
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	// Fill remaining columns in random order, choosing the value that
	// covers more currently uncovered tuples (ties broken randomly).
	order := rng.Perm(cov.factors)
	for _, col := range order {
		if row[col] != unset {
			continue
		}
		bestV := uint8(rng.Intn(cov.q))
		bestG := -1
		voff := rng.Intn(cov.q)
		for k := 0; k < cov.q; k++ {
			v := uint8((k + voff) % cov.q)
			if g := cov.partialGain(row, col, v); g > bestG {
				bestG = g
				bestV = v
			}
		}
		row[col] = bestV
	}
	return row
}

// partialGain counts uncovered tuples that become fully determined and
// covered by assigning row[col] = v, given the currently assigned columns.
func (cov *coverage) partialGain(row []uint8, col int, v uint8) int {
	const unset = uint8(255)
	row[col] = v
	gain := 0
	for ci, combo := range cov.combos {
		uses := false
		complete := true
		for _, c := range combo {
			if c == col {
				uses = true
			}
			if row[c] == unset {
				complete = false
				break
			}
		}
		if uses && complete && !cov.covered[ci][cov.valueIndex(row, combo)] {
			gain++
		}
	}
	row[col] = unset
	return gain
}

// gain counts uncovered tuples a complete row would cover.
func (cov *coverage) gain(row []uint8) int {
	g := 0
	for ci, combo := range cov.combos {
		if !cov.covered[ci][cov.valueIndex(row, combo)] {
			g++
		}
	}
	return g
}

// mark records a row's tuples as covered.
func (cov *coverage) mark(row []uint8) {
	for ci, combo := range cov.combos {
		vi := cov.valueIndex(row, combo)
		if !cov.covered[ci][vi] {
			cov.covered[ci][vi] = true
			cov.remaining--
		}
	}
}

// Covers verifies the covering property of a by exhaustive check.
func (a Array) Covers() bool {
	if a.Factors == 0 {
		return len(a.Rows) > 0
	}
	t := a.Strength
	if t > a.Factors {
		t = a.Factors
	}
	q := a.Q
	if q == 0 {
		q = 2
	}
	cov := newCoverage(a.Factors, t, q)
	for _, row := range a.Rows {
		if len(row) != a.Factors {
			return false
		}
		for _, v := range row {
			if int(v) >= q {
				return false
			}
		}
		cov.mark(row)
	}
	return cov.remaining == 0
}
