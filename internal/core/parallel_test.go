package core

import (
	"testing"

	"ldmo/internal/layout"
	"ldmo/internal/model"
)

// TestOracleSelectParallelDeterminism asserts the acceptance criterion:
// parallel OracleSelect returns byte-identical selection and result grids to
// the serial implementation.
func TestOracleSelectParallelDeterminism(t *testing.T) {
	l := twoRowLayout()
	w := model.DefaultScoreWeights()

	cfg := fastConfig()
	cfg.Workers = 1
	dS, rS, err := OracleSelect(l, cfg, w.Alpha, w.Beta, w.Gamma)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{2, 4, 7} {
		cfg.Workers = workers
		dP, rP, err := OracleSelect(l, cfg, w.Alpha, w.Beta, w.Gamma)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if dS.Key() != dP.Key() {
			t.Fatalf("workers=%d: selected %q, serial %q", workers, dP.Key(), dS.Key())
		}
		if rS.L2 != rP.L2 || rS.EPE.Violations != rP.EPE.Violations ||
			rS.Violations.Total() != rP.Violations.Total() || rS.Iters != rP.Iters {
			t.Fatalf("workers=%d: result diverged: %+v vs %+v", workers, rP, rS)
		}
		for name, pair := range map[string][2][]float64{
			"M1":      {rS.M1.Data, rP.M1.Data},
			"M2":      {rS.M2.Data, rP.M2.Data},
			"Printed": {rS.Printed.Data, rP.Printed.Data},
		} {
			a, b := pair[0], pair[1]
			if len(a) != len(b) {
				t.Fatalf("workers=%d: %s raster size differs", workers, name)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d: %s differs at %d: %g vs %g", workers, name, i, b[i], a[i])
				}
			}
		}
		if len(rS.Trace) != len(rP.Trace) {
			t.Fatalf("workers=%d: trace length differs", workers)
		}
		for i := range rS.Trace {
			if rS.Trace[i] != rP.Trace[i] {
				t.Fatalf("workers=%d: trace row %d differs", workers, i)
			}
		}
	}
}

// TestFlowForcedRunReusesOptimizer covers the reworked fallback: when every
// candidate trips the violation check, the forced best-effort rerun must
// reuse the optimizer (abort toggled off) and still deliver a full-budget
// result.
func TestFlowForcedRunReusesOptimizer(t *testing.T) {
	l, err := layout.Cell("NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	// A one-iteration check budget plus an absurd violation-free demand:
	// every candidate aborts, forcing the best-effort path.
	cfg.ILT.MaxIters = 2
	cfg.ILT.CheckEvery = 1
	cfg.ILT.Litho.PrintThreshold = 0.0001 // everything counts as printed -> spurious violations
	f := NewFlow(nil, cfg)
	res, err := f.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forced {
		t.Skip("candidates survived the check; forced path not reachable with this process")
	}
	if res.ILT.Aborted {
		t.Fatal("forced run must not abort")
	}
	if res.ILT.Iters != cfg.ILT.MaxIters {
		t.Fatalf("forced run performed %d iters, want full budget %d", res.ILT.Iters, cfg.ILT.MaxIters)
	}
	if res.ILT.Printed == nil {
		t.Fatal("forced run returned no printed image")
	}
}

// BenchmarkOracleSelect measures the serial candidate sweep;
// BenchmarkOracleSelectParallel the pool at the default worker count.
func benchmarkOracle(b *testing.B, workers int) {
	l := twoRowLayout()
	w := model.DefaultScoreWeights()
	cfg := fastConfig()
	cfg.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := OracleSelect(l, cfg, w.Alpha, w.Beta, w.Gamma); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOracleSelect(b *testing.B)         { benchmarkOracle(b, 1) }
func BenchmarkOracleSelectParallel(b *testing.B) { benchmarkOracle(b, 0) }
