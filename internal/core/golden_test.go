package core

import (
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/fft"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
)

// TestEngineGoldenOracleRanking is the flow-level golden guard: scoring
// every decomposition candidate by full ILT (what OracleSelect does) yields
// exactly the same ranking — and therefore the same selected decomposition —
// under the real-input spectral engine as under the complex reference
// engine. Field-level tolerance lives in litho/ilt; here the contract is
// exact equality of the discrete outcome.
func TestEngineGoldenOracleRanking(t *testing.T) {
	for _, cellName := range []string{"INV_X1", "AOI211_X1"} {
		cell, err := layout.Cell(cellName)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig()
		w := struct{ alpha, beta, gamma float64 }{1, 3500, 8000}

		type verdicts struct {
			order   []string
			bestKey string
			epe     []int
			viol    []int
		}
		run := func(mode string) verdicts {
			t.Setenv(fft.EnvMode, mode)
			gen := decomp.NewGenerator()
			gen.Classify = cfg.Classify
			gen.Seed = cfg.Seed
			cands, err := gen.Generate(cell)
			if err != nil {
				t.Fatal(err)
			}
			iltCfg := cfg.ILT
			iltCfg.AbortOnViolation = false
			opt, err := ilt.NewOptimizer(cell, iltCfg)
			if err != nil {
				t.Fatal(err)
			}
			v := verdicts{}
			scores := make([]float64, len(cands))
			for i, d := range cands {
				r := opt.Run(d)
				scores[i] = r.Score(w.alpha, w.beta, w.gamma)
				v.epe = append(v.epe, r.EPE.Violations)
				v.viol = append(v.viol, r.Violations.Total())
			}
			order := make([]int, len(cands))
			for i := range order {
				order[i] = i
			}
			// Stable selection sort by score, ties broken by generation
			// order — the same argmin rule OracleSelect applies.
			for i := 0; i < len(order); i++ {
				best := i
				for j := i + 1; j < len(order); j++ {
					if scores[order[j]] < scores[order[best]] {
						best = j
					}
				}
				order[i], order[best] = order[best], order[i]
			}
			for _, oi := range order {
				v.order = append(v.order, cands[oi].Key())
			}
			d, _, err := OracleSelect(cell, cfg, w.alpha, w.beta, w.gamma)
			if err != nil {
				t.Fatal(err)
			}
			v.bestKey = d.Key()
			return v
		}

		ref := run(fft.ModeComplex)
		got := run("")
		if got.bestKey != ref.bestKey {
			t.Errorf("%s: OracleSelect picked %q (real) vs %q (complex)", cellName, got.bestKey, ref.bestKey)
		}
		for i := range ref.order {
			if got.order[i] != ref.order[i] {
				t.Errorf("%s: ranking[%d] = %q (real) vs %q (complex)", cellName, i, got.order[i], ref.order[i])
			}
		}
		for i := range ref.epe {
			if got.epe[i] != ref.epe[i] || got.viol[i] != ref.viol[i] {
				t.Errorf("%s cand %d: EPE/violations %d/%d (real) vs %d/%d (complex)",
					cellName, i, got.epe[i], got.viol[i], ref.epe[i], ref.viol[i])
			}
		}
	}
}
