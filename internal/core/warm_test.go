package core

import (
	"testing"

	"ldmo/internal/grid"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
)

// shiftInit is a deterministic fake warm-starter: it nudges every cold mask
// pixel toward mid-gray. Good enough to prove the plumbing without a trained
// net.
type shiftInit struct{ calls int }

func (s *shiftInit) WarmMasksInto(c1, c2 *grid.Grid, w1, w2 []float64) bool {
	s.calls++
	for i, v := range c1.Data {
		w1[i] = 0.7*v + 0.15
	}
	for i, v := range c2.Data {
		w2[i] = 0.7*v + 0.15
	}
	return true
}

// TestFlowWarmOffBitwiseGolden is the off-path acceptance golden: with
// LDMO_WARMSTART=off, a flow carrying a configured warm-starter makes exactly
// the decisions — and produces exactly the bytes — of a flow that has never
// heard of warm-starting. EPE counts, verdicts, the chosen decomposition, the
// OracleSelect ranking, and every mask pixel must match bitwise.
func TestFlowWarmOffBitwiseGolden(t *testing.T) {
	t.Setenv(ilt.EnvWarm, "off")
	for _, cellName := range []string{"INV_X1", "AOI211_X1"} {
		cell, err := layout.Cell(cellName)
		if err != nil {
			t.Fatal(err)
		}
		plain := fastConfig()
		warm := fastConfig()
		init := &shiftInit{}
		warm.WarmStarter = init
		warm.WarmWindow = 4
		warm.WarmTol = 0.05

		ref, err := NewFlow(nil, plain).Run(cell)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewFlow(nil, warm).Run(cell)
		if err != nil {
			t.Fatal(err)
		}
		if init.calls != 0 {
			t.Fatalf("%s: warm-starter invoked %d times with the gate off", cellName, init.calls)
		}
		if got.Chosen.Key() != ref.Chosen.Key() {
			t.Errorf("%s: chose %q with warm config, %q without", cellName, got.Chosen.Key(), ref.Chosen.Key())
		}
		if got.Attempts != ref.Attempts || got.Candidates != ref.Candidates {
			t.Errorf("%s: attempts/candidates %d/%d vs %d/%d",
				cellName, got.Attempts, got.Candidates, ref.Attempts, ref.Candidates)
		}
		if got.ILT.EPE.Violations != ref.ILT.EPE.Violations ||
			got.ILT.EPE.MaxAbs != ref.ILT.EPE.MaxAbs ||
			got.ILT.Violations != ref.ILT.Violations ||
			got.ILT.L2 != ref.ILT.L2 || got.ILT.Iters != ref.ILT.Iters {
			t.Errorf("%s: verdicts differ: EPE %d/%v vs %d/%v, viol %v vs %v, L2 %v vs %v, iters %d vs %d",
				cellName, got.ILT.EPE.Violations, got.ILT.EPE.MaxAbs,
				ref.ILT.EPE.Violations, ref.ILT.EPE.MaxAbs,
				got.ILT.Violations, ref.ILT.Violations,
				got.ILT.L2, ref.ILT.L2, got.ILT.Iters, ref.ILT.Iters)
		}
		if got.Seconds != ref.Seconds {
			t.Errorf("%s: simclock %v vs %v", cellName, got.Seconds, ref.Seconds)
		}
		for i := range ref.ILT.M1.Data {
			if got.ILT.M1.Data[i] != ref.ILT.M1.Data[i] || got.ILT.M2.Data[i] != ref.ILT.M2.Data[i] {
				t.Fatalf("%s: mask pixel %d differs with the gate off", cellName, i)
			}
		}

		// OracleSelect makes the same pick under the same gate.
		dRef, sRef, err := OracleSelect(cell, plain, 1, 3500, 8000)
		if err != nil {
			t.Fatal(err)
		}
		dGot, sGot, err := OracleSelect(cell, warm, 1, 3500, 8000)
		if err != nil {
			t.Fatal(err)
		}
		if dGot.Key() != dRef.Key() || sGot.L2 != sRef.L2 || sGot.EPE.Violations != sRef.EPE.Violations {
			t.Errorf("%s: OracleSelect %q (L2 %v, EPE %d) with warm config vs %q (L2 %v, EPE %d) without",
				cellName, dGot.Key(), sGot.L2, sGot.EPE.Violations, dRef.Key(), sRef.L2, sRef.EPE.Violations)
		}
	}
}

// TestFlowWarmStarterEngaged pins the on-path: with the gate open (default)
// the configured warm-starter is consulted and the winning run is tagged.
func TestFlowWarmStarterEngaged(t *testing.T) {
	t.Setenv(ilt.EnvWarm, "on")
	cell, err := layout.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	init := &shiftInit{}
	cfg.WarmStarter = init
	res, err := NewFlow(nil, cfg).Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if init.calls == 0 {
		t.Fatal("warm-starter never consulted with the gate open")
	}
	if !res.ILT.WarmStart {
		t.Fatal("winning result not tagged WarmStart")
	}
}
