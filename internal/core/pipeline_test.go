package core

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"ldmo/internal/faultinject"
	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
	"ldmo/internal/model"
)

// contentScorer scores each image by its pixel mass — a deterministic
// function of the image alone, so it is batch-composition invariant like the
// real predictor (constScorer is positional and deliberately is not).
type contentScorer struct{}

func (contentScorer) PredictBatch(imgs []*grid.Grid) []float64 {
	out := make([]float64, len(imgs))
	for i, g := range imgs {
		s := 0.0
		for j, v := range g.Data {
			s += v * float64(j%7+1)
		}
		out[i] = s
	}
	return out
}

// countingScorer counts PredictBatch invocations.
type countingScorer struct {
	calls *atomic.Int64
	inner contentScorer
}

func (c countingScorer) PredictBatch(imgs []*grid.Grid) []float64 {
	c.calls.Add(1)
	return c.inner.PredictBatch(imgs)
}

// pipeLayouts builds n distinct valid layouts by sliding the two-row
// benchmark pattern horizontally.
func pipeLayouts(t *testing.T, n int) []layout.Layout {
	t.Helper()
	ls := make([]layout.Layout, n)
	for i := range ls {
		dx := (i * 5) % 28
		l := layout.Layout{Name: "tworow-" + string(rune('a'+i)), Window: geom.RectWH(0, 0, layout.TileNM, layout.TileNM)}
		for _, y := range []int{130, 290} {
			for _, x := range []int{66, 196, 326} {
				l.Patterns = append(l.Patterns, geom.RectWH(x+dx, y, layout.ContactNM, layout.ContactNM))
			}
		}
		ls[i] = l
	}
	return ls
}

// serialRef runs the serial flow over every layout.
func serialRef(t *testing.T, f *Flow, ls []layout.Layout) []PipeResult {
	t.Helper()
	out := make([]PipeResult, len(ls))
	for i, l := range ls {
		res, err := f.RunContext(context.Background(), l)
		out[i] = PipeResult{Res: res, Err: err}
	}
	return out
}

// mustEqualResult asserts bitwise equality of a pipelined result with its
// serial reference, with targeted messages before the catch-all DeepEqual.
func mustEqualResult(t *testing.T, tag string, got, want PipeResult) {
	t.Helper()
	if (got.Err == nil) != (want.Err == nil) {
		t.Fatalf("%s: err = %v, want %v", tag, got.Err, want.Err)
	}
	g, w := got.Res, want.Res
	if g.Chosen.Key() != w.Chosen.Key() {
		t.Fatalf("%s: chose %q, serial chose %q", tag, g.Chosen.Key(), w.Chosen.Key())
	}
	if !reflect.DeepEqual(g.PredScores, w.PredScores) {
		t.Fatalf("%s: scores %v != serial %v", tag, g.PredScores, w.PredScores)
	}
	if g.Attempts != w.Attempts || g.Forced != w.Forced || g.Interrupted != w.Interrupted ||
		g.ScorerFallback != w.ScorerFallback {
		t.Fatalf("%s: flow path diverged: %+v vs %+v", tag, g, w)
	}
	if g.ILT.L2 != w.ILT.L2 || g.ILT.Iters != w.ILT.Iters ||
		g.ILT.EPE.Violations != w.ILT.EPE.Violations ||
		g.ILT.Violations.Total() != w.ILT.Violations.Total() {
		t.Fatalf("%s: ILT metrics diverged", tag)
	}
	if w.ILT.M1 != nil {
		for name, pair := range map[string][2]*grid.Grid{
			"M1": {g.ILT.M1, w.ILT.M1}, "M2": {g.ILT.M2, w.ILT.M2}, "Printed": {g.ILT.Printed, w.ILT.Printed},
		} {
			for i := range pair[1].Data {
				if pair[0].Data[i] != pair[1].Data[i] {
					t.Fatalf("%s: %s differs at pixel %d", tag, name, i)
				}
			}
		}
	}
	if g.Seconds != w.Seconds {
		t.Fatalf("%s: model seconds %v != serial %v", tag, g.Seconds, w.Seconds)
	}
}

// TestPipelineMatchesSerialBitwise is the golden acceptance test: the
// pipelined flow returns, for every layout, exactly what serial RunContext
// returns — scores, chosen decomposition, optimized masks, model seconds —
// at every worker/chunk shape, with both a synthetic and the real scorer.
func TestPipelineMatchesSerialBitwise(t *testing.T) {
	ls := pipeLayouts(t, 4)
	pred, err := model.New(model.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range []struct {
		name   string
		scorer Scorer
	}{
		{"contentScorer", contentScorer{}},
		{"tinyPredictor", pred},
	} {
		t.Run(sc.name, func(t *testing.T) {
			f := NewFlow(sc.scorer, fastConfig())
			want := serialRef(t, f, ls)
			for _, po := range []PipelineOptions{
				{Workers: 1},
				{Workers: 3, Chunk: 2},
				{Workers: 2, Chunk: 4},
			} {
				got, stats := f.RunPipeline(ls, po)
				for i := range want {
					mustEqualResult(t, sc.name, got[i], want[i])
				}
				if stats.Coalesce.Requests != len(ls) {
					t.Fatalf("coalescer served %d requests, want %d", stats.Coalesce.Requests, len(ls))
				}
				if stats.Coalesce.MaxBatch < 2 {
					t.Fatalf("no cross-layout coalescing happened: %+v", stats.Coalesce)
				}
			}
		})
	}
}

// TestPipelineCoalescesPredictions: the scheduler issues far fewer scorer
// invocations than the serial flow's one-per-layout, and the invocation
// count equals the coalescer's flush count.
func TestPipelineCoalescesPredictions(t *testing.T) {
	ls := pipeLayouts(t, 6)
	var calls atomic.Int64
	f := NewFlow(countingScorer{calls: &calls}, fastConfig())
	_, stats := f.RunPipeline(ls, PipelineOptions{Workers: 2, Chunk: 3})
	if got := int(calls.Load()); got != stats.Coalesce.Flushes {
		t.Fatalf("scorer saw %d calls, coalescer reports %d flushes", got, stats.Coalesce.Flushes)
	}
	if stats.Coalesce.Flushes >= len(ls) {
		t.Fatalf("%d flushes for %d layouts: nothing was coalesced", stats.Coalesce.Flushes, len(ls))
	}
	if stats.Coalesce.Requests != len(ls) {
		t.Fatalf("requests = %d, want %d", stats.Coalesce.Requests, len(ls))
	}
	if stats.Images == 0 || stats.Wall <= 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
}

// TestPipelineCancelAfterDrains: rung 3 mid-pipeline. Arming cancel-after
// cancels the pipeline's own context after the first completed layout; the
// scheduler must drain without deadlock, completed layouts must be bitwise
// serial results, in-flight layouts land interrupted with their work
// attempted, and never-admitted layouts form a suffix with no work done.
func TestPipelineCancelAfterDrains(t *testing.T) {
	defer faultinject.Reset()
	ls := pipeLayouts(t, 6)
	f := NewFlow(contentScorer{}, fastConfig())
	// The armed fault makes the pipeline run under a cancellable context,
	// which turns on ILT best-so-far tracking; the serial reference must run
	// under an (uncancelled) cancellable context for like-for-like results.
	cctx, ccancel := context.WithCancel(context.Background())
	defer ccancel()
	want := make([]PipeResult, len(ls))
	for i, l := range ls {
		res, err := f.RunContext(cctx, l)
		want[i] = PipeResult{Res: res, Err: err}
	}

	faultinject.Set(faultinject.CancelAfter, "1")
	got, _ := f.RunPipeline(ls, PipelineOptions{Workers: 1, Chunk: 2})
	faultinject.Reset()

	completed, undispatched := 0, 0
	seenUndispatched := false
	for i, r := range got {
		switch {
		case r.Err == nil && !r.Res.Interrupted:
			completed++
			if seenUndispatched {
				t.Fatalf("layout %d completed after an undispatched layout: admission is not a prefix", i)
			}
			mustEqualResult(t, "completed", r, want[i])
		case r.Res.Candidates == 0:
			// Never admitted: no generation happened, only the tag.
			undispatched++
			seenUndispatched = true
			if !r.Res.Interrupted || !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("undispatched layout %d: %+v, err %v", i, r.Res, r.Err)
			}
		default:
			// Admitted but cancelled mid-flight: drained through the stages,
			// tagged interrupted, candidates enumerated.
			if seenUndispatched {
				t.Fatalf("layout %d was admitted after an undispatched layout", i)
			}
			if !r.Res.Interrupted {
				t.Fatalf("in-flight layout %d not tagged interrupted: %+v", i, r.Res)
			}
		}
	}
	if completed < 1 {
		t.Fatal("cancel-after=1 must let at least one layout complete")
	}
	if undispatched < 1 {
		t.Fatal("want at least one never-admitted layout")
	}
}

// TestPipelineScorerPanicDegrades: rung 1 mid-pipeline. A scorer panic in a
// coalesced flush degrades every affected layout to generator order — the
// same ladder rung, and the same final results, as the serial flow under the
// identical sticky fault.
func TestPipelineScorerPanicDegrades(t *testing.T) {
	defer faultinject.Reset()
	ls := pipeLayouts(t, 3)
	f := NewFlow(contentScorer{}, fastConfig())

	faultinject.Set(faultinject.ScorerPanic, "")
	want := serialRef(t, f, ls)
	got, _ := f.RunPipeline(ls, PipelineOptions{Workers: 2})
	faultinject.Reset()

	for i := range want {
		if !want[i].Res.ScorerFallback {
			t.Fatalf("serial layout %d did not fall back; fault not armed?", i)
		}
		if !got[i].Res.ScorerFallback || got[i].Res.ScorerErr == nil {
			t.Fatalf("pipelined layout %d did not fall back: %+v", i, got[i].Res)
		}
		mustEqualResult(t, "scorer-panic", got[i], want[i])
	}
}

// TestPipelineIltDivergeDegrades: rung 2 mid-pipeline. With every candidate
// diverging, each layout walks its full feedback loop into the forced rerun
// — concurrently, coalesced, and still bitwise-equal to serial.
func TestPipelineIltDivergeDegrades(t *testing.T) {
	defer faultinject.Reset()
	ls := pipeLayouts(t, 3)
	cfg := fastConfig()
	cfg.Budget.CandidateIters = cfg.ILT.CheckEvery
	f := NewFlow(contentScorer{}, cfg)

	faultinject.Set(faultinject.ILTDiverge, "0")
	want := serialRef(t, f, ls)
	got, _ := f.RunPipeline(ls, PipelineOptions{Workers: 2})
	faultinject.Reset()

	for i := range want {
		if !want[i].Res.Forced {
			t.Fatalf("serial layout %d did not force; fault not armed?", i)
		}
		mustEqualResult(t, "ilt-diverge", got[i], want[i])
	}
}

// TestPipelineGenErrorIsPerLayout: a layout whose generation fails gets its
// own error slot without disturbing its batchmates.
func TestPipelineGenErrorIsPerLayout(t *testing.T) {
	ls := pipeLayouts(t, 3)
	ls[1] = layout.Layout{Name: "empty"} // no patterns: generation errors
	f := NewFlow(contentScorer{}, fastConfig())
	got, stats := f.RunPipeline(ls, PipelineOptions{Workers: 2, Chunk: 3})
	if got[1].Err == nil {
		t.Fatal("empty layout must error")
	}
	for _, i := range []int{0, 2} {
		if got[i].Err != nil || got[i].Res.ILT.Printed == nil {
			t.Fatalf("layout %d disturbed by batchmate failure: %+v", i, got[i].Err)
		}
	}
	if stats.Coalesce.Requests != 2 {
		t.Fatalf("requests = %d, want 2 (failed layout withdraws)", stats.Coalesce.Requests)
	}
}

// TestPipelineEmptyAndNilScorer: degenerate shapes terminate.
func TestPipelineEmptyAndNilScorer(t *testing.T) {
	f := NewFlow(nil, fastConfig())
	if res, _ := f.RunPipeline(nil, PipelineOptions{}); len(res) != 0 {
		t.Fatalf("empty input returned %d results", len(res))
	}
	// nil scorer: every layout withdraws from the queue; the pipeline still
	// matches serial.
	ls := pipeLayouts(t, 2)
	want := serialRef(t, f, ls)
	got, stats := f.RunPipeline(ls, PipelineOptions{Workers: 2})
	for i := range want {
		mustEqualResult(t, "nil-scorer", got[i], want[i])
	}
	if stats.Coalesce.Requests != 0 || stats.Coalesce.Flushes != 0 {
		t.Fatalf("nil scorer must not reach the coalescer: %+v", stats.Coalesce)
	}
}
