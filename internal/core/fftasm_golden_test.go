package core

import (
	"sort"
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/fft"
	"ldmo/internal/grid"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/model"
	"ldmo/internal/sampling"
)

// asmTrajectory is everything the train-then-rank pipeline decides: the raw
// ILT labels of every candidate, the training loss history, the predictor
// scores, the resulting candidate ranking, and the flow's selected
// decomposition. All of it must be bitwise/exactly equal across engines.
type asmTrajectory struct {
	labels  []float64
	hist    []float64
	preds   []float64
	order   []string
	bestKey string
}

// TestFFTASMGoldenTrainThenRank is the engine-swap golden for the amd64
// vector spectral kernels: a full train-then-rank trajectory — ILT labeling
// of decomposition candidates, predictor training on those labels, score
// ranking, and OracleSelect — is bit-identical under the vector engine and
// the scalar reference (LDMO_FFT_ASM=off). This is the flow-level statement
// of the asm contract: not merely "close", but the same floats, so every
// discrete decision downstream is exactly unchanged.
func TestFFTASMGoldenTrainThenRank(t *testing.T) {
	if !fft.ASMAvailable() {
		t.Skip("vector engine unavailable on this host; nothing to compare")
	}
	cell, err := layout.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	w := model.DefaultScoreWeights()

	run := func(asm string) asmTrajectory {
		t.Setenv(fft.EnvASM, asm)
		gen := decomp.NewGenerator()
		gen.Classify = cfg.Classify
		gen.Seed = cfg.Seed
		cands, err := gen.Generate(cell)
		if err != nil {
			t.Fatal(err)
		}
		iltCfg := cfg.ILT
		iltCfg.AbortOnViolation = false
		opt, err := ilt.NewOptimizer(cell, iltCfg)
		if err != nil {
			t.Fatal(err)
		}
		v := asmTrajectory{}
		ds := &model.Dataset{}
		for _, d := range cands {
			score := sampling.Label(opt, d, w)
			v.labels = append(v.labels, score)
			ds.Add(d.GrayImage(cfg.ImageRes, cfg.ImageSize), score)
		}
		pred, err := model.New(model.TinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		tc := model.DefaultTrainConfig()
		tc.Epochs = 2
		tc.BatchSize = 4
		hist, err := pred.Train(ds, tc)
		if err != nil {
			t.Fatal(err)
		}
		v.hist = hist
		imgs := make([]*grid.Grid, ds.Len())
		for i := range imgs {
			imgs[i] = ds.Samples[i].Image
		}
		v.preds = pred.PredictBatch(imgs)
		order := make([]int, len(cands))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return v.preds[order[a]] < v.preds[order[b]] })
		for _, oi := range order {
			v.order = append(v.order, cands[oi].Key())
		}
		d, _, err := OracleSelect(cell, cfg, w.Alpha, w.Beta, w.Gamma)
		if err != nil {
			t.Fatal(err)
		}
		v.bestKey = d.Key()
		return v
	}

	ref := run(fft.ASMOff)
	got := run("")
	if len(got.labels) != len(ref.labels) {
		t.Fatalf("candidate count diverged: %d vs %d", len(got.labels), len(ref.labels))
	}
	for i := range ref.labels {
		if got.labels[i] != ref.labels[i] {
			t.Errorf("ILT label %d diverged: %g (vector) vs %g (scalar)", i, got.labels[i], ref.labels[i])
		}
	}
	for i := range ref.hist {
		if got.hist[i] != ref.hist[i] {
			t.Errorf("epoch %d loss diverged: %g (vector) vs %g (scalar)", i, got.hist[i], ref.hist[i])
		}
	}
	for i := range ref.preds {
		if got.preds[i] != ref.preds[i] {
			t.Errorf("prediction %d diverged: %g (vector) vs %g (scalar)", i, got.preds[i], ref.preds[i])
		}
	}
	for i := range ref.order {
		if got.order[i] != ref.order[i] {
			t.Errorf("ranking[%d] = %q (vector) vs %q (scalar)", i, got.order[i], ref.order[i])
		}
	}
	if got.bestKey != ref.bestKey {
		t.Errorf("OracleSelect picked %q (vector) vs %q (scalar)", got.bestKey, ref.bestKey)
	}
}
