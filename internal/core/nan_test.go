package core

import (
	"context"
	"math"
	"testing"

	"ldmo/internal/faultinject"
)

// TestPersistentILTNaNDegradesThroughLadder: with every candidate poisoned by
// a sticky NaN source, each one exhausts its rollback budget and falls
// through like a tripped violation check, and the flow still returns a
// finite, usable forced result instead of an error or poisoned masks.
func TestPersistentILTNaNDegradesThroughLadder(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.ILTNaN, "-1") // every iteration, every candidate
	f := NewFlow(nil, fastConfig())
	nc := candidateCount(t, f)
	res, err := f.RunContext(context.Background(), twoRowLayout())
	if err != nil {
		t.Fatalf("persistent NaN escaped the degradation ladder: %v", err)
	}
	if res.Attempts != nc {
		t.Fatalf("attempts = %d, want every candidate (%d) to numerically fault and fall through",
			res.Attempts, nc)
	}
	if !res.Forced {
		t.Fatal("all-faulted candidates must force the best-effort rerun")
	}
	if !res.ILT.NumericalFault {
		t.Fatal("forced rerun under a sticky NaN source must carry the NumericalFault tag")
	}
	if res.ILT.M1 == nil || res.ILT.Printed == nil {
		t.Fatal("faulted forced result lost its masks")
	}
	for _, g := range []struct {
		name string
		data []float64
	}{{"M1", res.ILT.M1.Data}, {"M2", res.ILT.M2.Data}, {"Printed", res.ILT.Printed.Data}} {
		for _, v := range g.data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("forced result %s leaked non-finite values", g.name)
			}
		}
	}
	if math.IsNaN(res.ILT.L2) || math.IsInf(res.ILT.L2, 0) {
		t.Fatalf("forced result carries non-finite L2 %v", res.ILT.L2)
	}
}

// TestTransientILTNaNRecoversInsideFlow: a NaN that recovers inside the
// optimizer (rollback, halved step) must leave the flow with a clean,
// untagged result. The recovered candidate's trajectory legitimately differs
// from a fault-free run — what matters is that nothing degrades or errors.
func TestTransientILTNaNRecoversInsideFlow(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.ILTNaN, "2") // one transient fault in the first candidate
	res, err := NewFlow(nil, fastConfig()).Run(twoRowLayout())
	if err != nil {
		t.Fatalf("transient NaN escaped recovery: %v", err)
	}
	if res.ILT.NumericalFault {
		t.Fatal("recovered run mis-tagged NumericalFault")
	}
	if faultinject.Enabled(faultinject.ILTNaN) {
		t.Fatal("one-shot point still armed after firing")
	}
	if res.ILT.M1 == nil || math.IsNaN(res.ILT.L2) {
		t.Fatal("recovered flow result unusable")
	}
}
