package core

import (
	"testing"

	"ldmo/internal/layout"
)

func TestFlowMaxAttemptsBounds(t *testing.T) {
	// With MaxAttempts = 1 and a violation-prone configuration, the flow
	// must force after exactly one attempt.
	cfg := fastConfig()
	cfg.ILT.Litho.PrintThreshold = 1e-9 // everything binarizes printed
	cfg.MaxAttempts = 1
	f := NewFlow(nil, cfg)
	res, err := f.Run(twoRowLayout())
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.Attempts)
	}
	if !res.Forced {
		t.Fatal("expected forced run after exhausted attempts")
	}
}

func TestNewFlowFillsZeroConfig(t *testing.T) {
	f := NewFlow(nil, Config{ILT: fastConfig().ILT})
	l, err := layout.Cell("INV_X1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates == 0 {
		t.Fatal("zero-config flow generated no candidates")
	}
}

func TestFlowSecondsConsistent(t *testing.T) {
	f := NewFlow(nil, fastConfig())
	l, err := layout.Cell("NAND2_X1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Clock.PhaseSeconds(PhaseDS) + res.Clock.PhaseSeconds(PhaseMO)
	if diff := res.Seconds - total; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("Seconds %g != DS+MO %g", res.Seconds, total)
	}
}
