package core

import (
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
	"ldmo/internal/litho"
	"ldmo/internal/simclock"
)

// fastConfig runs the flow on the coarse raster for test speed.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.ILT.Litho = litho.FastParams()
	cfg.ILT.MaxIters = 9
	return cfg
}

// constScorer scores candidates by a fixed table (keyed by image fingerprint
// is overkill; order of PredictBatch calls matches generation order).
type constScorer struct {
	scores []float64
}

func (s constScorer) PredictBatch(imgs []*grid.Grid) []float64 {
	out := make([]float64, len(imgs))
	for i := range out {
		if i < len(s.scores) {
			out[i] = s.scores[i]
		}
	}
	return out
}

func twoRowLayout() layout.Layout {
	l := layout.Layout{Name: "tworow", Window: geom.RectWH(0, 0, layout.TileNM, layout.TileNM)}
	for _, y := range []int{130, 290} {
		for _, x := range []int{66, 196, 326} {
			l.Patterns = append(l.Patterns, geom.RectWH(x, y, layout.ContactNM, layout.ContactNM))
		}
	}
	return l
}

func TestFlowRunsWithNilScorer(t *testing.T) {
	f := NewFlow(nil, fastConfig())
	for _, name := range []string{"INV_X1", "NAND3_X2"} {
		l, err := layout.Cell(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(l)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Candidates == 0 || res.Attempts == 0 {
			t.Fatalf("%s: candidates=%d attempts=%d", name, res.Candidates, res.Attempts)
		}
		if res.ILT.Printed == nil {
			t.Fatalf("%s: no printed image", name)
		}
		if !res.Chosen.Valid(80) {
			t.Fatalf("%s: chosen decomposition illegal", name)
		}
		if res.Seconds <= 0 {
			t.Fatalf("%s: no model time", name)
		}
	}
}

func TestFlowScorerOrdersAttempts(t *testing.T) {
	l := twoRowLayout()
	f := NewFlow(nil, fastConfig())
	cands, _, err := f.RankCandidates(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 {
		t.Fatalf("need >= 2 candidates, got %d", len(cands))
	}
	// Scorer that prefers the last generated candidate.
	scores := make([]float64, len(cands))
	for i := range scores {
		scores[i] = float64(len(cands) - i)
	}
	f2 := NewFlow(constScorer{scores: scores}, fastConfig())
	res, err := f2.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d", res.Attempts)
	}
	if res.Chosen.Key() != cands[len(cands)-1].Key() {
		t.Fatalf("scorer preference ignored: chose %s", res.Chosen.Key())
	}
	if len(res.PredScores) != len(cands) {
		t.Fatalf("pred scores = %d", len(res.PredScores))
	}
}

func TestFlowPhasesCharged(t *testing.T) {
	l := twoRowLayout()
	f := NewFlow(constScorer{scores: make([]float64, 8)}, fastConfig())
	res, err := f.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clock.PhaseSeconds(PhaseDS) <= 0 {
		t.Fatal("no DS time charged")
	}
	if res.Clock.PhaseSeconds(PhaseMO) <= 0 {
		t.Fatal("no MO time charged")
	}
	// Our flow's defining property: DS (CNN inference) is far cheaper than
	// MO — the inverse of the ICCAD'17 split.
	if res.Clock.PhaseSeconds(PhaseDS) >= res.Clock.PhaseSeconds(PhaseMO) {
		t.Fatalf("DS %g >= MO %g: predictor selection should be cheap",
			res.Clock.PhaseSeconds(PhaseDS), res.Clock.PhaseSeconds(PhaseMO))
	}
	if got := res.Clock.Count(simclock.CostCNNInference); got != int64(res.Candidates) {
		t.Fatalf("CNN inferences = %d, want %d", got, res.Candidates)
	}
}

func TestFlowViolationFallback(t *testing.T) {
	// An SP pair plus a distant contact: the illegal same-mask assignment
	// of the pair is not among generated candidates, so instead force the
	// issue via MaxAttempts on a multi-candidate layout where the scorer
	// prefers a candidate that bridges.
	l := layout.Layout{Name: "trap", Window: geom.RectWH(0, 0, layout.TileNM, layout.TileNM)}
	l.Patterns = []geom.Rect{
		geom.RectWH(66, 226, 65, 65),
		geom.RectWH(196, 226, 65, 65), // SP with 0
		geom.RectWH(391, 226, 65, 65), // VP with 1 (gap 130 -> NP actually)
	}
	f := NewFlow(nil, fastConfig())
	res, err := f.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	// All generated candidates are legal, so no forced run.
	if res.Forced {
		t.Fatal("legal candidates should not force")
	}
}

func TestFlowForcedWhenAllAbort(t *testing.T) {
	// Make every candidate abort by shrinking the violation check to be
	// hypersensitive: use a print threshold that sees everything merged.
	cfg := fastConfig()
	cfg.ILT.Litho.PrintThreshold = 1e-9 // everything binarizes to printed
	f := NewFlow(nil, cfg)
	l := twoRowLayout()
	res, err := f.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Forced {
		t.Fatal("expected forced best-effort run")
	}
	if res.ILT.Printed == nil {
		t.Fatal("forced run returned no image")
	}
}

func TestRankCandidatesSorted(t *testing.T) {
	l := twoRowLayout()
	n := len(decompKeys(t, l))
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = float64((i*7)%n) * 0.5
	}
	f := NewFlow(constScorer{scores: scores}, fastConfig())
	_, ranked, err := f.RankCandidates(l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i] < ranked[i-1] {
			t.Fatalf("rank scores not ascending: %v", ranked)
		}
	}
}

func decompKeys(t *testing.T, l layout.Layout) []string {
	t.Helper()
	gen := decomp.NewGenerator()
	cands, err := gen.Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(cands))
	for i, d := range cands {
		keys[i] = d.Key()
	}
	return keys
}

func TestOracleSelect(t *testing.T) {
	cfg := fastConfig()
	l := twoRowLayout()
	d, r, err := OracleSelect(l, cfg, 1, 3500, 8000)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Valid(80) {
		t.Fatal("oracle chose illegal decomposition")
	}
	if r.Printed == nil {
		t.Fatal("oracle returned no result")
	}
	if _, _, err := OracleSelect(layout.Layout{Name: "empty"}, cfg, 1, 1, 1); err == nil {
		t.Fatal("empty layout must error")
	}
}

func TestFlowOnAllCells(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite flow run is slow")
	}
	f := NewFlow(nil, fastConfig())
	for _, cell := range layout.Cells() {
		res, err := f.Run(cell)
		if err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
		if res.ILT.EPE.Violations > 20 {
			t.Errorf("%s: %d EPE violations after flow", cell.Name, res.ILT.EPE.Violations)
		}
	}
}
