// Package core implements the paper's contribution: the deep-learning-driven
// simultaneous layout decomposition and mask optimization flow of Fig. 2.
//
//	input layout
//	  -> decomposition generation        (MST + n-wise, package decomp)
//	  -> printability prediction         (CNN scores all candidates)
//	  -> ILT mask optimization           (package ilt)
//	  -> print-violation check every 3 iterations; on violation, fall back
//	     to the next-best unused candidate
//	  -> optimized mask pair
//
// Selection costs one CNN inference per candidate instead of the partial
// mask-optimization probes of the ICCAD'17 flow, which is where the paper's
// runtime advantage comes from.
package core

import (
	"fmt"
	"sort"

	"ldmo/internal/decomp"
	"ldmo/internal/grid"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/par"
	"ldmo/internal/simclock"
)

// Scorer predicts printability scores for decomposition images; lower is
// better. *model.Predictor implements it.
type Scorer interface {
	PredictBatch(imgs []*grid.Grid) []float64
}

// Config parameterizes the flow.
type Config struct {
	// ILT configures mask optimization. AbortOnViolation is forced on for
	// candidate runs (that is the feedback loop of Fig. 2) and off for the
	// final best-effort run when every candidate tripped the check.
	ILT ilt.Config
	// Classify sets the SP/VP/NP bands for candidate generation.
	Classify layout.ClassifyParams
	// Seed drives covering-array construction.
	Seed int64
	// ImageRes and ImageSize control the predictor input rendering.
	ImageRes  int
	ImageSize int
	// MaxAttempts bounds how many candidates are tried before the forced
	// best-effort run; 0 means all candidates.
	MaxAttempts int
	// ClockModel prices the deterministic runtime accounting.
	ClockModel simclock.Model
	// Workers bounds candidate-level parallelism (OracleSelect); 0 selects
	// par.Workers() (GOMAXPROCS, overridable via LDMO_WORKERS), 1 forces the
	// serial path. Results are bit-identical at any worker count.
	Workers int
}

// DefaultConfig returns the paper's flow settings over the calibrated
// process.
func DefaultConfig() Config {
	return Config{
		ILT:        ilt.DefaultConfig(),
		Classify:   layout.DefaultClassifyParams(),
		Seed:       1,
		ImageRes:   4,
		ImageSize:  64,
		ClockModel: simclock.DefaultModel(),
	}
}

// Flow is the reusable LDMO engine.
type Flow struct {
	cfg    Config
	scorer Scorer
}

// NewFlow builds a flow around a trained predictor. A nil scorer degrades
// to the generator's candidate order (useful before a model exists, and as
// the no-predictor ablation).
func NewFlow(scorer Scorer, cfg Config) *Flow {
	if cfg.ImageRes <= 0 {
		cfg.ImageRes = 4
	}
	if cfg.ImageSize <= 0 {
		cfg.ImageSize = 64
	}
	if cfg.Classify.NMin == 0 {
		cfg.Classify = layout.DefaultClassifyParams()
	}
	return &Flow{cfg: cfg, scorer: scorer}
}

// Result is the outcome of one flow run.
type Result struct {
	Layout layout.Layout
	// Chosen is the decomposition the flow committed to.
	Chosen decomp.Decomposition
	// ILT is the final mask-optimization result.
	ILT ilt.Result
	// Candidates is the generated candidate count; Attempts is how many
	// went through ILT (1 when the predictor's first choice survived).
	Candidates int
	Attempts   int
	// Forced reports that every candidate tripped the violation check and
	// the best-predicted one was re-run without aborting.
	Forced bool
	// PredScores holds the predictor score per candidate, aligned with the
	// generation order.
	PredScores []float64
	// Clock carries the deterministic cost accounting (phases "DS"/"MO");
	// Seconds is its total.
	Clock   *simclock.Clock
	Seconds float64
}

// phase names for the runtime accounting.
const (
	PhaseDS = "DS"
	PhaseMO = "MO"
)

// Run executes the Fig. 2 flow on one layout.
func (f *Flow) Run(l layout.Layout) (Result, error) {
	clock := simclock.New(f.cfg.ClockModel)
	clock.SetPhase(PhaseDS)

	// Decomposition generation.
	gen := decomp.NewGenerator()
	gen.Classify = f.cfg.Classify
	gen.Seed = f.cfg.Seed
	gen.Clock = clock
	cands, err := gen.Generate(l)
	if err != nil {
		return Result{}, err
	}

	// Printability prediction: score every candidate with one CNN
	// inference each, then sort ascending (lower score = better predicted
	// printability).
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	var scores []float64
	if f.scorer != nil && len(cands) > 1 {
		imgs := make([]*grid.Grid, len(cands))
		for i, d := range cands {
			imgs[i] = d.GrayImage(f.cfg.ImageRes, f.cfg.ImageSize)
		}
		scores = f.scorer.PredictBatch(imgs)
		clock.Charge(simclock.CostCNNInference, len(cands))
		sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	}

	// ILT with the violation-feedback loop.
	iltCfg := f.cfg.ILT
	iltCfg.AbortOnViolation = true
	opt, err := ilt.NewOptimizer(l, iltCfg)
	if err != nil {
		return Result{}, err
	}
	clock.SetPhase(PhaseMO)
	opt.SetClock(clock)

	maxAttempts := f.cfg.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(order) {
		maxAttempts = len(order)
	}
	res := Result{
		Layout:     l,
		Candidates: len(cands),
		PredScores: scores,
		Clock:      clock,
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		d := cands[order[attempt]]
		res.Attempts = attempt + 1
		r := opt.Run(d)
		if !r.Aborted {
			res.Chosen = d
			res.ILT = r
			res.Seconds = clock.Seconds()
			return res, nil
		}
	}

	// Every candidate tripped the print-violation check: force a full run
	// on the best-predicted candidate and report what it achieves. The
	// existing optimizer is reused with the abort toggled off, so the
	// kernel bank and kernel FFTs are not re-derived.
	opt.SetAbortOnViolation(false)
	best := cands[order[0]]
	res.Forced = true
	res.Chosen = best
	res.ILT = opt.Run(best)
	res.Seconds = clock.Seconds()
	return res, nil
}

// RankCandidates exposes the prediction stage alone: the candidates of l in
// predicted-best-first order with their scores. Used by the examples and the
// ablation benches.
func (f *Flow) RankCandidates(l layout.Layout) ([]decomp.Decomposition, []float64, error) {
	gen := decomp.NewGenerator()
	gen.Classify = f.cfg.Classify
	gen.Seed = f.cfg.Seed
	cands, err := gen.Generate(l)
	if err != nil {
		return nil, nil, err
	}
	if f.scorer == nil {
		return cands, nil, nil
	}
	imgs := make([]*grid.Grid, len(cands))
	for i, d := range cands {
		imgs[i] = d.GrayImage(f.cfg.ImageRes, f.cfg.ImageSize)
	}
	scores := f.scorer.PredictBatch(imgs)
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	outC := make([]decomp.Decomposition, len(cands))
	outS := make([]float64, len(cands))
	for i, oi := range order {
		outC[i] = cands[oi]
		outS[i] = scores[oi]
	}
	return outC, outS, nil
}

// OracleSelect runs full ILT on every candidate and returns the truly best
// decomposition by Eq. 9 score — the (expensive) selection upper bound the
// predictor approximates. Used by tests and the ablation benches.
//
// Candidates fan out over cfg.Workers lanes, each lane owning its own
// optimizer (Optimizer and its Simulator stay single-goroutine); per-candidate
// results land in generation order and the argmin scan runs serially, so the
// selected decomposition and its result are byte-identical to the serial loop
// at any worker count.
func OracleSelect(l layout.Layout, cfg Config, alpha, beta, gamma float64) (decomp.Decomposition, ilt.Result, error) {
	gen := decomp.NewGenerator()
	gen.Classify = cfg.Classify
	gen.Seed = cfg.Seed
	cands, err := gen.Generate(l)
	if err != nil {
		return decomp.Decomposition{}, ilt.Result{}, err
	}
	if len(cands) == 0 {
		return decomp.Decomposition{}, ilt.Result{}, fmt.Errorf("core: no candidates for %q", l.Name)
	}
	iltCfg := cfg.ILT
	iltCfg.AbortOnViolation = false
	pool := par.NewPool(cfg.Workers)
	lanes := min(pool.Size(), len(cands))
	opts := make([]*ilt.Optimizer, lanes)
	for i := range opts {
		if opts[i], err = ilt.NewOptimizer(l, iltCfg); err != nil {
			return decomp.Decomposition{}, ilt.Result{}, err
		}
	}
	results := par.MapSlice(pool, len(cands), func(worker, i int) ilt.Result {
		return opts[worker].Run(cands[i])
	})
	bestIdx := -1
	var bestRes ilt.Result
	bestScore := 0.0
	for i, r := range results {
		s := r.Score(alpha, beta, gamma)
		if bestIdx < 0 || s < bestScore {
			bestIdx, bestRes, bestScore = i, r, s
		}
	}
	return cands[bestIdx], bestRes, nil
}
