// Package core implements the paper's contribution: the deep-learning-driven
// simultaneous layout decomposition and mask optimization flow of Fig. 2.
//
//	input layout
//	  -> decomposition generation        (MST + n-wise, package decomp)
//	  -> printability prediction         (CNN scores all candidates)
//	  -> ILT mask optimization           (package ilt)
//	  -> print-violation check every 3 iterations; on violation, fall back
//	     to the next-best unused candidate
//	  -> optimized mask pair
//
// Selection costs one CNN inference per candidate instead of the partial
// mask-optimization probes of the ICCAD'17 flow, which is where the paper's
// runtime advantage comes from.
package core

import (
	"context"
	"fmt"
	"sort"

	"ldmo/internal/decomp"
	"ldmo/internal/faultinject"
	"ldmo/internal/grid"
	"ldmo/internal/ilt"
	"ldmo/internal/layout"
	"ldmo/internal/par"
	"ldmo/internal/runx"
	"ldmo/internal/simclock"
)

// Scorer predicts printability scores for decomposition images; lower is
// better. *model.Predictor implements it.
type Scorer interface {
	PredictBatch(imgs []*grid.Grid) []float64
}

// Config parameterizes the flow.
type Config struct {
	// ILT configures mask optimization. AbortOnViolation is forced on for
	// candidate runs (that is the feedback loop of Fig. 2) and off for the
	// final best-effort run when every candidate tripped the check.
	ILT ilt.Config
	// Classify sets the SP/VP/NP bands for candidate generation.
	Classify layout.ClassifyParams
	// Seed drives covering-array construction.
	Seed int64
	// ImageRes and ImageSize control the predictor input rendering.
	ImageRes  int
	ImageSize int
	// MaxAttempts bounds how many candidates are tried before the forced
	// best-effort run; 0 means all candidates.
	MaxAttempts int
	// ClockModel prices the deterministic runtime accounting.
	ClockModel simclock.Model
	// Workers bounds candidate-level parallelism (OracleSelect); 0 selects
	// par.Workers() (GOMAXPROCS, overridable via LDMO_WORKERS), 1 forces the
	// serial path. Results are bit-identical at any worker count.
	Workers int
	// Budget bounds RunContext: total wall deadline, per-candidate wall
	// deadline, and per-candidate iteration cap. The zero value is
	// unlimited and adds no overhead to Run.
	Budget runx.Budget
	// WarmStarter, when non-nil, seeds every ILT run with a learned
	// quasi-optimized mask field and enables the convergence-aware early
	// stop, so saved iterations become saved wall-clock and model-seconds.
	// The whole path is additionally gated by LDMO_WARMSTART (see
	// ilt.WarmEnabled): with the gate off — or this field nil — the flow is
	// bitwise identical to the cold flow. *model.WarmStarter implements the
	// interface and is safe to share across concurrent layout runs.
	WarmStarter ilt.Initializer
	// WarmWindow and WarmTol override the early-stop plateau parameters
	// used with WarmStarter; zero selects ilt.DefaultConvergeWindow and
	// ilt.DefaultConvergeTol.
	WarmWindow int
	WarmTol    float64
}

// warmed applies the configured warm starter to an ILT config: candidate
// runs get the initializer plus the convergence early stop. A nil
// WarmStarter returns cfg untouched — the env gate itself lives in ilt, so
// there is exactly one enforcement point for the off-path.
func (c Config) warmed(iltCfg ilt.Config) ilt.Config {
	if c.WarmStarter == nil {
		return iltCfg
	}
	iltCfg.Init = c.WarmStarter
	iltCfg.ConvergeWindow = c.WarmWindow
	if iltCfg.ConvergeWindow <= 0 {
		iltCfg.ConvergeWindow = ilt.DefaultConvergeWindow
	}
	iltCfg.ConvergeTol = c.WarmTol
	return iltCfg
}

// DefaultConfig returns the paper's flow settings over the calibrated
// process.
func DefaultConfig() Config {
	return Config{
		ILT:        ilt.DefaultConfig(),
		Classify:   layout.DefaultClassifyParams(),
		Seed:       1,
		ImageRes:   4,
		ImageSize:  64,
		ClockModel: simclock.DefaultModel(),
	}
}

// Flow is the reusable LDMO engine.
type Flow struct {
	cfg    Config
	scorer Scorer
}

// NewFlow builds a flow around a trained predictor. A nil scorer degrades
// to the generator's candidate order (useful before a model exists, and as
// the no-predictor ablation).
func NewFlow(scorer Scorer, cfg Config) *Flow {
	if cfg.ImageRes <= 0 {
		cfg.ImageRes = 4
	}
	if cfg.ImageSize <= 0 {
		cfg.ImageSize = 64
	}
	if cfg.Classify.NMin == 0 {
		cfg.Classify = layout.DefaultClassifyParams()
	}
	return &Flow{cfg: cfg, scorer: scorer}
}

// Result is the outcome of one flow run.
type Result struct {
	Layout layout.Layout
	// Chosen is the decomposition the flow committed to.
	Chosen decomp.Decomposition
	// ILT is the final mask-optimization result.
	ILT ilt.Result
	// Candidates is the generated candidate count; Attempts is how many
	// went through ILT (1 when the predictor's first choice survived).
	Candidates int
	Attempts   int
	// Forced reports that every candidate tripped the violation check and
	// the best-predicted one was re-run without aborting.
	Forced bool
	// Interrupted reports that cancellation or a budget deadline cut the
	// run short; Chosen/ILT then carry the best attempted state rather
	// than a converged result.
	Interrupted bool
	// ScorerFallback reports that the predictor failed (panic or error)
	// and the flow degraded to generator candidate order — the same path
	// as the nil-scorer ablation. ScorerErr is the converted failure; a
	// panic surfaces as a *runx.PanicError with the worker stack.
	ScorerFallback bool
	ScorerErr      error
	// PredScores holds the predictor score per candidate, aligned with the
	// generation order.
	PredScores []float64
	// Clock carries the deterministic cost accounting (phases "DS"/"MO");
	// Seconds is its total.
	Clock   *simclock.Clock
	Seconds float64
}

// phase names for the runtime accounting.
const (
	PhaseDS = "DS"
	PhaseMO = "MO"
)

// Run executes the Fig. 2 flow on one layout. It is RunContext without
// cancellation and is step-for-step identical to the historical behavior.
func (f *Flow) Run(l layout.Layout) (Result, error) {
	return f.RunContext(context.Background(), l)
}

// RunContext executes the Fig. 2 flow under a context and the configured
// Budget, degrading instead of crashing. The ladder, from least to most
// severe:
//
//  1. scorer panic or error  -> candidates in generator order (the same
//     path as the nil-scorer ablation); Result.ScorerFallback is set;
//  2. candidate exceeds its per-candidate budget (wall or iterations
//     without a violation-free print) -> fall through to the next
//     candidate, exactly like the paper's violation feedback;
//  3. total budget exhausted / ctx cancelled -> return the best attempted
//     result so far, tagged Interrupted.
//
// An error is returned only when nothing usable was computed (generation
// failed, optimizer construction failed, or cancellation landed before any
// candidate produced masks). With a cancellable context the optimizer
// snapshots best-so-far state between violation checks, which adds forward
// passes to the deterministic cost accounting; with context.Background()
// and a zero Budget there is no extra work of any kind.
func (f *Flow) RunContext(ctx context.Context, l layout.Layout) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx, cancel := f.cfg.Budget.Apply(ctx)
	defer cancel()

	lr, err := f.generate(l)
	if err != nil {
		return Result{}, err
	}
	if lr.imgs != nil {
		lr.applyScores(f.predict(lr.imgs))
	}
	return lr.optimize(ctx)
}

// layoutRun carries one layout through the flow's three stages — generate,
// score, optimize. RunContext drives them back to back; the pipelined
// scheduler (pipeline.go) drives the same stages with scoring coalesced
// across in-flight layouts, so both paths run identical per-layout code and
// produce bitwise-identical results.
type layoutRun struct {
	f     *Flow
	l     layout.Layout
	clock *simclock.Clock
	cands []decomp.Decomposition
	order []int
	// imgs holds the rendered candidate images when prediction applies
	// (scorer present, >1 candidate); nil means the scoring stage is a
	// no-op for this layout.
	imgs   []*grid.Grid
	scores []float64
	res    Result
}

// generate is the decomposition-generation stage: enumerate candidates and
// render their predictor input images.
func (f *Flow) generate(l layout.Layout) (*layoutRun, error) {
	clock := simclock.New(f.cfg.ClockModel)
	clock.SetPhase(PhaseDS)

	gen := decomp.NewGenerator()
	gen.Classify = f.cfg.Classify
	gen.Seed = f.cfg.Seed
	gen.Clock = clock
	cands, err := gen.Generate(l)
	if err != nil {
		return nil, err
	}

	lr := &layoutRun{
		f:     f,
		l:     l,
		clock: clock,
		cands: cands,
		res: Result{
			Layout:     l,
			Candidates: len(cands),
			Clock:      clock,
		},
	}
	lr.order = make([]int, len(cands))
	for i := range lr.order {
		lr.order[i] = i
	}
	if f.scorer != nil && len(cands) > 1 {
		lr.imgs = make([]*grid.Grid, len(cands))
		for i, d := range cands {
			lr.imgs[i] = d.GrayImage(f.cfg.ImageRes, f.cfg.ImageSize)
		}
	}
	return lr, nil
}

// predict runs the scorer on a rendered image batch behind the flow's
// panic-recovery boundary. A crash comes back as the error (nil scores), to
// be absorbed by applyScores as rung 1 of the degradation ladder.
func (f *Flow) predict(imgs []*grid.Grid) (scores []float64, err error) {
	err = runx.Recover(func() error {
		if faultinject.Enabled(faultinject.ScorerPanic) {
			panic("faultinject: scorer panic")
		}
		scores = f.scorer.PredictBatch(imgs)
		return nil
	})
	if err != nil {
		scores = nil
	}
	return scores, err
}

// applyScores is the prediction-stage epilogue: sort the candidate order
// ascending by score (lower = better predicted printability), or degrade to
// generator order when the scorer failed — rung 1 of the ladder. The scores
// themselves are a per-image function of the image alone, so it does not
// matter whether they came from a per-layout PredictBatch call or a flush
// coalesced across many layouts.
func (lr *layoutRun) applyScores(scores []float64, serr error) {
	if serr != nil {
		lr.res.ScorerFallback = true
		lr.res.ScorerErr = serr
		scores = nil
	} else {
		lr.clock.Charge(simclock.CostCNNInference, len(lr.cands))
		sort.SliceStable(lr.order, func(a, b int) bool { return scores[lr.order[a]] < scores[lr.order[b]] })
	}
	lr.res.PredScores = scores
	lr.scores = scores
}

// optimize is the mask-optimization stage: ILT with the violation-feedback
// loop over the (scored) candidate order, the degradation ladder of
// RunContext, and the forced best-effort rerun. ctx is polled exactly as the
// historical RunContext did — once at each attempt-loop top, once after an
// interrupted candidate, once after the loop.
func (lr *layoutRun) optimize(ctx context.Context) (Result, error) {
	f := lr.f
	l := lr.l
	clock := lr.clock
	cands := lr.cands
	order := lr.order
	res := lr.res

	iltCfg := f.cfg.warmed(f.cfg.ILT)
	iltCfg.AbortOnViolation = true
	opt, err := ilt.NewOptimizer(l, iltCfg)
	if err != nil {
		return Result{}, err
	}
	clock.SetPhase(PhaseMO)
	opt.SetClock(clock)
	if f.cfg.Budget.CandidateIters > 0 {
		opt.SetMaxIters(f.cfg.Budget.CandidateIters)
	}

	maxAttempts := f.cfg.MaxAttempts
	if maxAttempts <= 0 || maxAttempts > len(order) {
		maxAttempts = len(order)
	}

	// bestAttempt tracks the most printable result over every attempted
	// candidate — including aborted and interrupted ones — so a budget
	// exhaustion always has something usable to return (rung 3).
	var bestR ilt.Result
	var bestD decomp.Decomposition
	haveBest := false
	keep := func(d decomp.Decomposition, r ilt.Result) {
		if r.M1 == nil {
			return
		}
		if !haveBest ||
			r.Violations.Total() < bestR.Violations.Total() ||
			(r.Violations.Total() == bestR.Violations.Total() && r.L2 < bestR.L2) {
			bestR, bestD, haveBest = r, d, true
		}
	}
	exhausted := func() (Result, error) {
		res.Interrupted = true
		res.Seconds = clock.Seconds()
		if !haveBest {
			return res, fmt.Errorf("core: %q interrupted before any candidate completed: %w",
				l.Name, ctx.Err())
		}
		res.Chosen = bestD
		res.ILT = bestR
		return res, nil
	}

	for attempt := 0; attempt < maxAttempts; attempt++ {
		if ctx.Err() != nil {
			return exhausted()
		}
		d := cands[order[attempt]]
		res.Attempts = attempt + 1
		cctx, ccancel := f.cfg.Budget.Candidate(ctx)
		r := opt.RunCtx(cctx, d)
		ccancel()
		if r.Interrupted {
			keep(d, r)
			if ctx.Err() != nil {
				// The total budget, not just the candidate's, is gone.
				return exhausted()
			}
			// Rung 2a: the candidate overran its own wall budget; its best
			// state is retained as a fallback and the next candidate gets
			// its chance.
			continue
		}
		if r.Aborted {
			keep(d, r)
			continue
		}
		if f.cfg.Budget.CandidateIters > 0 && r.Violations.Any() {
			// Rung 2b: the candidate spent its iteration budget without a
			// violation-free print — treat like a tripped check.
			keep(d, r)
			continue
		}
		res.Chosen = d
		res.ILT = r
		res.Seconds = clock.Seconds()
		return res, nil
	}

	if ctx.Err() != nil {
		return exhausted()
	}

	// Every candidate tripped the print-violation check: force a full run
	// on the best-predicted candidate and report what it achieves. The
	// existing optimizer is reused with the abort toggled off and the full
	// iteration budget restored, so the kernel bank and kernel FFTs are
	// not re-derived. Cancellation mid-rerun still returns the rerun's
	// best-so-far snapshot (rung 3).
	opt.SetAbortOnViolation(false)
	opt.SetMaxIters(0)
	best := cands[order[0]]
	res.Forced = true
	res.Chosen = best
	res.ILT = opt.RunCtx(ctx, best)
	res.Interrupted = res.ILT.Interrupted
	res.Seconds = clock.Seconds()
	return res, nil
}

// RankCandidates exposes the prediction stage alone: the candidates of l in
// predicted-best-first order with their scores. Used by the examples and the
// ablation benches.
func (f *Flow) RankCandidates(l layout.Layout) ([]decomp.Decomposition, []float64, error) {
	gen := decomp.NewGenerator()
	gen.Classify = f.cfg.Classify
	gen.Seed = f.cfg.Seed
	cands, err := gen.Generate(l)
	if err != nil {
		return nil, nil, err
	}
	if f.scorer == nil {
		return cands, nil, nil
	}
	imgs := make([]*grid.Grid, len(cands))
	for i, d := range cands {
		imgs[i] = d.GrayImage(f.cfg.ImageRes, f.cfg.ImageSize)
	}
	scores := f.scorer.PredictBatch(imgs)
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	outC := make([]decomp.Decomposition, len(cands))
	outS := make([]float64, len(cands))
	for i, oi := range order {
		outC[i] = cands[oi]
		outS[i] = scores[oi]
	}
	return outC, outS, nil
}

// OracleSelect runs full ILT on every candidate and returns the truly best
// decomposition by Eq. 9 score — the (expensive) selection upper bound the
// predictor approximates. Used by tests and the ablation benches.
//
// Candidates fan out over cfg.Workers lanes, each lane owning its own
// optimizer (Optimizer and its Simulator stay single-goroutine); per-candidate
// results land in generation order and the argmin scan runs serially, so the
// selected decomposition and its result are byte-identical to the serial loop
// at any worker count.
func OracleSelect(l layout.Layout, cfg Config, alpha, beta, gamma float64) (decomp.Decomposition, ilt.Result, error) {
	gen := decomp.NewGenerator()
	gen.Classify = cfg.Classify
	gen.Seed = cfg.Seed
	cands, err := gen.Generate(l)
	if err != nil {
		return decomp.Decomposition{}, ilt.Result{}, err
	}
	if len(cands) == 0 {
		return decomp.Decomposition{}, ilt.Result{}, fmt.Errorf("core: no candidates for %q", l.Name)
	}
	iltCfg := cfg.warmed(cfg.ILT)
	iltCfg.AbortOnViolation = false
	pool := par.NewPool(cfg.Workers)
	lanes := min(pool.Size(), len(cands))
	opts := make([]*ilt.Optimizer, lanes)
	for i := range opts {
		if opts[i], err = ilt.NewOptimizer(l, iltCfg); err != nil {
			return decomp.Decomposition{}, ilt.Result{}, err
		}
	}
	results := par.MapSlice(pool, len(cands), func(worker, i int) ilt.Result {
		return opts[worker].Run(cands[i])
	})
	bestIdx := -1
	var bestRes ilt.Result
	bestScore := 0.0
	for i, r := range results {
		s := r.Score(alpha, beta, gamma)
		if bestIdx < 0 || s < bestScore {
			bestIdx, bestRes, bestScore = i, r, s
		}
	}
	return cands[bestIdx], bestRes, nil
}
