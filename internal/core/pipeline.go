// Pipelined flow scheduling: RunPipeline carries many layouts through the
// Fig. 2 flow with the three stages — candidate generation, printability
// prediction, ILT mask optimization — overlapped across layouts instead of
// run layout-at-a-time.
//
// The scheduler admits layouts in fixed-size chunks. Every admitted layout is
// announced to a request-coalescing queue (par.Coalescer); a worker that
// finishes generating a layout submits that layout's whole candidate-image
// batch and blocks until the queue has collected the entire admitted wave,
// at which point ONE PredictBatch call scores every candidate of every
// in-flight layout. Prediction scores are a per-image function of the image
// alone (see model.PredictBatchInto), so the coalesced scores are bitwise
// what per-layout calls would have produced, and per-layout results are
// merged by admission index — the whole pipeline is bitwise-identical to
// running Flow.RunContext serially over the slice, at any worker count.
//
// Cancellation preserves a completed-prefix contract over admission order:
// admitted layouts drain through their remaining stages exactly as a serial
// RunContext under the same cancelled context would (generation and scoring
// are not ctx-gated; the ILT attempt loop is, landing each on rung 3 of the
// degradation ladder with its best attempted state), while layouts never
// admitted are returned untouched, tagged Interrupted with the context's
// error and no work performed.
package core

import (
	"context"
	"sync"
	"time"

	"ldmo/internal/faultinject"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
	"ldmo/internal/par"
	"ldmo/internal/runx"
)

// PipelineOptions tunes the scheduler. The zero value selects the defaults.
type PipelineOptions struct {
	// Workers bounds layout-level parallelism; 0 selects par.Workers(). The
	// scheduler runs max(Workers, Chunk) goroutines so a full admission wave
	// can always assemble (a coalescing wave needs every member claimable at
	// once); actual CPU parallelism stays bounded by GOMAXPROCS.
	Workers int
	// Chunk is the admission wave size — and therefore the coalesced
	// PredictBatch granularity in layouts. 0 selects max(2, Workers), so
	// batching happens even on a single-core host.
	Chunk int
}

// PipeResult pairs one layout's flow outcome with its error, exactly what
// the corresponding serial RunContext call would have returned.
type PipeResult struct {
	Res Result
	Err error
}

// PipelineStats reports the scheduler's measured behavior. Busy durations
// are summed across workers; divide by Wall*Workers for occupancy.
type PipelineStats struct {
	// Workers is the scheduler goroutine count actually run; Chunk the
	// admission wave size; Layouts the input count.
	Workers int
	Chunk   int
	Layouts int
	// Coalesce counts prediction amortization: Flushes is the number of
	// scorer invocations issued, Requests the per-layout prediction
	// requests they served (the serial flow issues one invocation per
	// request), MaxBatch the largest wave.
	Coalesce par.CoalesceStats
	// Images is the total number of candidate images scored.
	Images int
	// Per-stage busy time summed over workers. ScoreWait additionally
	// counts time spent blocked waiting for a wave to assemble; the actual
	// inference time is PredictBusy.
	GenBusy     time.Duration
	PredictBusy time.Duration
	ScoreWait   time.Duration
	OptBusy     time.Duration
	// Wall is the scheduler's total wall-clock time.
	Wall time.Duration
}

// Occupancy normalizes a busy duration to [0,1] worker utilization.
func (st PipelineStats) Occupancy(busy time.Duration) float64 {
	if st.Wall <= 0 || st.Workers <= 0 {
		return 0
	}
	return busy.Seconds() / (st.Wall.Seconds() * float64(st.Workers))
}

// pipeSched is the shared state of one RunPipelineCtx invocation.
type pipeSched struct {
	f       *Flow
	ls      []layout.Layout
	results []PipeResult

	mu       sync.Mutex
	cond     *sync.Cond
	next     int // next unclaimed layout index
	admitted int // indices < admitted are claimable
	resolved int // layouts whose scoring stage has resolved
	chunk    int
	ctx      context.Context // pipeline context: admission gate + layout runs
	cancel   context.CancelFunc
	nDone    int // completed layout runs, for the cancel-after fault point

	co *par.Coalescer[*layoutRun, struct{}]
	// flush-owned concatenation buffers; only one flush runs at a time.
	imgbuf []*grid.Grid
	outbuf []float64

	stats PipelineStats
}

// RunPipeline is RunPipelineCtx without external cancellation.
func (f *Flow) RunPipeline(ls []layout.Layout, po PipelineOptions) ([]PipeResult, PipelineStats) {
	return f.RunPipelineCtx(context.Background(), ls, po)
}

// RunPipelineCtx runs the flow over every layout with pipelined scheduling
// and coalesced prediction. results[i] is bitwise what RunContext(ctx,
// ls[i]) returns; see the package comment for the determinism and
// cancellation contracts.
func (f *Flow) RunPipelineCtx(ctx context.Context, ls []layout.Layout, po PipelineOptions) ([]PipeResult, PipelineStats) {
	if ctx == nil {
		ctx = context.Background()
	}
	w := po.Workers
	if w <= 0 {
		w = par.Workers()
	}
	chunk := po.Chunk
	if chunk <= 0 {
		chunk = max(2, w)
	}
	// A wave only flushes once every member has submitted, so there must be
	// at least one goroutine per wave member to carry it to the queue.
	if w < chunk {
		w = chunk
	}

	s := &pipeSched{
		f:       f,
		ls:      ls,
		results: make([]PipeResult, len(ls)),
		chunk:   chunk,
	}
	s.cond = sync.NewCond(&s.mu)
	// Derive a cancellable pipeline context only when cancellation can
	// actually occur (cancellable parent, or the cancel-after fault armed).
	// A cancellable context flips the ILT optimizer into best-so-far
	// snapshot tracking, which charges extra forward passes to the model
	// clock — RunContext behaves the same way, so matching its condition
	// here is part of the bitwise serial==pipelined contract.
	if ctx.Done() != nil || faultinject.Enabled(faultinject.CancelAfter) {
		s.ctx, s.cancel = context.WithCancel(ctx)
	} else {
		s.ctx, s.cancel = ctx, func() {}
	}
	defer s.cancel()
	s.co = par.NewCoalescer[*layoutRun, struct{}](0, s.flushPredict)
	s.stats.Workers = w
	s.stats.Chunk = chunk
	s.stats.Layouts = len(ls)

	start := time.Now()
	if len(ls) > 0 {
		s.mu.Lock()
		s.admit()
		s.mu.Unlock()

		// Wake claim-waiters when the pipeline context dies so they can
		// observe the closed admission window and exit.
		watchDone := make(chan struct{})
		go func() {
			select {
			case <-s.ctx.Done():
			case <-watchDone:
			}
			s.cond.Broadcast()
		}()

		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s.work()
			}()
		}
		wg.Wait()
		close(watchDone)
	}

	// Whatever was never admitted was cancelled before any of its work
	// began: no generation, no scoring, no masks — just the tag and cause.
	for i := s.admitted; i < len(ls); i++ {
		s.results[i] = PipeResult{
			Res: Result{Layout: ls[i], Interrupted: true},
			Err: s.ctx.Err(),
		}
	}

	s.stats.Wall = time.Since(start)
	s.stats.Coalesce = s.co.Stats()
	return s.results, s.stats
}

// admit opens the next chunk of layouts for claiming and announces them to
// the coalescer, but only once the previous wave has fully resolved — one
// wave is outstanding at a time, which is what makes a blocked Do always
// eventually flush. Callers hold s.mu.
func (s *pipeSched) admit() {
	if s.resolved < s.admitted || s.admitted >= len(s.ls) {
		return
	}
	if s.ctx.Err() != nil {
		// Cancelled: stop admitting. In-flight layouts drain; the rest are
		// reported untouched by RunPipelineCtx.
		return
	}
	n := min(s.chunk, len(s.ls)-s.admitted)
	s.admitted += n
	s.co.Expect(n)
	s.cond.Broadcast()
}

// work is one scheduler goroutine: claim admitted layouts in index order and
// run each through the flow stages until the admission window closes.
func (s *pipeSched) work() {
	for {
		s.mu.Lock()
		for s.next >= s.admitted && s.admitted < len(s.ls) && s.ctx.Err() == nil {
			s.cond.Wait()
		}
		if s.next >= s.admitted {
			// Nothing claimable and no admission coming: done (all admitted,
			// or cancelled).
			s.mu.Unlock()
			return
		}
		i := s.next
		s.next++
		s.mu.Unlock()
		s.runLayout(i)
	}
}

// resolveScoring marks layout's scoring stage resolved (its Do returned, or
// it withdrew) and, when it was the wave's last, admits the next chunk.
func (s *pipeSched) resolveScoring() {
	s.mu.Lock()
	s.resolved++
	s.admit()
	s.mu.Unlock()
}

// runLayout carries one layout through generate -> (coalesced) score ->
// optimize, storing the PipeResult slot i. Every admitted layout resolves
// its coalescer announcement on every path — that invariant is what keeps
// waves flushing.
func (s *pipeSched) runLayout(i int) {
	t0 := time.Now()
	lr, err := s.f.generate(s.ls[i])
	s.addBusy(&s.stats.GenBusy, time.Since(t0))
	if err != nil {
		s.co.Forgo()
		s.resolveScoring()
		s.results[i] = PipeResult{Err: err}
		s.finishLayout()
		return
	}
	if lr.imgs == nil {
		// No prediction for this layout (nil scorer or a single candidate);
		// withdraw so the wave is not held up.
		s.co.Forgo()
		s.resolveScoring()
	} else {
		t1 := time.Now()
		_, serr := s.co.Do(lr)
		s.resolveScoring()
		s.addBusy(&s.stats.ScoreWait, time.Since(t1))
		lr.applyScores(lr.scores, serr)
	}
	t2 := time.Now()
	lctx, lcancel := s.f.cfg.Budget.Apply(s.ctx)
	res, rerr := lr.optimize(lctx)
	lcancel()
	s.addBusy(&s.stats.OptBusy, time.Since(t2))
	s.results[i] = PipeResult{Res: res, Err: rerr}
	s.finishLayout()
}

// finishLayout counts a completed layout run and services the cancel-after
// fault point: when armed with n, the pipeline cancels its own context once
// n layouts have finished, deterministically exercising the drain path.
func (s *pipeSched) finishLayout() {
	s.mu.Lock()
	s.nDone++
	done := s.nDone
	s.mu.Unlock()
	if n := faultinject.ArgInt(faultinject.CancelAfter, -1); n >= 0 && done >= n {
		s.cancel()
	}
}

// flushPredict services one coalesced wave: concatenate every in-flight
// layout's candidate images, score them with a single call behind the same
// panic-recovery boundary the serial flow uses, and hand each layout its
// slice of the scores. Runs on the last-arriving producer's goroutine; the
// coalescer guarantees a single flush at a time, so the concat buffers are
// reused flush to flush.
func (s *pipeSched) flushPredict(reqs []*layoutRun, _ []struct{}) error {
	t0 := time.Now()
	defer func() { s.addBusy(&s.stats.PredictBusy, time.Since(t0)) }()

	total := 0
	for _, lr := range reqs {
		total += len(lr.imgs)
	}
	s.imgbuf = s.imgbuf[:0]
	for _, lr := range reqs {
		s.imgbuf = append(s.imgbuf, lr.imgs...)
	}
	if cap(s.outbuf) < total {
		s.outbuf = make([]float64, total)
	}
	out := s.outbuf[:total]
	s.mu.Lock()
	s.stats.Images += total
	s.mu.Unlock()

	err := runx.Recover(func() error {
		if faultinject.Enabled(faultinject.ScorerPanic) {
			panic("faultinject: scorer panic")
		}
		predictInto(s.f.scorer, s.imgbuf, out)
		return nil
	})
	if err != nil {
		// The whole wave degrades to rung 1, exactly as each layout's own
		// PredictBatch call would have (the fault is sticky / systemic).
		return err
	}
	off := 0
	for _, lr := range reqs {
		lr.scores = make([]float64, len(lr.imgs))
		copy(lr.scores, out[off:off+len(lr.imgs)])
		off += len(lr.imgs)
	}
	return nil
}

// batchIntoScorer is the allocation-free scoring fast path implemented by
// *model.Predictor.
type batchIntoScorer interface {
	PredictBatchInto(imgs []*grid.Grid, out []float64)
}

// predictInto scores imgs into out, using the scorer's Into variant when it
// has one.
func predictInto(sc Scorer, imgs []*grid.Grid, out []float64) {
	if bi, ok := sc.(batchIntoScorer); ok {
		bi.PredictBatchInto(imgs, out)
		return
	}
	copy(out, sc.PredictBatch(imgs))
}

// addBusy accumulates a stage duration under the scheduler lock.
func (s *pipeSched) addBusy(d *time.Duration, dt time.Duration) {
	s.mu.Lock()
	*d += dt
	s.mu.Unlock()
}
