package core

import (
	"context"
	"errors"
	"testing"

	"ldmo/internal/decomp"
	"ldmo/internal/faultinject"
	"ldmo/internal/grid"
	"ldmo/internal/runx"
)

// panicScorer blows up partway through scoring a batch, like an
// out-of-bounds in the conv stack would.
type panicScorer struct{}

func (panicScorer) PredictBatch(imgs []*grid.Grid) []float64 {
	out := make([]float64, len(imgs))
	for i := range out {
		if i == len(out)/2 {
			panic("scorer exploded mid-batch")
		}
		out[i] = 0.5
	}
	return out
}

// pollCtx is a deterministic cancellable context: Err() starts returning
// Canceled after `allow` polls. Done() is non-nil so budget tracking is on.
type pollCtx struct {
	context.Context
	allow int
	polls int
}

func (c *pollCtx) Done() <-chan struct{} { return make(chan struct{}) }
func (c *pollCtx) Err() error {
	c.polls++
	if c.polls > c.allow {
		return context.Canceled
	}
	return nil
}

// candidateCount returns how many decompositions the flow will enumerate.
func candidateCount(t *testing.T, f *Flow) int {
	t.Helper()
	cands, _, err := f.RankCandidates(twoRowLayout())
	if err != nil {
		t.Fatal(err)
	}
	return len(cands)
}

// TestRunContextBackgroundMatchesRun: the context path with a zero budget
// must reproduce Run exactly.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	l := twoRowLayout()
	f := NewFlow(nil, fastConfig())
	want, err := f.Run(l)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.RunContext(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interrupted || got.ScorerFallback {
		t.Fatalf("clean run tagged degraded: %+v", got)
	}
	if want.Chosen.Key() != got.Chosen.Key() || want.ILT.L2 != got.ILT.L2 ||
		want.Attempts != got.Attempts || want.Seconds != got.Seconds {
		t.Fatalf("RunContext differs from Run: %v/%v, L2 %v/%v, seconds %v/%v",
			want.Chosen.Key(), got.Chosen.Key(), want.ILT.L2, got.ILT.L2, want.Seconds, got.Seconds)
	}
}

// TestScorerPanicFallsBackToGeneratorOrder: rung 1 — a scorer that panics
// mid-batch degrades to the nil-scorer path and still completes.
func TestScorerPanicFallsBackToGeneratorOrder(t *testing.T) {
	l := twoRowLayout()
	ref, err := NewFlow(nil, fastConfig()).Run(l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewFlow(panicScorer{}, fastConfig()).Run(l)
	if err != nil {
		t.Fatalf("scorer panic escaped the flow: %v", err)
	}
	if !res.ScorerFallback {
		t.Fatal("ScorerFallback not reported")
	}
	pe, ok := runx.AsPanic(res.ScorerErr)
	if !ok {
		t.Fatalf("ScorerErr %v is not a PanicError", res.ScorerErr)
	}
	if pe.Value != "scorer exploded mid-batch" || len(pe.Stack) == 0 {
		t.Fatalf("panic cause/stack lost: %v", pe.Value)
	}
	if res.PredScores != nil {
		t.Fatal("scores from a crashed scorer must be dropped")
	}
	if res.Chosen.Key() != ref.Chosen.Key() || res.ILT.L2 != ref.ILT.L2 || res.Attempts != ref.Attempts {
		t.Fatalf("fallback differs from the nil-scorer path: %v vs %v", res.Chosen.Key(), ref.Chosen.Key())
	}
}

// TestScorerPanicFaultPoint: the injectable variant of rung 1, proving the
// boundary guards real scorers too.
func TestScorerPanicFaultPoint(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.ScorerPanic, "")
	l := twoRowLayout()
	scores := make([]float64, 16)
	res, err := NewFlow(constScorer{scores: scores}, fastConfig()).Run(l)
	if err != nil {
		t.Fatalf("injected scorer panic escaped: %v", err)
	}
	if !res.ScorerFallback || res.ScorerErr == nil {
		t.Fatalf("fault point did not trigger the fallback: %+v", res.ScorerErr)
	}
}

// TestCandidateIterationBudgetFallsThrough: rung 2 — candidates that spend
// their iteration budget without a clean print fall through, and the forced
// best-effort rerun (with the full budget restored) still yields a usable
// result.
func TestCandidateIterationBudgetFallsThrough(t *testing.T) {
	defer faultinject.Reset()
	// Divergence guarantees every candidate still has violations when its
	// 3-iteration budget (exactly one check chunk, so no mid-run abort)
	// runs out.
	faultinject.Set(faultinject.ILTDiverge, "0")
	cfg := fastConfig()
	cfg.Budget.CandidateIters = cfg.ILT.CheckEvery
	f := NewFlow(nil, cfg)
	nc := candidateCount(t, f)
	res, err := f.RunContext(context.Background(), twoRowLayout())
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != nc {
		t.Fatalf("attempts = %d, want every candidate (%d) to fall through", res.Attempts, nc)
	}
	if !res.Forced {
		t.Fatal("exhausted candidates must force the best-effort rerun")
	}
	if res.ILT.M1 == nil || res.ILT.Printed == nil {
		t.Fatal("forced result lost its masks")
	}
	if res.ILT.Iters != cfg.ILT.MaxIters {
		t.Fatalf("forced rerun ran %d iters, want the restored full budget %d",
			res.ILT.Iters, cfg.ILT.MaxIters)
	}
}

// TestTotalBudgetExhaustionReturnsBestAttempt: rung 3 — cancellation during
// the candidate loop returns the best attempted state, tagged.
func TestTotalBudgetExhaustionReturnsBestAttempt(t *testing.T) {
	f := NewFlow(nil, fastConfig())
	// Polls: attempt loop top (1), RunCtx chunk 1 (2), then chunk 2 (3)
	// cancels — the first candidate is interrupted with one chunk done and
	// the total budget is observed gone.
	ctx := &pollCtx{Context: context.Background(), allow: 2}
	res, err := f.RunContext(ctx, twoRowLayout())
	if err != nil {
		t.Fatalf("best-attempt exhaustion must not error: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("exhausted run not tagged Interrupted")
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.Attempts)
	}
	if res.ILT.M1 == nil || res.ILT.Printed == nil || len(res.Chosen.Assign) == 0 {
		t.Fatal("interrupted run lost its best attempted state")
	}
}

// TestCancelledBeforeAnyAttemptErrors: cancellation before any candidate
// produced masks is the one case with nothing to salvage.
func TestCancelledBeforeAnyAttemptErrors(t *testing.T) {
	f := NewFlow(nil, fastConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := f.RunContext(ctx, twoRowLayout())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if !res.Interrupted {
		t.Fatal("result must still report the interruption")
	}
}

// TestCancellationDuringForcedRerun: rung 3 during the forced best-effort
// rerun — the rerun's best-so-far snapshot comes back, tagged, usable.
func TestCancellationDuringForcedRerun(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.ILTDiverge, "0") // every candidate aborts
	f := NewFlow(nil, fastConfig())
	nc := candidateCount(t, f)
	// Poll accounting: each aborting attempt costs 2 polls (loop top +
	// RunCtx's single pre-chunk poll), the post-loop check costs 1, and
	// the forced rerun polls once per chunk. Allowing one rerun chunk puts
	// the cancellation exactly inside the forced rerun.
	ctx := &pollCtx{Context: context.Background(), allow: 2*nc + 1 + 1}
	res, err := f.RunContext(ctx, twoRowLayout())
	if err != nil {
		t.Fatalf("forced-rerun cancellation must still yield a result: %v", err)
	}
	if !res.Forced || !res.Interrupted {
		t.Fatalf("want Forced+Interrupted, got %+v/%+v", res.Forced, res.Interrupted)
	}
	if !res.ILT.Interrupted {
		t.Fatal("rerun result not tagged Interrupted")
	}
	if res.ILT.M1 == nil || res.ILT.M2 == nil || res.ILT.Printed == nil {
		t.Fatal("interrupted rerun lost its masks")
	}
	if res.ILT.Iters <= 0 || res.ILT.Iters >= f.cfg.ILT.MaxIters {
		t.Fatalf("rerun iterations = %d, want partial progress", res.ILT.Iters)
	}
	if res.Attempts != nc {
		t.Fatalf("attempts = %d, want %d", res.Attempts, nc)
	}
}

// TestRunContextKeepsDecompContract sanity-checks that the degraded paths
// still return one of the enumerated decompositions.
func TestRunContextKeepsDecompContract(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set(faultinject.ILTDiverge, "0")
	f := NewFlow(nil, fastConfig())
	l := twoRowLayout()
	cands, _, err := f.RankCandidates(l)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, d := range cands {
		keys[d.Key()] = true
	}
	res, err := f.RunContext(context.Background(), l)
	if err != nil {
		t.Fatal(err)
	}
	var chosen decomp.Decomposition = res.Chosen
	if !keys[chosen.Key()] {
		t.Fatalf("chosen decomposition %q is not an enumerated candidate", chosen.Key())
	}
}
