package faultinject

import "testing"

func TestArmDisarm(t *testing.T) {
	defer Reset()
	Reset()
	if Enabled(ScorerPanic) {
		t.Fatal("point armed after Reset")
	}
	Set(ScorerPanic, "")
	if !Enabled(ScorerPanic) {
		t.Fatal("Set did not arm the point")
	}
	if Enabled(ILTDiverge) {
		t.Fatal("unrelated point armed")
	}
	Clear(ScorerPanic)
	if Enabled(ScorerPanic) {
		t.Fatal("Clear did not disarm")
	}
	if armed.Load() != 0 {
		t.Fatalf("armed counter %d after clearing everything", armed.Load())
	}
}

func TestArmFromSpec(t *testing.T) {
	defer Reset()
	Reset()
	ArmFromSpec(" scorer-panic , ilt-diverge=2, worker-stall=3 ,")
	if !Enabled(ScorerPanic) || !Enabled(ILTDiverge) || !Enabled(WorkerStall) {
		t.Fatal("spec did not arm all points")
	}
	if got := ArgInt(ILTDiverge, -1); got != 2 {
		t.Fatalf("ilt-diverge arg = %d, want 2", got)
	}
	if got := ArgInt(WorkerStall, -1); got != 3 {
		t.Fatalf("worker-stall arg = %d, want 3", got)
	}
}

func TestArgInt(t *testing.T) {
	defer Reset()
	Reset()
	if got := ArgInt(CancelAfter, 7); got != 7 {
		t.Fatalf("disarmed ArgInt = %d, want default 7", got)
	}
	Set(CancelAfter, "")
	if got := ArgInt(CancelAfter, 7); got != 7 {
		t.Fatalf("empty-arg ArgInt = %d, want default 7", got)
	}
	Set(CancelAfter, "nonsense")
	if got := ArgInt(CancelAfter, 7); got != 7 {
		t.Fatalf("malformed-arg ArgInt = %d, want default 7", got)
	}
	Set(CancelAfter, "12")
	if got := ArgInt(CancelAfter, 7); got != 12 {
		t.Fatalf("ArgInt = %d, want 12", got)
	}
}

func TestSetIdempotentCounter(t *testing.T) {
	defer Reset()
	Reset()
	Set(ScorerPanic, "a")
	Set(ScorerPanic, "b") // re-arm must not double-count
	if armed.Load() != 1 {
		t.Fatalf("armed counter %d after double Set", armed.Load())
	}
	if arg, _ := Arg(ScorerPanic); arg != "b" {
		t.Fatalf("arg %q, want latest", arg)
	}
}
