// Package faultinject provides deterministic, gated fault points for
// exercising the runtime-hardening ladder end to end: a scorer that panics
// mid-batch, an ILT run that diverges, a worker that stalls, a pipeline that
// cancels itself after N units of work. Production code consults the points
// at well-known sites; tests (or an operator, via the LDMO_FAULTS env
// variable) arm them.
//
// The disarmed fast path is a single atomic load, so fault-point checks are
// safe to leave in hot loops.
package faultinject

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// EnvFaults arms fault points from the environment at process start, as a
// comma-separated list of point[=arg] entries, e.g.
//
//	LDMO_FAULTS="scorer-panic,ilt-diverge=2,worker-stall=3"
const EnvFaults = "LDMO_FAULTS"

// The fault points wired into the tree.
const (
	// ScorerPanic makes the flow's prediction stage panic, exercising the
	// Recover boundary and the generator-order fallback.
	ScorerPanic = "scorer-panic"
	// ILTDiverge slams the optimizer's mask parameters from iteration
	// arg (default 0) on, so every candidate trips the violation check.
	ILTDiverge = "ilt-diverge"
	// WorkerStall makes par's workers sleep ~25ms before item arg
	// (default 0), giving cancellation a window to land mid-Map.
	WorkerStall = "worker-stall"
	// CancelAfter makes checkpointing pipelines cancel their own context
	// after arg completed units, for deterministic interrupt/resume tests.
	CancelAfter = "cancel-after"
	// ArtifactBitflip inverts one payload byte of the next sealed artifact
	// whose base name contains arg (empty matches any), in place on disk,
	// then disarms itself — simulating at-rest bit rot on exactly one read.
	ArtifactBitflip = "artifact-bitflip"
	// ArtifactTruncate cuts the next matching sealed artifact to half its
	// length before it is read, then disarms itself — a torn write that
	// somehow survived the atomic-rename protocol.
	ArtifactTruncate = "artifact-truncate"
	// ILTNaN poisons the ILT mask parameters with NaN at iteration arg.
	// A non-negative arg fires once at iteration >= arg and disarms, so the
	// optimizer's rollback recovers and the run completes; a negative arg
	// fires at every iteration >= -arg and stays armed, exhausting the
	// bounded retries so the candidate fails cleanly.
	ILTNaN = "ilt-nan"
	// TrainNaN poisons the training loss with NaN at batch arg, with the
	// same one-shot (arg >= 0) / sticky (arg < 0) convention as ILTNaN.
	TrainNaN = "train-nan"
	// WorkerSigkill makes a factory worker kill itself (SIGKILL in process
	// mode, simulated hard death in-process) right after its arg-th
	// successful lease claim (default 0), with the usual one-shot
	// (arg >= 0) / sticky (arg < 0) FireAt convention — the chaos drill's
	// trigger for supervisor reclaim + restart.
	WorkerSigkill = "worker-sigkill"
	// LeaseStale makes the factory worker holding shard arg stop
	// heartbeating and hang without dying, so its lease mtime goes stale
	// while the process stays alive — exercising the hung-worker reclaim
	// (and kill) path rather than the dead-worker one.
	LeaseStale = "lease-stale"
	// LabelPanicSticky panics the shard labeler for the layout at index
	// arg on every attempt — a poison layout that kills its worker each
	// time it is claimed, driving the K-deaths-then-quarantine drill. It
	// never disarms; the poison record is what ends the crash loop.
	LabelPanicSticky = "label-panic-sticky"
)

var (
	armed  atomic.Int32 // number of armed points; 0 short-circuits Enabled
	mu     sync.Mutex
	points = map[string]string{}
)

func init() {
	ArmFromSpec(os.Getenv(EnvFaults))
}

// ArmFromSpec arms every point in a comma-separated point[=arg] spec.
// Unknown names are armed as given — call sites decide what they consult.
func ArmFromSpec(spec string) {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		point, arg, _ := strings.Cut(entry, "=")
		Set(point, arg)
	}
}

// Set arms a fault point with an optional argument.
func Set(point, arg string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; !ok {
		armed.Add(1)
	}
	points[point] = arg
}

// Clear disarms one point.
func Clear(point string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[point]; ok {
		delete(points, point)
		armed.Add(-1)
	}
}

// Reset disarms everything (including env-armed points); tests defer this.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]string{}
	armed.Store(0)
}

// Enabled reports whether the point is armed. Disarmed processes pay one
// atomic load.
func Enabled(point string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	_, ok := points[point]
	return ok
}

// Arg returns the point's argument and whether the point is armed.
func Arg(point string) (string, bool) {
	if armed.Load() == 0 {
		return "", false
	}
	mu.Lock()
	defer mu.Unlock()
	arg, ok := points[point]
	return arg, ok
}

// FireAt implements the one-shot/sticky convention of the NaN points for a
// monotonically increasing step counter: a non-negative argument (default 0)
// fires once at step >= arg and disarms the point, so recovery logic gets a
// single transient fault to roll back from; a negative argument fires at
// every step >= -arg and stays armed, a persistent fault that must exhaust
// the bounded retries. Disarmed cost: one atomic load.
func FireAt(point string, step int) bool {
	arg, ok := Arg(point)
	if !ok {
		return false
	}
	n, err := strconv.Atoi(arg)
	if err != nil {
		n = 0
	}
	if n >= 0 {
		if step >= n {
			Clear(point)
			return true
		}
		return false
	}
	return step >= -n
}

// ArgInt returns the point's argument as an int: def when the point is
// disarmed or the argument is empty or malformed.
func ArgInt(point string, def int) int {
	arg, ok := Arg(point)
	if !ok || arg == "" {
		return def
	}
	n, err := strconv.Atoi(arg)
	if err != nil {
		return def
	}
	return n
}
