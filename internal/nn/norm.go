package nn

import (
	"math"

	"ldmo/internal/tensor"
)

// BatchNorm2D normalizes each channel over (N, H, W) with learnable scale
// and shift, tracking running statistics for inference.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate (PyTorch-style, 0.1)

	gamma, beta          *Param
	runMean, runVar      *Param // NoGrad tracked state
	xhat                 []float64
	invStd, batchMean    []float64
	in                   *tensor.Tensor
	out, gin             *tensor.Tensor
	lastTrain            bool
	cachedPerChannelSize int
}

// NewBatchNorm2D builds a batch-norm layer for c channels (gamma=1, beta=0,
// running variance 1).
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{C: c, Eps: 1e-5, Momentum: 0.1}
	bn.gamma = newParam("bn.gamma", c)
	bn.beta = newParam("bn.beta", c)
	bn.runMean = newStateParam("bn.running_mean", c)
	bn.runVar = newStateParam("bn.running_var", c)
	for i := 0; i < c; i++ {
		bn.gamma.Data[i] = 1
		bn.runVar.Data[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.C != bn.C {
		panic("nn: batchnorm channel mismatch")
	}
	bn.in = x
	bn.lastTrain = train
	hw := x.H * x.W
	m := x.N * hw
	bn.cachedPerChannelSize = m
	bn.out = tensor.Ensure(bn.out, x.N, x.C, x.H, x.W)
	out := bn.out
	bn.xhat = ensureF(bn.xhat, x.Len())
	bn.invStd = ensureF(bn.invStd, bn.C)
	bn.batchMean = ensureF(bn.batchMean, bn.C)
	for c := 0; c < bn.C; c++ {
		var mean, varv float64
		if train {
			for n := 0; n < x.N; n++ {
				base := (n*x.C + c) * hw
				for i := 0; i < hw; i++ {
					mean += x.Data[base+i]
				}
			}
			mean /= float64(m)
			for n := 0; n < x.N; n++ {
				base := (n*x.C + c) * hw
				for i := 0; i < hw; i++ {
					d := x.Data[base+i] - mean
					varv += d * d
				}
			}
			varv /= float64(m)
			bn.runMean.Data[c] = (1-bn.Momentum)*bn.runMean.Data[c] + bn.Momentum*mean
			// Unbiased variance for the running estimate, per the
			// PyTorch convention.
			unbiased := varv
			if m > 1 {
				unbiased = varv * float64(m) / float64(m-1)
			}
			bn.runVar.Data[c] = (1-bn.Momentum)*bn.runVar.Data[c] + bn.Momentum*unbiased
		} else {
			mean = bn.runMean.Data[c]
			varv = bn.runVar.Data[c]
		}
		inv := 1 / math.Sqrt(varv+bn.Eps)
		bn.invStd[c] = inv
		bn.batchMean[c] = mean
		g, b := bn.gamma.Data[c], bn.beta.Data[c]
		for n := 0; n < x.N; n++ {
			base := (n*x.C + c) * hw
			for i := 0; i < hw; i++ {
				xh := (x.Data[base+i] - mean) * inv
				bn.xhat[base+i] = xh
				out.Data[base+i] = g*xh + b
			}
		}
	}
	return out
}

// Backward implements Layer. The training-mode gradient accounts for the
// dependence of the batch statistics on the input.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := bn.in
	hw := x.H * x.W
	m := float64(bn.cachedPerChannelSize)
	bn.gin = tensor.Ensure(bn.gin, x.N, x.C, x.H, x.W)
	gin := bn.gin
	for c := 0; c < bn.C; c++ {
		g := bn.gamma.Data[c]
		inv := bn.invStd[c]
		var sumDy, sumDyXhat float64
		for n := 0; n < x.N; n++ {
			base := (n*x.C + c) * hw
			for i := 0; i < hw; i++ {
				dy := grad.Data[base+i]
				sumDy += dy
				sumDyXhat += dy * bn.xhat[base+i]
			}
		}
		bn.beta.Grad[c] += sumDy
		bn.gamma.Grad[c] += sumDyXhat
		if bn.lastTrain {
			for n := 0; n < x.N; n++ {
				base := (n*x.C + c) * hw
				for i := 0; i < hw; i++ {
					dy := grad.Data[base+i]
					xh := bn.xhat[base+i]
					gin.Data[base+i] = g * inv / m * (m*dy - sumDy - xh*sumDyXhat)
				}
			}
		} else {
			// Inference-mode stats are constants.
			for n := 0; n < x.N; n++ {
				base := (n*x.C + c) * hw
				for i := 0; i < hw; i++ {
					gin.Data[base+i] = grad.Data[base+i] * g * inv
				}
			}
		}
	}
	return gin
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param {
	return []*Param{bn.gamma, bn.beta, bn.runMean, bn.runVar}
}
