package nn

import "ldmo/internal/tensor"

// ReLU is the rectified linear activation. Its output, gradient, and mask
// buffers are cached so both passes are allocation-free at steady state.
type ReLU struct {
	mask []bool
	out  *tensor.Tensor
	gin  *tensor.Tensor
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.out = tensor.Ensure(r.out, x.N, x.C, x.H, x.W)
	r.mask = ensureB(r.mask, x.Len())
	for i, v := range x.Data {
		if v > 0 {
			r.out.Data[i] = v
			r.mask[i] = true
		} else {
			r.out.Data[i] = 0
			r.mask[i] = false
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.gin = tensor.Ensure(r.gin, grad.N, grad.C, grad.H, grad.W)
	for i, g := range grad.Data {
		if r.mask[i] {
			r.gin.Data[i] = g
		} else {
			r.gin.Data[i] = 0
		}
	}
	return r.gin
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }
