package nn

import "ldmo/internal/tensor"

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.NewLike(x)
	if len(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	gin := tensor.NewLike(grad)
	for i, g := range grad.Data {
		if r.mask[i] {
			gin.Data[i] = g
		}
	}
	return gin
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }
