package nn

import (
	"fmt"
	"math/rand"

	"ldmo/internal/tensor"
)

// Conv2D is a square-kernel 2-D convolution implemented as im2col + matmul.
// ResNet-style convolutions carry no bias (batch norm follows them); set
// withBias for standalone use.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int

	weight *Param // OutC x (InC*K*K)
	bias   *Param // OutC, optional

	// forward cache
	in   *tensor.Tensor
	cols [][]float64 // per batch item
	geom tensor.ConvGeom
}

// NewConv2D builds a convolution layer with He-initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int, withBias bool) *Conv2D {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid conv %d->%d k%d s%d p%d", inC, outC, k, stride, pad))
	}
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad}
	c.weight = newParam("conv.weight", outC*inC*k*k)
	heInit(rng, c.weight.Data, inC*k*k)
	if withBias {
		c.bias = newParam("conv.bias", outC)
	}
	return c
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.C != c.InC {
		panic(fmt.Sprintf("nn: conv expects %d channels, got %s", c.InC, x.ShapeString()))
	}
	c.in = x
	c.geom = tensor.ConvGeom{InC: c.InC, InH: x.H, InW: x.W, K: c.K, Stride: c.Stride, Pad: c.Pad}
	oh, ow := c.geom.OutH(), c.geom.OutW()
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv output empty for input %s", x.ShapeString()))
	}
	out := tensor.New(x.N, c.OutC, oh, ow)
	ck := c.InC * c.K * c.K
	cols := oh * ow
	if cap(c.cols) < x.N {
		c.cols = make([][]float64, x.N)
	}
	c.cols = c.cols[:x.N]
	imgLen := c.InC * x.H * x.W
	outLen := c.OutC * cols
	for n := 0; n < x.N; n++ {
		if len(c.cols[n]) < ck*cols {
			c.cols[n] = make([]float64, ck*cols)
		}
		col := c.cols[n]
		tensor.Im2Col(x.Data[n*imgLen:(n+1)*imgLen], c.geom, col)
		tensor.MatMul(c.weight.Data, c.OutC, ck, col, cols, out.Data[n*outLen:(n+1)*outLen])
	}
	if c.bias != nil {
		for n := 0; n < x.N; n++ {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.bias.Data[oc]
				base := n*outLen + oc*cols
				for i := 0; i < cols; i++ {
					out.Data[base+i] += b
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.in
	oh, ow := c.geom.OutH(), c.geom.OutW()
	cols := oh * ow
	ck := c.InC * c.K * c.K
	outLen := c.OutC * cols
	imgLen := c.InC * x.H * x.W

	gin := tensor.NewLike(x)
	gradW := make([]float64, len(c.weight.Data))
	gcol := make([]float64, ck*cols)
	for n := 0; n < x.N; n++ {
		g := grad.Data[n*outLen : (n+1)*outLen]
		// dW += gradOut x col^T
		tensor.MatMulABT(g, c.OutC, cols, c.cols[n], ck, gradW)
		for i := range gradW {
			c.weight.Grad[i] += gradW[i]
		}
		// dCol = W^T x gradOut, then scatter back to image space.
		tensor.MatMulATB(c.weight.Data, c.OutC, ck, g, cols, gcol)
		tensor.Col2Im(gcol, c.geom, gin.Data[n*imgLen:(n+1)*imgLen])
		if c.bias != nil {
			for oc := 0; oc < c.OutC; oc++ {
				s := 0.0
				for i := 0; i < cols; i++ {
					s += g[oc*cols+i]
				}
				c.bias.Grad[oc] += s
			}
		}
	}
	return gin
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.bias != nil {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}
