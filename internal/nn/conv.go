package nn

import (
	"fmt"
	"math/rand"

	"ldmo/internal/tensor"
)

// Conv2D is a square-kernel 2-D convolution implemented as whole-batch
// im2col + one GEMM per pass: the column matrix holds every image's
// expansion side by side ((InC*K*K) x (N*OH*OW)), so each forward is a
// single weight x columns product instead of N small ones, and each
// backward is one A x B^T for dW plus one A^T x B for the column gradient.
// ResNet-style convolutions carry no bias (batch norm follows them); set
// withBias for standalone use.
//
// All working buffers (column matrix, GEMM output, activations, gradients)
// are cached on the layer and reused, so Forward and Backward are
// allocation-free at steady state.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int

	weight *Param // OutC x (InC*K*K)
	bias   *Param // OutC, optional

	// cached working set, grown once to steady-state size
	in      *tensor.Tensor
	geom    tensor.ConvGeom
	col     []float64 // (InC*K*K) x (N*OH*OW) whole-batch column matrix
	gemmOut []float64 // OutC x (N*OH*OW) forward product, pre-permute
	gbuf    []float64 // OutC x (N*OH*OW) permuted output gradient
	gcol    []float64 // column-space gradient
	gradW   []float64 // per-pass dW before accumulation into weight.Grad
	out     *tensor.Tensor
	gin     *tensor.Tensor
}

// NewConv2D builds a convolution layer with He-initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int, withBias bool) *Conv2D {
	if inC <= 0 || outC <= 0 || k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid conv %d->%d k%d s%d p%d", inC, outC, k, stride, pad))
	}
	c := &Conv2D{InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad}
	c.weight = newParam("conv.weight", outC*inC*k*k)
	heInit(rng, c.weight.Data, inC*k*k)
	if withBias {
		c.bias = newParam("conv.bias", outC)
	}
	return c
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.C != c.InC {
		panic(fmt.Sprintf("nn: conv expects %d channels, got %s", c.InC, x.ShapeString()))
	}
	c.in = x
	c.geom = tensor.ConvGeom{InC: c.InC, InH: x.H, InW: x.W, K: c.K, Stride: c.Stride, Pad: c.Pad}
	oh, ow := c.geom.OutH(), c.geom.OutW()
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv output empty for input %s", x.ShapeString()))
	}
	ck := c.InC * c.K * c.K
	cols := oh * ow
	bcols := x.N * cols

	c.col = ensureF(c.col, ck*bcols)
	tensor.Im2ColBatch(x.Data, x.N, c.geom, c.col)
	c.gemmOut = ensureF(c.gemmOut, c.OutC*bcols)
	tensor.MatMul(c.weight.Data, c.OutC, ck, c.col, bcols, c.gemmOut)

	// Permute OutC x (N*cols) back to NCHW, fusing the bias add.
	c.out = tensor.Ensure(c.out, x.N, c.OutC, oh, ow)
	outLen := c.OutC * cols
	for oc := 0; oc < c.OutC; oc++ {
		b := 0.0
		if c.bias != nil {
			b = c.bias.Data[oc]
		}
		src := c.gemmOut[oc*bcols : (oc+1)*bcols]
		for n := 0; n < x.N; n++ {
			dst := c.out.Data[n*outLen+oc*cols : n*outLen+(oc+1)*cols]
			s := src[n*cols : (n+1)*cols]
			if c.bias != nil {
				for i, v := range s {
					dst[i] = v + b
				}
			} else {
				copy(dst, s)
			}
		}
	}
	return c.out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := c.in
	oh, ow := c.geom.OutH(), c.geom.OutW()
	cols := oh * ow
	ck := c.InC * c.K * c.K
	bcols := x.N * cols
	outLen := c.OutC * cols

	// Permute the NCHW output gradient to OutC x (N*cols) to match the
	// column matrix, then take both backward products in one GEMM each.
	c.gbuf = ensureF(c.gbuf, c.OutC*bcols)
	for oc := 0; oc < c.OutC; oc++ {
		dst := c.gbuf[oc*bcols : (oc+1)*bcols]
		for n := 0; n < x.N; n++ {
			copy(dst[n*cols:(n+1)*cols], grad.Data[n*outLen+oc*cols:n*outLen+(oc+1)*cols])
		}
	}

	// dW = gradOut x col^T over the whole batch at once.
	c.gradW = ensureF(c.gradW, len(c.weight.Data))
	tensor.MatMulABT(c.gbuf, c.OutC, bcols, c.col, ck, c.gradW)
	for i, g := range c.gradW {
		c.weight.Grad[i] += g
	}

	// dCol = W^T x gradOut, scattered back to image space per batch item.
	c.gcol = ensureF(c.gcol, ck*bcols)
	tensor.MatMulATB(c.weight.Data, c.OutC, ck, c.gbuf, bcols, c.gcol)
	c.gin = tensor.Ensure(c.gin, x.N, x.C, x.H, x.W)
	tensor.Col2ImBatch(c.gcol, x.N, c.geom, c.gin.Data)

	if c.bias != nil {
		for oc := 0; oc < c.OutC; oc++ {
			s := 0.0
			row := c.gbuf[oc*bcols : (oc+1)*bcols]
			for _, g := range row {
				s += g
			}
			c.bias.Grad[oc] += s
		}
	}
	return c.gin
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.bias != nil {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}
