package nn

import "math"

// FiniteSlice reports whether every element of xs is finite (no NaN, no
// ±Inf). The training loop gates optimizer updates on it so one poisoned
// gradient cannot leak into the weights.
func FiniteSlice(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// GradsFinite reports whether every gradient-bearing parameter carries a
// finite gradient.
func GradsFinite(params []*Param) bool {
	for _, p := range params {
		if p.NoGrad {
			continue
		}
		if !FiniteSlice(p.Grad) {
			return false
		}
	}
	return true
}

// ParamSnapshot is a reusable deep copy of a parameter set's values —
// including NoGrad entries, i.e. the BatchNorm running statistics, which a
// training forward pass mutates before any loss is seen. The NaN-safe
// training loop saves into one snapshot before every batch and restores it
// when the batch produces a non-finite loss or gradient, so a poisoned
// forward pass leaves no trace in the model. Buffers are allocated once.
type ParamSnapshot struct {
	data [][]float64
}

// NewParamSnapshot sizes a snapshot for the parameter set.
func NewParamSnapshot(params []*Param) *ParamSnapshot {
	s := &ParamSnapshot{data: make([][]float64, len(params))}
	for i, p := range params {
		s.data[i] = make([]float64, len(p.Data))
	}
	return s
}

// Save copies the current parameter values into the snapshot. The parameter
// set must be the one the snapshot was sized for.
func (s *ParamSnapshot) Save(params []*Param) {
	if len(params) != len(s.data) {
		panic("nn: ParamSnapshot used with a different parameter set")
	}
	for i, p := range params {
		copy(s.data[i], p.Data)
	}
}

// Restore copies the snapshot back into the parameters.
func (s *ParamSnapshot) Restore(params []*Param) {
	if len(params) != len(s.data) {
		panic("nn: ParamSnapshot used with a different parameter set")
	}
	for i, p := range params {
		copy(p.Data, s.data[i])
	}
}
