// Package nn is a from-scratch neural-network library sufficient to build
// and train the paper's printability predictor: convolutions (im2col),
// batch normalization, ReLU, pooling, linear layers, residual basic blocks,
// MAE/MSE losses and the Adam optimizer, all with hand-written backward
// passes verified against numerical gradients in the tests.
//
// It replaces the PyTorch/GPU stack the paper trains ResNet-18 on; see
// DESIGN.md, substitution table row 2. Layers are single-threaded and cache
// their forward activations, so a layer instance serves one forward/backward
// pair at a time.
package nn

import (
	"math"
	"math/rand"

	"ldmo/internal/tensor"
)

// Param is one learnable (or tracked) parameter vector of a layer.
type Param struct {
	Name string
	Data []float64
	Grad []float64
	// NoGrad marks tracked state (batch-norm running statistics) that is
	// serialized with the model but skipped by the optimizer.
	NoGrad bool
}

func newParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float64, n), Grad: make([]float64, n)}
}

func newStateParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float64, n), NoGrad: true}
}

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward consumes x and returns the activation. train selects
	// training behaviour (batch statistics in BatchNorm). The layer may
	// retain references to x and its output for Backward.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input), having
	// accumulated parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's parameters, tracked state included.
	Params() []*Param
}

// ensureF returns s resized to n elements, reallocating only on capacity
// growth. Contents are unspecified; callers overwrite or zero what they
// read. Layers use it (with tensor.Ensure) to keep Forward/Backward
// allocation-free once buffers reach their steady-state size.
func ensureF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func ensureI(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

func ensureB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// heInit fills w with Kaiming-normal values for fanIn inputs.
func heInit(rng *rand.Rand, w []float64, fanIn int) {
	std := math.Sqrt(2 / float64(fanIn))
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
}

// ZeroGrads clears the gradient buffers of all params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}
