package nn

import (
	"math"

	"ldmo/internal/tensor"
)

// Loss computes a scalar training objective and its gradient with respect to
// the predictions.
type Loss interface {
	// Eval returns the loss value and dL/dpred. pred and target must have
	// identical shapes. The gradient tensor is owned by the loss and reused
	// across calls.
	Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor)
}

// MAE is the mean absolute error, the paper's Eq. 10 cost function chosen
// for robustness against label noise from the ILT scoring.
type MAE struct {
	grad *tensor.Tensor
}

// Eval implements Loss. The subgradient at zero is 0.
func (l *MAE) Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic("nn: MAE shape mismatch")
	}
	l.grad = tensor.Ensure(l.grad, pred.N, pred.C, pred.H, pred.W)
	grad := l.grad
	n := float64(pred.Len())
	sum := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		sum += math.Abs(d)
		switch {
		case d > 0:
			grad.Data[i] = 1 / n
		case d < 0:
			grad.Data[i] = -1 / n
		default:
			grad.Data[i] = 0
		}
	}
	return sum / n, grad
}

// MSE is the mean squared error, used as the ablation alternative to MAE.
type MSE struct {
	grad *tensor.Tensor
}

// Eval implements Loss.
func (l *MSE) Eval(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic("nn: MSE shape mismatch")
	}
	l.grad = tensor.Ensure(l.grad, pred.N, pred.C, pred.H, pred.W)
	grad := l.grad
	n := float64(pred.Len())
	sum := 0.0
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		sum += d * d
		grad.Data[i] = 2 * d / n
	}
	return sum / n, grad
}
