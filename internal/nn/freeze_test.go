package nn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"ldmo/internal/tensor"
)

// freezeTestNet is a reduced predictor topology: stem conv+BN, pooling, two
// residual blocks (one with a projection shortcut), head.
func freezeTestNet(rng *rand.Rand) *Network {
	return NewNetwork(
		NewConv2D(rng, 1, 4, 7, 2, 3, false),
		NewBatchNorm2D(4),
		NewReLU(),
		NewMaxPool2D(3, 2, 1),
		NewBasicBlock(rng, 4, 4, 1),
		NewBasicBlock(rng, 4, 8, 2),
		NewGlobalAvgPool(),
		NewLinear(rng, 8, 16),
		NewReLU(),
		NewLinear(rng, 16, 1),
	)
}

func randBatch(rng *rand.Rand, n, size int) *tensor.Tensor {
	x := tensor.New(n, 1, size, size)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	return x
}

// TestFreezeMatchesInferenceForward checks the BN-folding math: the frozen
// network reproduces the source network's inference outputs to rounding
// error (folding rescales weights instead of activations, so bitwise
// equality is not expected — 1e-9 relative is the contract).
func TestFreezeMatchesInferenceForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := freezeTestNet(rng)
	// Move the running statistics off their init values so the fold has
	// non-trivial means and variances to absorb.
	net.Forward(randBatch(rng, 4, 32), true)
	net.Forward(randBatch(rng, 4, 32), true)

	x := randBatch(rng, 3, 32)
	want := net.Forward(x, false)
	frozen := net.Freeze()
	got := frozen.Forward(x, false)
	if !got.SameShape(want) {
		t.Fatalf("shape %s vs %s", got.ShapeString(), want.ShapeString())
	}
	for i := range want.Data {
		if diff := math.Abs(got.Data[i] - want.Data[i]); diff > 1e-9*(math.Abs(want.Data[i])+1) {
			t.Fatalf("output %d: frozen %g vs source %g (diff %g)", i, got.Data[i], want.Data[i], diff)
		}
	}
}

// TestFreezeRemovesBatchNormParams pins the folded form: no batch-norm
// parameters or tracked statistics survive, and every conv gained a bias.
func TestFreezeRemovesBatchNormParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := freezeTestNet(rng)
	frozen := net.Freeze()
	convW, convB := 0, 0
	for _, p := range frozen.Params() {
		if strings.HasPrefix(p.Name, "bn.") {
			t.Fatalf("frozen network still has %s", p.Name)
		}
		switch p.Name {
		case "conv.weight":
			convW++
		case "conv.bias":
			convB++
		}
	}
	if convW == 0 || convW != convB {
		t.Fatalf("expected a bias per folded conv, got %d weights / %d biases", convW, convB)
	}
	if frozen.ParamCount() >= net.ParamCount() {
		t.Fatalf("frozen param count %d not below source %d", frozen.ParamCount(), net.ParamCount())
	}
}

// TestFreezeIndependence checks the frozen copy shares no state with the
// source: scribbling on the source weights must not move frozen outputs.
func TestFreezeIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := freezeTestNet(rng)
	x := randBatch(rng, 2, 32)
	frozen := net.Freeze()
	before := append([]float64(nil), frozen.Forward(x, false).Data...)
	for _, p := range net.Params() {
		for i := range p.Data {
			p.Data[i] = 999
		}
	}
	after := frozen.Forward(x, false)
	for i := range before {
		if after.Data[i] != before[i] {
			t.Fatalf("frozen output %d moved after source mutation: %g vs %g", i, after.Data[i], before[i])
		}
	}
}

// TestInferenceForwardZeroAlloc enforces the steady-state contract on the
// folded inference path: once the layer caches have grown, a forward pass
// performs no heap allocation.
func TestInferenceForwardZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops puts under the race detector")
	}
	rng := rand.New(rand.NewSource(10))
	frozen := freezeTestNet(rng).Freeze()
	x := randBatch(rng, 2, 32)
	frozen.Forward(x, false)
	frozen.Forward(x, false)
	if avg := testing.AllocsPerRun(10, func() {
		frozen.Forward(x, false)
	}); avg != 0 {
		t.Fatalf("inference forward allocates %.1f times per run", avg)
	}
}

// TestTrainStepSteadyStateAllocs enforces the same contract on a complete
// training step: forward (training mode), loss, zero-grads, backward, Adam.
func TestTrainStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops puts under the race detector")
	}
	rng := rand.New(rand.NewSource(11))
	net := freezeTestNet(rng)
	params := net.Params()
	adam := NewAdam(1e-3)
	loss := &MAE{}
	x := randBatch(rng, 4, 32)
	tgt := tensor.New(4, 1, 1, 1)
	step := func() {
		pred := net.Forward(x, true)
		_, grad := loss.Eval(pred, tgt)
		ZeroGrads(params)
		net.Backward(grad)
		adam.Step(params)
	}
	step() // grow layer caches and Adam moments
	step()
	if avg := testing.AllocsPerRun(5, step); avg != 0 {
		t.Fatalf("training step allocates %.1f times per run", avg)
	}
}
