package nn

import (
	"math"
	"testing"
)

func TestAdamPanicsOnChangedParamSet(t *testing.T) {
	a := NewAdam(0.1)
	p1 := newParam("a", 2)
	a.Step([]*Param{p1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on different param set size")
		}
	}()
	a.Step([]*Param{p1, newParam("b", 2)})
}

func TestAdamWeightDecayShrinksParams(t *testing.T) {
	// With zero gradients, weight decay alone must pull weights toward 0.
	p := newParam("w", 3)
	for i := range p.Data {
		p.Data[i] = 1
	}
	a := NewAdam(0.01)
	a.WeightDecay = 0.1
	for it := 0; it < 100; it++ {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
		a.Step([]*Param{p})
	}
	for i, v := range p.Data {
		if v >= 1 {
			t.Fatalf("param[%d] = %g did not decay", i, v)
		}
	}
}

func TestAdamBiasCorrectionFirstStep(t *testing.T) {
	// After one step with gradient g, the update magnitude is ~LR
	// regardless of g's scale (the defining Adam property).
	for _, g := range []float64{1e-4, 1, 1e4} {
		p := newParam("x", 1)
		p.Grad[0] = g
		a := NewAdam(0.05)
		a.Step([]*Param{p})
		// Eps in the denominator perturbs the size slightly for small g.
		if math.Abs(math.Abs(p.Data[0])-0.05) > 1e-4 {
			t.Fatalf("first-step size for g=%g: %g", g, p.Data[0])
		}
	}
}
