//go:build race

package nn

// raceEnabled gates the AllocsPerRun regression tests: under the race
// detector sync.Pool randomly drops puts, so the GEMM scratch pools
// allocate nondeterministically and the zero-alloc contract cannot be
// asserted.
const raceEnabled = true
