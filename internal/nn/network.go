package nn

import (
	"encoding/gob"
	"fmt"
	"io"

	"ldmo/internal/tensor"
)

// Network is a trainable stack of layers with parameter serialization.
type Network struct {
	Seq *Sequential
}

// NewNetwork wraps layers into a network.
func NewNetwork(layers ...Layer) *Network { return &Network{Seq: NewSequential(layers...)} }

// Forward implements Layer semantics at the network level.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return n.Seq.Forward(x, train)
}

// Backward propagates the loss gradient through all layers.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return n.Seq.Backward(grad)
}

// Params returns all parameters, tracked state included.
func (n *Network) Params() []*Param { return n.Seq.Params() }

// ParamCount returns the number of scalar parameters (including tracked
// batch-norm state).
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += len(p.Data)
	}
	return total
}

// savedParams is the gob wire format: parameter vectors in declaration
// order, with names and sizes for integrity checking.
type savedParams struct {
	Names []string
	Data  [][]float64
}

// SaveParams writes all parameter vectors to w with a dedicated gob encoder.
// When combining with other gob values in one stream, use EncodeParams with
// a shared encoder instead: a second decoder on a buffered reader (e.g. an
// os.File wrapped by gob) would overread and corrupt the stream.
func (n *Network) SaveParams(w io.Writer) error {
	return n.EncodeParams(gob.NewEncoder(w))
}

// EncodeParams writes all parameter vectors using an existing encoder.
func (n *Network) EncodeParams(enc *gob.Encoder) error {
	params := n.Params()
	s := savedParams{
		Names: make([]string, len(params)),
		Data:  make([][]float64, len(params)),
	}
	for i, p := range params {
		s.Names[i] = p.Name
		s.Data[i] = p.Data
	}
	return enc.Encode(s)
}

// LoadParams restores parameter vectors previously written by SaveParams
// into a network with the identical architecture.
func (n *Network) LoadParams(r io.Reader) error {
	return n.DecodeParams(gob.NewDecoder(r))
}

// DecodeParams restores parameter vectors using an existing decoder.
func (n *Network) DecodeParams(dec *gob.Decoder) error {
	var s savedParams
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("nn: decode params: %w", err)
	}
	params := n.Params()
	if len(s.Data) != len(params) {
		return fmt.Errorf("nn: parameter count mismatch: file has %d, network has %d",
			len(s.Data), len(params))
	}
	for i, p := range params {
		if s.Names[i] != p.Name || len(s.Data[i]) != len(p.Data) {
			return fmt.Errorf("nn: parameter %d mismatch: file %s[%d], network %s[%d]",
				i, s.Names[i], len(s.Data[i]), p.Name, len(p.Data))
		}
		copy(p.Data, s.Data[i])
	}
	return nil
}
