//go:build !race

package nn

const raceEnabled = false
