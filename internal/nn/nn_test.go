package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ldmo/internal/tensor"
)

// checkGradients validates a layer's analytic input and parameter gradients
// against central differences of the projected loss sum(w * out).
func checkGradients(t *testing.T, l Layer, x *tensor.Tensor, train bool, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	out := l.Forward(x, train)
	w := make([]float64, out.Len())
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	loss := func() float64 {
		o := l.Forward(x, train)
		s := 0.0
		for i, v := range o.Data {
			s += w[i] * v
		}
		return s
	}
	ZeroGrads(l.Params())
	gradOut := tensor.NewLike(out)
	copy(gradOut.Data, w)
	gin := l.Backward(gradOut)

	const eps = 1e-6
	// Input gradient at a few probes.
	probes := []int{0, x.Len() / 2, x.Len() - 1}
	for _, idx := range probes {
		save := x.Data[idx]
		x.Data[idx] = save + eps
		up := loss()
		x.Data[idx] = save - eps
		down := loss()
		x.Data[idx] = save
		num := (up - down) / (2 * eps)
		if math.Abs(num-gin.Data[idx]) > tol*(math.Abs(num)+1) {
			t.Fatalf("input grad[%d]: analytic %g, numeric %g", idx, gin.Data[idx], num)
		}
	}
	// Parameter gradients at a few probes per param.
	for _, p := range l.Params() {
		if p.NoGrad {
			continue
		}
		for _, idx := range []int{0, len(p.Data) / 2, len(p.Data) - 1} {
			save := p.Data[idx]
			p.Data[idx] = save + eps
			up := loss()
			p.Data[idx] = save - eps
			down := loss()
			p.Data[idx] = save
			num := (up - down) / (2 * eps)
			if math.Abs(num-p.Grad[idx]) > tol*(math.Abs(num)+1) {
				t.Fatalf("%s grad[%d]: analytic %g, numeric %g", p.Name, idx, p.Grad[idx], num)
			}
		}
	}
}

func randTensor(rng *rand.Rand, n, c, h, w int) *tensor.Tensor {
	x := tensor.New(n, c, h, w)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestConvGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv2D(rng, 2, 3, 3, 1, 1, true)
	checkGradients(t, l, randTensor(rng, 2, 2, 5, 5), true, 1e-5)
}

func TestConvStridedGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewConv2D(rng, 3, 4, 3, 2, 1, false)
	checkGradients(t, l, randTensor(rng, 2, 3, 7, 7), true, 1e-5)
}

func TestConvShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewConv2D(rng, 1, 8, 7, 2, 3, false)
	out := l.Forward(randTensor(rng, 1, 1, 64, 64), false)
	if out.C != 8 || out.H != 32 || out.W != 32 {
		t.Fatalf("conv1 out %s", out.ShapeString())
	}
}

func TestConvPanicsOnChannelMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewConv2D(rng, 2, 3, 3, 1, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Forward(randTensor(rng, 1, 3, 5, 5), false)
}

func TestBatchNormGradientsTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewBatchNorm2D(3)
	checkGradients(t, l, randTensor(rng, 4, 3, 4, 4), true, 1e-4)
}

func TestBatchNormGradientsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewBatchNorm2D(2)
	// Prime running stats with one training pass.
	l.Forward(randTensor(rng, 4, 2, 3, 3), true)
	checkGradients(t, l, randTensor(rng, 2, 2, 3, 3), false, 1e-5)
}

func TestBatchNormNormalizesTrainBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewBatchNorm2D(2)
	x := randTensor(rng, 8, 2, 4, 4)
	for i := range x.Data {
		x.Data[i] = x.Data[i]*3 + 5
	}
	out := l.Forward(x, true)
	for c := 0; c < 2; c++ {
		var mean, varv float64
		cnt := 0
		for n := 0; n < out.N; n++ {
			for i := 0; i < 16; i++ {
				mean += out.At(n, c, i/4, i%4)
				cnt++
			}
		}
		mean /= float64(cnt)
		for n := 0; n < out.N; n++ {
			for i := 0; i < 16; i++ {
				d := out.At(n, c, i/4, i%4) - mean
				varv += d * d
			}
		}
		varv /= float64(cnt)
		if math.Abs(mean) > 1e-9 || math.Abs(varv-1) > 1e-3 {
			t.Fatalf("channel %d normalized to mean %g var %g", c, mean, varv)
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewBatchNorm2D(1)
	for i := 0; i < 200; i++ {
		x := randTensor(rng, 8, 1, 4, 4)
		for j := range x.Data {
			x.Data[j] = x.Data[j]*2 + 3 // mean 3, var 4
		}
		l.Forward(x, true)
	}
	if math.Abs(l.runMean.Data[0]-3) > 0.3 {
		t.Fatalf("running mean = %g, want ~3", l.runMean.Data[0])
	}
	if math.Abs(l.runVar.Data[0]-4) > 0.8 {
		t.Fatalf("running var = %g, want ~4", l.runVar.Data[0])
	}
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Keep values away from 0 so finite differences are valid.
	x := randTensor(rng, 2, 2, 3, 3)
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.1 {
			x.Data[i] = 0.5
		}
	}
	checkGradients(t, NewReLU(), x, true, 1e-6)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewMaxPool2D(3, 2, 1)
	// Distinct values so the argmax is stable under perturbation.
	x := tensor.New(1, 2, 6, 6)
	perm := rng.Perm(x.Len())
	for i := range x.Data {
		x.Data[i] = float64(perm[i])
	}
	checkGradients(t, l, x, true, 1e-6)
}

func TestMaxPoolShape(t *testing.T) {
	l := NewMaxPool2D(3, 2, 1)
	out := l.Forward(tensor.New(1, 1, 32, 32), false)
	if out.H != 16 || out.W != 16 {
		t.Fatalf("maxpool out %s", out.ShapeString())
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	checkGradients(t, NewGlobalAvgPool(), randTensor(rng, 2, 3, 4, 4), true, 1e-6)
}

func TestGlobalAvgPoolValue(t *testing.T) {
	x := tensor.New(1, 1, 2, 2)
	copy(x.Data, []float64{1, 2, 3, 6})
	out := NewGlobalAvgPool().Forward(x, false)
	if out.Data[0] != 3 {
		t.Fatalf("avg = %g", out.Data[0])
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLinear(rng, 12, 5)
	checkGradients(t, l, randTensor(rng, 3, 3, 2, 2), true, 1e-5)
}

func TestBasicBlockGradientsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b := NewBasicBlock(rng, 4, 4, 1)
	checkGradients(t, b, randTensor(rng, 2, 4, 5, 5), true, 1e-4)
}

func TestBasicBlockGradientsDownsample(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := NewBasicBlock(rng, 3, 6, 2)
	checkGradients(t, b, randTensor(rng, 2, 3, 6, 6), true, 1e-4)
}

func TestBasicBlockShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	b := NewBasicBlock(rng, 8, 16, 2)
	out := b.Forward(randTensor(rng, 1, 8, 16, 16), false)
	if out.C != 16 || out.H != 8 || out.W != 8 {
		t.Fatalf("block out %s", out.ShapeString())
	}
	if b.downConv == nil {
		t.Fatal("downsample path missing")
	}
	if nb := NewBasicBlock(rng, 8, 8, 1); nb.downConv != nil {
		t.Fatal("identity block got a downsample path")
	}
}

func TestMAELoss(t *testing.T) {
	pred := tensor.New(1, 1, 1, 4)
	tgt := tensor.New(1, 1, 1, 4)
	copy(pred.Data, []float64{1, 2, 3, 4})
	copy(tgt.Data, []float64{2, 2, 1, 4})
	v, grad := (&MAE{}).Eval(pred, tgt)
	if math.Abs(v-(1+0+2+0)/4.0) > 1e-12 {
		t.Fatalf("MAE = %g", v)
	}
	want := []float64{-0.25, 0, 0.25, 0}
	for i := range want {
		if grad.Data[i] != want[i] {
			t.Fatalf("MAE grad = %v", grad.Data)
		}
	}
}

func TestMSELoss(t *testing.T) {
	pred := tensor.New(1, 1, 1, 2)
	tgt := tensor.New(1, 1, 1, 2)
	copy(pred.Data, []float64{3, 0})
	copy(tgt.Data, []float64{1, 0})
	v, grad := (&MSE{}).Eval(pred, tgt)
	if v != 2 {
		t.Fatalf("MSE = %g", v)
	}
	if grad.Data[0] != 2 || grad.Data[1] != 0 {
		t.Fatalf("MSE grad = %v", grad.Data)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (x - 3)^2 elementwise.
	p := newParam("x", 4)
	adam := NewAdam(0.1)
	for it := 0; it < 500; it++ {
		for i := range p.Data {
			p.Grad[i] = 2 * (p.Data[i] - 3)
		}
		adam.Step([]*Param{p})
	}
	for i, v := range p.Data {
		if math.Abs(v-3) > 1e-2 {
			t.Fatalf("param[%d] = %g, want 3", i, v)
		}
	}
}

func TestAdamSkipsNoGrad(t *testing.T) {
	p := newStateParam("state", 2)
	p.Data[0] = 7
	adam := NewAdam(0.1)
	adam.Step([]*Param{p})
	if p.Data[0] != 7 {
		t.Fatal("Adam modified NoGrad param")
	}
}

func TestNetworkTrainsSmallRegression(t *testing.T) {
	// A tiny conv net must fit a linear function of the input mean.
	rng := rand.New(rand.NewSource(15))
	net := NewNetwork(
		NewConv2D(rng, 1, 4, 3, 1, 1, false),
		NewBatchNorm2D(4),
		NewReLU(),
		NewGlobalAvgPool(),
		NewLinear(rng, 4, 1),
	)
	adam := NewAdam(0.01)
	var lastLoss float64
	for it := 0; it < 150; it++ {
		x := randTensor(rng, 8, 1, 8, 8)
		tgt := tensor.New(8, 1, 1, 1)
		for n := 0; n < 8; n++ {
			s := 0.0
			for i := 0; i < 64; i++ {
				s += x.Data[n*64+i]
			}
			tgt.Data[n] = s / 64 * 2
		}
		pred := net.Forward(x, true)
		loss, grad := (&MSE{}).Eval(pred, tgt)
		ZeroGrads(net.Params())
		net.Backward(grad)
		adam.Step(net.Params())
		lastLoss = loss
	}
	if lastLoss > 0.05 {
		t.Fatalf("training did not converge: loss %g", lastLoss)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	mk := func() *Network {
		r := rand.New(rand.NewSource(17))
		return NewNetwork(
			NewConv2D(r, 1, 2, 3, 1, 1, false),
			NewBatchNorm2D(2),
			NewReLU(),
			NewGlobalAvgPool(),
			NewLinear(r, 2, 1),
		)
	}
	a := mk()
	// Perturb and advance running stats so state differs from init.
	a.Forward(randTensor(rng, 4, 1, 6, 6), true)
	for _, p := range a.Params() {
		for i := range p.Data {
			p.Data[i] += rng.NormFloat64() * 0.01
		}
	}
	var buf bytes.Buffer
	if err := a.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	b := mk()
	if err := b.LoadParams(&buf); err != nil {
		t.Fatal(err)
	}
	x := randTensor(rng, 2, 1, 6, 6)
	pa := a.Forward(x, false)
	pb := b.Forward(x, false)
	for i := range pa.Data {
		if pa.Data[i] != pb.Data[i] {
			t.Fatal("loaded network disagrees with saved network")
		}
	}
}

func TestLoadParamsRejectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := NewNetwork(NewLinear(rng, 4, 2))
	var buf bytes.Buffer
	if err := a.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewNetwork(NewLinear(rng, 4, 3))
	if err := b.LoadParams(&buf); err == nil {
		t.Fatal("expected mismatch error")
	}
	c := NewNetwork(NewLinear(rng, 4, 2), NewReLU(), NewLinear(rng, 2, 1))
	buf.Reset()
	if err := a.SaveParams(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.LoadParams(&buf); err == nil {
		t.Fatal("expected count mismatch error")
	}
}

func TestParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewNetwork(NewLinear(rng, 3, 2))
	if got := net.ParamCount(); got != 3*2+2 {
		t.Fatalf("param count = %d", got)
	}
}

func TestSequentialEmptyParams(t *testing.T) {
	if p := NewSequential(NewReLU(), NewGlobalAvgPool()).Params(); len(p) != 0 {
		t.Fatalf("stateless layers returned params: %v", p)
	}
}
