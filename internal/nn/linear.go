package nn

import (
	"fmt"
	"math/rand"

	"ldmo/internal/tensor"
)

// Linear is a fully connected layer over the flattened C*H*W features of its
// input. Its output has shape N x Out x 1 x 1. Both passes are single GEMM
// calls over the whole batch, with cached buffers so they are
// allocation-free at steady state.
type Linear struct {
	In, Out int

	weight *Param // Out x In
	bias   *Param // Out

	in  *tensor.Tensor
	out *tensor.Tensor
	gin *tensor.Tensor
	dw  []float64 // per-pass dW before accumulation into weight.Grad
}

// NewLinear builds a fully connected layer with He-initialized weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid linear %d->%d", in, out))
	}
	l := &Linear{In: in, Out: out}
	l.weight = newParam("linear.weight", out*in)
	heInit(rng, l.weight.Data, in)
	l.bias = newParam("linear.bias", out)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	feat := x.C * x.H * x.W
	if feat != l.In {
		panic(fmt.Sprintf("nn: linear expects %d features, got %s", l.In, x.ShapeString()))
	}
	l.in = x
	l.out = tensor.Ensure(l.out, x.N, l.Out, 1, 1)
	// out[n,o] = sum_i x[n,i] * W[o,i]: one A x B^T over the batch.
	tensor.MatMulABT(x.Data, x.N, l.In, l.weight.Data, l.Out, l.out.Data)
	for n := 0; n < x.N; n++ {
		row := l.out.Data[n*l.Out : (n+1)*l.Out]
		for o, b := range l.bias.Data {
			row[o] += b
		}
	}
	return l.out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.in
	// db[o] = sum_n g[n,o], ascending n.
	for o := 0; o < l.Out; o++ {
		s := 0.0
		for n := 0; n < x.N; n++ {
			s += grad.Data[n*l.Out+o]
		}
		l.bias.Grad[o] += s
	}
	// dW[o,i] = sum_n g[n,o] * x[n,i]: grad^T x input in one GEMM.
	l.dw = ensureF(l.dw, l.Out*l.In)
	tensor.MatMulATB(grad.Data, x.N, l.Out, x.Data, l.In, l.dw)
	for i, g := range l.dw {
		l.weight.Grad[i] += g
	}
	// dx[n,i] = sum_o g[n,o] * W[o,i]: grad x W in one GEMM.
	l.gin = tensor.Ensure(l.gin, x.N, x.C, x.H, x.W)
	tensor.MatMul(grad.Data, x.N, l.Out, l.weight.Data, l.In, l.gin.Data)
	return l.gin
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }
