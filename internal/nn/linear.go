package nn

import (
	"fmt"
	"math/rand"

	"ldmo/internal/tensor"
)

// Linear is a fully connected layer over the flattened C*H*W features of its
// input. Its output has shape N x Out x 1 x 1.
type Linear struct {
	In, Out int

	weight *Param // Out x In
	bias   *Param // Out

	in *tensor.Tensor
}

// NewLinear builds a fully connected layer with He-initialized weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid linear %d->%d", in, out))
	}
	l := &Linear{In: in, Out: out}
	l.weight = newParam("linear.weight", out*in)
	heInit(rng, l.weight.Data, in)
	l.bias = newParam("linear.bias", out)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	feat := x.C * x.H * x.W
	if feat != l.In {
		panic(fmt.Sprintf("nn: linear expects %d features, got %s", l.In, x.ShapeString()))
	}
	l.in = x
	out := tensor.New(x.N, l.Out, 1, 1)
	for n := 0; n < x.N; n++ {
		tensor.MatMul(l.weight.Data, l.Out, l.In, x.Data[n*feat:(n+1)*feat], 1, out.Data[n*l.Out:(n+1)*l.Out])
		for o := 0; o < l.Out; o++ {
			out.Data[n*l.Out+o] += l.bias.Data[o]
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	x := l.in
	feat := l.In
	gin := tensor.NewLike(x)
	for n := 0; n < x.N; n++ {
		g := grad.Data[n*l.Out : (n+1)*l.Out]
		xi := x.Data[n*feat : (n+1)*feat]
		// dW[o,i] += g[o] * x[i]; db[o] += g[o]; dx[i] = sum_o W[o,i]*g[o].
		for o := 0; o < l.Out; o++ {
			go_ := g[o]
			l.bias.Grad[o] += go_
			wrow := l.weight.Data[o*feat : (o+1)*feat]
			gwrow := l.weight.Grad[o*feat : (o+1)*feat]
			gi := gin.Data[n*feat : (n+1)*feat]
			for i := 0; i < feat; i++ {
				gwrow[i] += go_ * xi[i]
				gi[i] += wrow[i] * go_
			}
		}
	}
	return gin
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }
