package nn

import (
	"fmt"
	"math"

	"ldmo/internal/tensor"
)

// MaxPool2D is a square max pooling layer (the ResNet stem uses 3x3/2 pad 1).
type MaxPool2D struct {
	K, Stride, Pad int

	in     *tensor.Tensor
	argmax []int // input index chosen per output element
	out    *tensor.Tensor
	gin    *tensor.Tensor
	outH   int
	outW   int
}

// NewMaxPool2D builds a max-pool layer.
func NewMaxPool2D(k, stride, pad int) *MaxPool2D {
	if k <= 0 || stride <= 0 || pad < 0 {
		panic(fmt.Sprintf("nn: invalid maxpool k%d s%d p%d", k, stride, pad))
	}
	return &MaxPool2D{K: k, Stride: stride, Pad: pad}
}

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	p.in = x
	p.outH = (x.H+2*p.Pad-p.K)/p.Stride + 1
	p.outW = (x.W+2*p.Pad-p.K)/p.Stride + 1
	p.out = tensor.Ensure(p.out, x.N, x.C, p.outH, p.outW)
	out := p.out
	p.argmax = ensureI(p.argmax, out.Len())
	oi := 0
	for n := 0; n < x.N; n++ {
		for c := 0; c < x.C; c++ {
			plane := x.Data[(n*x.C+c)*x.H*x.W:]
			for oy := 0; oy < p.outH; oy++ {
				for ox := 0; ox < p.outW; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < p.K; ky++ {
						iy := oy*p.Stride - p.Pad + ky
						if iy < 0 || iy >= x.H {
							continue
						}
						for kx := 0; kx < p.K; kx++ {
							ix := ox*p.Stride - p.Pad + kx
							if ix < 0 || ix >= x.W {
								continue
							}
							if v := plane[iy*x.W+ix]; v > best {
								best = v
								bestIdx = (n*x.C+c)*x.H*x.W + iy*x.W + ix
							}
						}
					}
					out.Data[oi] = best
					p.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.gin = tensor.Ensure(p.gin, p.in.N, p.in.C, p.in.H, p.in.W)
	gin := p.gin
	for i := range gin.Data {
		gin.Data[i] = 0
	}
	for i := 0; i < grad.Len(); i++ {
		if idx := p.argmax[i]; idx >= 0 {
			gin.Data[idx] += grad.Data[i]
		}
	}
	return gin
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool reduces each channel plane to its mean (N,C,H,W -> N,C,1,1).
type GlobalAvgPool struct {
	inH, inW int
	out      *tensor.Tensor
	gin      *tensor.Tensor
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	p.inH, p.inW = x.H, x.W
	p.out = tensor.Ensure(p.out, x.N, x.C, 1, 1)
	out := p.out
	hw := x.H * x.W
	for nc := 0; nc < x.N*x.C; nc++ {
		s := 0.0
		for i := 0; i < hw; i++ {
			s += x.Data[nc*hw+i]
		}
		out.Data[nc] = s / float64(hw)
	}
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.gin = tensor.Ensure(p.gin, grad.N, grad.C, p.inH, p.inW)
	gin := p.gin
	hw := p.inH * p.inW
	inv := 1 / float64(hw)
	for nc := 0; nc < grad.N*grad.C; nc++ {
		g := grad.Data[nc] * inv
		for i := 0; i < hw; i++ {
			gin.Data[nc*hw+i] = g
		}
	}
	return gin
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }
