package nn

import (
	"math/rand"

	"ldmo/internal/tensor"
)

// BasicBlock is the ResNet-18 residual unit: two 3x3 conv+BN stages with an
// identity (or 1x1-conv downsample) skip connection and ReLU activations.
// The batch-norm fields are nil in frozen (inference-folded) blocks, where
// their statistics have been absorbed into the preceding conv biases.
type BasicBlock struct {
	conv1 *Conv2D
	bn1   *BatchNorm2D
	relu1 *ReLU
	conv2 *Conv2D
	bn2   *BatchNorm2D

	// downsample path, nil for identity skips
	downConv *Conv2D
	downBN   *BatchNorm2D

	// forward cache for the final ReLU and the skip add
	sumMask []bool
	out     *tensor.Tensor
	gsum    *tensor.Tensor
}

// NewBasicBlock builds a residual block mapping inC channels to outC with
// the given stride on the first convolution. A projection shortcut is added
// automatically when the shapes differ.
func NewBasicBlock(rng *rand.Rand, inC, outC, stride int) *BasicBlock {
	b := &BasicBlock{
		conv1: NewConv2D(rng, inC, outC, 3, stride, 1, false),
		bn1:   NewBatchNorm2D(outC),
		relu1: NewReLU(),
		conv2: NewConv2D(rng, outC, outC, 3, 1, 1, false),
		bn2:   NewBatchNorm2D(outC),
	}
	if stride != 1 || inC != outC {
		b.downConv = NewConv2D(rng, inC, outC, 1, stride, 0, false)
		b.downBN = NewBatchNorm2D(outC)
	}
	return b
}

// Forward implements Layer.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.conv1.Forward(x, train)
	if b.bn1 != nil {
		main = b.bn1.Forward(main, train)
	}
	main = b.relu1.Forward(main, train)
	main = b.conv2.Forward(main, train)
	if b.bn2 != nil {
		main = b.bn2.Forward(main, train)
	}

	skip := x
	if b.downConv != nil {
		skip = b.downConv.Forward(x, train)
		if b.downBN != nil {
			skip = b.downBN.Forward(skip, train)
		}
	}
	// out = relu(main + skip); record the ReLU mask for backward.
	b.out = tensor.Ensure(b.out, main.N, main.C, main.H, main.W)
	out := b.out
	b.sumMask = ensureB(b.sumMask, main.Len())
	for i := range main.Data {
		s := main.Data[i] + skip.Data[i]
		if s > 0 {
			out.Data[i] = s
			b.sumMask[i] = true
		} else {
			out.Data[i] = 0
			b.sumMask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (b *BasicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// Through the final ReLU.
	b.gsum = tensor.Ensure(b.gsum, grad.N, grad.C, grad.H, grad.W)
	g := b.gsum
	for i := range grad.Data {
		if b.sumMask[i] {
			g.Data[i] = grad.Data[i]
		} else {
			g.Data[i] = 0
		}
	}
	// Main path.
	gm := g
	if b.bn2 != nil {
		gm = b.bn2.Backward(gm)
	}
	gm = b.conv2.Backward(gm)
	gm = b.relu1.Backward(gm)
	if b.bn1 != nil {
		gm = b.bn1.Backward(gm)
	}
	gm = b.conv1.Backward(gm)
	// Skip path.
	var gs *tensor.Tensor
	if b.downConv != nil {
		gs = g
		if b.downBN != nil {
			gs = b.downBN.Backward(gs)
		}
		gs = b.downConv.Backward(gs)
	} else {
		gs = g
	}
	gm.AddInto(gs)
	return gm
}

// Params implements Layer.
func (b *BasicBlock) Params() []*Param {
	out := append([]*Param{}, b.conv1.Params()...)
	if b.bn1 != nil {
		out = append(out, b.bn1.Params()...)
	}
	out = append(out, b.conv2.Params()...)
	if b.bn2 != nil {
		out = append(out, b.bn2.Params()...)
	}
	if b.downConv != nil {
		out = append(out, b.downConv.Params()...)
		if b.downBN != nil {
			out = append(out, b.downBN.Params()...)
		}
	}
	return out
}

// Sequential chains layers.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}
