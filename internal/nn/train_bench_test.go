package nn

import (
	"math/rand"
	"testing"

	"ldmo/internal/tensor"
)

// BenchmarkTinyNetStep measures one forward+backward+step on a batch of 16
// 64x64 images through the reduced predictor topology — the unit of
// training work.
func BenchmarkTinyNetStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(
		NewConv2D(rng, 1, 8, 7, 2, 3, false),
		NewBatchNorm2D(8),
		NewReLU(),
		NewMaxPool2D(3, 2, 1),
		NewBasicBlock(rng, 8, 8, 1),
		NewBasicBlock(rng, 8, 16, 2),
		NewBasicBlock(rng, 16, 32, 2),
		NewBasicBlock(rng, 32, 48, 2),
		NewGlobalAvgPool(),
		NewLinear(rng, 48, 64),
		NewReLU(),
		NewLinear(rng, 64, 1),
	)
	adam := NewAdam(1e-3)
	x := tensor.New(16, 1, 64, 64)
	for i := range x.Data {
		x.Data[i] = rng.Float64()
	}
	tgt := tensor.New(16, 1, 1, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred := net.Forward(x, true)
		_, grad := (&MAE{}).Eval(pred, tgt)
		ZeroGrads(net.Params())
		net.Backward(grad)
		adam.Step(net.Params())
	}
}
