package nn

import (
	"fmt"
	"math"
)

// Freeze returns an independent inference-only copy of the network with
// every BatchNorm2D folded into the convolution it follows: with running
// statistics fixed, y = gamma*(conv(x)+b-mean)/sqrt(var+eps) + beta is an
// affine function of the conv output, so scaling each output channel's
// weights by s = gamma/sqrt(var+eps) and setting the bias to
// beta + s*(b-mean) reproduces it in a single conv. The copy shares no
// state with the original (safe to run concurrently with it and with other
// copies) and halves the per-layer memory passes at inference.
//
// Folding changes rounding (the scale is applied to weights once instead of
// to activations per element), so frozen outputs agree with the source
// network's inference outputs to relative rounding error, not bitwise.
func (n *Network) Freeze() *Network {
	return &Network{Seq: NewSequential(freezeLayers(n.Seq.Layers)...)}
}

// freezeLayers maps a layer stack to its inference form, consuming each
// BatchNorm2D that directly follows a Conv2D.
func freezeLayers(layers []Layer) []Layer {
	out := make([]Layer, 0, len(layers))
	for i := 0; i < len(layers); i++ {
		if conv, ok := layers[i].(*Conv2D); ok && i+1 < len(layers) {
			if bn, ok := layers[i+1].(*BatchNorm2D); ok {
				out = append(out, foldConvBN(conv, bn))
				i++
				continue
			}
		}
		out = append(out, freezeLayer(layers[i]))
	}
	return out
}

func freezeLayer(l Layer) Layer {
	switch v := l.(type) {
	case *Conv2D:
		return cloneConv(v)
	case *BatchNorm2D:
		return cloneBN(v)
	case *ReLU:
		return NewReLU()
	case *MaxPool2D:
		return NewMaxPool2D(v.K, v.Stride, v.Pad)
	case *GlobalAvgPool:
		return NewGlobalAvgPool()
	case *Linear:
		return cloneLinear(v)
	case *BasicBlock:
		return v.freeze()
	case *Sequential:
		return NewSequential(freezeLayers(v.Layers)...)
	default:
		panic(fmt.Sprintf("nn: cannot freeze layer %T", l))
	}
}

// freeze folds both conv+BN stages of the block (and the downsample pair);
// the frozen block's bn fields are nil and Forward/Backward skip them.
func (b *BasicBlock) freeze() *BasicBlock {
	nb := &BasicBlock{
		conv1: foldConvBN(b.conv1, b.bn1),
		relu1: NewReLU(),
		conv2: foldConvBN(b.conv2, b.bn2),
	}
	if b.downConv != nil {
		nb.downConv = foldConvBN(b.downConv, b.downBN)
	}
	return nb
}

// foldConvBN returns an independent conv whose weights and bias absorb the
// batch norm's inference affine transform. A nil bn yields a plain clone
// (so freezing an already-frozen stack is a no-op copy).
func foldConvBN(c *Conv2D, bn *BatchNorm2D) *Conv2D {
	nc := cloneConv(c)
	if bn == nil {
		return nc
	}
	if nc.bias == nil {
		nc.bias = newParam("conv.bias", nc.OutC)
	}
	rowLen := nc.InC * nc.K * nc.K
	for oc := 0; oc < nc.OutC; oc++ {
		s := bn.gamma.Data[oc] / math.Sqrt(bn.runVar.Data[oc]+bn.Eps)
		row := nc.weight.Data[oc*rowLen : (oc+1)*rowLen]
		for i := range row {
			row[i] *= s
		}
		nc.bias.Data[oc] = bn.beta.Data[oc] + s*(nc.bias.Data[oc]-bn.runMean.Data[oc])
	}
	return nc
}

func cloneConv(c *Conv2D) *Conv2D {
	nc := &Conv2D{InC: c.InC, OutC: c.OutC, K: c.K, Stride: c.Stride, Pad: c.Pad}
	nc.weight = newParam("conv.weight", len(c.weight.Data))
	copy(nc.weight.Data, c.weight.Data)
	if c.bias != nil {
		nc.bias = newParam("conv.bias", len(c.bias.Data))
		copy(nc.bias.Data, c.bias.Data)
	}
	return nc
}

func cloneBN(bn *BatchNorm2D) *BatchNorm2D {
	nb := NewBatchNorm2D(bn.C)
	nb.Eps, nb.Momentum = bn.Eps, bn.Momentum
	copy(nb.gamma.Data, bn.gamma.Data)
	copy(nb.beta.Data, bn.beta.Data)
	copy(nb.runMean.Data, bn.runMean.Data)
	copy(nb.runVar.Data, bn.runVar.Data)
	return nb
}

func cloneLinear(l *Linear) *Linear {
	nl := &Linear{In: l.In, Out: l.Out}
	nl.weight = newParam("linear.weight", len(l.weight.Data))
	copy(nl.weight.Data, l.weight.Data)
	nl.bias = newParam("linear.bias", len(l.bias.Data))
	copy(nl.bias.Data, l.bias.Data)
	return nl
}
