package nn

import "ldmo/internal/artifact"

// Persisted nn types claim their process-global gob type IDs at init, in a
// fixed order, so a sealed checkpoint's payload bytes depend only on the
// encoded state — never on which code path happened to gob-encode first.
func init() {
	artifact.StabilizeGob(savedParams{}, AdamState{})
}
