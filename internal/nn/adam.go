package nn

import "math"

// Adam is the Adam optimizer (Kingma & Ba), the paper's choice for training
// the predictor: "Adam computes individual adaptive learning rates for
// different parameters which is more suitable for large scale data".
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m [][]float64
	v [][]float64
}

// NewAdam returns an Adam optimizer with the conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// AdamState is the optimizer's serializable trajectory: the step counter and
// per-parameter first/second moments, plus the (possibly decayed) learning
// rate. Restoring it into a fresh Adam resumes training bit-identically.
type AdamState struct {
	LR float64
	T  int
	M  [][]float64
	V  [][]float64
}

// State snapshots the optimizer. The moment buffers are deep-copied, so a
// snapshot taken between Steps stays valid after training continues.
func (a *Adam) State() AdamState {
	s := AdamState{LR: a.LR, T: a.t, M: make([][]float64, len(a.m)), V: make([][]float64, len(a.v))}
	for i := range a.m {
		if a.m[i] != nil {
			s.M[i] = append([]float64(nil), a.m[i]...)
			s.V[i] = append([]float64(nil), a.v[i]...)
		}
	}
	return s
}

// SetState restores a snapshot taken by State. The next Step must be called
// with the same parameter set that produced the snapshot.
func (a *Adam) SetState(s AdamState) {
	a.LR = s.LR
	a.t = s.T
	a.m = make([][]float64, len(s.M))
	a.v = make([][]float64, len(s.V))
	for i := range s.M {
		if s.M[i] != nil {
			a.m[i] = append([]float64(nil), s.M[i]...)
			a.v[i] = append([]float64(nil), s.V[i]...)
		}
	}
}

// Step applies one update to every gradient-bearing parameter. The moment
// buffers are allocated lazily and keyed by position, so the same parameter
// slice must be passed on every call.
func (a *Adam) Step(params []*Param) {
	if a.m == nil {
		a.m = make([][]float64, len(params))
		a.v = make([][]float64, len(params))
		for i, p := range params {
			if p.NoGrad {
				continue
			}
			a.m[i] = make([]float64, len(p.Data))
			a.v[i] = make([]float64, len(p.Data))
		}
	}
	if len(a.m) != len(params) {
		panic("nn: Adam.Step called with a different parameter set")
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range params {
		if p.NoGrad {
			continue
		}
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			g := p.Grad[j]
			if a.WeightDecay != 0 {
				g += a.WeightDecay * p.Data[j]
			}
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g*g
			mhat := m[j] / bc1
			vhat := v[j] / bc2
			p.Data[j] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
		}
	}
}
