package grid

// Components labels the 4-connected components of the nonzero pixels of g.
// It returns a label raster (same shape as g, stored in an int slice,
// 0 = background, components numbered from 1) and the component count.
//
// The ILT print-violation detector uses this to decide whether a printed
// resist image bridges two target patterns or drops one entirely.
func (g *Grid) Components() (labels []int, n int) {
	labels = make([]int, len(g.Data))
	// Iterative flood fill with an explicit stack to stay safe on large
	// rasters (224x224 and up).
	stack := make([]int, 0, 256)
	for start, v := range g.Data {
		if v == 0 || labels[start] != 0 {
			continue
		}
		n++
		labels[start] = n
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := i%g.W, i/g.W
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= g.W || ny >= g.H {
					continue
				}
				j := ny*g.W + nx
				if g.Data[j] != 0 && labels[j] == 0 {
					labels[j] = n
					stack = append(stack, j)
				}
			}
		}
	}
	return labels, n
}

// ComponentSizes returns the pixel count of each component label produced by
// Components; index 0 is the background count.
func ComponentSizes(labels []int, n int) []int {
	sizes := make([]int, n+1)
	for _, l := range labels {
		sizes[l]++
	}
	return sizes
}
