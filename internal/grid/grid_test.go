package grid

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ldmo/internal/geom"
)

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, c := range [][3]int{{0, 5, 1}, {5, 0, 1}, {5, 5, 0}, {-1, 5, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", c)
				}
			}()
			New(c[0], c[1], c[2], geom.Point{})
		}()
	}
}

func TestAtSetBounds(t *testing.T) {
	g := New(4, 3, 1, geom.Point{})
	g.Set(2, 1, 7)
	if g.At(2, 1) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	if g.At(-1, 0) != 0 || g.At(4, 0) != 0 || g.At(0, 3) != 0 {
		t.Fatal("out-of-bounds At must be 0")
	}
	g.Set(-1, -1, 9) // must not panic
	g.Set(99, 99, 9)
}

func TestFillRectAreaMatchesGeometry(t *testing.T) {
	// 1 nm/px grid: a w x h nm rect covers w*h pixel centers when aligned
	// to pixel boundaries.
	g := New(100, 100, 1, geom.Point{})
	g.FillRect(geom.RectWH(10, 20, 30, 40), 1)
	if got := g.Sum(); got != 30*40 {
		t.Fatalf("filled %g pixels, want 1200", got)
	}
}

func TestFillRectTranslationInvariantWidth(t *testing.T) {
	// Feature width in pixels must not depend on sub-resolution placement
	// beyond +-1 when shifting by whole pixels.
	g1 := New(100, 100, 2, geom.Point{})
	g1.FillRect(geom.RectWH(20, 20, 60, 60), 1)
	g2 := New(100, 100, 2, geom.Point{})
	g2.FillRect(geom.RectWH(20+2*7, 20, 60, 60), 1)
	if g1.Sum() != g2.Sum() {
		t.Fatalf("pixel-shift changed area: %g vs %g", g1.Sum(), g2.Sum())
	}
}

func TestFillRectClipped(t *testing.T) {
	g := New(10, 10, 1, geom.Point{})
	g.FillRect(geom.RectWH(-5, -5, 100, 100), 1) // covers all
	if g.Sum() != 100 {
		t.Fatalf("clipped fill sum = %g", g.Sum())
	}
	h := New(10, 10, 1, geom.Point{})
	h.FillRect(geom.RectWH(50, 50, 5, 5), 1) // entirely off-grid
	if h.Sum() != 0 {
		t.Fatal("off-grid rect must fill nothing")
	}
}

func TestOriginOffset(t *testing.T) {
	g := New(10, 10, 1, geom.Point{X: 100, Y: 200})
	g.FillRect(geom.RectWH(100, 200, 10, 10), 1)
	if g.Sum() != 100 {
		t.Fatalf("origin-offset fill sum = %g", g.Sum())
	}
}

func TestThreshold(t *testing.T) {
	g := New(2, 2, 1, geom.Point{})
	copy(g.Data, []float64{0.1, 0.5, 0.9, 0.49})
	b := g.Threshold(0.5)
	want := []float64{0, 1, 1, 0}
	for i := range want {
		if b.Data[i] != want[i] {
			t.Fatalf("threshold[%d] = %g", i, b.Data[i])
		}
	}
}

func TestL2Diff(t *testing.T) {
	g := New(2, 1, 1, geom.Point{})
	h := New(2, 1, 1, geom.Point{})
	g.Data[0], g.Data[1] = 1, 2
	h.Data[0], h.Data[1] = 0, 4
	if d := g.L2Diff(h); d != 1+4 {
		t.Fatalf("L2Diff = %g", d)
	}
	if d := g.L2Diff(g.Clone()); d != 0 {
		t.Fatalf("self L2Diff = %g", d)
	}
}

func TestL2DiffPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2, 1, geom.Point{}).L2Diff(New(3, 2, 1, geom.Point{}))
}

func TestAddScaleClamp(t *testing.T) {
	g := New(3, 1, 1, geom.Point{})
	copy(g.Data, []float64{0.2, 0.6, 0.9})
	h := g.Clone()
	g.Add(h).ClampMax(1)
	want := []float64{0.4, 1, 1}
	for i := range want {
		if math.Abs(g.Data[i]-want[i]) > 1e-12 {
			t.Fatalf("add+clamp[%d] = %g want %g", i, g.Data[i], want[i])
		}
	}
	g.Scale(0.5)
	if g.Data[1] != 0.5 {
		t.Fatalf("scale = %g", g.Data[1])
	}
}

func TestResampleDownAveragePreservesMean(t *testing.T) {
	g := New(8, 8, 1, geom.Point{})
	for i := range g.Data {
		g.Data[i] = float64(i % 5)
	}
	d := g.Resample(4, 4)
	if math.Abs(d.Sum()/16-g.Sum()/64) > 1e-9 {
		t.Fatalf("mean not preserved: %g vs %g", d.Sum()/16, g.Sum()/64)
	}
}

func TestResampleUp(t *testing.T) {
	g := New(2, 2, 4, geom.Point{})
	copy(g.Data, []float64{1, 2, 3, 4})
	u := g.Resample(4, 4)
	if u.At(0, 0) != 1 || u.At(3, 3) != 4 || u.At(3, 0) != 2 || u.At(0, 3) != 3 {
		t.Fatalf("upsample corners wrong: %v", u.Data)
	}
}

func TestMinMax(t *testing.T) {
	g := New(2, 2, 1, geom.Point{})
	copy(g.Data, []float64{3, -1, 7, 0})
	lo, hi := g.MinMax()
	if lo != -1 || hi != 7 {
		t.Fatalf("minmax = %g %g", lo, hi)
	}
}

func TestCloneIndependent(t *testing.T) {
	g := New(2, 2, 1, geom.Point{})
	c := g.Clone()
	c.Data[0] = 5
	if g.Data[0] != 0 {
		t.Fatal("Clone shares storage")
	}
}

func TestComponentsSeparate(t *testing.T) {
	g := New(10, 10, 1, geom.Point{})
	g.FillRect(geom.RectWH(0, 0, 3, 3), 1)
	g.FillRect(geom.RectWH(6, 6, 3, 3), 1)
	_, n := g.Components()
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
}

func TestComponentsBridged(t *testing.T) {
	g := New(10, 10, 1, geom.Point{})
	g.FillRect(geom.RectWH(0, 4, 4, 2), 1)
	g.FillRect(geom.RectWH(6, 4, 4, 2), 1)
	g.FillRect(geom.RectWH(3, 4, 4, 1), 1) // bridge
	_, n := g.Components()
	if n != 1 {
		t.Fatalf("bridged components = %d, want 1", n)
	}
}

func TestComponentsDiagonalNotConnected(t *testing.T) {
	g := New(4, 4, 1, geom.Point{})
	g.Set(0, 0, 1)
	g.Set(1, 1, 1)
	_, n := g.Components()
	if n != 2 {
		t.Fatalf("4-connectivity violated: n=%d", n)
	}
}

func TestComponentSizes(t *testing.T) {
	g := New(6, 6, 1, geom.Point{})
	g.FillRect(geom.RectWH(0, 0, 2, 2), 1)
	labels, n := g.Components()
	sizes := ComponentSizes(labels, n)
	if n != 1 || sizes[1] != 4 || sizes[0] != 32 {
		t.Fatalf("sizes = %v n=%d", sizes, n)
	}
}

func TestComponentCountQuick(t *testing.T) {
	// Property: component count never exceeds the nonzero pixel count.
	f := func(seed uint32) bool {
		g := New(12, 12, 1, geom.Point{})
		s := seed
		nz := 0
		for i := range g.Data {
			s = s*1664525 + 1013904223
			if s%3 == 0 {
				g.Data[i] = 1
				nz++
			}
		}
		_, n := g.Components()
		return n <= nz && (nz == 0) == (n == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWritePGM(t *testing.T) {
	g := New(3, 2, 1, geom.Point{})
	copy(g.Data, []float64{0, 0.5, 1, 1, 0.5, 0})
	var buf bytes.Buffer
	if err := g.WritePGM(&buf, 0, 1); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("bad header: %q", out[:12])
	}
	px := out[len(out)-6:]
	// Top row written first = grid row y=1: {1, 0.5, 0}.
	if px[0] != 255 || px[2] != 0 || px[3] != 0 || px[5] != 255 {
		t.Fatalf("pixels = %v", px)
	}
}

func TestWriteCSV(t *testing.T) {
	g := New(2, 2, 1, geom.Point{})
	copy(g.Data, []float64{1, 2, 3, 4})
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "1,2\n3,4\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestASCII(t *testing.T) {
	g := New(4, 2, 1, geom.Point{})
	g.Fill(1)
	s := g.ASCII("", 0)
	if lines := strings.Count(s, "\n"); lines != 2 {
		t.Fatalf("ascii lines = %d", lines)
	}
}

func TestEqual(t *testing.T) {
	g := New(2, 2, 1, geom.Point{})
	h := g.Clone()
	if !g.Equal(h, 0) {
		t.Fatal("identical grids not Equal")
	}
	h.Data[0] = 1e-7
	if g.Equal(h, 1e-9) {
		t.Fatal("Equal ignored difference")
	}
	if !g.Equal(h, 1e-6) {
		t.Fatal("Equal ignored tolerance")
	}
	if g.Equal(New(3, 2, 1, geom.Point{}), 1) {
		t.Fatal("shape mismatch must not be Equal")
	}
}
