package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldmo/internal/geom"
)

func randomGrid(rng *rand.Rand, w, h int) *Grid {
	g := New(w, h, 4, geom.Point{})
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	return g
}

func TestRot90KnownValues(t *testing.T) {
	g := New(2, 1, 4, geom.Point{})
	copy(g.Data, []float64{1, 2}) // row: [1 2]
	r := g.Rot90()
	if r.W != 1 || r.H != 2 {
		t.Fatalf("rotated shape %dx%d", r.W, r.H)
	}
	// (x,y) -> (y, W-1-x): (0,0)->(0,1), (1,0)->(0,0).
	if r.At(0, 0) != 2 || r.At(0, 1) != 1 {
		t.Fatalf("rotated data %v", r.Data)
	}
}

func TestRot90FourTimesIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng, 3+rng.Intn(8), 3+rng.Intn(8))
		r := g.Rot90().Rot90().Rot90().Rot90()
		return r.Equal(g, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipHTwiceIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng, 2+rng.Intn(9), 2+rng.Intn(9))
		return g.FlipH().FlipH().Equal(g, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipHKnownValues(t *testing.T) {
	g := New(3, 1, 4, geom.Point{})
	copy(g.Data, []float64{1, 2, 3})
	m := g.FlipH()
	if m.Data[0] != 3 || m.Data[1] != 2 || m.Data[2] != 1 {
		t.Fatalf("mirrored = %v", m.Data)
	}
}

func TestTransformsPreserveMass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGrid(rng, 2+rng.Intn(10), 2+rng.Intn(10))
		const eps = 1e-9
		return absDiff(g.Rot90().Sum(), g.Sum()) < eps &&
			absDiff(g.FlipH().Sum(), g.Sum()) < eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestSampleNMCenterAndInterpolation(t *testing.T) {
	g := New(2, 2, 10, geom.Point{})
	copy(g.Data, []float64{0, 1, 2, 3})
	// Pixel centers at (5,5), (15,5), (5,15), (15,15).
	if v := g.SampleNM(5, 5); v != 0 {
		t.Fatalf("center sample = %g", v)
	}
	if v := g.SampleNM(15, 15); v != 3 {
		t.Fatalf("corner sample = %g", v)
	}
	// Midpoint between all four centers: mean of values.
	if v := g.SampleNM(10, 10); v != 1.5 {
		t.Fatalf("bilinear midpoint = %g", v)
	}
	// Beyond-the-border samples clamp.
	if v := g.SampleNM(-100, -100); v != 0 {
		t.Fatalf("clamped sample = %g", v)
	}
	if v := g.SampleNM(1000, 1000); v != 3 {
		t.Fatalf("clamped sample = %g", v)
	}
}
