// Package grid implements the dense raster substrate of the LDMO framework.
//
// Every image-domain object in the pipeline — mask, aerial image, resist
// image, decomposition picture fed to the CNN — is a Grid: a dense row-major
// float64 raster with an attached physical resolution (nanometers per pixel)
// and origin, so layout-space geometry (package geom) can be rasterized onto
// it and raster-space measurements can be converted back to nanometers.
package grid

import (
	"fmt"
	"math"

	"ldmo/internal/geom"
)

// Grid is a dense W x H float64 raster. Data is row-major: pixel (x, y) is
// Data[y*W+x]. Res is the physical size of one pixel in nanometers and
// Origin is the layout-space coordinate of the lower-left corner of pixel
// (0, 0). The zero Grid is empty and unusable; construct with New.
type Grid struct {
	W, H   int
	Res    int // nanometers per pixel edge
	Origin geom.Point
	Data   []float64
}

// New returns a zero-filled w x h grid with resolution res nm/pixel and the
// given origin. It panics on non-positive dimensions or resolution, since a
// malformed raster indicates a programming error rather than bad input data.
func New(w, h, res int, origin geom.Point) *Grid {
	if w <= 0 || h <= 0 || res <= 0 {
		panic(fmt.Sprintf("grid.New: invalid dims %dx%d res %d", w, h, res))
	}
	return &Grid{W: w, H: h, Res: res, Origin: origin, Data: make([]float64, w*h)}
}

// NewLike returns a zero-filled grid with the same shape, resolution and
// origin as g.
func NewLike(g *Grid) *Grid { return New(g.W, g.H, g.Res, g.Origin) }

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	out := NewLike(g)
	copy(out.Data, g.Data)
	return out
}

// At returns the value at pixel (x, y). Out-of-bounds reads return 0, which
// matches the physical picture of an empty field beyond the simulated window.
func (g *Grid) At(x, y int) float64 {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return 0
	}
	return g.Data[y*g.W+x]
}

// Set writes v at pixel (x, y); out-of-bounds writes are dropped.
func (g *Grid) Set(x, y int, v float64) {
	if x < 0 || y < 0 || x >= g.W || y >= g.H {
		return
	}
	g.Data[y*g.W+x] = v
}

// Fill sets every pixel to v.
func (g *Grid) Fill(v float64) {
	for i := range g.Data {
		g.Data[i] = v
	}
}

// PixelRect converts a layout-space rectangle (nanometers) to the pixel index
// range it covers on g. A pixel is covered when its center lies inside the
// rectangle, which keeps feature widths consistent under translation.
// The returned range is inclusive and clipped to the grid; ok is false when
// the rectangle misses the grid entirely.
func (g *Grid) PixelRect(r geom.Rect) (x0, y0, x1, y1 int, ok bool) {
	// Pixel (x, y) center in layout space: Origin + (x+0.5)*Res.
	fx0 := float64(r.X0-g.Origin.X)/float64(g.Res) - 0.5
	fy0 := float64(r.Y0-g.Origin.Y)/float64(g.Res) - 0.5
	fx1 := float64(r.X1-g.Origin.X)/float64(g.Res) - 0.5
	fy1 := float64(r.Y1-g.Origin.Y)/float64(g.Res) - 0.5
	x0 = int(math.Ceil(fx0))
	y0 = int(math.Ceil(fy0))
	x1 = int(math.Floor(fx1))
	y1 = int(math.Floor(fy1))
	x0 = max(x0, 0)
	y0 = max(y0, 0)
	x1 = min(x1, g.W-1)
	y1 = min(y1, g.H-1)
	if x0 > x1 || y0 > y1 {
		return 0, 0, 0, 0, false
	}
	return x0, y0, x1, y1, true
}

// FillRect rasterizes the layout-space rectangle r onto g with value v.
func (g *Grid) FillRect(r geom.Rect, v float64) {
	x0, y0, x1, y1, ok := g.PixelRect(r)
	if !ok {
		return
	}
	for y := y0; y <= y1; y++ {
		row := g.Data[y*g.W : y*g.W+g.W]
		for x := x0; x <= x1; x++ {
			row[x] = v
		}
	}
}

// Threshold returns a binary copy of g: 1 where the value is >= th, else 0.
func (g *Grid) Threshold(th float64) *Grid {
	out := NewLike(g)
	for i, v := range g.Data {
		if v >= th {
			out.Data[i] = 1
		}
	}
	return out
}

// Sum returns the sum of all pixel values.
func (g *Grid) Sum() float64 {
	s := 0.0
	for _, v := range g.Data {
		s += v
	}
	return s
}

// MinMax returns the smallest and largest pixel values.
func (g *Grid) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range g.Data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}

// L2Diff returns the squared L2 distance between g and h, the paper's
// Definition 2 printability metric. It panics on shape mismatch.
func (g *Grid) L2Diff(h *Grid) float64 {
	g.mustMatch(h)
	s := 0.0
	for i := range g.Data {
		d := g.Data[i] - h.Data[i]
		s += d * d
	}
	return s
}

// Add accumulates h into g element-wise and returns g.
func (g *Grid) Add(h *Grid) *Grid {
	g.mustMatch(h)
	for i := range g.Data {
		g.Data[i] += h.Data[i]
	}
	return g
}

// Scale multiplies every pixel by k and returns g.
func (g *Grid) Scale(k float64) *Grid {
	for i := range g.Data {
		g.Data[i] *= k
	}
	return g
}

// ClampMax caps every pixel at hi and returns g. The paper's double-pattern
// composition T = min(T1+T2, 1) is Add followed by ClampMax(1).
func (g *Grid) ClampMax(hi float64) *Grid {
	for i, v := range g.Data {
		if v > hi {
			g.Data[i] = hi
		}
	}
	return g
}

func (g *Grid) mustMatch(h *Grid) {
	if g.W != h.W || g.H != h.H {
		panic(fmt.Sprintf("grid: shape mismatch %dx%d vs %dx%d", g.W, g.H, h.W, h.H))
	}
}

// Resample returns g resampled to w x h by box averaging (downsampling) or
// nearest-neighbor replication (upsampling). Resolution metadata is scaled by
// the width ratio; the caller is responsible for keeping aspect ratios sane.
func (g *Grid) Resample(w, h int) *Grid {
	out := New(w, h, max(1, g.Res*g.W/w), g.Origin)
	g.ResampleInto(w, h, out.Data)
	return out
}

// ResampleInto is Resample writing the w x h raster into a caller-owned
// buffer (len(dst) must be w*h), so resampling hot paths — the warm-start
// net's field scaling — stay allocation-free. The sampling arithmetic is
// shared with Resample: both produce identical pixels.
func (g *Grid) ResampleInto(w, h int, dst []float64) {
	if len(dst) != w*h {
		panic(fmt.Sprintf("grid: ResampleInto dst length %d != %dx%d", len(dst), w, h))
	}
	sx := float64(g.W) / float64(w)
	sy := float64(g.H) / float64(h)
	for y := 0; y < h; y++ {
		gy0 := int(float64(y) * sy)
		gy1 := int(float64(y+1) * sy)
		if gy1 <= gy0 {
			gy1 = gy0 + 1
		}
		gy1 = min(gy1, g.H)
		for x := 0; x < w; x++ {
			gx0 := int(float64(x) * sx)
			gx1 := int(float64(x+1) * sx)
			if gx1 <= gx0 {
				gx1 = gx0 + 1
			}
			gx1 = min(gx1, g.W)
			s := 0.0
			for yy := gy0; yy < gy1; yy++ {
				for xx := gx0; xx < gx1; xx++ {
					s += g.Data[yy*g.W+xx]
				}
			}
			dst[y*w+x] = s / float64((gy1-gy0)*(gx1-gx0))
		}
	}
}

// Rot90 returns g rotated by a quarter turn (clockwise in the y-up raster
// convention: pixel (x, y) maps to (y, W-1-x)). Resolution carries over and
// the origin is kept — rotations are raster-space operations used for
// training-set augmentation, where physical placement is irrelevant.
func (g *Grid) Rot90() *Grid {
	out := New(g.H, g.W, g.Res, g.Origin)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.Data[(g.W-1-x)*out.W+y] = g.Data[y*g.W+x]
		}
	}
	return out
}

// FlipH returns g mirrored about the vertical axis.
func (g *Grid) FlipH() *Grid {
	out := NewLike(g)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			out.Data[y*g.W+x] = g.Data[y*g.W+(g.W-1-x)]
		}
	}
	return out
}

// SampleNM returns the bilinearly interpolated value of g at the layout-space
// point (x, y) in nanometers. Pixel (i, j) is treated as a sample at its
// center, Origin + (i+0.5, j+0.5)*Res; points beyond the outermost pixel
// centers clamp to the border sample. The EPE meter uses this to locate the
// printed contour with sub-pixel accuracy.
func (g *Grid) SampleNM(x, y float64) float64 {
	fx := (x-float64(g.Origin.X))/float64(g.Res) - 0.5
	fy := (y-float64(g.Origin.Y))/float64(g.Res) - 0.5
	x0 := int(math.Floor(fx))
	y0 := int(math.Floor(fy))
	tx := fx - float64(x0)
	ty := fy - float64(y0)
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	xa, xb := clamp(x0, g.W-1), clamp(x0+1, g.W-1)
	ya, yb := clamp(y0, g.H-1), clamp(y0+1, g.H-1)
	v00 := g.Data[ya*g.W+xa]
	v10 := g.Data[ya*g.W+xb]
	v01 := g.Data[yb*g.W+xa]
	v11 := g.Data[yb*g.W+xb]
	return v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
}

// Equal reports whether g and h have identical shape and pixel data within
// tolerance eps.
func (g *Grid) Equal(h *Grid, eps float64) bool {
	if g.W != h.W || g.H != h.H {
		return false
	}
	for i := range g.Data {
		if math.Abs(g.Data[i]-h.Data[i]) > eps {
			return false
		}
	}
	return true
}
