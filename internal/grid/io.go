package grid

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// WritePGM writes g as a binary 8-bit PGM image to w, normalizing pixel
// values from [lo, hi] to [0, 255]. PGM is used for the Fig. 7 printed-image
// dumps so results can be inspected with any image viewer.
func (g *Grid) WritePGM(w io.Writer, lo, hi float64) error {
	if hi <= lo {
		hi = lo + 1
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	// PGM rows go top-down; our y axis goes bottom-up, so flip.
	for y := g.H - 1; y >= 0; y-- {
		for x := 0; x < g.W; x++ {
			v := (g.Data[y*g.W+x] - lo) / (hi - lo)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			if err := bw.WriteByte(byte(v*255 + 0.5)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SavePGM writes g to the named file as a PGM image normalized over [lo, hi].
func (g *Grid) SavePGM(path string, lo, hi float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WritePGM(f, lo, hi); err != nil {
		return err
	}
	return f.Sync()
}

// WriteCSV writes g as comma-separated rows (bottom row last) for offline
// plotting of aerial-image cross sections and convergence data.
func (g *Grid) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			if x > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%g", g.Data[y*g.W+x]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ASCII renders g as a coarse character-art picture using the given ramp
// (e.g. " .:#@"), useful for terminal-level inspection in examples.
func (g *Grid) ASCII(ramp string, maxW int) string {
	if ramp == "" {
		ramp = " .:-=+*#%@"
	}
	gg := g
	if g.W > maxW && maxW > 0 {
		gg = g.Resample(maxW, g.H*maxW/g.W)
	}
	lo, hi := gg.MinMax()
	if hi <= lo {
		hi = lo + 1
	}
	var b strings.Builder
	for y := gg.H - 1; y >= 0; y-- {
		for x := 0; x < gg.W; x++ {
			v := (gg.Data[y*gg.W+x] - lo) / (hi - lo)
			idx := int(v * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			} else if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
