package fft

import (
	"math/rand"
	"sync"
	"testing"
)

// TestWithVariantsMatchSerial checks that the scratch-threaded entry points
// produce bitwise-identical results to the plan's serial methods.
func TestWithVariantsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	w, h, kw, kh := 20, 14, 7, 5
	img := randImage(rng, w*h)
	kernel := randImage(rng, kw*kh)
	p := NewPlan(w, h, kw, kh)
	kf := p.TransformKernel(kernel)
	s := p.NewScratch()

	serial := make([]float64, w*h)
	scratch := make([]float64, w*h)

	p.Convolve(img, kf, serial)
	p.ConvolveWith(s, img, kf, scratch)
	for i := range serial {
		if serial[i] != scratch[i] {
			t.Fatalf("ConvolveWith differs at %d: %g vs %g", i, scratch[i], serial[i])
		}
	}
	p.Correlate(img, kf, serial)
	p.CorrelateWith(s, img, kf, scratch)
	for i := range serial {
		if serial[i] != scratch[i] {
			t.Fatalf("CorrelateWith differs at %d: %g vs %g", i, scratch[i], serial[i])
		}
	}
}

// TestForwardSpectrumReuse verifies that a spectrum from one scratch can be
// fanned out through ApplySpecWith on other scratches — the simulator's
// shared-mask-transform pattern — including concurrently.
func TestForwardSpectrumReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	w, h, kw, kh := 24, 24, 5, 5
	img := randImage(rng, w*h)
	p := NewPlan(w, h, kw, kh)
	const nk = 4
	kffts := make([][]complex128, nk)
	want := make([][]float64, nk)
	for k := range kffts {
		kffts[k] = p.TransformKernel(randImage(rng, kw*kh))
		want[k] = make([]float64, w*h)
		p.Convolve(img, kffts[k], want[k])
	}

	spec := p.Forward(img)
	got := make([][]float64, nk)
	var wg sync.WaitGroup
	for k := 0; k < nk; k++ {
		got[k] = make([]float64, w*h)
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			s := p.NewScratch()
			p.ApplySpecWith(s, spec, kffts[k], got[k], false)
		}(k)
	}
	wg.Wait()
	for k := range want {
		for i := range want[k] {
			if got[k][i] != want[k][i] {
				t.Fatalf("kernel %d concurrent ApplySpecWith differs at %d", k, i)
			}
		}
	}
}

// TestForwardAliasesPlanScratch documents the new Forward contract: the
// returned spectrum is plan scratch, overwritten by the next Forward.
func TestForwardAliasesPlanScratch(t *testing.T) {
	p := NewPlan(8, 8, 3, 3)
	a := p.Forward(make([]float64, 64))
	img := make([]float64, 64)
	img[0] = 1
	b := p.Forward(img)
	if &a[0] != &b[0] {
		t.Fatal("Forward should reuse the plan's spectrum scratch")
	}
}

// TestHotPathZeroAlloc asserts the perf contract of this layer: once a plan
// (and any worker scratch) exists, Forward/ApplySpec/Convolve/Correlate do
// not allocate.
func TestHotPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops puts under the race detector")
	}
	rng := rand.New(rand.NewSource(55))
	w, h, kw, kh := 32, 32, 7, 7
	img := randImage(rng, w*h)
	kernel := randImage(rng, kw*kh)
	p := NewPlan(w, h, kw, kh)
	kf := p.TransformKernel(kernel)
	out := make([]float64, w*h)
	s := p.NewScratch()

	cases := map[string]func(){
		"Forward":       func() { p.Forward(img) },
		"Convolve":      func() { p.Convolve(img, kf, out) },
		"Correlate":     func() { p.Correlate(img, kf, out) },
		"ConvolveWith":  func() { p.ConvolveWith(s, img, kf, out) },
		"CorrelateWith": func() { p.CorrelateWith(s, img, kf, out) },
		"ApplySpecWith": func() { p.ApplySpecWith(s, p.Forward(img), kf, out, true) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per call, want 0", name, allocs)
		}
	}
}

func TestTransform2DColumnScratchPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short column scratch")
		}
	}()
	transform2D(make([]complex128, 16), 4, 4, false, make([]complex128, 2), false)
}

func BenchmarkPlanForward(b *testing.B) {
	w, h := 224, 224
	img := make([]float64, w*h)
	for i := range img {
		img[i] = float64(i%13) / 13
	}
	p := NewPlan(w, h, 31, 31)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(img)
	}
}
