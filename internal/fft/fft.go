// Package fft provides the radix-2 fast Fourier transforms and FFT-based
// convolution used by the lithography simulator. Aerial-image formation in
// the SOCS model is a set of 2-D convolutions of the mask with the optical
// kernels; on 224x224-class rasters the FFT path is the difference between a
// usable ILT loop and an unusable one.
//
// The transforms are table-driven: per-size twiddle factors and bit-reversal
// permutations are computed once (see tables.go) and every butterfly reads
// the exact Sincos-sampled constant, so accuracy does not degrade with
// transform length. Real-valued rasters — masks, fields, kernels, which is
// everything the simulator transforms — go through the half-spectrum RFFT
// path in rfft.go unless LDMO_FFT=complex forces the full complex reference
// path.
package fft

import (
	"fmt"
	"math/bits"
)

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT performs an in-place forward radix-2 Cooley-Tukey transform of x.
// len(x) must be a power of two; it panics otherwise, since a bad length is
// always a programming error in this codebase (callers pad explicitly).
func FFT(x []complex128) { transformWith(x, tablesFor(len(x)), false, vecEnabled()) }

// IFFT performs an in-place inverse transform of x, including the 1/N
// normalization, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	transformWith(x, tablesFor(len(x)), true, vecEnabled())
	scale(x, 1/float64(len(x)))
}

// transformWith runs the in-place radix-2 transform of x against
// precomputed tables; len(x) must equal tw.n. No normalization is applied.
// vec selects the AVX butterfly kernel for the stages wide enough to
// vectorize; either way the result is bit-identical (finite inputs).
func transformWith(x []complex128, tw *twiddles, inverse, vec bool) {
	n := tw.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: length %d != table size %d", len(x), n))
	}
	if n <= 1 {
		return
	}
	// Bit-reversal permutation, precomputed.
	for i, r := range tw.rev {
		if int32(i) < r {
			x[i], x[r] = x[r], x[i]
		}
	}
	tab := tw.fwd
	stg := tw.stgFwd
	if inverse {
		tab, stg = tw.inv, tw.stgInv
	}
	if vec && n >= 4 {
		// First stage (half = 1): single-butterfly blocks with the lone
		// twiddle tab[0] — too narrow for a two-complex vector, kept as the
		// exact scalar expression.
		for k := 0; k < n; k += 2 {
			a := x[k]
			b := x[k+1] * tab[0]
			x[k] = a + b
			x[k+1] = a - b
		}
		// Every remaining stage is whole 32-byte vectors: the stage's
		// twiddles sit contiguous at stg[half-1] (see stageLayout).
		for size := 4; size <= n; size <<= 1 {
			half := size >> 1
			fftStageAVX(&x[0], n, half, &stg[half-1])
		}
		return
	}
	// Iterative butterflies; stage size s reads the table with stride n/s.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			ti := 0
			for k := start; k < start+half; k++ {
				a := x[k]
				b := x[k+half] * tab[ti]
				x[k] = a + b
				x[k+half] = a - b
				ti += step
			}
		}
	}
}

// scale multiplies every element by s. The transform sizes here are powers
// of two, so s = 1/n is exact and this matches per-element division bit for
// bit.
func scale(x []complex128, s float64) {
	c := complex(s, 0)
	for i := range x {
		x[i] *= c
	}
}

// colBlock is how many columns the 2-D drivers gather and transform per
// pass. Walking the raster row-wise in strips of colBlock columns keeps the
// gather/scatter sequential in memory instead of striding the full row
// width once per column.
const colBlock = 8

// FFT2D transforms a w x h row-major complex raster in place (rows first,
// then columns). Both w and h must be powers of two. The column scratch
// comes from a pool, so steady-state calls do not allocate.
func FFT2D(data []complex128, w, h int) {
	strip := getStrip(colBlock * h)
	transform2D(data, w, h, false, *strip, vecEnabled())
	putStrip(strip)
}

// IFFT2D inverts FFT2D, including normalization.
func IFFT2D(data []complex128, w, h int) {
	strip := getStrip(colBlock * h)
	transform2D(data, w, h, true, *strip, vecEnabled())
	putStrip(strip)
}

// transform2D is the shared full-complex 2-D driver. col is the
// caller-provided column strip (len >= h; larger strips enable blocked
// column processing); Plan threads its reusable scratch through here so the
// convolution hot path performs no per-call allocation.
func transform2D(data []complex128, w, h int, inverse bool, col []complex128, vec bool) {
	if len(data) != w*h {
		panic(fmt.Sprintf("fft: data length %d != %d x %d", len(data), w, h))
	}
	rtw := tablesFor(w)
	for y := 0; y < h; y++ {
		transformWith(data[y*w:(y+1)*w], rtw, inverse, vec)
	}
	if inverse {
		scale(data, 1/float64(w))
	}
	transformCols(data, w, h, tablesFor(h), inverse, col, vec)
	if inverse {
		scale(data, 1/float64(h))
	}
}

// transformCols transforms every column of the w x h raster in place using
// the length-h tables, processing as many columns per pass as the strip
// scratch holds. The per-column results are independent of the blocking
// factor. No normalization is applied.
func transformCols(data []complex128, w, h int, tw *twiddles, inverse bool, col []complex128, vec bool) {
	if len(col) < h {
		panic(fmt.Sprintf("fft: column scratch %d < %d", len(col), h))
	}
	nb := len(col) / h
	if nb > w {
		nb = w
	}
	for x0 := 0; x0 < w; x0 += nb {
		b := nb
		if x0+b > w {
			b = w - x0
		}
		blk := col[:b*h]
		for y := 0; y < h; y++ {
			row := data[y*w+x0 : y*w+x0+b]
			for j, v := range row {
				blk[j*h+y] = v
			}
		}
		for j := 0; j < b; j++ {
			transformWith(blk[j*h:(j+1)*h], tw, inverse, vec)
		}
		for y := 0; y < h; y++ {
			row := data[y*w+x0 : y*w+x0+b]
			for j := range row {
				row[j] = blk[j*h+y]
			}
		}
	}
}
