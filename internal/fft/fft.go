// Package fft provides the radix-2 fast Fourier transforms and FFT-based
// convolution used by the lithography simulator. Aerial-image formation in
// the SOCS model is a set of 2-D convolutions of the mask with the optical
// kernels; on 224x224-class rasters the FFT path is the difference between a
// usable ILT loop and an unusable one.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT performs an in-place forward radix-2 Cooley-Tukey transform of x.
// len(x) must be a power of two; it panics otherwise, since a bad length is
// always a programming error in this codebase (callers pad explicitly).
func FFT(x []complex128) { transform(x, false) }

// IFFT performs an in-place inverse transform of x, including the 1/N
// normalization, so IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	// Iterative butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wstep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wstep
			}
		}
	}
}

// FFT2D transforms a w x h row-major complex raster in place (rows first,
// then columns). Both w and h must be powers of two.
func FFT2D(data []complex128, w, h int) { transform2D(data, w, h, false, make([]complex128, h)) }

// IFFT2D inverts FFT2D, including normalization.
func IFFT2D(data []complex128, w, h int) { transform2D(data, w, h, true, make([]complex128, h)) }

// transform2D is the shared 2-D driver. col is the caller-provided column
// strip (len >= h); Plan threads its reusable scratch through here so the
// convolution hot path performs no per-call allocation.
func transform2D(data []complex128, w, h int, inverse bool, col []complex128) {
	if len(data) != w*h {
		panic(fmt.Sprintf("fft: data length %d != %d x %d", len(data), w, h))
	}
	if len(col) < h {
		panic(fmt.Sprintf("fft: column scratch %d < %d", len(col), h))
	}
	col = col[:h]
	do := FFT
	if inverse {
		do = IFFT
	}
	// Rows.
	for y := 0; y < h; y++ {
		do(data[y*w : (y+1)*w])
	}
	// Columns, via the scratch strip.
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			col[y] = data[y*w+x]
		}
		do(col)
		for y := 0; y < h; y++ {
			data[y*w+x] = col[y]
		}
	}
}
