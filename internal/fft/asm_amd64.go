package fft

// haveAVX/haveAVX2 are the host's CPU+OS vector capabilities, probed once at
// init. The kernels in asm_amd64.s encode only VEX.256 AVX1 operations, but
// the engine gates on AVX2: pre-AVX2 parts (Sandy/Ivy Bridge) split 256-bit
// loads into two 128-bit halves, which erases the win on these
// load-dominated streaming kernels, and AVX2 is the same line the GEMM
// engine's profitable hosts sit behind in practice.
var haveAVX, haveAVX2 = cpuFeatureProbe()

// haveFFTASM reports whether the vector spectral kernels can run on this
// host; LDMO_FFT_ASM=off still disables them (see vecEnabled).
var haveFFTASM = haveAVX && haveAVX2

// cpuFeatureProbe reports CPU+OS support for 256-bit AVX (CPUID feature
// flags plus XCR0 state enablement) and AVX2. Implemented in asm_amd64.s.
func cpuFeatureProbe() (avx, avx2 bool)

// fftStageAVX runs one whole radix-2 butterfly stage (stage half >= 2) over
// the n-element array at x, reading the stage's contiguous twiddle run at
// tw. Bit-identical to the scalar stage loop on finite inputs. Implemented
// in asm_amd64.s.
//
//go:noescape
func fftStageAVX(x *complex128, n, half int, tw *complex128)

// cmulAVX computes dst[i] = a[i] * b[i] for i < n; n must be even.
// Implemented in asm_amd64.s.
//
//go:noescape
func cmulAVX(dst, a, b *complex128, n int)

// cmulConjAVX computes dst[i] = a[i] * conj(b[i]) for i < n; n must be
// even. Implemented in asm_amd64.s.
//
//go:noescape
func cmulConjAVX(dst, a, b *complex128, n int)

// accumConjAVX computes acc[i] += a[i] * conj(b[i]) for i < n; n must be
// even. Implemented in asm_amd64.s.
//
//go:noescape
func accumConjAVX(acc, a, b *complex128, n int)

// rfftUntangleAVX runs np double-iterations of the forward half-spectrum
// untangle: pa at z[1], pd at z[m-2], ptw at the length-n forward twiddles'
// index 1. Implemented in asm_amd64.s.
//
//go:noescape
func rfftUntangleAVX(pa, pd, ptw *complex128, np int)

// irfftRepackAVX runs np double-iterations of the inverse half-spectrum
// repack, with the pointer layout of rfftUntangleAVX. Implemented in
// asm_amd64.s.
//
//go:noescape
func irfftRepackAVX(pa, pd, ptw *complex128, np int)

// packPairsAVX packs 2n float64 at src into n complex128 at dst (the rfft
// even/odd interleave, a reinterpreting copy). Implemented in asm_amd64.s.
//
//go:noescape
func packPairsAVX(dst *complex128, src *float64, n int)

// scaleUnpackAVX unpacks n complex128 at src into 2n float64 at dst,
// multiplying every component by s. Implemented in asm_amd64.s.
//
//go:noescape
func scaleUnpackAVX(dst *float64, src *complex128, s float64, n int)
