//go:build race

package fft

// raceEnabled gates the AllocsPerRun regression tests: under the race
// detector sync.Pool randomly drops puts, so the pooled column strips and
// scratch buffers allocate nondeterministically and the zero-alloc
// contract cannot be asserted.
const raceEnabled = true
