package fft

import "fmt"

// Plan is a reusable workspace for repeated "same"-size 2-D convolutions of a
// w x h image with kw x kh kernels. The ILT loop convolves the same kernels
// against evolving masks hundreds of times per run, so the plan caches the
// padded power-of-two geometry and scratch buffers, and kernels are
// transformed once with TransformKernel. The hot path (Forward/ApplySpec and
// the Convolve/Correlate wrappers) performs no per-call allocation.
//
// A Plan is not safe for concurrent use; create one per goroutine. The one
// sanctioned sharing pattern is fan-out over a single Forward spectrum:
// ApplySpecWith and CorrelateWith may be called from several goroutines
// simultaneously on one plan as long as each caller owns a distinct Scratch
// (the methods only read plan geometry and the shared spectrum).
type Plan struct {
	W, H    int // image size
	KW, KH  int // kernel size (odd in both dimensions)
	PW, PH  int // padded transform size (powers of two)
	scratch Scratch
}

// Scratch is the per-goroutine workspace of one convolution lane: a forward
// spectrum, a product/inverse-transform field, and the 2-D column strip. A
// plan owns one Scratch for its serial methods; parallel callers allocate one
// per worker with NewScratch.
type Scratch struct {
	spec []complex128
	buf  []complex128
	col  []complex128
}

// NewPlan builds a convolution plan. Kernel dimensions must be odd so the
// kernel has an unambiguous center pixel.
func NewPlan(w, h, kw, kh int) *Plan {
	if w <= 0 || h <= 0 || kw <= 0 || kh <= 0 {
		panic(fmt.Sprintf("fft: invalid plan dims %dx%d kernel %dx%d", w, h, kw, kh))
	}
	if kw%2 == 0 || kh%2 == 0 {
		panic(fmt.Sprintf("fft: kernel dims must be odd, got %dx%d", kw, kh))
	}
	pw := NextPow2(w + kw - 1)
	ph := NextPow2(h + kh - 1)
	p := &Plan{W: w, H: h, KW: kw, KH: kh, PW: pw, PH: ph}
	p.scratch = *p.NewScratch()
	return p
}

// NewScratch allocates a workspace sized for this plan's padded geometry.
func (p *Plan) NewScratch() *Scratch {
	return &Scratch{
		spec: make([]complex128, p.PW*p.PH),
		buf:  make([]complex128, p.PW*p.PH),
		col:  make([]complex128, p.PH),
	}
}

// TransformKernel returns the frequency-domain representation of kernel
// (row-major kw x kh, center at ((kw-1)/2, (kh-1)/2)), wrapped so the center
// sits at the padded origin. The result can be passed to Convolve and
// Correlate any number of times.
func (p *Plan) TransformKernel(kernel []float64) []complex128 {
	if len(kernel) != p.KW*p.KH {
		panic(fmt.Sprintf("fft: kernel length %d != %dx%d", len(kernel), p.KW, p.KH))
	}
	kf := make([]complex128, p.PW*p.PH)
	cx, cy := (p.KW-1)/2, (p.KH-1)/2
	for ky := 0; ky < p.KH; ky++ {
		for kx := 0; kx < p.KW; kx++ {
			// Shift so the kernel center lands on (0,0), wrapping
			// negative offsets to the far edge of the padded field.
			x := (kx - cx + p.PW) % p.PW
			y := (ky - cy + p.PH) % p.PH
			kf[y*p.PW+x] = complex(kernel[ky*p.KW+kx], 0)
		}
	}
	transform2D(kf, p.PW, p.PH, false, p.scratch.col)
	return kf
}

// Convolve computes the "same"-size zero-padded linear convolution of img
// (row-major W x H) with a transformed kernel and writes it to out.
// out(x,y) = sum_{i,j} img(x-i, y-j) * kernel(center+(i,j)).
func (p *Plan) Convolve(img []float64, kfft []complex128, out []float64) {
	p.ConvolveWith(&p.scratch, img, kfft, out)
}

// Correlate computes the "same"-size zero-padded cross-correlation of img
// with a transformed kernel: out(x,y) = sum_{i,j} img(x+i, y+j) *
// kernel(center+(i,j)). For symmetric kernels this equals Convolve; the ILT
// gradient needs the correlated (adjoint) form for asymmetric ones.
func (p *Plan) Correlate(img []float64, kfft []complex128, out []float64) {
	p.CorrelateWith(&p.scratch, img, kfft, out)
}

// ConvolveWith is Convolve through a caller-owned scratch, for workers
// sharing one plan.
func (p *Plan) ConvolveWith(s *Scratch, img []float64, kfft []complex128, out []float64) {
	spec := p.ForwardInto(s, img)
	p.ApplySpecWith(s, spec, kfft, out, false)
}

// CorrelateWith is Correlate through a caller-owned scratch, for workers
// sharing one plan.
func (p *Plan) CorrelateWith(s *Scratch, img []float64, kfft []complex128, out []float64) {
	spec := p.ForwardInto(s, img)
	p.ApplySpecWith(s, spec, kfft, out, true)
}

// Forward zero-pads img into the plan's transform field and returns its
// spectrum. The returned slice is the plan's own scratch: it stays valid
// until the next Forward/Convolve/Correlate call on the plan and must not be
// modified. One Forward result can be combined with many transformed kernels
// via ApplySpec, which is how the SOCS simulator shares the mask transform
// across its kernel bank.
func (p *Plan) Forward(img []float64) []complex128 {
	return p.ForwardInto(&p.scratch, img)
}

// ForwardInto computes the spectrum of img in the scratch's spectrum buffer
// and returns it. The result aliases s and is overwritten by the next
// ForwardInto/ConvolveWith/CorrelateWith through the same scratch.
func (p *Plan) ForwardInto(s *Scratch, img []float64) []complex128 {
	if len(img) != p.W*p.H {
		panic(fmt.Sprintf("fft: image length %d != %dx%d", len(img), p.W, p.H))
	}
	spec := s.spec
	for y := 0; y < p.H; y++ {
		row := spec[y*p.PW : (y+1)*p.PW]
		for x := 0; x < p.W; x++ {
			row[x] = complex(img[y*p.W+x], 0)
		}
		for x := p.W; x < p.PW; x++ {
			row[x] = 0
		}
	}
	for i := p.H * p.PW; i < len(spec); i++ {
		spec[i] = 0
	}
	transform2D(spec, p.PW, p.PH, false, s.col)
	return spec
}

// ApplySpec multiplies a Forward spectrum with a transformed kernel
// (conjugated when conj is true, giving correlation) and inverse-transforms
// the product into out. spec is not modified.
func (p *Plan) ApplySpec(spec, kfft []complex128, out []float64, conj bool) {
	p.ApplySpecWith(&p.scratch, spec, kfft, out, conj)
}

// ApplySpecWith is ApplySpec through a caller-owned scratch. Several workers
// may call it concurrently on one plan with the same shared spec as long as
// each passes a distinct Scratch. Passing the scratch whose spectrum buffer
// is spec itself is safe: the product is formed in the separate buf field.
func (p *Plan) ApplySpecWith(s *Scratch, spec, kfft []complex128, out []float64, conj bool) {
	if len(out) != p.W*p.H {
		panic(fmt.Sprintf("fft: out length %d != %dx%d", len(out), p.W, p.H))
	}
	if len(kfft) != p.PW*p.PH || len(spec) != p.PW*p.PH {
		panic("fft: spectrum or kernel transform from a different plan")
	}
	buf := s.buf
	if conj {
		for i := range buf {
			k := kfft[i]
			buf[i] = spec[i] * complex(real(k), -imag(k))
		}
	} else {
		for i := range buf {
			buf[i] = spec[i] * kfft[i]
		}
	}
	transform2D(buf, p.PW, p.PH, true, s.col)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			out[y*p.W+x] = real(buf[y*p.PW+x])
		}
	}
}

// DirectConvolve is the O(W*H*KW*KH) reference implementation of the same
// zero-padded convolution Plan.Convolve computes. It exists as the test
// oracle and for tiny kernels where FFT overhead dominates.
func DirectConvolve(img []float64, w, h int, kernel []float64, kw, kh int, out []float64) {
	cx, cy := (kw-1)/2, (kh-1)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for ky := 0; ky < kh; ky++ {
				iy := y - (ky - cy)
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x - (kx - cx)
					if ix < 0 || ix >= w {
						continue
					}
					s += img[iy*w+ix] * kernel[ky*kw+kx]
				}
			}
			out[y*w+x] = s
		}
	}
}

// DirectCorrelate is the reference for Plan.Correlate.
func DirectCorrelate(img []float64, w, h int, kernel []float64, kw, kh int, out []float64) {
	cx, cy := (kw-1)/2, (kh-1)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for ky := 0; ky < kh; ky++ {
				iy := y + (ky - cy)
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x + (kx - cx)
					if ix < 0 || ix >= w {
						continue
					}
					s += img[iy*w+ix] * kernel[ky*kw+kx]
				}
			}
			out[y*w+x] = s
		}
	}
}
