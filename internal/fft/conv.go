package fft

import "fmt"

// Plan is a reusable workspace for repeated "same"-size 2-D convolutions of a
// w x h image with kw x kh kernels. The ILT loop convolves the same kernels
// against evolving masks hundreds of times per run, so the plan caches the
// padded power-of-two geometry and scratch buffers, and kernels are
// transformed once with TransformKernel.
//
// A Plan is not safe for concurrent use; create one per goroutine.
type Plan struct {
	W, H   int // image size
	KW, KH int // kernel size (odd in both dimensions)
	PW, PH int // padded transform size (powers of two)
	buf    []complex128
}

// NewPlan builds a convolution plan. Kernel dimensions must be odd so the
// kernel has an unambiguous center pixel.
func NewPlan(w, h, kw, kh int) *Plan {
	if w <= 0 || h <= 0 || kw <= 0 || kh <= 0 {
		panic(fmt.Sprintf("fft: invalid plan dims %dx%d kernel %dx%d", w, h, kw, kh))
	}
	if kw%2 == 0 || kh%2 == 0 {
		panic(fmt.Sprintf("fft: kernel dims must be odd, got %dx%d", kw, kh))
	}
	pw := NextPow2(w + kw - 1)
	ph := NextPow2(h + kh - 1)
	return &Plan{W: w, H: h, KW: kw, KH: kh, PW: pw, PH: ph,
		buf: make([]complex128, pw*ph)}
}

// TransformKernel returns the frequency-domain representation of kernel
// (row-major kw x kh, center at ((kw-1)/2, (kh-1)/2)), wrapped so the center
// sits at the padded origin. The result can be passed to Convolve and
// Correlate any number of times.
func (p *Plan) TransformKernel(kernel []float64) []complex128 {
	if len(kernel) != p.KW*p.KH {
		panic(fmt.Sprintf("fft: kernel length %d != %dx%d", len(kernel), p.KW, p.KH))
	}
	kf := make([]complex128, p.PW*p.PH)
	cx, cy := (p.KW-1)/2, (p.KH-1)/2
	for ky := 0; ky < p.KH; ky++ {
		for kx := 0; kx < p.KW; kx++ {
			// Shift so the kernel center lands on (0,0), wrapping
			// negative offsets to the far edge of the padded field.
			x := (kx - cx + p.PW) % p.PW
			y := (ky - cy + p.PH) % p.PH
			kf[y*p.PW+x] = complex(kernel[ky*p.KW+kx], 0)
		}
	}
	FFT2D(kf, p.PW, p.PH)
	return kf
}

// Convolve computes the "same"-size zero-padded linear convolution of img
// (row-major W x H) with a transformed kernel and writes it to out.
// out(x,y) = sum_{i,j} img(x-i, y-j) * kernel(center+(i,j)).
func (p *Plan) Convolve(img []float64, kfft []complex128, out []float64) {
	p.apply(img, kfft, out, false)
}

// Correlate computes the "same"-size zero-padded cross-correlation of img
// with a transformed kernel: out(x,y) = sum_{i,j} img(x+i, y+j) *
// kernel(center+(i,j)). For symmetric kernels this equals Convolve; the ILT
// gradient needs the correlated (adjoint) form for asymmetric ones.
func (p *Plan) Correlate(img []float64, kfft []complex128, out []float64) {
	p.apply(img, kfft, out, true)
}

func (p *Plan) apply(img []float64, kfft []complex128, out []float64, conj bool) {
	spec := p.Forward(img)
	p.ApplySpec(spec, kfft, out, conj)
}

// Forward zero-pads img into the plan's transform field and returns its
// spectrum as a fresh slice. One Forward result can be combined with many
// transformed kernels via ApplySpec, which is how the SOCS simulator shares
// the mask transform across its kernel bank.
func (p *Plan) Forward(img []float64) []complex128 {
	if len(img) != p.W*p.H {
		panic(fmt.Sprintf("fft: image length %d != %dx%d", len(img), p.W, p.H))
	}
	spec := make([]complex128, p.PW*p.PH)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			spec[y*p.PW+x] = complex(img[y*p.W+x], 0)
		}
	}
	FFT2D(spec, p.PW, p.PH)
	return spec
}

// ApplySpec multiplies a Forward spectrum with a transformed kernel
// (conjugated when conj is true, giving correlation) and inverse-transforms
// the product into out. spec is not modified.
func (p *Plan) ApplySpec(spec, kfft []complex128, out []float64, conj bool) {
	if len(out) != p.W*p.H {
		panic(fmt.Sprintf("fft: out length %d != %dx%d", len(out), p.W, p.H))
	}
	if len(kfft) != p.PW*p.PH || len(spec) != p.PW*p.PH {
		panic("fft: spectrum or kernel transform from a different plan")
	}
	if conj {
		for i := range p.buf {
			k := kfft[i]
			p.buf[i] = spec[i] * complex(real(k), -imag(k))
		}
	} else {
		for i := range p.buf {
			p.buf[i] = spec[i] * kfft[i]
		}
	}
	IFFT2D(p.buf, p.PW, p.PH)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			out[y*p.W+x] = real(p.buf[y*p.PW+x])
		}
	}
}

// DirectConvolve is the O(W*H*KW*KH) reference implementation of the same
// zero-padded convolution Plan.Convolve computes. It exists as the test
// oracle and for tiny kernels where FFT overhead dominates.
func DirectConvolve(img []float64, w, h int, kernel []float64, kw, kh int, out []float64) {
	cx, cy := (kw-1)/2, (kh-1)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for ky := 0; ky < kh; ky++ {
				iy := y - (ky - cy)
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x - (kx - cx)
					if ix < 0 || ix >= w {
						continue
					}
					s += img[iy*w+ix] * kernel[ky*kw+kx]
				}
			}
			out[y*w+x] = s
		}
	}
}

// DirectCorrelate is the reference for Plan.Correlate.
func DirectCorrelate(img []float64, w, h int, kernel []float64, kw, kh int, out []float64) {
	cx, cy := (kw-1)/2, (kh-1)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for ky := 0; ky < kh; ky++ {
				iy := y + (ky - cy)
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x + (kx - cx)
					if ix < 0 || ix >= w {
						continue
					}
					s += img[iy*w+ix] * kernel[ky*kw+kx]
				}
			}
			out[y*w+x] = s
		}
	}
}
