package fft

import (
	"fmt"
	"os"
)

// EnvMode selects the spectral representation: the default is the
// half-spectrum real-input path; setting LDMO_FFT=complex at plan creation
// falls back to the full complex reference engine (the pre-overhaul path)
// for A/B verification and benchmarking. Spectra and transformed kernels are
// mode-specific: they must come from the same plan that consumes them.
const EnvMode = "LDMO_FFT"

// ModeComplex is the EnvMode value selecting the full-complex reference path.
const ModeComplex = "complex"

// Plan is a reusable workspace for repeated "same"-size 2-D convolutions of a
// w x h image with kw x kh kernels. The ILT loop convolves the same kernels
// against evolving masks hundreds of times per run, so the plan caches the
// padded power-of-two geometry, the twiddle/bit-reversal tables (shared
// process-wide per size), and scratch buffers; kernels are transformed once
// with TransformKernel. The hot path (Forward/ApplySpec and the
// Convolve/Correlate wrappers) performs no per-call allocation.
//
// In the default real mode all spectra are stored half-width (HW = PW/2+1
// Hermitian bins per row, PH rows); in complex mode (LDMO_FFT=complex) they
// are full PW x PH fields. SpecLen reports the active layout's length.
//
// A Plan is not safe for concurrent use; create one per goroutine. The one
// sanctioned sharing pattern is fan-out over a single Forward spectrum:
// ApplySpecWith and CorrelateWith may be called from several goroutines
// simultaneously on one plan as long as each caller owns a distinct Scratch
// (the methods only read plan geometry and the shared spectrum).
type Plan struct {
	W, H   int // image size
	KW, KH int // kernel size (odd in both dimensions)
	PW, PH int // padded transform size (powers of two)
	HW     int // spectral row width: PW/2+1 (real mode) or PW (complex)

	realMode bool
	vec      bool      // engine captured at construction (see EnvASM)
	twRow    *twiddles // length-PW tables (rows; rfft untangling)
	twHalf   *twiddles // length-PW/2 tables (packed rfft core; nil in complex mode)
	twCol    *twiddles // length-PH tables (columns)
	scratch  Scratch
}

// Scratch is the per-goroutine workspace of one convolution lane: a forward
// spectrum, a product/inverse-transform field, the blocked column strip, and
// (real mode) the real row staging buffer. A plan owns one Scratch for its
// serial methods; parallel callers allocate one per worker with NewScratch.
type Scratch struct {
	spec []complex128
	buf  []complex128
	col  []complex128
	rrow []float64
}

// NewPlan builds a convolution plan. Kernel dimensions must be odd so the
// kernel has an unambiguous center pixel. The spectral representation is
// chosen here from LDMO_FFT (see EnvMode).
func NewPlan(w, h, kw, kh int) *Plan {
	if w <= 0 || h <= 0 || kw <= 0 || kh <= 0 {
		panic(fmt.Sprintf("fft: invalid plan dims %dx%d kernel %dx%d", w, h, kw, kh))
	}
	if kw%2 == 0 || kh%2 == 0 {
		panic(fmt.Sprintf("fft: kernel dims must be odd, got %dx%d", kw, kh))
	}
	pw := NextPow2(w + kw - 1)
	ph := NextPow2(h + kh - 1)
	p := &Plan{W: w, H: h, KW: kw, KH: kh, PW: pw, PH: ph}
	p.realMode = os.Getenv(EnvMode) != ModeComplex
	p.vec = vecEnabled()
	if p.realMode {
		p.HW = rfftLen(pw)
		if pw > 1 {
			p.twHalf = tablesFor(pw / 2)
		}
	} else {
		p.HW = pw
	}
	p.twRow = tablesFor(pw)
	p.twCol = tablesFor(ph)
	p.scratch = *p.NewScratch()
	return p
}

// RealMode reports whether the plan uses the half-spectrum real-input path.
func (p *Plan) RealMode() bool { return p.realMode }

// Vectorized reports whether this plan runs the amd64 vector kernels. The
// engine is captured at construction and is part of the shared-plan cache
// identity, like the spectral mode.
func (p *Plan) Vectorized() bool { return p.vec }

// SpecLen returns the length of this plan's spectral buffers — what Forward
// returns and TransformKernel produces, and the size callers must allocate
// for fused accumulators fed to InverseSpec.
func (p *Plan) SpecLen() int { return p.HW * p.PH }

// NewScratch allocates a workspace sized for this plan's padded geometry.
func (p *Plan) NewScratch() *Scratch {
	return &Scratch{
		spec: make([]complex128, p.SpecLen()),
		buf:  make([]complex128, p.SpecLen()),
		col:  make([]complex128, colBlock*p.PH),
		rrow: make([]float64, p.PW),
	}
}

// TransformKernel returns the frequency-domain representation of kernel
// (row-major kw x kh, center at ((kw-1)/2, (kh-1)/2)), wrapped so the center
// sits at the padded origin. The result can be passed to Convolve and
// Correlate any number of times.
func (p *Plan) TransformKernel(kernel []float64) []complex128 {
	return p.transformKernel(&p.scratch, kernel)
}

// transformKernel derives a kernel spectrum using the column strip of s.
func (p *Plan) transformKernel(s *Scratch, kernel []float64) []complex128 {
	if len(kernel) != p.KW*p.KH {
		panic(fmt.Sprintf("fft: kernel length %d != %dx%d", len(kernel), p.KW, p.KH))
	}
	wrapped := make([]float64, p.PW*p.PH)
	cx, cy := (p.KW-1)/2, (p.KH-1)/2
	for ky := 0; ky < p.KH; ky++ {
		for kx := 0; kx < p.KW; kx++ {
			// Shift so the kernel center lands on (0,0), wrapping
			// negative offsets to the far edge of the padded field.
			x := (kx - cx + p.PW) % p.PW
			y := (ky - cy + p.PH) % p.PH
			wrapped[y*p.PW+x] = kernel[ky*p.KW+kx]
		}
	}
	kf := make([]complex128, p.SpecLen())
	if p.realMode {
		for y := 0; y < p.PH; y++ {
			rfftRow(kf[y*p.HW:(y+1)*p.HW], wrapped[y*p.PW:(y+1)*p.PW], p.twHalf, p.twRow, p.vec)
		}
		transformCols(kf, p.HW, p.PH, p.twCol, false, s.col, p.vec)
		return kf
	}
	for i, v := range wrapped {
		kf[i] = complex(v, 0)
	}
	transform2D(kf, p.PW, p.PH, false, s.col, p.vec)
	return kf
}

// Convolve computes the "same"-size zero-padded linear convolution of img
// (row-major W x H) with a transformed kernel and writes it to out.
// out(x,y) = sum_{i,j} img(x-i, y-j) * kernel(center+(i,j)).
func (p *Plan) Convolve(img []float64, kfft []complex128, out []float64) {
	p.ConvolveWith(&p.scratch, img, kfft, out)
}

// Correlate computes the "same"-size zero-padded cross-correlation of img
// with a transformed kernel: out(x,y) = sum_{i,j} img(x+i, y+j) *
// kernel(center+(i,j)). For symmetric kernels this equals Convolve; the ILT
// gradient needs the correlated (adjoint) form for asymmetric ones.
func (p *Plan) Correlate(img []float64, kfft []complex128, out []float64) {
	p.CorrelateWith(&p.scratch, img, kfft, out)
}

// ConvolveWith is Convolve through a caller-owned scratch, for workers
// sharing one plan.
func (p *Plan) ConvolveWith(s *Scratch, img []float64, kfft []complex128, out []float64) {
	spec := p.ForwardInto(s, img)
	p.ApplySpecWith(s, spec, kfft, out, false)
}

// CorrelateWith is Correlate through a caller-owned scratch, for workers
// sharing one plan.
func (p *Plan) CorrelateWith(s *Scratch, img []float64, kfft []complex128, out []float64) {
	spec := p.ForwardInto(s, img)
	p.ApplySpecWith(s, spec, kfft, out, true)
}

// Forward zero-pads img into the plan's transform field and returns its
// spectrum. The returned slice is the plan's own scratch: it stays valid
// until the next Forward/Convolve/Correlate call on the plan and must not be
// modified. One Forward result can be combined with many transformed kernels
// via ApplySpec, which is how the SOCS simulator shares the mask transform
// across its kernel bank.
func (p *Plan) Forward(img []float64) []complex128 {
	return p.ForwardInto(&p.scratch, img)
}

// ForwardInto computes the spectrum of img in the scratch's spectrum buffer
// and returns it. The result aliases s and is overwritten by the next
// ForwardInto/ConvolveWith/CorrelateWith through the same scratch.
func (p *Plan) ForwardInto(s *Scratch, img []float64) []complex128 {
	if len(img) != p.W*p.H {
		panic(fmt.Sprintf("fft: image length %d != %dx%d", len(img), p.W, p.H))
	}
	spec := s.spec
	if p.realMode {
		for y := 0; y < p.H; y++ {
			rfftRow(spec[y*p.HW:(y+1)*p.HW], img[y*p.W:(y+1)*p.W], p.twHalf, p.twRow, p.vec)
		}
		tail := spec[p.H*p.HW:]
		for i := range tail {
			tail[i] = 0
		}
		transformCols(spec, p.HW, p.PH, p.twCol, false, s.col, p.vec)
		return spec
	}
	for y := 0; y < p.H; y++ {
		row := spec[y*p.PW : (y+1)*p.PW]
		for x := 0; x < p.W; x++ {
			row[x] = complex(img[y*p.W+x], 0)
		}
		for x := p.W; x < p.PW; x++ {
			row[x] = 0
		}
	}
	for i := p.H * p.PW; i < len(spec); i++ {
		spec[i] = 0
	}
	transform2D(spec, p.PW, p.PH, false, s.col, p.vec)
	return spec
}

// ApplySpec multiplies a Forward spectrum with a transformed kernel
// (conjugated when conj is true, giving correlation) and inverse-transforms
// the product into out. spec is not modified.
func (p *Plan) ApplySpec(spec, kfft []complex128, out []float64, conj bool) {
	p.ApplySpecWith(&p.scratch, spec, kfft, out, conj)
}

// ApplySpecWith is ApplySpec through a caller-owned scratch. Several workers
// may call it concurrently on one plan with the same shared spec as long as
// each passes a distinct Scratch. Passing the scratch whose spectrum buffer
// is spec itself is safe: the product is formed in the separate buf field.
func (p *Plan) ApplySpecWith(s *Scratch, spec, kfft []complex128, out []float64, conj bool) {
	if len(kfft) != p.SpecLen() || len(spec) != p.SpecLen() {
		panic("fft: spectrum or kernel transform from a different plan")
	}
	buf := s.buf
	switch {
	case p.vec && conj:
		cmulConjInto(buf, spec, kfft)
	case p.vec:
		cmulInto(buf, spec, kfft)
	case conj:
		for i := range buf {
			k := kfft[i]
			buf[i] = spec[i] * complex(real(k), -imag(k))
		}
	default:
		for i := range buf {
			buf[i] = spec[i] * kfft[i]
		}
	}
	p.inverseInto(s, buf, out)
}

// InverseSpec inverse-transforms a frequency-domain field assembled from
// Forward spectra and transformed kernels of this plan — e.g. a fused
// gradient accumulation sum_k conj(K_k)*F_k — into out (row-major W x H).
// freq is destroyed. This is the "one inverse transform per gradient" entry
// the simulator's fused backward pass uses in place of one inverse per
// kernel.
func (p *Plan) InverseSpec(s *Scratch, freq []complex128, out []float64) {
	if len(freq) != p.SpecLen() {
		panic("fft: frequency field from a different plan")
	}
	p.inverseInto(s, freq, out)
}

// inverseInto inverse-transforms freq in place and writes the W x H real
// region into out. In real mode only the first H output rows are
// reconstructed: the padded tail rows are about to be discarded, so their
// inverse row transforms are skipped entirely.
func (p *Plan) inverseInto(s *Scratch, freq []complex128, out []float64) {
	if len(out) != p.W*p.H {
		panic(fmt.Sprintf("fft: out length %d != %dx%d", len(out), p.W, p.H))
	}
	if p.realMode {
		transformCols(freq, p.HW, p.PH, p.twCol, true, s.col, p.vec)
		norm := 1 / float64(p.PH)
		for y := 0; y < p.H; y++ {
			irfftRow(s.rrow, freq[y*p.HW:(y+1)*p.HW], p.twHalf, p.twRow, p.vec)
			orow := out[y*p.W : (y+1)*p.W]
			for x := range orow {
				orow[x] = s.rrow[x] * norm
			}
		}
		return
	}
	transform2D(freq, p.PW, p.PH, true, s.col, p.vec)
	for y := 0; y < p.H; y++ {
		for x := 0; x < p.W; x++ {
			out[y*p.W+x] = real(freq[y*p.PW+x])
		}
	}
}

// AccumulateConj adds spec[i] * conj(kfft[i]) into acc — the spectral-domain
// correlation accumulation of the fused adjoint pass. All three slices must
// share one plan's spectral layout.
func AccumulateConj(acc, spec, kfft []complex128) {
	if len(acc) != len(spec) || len(acc) != len(kfft) {
		panic(fmt.Sprintf("fft: accumulate length mismatch %d/%d/%d", len(acc), len(spec), len(kfft)))
	}
	if vecEnabled() {
		accumConjInto(acc, spec, kfft)
		return
	}
	for i, k := range kfft {
		acc[i] += spec[i] * complex(real(k), -imag(k))
	}
}

// MulConj writes spec[i] * conj(kfft[i]) into dst — the non-accumulating
// form of AccumulateConj used by workers that own a private per-kernel
// spectrum buffer. All three slices must share one plan's spectral layout.
func MulConj(dst, spec, kfft []complex128) {
	if len(dst) != len(spec) || len(dst) != len(kfft) {
		panic(fmt.Sprintf("fft: mulconj length mismatch %d/%d/%d", len(dst), len(spec), len(kfft)))
	}
	if vecEnabled() {
		cmulConjInto(dst, spec, kfft)
		return
	}
	for i, k := range kfft {
		dst[i] = spec[i] * complex(real(k), -imag(k))
	}
}

// DirectConvolve is the O(W*H*KW*KH) reference implementation of the same
// zero-padded convolution Plan.Convolve computes. It exists as the test
// oracle and for tiny kernels where FFT overhead dominates.
func DirectConvolve(img []float64, w, h int, kernel []float64, kw, kh int, out []float64) {
	cx, cy := (kw-1)/2, (kh-1)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for ky := 0; ky < kh; ky++ {
				iy := y - (ky - cy)
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x - (kx - cx)
					if ix < 0 || ix >= w {
						continue
					}
					s += img[iy*w+ix] * kernel[ky*kw+kx]
				}
			}
			out[y*w+x] = s
		}
	}
}

// DirectCorrelate is the reference for Plan.Correlate.
func DirectCorrelate(img []float64, w, h int, kernel []float64, kw, kh int, out []float64) {
	cx, cy := (kw-1)/2, (kh-1)/2
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			s := 0.0
			for ky := 0; ky < kh; ky++ {
				iy := y + (ky - cy)
				if iy < 0 || iy >= h {
					continue
				}
				for kx := 0; kx < kw; kx++ {
					ix := x + (kx - cx)
					if ix < 0 || ix >= w {
						continue
					}
					s += img[iy*w+ix] * kernel[ky*kw+kx]
				}
			}
			out[y*w+x] = s
		}
	}
}
