package fft

import "fmt"

// Real-input transforms with half-spectrum (Hermitian) storage.
//
// A real n-point signal has a conjugate-symmetric spectrum, so only the
// n/2+1 non-redundant bins are stored. The forward transform packs the n
// reals into n/2 complex values (even samples real, odd samples imaginary),
// runs one half-length complex FFT, and untangles the result with the
// length-n twiddles; the inverse runs the recipe backwards. Relative to
// transforming the same signal as a full complex array this halves both the
// flops and the spectral working set, which is why the Plan uses it for
// every mask, field, and kernel transform unless LDMO_FFT=complex asks for
// the reference path.
//
// 2-D half spectra are laid out row-major with hw = pw/2+1 complex bins per
// row and ph rows: RFFT along rows first, then full complex FFTs down each
// of the hw columns. Pointwise products of two such spectra (mask x kernel)
// stay Hermitian, so convolution works bin-for-bin like the full-complex
// path at half the width.
//
// On the vector engine (see asm.go) the pack, the untangle/repack pair
// loop, and the inverse unpack run through the AVX kernels two bins per
// iteration; the edge bins 0, m, and m/2 and the odd leftover pair stay on
// the scalar expressions, and both engines produce bit-identical rows.

// rfftLen returns the half-spectrum length of an n-point real transform.
func rfftLen(n int) int { return n/2 + 1 }

// untangleVecPairs returns how many double-iterations of the (k, m-k) pair
// loop the vector kernels may take: pairs (k, k+1) starting at k=1 need
// k+1 < m/2, leaving the tail iteration (if any) scalar.
func untangleVecPairs(m int) int {
	np := (m/2 - 2) / 2
	if np < 0 {
		return 0
	}
	return np
}

// rfftRow computes the n-point DFT of the n reals in src (n = twN.n) into
// dst[0:n/2+1]. twM must be the tables for n/2. src may be shorter than n;
// the tail is treated as zeros (callers pad rasters implicitly).
func rfftRow(dst []complex128, src []float64, twM, twN *twiddles, vec bool) {
	n := twN.n
	m := n / 2
	if len(dst) < m+1 {
		panic(fmt.Sprintf("fft: rfft dst %d < %d", len(dst), m+1))
	}
	if n == 1 {
		v := 0.0
		if len(src) > 0 {
			v = src[0]
		}
		dst[0] = complex(v, 0)
		return
	}
	// Pack pairs of reals into the first m slots of dst, zero-extending.
	z := dst[:m]
	j0 := 0
	if vec {
		// Whole pairs are a reinterpreting copy; the kernel streams them
		// 32 bytes at a time. The boundary pair (odd src length) and the
		// zero tail keep the scalar guards.
		limit := len(src)
		if limit > n {
			limit = n
		}
		if pairs := limit / 2; pairs > 0 {
			packPairsAVX(&z[0], &src[0], pairs)
			j0 = pairs
		}
	}
	for j := j0; j < m; j++ {
		var re, im float64
		if 2*j < len(src) {
			re = src[2*j]
		}
		if 2*j+1 < len(src) {
			im = src[2*j+1]
		}
		z[j] = complex(re, im)
	}
	transformWith(z, twM, false, vec)
	// Untangle: with A = Z[k], B = conj(Z[m-k]),
	//   X[k]   = (A+B)/2 + W_n^k * (-i)(A-B)/2
	//   X[m-k] = conj((A+B)/2 - W_n^k * (-i)(A-B)/2)
	// processed as pairs so the in-place overwrite is safe.
	z0 := z[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[m] = complex(real(z0)-imag(z0), 0)
	k := 1
	if vec {
		if np := untangleVecPairs(m); np > 0 {
			rfftUntangleAVX(&dst[1], &dst[m-2], &twN.fwd[1], np)
			k = 1 + 2*np
		}
	}
	for ; 2*k < m; k++ {
		a := z[k]
		b := complex(real(z[m-k]), -imag(z[m-k]))
		even := (a + b) * 0.5
		odd := (a - b) * complex(0, -0.5)
		t := twN.fwd[k] * odd
		dst[k] = even + t
		dst[m-k] = complex(real(even)-real(t), -(imag(even) - imag(t)))
	}
	if m >= 2 && m%2 == 0 {
		mid := z[m/2]
		dst[m/2] = complex(real(mid), -imag(mid))
	}
}

// irfftRow inverts rfftRow: it consumes the half spectrum in src[0:n/2+1]
// (destroying it) and writes the n reals into dst[0:n]. It applies the full
// 1/n row normalization, so irfftRow(rfftRow(x)) == x up to rounding.
func irfftRow(dst []float64, src []complex128, twM, twN *twiddles, vec bool) {
	n := twN.n
	m := n / 2
	if len(dst) < n {
		panic(fmt.Sprintf("fft: irfft dst %d < %d", len(dst), n))
	}
	if len(src) < m+1 {
		panic(fmt.Sprintf("fft: irfft src %d < %d", len(src), m+1))
	}
	if n == 1 {
		dst[0] = real(src[0])
		return
	}
	// Repack the half spectrum into the m-point packed transform:
	//   E = (X[k]+conj(X[m-k]))/2, O = conj(W_n^k)*(X[k]-conj(X[m-k]))/2,
	//   Z[k] = E + i*O.
	x0, xm := src[0], src[m]
	src[0] = complex(real(x0)+real(xm), real(x0)-real(xm)) * 0.5
	k := 1
	if vec {
		if np := untangleVecPairs(m); np > 0 {
			irfftRepackAVX(&src[1], &src[m-2], &twN.fwd[1], np)
			k = 1 + 2*np
		}
	}
	for ; 2*k < m; k++ {
		a := src[k]
		b := complex(real(src[m-k]), -imag(src[m-k]))
		even := (a + b) * 0.5
		w := twN.fwd[k]
		odd := (a - b) * 0.5 * complex(real(w), -imag(w))
		src[k] = even + complex(-imag(odd), real(odd))
		// Z[m-k] = conj(E) + i*conj(O).
		src[m-k] = complex(real(even)+imag(odd), real(odd)-imag(even))
	}
	if m >= 2 && m%2 == 0 {
		mid := src[m/2]
		src[m/2] = complex(real(mid), -imag(mid))
	}
	z := src[:m]
	transformWith(z, twM, true, vec)
	inv := 1 / float64(m)
	if vec {
		scaleUnpackAVX(&dst[0], &z[0], inv, m)
		return
	}
	for j, c := range z {
		dst[2*j] = real(c) * inv
		dst[2*j+1] = imag(c) * inv
	}
}
