//go:build !race

package fft

const raceEnabled = false
