//go:build !amd64

package fft

// Non-amd64 builds run the pure-Go scalar engine, which is the reference
// implementation the vector kernels are bit-identical to; the stubs below
// are never reachable because haveFFTASM is constant false.
const (
	haveAVX    = false
	haveAVX2   = false
	haveFFTASM = false
)

func fftStageAVX(x *complex128, n, half int, tw *complex128) {
	panic("fft: fftStageAVX without AVX support")
}

func cmulAVX(dst, a, b *complex128, n int) {
	panic("fft: cmulAVX without AVX support")
}

func cmulConjAVX(dst, a, b *complex128, n int) {
	panic("fft: cmulConjAVX without AVX support")
}

func accumConjAVX(acc, a, b *complex128, n int) {
	panic("fft: accumConjAVX without AVX support")
}

func rfftUntangleAVX(pa, pd, ptw *complex128, np int) {
	panic("fft: rfftUntangleAVX without AVX support")
}

func irfftRepackAVX(pa, pd, ptw *complex128, np int) {
	panic("fft: irfftRepackAVX without AVX support")
}

func packPairsAVX(dst *complex128, src *float64, n int) {
	panic("fft: packPairsAVX without AVX support")
}

func scaleUnpackAVX(dst *float64, src *complex128, s float64, n int) {
	panic("fft: scaleUnpackAVX without AVX support")
}
