package fft

import (
	"os"
	"sync"
)

// Plans of the same geometry and spectral mode are interchangeable: their
// twiddle tables are already process-shared (tables.go), and everything else
// a Plan holds — padded geometry, mode flag — is immutable after
// construction. PlanFor extends the sharing to the Plan itself, so the many
// simulators of a pipelined flow (one per ILT lane per layout) stop
// rebuilding identical plans and kernel transforms per task.
var (
	planMu    sync.Mutex
	planCache = map[planKey]*Plan{}
)

type planKey struct {
	w, h, kw, kh int
	realMode     bool
	asm          bool // vector engine at lookup time (see EnvASM)
}

// PlanFor returns the process-wide shared plan for the given convolution
// geometry under the current LDMO_FFT mode, building it on first use.
//
// A shared plan's embedded scratch is reserved for TransformKernel; every
// other access must go through the *With methods with a caller-owned
// Scratch (NewScratch), which only read the plan's immutable state and are
// safe from any number of goroutines. The serial convenience methods
// (Forward, Convolve, Correlate, ApplySpec) are NOT safe on a shared plan.
func PlanFor(w, h, kw, kh int) *Plan {
	key := planKey{w: w, h: h, kw: kw, kh: kh,
		realMode: os.Getenv(EnvMode) != ModeComplex,
		asm:      vecEnabled()}
	planMu.Lock()
	defer planMu.Unlock()
	if p := planCache[key]; p != nil {
		return p
	}
	p := NewPlan(w, h, kw, kh)
	planCache[key] = p
	return p
}

// TransformKernelWith is TransformKernel through a caller-owned scratch, so
// kernel banks can be derived on shared plans without touching the plan's
// embedded scratch.
func (p *Plan) TransformKernelWith(s *Scratch, kernel []float64) []complex128 {
	return p.transformKernel(s, kernel)
}
