package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// twiddles holds the precomputed constants of one transform length n: the
// bit-reversal permutation and the first half of the unit circle, sampled
// directly with Sincos per index (not by the multiplicative recurrence the
// old transform used, whose rounding error grows with n). The radix-2
// butterfly at stage size s indexes the table with stride n/s, so one table
// serves every stage.
//
// Tables are immutable after construction and shared freely across
// goroutines; tablesFor caches them per size, so repeated plans of the same
// geometry — the steady state of an ILT run — never recompute a twiddle.
type twiddles struct {
	n   int
	rev []int32      // bit-reversal permutation of 0..n-1
	fwd []complex128 // fwd[k] = exp(-2*pi*i*k/n), k < n/2
	inv []complex128 // inv[k] = exp(+2*pi*i*k/n), k < n/2

	// stgFwd/stgInv are the vector-friendly twiddle layout: the stage with
	// half-size h reads fwd with stride n/(2h), so its h constants are
	// scattered across the table; here they are copied out per stage into
	// one contiguous run at offset h-1 (stages h = 1, 2, 4, … concatenate
	// to n-1 entries), which is what lets the butterfly kernel issue plain
	// 32-byte vector loads. The values are the same Sincos-sampled
	// constants bit for bit. Built only on hosts that can run the vector
	// engine; nil elsewhere.
	stgFwd []complex128
	stgInv []complex128
}

var (
	tableMu    sync.RWMutex
	tableCache = map[int]*twiddles{}
)

// tablesFor returns the cached twiddle/bit-reversal tables for an n-point
// transform, building them on first use. n must be a power of two.
func tablesFor(n int) *twiddles {
	tableMu.RLock()
	t := tableCache[n]
	tableMu.RUnlock()
	if t != nil {
		return t
	}
	tableMu.Lock()
	defer tableMu.Unlock()
	if t = tableCache[n]; t != nil {
		return t
	}
	t = newTwiddles(n)
	tableCache[n] = t
	return t
}

func newTwiddles(n int) *twiddles {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	t := &twiddles{n: n, rev: make([]int32, n)}
	if n == 1 {
		return t
	}
	logn := bits.Len(uint(n)) - 1
	for i := 1; i < n; i++ {
		t.rev[i] = t.rev[i>>1]>>1 | int32((i&1)<<(logn-1))
	}
	half := n / 2
	t.fwd = make([]complex128, half)
	t.inv = make([]complex128, half)
	for k := 0; k < half; k++ {
		s, c := math.Sincos(2 * math.Pi * float64(k) / float64(n))
		t.fwd[k] = complex(c, -s)
		t.inv[k] = complex(c, s)
	}
	if haveFFTASM && n >= 4 {
		t.stgFwd = stageLayout(t.fwd, n)
		t.stgInv = stageLayout(t.inv, n)
	}
	return t
}

// stageLayout copies the strided per-stage twiddle reads of tab into the
// contiguous vector layout: stage half-size h occupies out[h-1 : 2h-1] with
// out[h-1+j] = tab[j * n/(2h)].
func stageLayout(tab []complex128, n int) []complex128 {
	out := make([]complex128, n-1)
	for half := 1; half <= n/2; half <<= 1 {
		step := n / (2 * half)
		dst := out[half-1 : 2*half-1]
		for j := range dst {
			dst[j] = tab[j*step]
		}
	}
	return out
}

// stripPool recycles the column-strip scratch of the package-level
// FFT2D/IFFT2D entry points, so the convenience API is allocation-free in
// steady state like the Plan hot path (which carries its strip in Scratch).
var stripPool sync.Pool

func getStrip(n int) *[]complex128 {
	v, _ := stripPool.Get().(*[]complex128)
	if v == nil || cap(*v) < n {
		s := make([]complex128, n)
		v = &s
	}
	*v = (*v)[:n]
	return v
}

func putStrip(v *[]complex128) { stripPool.Put(v) }
