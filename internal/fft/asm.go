package fft

import "os"

// Vector-engine selection. The hot loops of the spectral engine — butterfly
// stages, pointwise complex multiplies, and the half-spectrum
// untangle/repack — have amd64 AVX forms (asm_amd64.s) that are
// bit-identical to the scalar Go reference on finite inputs: products use
// separate mul and add (no FMA), every element's accumulation order is
// unchanged, and only commutative additions are reordered. The scalar code
// is the reference implementation and the only path on non-amd64 or
// pre-AVX2 hosts; LDMO_FFT_ASM=off forces it everywhere, which is how CI
// keeps the fallback from rotting and how benchmarks A/B the two engines.

// EnvASM selects the butterfly/pointwise kernel implementation: the default
// is the vector (amd64 AVX) engine where the host supports it; setting
// LDMO_FFT_ASM=off forces the pure-Go scalar reference engine. Plans capture
// the engine at construction (it is part of the plan-cache key), so a flip
// only affects plans built afterwards.
const EnvASM = "LDMO_FFT_ASM"

// ASMOff is the EnvASM value forcing the scalar reference engine.
const ASMOff = "off"

// ASMAvailable reports whether this host can run the vector kernels at all
// (amd64 with AVX2 and OS-saved YMM state).
func ASMAvailable() bool { return haveFFTASM }

// ASMEnabled reports whether the vector engine is in effect right now:
// available on this host and not disabled via LDMO_FFT_ASM=off.
func ASMEnabled() bool { return vecEnabled() }

// CPUFeatures lists the detected vector capabilities ("avx", "avx2") for
// bench records, so BENCH_fft.json numbers are interpretable across hosts.
func CPUFeatures() []string {
	var f []string
	if haveAVX {
		f = append(f, "avx")
	}
	if haveAVX2 {
		f = append(f, "avx2")
	}
	return f
}

// vecEnabled is the per-call dispatch read. Package-level entry points
// (FFT, IFFT, AccumulateConj, MulConj) consult it directly; Plans read it
// once at construction so a plan's transforms, spectra, and cache identity
// stay engine-consistent for the plan's lifetime.
func vecEnabled() bool { return haveFFTASM && os.Getenv(EnvASM) != ASMOff }

// cmulInto computes dst[i] = a[i] * b[i] on the vector engine, peeling the
// odd tail bin to the scalar expression. Callers guarantee equal lengths.
func cmulInto(dst, a, b []complex128) {
	n := len(dst)
	if v := n &^ 1; v > 0 {
		cmulAVX(&dst[0], &a[0], &b[0], v)
	}
	if n&1 == 1 {
		dst[n-1] = a[n-1] * b[n-1]
	}
}

// cmulConjInto computes dst[i] = a[i] * conj(b[i]) on the vector engine,
// peeling the odd tail bin.
func cmulConjInto(dst, a, b []complex128) {
	n := len(dst)
	if v := n &^ 1; v > 0 {
		cmulConjAVX(&dst[0], &a[0], &b[0], v)
	}
	if n&1 == 1 {
		k := b[n-1]
		dst[n-1] = a[n-1] * complex(real(k), -imag(k))
	}
}

// accumConjInto computes acc[i] += a[i] * conj(b[i]) on the vector engine,
// peeling the odd tail bin.
func accumConjInto(acc, a, b []complex128) {
	n := len(acc)
	if v := n &^ 1; v > 0 {
		accumConjAVX(&acc[0], &a[0], &b[0], v)
	}
	if n&1 == 1 {
		k := b[n-1]
		acc[n-1] += a[n-1] * complex(real(k), -imag(k))
	}
}
