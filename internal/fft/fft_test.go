package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 17: 32, 224: 256, 257: 512}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 1023} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestFFTPanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v", i, v)
		}
	}
	// FFT of a constant is an impulse of height N.
	y := []complex128{1, 1, 1, 1}
	FFT(y)
	if cmplx.Abs(y[0]-4) > 1e-12 || cmplx.Abs(y[1]) > 1e-12 || cmplx.Abs(y[2]) > 1e-12 || cmplx.Abs(y[3]) > 1e-12 {
		t.Fatalf("constant FFT = %v", y)
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		want[k] = s
	}
	got := append([]complex128(nil), x...)
	FFT(got)
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, DFT = %v", k, got[k], want[k])
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (1 + rng.Intn(7))
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		orig := append([]complex128(nil), x...)
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 32
	a := make([]complex128, n)
	b := make([]complex128, n)
	sum := make([]complex128, n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), 0)
		b[i] = complex(rng.NormFloat64(), 0)
		sum[i] = 2*a[i] + 3*b[i]
	}
	FFT(a)
	FFT(b)
	FFT(sum)
	for i := range sum {
		if cmplx.Abs(sum[i]-(2*a[i]+3*b[i])) > 1e-9 {
			t.Fatalf("linearity broken at %d", i)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 64
	x := make([]complex128, n)
	var tEnergy float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		tEnergy += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	FFT(x)
	var fEnergy float64
	for _, v := range x {
		fEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(fEnergy/float64(n)-tEnergy) > 1e-9*tEnergy {
		t.Fatalf("Parseval violated: %g vs %g", fEnergy/float64(n), tEnergy)
	}
}

func TestFFT2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w, h := 8, 16
	data := make([]complex128, w*h)
	for i := range data {
		data[i] = complex(rng.NormFloat64(), 0)
	}
	orig := append([]complex128(nil), data...)
	FFT2D(data, w, h)
	IFFT2D(data, w, h)
	for i := range data {
		if cmplx.Abs(data[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D roundtrip failed at %d", i)
		}
	}
}

func TestFFT2DPanicsOnBadLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FFT2D(make([]complex128, 7), 4, 2)
}

func randImage(rng *rand.Rand, n int) []float64 {
	img := make([]float64, n)
	for i := range img {
		img[i] = rng.Float64()
	}
	return img
}

func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w, h, kw, kh := 20, 14, 7, 5
	img := randImage(rng, w*h)
	kernel := randImage(rng, kw*kh)
	p := NewPlan(w, h, kw, kh)
	kf := p.TransformKernel(kernel)
	got := make([]float64, w*h)
	p.Convolve(img, kf, got)
	want := make([]float64, w*h)
	DirectConvolve(img, w, h, kernel, kw, kh, want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("convolve mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestCorrelateMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	w, h, kw, kh := 16, 16, 5, 7
	img := randImage(rng, w*h)
	kernel := randImage(rng, kw*kh)
	p := NewPlan(w, h, kw, kh)
	kf := p.TransformKernel(kernel)
	got := make([]float64, w*h)
	p.Correlate(img, kf, got)
	want := make([]float64, w*h)
	DirectCorrelate(img, w, h, kernel, kw, kh, want)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("correlate mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestConvolveImpulseKernel(t *testing.T) {
	// Convolution with a centered impulse is the identity.
	rng := rand.New(rand.NewSource(9))
	w, h := 12, 12
	img := randImage(rng, w*h)
	kernel := make([]float64, 9)
	kernel[4] = 1
	p := NewPlan(w, h, 3, 3)
	kf := p.TransformKernel(kernel)
	out := make([]float64, w*h)
	p.Convolve(img, kf, out)
	for i := range img {
		if math.Abs(out[i]-img[i]) > 1e-10 {
			t.Fatalf("impulse convolution not identity at %d", i)
		}
	}
}

func TestConvolveAdjointProperty(t *testing.T) {
	// <K*a, b> == <a, K^T b> where K^T is correlation: the identity the ILT
	// gradient derivation depends on.
	rng := rand.New(rand.NewSource(17))
	w, h, kw, kh := 10, 9, 5, 3
	a := randImage(rng, w*h)
	b := randImage(rng, w*h)
	kernel := randImage(rng, kw*kh)
	p := NewPlan(w, h, kw, kh)
	kf := p.TransformKernel(kernel)
	ka := make([]float64, w*h)
	p.Convolve(a, kf, ka)
	ktb := make([]float64, w*h)
	p.Correlate(b, kf, ktb)
	var lhs, rhs float64
	for i := range a {
		lhs += ka[i] * b[i]
		rhs += a[i] * ktb[i]
	}
	if math.Abs(lhs-rhs) > 1e-9*(math.Abs(lhs)+1) {
		t.Fatalf("adjoint identity broken: %g vs %g", lhs, rhs)
	}
}

func TestPlanPanics(t *testing.T) {
	for _, c := range [][4]int{{0, 4, 3, 3}, {4, 4, 2, 3}, {4, 4, 3, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPlan(%v) did not panic", c)
				}
			}()
			NewPlan(c[0], c[1], c[2], c[3])
		}()
	}
}

func TestTransformKernelLengthPanic(t *testing.T) {
	p := NewPlan(8, 8, 3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.TransformKernel(make([]float64, 4))
}

func BenchmarkFFT2D256(b *testing.B) {
	data := make([]complex128, 256*256)
	for i := range data {
		data[i] = complex(float64(i%17), 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT2D(data, 256, 256)
	}
}

func BenchmarkConvolve224(b *testing.B) {
	w, h := 224, 224
	img := make([]float64, w*h)
	kernel := make([]float64, 31*31)
	for i := range kernel {
		kernel[i] = 1.0 / float64(len(kernel))
	}
	p := NewPlan(w, h, 31, 31)
	kf := p.TransformKernel(kernel)
	out := make([]float64, w*h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Convolve(img, kf, out)
	}
}
