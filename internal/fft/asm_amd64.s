// AVX kernels for the spectral engine, built on the same determinism
// contract as the GEMM micro-kernels in internal/tensor: products use
// separate VMULPD/VADDPD/VSUBPD (no FMA — rounding must match the scalar
// reference exactly), vector lanes always map to DIFFERENT complex bins
// (two adjacent complex128 per YMM register, never a split accumulation),
// and every arithmetic expression is evaluated with exactly the operand
// structure the Go compiler gives the scalar loops. Addition operands may
// be commuted (IEEE addition is commutative on non-NaN values), so the
// kernels are bit-identical to the pure-Go reference on finite inputs.
//
// The complex multiply x*w = (xr*wr - xi*wi) + i(xr*wi + xi*wr) is the
// shared six-instruction sequence:
//
//	wr   = VPERMILPD $0x0 (w)          [wr, wr] per lane
//	wi   = VPERMILPD $0xF (w)          [wi, wi] per lane
//	t1   = x * wr                      [xr*wr, xi*wr]
//	xs   = VPERMILPD $0x5 (x)          [xi, xr]
//	t2   = xs * wi                     [xi*wi, xr*wi]
//	prod = VADDSUBPD t1, t2            [xr*wr - xi*wi, xi*wr + xr*wi]
//
// VADDSUBPD subtracts in the real slot and adds in the imaginary slot,
// which is exactly the scalar formula (the imaginary sum is commuted).

#include "textflag.h"

// Sign-bit mask over the imaginary slot of each complex128: XOR conjugates.
DATA conjMask<>+0(SB)/8, $0x0000000000000000
DATA conjMask<>+8(SB)/8, $0x8000000000000000
DATA conjMask<>+16(SB)/8, $0x0000000000000000
DATA conjMask<>+24(SB)/8, $0x8000000000000000
GLOBL conjMask<>(SB), RODATA|NOPTR, $32

// Sign-bit mask over the real slot: XOR computes i*x from the swapped pair.
DATA negReMask<>+0(SB)/8, $0x8000000000000000
DATA negReMask<>+8(SB)/8, $0x0000000000000000
DATA negReMask<>+16(SB)/8, $0x8000000000000000
DATA negReMask<>+24(SB)/8, $0x0000000000000000
GLOBL negReMask<>(SB), RODATA|NOPTR, $32

DATA halfConst<>+0(SB)/8, $0.5
GLOBL halfConst<>(SB), RODATA|NOPTR, $8

DATA negHalfConst<>+0(SB)/8, $-0.5
GLOBL negHalfConst<>(SB), RODATA|NOPTR, $8

// func cpuFeatureProbe() (avx, avx2 bool)
//
// Reports AVX/AVX2 support: CPUID.1:ECX must show OSXSAVE (bit 27) and AVX
// (bit 28), XCR0 must confirm the OS saves XMM+YMM state, and AVX2 is
// CPUID.(7,0):EBX bit 5 — the same probe shape as tensor.cpuidAVX.
TEXT ·cpuFeatureProbe(SB), NOSPLIT, $0-2
	MOVQ $1, AX
	XORQ CX, CX
	CPUID
	MOVQ CX, R8
	SHRQ $27, R8
	ANDQ $1, R8        // OSXSAVE
	MOVQ CX, R9
	SHRQ $28, R9
	ANDQ $1, R9        // AVX
	ANDQ R9, R8
	JZ   none
	XORL CX, CX
	XGETBV
	ANDQ $6, AX        // XCR0 bits 1..2: XMM and YMM state enabled
	CMPQ AX, $6
	JNE  none
	MOVB $1, avx+0(FP)
	MOVQ $7, AX
	XORQ CX, CX
	CPUID
	MOVQ BX, R8
	SHRQ $5, R8
	ANDQ $1, R8        // AVX2
	MOVB R8, avx2+1(FP)
	RET
none:
	MOVB $0, avx+0(FP)
	MOVB $0, avx2+1(FP)
	RET

// func fftStageAVX(x *complex128, n, half int, tw *complex128)
//
// One whole radix-2 butterfly stage over the n-element array at x: for each
// size-2*half block, a = x[k], b = x[k+half]*tw[k-start], x[k] = a+b,
// x[k+half] = a-b, two butterflies per iteration. tw is the stage's
// contiguous twiddle run from the vector layout in tables.go (the exact
// Sincos-sampled values the scalar path reads with stride n/size). half
// must be >= 2, so every block is a whole number of 32-byte vectors and no
// tail exists inside the stage.
TEXT ·fftStageAVX(SB), NOSPLIT, $0-32
	MOVQ x+0(FP), DI
	MOVQ n+8(FP), AX
	MOVQ half+16(FP), DX
	MOVQ tw+24(FP), R9
	SHLQ $4, AX              // n in bytes
	SHLQ $4, DX              // half in bytes
	LEAQ (DI)(AX*1), R8      // end of the array
outer:
	CMPQ DI, R8
	JGE  done
	LEAQ (DI)(DX*1), BX      // b pointer: x + half
	XORQ SI, SI
inner:
	CMPQ SI, DX
	JGE  innerdone
	VMOVUPD   (BX)(SI*1), Y1   // b = [b0, b1]
	VMOVUPD   (R9)(SI*1), Y2   // w = [w0, w1]
	VPERMILPD $0x0, Y2, Y10    // [w0r, w0r, w1r, w1r]
	VPERMILPD $0xF, Y2, Y11    // [w0i, w0i, w1i, w1i]
	VMULPD    Y1, Y10, Y12     // b * wr
	VPERMILPD $0x5, Y1, Y13    // [b0i, b0r, b1i, b1r]
	VMULPD    Y13, Y11, Y13    // bswap * wi
	VADDSUBPD Y13, Y12, Y14    // t = b * w
	VMOVUPD   (DI)(SI*1), Y0   // a
	VADDPD    Y14, Y0, Y15
	VMOVUPD   Y15, (DI)(SI*1)  // x[k] = a + t
	VSUBPD    Y14, Y0, Y15
	VMOVUPD   Y15, (BX)(SI*1)  // x[k+half] = a - t
	ADDQ      $32, SI
	JMP       inner
innerdone:
	LEAQ (BX)(DX*1), DI      // next block: skip the half just written
	JMP  outer
done:
	VZEROUPPER
	RET

// func cmulAVX(dst, a, b *complex128, n int)
//
// dst[i] = a[i] * b[i] for i < n, two bins per iteration. n must be even
// (the Go wrapper peels the odd tail).
TEXT ·cmulAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ n+24(FP), CX
	SHLQ $4, CX
	XORQ DX, DX
cmloop:
	CMPQ DX, CX
	JGE  cmdone
	VMOVUPD   (SI)(DX*1), Y1
	VMOVUPD   (BX)(DX*1), Y2
	VPERMILPD $0x0, Y2, Y10
	VPERMILPD $0xF, Y2, Y11
	VMULPD    Y1, Y10, Y12
	VPERMILPD $0x5, Y1, Y13
	VMULPD    Y13, Y11, Y13
	VADDSUBPD Y13, Y12, Y14
	VMOVUPD   Y14, (DI)(DX*1)
	ADDQ      $32, DX
	JMP       cmloop
cmdone:
	VZEROUPPER
	RET

// func cmulConjAVX(dst, a, b *complex128, n int)
//
// dst[i] = a[i] * conj(b[i]) for i < n (n even). The conjugation is an
// exact sign-bit flip, then the shared multiply sequence.
TEXT ·cmulConjAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ n+24(FP), CX
	SHLQ $4, CX
	XORQ DX, DX
	VMOVUPD conjMask<>(SB), Y8
ccloop:
	CMPQ DX, CX
	JGE  ccdone
	VMOVUPD   (SI)(DX*1), Y1
	VMOVUPD   (BX)(DX*1), Y2
	VXORPD    Y8, Y2, Y2       // conj(b)
	VPERMILPD $0x0, Y2, Y10
	VPERMILPD $0xF, Y2, Y11
	VMULPD    Y1, Y10, Y12
	VPERMILPD $0x5, Y1, Y13
	VMULPD    Y13, Y11, Y13
	VADDSUBPD Y13, Y12, Y14
	VMOVUPD   Y14, (DI)(DX*1)
	ADDQ      $32, DX
	JMP       ccloop
ccdone:
	VZEROUPPER
	RET

// func accumConjAVX(acc, a, b *complex128, n int)
//
// acc[i] += a[i] * conj(b[i]) for i < n (n even) — the fused
// frequency-domain gradient accumulation. The add reads the prior
// accumulator value exactly as the scalar += does.
TEXT ·accumConjAVX(SB), NOSPLIT, $0-32
	MOVQ acc+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ n+24(FP), CX
	SHLQ $4, CX
	XORQ DX, DX
	VMOVUPD conjMask<>(SB), Y8
acloop:
	CMPQ DX, CX
	JGE  acdone
	VMOVUPD   (SI)(DX*1), Y1
	VMOVUPD   (BX)(DX*1), Y2
	VXORPD    Y8, Y2, Y2
	VPERMILPD $0x0, Y2, Y10
	VPERMILPD $0xF, Y2, Y11
	VMULPD    Y1, Y10, Y12
	VPERMILPD $0x5, Y1, Y13
	VMULPD    Y13, Y11, Y13
	VADDSUBPD Y13, Y12, Y14
	VMOVUPD   (DI)(DX*1), Y0
	VADDPD    Y14, Y0, Y15     // acc + product, scalar += order
	VMOVUPD   Y15, (DI)(DX*1)
	ADDQ      $32, DX
	JMP       acloop
acdone:
	VZEROUPPER
	RET

// func rfftUntangleAVX(pa, pd, ptw *complex128, np int)
//
// np double-iterations of the forward half-spectrum untangle (rfftRow):
// iteration i handles bins k = 1+2i and k+1 with
//
//	a = z[k], b = conj(z[m-k])
//	even = (a+b) * (0.5+0i)
//	odd  = (a-b) * (0-0.5i)
//	t    = odd * w_k                    (w from the length-n table)
//	dst[k]   = even + t
//	dst[m-k] = conj(even - t)
//
// pa points at z[1] (ascending), pd at z[m-2] (the descending pair is
// loaded as one vector and lane-swapped), ptw at fwd[1]. The 0.5-scalings
// run the full complex-multiply formula — including the ±0 imaginary
// products — because that is what the scalar `(a+b) * 0.5` compiles to.
TEXT ·rfftUntangleAVX(SB), NOSPLIT, $0-32
	MOVQ pa+0(FP), DI
	MOVQ pd+8(FP), BX
	MOVQ ptw+16(FP), R9
	MOVQ np+24(FP), CX
	VMOVUPD      conjMask<>(SB), Y8
	VBROADCASTSD halfConst<>(SB), Y9     // [0.5 x4]
	VXORPD       Y10, Y10, Y10           // [0 x4]
	VBROADCASTSD negHalfConst<>(SB), Y11 // [-0.5 x4]
unloop:
	TESTQ CX, CX
	JZ    undone
	VMOVUPD    (DI), Y0            // a = [z[k], z[k+1]]
	VMOVUPD    (BX), Y1            // [z[m-k-1], z[m-k]]
	VPERM2F128 $0x01, Y1, Y1, Y1   // [z[m-k], z[m-k-1]]
	VXORPD     Y8, Y1, Y1          // b = conj
	VADDPD     Y1, Y0, Y2          // s = a + b
	VSUBPD     Y1, Y0, Y3          // d = a - b
	// even = cmul(s, 0.5+0i): wr = 0.5, wi = +0
	VMULPD    Y2, Y9, Y13
	VPERMILPD $0x5, Y2, Y14
	VMULPD    Y14, Y10, Y14
	VADDSUBPD Y14, Y13, Y4
	// odd = cmul(d, 0-0.5i): wr = +0, wi = -0.5
	VMULPD    Y3, Y10, Y13
	VPERMILPD $0x5, Y3, Y14
	VMULPD    Y14, Y11, Y14
	VADDSUBPD Y14, Y13, Y5
	// t = cmul(odd, w)
	VMOVUPD   (R9), Y6
	VPERMILPD $0x0, Y6, Y13
	VPERMILPD $0xF, Y6, Y14
	VMULPD    Y5, Y13, Y13
	VPERMILPD $0x5, Y5, Y15
	VMULPD    Y15, Y14, Y14
	VADDSUBPD Y14, Y13, Y7
	// dst[k] = even + t
	VADDPD  Y7, Y4, Y13
	VMOVUPD Y13, (DI)
	// dst[m-k] = conj(even - t), stored lane-swapped descending
	VSUBPD     Y7, Y4, Y13
	VXORPD     Y8, Y13, Y13
	VPERM2F128 $0x01, Y13, Y13, Y13
	VMOVUPD    Y13, (BX)
	ADDQ $32, DI
	ADDQ $32, R9
	SUBQ $32, BX
	DECQ CX
	JMP  unloop
undone:
	VZEROUPPER
	RET

// func irfftRepackAVX(pa, pd, ptw *complex128, np int)
//
// np double-iterations of the inverse repack (irfftRow): iteration i
// handles bins k = 1+2i and k+1 with
//
//	a = src[k], b = conj(src[m-k])
//	even = (a+b) * (0.5+0i)
//	h    = (a-b) * (0.5+0i)
//	odd  = h * conj(w_k)
//	src[k]   = even + i*odd
//	src[m-k] = conj(even) + i*conj(odd)
//
// Pointer layout matches rfftUntangleAVX.
TEXT ·irfftRepackAVX(SB), NOSPLIT, $0-32
	MOVQ pa+0(FP), DI
	MOVQ pd+8(FP), BX
	MOVQ ptw+16(FP), R9
	MOVQ np+24(FP), CX
	VMOVUPD      conjMask<>(SB), Y8
	VBROADCASTSD halfConst<>(SB), Y9
	VXORPD       Y10, Y10, Y10
	VMOVUPD      negReMask<>(SB), Y12
reloop:
	TESTQ CX, CX
	JZ    redone
	VMOVUPD    (DI), Y0
	VMOVUPD    (BX), Y1
	VPERM2F128 $0x01, Y1, Y1, Y1
	VXORPD     Y8, Y1, Y1          // b = conj(src[m-k])
	VADDPD     Y1, Y0, Y2          // s = a + b
	VSUBPD     Y1, Y0, Y3          // d = a - b
	// even = cmul(s, 0.5+0i)
	VMULPD    Y2, Y9, Y13
	VPERMILPD $0x5, Y2, Y14
	VMULPD    Y14, Y10, Y14
	VADDSUBPD Y14, Y13, Y4
	// h = cmul(d, 0.5+0i)
	VMULPD    Y3, Y9, Y13
	VPERMILPD $0x5, Y3, Y14
	VMULPD    Y14, Y10, Y14
	VADDSUBPD Y14, Y13, Y5
	// odd = cmul(h, conj(w))
	VMOVUPD   (R9), Y6
	VXORPD    Y8, Y6, Y6
	VPERMILPD $0x0, Y6, Y13
	VPERMILPD $0xF, Y6, Y14
	VMULPD    Y5, Y13, Y13
	VPERMILPD $0x5, Y5, Y15
	VMULPD    Y15, Y14, Y14
	VADDSUBPD Y14, Y13, Y7
	// src[k] = even + i*odd, where i*odd = [-odd_i, odd_r]
	VPERMILPD $0x5, Y7, Y13
	VXORPD    Y12, Y13, Y13
	VADDPD    Y13, Y4, Y13
	VMOVUPD   Y13, (DI)
	// src[m-k] = conj(even) + i*conj(odd) = [even_r + odd_i, odd_r - even_i]
	VXORPD     Y8, Y4, Y14
	VPERMILPD  $0x5, Y7, Y15
	VADDPD     Y15, Y14, Y14
	VPERM2F128 $0x01, Y14, Y14, Y14
	VMOVUPD    Y14, (BX)
	ADDQ $32, DI
	ADDQ $32, R9
	SUBQ $32, BX
	DECQ CX
	JMP  reloop
redone:
	VZEROUPPER
	RET

// func packPairsAVX(dst *complex128, src *float64, n int)
//
// The rfft even/odd pack: dst[j] = complex(src[2j], src[2j+1]) for j < n,
// which is a straight 16n-byte copy reinterpreting float64 pairs as
// complex128 — the scalar loop's loads and stores, 32 bytes at a time.
TEXT ·packPairsAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHLQ $4, CX
	XORQ DX, DX
ppvec:
	LEAQ 32(DX), AX
	CMPQ AX, CX
	JGT  pptail
	VMOVUPD (SI)(DX*1), Y0
	VMOVUPD Y0, (DI)(DX*1)
	MOVQ    AX, DX
	JMP     ppvec
pptail:
	CMPQ DX, CX
	JGE  ppdone
	VMOVUPD (SI)(DX*1), X0
	VMOVUPD X0, (DI)(DX*1)
	ADDQ    $16, DX
	JMP     pptail
ppdone:
	VZEROUPPER
	RET

// func scaleUnpackAVX(dst *float64, src *complex128, s float64, n int)
//
// The irfft unpack: dst[2j] = real(src[j])*s, dst[2j+1] = imag(src[j])*s
// for j < n — elementwise float64 multiply by the broadcast row norm,
// exactly the two scalar multiplies per bin.
TEXT ·scaleUnpackAVX(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	VBROADCASTSD s+16(FP), Y1
	MOVQ         n+24(FP), CX
	SHLQ         $4, CX
	XORQ         DX, DX
suvec:
	LEAQ 32(DX), AX
	CMPQ AX, CX
	JGT  sutail
	VMOVUPD (SI)(DX*1), Y0
	VMULPD  Y0, Y1, Y0
	VMOVUPD Y0, (DI)(DX*1)
	MOVQ    AX, DX
	JMP     suvec
sutail:
	CMPQ DX, CX
	JGE  sudone
	VMOVUPD (SI)(DX*1), X0
	VMULPD  X0, X1, X0
	VMOVUPD X0, (DI)(DX*1)
	ADDQ    $16, DX
	JMP     sutail
sudone:
	VZEROUPPER
	RET
