package fft

import (
	"math"
	"math/rand"
	"testing"
)

// The vector engine's contract is bit-identity with the scalar reference on
// finite inputs, not just closeness (see asm.go). Every test here compares
// through Float64bits so a single flipped sign of a zero or one differently
// rounded product fails loudly. The whole file is skipped on hosts that
// cannot run the vector kernels; the scalar reference is then the only
// engine and there is nothing to compare.

func requireASM(t testing.TB) {
	t.Helper()
	if !ASMAvailable() {
		t.Skip("vector engine unavailable on this host")
	}
}

func bitsEqual(a, b complex128) bool {
	return math.Float64bits(real(a)) == math.Float64bits(real(b)) &&
		math.Float64bits(imag(a)) == math.Float64bits(imag(b))
}

func diffComplex(t *testing.T, label string, got, want []complex128) {
	t.Helper()
	for i := range want {
		if !bitsEqual(got[i], want[i]) {
			t.Fatalf("%s: bin %d differs bitwise: vector %v (%x,%x) scalar %v (%x,%x)",
				label, i, got[i],
				math.Float64bits(real(got[i])), math.Float64bits(imag(got[i])),
				want[i],
				math.Float64bits(real(want[i])), math.Float64bits(imag(want[i])))
		}
	}
}

func diffFloat(t *testing.T, label string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: sample %d differs bitwise: vector %v (%x) scalar %v (%x)",
				label, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// planSizes is every transform length the plan cache can produce: NextPow2
// of image+kernel padding is always a power of two, and the packed rfft
// core halves it once more, so powers of two from 1 to 4096 cover the whole
// reachable family (224-class rasters pad to 256; tests go far beyond).
var planSizes = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// TestVecTransformBitIdentical pins the butterfly kernel: for every
// reachable size, forward and inverse, the vector stage path produces the
// same bits as the scalar stage loop.
func TestVecTransformBitIdentical(t *testing.T) {
	requireASM(t)
	rng := rand.New(rand.NewSource(101))
	for _, n := range planSizes {
		tw := tablesFor(n)
		for _, inverse := range []bool{false, true} {
			ref := randComplex(rng, n)
			vec := append([]complex128(nil), ref...)
			transformWith(ref, tw, inverse, false)
			transformWith(vec, tw, inverse, true)
			label := "fwd"
			if inverse {
				label = "inv"
			}
			diffComplex(t, label+"/"+itoa(n), vec, ref)
		}
	}
}

// TestVecRFFTRowBitIdentical pins pack, untangle, repack, and unpack across
// the reachable sizes, including short source rows (the zero-extended tail
// every padded raster row has), odd source lengths (the pack boundary pair),
// and the tiny sizes whose pair loop is shorter than one vector.
func TestVecRFFTRowBitIdentical(t *testing.T) {
	requireASM(t)
	rng := rand.New(rand.NewSource(202))
	for _, n := range planSizes[1:] { // rfft needs n >= 2
		twM := tablesFor(maxInt(n/2, 1))
		twN := tablesFor(n)
		srcLens := []int{n, n - 1, n / 2, n/2 + 1, 1, 0}
		for _, sl := range srcLens {
			if sl < 0 {
				continue
			}
			src := randImage(rng, sl)
			ref := make([]complex128, rfftLen(n))
			vec := make([]complex128, rfftLen(n))
			rfftRow(ref, src, twM, twN, false)
			rfftRow(vec, src, twM, twN, true)
			label := itoa(n) + "/src" + itoa(sl)
			diffComplex(t, "rfft/"+label, vec, ref)

			// irfftRow destroys its input; feed each engine its own copy of
			// the same spectrum.
			specRef := append([]complex128(nil), ref...)
			specVec := append([]complex128(nil), ref...)
			outRef := make([]float64, n)
			outVec := make([]float64, n)
			irfftRow(outRef, specRef, twM, twN, false)
			irfftRow(outVec, specVec, twM, twN, true)
			diffFloat(t, "irfft/"+label, outVec, outRef)
		}
	}
}

// TestVecPointwiseBitIdentical pins the pointwise kernels at every
// sub-vector length and at odd lengths that exercise the peeled tail bin.
func TestVecPointwiseBitIdentical(t *testing.T) {
	requireASM(t)
	rng := rand.New(rand.NewSource(303))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 33, 1000, 1023} {
		a := randComplex(rng, n)
		b := randComplex(rng, n)
		ref := make([]complex128, n)
		vec := make([]complex128, n)

		for i := range ref {
			ref[i] = a[i] * b[i]
		}
		cmulInto(vec, a, b)
		diffComplex(t, "cmul/"+itoa(n), vec, ref)

		for i := range ref {
			k := b[i]
			ref[i] = a[i] * complex(real(k), -imag(k))
		}
		cmulConjInto(vec, a, b)
		diffComplex(t, "cmulconj/"+itoa(n), vec, ref)

		acc0 := randComplex(rng, n)
		accRef := append([]complex128(nil), acc0...)
		accVec := append([]complex128(nil), acc0...)
		for i, k := range b {
			accRef[i] += a[i] * complex(real(k), -imag(k))
		}
		accumConjInto(accVec, a, b)
		diffComplex(t, "accumconj/"+itoa(n), accVec, accRef)
	}
}

// TestVecPlanEngineBitIdentical compares whole convolution plans built under
// the two engines — kernel transform, forward spectrum, convolve, correlate,
// and the fused spectral accumulation — in both spectral modes. This is the
// end-to-end form of the contract: an optimizer run cannot tell the engines
// apart by output bits.
func TestVecPlanEngineBitIdentical(t *testing.T) {
	requireASM(t)
	for _, mode := range []string{"", ModeComplex} {
		t.Run("mode="+modeName(mode), func(t *testing.T) {
			t.Setenv(EnvMode, mode)
			rng := rand.New(rand.NewSource(404))
			w, h, kw, kh := 37, 29, 7, 5 // non-square, non-power-of-two image
			img := randImage(rng, w*h)
			kernel := randImage(rng, kw*kh)

			t.Setenv(EnvASM, ASMOff)
			ps := NewPlan(w, h, kw, kh)
			if ps.Vectorized() {
				t.Fatal("LDMO_FFT_ASM=off plan claims the vector engine")
			}
			kfS := ps.TransformKernel(kernel)
			t.Setenv(EnvASM, "")
			pv := NewPlan(w, h, kw, kh)
			if !pv.Vectorized() {
				t.Fatal("default plan on an AVX2 host should use the vector engine")
			}
			kfV := pv.TransformKernel(kernel)
			diffComplex(t, "kernel spectrum", kfV, kfS)

			specS := append([]complex128(nil), ps.Forward(img)...)
			specV := append([]complex128(nil), pv.Forward(img)...)
			diffComplex(t, "forward spectrum", specV, specS)

			outS := make([]float64, w*h)
			outV := make([]float64, w*h)
			ps.Convolve(img, kfS, outS)
			pv.Convolve(img, kfV, outV)
			diffFloat(t, "convolve", outV, outS)
			ps.Correlate(img, kfS, outS)
			pv.Correlate(img, kfV, outV)
			diffFloat(t, "correlate", outV, outS)

			// Fused adjoint path: accumulate conj products under each
			// engine, then inverse-transform through the matching plan.
			accS := make([]complex128, ps.SpecLen())
			accV := make([]complex128, pv.SpecLen())
			t.Setenv(EnvASM, ASMOff)
			AccumulateConj(accS, specS, kfS)
			MulConj(specS, specS, kfS)
			t.Setenv(EnvASM, "")
			AccumulateConj(accV, specV, kfV)
			MulConj(specV, specV, kfV)
			diffComplex(t, "accumulate-conj", accV, accS)
			diffComplex(t, "mul-conj", specV, specS)
			ps.InverseSpec(ps.NewScratch(), accS, outS)
			pv.InverseSpec(pv.NewScratch(), accV, outV)
			diffFloat(t, "inverse-spec", outV, outS)
		})
	}
}

// FuzzVecEquivalence drives the rfft row pipeline and the pointwise kernels
// with fuzzer-chosen sizes, source cuts, and data seeds, asserting bitwise
// engine equality every time. The seeds cover the structural edges (smallest
// sizes, odd cuts, sub-vector tails); the fuzzer explores from there.
func FuzzVecEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(1), uint8(0))
	f.Add(int64(2), uint8(2), uint8(1))
	f.Add(int64(3), uint8(4), uint8(3))
	f.Add(int64(4), uint8(8), uint8(255))
	f.Add(int64(5), uint8(12), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, sizeExp, cut uint8) {
		requireASM(t)
		n := 1 << (int(sizeExp)%12 + 1) // 2 .. 4096
		rng := rand.New(rand.NewSource(seed))
		srcLen := n - int(cut)%n
		src := randImage(rng, srcLen)

		twM := tablesFor(maxInt(n/2, 1))
		twN := tablesFor(n)
		ref := make([]complex128, rfftLen(n))
		vec := make([]complex128, rfftLen(n))
		rfftRow(ref, src, twM, twN, false)
		rfftRow(vec, src, twM, twN, true)
		diffComplex(t, "fuzz rfft", vec, ref)

		other := randComplex(rng, len(ref))
		accRef := append([]complex128(nil), ref...)
		accVec := append([]complex128(nil), ref...)
		for i, k := range other {
			accRef[i] += ref[i] * complex(real(k), -imag(k))
		}
		accumConjInto(accVec, vec, other)
		diffComplex(t, "fuzz accumconj", accVec, accRef)

		outRef := make([]float64, n)
		outVec := make([]float64, n)
		irfftRow(outRef, accRef, twM, twN, false)
		irfftRow(outVec, accVec, twM, twN, true)
		diffFloat(t, "fuzz irfft", outVec, outRef)
	})
}

// TestVecKernelsZeroAlloc pins the allocation contract of the vector entry
// points themselves: the asm wrappers and the vec transform paths must not
// allocate once tables exist. (TestHotPathZeroAlloc covers the plan methods
// under whichever engine the host default selects.)
func TestVecKernelsZeroAlloc(t *testing.T) {
	requireASM(t)
	if raceEnabled {
		t.Skip("sync.Pool randomly drops puts under the race detector")
	}
	rng := rand.New(rand.NewSource(505))
	const n = 256
	x := randComplex(rng, n)
	a := randComplex(rng, n)
	b := randComplex(rng, n)
	dst := make([]complex128, n)
	tw := tablesFor(n)
	twM := tablesFor(n / 2)
	spec := make([]complex128, rfftLen(n))
	src := randImage(rng, n)
	real0 := make([]float64, n)

	cases := map[string]func(){
		"transformWith": func() { transformWith(x, tw, false, true) },
		"cmulInto":      func() { cmulInto(dst, a, b) },
		"cmulConjInto":  func() { cmulConjInto(dst, a, b) },
		"accumConjInto": func() { accumConjInto(dst, a, b) },
		"rfftRow":       func() { rfftRow(spec, src, twM, tw, true) },
		"irfftRow":      func() { irfftRow(real0, spec, twM, tw, true) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f objects per call, want 0", name, allocs)
		}
	}
}

// TestVecApplySpecZeroAlloc pins the plan hot path explicitly on the vector
// engine, independent of the host default.
func TestVecApplySpecZeroAlloc(t *testing.T) {
	requireASM(t)
	if raceEnabled {
		t.Skip("sync.Pool randomly drops puts under the race detector")
	}
	t.Setenv(EnvASM, "")
	rng := rand.New(rand.NewSource(606))
	w, h, kw, kh := 32, 32, 7, 7
	img := randImage(rng, w*h)
	p := NewPlan(w, h, kw, kh)
	kf := p.TransformKernel(randImage(rng, kw*kh))
	out := make([]float64, w*h)
	s := p.NewScratch()
	spec := p.ForwardInto(s, img)
	if allocs := testing.AllocsPerRun(20, func() {
		p.ApplySpecWith(s, spec, kf, out, true)
	}); allocs != 0 {
		t.Errorf("vector ApplySpecWith allocates %.1f objects per call, want 0", allocs)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func modeName(mode string) string {
	if mode == "" {
		return "real"
	}
	return mode
}
