package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) / float64(n) * float64(j)
			s += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = s
	}
	return out
}

// TestRoundTripAccuracy4096 is the twiddle-accuracy property the table
// overhaul exists for: at n=4096 the multiplicative recurrence the old
// transform used accumulates error past 1e-12; the Sincos tables stay well
// below it.
func TestRoundTripAccuracy4096(t *testing.T) {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	orig := append([]complex128(nil), x...)
	FFT(x)
	IFFT(x)
	for i := range x {
		if d := cmplx.Abs(x[i] - orig[i]); d > 1e-12 {
			t.Fatalf("complex round-trip error %g at %d exceeds 1e-12", d, i)
		}
	}
}

func TestRFFTRoundTripAccuracy4096(t *testing.T) {
	const n = 4096
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	twM, twN := tablesFor(n/2), tablesFor(n)
	spec := make([]complex128, n/2+1)
	rfftRow(spec, x, twM, twN, false)
	back := make([]float64, n)
	irfftRow(back, spec, twM, twN, false)
	for i := range x {
		if d := math.Abs(back[i] - x[i]); d > 1e-12 {
			t.Fatalf("real round-trip error %g at %d exceeds 1e-12", d, i)
		}
	}
}

// TestRFFTMatchesDFT checks the half spectrum against the naive DFT of the
// same real signal across sizes, including the degenerate ones.
func TestRFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]float64, n)
		cx := make([]complex128, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			cx[i] = complex(x[i], 0)
		}
		want := naiveDFT(cx)
		got := make([]complex128, n/2+1)
		rfftRow(got, x, tablesFor(max(n/2, 1)), tablesFor(n), false)
		for k := range got {
			if d := cmplx.Abs(got[k] - want[k]); d > 1e-9 {
				t.Fatalf("n=%d: RFFT[%d] = %v, DFT = %v (|diff| %g)", n, k, got[k], want[k], d)
			}
		}
	}
}

// TestFFTMatchesDFTSizes is the complex-path counterpart over the same size
// sweep (the historical test pinned n=16 only).
func TestFFTMatchesDFTSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 8, 32, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		FFT(got)
		for k := range got {
			if cmplx.Abs(got[k]-want[k]) > 1e-9 {
				t.Fatalf("n=%d: FFT[%d] = %v, DFT = %v", n, k, got[k], want[k])
			}
		}
	}
}

// TestRFFTParseval checks energy conservation on the half spectrum: interior
// bins count twice (they stand for a conjugate pair), the DC and Nyquist
// bins once.
func TestRFFTParseval(t *testing.T) {
	const n = 512
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, n)
	var tEnergy float64
	for i := range x {
		x[i] = rng.NormFloat64()
		tEnergy += x[i] * x[i]
	}
	spec := make([]complex128, n/2+1)
	rfftRow(spec, x, tablesFor(n/2), tablesFor(n), false)
	var fEnergy float64
	for k, v := range spec {
		e := real(v)*real(v) + imag(v)*imag(v)
		if k == 0 || k == n/2 {
			fEnergy += e
		} else {
			fEnergy += 2 * e
		}
	}
	if math.Abs(fEnergy/float64(n)-tEnergy) > 1e-9*tEnergy {
		t.Fatalf("Parseval violated: %g vs %g", fEnergy/float64(n), tEnergy)
	}
}

// planModes runs fn once per spectral engine mode.
func planModes(t *testing.T, fn func(t *testing.T)) {
	t.Run("real", func(t *testing.T) {
		t.Setenv(EnvMode, "")
		fn(t)
	})
	t.Run("complex", func(t *testing.T) {
		t.Setenv(EnvMode, ModeComplex)
		fn(t)
	})
}

// TestPlanBothModesMatchDirect runs the convolution oracle under both
// engines; the historical direct-reference tests only exercise the default.
func TestPlanBothModesMatchDirect(t *testing.T) {
	planModes(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(6))
		w, h, kw, kh := 23, 17, 9, 5
		img := randImage(rng, w*h)
		kernel := randImage(rng, kw*kh)
		p := NewPlan(w, h, kw, kh)
		kf := p.TransformKernel(kernel)
		got := make([]float64, w*h)
		want := make([]float64, w*h)
		p.Convolve(img, kf, got)
		DirectConvolve(img, w, h, kernel, kw, kh, want)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("convolve mismatch at %d: %g vs %g", i, got[i], want[i])
			}
		}
		p.Correlate(img, kf, got)
		DirectCorrelate(img, w, h, kernel, kw, kh, want)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("correlate mismatch at %d: %g vs %g", i, got[i], want[i])
			}
		}
	})
}

// TestPlanModesAgree compares the two engines against each other on the same
// inputs — the field-level half of the golden-output contract (<= 1e-9).
func TestPlanModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w, h, kw, kh := 40, 28, 11, 7
	img := randImage(rng, w*h)
	kernel := randImage(rng, kw*kh)

	outs := map[string][]float64{}
	for _, mode := range []string{"", ModeComplex} {
		t.Setenv(EnvMode, mode)
		p := NewPlan(w, h, kw, kh)
		if p.RealMode() != (mode == "") {
			t.Fatalf("mode %q: RealMode() = %v", mode, p.RealMode())
		}
		kf := p.TransformKernel(kernel)
		out := make([]float64, w*h)
		p.Convolve(img, kf, out)
		outs[mode] = out
	}
	for i := range outs[""] {
		if d := math.Abs(outs[""][i] - outs[ModeComplex][i]); d > 1e-9 {
			t.Fatalf("engines disagree at %d by %g", i, d)
		}
	}
}

// TestInverseSpecFusedMatchesPerKernel verifies the fused-gradient identity
// the simulator's backward pass relies on: one inverse of the accumulated
// products equals the sum of per-kernel correlations.
func TestInverseSpecFusedMatchesPerKernel(t *testing.T) {
	planModes(t, func(t *testing.T) {
		rng := rand.New(rand.NewSource(8))
		w, h, kw, kh := 26, 22, 7, 7
		p := NewPlan(w, h, kw, kh)
		const nk = 3
		imgs := make([][]float64, nk)
		kffts := make([][]complex128, nk)
		want := make([]float64, w*h)
		tmp := make([]float64, w*h)
		for k := 0; k < nk; k++ {
			imgs[k] = randImage(rng, w*h)
			kffts[k] = p.TransformKernel(randImage(rng, kw*kh))
			p.Correlate(imgs[k], kffts[k], tmp)
			for i := range want {
				want[i] += tmp[i]
			}
		}
		s := p.NewScratch()
		acc := make([]complex128, p.SpecLen())
		for k := 0; k < nk; k++ {
			AccumulateConj(acc, p.ForwardInto(s, imgs[k]), kffts[k])
		}
		got := make([]float64, w*h)
		p.InverseSpec(s, acc, got)
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-9 {
				t.Fatalf("fused gradient differs at %d by %g", i, d)
			}
		}
	})
}

func TestAccumulateConjLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AccumulateConj(make([]complex128, 4), make([]complex128, 4), make([]complex128, 3))
}

func TestSpecLenHalvedInRealMode(t *testing.T) {
	t.Setenv(EnvMode, "")
	p := NewPlan(224, 224, 31, 31)
	if want := (p.PW/2 + 1) * p.PH; p.SpecLen() != want {
		t.Fatalf("real SpecLen = %d, want %d", p.SpecLen(), want)
	}
	t.Setenv(EnvMode, ModeComplex)
	pc := NewPlan(224, 224, 31, 31)
	if want := pc.PW * pc.PH; pc.SpecLen() != want {
		t.Fatalf("complex SpecLen = %d, want %d", pc.SpecLen(), want)
	}
	if 2*p.SpecLen() >= 3*pc.SpecLen()/2 {
		t.Fatalf("half spectrum %d not roughly half of %d", p.SpecLen(), pc.SpecLen())
	}
}

// TestFFT2DZeroAllocSteadyState covers the satellite fix: the package-level
// 2-D entry points route their column strip through a pool instead of
// allocating per call.
func TestFFT2DZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops puts under the race detector")
	}
	data := make([]complex128, 64*32)
	FFT2D(data, 64, 32) // warm the pool and the tables
	if allocs := testing.AllocsPerRun(50, func() {
		FFT2D(data, 64, 32)
		IFFT2D(data, 64, 32)
	}); allocs != 0 {
		t.Errorf("FFT2D+IFFT2D allocate %.1f objects per call, want 0", allocs)
	}
}

// TestInverseSpecZeroAlloc pins the fused-backward entry to the same
// zero-alloc contract as the rest of the hot path.
func TestInverseSpecZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops puts under the race detector")
	}
	rng := rand.New(rand.NewSource(9))
	p := NewPlan(32, 32, 7, 7)
	img := randImage(rng, 32*32)
	kf := p.TransformKernel(randImage(rng, 7*7))
	s := p.NewScratch()
	acc := make([]complex128, p.SpecLen())
	out := make([]float64, 32*32)
	if allocs := testing.AllocsPerRun(20, func() {
		AccumulateConj(acc, p.ForwardInto(s, img), kf)
		p.InverseSpec(s, acc, out)
	}); allocs != 0 {
		t.Errorf("fused accumulate+inverse allocates %.1f objects per call, want 0", allocs)
	}
}

func BenchmarkFFTPlanConvolve224(b *testing.B) { benchConvolve(b, false) }

func BenchmarkFFTPlanConvolve224Complex(b *testing.B) { benchConvolve(b, true) }

func benchConvolve(b *testing.B, complexMode bool) {
	if complexMode {
		b.Setenv(EnvMode, ModeComplex)
	} else {
		b.Setenv(EnvMode, "")
	}
	w, h := 224, 224
	img := make([]float64, w*h)
	for i := range img {
		img[i] = float64(i%13) / 13
	}
	kernel := make([]float64, 31*31)
	for i := range kernel {
		kernel[i] = 1.0 / float64(len(kernel))
	}
	p := NewPlan(w, h, 31, 31)
	kf := p.TransformKernel(kernel)
	out := make([]float64, w*h)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Convolve(img, kf, out)
	}
}
