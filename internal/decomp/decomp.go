// Package decomp implements the paper's decomposition-candidate machinery
// (§III-A, Algorithm 1): pattern classification into SP/VP/NP, minimum
// spanning trees over the separated patterns, n-wise covering arrays over
// the remaining degrees of freedom, dual-mask canonicalization, and the
// grayscale rendering fed to the printability predictor.
package decomp

import (
	"fmt"
	"strings"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/layout"
	"ldmo/internal/mst"
	"ldmo/internal/nwise"
	"ldmo/internal/simclock"
)

// Decomposition is one assignment of a layout's patterns onto two masks.
type Decomposition struct {
	Layout layout.Layout
	Assign []uint8 // per pattern: 0 -> mask 1, 1 -> mask 2
}

// New returns a decomposition with a defensive copy of assign.
func New(l layout.Layout, assign []uint8) Decomposition {
	if len(assign) != len(l.Patterns) {
		panic(fmt.Sprintf("decomp: %d assignments for %d patterns", len(assign), len(l.Patterns)))
	}
	return Decomposition{Layout: l, Assign: append([]uint8(nil), assign...)}
}

// Canonicalize resolves the dual-mask ambiguity the paper describes in
// Fig. 4(c): the masks are unordered, so a decomposition and its complement
// are the same physical solution. Pattern 0 ("pattern numbered 1") is pinned
// to mask 1; when it is not, every bit is flipped. The receiver is modified
// and returned.
func (d Decomposition) Canonicalize() Decomposition {
	if len(d.Assign) > 0 && d.Assign[0] == 1 {
		for i := range d.Assign {
			d.Assign[i] ^= 1
		}
	}
	return d
}

// Key returns a canonical string identity for dedup and for the flow's
// "already tried" marking. Two dual decompositions share a key.
func (d Decomposition) Key() string {
	var b strings.Builder
	flip := uint8(0)
	if len(d.Assign) > 0 && d.Assign[0] == 1 {
		flip = 1
	}
	for _, a := range d.Assign {
		b.WriteByte('0' + (a ^ flip))
	}
	return b.String()
}

// String implements fmt.Stringer.
func (d Decomposition) String() string {
	return fmt.Sprintf("%s[%s]", d.Layout.Name, d.Key())
}

// MaskPatterns returns the pattern rectangles assigned to each mask.
func (d Decomposition) MaskPatterns() (m1, m2 []geom.Rect) {
	for i, r := range d.Layout.Patterns {
		if d.Assign[i] == 0 {
			m1 = append(m1, r)
		} else {
			m2 = append(m2, r)
		}
	}
	return m1, m2
}

// Masks rasterizes the two mask target images at res nm/pixel over the
// layout window.
func (d Decomposition) Masks(res int) (m1, m2 *grid.Grid) {
	w := d.Layout.Window.W() / res
	h := d.Layout.Window.H() / res
	org := geom.Point{X: d.Layout.Window.X0, Y: d.Layout.Window.Y0}
	m1 = grid.New(w, h, res, org)
	m2 = grid.New(w, h, res, org)
	for i, r := range d.Layout.Patterns {
		if d.Assign[i] == 0 {
			m1.FillRect(r, 1)
		} else {
			m2.FillRect(r, 1)
		}
	}
	return m1, m2
}

// Grayscale levels of the predictor input image (paper §III-A: "a gray-scale
// image with different grayscale levels to represent patterns distributed on
// different masks").
const (
	GrayMask1 = 0.5
	GrayMask2 = 1.0
)

// GrayImage renders the decomposition as the single-channel image the CNN
// consumes: background 0, mask-1 patterns 0.5, mask-2 patterns 1.0, resampled
// to size x size pixels. Rendering happens on the canonicalized assignment so
// dual decompositions produce identical images.
func (d Decomposition) GrayImage(res, size int) *grid.Grid {
	flip := uint8(0)
	if len(d.Assign) > 0 && d.Assign[0] == 1 {
		flip = 1
	}
	w := d.Layout.Window.W() / res
	h := d.Layout.Window.H() / res
	org := geom.Point{X: d.Layout.Window.X0, Y: d.Layout.Window.Y0}
	g := grid.New(w, h, res, org)
	for i, r := range d.Layout.Patterns {
		level := GrayMask1
		if d.Assign[i]^flip == 1 {
			level = GrayMask2
		}
		g.FillRect(r, level)
	}
	if g.W == size && g.H == size {
		return g
	}
	return g.Resample(size, size)
}

// Valid reports whether no SP pair (spacing <= nmin) shares a mask.
func (d Decomposition) Valid(nmin float64) bool {
	adj := layout.ConflictGraph(d.Layout.Patterns, nmin)
	for u, nbrs := range adj {
		for _, v := range nbrs {
			if d.Assign[u] == d.Assign[v] {
				return false
			}
		}
	}
	return true
}

// EnumerateAll returns every canonical decomposition of the layout:
// 2^(n-1) candidates. It is the brute-force reference for tests and for the
// tiny layouts where exhaustive search is affordable.
func EnumerateAll(l layout.Layout) []Decomposition {
	n := len(l.Patterns)
	if n == 0 {
		return nil
	}
	out := make([]Decomposition, 0, 1<<(n-1))
	assign := make([]uint8, n)
	// Pattern 0 pinned to mask 1 (canonical form).
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			out = append(out, New(l, assign))
			return
		}
		assign[i] = 0
		rec(i + 1)
		assign[i] = 1
		rec(i + 1)
	}
	rec(1)
	return out
}

// Generator produces decomposition candidates per Algorithm 1.
type Generator struct {
	Classify layout.ClassifyParams
	// Strength of the covering array over MST-component and VP factors
	// (paper: 3) and over NP factors (paper: 2).
	StrengthSPVP int
	StrengthNP   int
	Seed         int64
	Clock        *simclock.Clock // optional cost accounting
}

// NewGenerator returns a generator with the paper's settings.
func NewGenerator() Generator {
	return Generator{
		Classify:     layout.DefaultClassifyParams(),
		StrengthSPVP: 3,
		StrengthNP:   2,
		Seed:         1,
	}
}

// Generate implements Algorithm 1: classify patterns, solve the MST of the
// SP graph, build the three-wise array over (component flips + VP patterns)
// and the two-wise array over NP patterns, combine, canonicalize and dedup.
// Every returned candidate separates all SP pairs; the list is never empty
// for a decomposable layout.
func (g Generator) Generate(l layout.Layout) ([]Decomposition, error) {
	n := len(l.Patterns)
	if n == 0 {
		return nil, fmt.Errorf("decomp: layout %q has no patterns", l.Name)
	}
	classes := layout.Classify(l.Patterns, g.Classify)

	// Index sets per class.
	var spIdx, vpIdx, npIdx []int
	for i, c := range classes {
		switch c {
		case layout.ClassSP:
			spIdx = append(spIdx, i)
		case layout.ClassVP:
			vpIdx = append(vpIdx, i)
		default:
			npIdx = append(npIdx, i)
		}
	}

	// MST over the SP subgraph: vertices are SP patterns, edges join pairs
	// within nmin, weighted by spacing so the tightest (most conflicting)
	// pairs anchor the trees.
	spPos := make(map[int]int, len(spIdx)) // pattern index -> SP-local index
	for li, pi := range spIdx {
		spPos[pi] = li
	}
	var edges []mst.Edge
	for a := 0; a < len(spIdx); a++ {
		for b := a + 1; b < len(spIdx); b++ {
			d := l.Patterns[spIdx[a]].Dist(l.Patterns[spIdx[b]])
			if d <= g.Classify.NMin {
				edges = append(edges, mst.Edge{U: a, V: b, W: d})
			}
		}
	}
	forest := mst.Kruskal(len(spIdx), edges)
	baseColor := forest.TwoColor()
	g.charge(1 + len(edges))

	// Factors for the strength-3 array: one flip bit per SP component,
	// then one bit per VP pattern (paper Fig. 4(a)).
	nComp := forest.NumComp
	f1 := nComp + len(vpIdx)
	arr1, err := nwise.Generate(f1, g.StrengthSPVP, g.Seed)
	if err != nil {
		return nil, err
	}
	arr2, err := nwise.Generate(len(npIdx), g.StrengthNP, g.Seed+1)
	if err != nil {
		return nil, err
	}
	g.charge(len(arr1.Rows) + len(arr2.Rows))

	// Combine: every row pair defines a full assignment.
	seen := make(map[string]struct{})
	var out []Decomposition
	assign := make([]uint8, n)
	for _, r1 := range arr1.Rows {
		for _, r2 := range arr2.Rows {
			for li, pi := range spIdx {
				flip := r1[forest.Components[li]]
				assign[pi] = uint8(baseColor[li]) ^ flip
			}
			for vi, pi := range vpIdx {
				assign[pi] = r1[nComp+vi]
			}
			for ni, pi := range npIdx {
				assign[pi] = r2[ni]
			}
			d := New(l, assign).Canonicalize()
			key := d.Key()
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, d)
		}
	}
	return out, nil
}

func (g Generator) charge(n int) {
	if g.Clock != nil {
		g.Clock.Charge(simclock.CostGraphOp, n)
	}
}
