package decomp

import (
	"math"
	"math/rand"
	"testing"

	"ldmo/internal/layout"
)

// TestGenerateCoversPairwiseVPCombinations verifies the paper's coverage
// guarantee at the decomposition level: for any two VP patterns, the
// candidate set contains every one of the four mask-pair combinations
// (up to the global dual-mask flip, which identifies (a,b) with (1-a,1-b)).
func TestGenerateCoversPairwiseVPCombinations(t *testing.T) {
	gen := NewGenerator()
	for _, cell := range layout.Cells() {
		classes := layout.Classify(cell.Patterns, gen.Classify)
		var vp []int
		for i, c := range classes {
			if c == layout.ClassVP {
				vp = append(vp, i)
			}
		}
		if len(vp) < 2 {
			continue
		}
		cands, err := gen.Generate(cell)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < len(vp); a++ {
			for b := a + 1; b < len(vp); b++ {
				// Up to the dual flip there are two distinct relative
				// assignments: same mask and different masks.
				seen := map[uint8]bool{}
				for _, d := range cands {
					seen[d.Assign[vp[a]]^d.Assign[vp[b]]] = true
				}
				if !seen[0] || !seen[1] {
					t.Fatalf("%s: VP pair (%d,%d) combinations missing: %v",
						cell.Name, vp[a], vp[b], seen)
				}
			}
		}
	}
}

// TestGenerateCoversThreeWiseRelative verifies strength-3 coverage: any
// three free factors (VP patterns) see all 2^3 value combinations up to the
// dual flip, i.e. both relative patterns of each pair within the triple.
func TestGenerateCoversThreeWiseRelative(t *testing.T) {
	gen := NewGenerator()
	l, err := layout.Cell("DFF_X1")
	if err != nil {
		t.Fatal(err)
	}
	classes := layout.Classify(l.Patterns, gen.Classify)
	var vp []int
	for i, c := range classes {
		if c == layout.ClassVP {
			vp = append(vp, i)
		}
	}
	if len(vp) < 3 {
		t.Skip("cell lacks three VP patterns")
	}
	cands, err := gen.Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	// Relative signature of the first three VP patterns vs the first one:
	// 4 combinations must all appear.
	seen := map[[2]uint8]bool{}
	for _, d := range cands {
		seen[[2]uint8{
			d.Assign[vp[0]] ^ d.Assign[vp[1]],
			d.Assign[vp[0]] ^ d.Assign[vp[2]],
		}] = true
	}
	if len(seen) != 4 {
		t.Fatalf("three-wise relative coverage incomplete: %v", seen)
	}
}

// TestGeneratedCandidatesQuick fuzzes the generator over random layouts:
// every candidate must be canonical, legal, and unique.
func TestGeneratedCandidatesQuick(t *testing.T) {
	gen := NewGenerator()
	rng := rand.New(rand.NewSource(77))
	layouts, err := layout.GenerateSet(rng.Int63(), 15, layout.DefaultGenParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range layouts {
		cands, err := gen.Generate(l)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		seen := map[string]bool{}
		for _, d := range cands {
			if d.Assign[0] != 0 {
				t.Fatalf("%s: non-canonical candidate", l.Name)
			}
			if !d.Valid(gen.Classify.NMin) {
				t.Fatalf("%s: illegal candidate %s", l.Name, d.Key())
			}
			if seen[d.Key()] {
				t.Fatalf("%s: duplicate %s", l.Name, d.Key())
			}
			seen[d.Key()] = true
		}
	}
}

// TestTrainingSamplerSupersetOfFreedom: with nmax = +inf (training mode),
// every pattern without an SP conflict becomes a 3-wise factor, so the
// candidate count is at least the eval-mode count for layouts without VP/NP
// split ambiguity.
func TestTrainingSamplerRichness(t *testing.T) {
	evalGen := NewGenerator()
	trainGen := NewGenerator()
	trainGen.Classify.NMax = math.Inf(1)
	richer := 0
	for _, cell := range layout.Cells() {
		ce, err := evalGen.Generate(cell)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := trainGen.Generate(cell)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) >= len(ce) {
			richer++
		}
	}
	if richer < 10 {
		t.Fatalf("training sampling richer on only %d/13 cells", richer)
	}
}
