package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ldmo/internal/geom"
	"ldmo/internal/layout"
	"ldmo/internal/simclock"
)

func pairLayout() layout.Layout {
	return layout.Layout{
		Name:   "pair",
		Window: geom.RectWH(0, 0, 512, 512),
		Patterns: []geom.Rect{
			geom.RectWH(100, 200, 70, 70),
			geom.RectWH(230, 200, 70, 70), // gap 60: SP pair
		},
	}
}

func TestNewCopiesAssign(t *testing.T) {
	l := pairLayout()
	assign := []uint8{0, 1}
	d := New(l, assign)
	assign[0] = 1
	if d.Assign[0] != 0 {
		t.Fatal("New did not copy assignment")
	}
}

func TestNewPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(pairLayout(), []uint8{0})
}

func TestCanonicalizeAndKey(t *testing.T) {
	l := pairLayout()
	a := New(l, []uint8{0, 1})
	b := New(l, []uint8{1, 0}) // dual of a
	if a.Key() != b.Key() {
		t.Fatalf("dual keys differ: %s vs %s", a.Key(), b.Key())
	}
	c := b.Canonicalize()
	if c.Assign[0] != 0 || c.Assign[1] != 1 {
		t.Fatalf("canonical form = %v", c.Assign)
	}
	// Canonicalization is idempotent.
	d := c.Canonicalize()
	if d.Key() != c.Key() || d.Assign[0] != 0 {
		t.Fatal("canonicalize not idempotent")
	}
}

func TestCanonicalizeIdempotentQuick(t *testing.T) {
	l8, err := layout.Cell("AOI211_X1")
	if err != nil {
		t.Fatal(err)
	}
	f := func(bits uint8) bool {
		assign := make([]uint8, len(l8.Patterns))
		for i := range assign {
			assign[i] = bits >> i & 1
		}
		d := New(l8, assign).Canonicalize()
		return d.Assign[0] == 0 && d.Canonicalize().Key() == d.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskPatternsPartition(t *testing.T) {
	l := pairLayout()
	d := New(l, []uint8{0, 1})
	m1, m2 := d.MaskPatterns()
	if len(m1) != 1 || len(m2) != 1 {
		t.Fatalf("partition = %d/%d", len(m1), len(m2))
	}
	if m1[0] != l.Patterns[0] || m2[0] != l.Patterns[1] {
		t.Fatal("wrong patterns per mask")
	}
}

func TestMasksRasterize(t *testing.T) {
	d := New(pairLayout(), []uint8{0, 1})
	m1, m2 := d.Masks(4)
	if m1.W != 128 || m2.W != 128 {
		t.Fatalf("raster size %dx%d", m1.W, m1.H)
	}
	if m1.Sum() == 0 || m2.Sum() == 0 {
		t.Fatal("empty mask raster")
	}
	// The two masks must not overlap.
	for i := range m1.Data {
		if m1.Data[i] > 0 && m2.Data[i] > 0 {
			t.Fatal("masks overlap")
		}
	}
}

func TestGrayImageDualInvariant(t *testing.T) {
	l := pairLayout()
	a := New(l, []uint8{0, 1}).GrayImage(4, 64)
	b := New(l, []uint8{1, 0}).GrayImage(4, 64)
	if !a.Equal(b, 0) {
		t.Fatal("dual decompositions render differently")
	}
	if a.W != 64 || a.H != 64 {
		t.Fatalf("gray image size %dx%d", a.W, a.H)
	}
	lo, hi := a.MinMax()
	if lo != 0 || hi <= GrayMask1 {
		t.Fatalf("gray levels lo=%g hi=%g", lo, hi)
	}
}

func TestGrayImageNoResampleFastPath(t *testing.T) {
	d := New(pairLayout(), []uint8{0, 1})
	g := d.GrayImage(4, 128)
	if g.W != 128 {
		t.Fatalf("size %d", g.W)
	}
	// Levels must be exactly the two mask grays.
	seen05, seen10 := false, false
	for _, v := range g.Data {
		switch v {
		case 0:
		case GrayMask1:
			seen05 = true
		case GrayMask2:
			seen10 = true
		default:
			t.Fatalf("unexpected gray level %g", v)
		}
	}
	if !seen05 || !seen10 {
		t.Fatal("missing gray level")
	}
}

func TestValid(t *testing.T) {
	l := pairLayout()
	if !New(l, []uint8{0, 1}).Valid(80) {
		t.Fatal("separated SP pair reported invalid")
	}
	if New(l, []uint8{0, 0}).Valid(80) {
		t.Fatal("same-mask SP pair reported valid")
	}
}

func TestEnumerateAll(t *testing.T) {
	l, err := layout.Cell("INV_X1") // 3 patterns
	if err != nil {
		t.Fatal(err)
	}
	all := EnumerateAll(l)
	if len(all) != 4 { // 2^(3-1)
		t.Fatalf("enumerated %d, want 4", len(all))
	}
	keys := map[string]bool{}
	for _, d := range all {
		if d.Assign[0] != 0 {
			t.Fatal("non-canonical enumeration")
		}
		keys[d.Key()] = true
	}
	if len(keys) != 4 {
		t.Fatal("duplicate enumerations")
	}
	if EnumerateAll(layout.Layout{}) != nil {
		t.Fatal("empty layout must enumerate nil")
	}
}

func TestGenerateSeparatesAllSPPairs(t *testing.T) {
	gen := NewGenerator()
	for _, cell := range layout.Cells() {
		cands, err := gen.Generate(cell)
		if err != nil {
			t.Fatalf("%s: %v", cell.Name, err)
		}
		if len(cands) == 0 {
			t.Fatalf("%s: no candidates", cell.Name)
		}
		for _, d := range cands {
			if !d.Valid(gen.Classify.NMin) {
				t.Fatalf("%s: candidate %s leaves an SP pair on one mask", cell.Name, d.Key())
			}
		}
	}
}

func TestGenerateCanonicalAndDeduped(t *testing.T) {
	gen := NewGenerator()
	l, err := layout.Cell("AOI211_X1")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := gen.Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range cands {
		if d.Assign[0] != 0 {
			t.Fatal("candidate not canonical")
		}
		if seen[d.Key()] {
			t.Fatalf("duplicate candidate %s", d.Key())
		}
		seen[d.Key()] = true
	}
}

func TestGenerateCandidateCountBounded(t *testing.T) {
	// The whole point of MST + n-wise: candidate count far below 2^(n-1).
	gen := NewGenerator()
	l, err := layout.Cell("AOI22_X1") // 9 patterns -> 256 exhaustive
	if err != nil {
		t.Fatal(err)
	}
	cands, err := gen.Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || len(cands) >= 256 {
		t.Fatalf("candidate count = %d, want in (0, 256)", len(cands))
	}
}

func TestGenerateCoversComponentFlipCombos(t *testing.T) {
	// For a layout whose SP graph has >= 2 components, candidates must
	// include both relative orientations of any two components.
	l := layout.Layout{
		Name:   "twocomp",
		Window: geom.RectWH(0, 0, 512, 512),
		Patterns: []geom.Rect{
			geom.RectWH(66, 66, 70, 70),
			geom.RectWH(196, 66, 70, 70), // SP with 0 (component A)
			geom.RectWH(66, 326, 70, 70),
			geom.RectWH(196, 326, 70, 70), // SP with 2 (component B)
		},
	}
	gen := NewGenerator()
	cands, err := gen.Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	rel := map[uint8]bool{}
	for _, d := range cands {
		rel[d.Assign[0]^d.Assign[2]] = true
	}
	if !rel[0] || !rel[1] {
		t.Fatalf("component flip combinations missing: %v", rel)
	}
}

func TestGenerateEmptyLayout(t *testing.T) {
	gen := NewGenerator()
	if _, err := gen.Generate(layout.Layout{Name: "empty"}); err == nil {
		t.Fatal("expected error for empty layout")
	}
}

func TestGenerateChargesClock(t *testing.T) {
	gen := NewGenerator()
	gen.Clock = simclock.New(simclock.DefaultModel())
	l, err := layout.Cell("NAND3_X2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(l); err != nil {
		t.Fatal(err)
	}
	if gen.Clock.Count(simclock.CostGraphOp) == 0 {
		t.Fatal("generator charged no graph ops")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	gen := NewGenerator()
	l, err := layout.Cell("DFF_X1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := gen.Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := gen.Generate(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("not deterministic")
		}
	}
}

func TestGeneratedSubsetOfEnumeration(t *testing.T) {
	// Every generated candidate must appear in the exhaustive enumeration.
	gen := NewGenerator()
	rng := rand.New(rand.NewSource(3))
	layouts, err := layout.GenerateSet(rng.Int63(), 5, layout.DefaultGenParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range layouts {
		if len(l.Patterns) > 8 {
			continue
		}
		allKeys := map[string]bool{}
		for _, d := range EnumerateAll(l) {
			allKeys[d.Key()] = true
		}
		cands, err := gen.Generate(l)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range cands {
			if !allKeys[d.Key()] {
				t.Fatalf("%s: generated key %s not a legal assignment", l.Name, d.Key())
			}
		}
	}
}

func TestStringForms(t *testing.T) {
	d := New(pairLayout(), []uint8{0, 1})
	if d.String() == "" || d.Key() != "01" {
		t.Fatalf("string forms: %q key %q", d.String(), d.Key())
	}
}
