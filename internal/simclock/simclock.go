// Package simclock provides deterministic cost accounting for the runtime
// experiments. The paper's runtime claims (Table I, Fig. 1c) are ratios
// driven by how many expensive operations each flow performs — lithography
// convolutions, SDP-style decomposition solves, CNN inferences — on the
// authors' Intel i7. Counting those operations and weighting them with a
// fixed per-operation cost model reproduces the ratios exactly and
// deterministically, independent of the host this reproduction runs on.
// Real wall-clock time is reported alongside by the bench harness.
package simclock

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind enumerates the cost-bearing operations of the framework.
type Kind int

const (
	// CostConvolution is one optical-kernel convolution on the standard
	// simulation raster (the unit of lithography simulation work).
	CostConvolution Kind = iota
	// CostCNNInference is one forward pass of the printability predictor.
	CostCNNInference
	// CostSDPSolve is one semidefinite-programming-style decomposition
	// solve, the dominant cost of the [16]/[17] two-stage baselines.
	CostSDPSolve
	// CostGraphOp is one combinatorial decomposition-generation step
	// (MST build, covering-array row, coloring pass).
	CostGraphOp
	numKinds
)

// String implements fmt.Stringer for Kind.
func (k Kind) String() string {
	switch k {
	case CostConvolution:
		return "convolution"
	case CostCNNInference:
		return "cnn-inference"
	case CostSDPSolve:
		return "sdp-solve"
	case CostGraphOp:
		return "graph-op"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Model maps each Kind to its cost in model seconds. The default model is
// calibrated in the bench harness so the reproduced Table I lands in the
// paper's regime.
type Model [numKinds]float64

// DefaultModel returns per-operation costs representative of the paper's
// testbed: a lithography convolution on the full tile costs ~55ms, a CNN
// inference ~30ms, an SDP-style decomposition solve ~30s, and a
// combinatorial graph step ~1ms. The values are calibrated so the Table I
// runtime ordering and rough magnitudes land in the paper's regime: one
// full ILT run is 232 convolutions (~12.8s), so the CNN-selected flow costs
// ~13s, a two-stage flow SDP + ILT ~43s, and the greedy-pruning unified
// flow is the most expensive with decomposition selection dominating its
// split (Fig. 1c).
func DefaultModel() Model {
	var m Model
	m[CostConvolution] = 0.055
	m[CostCNNInference] = 0.030
	m[CostSDPSolve] = 30
	m[CostGraphOp] = 0.001
	return m
}

// Clock accumulates operation counts per named phase and converts them to
// model seconds. It is safe for concurrent use.
type Clock struct {
	mu     sync.Mutex
	model  Model
	phase  string
	counts map[string]*[numKinds]int64
}

// New returns a Clock using cost model m, starting in phase "".
func New(m Model) *Clock {
	return &Clock{model: m, counts: make(map[string]*[numKinds]int64)}
}

// SetPhase switches subsequent charges to the named phase (e.g. "DS" for
// decomposition selection, "MO" for mask optimization).
func (c *Clock) SetPhase(p string) {
	c.mu.Lock()
	c.phase = p
	c.mu.Unlock()
}

// Phase returns the current phase name.
func (c *Clock) Phase() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phase
}

// Charge records n operations of kind k against the current phase.
func (c *Clock) Charge(k Kind, n int) {
	if c == nil || n == 0 {
		return
	}
	c.mu.Lock()
	bucket := c.counts[c.phase]
	if bucket == nil {
		bucket = new([numKinds]int64)
		c.counts[c.phase] = bucket
	}
	bucket[k] += int64(n)
	c.mu.Unlock()
}

// Count returns the accumulated count of kind k across all phases.
func (c *Clock) Count(k Kind) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for _, b := range c.counts {
		total += b[k]
	}
	return total
}

// Seconds returns the total model time across all phases. Phases are summed
// in sorted-name order: floating-point addition is grouping-sensitive, so
// iterating the phase map directly would make the last few bits of the total
// vary run to run even for identical charge counts.
func (c *Clock) Seconds() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	phases := make([]string, 0, len(c.counts))
	for p := range c.counts {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	total := 0.0
	for _, p := range phases {
		b := c.counts[p]
		for k := Kind(0); k < numKinds; k++ {
			total += float64(b[k]) * c.model[k]
		}
	}
	return total
}

// PhaseSeconds returns the model time charged to one phase.
func (c *Clock) PhaseSeconds(phase string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.counts[phase]
	if b == nil {
		return 0
	}
	total := 0.0
	for k := Kind(0); k < numKinds; k++ {
		total += float64(b[k]) * c.model[k]
	}
	return total
}

// Phases returns the phase names seen so far, sorted.
func (c *Clock) Phases() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.counts))
	for p := range c.counts {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Reset clears all accumulated counts, keeping the model and phase.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.counts = make(map[string]*[numKinds]int64)
	c.mu.Unlock()
}

// Report renders a human-readable cost breakdown for logging.
func (c *Clock) Report() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var b strings.Builder
	phases := make([]string, 0, len(c.counts))
	for p := range c.counts {
		phases = append(phases, p)
	}
	sort.Strings(phases)
	for _, p := range phases {
		name := p
		if name == "" {
			name = "(default)"
		}
		bucket := c.counts[p]
		sec := 0.0
		for k := Kind(0); k < numKinds; k++ {
			sec += float64(bucket[k]) * c.model[k]
		}
		fmt.Fprintf(&b, "phase %-12s %10.2fs", name, sec)
		for k := Kind(0); k < numKinds; k++ {
			if bucket[k] != 0 {
				fmt.Fprintf(&b, "  %s=%d", k, bucket[k])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
