package simclock

import (
	"strings"
	"sync"
	"testing"
)

func TestChargeAndSeconds(t *testing.T) {
	var m Model
	m[CostConvolution] = 0.5
	m[CostCNNInference] = 2
	c := New(m)
	c.Charge(CostConvolution, 4)
	c.Charge(CostCNNInference, 3)
	if got := c.Seconds(); got != 4*0.5+3*2 {
		t.Fatalf("Seconds = %g", got)
	}
	if got := c.Count(CostConvolution); got != 4 {
		t.Fatalf("Count = %d", got)
	}
}

func TestPhases(t *testing.T) {
	var m Model
	m[CostConvolution] = 1
	c := New(m)
	c.SetPhase("DS")
	c.Charge(CostConvolution, 3)
	c.SetPhase("MO")
	c.Charge(CostConvolution, 2)
	if got := c.PhaseSeconds("DS"); got != 3 {
		t.Fatalf("DS seconds = %g", got)
	}
	if got := c.PhaseSeconds("MO"); got != 2 {
		t.Fatalf("MO seconds = %g", got)
	}
	if got := c.Seconds(); got != 5 {
		t.Fatalf("total = %g", got)
	}
	ph := c.Phases()
	if len(ph) != 2 || ph[0] != "DS" || ph[1] != "MO" {
		t.Fatalf("phases = %v", ph)
	}
	if c.Phase() != "MO" {
		t.Fatalf("current phase = %q", c.Phase())
	}
}

func TestPhaseSecondsUnknown(t *testing.T) {
	c := New(DefaultModel())
	if c.PhaseSeconds("nope") != 0 {
		t.Fatal("unknown phase must cost 0")
	}
}

func TestNilAndZeroCharges(t *testing.T) {
	var c *Clock
	c.Charge(CostConvolution, 5) // must not panic
	cl := New(DefaultModel())
	cl.Charge(CostConvolution, 0)
	if cl.Seconds() != 0 {
		t.Fatal("zero charge must not accumulate")
	}
}

func TestReset(t *testing.T) {
	c := New(DefaultModel())
	c.Charge(CostSDPSolve, 2)
	c.Reset()
	if c.Seconds() != 0 {
		t.Fatal("Reset did not clear counts")
	}
}

func TestConcurrentCharges(t *testing.T) {
	var m Model
	m[CostGraphOp] = 1
	c := New(m)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Charge(CostGraphOp, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Seconds(); got != 1600 {
		t.Fatalf("concurrent total = %g", got)
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("unknown kind string")
	}
}

func TestReport(t *testing.T) {
	c := New(DefaultModel())
	c.Charge(CostConvolution, 10)
	c.SetPhase("MO")
	c.Charge(CostCNNInference, 1)
	r := c.Report()
	if !strings.Contains(r, "convolution=10") || !strings.Contains(r, "MO") {
		t.Fatalf("report = %q", r)
	}
}

func TestDefaultModelPositive(t *testing.T) {
	m := DefaultModel()
	for k := Kind(0); k < numKinds; k++ {
		if m[k] <= 0 {
			t.Errorf("default cost for %v is %g", k, m[k])
		}
	}
}
