package model

import (
	"math/rand"
	"testing"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
)

func batchImgs(n, seed int64) []*grid.Grid {
	rng := rand.New(rand.NewSource(seed))
	imgs := make([]*grid.Grid, n)
	for i := range imgs {
		imgs[i] = grid.New(32, 32, 4, geom.Point{})
		for j := range imgs[i].Data {
			imgs[i].Data[j] = rng.Float64()
		}
	}
	return imgs
}

// TestPredictBatchCompositionInvariant is the contract the flow's
// request-coalescing queue stands on: scoring the concatenation of two
// batches returns, bitwise, the concatenation of scoring them separately.
// Batch composition is purely a scheduling artifact.
func TestPredictBatchCompositionInvariant(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := batchImgs(3, 7)
	b := batchImgs(5, 8)
	sepA := p.PredictBatch(a)
	sepB := p.PredictBatch(b)
	joint := p.PredictBatch(append(append([]*grid.Grid{}, a...), b...))
	for i, want := range append(sepA, sepB...) {
		if joint[i] != want {
			t.Fatalf("joint[%d] = %v, separate = %v: batch composition leaked into scores", i, joint[i], want)
		}
	}
}

// TestPredictBatchIntoMatchesPredictBatch: the into-variant is the same
// computation into caller memory.
func TestPredictBatchIntoMatchesPredictBatch(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	imgs := batchImgs(4, 9)
	want := p.PredictBatch(imgs)
	got := make([]float64, len(imgs))
	p.PredictBatchInto(imgs, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("into[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched out length must panic")
		}
	}()
	p.PredictBatchInto(imgs, make([]float64, 1))
}

// TestPredictBatchIntoSteadyStateAllocs is the CI alloc gate for the
// coalesced prediction path: once warm at a batch size, scoring
// input-size images into caller memory allocates nothing.
func TestPredictBatchIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool randomly drops puts under the race detector")
	}
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	p.SetWorkers(1)
	imgs := batchImgs(4, 10) // 32x32 == testConfig().InputSize: no resampling
	out := make([]float64, len(imgs))
	p.PredictBatchInto(imgs, out) // warm lane tensor + folded replica
	avg := testing.AllocsPerRun(10, func() {
		p.PredictBatchInto(imgs, out)
	})
	if avg != 0 {
		t.Fatalf("steady-state PredictBatchInto allocates %.1f objects, want 0", avg)
	}
}
