package model

import (
	"context"
	"math"
	"strings"
	"testing"

	"ldmo/internal/faultinject"
	"ldmo/internal/runx"
)

// TestTrainCtxTransientNaNRecovers: a single poisoned batch must be rolled
// back (weights, Adam moments and BatchNorm running stats) and retried with a
// halved learning rate, after which training completes the full schedule with
// finite weights.
func TestTrainCtxTransientNaNRecovers(t *testing.T) {
	defer faultinject.Reset()
	ds := syntheticDataset(16, 5)
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(faultinject.TrainNaN, "2") // fire once at the third batch
	var log strings.Builder
	tc := trainCfg("")
	tc.Epochs = 2
	tc.Log = &log
	hist, err := p.TrainCtx(context.Background(), ds, tc)
	if err != nil {
		t.Fatalf("transient NaN escaped recovery: %v", err)
	}
	if len(hist) != tc.Epochs {
		t.Fatalf("recovered run produced %d epochs of history, want %d", len(hist), tc.Epochs)
	}
	for i, l := range hist {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("epoch %d loss is non-finite: %v", i+1, l)
		}
	}
	if !strings.Contains(log.String(), "rolled back, LR halved") {
		t.Fatalf("recovery did not report itself:\n%s", log.String())
	}
	if faultinject.Enabled(faultinject.TrainNaN) {
		t.Fatal("one-shot point still armed after firing")
	}
	for _, prm := range p.Net.Params() {
		for _, v := range prm.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("recovered predictor carries non-finite weights")
			}
		}
	}
}

// TestTrainCtxPersistentNaNFailsTyped: a batch that stays non-finite through
// every rollback must surface as a typed numerical error naming the epoch and
// batch — not a panic, hang, or silently poisoned history.
func TestTrainCtxPersistentNaNFailsTyped(t *testing.T) {
	defer faultinject.Reset()
	ds := syntheticDataset(16, 5)
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set(faultinject.TrainNaN, "-1") // sticky: every batch from the second
	hist, err := p.TrainCtx(context.Background(), ds, trainCfg(""))
	if err == nil {
		t.Fatal("persistent NaN did not fail training")
	}
	ne, ok := runx.AsNumerical(err)
	if !ok {
		t.Fatalf("error %v is not a NumericalError", err)
	}
	if !strings.Contains(ne.Detail, "epoch 1 batch 2") || !strings.Contains(ne.Detail, "rollbacks") {
		t.Fatalf("numerical error lost its context: %v", ne)
	}
	for _, l := range hist {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatal("returned history contains non-finite loss")
		}
	}
	// The rollbacks restored the pre-batch state, so the weights stay finite
	// even though training failed.
	for _, prm := range p.Net.Params() {
		for _, v := range prm.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("failed run leaked non-finite weights")
			}
		}
	}
}
