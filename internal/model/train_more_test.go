package model

import (
	"strings"
	"testing"
)

func TestTrainWithMSEAndLog(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := syntheticDataset(16, 9)
	var log strings.Builder
	tc := DefaultTrainConfig()
	tc.Epochs = 3
	tc.BatchSize = 8
	tc.UseMSE = true
	tc.Log = &log
	if _, err := p.Train(ds, tc); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "epoch   1/3") {
		t.Fatalf("no epoch log: %q", log.String())
	}
}

func TestTrainLRDecayApplied(t *testing.T) {
	// Decay must not break training; loss after decay epochs must remain
	// finite and the history complete.
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := syntheticDataset(16, 10)
	tc := DefaultTrainConfig()
	tc.Epochs = 6
	tc.BatchSize = 8
	tc.DecayAt = 3
	tc.DecayFactor = 0.1
	hist, err := p.Train(ds, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 6 {
		t.Fatalf("history = %d", len(hist))
	}
	for i, l := range hist {
		if l != l || l < 0 { // NaN or negative
			t.Fatalf("loss[%d] = %g", i, l)
		}
	}
}

func TestAugmentedEightfold(t *testing.T) {
	ds := syntheticDataset(5, 11)
	aug := ds.Augmented()
	if aug.Len() != 40 {
		t.Fatalf("augmented len = %d, want 40", aug.Len())
	}
	// Labels are preserved across all transforms of each sample.
	for i, s := range aug.Samples {
		if s.Score != ds.Samples[i/8].Score {
			t.Fatalf("augmented label %d drifted", i)
		}
	}
	// The eight images of one sample are pairwise distinct for a generic
	// asymmetric image.
	first := aug.Samples[:8]
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if first[i].Image.Equal(first[j].Image, 0) {
				// Symmetric synthetic images may collide; tolerate
				// only a few collisions.
				t.Logf("transforms %d and %d coincide (symmetric image)", i, j)
			}
		}
	}
}
