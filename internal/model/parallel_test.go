package model

import (
	"math/rand"
	"testing"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
)

func randImages(rng *rand.Rand, n, size int) []*grid.Grid {
	imgs := make([]*grid.Grid, n)
	for i := range imgs {
		g := grid.New(size, size, 4, geom.Point{})
		for j := range g.Data {
			g.Data[j] = rng.Float64()
		}
		imgs[i] = g
	}
	return imgs
}

// TestPredictBatchShardedBitIdentical checks that sharding a batch over
// worker lanes (each with its own network replica) produces exactly the
// single-batch scores, at several lane counts including lanes > batch.
func TestPredictBatchShardedBitIdentical(t *testing.T) {
	cfg := TinyConfig()
	cfg.InputSize = 16 // keep the forward pass cheap
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	imgs := randImages(rng, 9, cfg.InputSize)

	p.SetWorkers(1)
	want := p.PredictBatch(imgs)

	for _, workers := range []int{2, 3, 16} {
		p.SetWorkers(workers)
		got := p.PredictBatch(imgs)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d scores, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: score %d = %g, want %g", workers, i, got[i], want[i])
			}
		}
	}
}

// TestPredictBatchReplicasTrackTraining ensures cached replicas are dropped
// when training rewrites the weights.
func TestPredictBatchReplicasTrackTraining(t *testing.T) {
	cfg := TinyConfig()
	cfg.InputSize = 16
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	imgs := randImages(rng, 6, cfg.InputSize)
	p.SetWorkers(3)
	before := p.PredictBatch(imgs) // builds and caches replicas

	ds := &Dataset{}
	for i, img := range imgs {
		ds.Add(img, float64(i))
	}
	tc := DefaultTrainConfig()
	tc.Epochs = 1
	tc.BatchSize = 3
	if _, err := p.Train(ds, tc); err != nil {
		t.Fatal(err)
	}

	after := p.PredictBatch(imgs)
	p.SetWorkers(1)
	serial := p.PredictBatch(imgs)
	changed := false
	for i := range after {
		if after[i] != serial[i] {
			t.Fatalf("post-train sharded score %d = %g, serial %g (stale replica?)", i, after[i], serial[i])
		}
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("training did not move any prediction; replica test is vacuous")
	}
}
