package model

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ldmo/internal/geom"
	"ldmo/internal/grid"
	"ldmo/internal/simclock"
)

// testConfig is a minimal architecture for fast tests.
func testConfig() Config {
	return Config{
		InputSize:     32,
		StemChannels:  4,
		StageBlocks:   [4]int{1, 1, 1, 1},
		StageChannels: [4]int{4, 6, 8, 10},
		HiddenDim:     16,
		Seed:          1,
	}
}

func TestScoreWeights(t *testing.T) {
	w := DefaultScoreWeights()
	if w.Alpha != 1 || w.Beta != 3500 || w.Gamma != 8000 {
		t.Fatalf("weights = %+v", w)
	}
	if got := w.Score(10, 2, 1); got != 10+7000+8000 {
		t.Fatalf("score = %g", got)
	}
}

func TestScoreNorm(t *testing.T) {
	n := FitScoreNorm([]float64{1, 2, 3, 4, 5})
	if n.Mean != 3 {
		t.Fatalf("mean = %g", n.Mean)
	}
	if math.Abs(n.Std-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("std = %g", n.Std)
	}
	if z := n.Normalize(3); z != 0 {
		t.Fatalf("normalize(mean) = %g", z)
	}
	if got := n.Denormalize(n.Normalize(4.2)); math.Abs(got-4.2) > 1e-12 {
		t.Fatalf("roundtrip = %g", got)
	}
	// Degenerate cases stay finite.
	if d := FitScoreNorm(nil); d.Std != 1 {
		t.Fatalf("empty norm = %+v", d)
	}
	if d := FitScoreNorm([]float64{7, 7, 7}); d.Std != 1 || d.Mean != 7 {
		t.Fatalf("constant norm = %+v", d)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := ResNet18Config().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TinyConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testConfig()
	bad.InputSize = 4
	if err := bad.Validate(); err == nil {
		t.Fatal("tiny input must fail")
	}
	bad = testConfig()
	bad.StageBlocks[2] = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("empty stage must fail")
	}
	bad = testConfig()
	bad.HiddenDim = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero hidden must fail")
	}
}

func TestPredictShapeAndDeterminism(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := grid.New(32, 32, 4, geom.Point{})
	img.FillRect(geom.RectWH(20, 20, 60, 60), 0.5)
	a := p.Predict(img)
	b := p.Predict(img)
	if a != b {
		t.Fatal("prediction not deterministic")
	}
	if math.IsNaN(a) || math.IsInf(a, 0) {
		t.Fatalf("prediction = %g", a)
	}
}

func TestPredictBatchMatchesSingles(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	imgs := make([]*grid.Grid, 3)
	for i := range imgs {
		imgs[i] = grid.New(32, 32, 4, geom.Point{})
		for j := range imgs[i].Data {
			imgs[i].Data[j] = rng.Float64()
		}
	}
	batch := p.PredictBatch(imgs)
	for i, img := range imgs {
		if single := p.Predict(img); math.Abs(single-batch[i]) > 1e-9 {
			t.Fatalf("batch[%d] = %g, single = %g", i, batch[i], single)
		}
	}
	if p.PredictBatch(nil) != nil {
		t.Fatal("empty batch should be nil")
	}
}

func TestPredictResamplesInput(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := grid.New(136, 136, 4, geom.Point{}) // native tile raster
	img.FillRect(geom.RectWH(100, 100, 65, 65), 1)
	v := p.Predict(img)
	if math.IsNaN(v) {
		t.Fatal("resampled prediction NaN")
	}
}

func TestPredictorClockCharges(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	clk := simclock.New(simclock.DefaultModel())
	p.SetClock(clk)
	p.Predict(grid.New(32, 32, 4, geom.Point{}))
	if clk.Count(simclock.CostCNNInference) != 1 {
		t.Fatal("inference not charged")
	}
}

// syntheticDataset builds images whose score is a simple function of mask-2
// coverage, a signal a small CNN can learn quickly.
func syntheticDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{}
	for i := 0; i < n; i++ {
		img := grid.New(32, 32, 4, geom.Point{})
		cover := 0.0
		for b := 0; b < 4; b++ {
			x, y := rng.Intn(24), rng.Intn(24)
			level := 0.5
			if rng.Intn(2) == 1 {
				level = 1.0
				cover++
			}
			img.FillRect(geom.RectWH(x*4, y*4, 24, 24), level)
		}
		ds.Add(img, 1000+cover*800)
	}
	return ds
}

func TestTrainReducesLoss(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := syntheticDataset(48, 3)
	tc := DefaultTrainConfig()
	tc.Epochs = 8
	tc.BatchSize = 8
	hist, err := p.Train(ds, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 8 {
		t.Fatalf("history length %d", len(hist))
	}
	if hist[len(hist)-1] >= hist[0] {
		t.Fatalf("loss did not decrease: %g -> %g", hist[0], hist[len(hist)-1])
	}
	if p.Norm.Std == 1 && p.Norm.Mean == 0 {
		t.Fatal("norm not fitted during training")
	}
	if mae := p.Evaluate(ds); mae > hist[0] {
		t.Fatalf("post-train eval MAE %g worse than first epoch %g", mae, hist[0])
	}
}

func TestTrainErrors(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(&Dataset{}, DefaultTrainConfig()); err == nil {
		t.Fatal("empty dataset must error")
	}
	ds := syntheticDataset(4, 1)
	tc := DefaultTrainConfig()
	tc.Epochs = 0
	if _, err := p.Train(ds, tc); err == nil {
		t.Fatal("zero epochs must error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := syntheticDataset(16, 5)
	tc := DefaultTrainConfig()
	tc.Epochs = 2
	tc.BatchSize = 8
	if _, err := p.Train(ds, tc); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Norm != p.Norm {
		t.Fatalf("norm mismatch: %+v vs %+v", q.Norm, p.Norm)
	}
	img := ds.Samples[0].Image
	if a, b := p.Predict(img), q.Predict(img); a != b {
		t.Fatalf("loaded model predicts %g, original %g", b, a)
	}
}

func TestSaveLoadFile(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.gob"
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path + ".missing"); err == nil {
		t.Fatal("missing file must error")
	}
}

func TestRankAccuracy(t *testing.T) {
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ds := syntheticDataset(24, 7)
	tc := DefaultTrainConfig()
	tc.Epochs = 10
	tc.BatchSize = 8
	if _, err := p.Train(ds, tc); err != nil {
		t.Fatal(err)
	}
	groups := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}}
	acc := p.RankAccuracy(ds, groups, 0)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy = %g", acc)
	}
	// With infinite slack every group is a hit.
	if got := p.RankAccuracy(ds, groups, math.Inf(1)); got != 1 {
		t.Fatalf("slack accuracy = %g", got)
	}
	if got := p.RankAccuracy(ds, nil, 0); got != 0 {
		t.Fatalf("empty groups accuracy = %g", got)
	}
}

func TestResNet18ForwardShape(t *testing.T) {
	// The paper-faithful architecture must build and produce a scalar.
	// One forward pass at 224x224 is slow but feasible.
	if testing.Short() {
		t.Skip("resnet18 forward is slow")
	}
	p, err := New(ResNet18Config())
	if err != nil {
		t.Fatal(err)
	}
	img := grid.New(224, 224, 2, geom.Point{})
	img.FillRect(geom.RectWH(100, 100, 200, 200), 0.5)
	v := p.Predict(img)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("resnet18 prediction = %g", v)
	}
}
