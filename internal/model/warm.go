package model

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"

	"ldmo/internal/artifact"
	"ldmo/internal/grid"
	"ldmo/internal/nn"
	"ldmo/internal/runx"
	"ldmo/internal/tensor"
)

// WarmConfig describes the mask-initialization surrogate: a small
// fully-convolutional residual net that maps the two cold decomposition
// masks to a correction field, so warm = clamp(cold + net(cold), 0, 1).
// Stride-1 3x3 convolutions throughout keep the output the same shape as
// the input, and the residual form degrades gracefully: an untrained or
// underfit net predicts a near-zero correction and the run falls back to
// (almost) the cold trajectory instead of a garbage start.
type WarmConfig struct {
	// InputSize is the square field edge the net operates on; cold masks
	// are box-resampled to it and the predicted correction is resampled
	// back to the litho raster.
	InputSize int
	// Channels is the hidden width, Blocks the hidden conv/BN/ReLU repeat
	// count.
	Channels int
	Blocks   int
	// Kernel is the square convolution size (odd; 0 means 3). The optical
	// interaction radius spans many raster pixels, so a wider kernel buys
	// receptive field far cheaper than stacking blocks.
	Kernel int
	// DeadZone zeroes predicted corrections smaller than this magnitude
	// before they are applied. The net's MSE-fit residual carries a small
	// everywhere-blur; unfiltered, that blur lifts the warm field's
	// background off the sigmoid's saturated tail and costs more image
	// error than the genuine edge corrections recover. Zero disables.
	DeadZone float64
	// Seed drives weight initialization.
	Seed int64
}

// DefaultWarmConfig returns the CPU-scale surrogate the experiments train in
// minutes: 64x64 fields, 12 channels, two hidden 3x3 blocks, and a 0.02
// dead-zone that keeps the MSE fit's everywhere-blur from lifting the warm
// field's background off the sigmoid's saturated tail.
func DefaultWarmConfig() WarmConfig {
	return WarmConfig{InputSize: 64, Channels: 12, Blocks: 2, Kernel: 3, DeadZone: 0.02, Seed: 1}
}

// Validate reports the first problem with c, or nil.
func (c WarmConfig) Validate() error {
	if c.InputSize < 16 {
		return fmt.Errorf("model: warm input size %d too small", c.InputSize)
	}
	if c.Channels <= 0 || c.Blocks <= 0 {
		return fmt.Errorf("model: non-positive warm net dimensions in %+v", c)
	}
	if c.Kernel != 0 && (c.Kernel < 3 || c.Kernel%2 == 0) {
		return fmt.Errorf("model: warm kernel %d must be odd and >= 3", c.Kernel)
	}
	return nil
}

// WarmStarter is the trained mask-initialization surrogate. It implements
// ilt.Initializer: WarmMasksInto predicts a quasi-optimized field for both
// double-patterning masks from their cold rasters, letting ILT start near
// the optimum and merely polish.
//
// Unlike Predictor, a WarmStarter is safe for concurrent use: the pipelined
// flow optimizes several layouts at once against one shared instance, so
// inference serializes on an internal mutex over cached buffers (the net is
// small; contention is not the bottleneck, the ILT iterations it saves are).
type WarmStarter struct {
	Cfg WarmConfig
	Net *nn.Network

	mu     sync.Mutex
	frozen *nn.Network    // folded inference replica, rebuilt after training
	in     *tensor.Tensor // cached 1 x 2 x S x S inference input
}

// NewWarmStarter builds an untrained surrogate for the given architecture.
func NewWarmStarter(cfg WarmConfig) (*WarmStarter, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.Kernel
	if k == 0 {
		k = 3
	}
	pad := k / 2
	layers := []nn.Layer{
		nn.NewConv2D(rng, 2, cfg.Channels, k, 1, pad, false),
		nn.NewBatchNorm2D(cfg.Channels),
		nn.NewReLU(),
	}
	for b := 1; b < cfg.Blocks; b++ {
		layers = append(layers,
			nn.NewConv2D(rng, cfg.Channels, cfg.Channels, k, 1, pad, false),
			nn.NewBatchNorm2D(cfg.Channels),
			nn.NewReLU(),
		)
	}
	head := nn.NewConv2D(rng, cfg.Channels, 2, k, 1, pad, true)
	// Shrink the head's He init so the initial correction is near zero and
	// an untrained net reproduces (approximately) the cold start.
	for _, p := range head.Params() {
		for i := range p.Data {
			p.Data[i] *= 0.1
		}
	}
	layers = append(layers, head)
	return &WarmStarter{Cfg: cfg, Net: nn.NewNetwork(layers...)}, nil
}

// WarmMasksInto implements ilt.Initializer: it downsamples the cold mask
// rasters to the net's field size, runs one inference, resamples the
// predicted correction back to the litho raster, and writes
// clamp(cold + correction, 0, 1) into warm1/warm2. A non-finite prediction
// returns false, falling the run back to the cold start. Steady-state calls
// are allocation-free: the input tensor, the folded replica, and every layer
// buffer are cached.
func (ws *WarmStarter) WarmMasksInto(cold1, cold2 *grid.Grid, warm1, warm2 []float64) bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	s := ws.Cfg.InputSize
	ws.in = tensor.Ensure(ws.in, 1, 2, s, s)
	cold1.ResampleInto(s, s, ws.in.Data[:s*s])
	cold2.ResampleInto(s, s, ws.in.Data[s*s:])
	if ws.frozen == nil {
		ws.frozen = ws.Net.Freeze()
	}
	out := ws.frozen.Forward(ws.in, false)
	for _, v := range out.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	res := grid.Grid{W: s, H: s, Res: 1}
	for i, dst := range [2][]float64{warm1, warm2} {
		cold := cold1
		if i == 1 {
			cold = cold2
		}
		res.Data = out.Data[i*s*s : (i+1)*s*s]
		res.ResampleInto(cold.W, cold.H, dst)
		for j, c := range cold.Data {
			r := dst[j]
			if math.Abs(r) < ws.Cfg.DeadZone {
				r = 0
			}
			dst[j] = math.Min(math.Max(c+r, 0), 1)
		}
	}
	return true
}

// Digest returns the provenance fingerprint of the current architecture and
// weights: the SHA-256 of the serialized checkpoint bytes. Two WarmStarters
// with identical config and parameters share a digest; any retraining
// changes it — the job service folds it into dedupe cache keys.
func (ws *WarmStarter) Digest() string {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	var buf bytes.Buffer
	if err := ws.write(&buf); err != nil {
		// Gob-encoding in-memory plain-data structs cannot fail; treat it
		// as the programming error it would be.
		panic(fmt.Sprintf("model: warm digest: %v", err))
	}
	return artifact.Digest(buf.Bytes())
}

// WarmPair is one training example for the surrogate: the cold
// decomposition mask rasters and the ILT-optimized continuous fields they
// converged to, both resampled to the net's field size.
type WarmPair struct {
	Cold1, Cold2 *grid.Grid
	Opt1, Opt2   *grid.Grid
}

// WarmDataset is a harvested (cold, optimized) mask-pair collection.
type WarmDataset struct {
	// Size is the field edge every grid in Pairs is stored at.
	Size  int
	Pairs []WarmPair
}

// Len returns the pair count.
func (d *WarmDataset) Len() int { return len(d.Pairs) }

// Augmented returns a new dataset containing, for every pair, its eight
// dihedral transforms. As with Dataset.Augmented, the transform is exact:
// the optical kernels are isotropic, so a rotated or mirrored cold mask
// optimizes to the equally transformed field.
func (d *WarmDataset) Augmented() *WarmDataset {
	out := &WarmDataset{Size: d.Size, Pairs: make([]WarmPair, 0, 8*len(d.Pairs))}
	for _, p := range d.Pairs {
		cur := p
		mir := WarmPair{Cold1: p.Cold1.FlipH(), Cold2: p.Cold2.FlipH(), Opt1: p.Opt1.FlipH(), Opt2: p.Opt2.FlipH()}
		for k := 0; k < 4; k++ {
			out.Pairs = append(out.Pairs, cur, mir)
			if k < 3 {
				cur = WarmPair{Cold1: cur.Cold1.Rot90(), Cold2: cur.Cold2.Rot90(), Opt1: cur.Opt1.Rot90(), Opt2: cur.Opt2.Rot90()}
				mir = WarmPair{Cold1: mir.Cold1.Rot90(), Cold2: mir.Cold2.Rot90(), Opt1: mir.Opt1.Rot90(), Opt2: mir.Opt2.Rot90()}
			}
		}
	}
	return out
}

// Sealed-envelope identities of the warm-start artifacts.
const (
	warmKind           = "warmstarter"
	warmVersion        = 1
	warmDatasetKind    = "warm-dataset"
	warmDatasetVersion = 1
)

// SaveWarmDataset seals the harvested pairs into path atomically.
func SaveWarmDataset(ds *WarmDataset, path string) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ds); err != nil {
		return fmt.Errorf("model: encode warm dataset: %w", err)
	}
	return artifact.WriteFile(path, warmDatasetKind, warmDatasetVersion, buf.Bytes())
}

// LoadWarmDataset reads a dataset previously written by SaveWarmDataset.
func LoadWarmDataset(path string) (*WarmDataset, error) {
	payload, err := artifact.ReadFile(path, warmDatasetKind, warmDatasetVersion)
	if err != nil {
		return nil, err
	}
	var ds WarmDataset
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&ds); err != nil {
		return nil, fmt.Errorf("model: decode warm dataset: %w", err)
	}
	return &ds, nil
}

// Save writes architecture and weights to path inside a sealed artifact
// envelope, atomically.
func (ws *WarmStarter) Save(path string) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	var buf bytes.Buffer
	if err := ws.write(&buf); err != nil {
		return err
	}
	return artifact.WriteFile(path, warmKind, warmVersion, buf.Bytes())
}

// Write streams the warm starter to w.
func (ws *WarmStarter) Write(w io.Writer) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.write(w)
}

// write is Write without the lock, for callers that already hold it.
func (ws *WarmStarter) write(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(ws.Cfg); err != nil {
		return fmt.Errorf("model: encode warm config: %w", err)
	}
	return ws.Net.EncodeParams(enc)
}

// LoadWarmStarter reads a warm starter previously written by Save, verifying
// the sealed envelope.
func LoadWarmStarter(path string) (*WarmStarter, error) {
	payload, err := artifact.ReadFile(path, warmKind, warmVersion)
	if err != nil {
		return nil, err
	}
	return ReadWarmStarter(bytes.NewReader(payload))
}

// ReadWarmStarter streams a warm starter from r.
func ReadWarmStarter(r io.Reader) (*WarmStarter, error) {
	dec := gob.NewDecoder(r)
	var cfg WarmConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("model: decode warm config: %w", err)
	}
	ws, err := NewWarmStarter(cfg)
	if err != nil {
		return nil, err
	}
	if err := ws.Net.DecodeParams(dec); err != nil {
		return nil, err
	}
	return ws, nil
}

// WarmTrainConfig controls surrogate training.
type WarmTrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// Log, when non-nil, receives per-epoch progress lines.
	Log io.Writer
}

// DefaultWarmTrainConfig returns settings that fit the default surrogate on
// an augmented few-hundred-pair harvest within CPU-seconds.
func DefaultWarmTrainConfig() WarmTrainConfig {
	return WarmTrainConfig{Epochs: 40, BatchSize: 8, LR: 2e-3, Seed: 1}
}

// Train fits the surrogate on harvested pairs; it is TrainCtx without
// cancellation.
func (ws *WarmStarter) Train(ds *WarmDataset, tc WarmTrainConfig) ([]float64, error) {
	return ws.TrainCtx(context.Background(), ds, tc)
}

// TrainCtx minimizes the MSE between the predicted correction field and the
// harvested residual (optimized - cold) over shuffled mini-batches, with the
// same bounded NaN rollback-and-halve guard as predictor training. It
// returns the mean epoch loss history.
func (ws *WarmStarter) TrainCtx(ctx context.Context, ds *WarmDataset, tc WarmTrainConfig) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("model: empty warm training set")
	}
	if tc.Epochs <= 0 || tc.BatchSize <= 0 || tc.LR <= 0 {
		return nil, fmt.Errorf("model: invalid warm train config %+v", tc)
	}
	if ds.Size != ws.Cfg.InputSize {
		return nil, fmt.Errorf("model: warm dataset field size %d != net input size %d", ds.Size, ws.Cfg.InputSize)
	}
	ws.mu.Lock()
	defer ws.mu.Unlock()
	// Training rewrites the canonical weights; the folded replica is stale.
	ws.frozen = nil

	s := ws.Cfg.InputSize
	loss := &nn.MSE{}
	adam := nn.NewAdam(tc.LR)
	rng := rand.New(rand.NewSource(tc.Seed))
	order := rng.Perm(ds.Len())
	params := ws.Net.Params()
	snap := nn.NewParamSnapshot(params)
	const maxNaNRetries = 3
	history := make([]float64, 0, tc.Epochs)
	for epoch := 0; epoch < tc.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		batches := 0
		for start := 0; start < len(order); start += tc.BatchSize {
			if err := ctx.Err(); err != nil {
				return history, fmt.Errorf("model: warm training interrupted in epoch %d: %w", epoch+1, err)
			}
			end := min(start+tc.BatchSize, len(order))
			idx := order[start:end]
			x := tensor.New(len(idx), 2, s, s)
			target := tensor.New(len(idx), 2, s, s)
			for i, j := range idx {
				p := ds.Pairs[j]
				base := i * 2 * s * s
				copy(x.Data[base:base+s*s], p.Cold1.Data)
				copy(x.Data[base+s*s:base+2*s*s], p.Cold2.Data)
				for k := 0; k < s*s; k++ {
					target.Data[base+k] = p.Opt1.Data[k] - p.Cold1.Data[k]
					target.Data[base+s*s+k] = p.Opt2.Data[k] - p.Cold2.Data[k]
				}
			}
			var l float64
			for retry := 0; ; retry++ {
				snap.Save(params)
				pred := ws.Net.Forward(x, true)
				var grad *tensor.Tensor
				l, grad = loss.Eval(pred, target)
				nn.ZeroGrads(params)
				ws.Net.Backward(grad)
				if !math.IsNaN(l) && !math.IsInf(l, 0) && nn.GradsFinite(params) {
					adam.Step(params)
					break
				}
				snap.Restore(params)
				if retry+1 >= maxNaNRetries {
					return history, &runx.NumericalError{
						Op: "model.WarmStarter.TrainCtx",
						Detail: fmt.Sprintf("non-finite loss/gradient at epoch %d batch %d persisted through %d rollbacks with LR backoff (final LR %g)",
							epoch+1, batches+1, maxNaNRetries, adam.LR),
					}
				}
				adam.LR /= 2
				if tc.Log != nil {
					fmt.Fprintf(tc.Log, "model: warm non-finite loss/gradient at epoch %d batch %d — rolled back, LR halved to %g\n",
						epoch+1, batches+1, adam.LR)
				}
			}
			epochLoss += l
			batches++
		}
		epochLoss /= float64(batches)
		history = append(history, epochLoss)
		if tc.Log != nil {
			fmt.Fprintf(tc.Log, "warm epoch %3d/%d  loss %.5f\n", epoch+1, tc.Epochs, epochLoss)
		}
	}
	return history, nil
}
