package model

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"ldmo/internal/nn"
)

// trainCheckpoint is the persisted training trajectory at an epoch boundary.
// Seed and Samples key the checkpoint to its run so a stale file (different
// dataset or config) is rejected instead of silently resuming the wrong
// training. The network parameters — including the BatchNorm running stats,
// which live in Params() as NoGrad entries — follow the header in the same
// gob stream.
type trainCheckpoint struct {
	Seed    int64
	Samples int
	Epoch   int
	History []float64
	Adam    nn.AdamState
}

// saveTrainCheckpoint atomically persists the training state: temp file in
// the target directory, fsync, rename. A crash mid-write leaves the previous
// checkpoint intact.
func saveTrainCheckpoint(path string, net *nn.Network, cp trainCheckpoint) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("model: checkpoint dir: %w", err)
	}
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("model: checkpoint temp: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("model: write checkpoint: %w", err)
	}
	enc := gob.NewEncoder(f)
	if err := enc.Encode(cp); err != nil {
		return fail(err)
	}
	if err := net.EncodeParams(enc); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("model: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("model: commit checkpoint: %w", err)
	}
	return nil
}

// loadTrainCheckpoint restores a checkpoint into net when path exists. ok is
// false when there is nothing to resume from; a checkpoint recorded for a
// different seed or dataset size is an error.
func loadTrainCheckpoint(path string, net *nn.Network, seed int64, samples int) (trainCheckpoint, bool, error) {
	f, err := os.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return trainCheckpoint{}, false, nil
	}
	if err != nil {
		return trainCheckpoint{}, false, fmt.Errorf("model: read checkpoint: %w", err)
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var cp trainCheckpoint
	if err := dec.Decode(&cp); err != nil {
		return trainCheckpoint{}, false, fmt.Errorf("model: decode checkpoint: %w", err)
	}
	if cp.Seed != seed || cp.Samples != samples {
		return trainCheckpoint{}, false, fmt.Errorf(
			"model: checkpoint %s was written for seed %d over %d samples, run has seed %d over %d — stale checkpoint?",
			path, cp.Seed, cp.Samples, seed, samples)
	}
	if err := net.DecodeParams(dec); err != nil {
		return trainCheckpoint{}, false, fmt.Errorf("model: checkpoint weights: %w", err)
	}
	return cp, true, nil
}
