package model

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"ldmo/internal/artifact"
	"ldmo/internal/nn"
)

// Sealed-envelope identity of a training checkpoint. The schema version is
// bumped whenever trainCheckpoint or the nn parameter wire format changes
// incompatibly; older files are then rejected with ErrVersionMismatch
// instead of being misdecoded.
const (
	trainCheckpointKind    = "train-checkpoint"
	trainCheckpointVersion = 1
	// prevSuffix names the retained previous-epoch checkpoint. Keeping the
	// last two means a corrupt (or torn, on non-atomic filesystems) latest
	// checkpoint costs one checkpoint interval of work, not the whole run.
	prevSuffix = ".prev"
)

// trainCheckpoint is the persisted training trajectory at an epoch boundary.
// Seed and Samples key the checkpoint to its run so a stale file (different
// dataset or config) is rejected instead of silently resuming the wrong
// training. The network parameters — including the BatchNorm running stats,
// which live in Params() as NoGrad entries — follow the header in the same
// gob stream.
type trainCheckpoint struct {
	Seed    int64
	Samples int
	Epoch   int
	History []float64
	Adam    nn.AdamState
}

// saveTrainCheckpoint persists the training state inside a sealed artifact
// envelope, atomically, demoting the existing checkpoint to path+".prev"
// first. A crash mid-write leaves the previous checkpoint intact; identical
// state always produces identical file bytes (gob type IDs are pinned at
// init via artifact.StabilizeGob).
func saveTrainCheckpoint(path string, net *nn.Network, cp trainCheckpoint) error {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(cp); err != nil {
		return fmt.Errorf("model: encode checkpoint: %w", err)
	}
	if err := net.EncodeParams(enc); err != nil {
		return fmt.Errorf("model: encode checkpoint weights: %w", err)
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+prevSuffix); err != nil {
			return fmt.Errorf("model: rotate checkpoint: %w", err)
		}
	}
	if err := artifact.WriteFile(path, trainCheckpointKind, trainCheckpointVersion, buf.Bytes()); err != nil {
		return fmt.Errorf("model: write checkpoint: %w", err)
	}
	return nil
}

// loadTrainCheckpoint restores a checkpoint into net, trying path first and
// the retained path+".prev" second. ok is false when there is nothing to
// resume from. A rejected envelope (bit flip, truncation, version skew,
// wrong kind) is quarantined to *.quarantined with a log line saying exactly
// what was discarded and why, and the previous checkpoint takes over; a
// checkpoint recorded for a different seed or dataset size is a hard error
// (it belongs to another run — recovery would train the wrong model).
func loadTrainCheckpoint(path string, net *nn.Network, seed int64, samples int, log io.Writer) (trainCheckpoint, bool, error) {
	for _, p := range []string{path, path + prevSuffix} {
		cp, ok, err := loadSealedCheckpoint(p, net, seed, samples)
		if err == nil {
			if ok {
				return cp, true, nil
			}
			continue // absent; fall through to the previous checkpoint
		}
		if artifact.Rejected(err) {
			q, qerr := artifact.Quarantine(p)
			if qerr != nil {
				return trainCheckpoint{}, false, fmt.Errorf("model: checkpoint %s rejected (%v) and not quarantinable: %w", p, err, qerr)
			}
			if log != nil {
				fmt.Fprintf(log, "model: discarding checkpoint %s (%v); quarantined to %s\n", p, err, q)
			}
			continue
		}
		return trainCheckpoint{}, false, err
	}
	return trainCheckpoint{}, false, nil
}

// loadSealedCheckpoint unseals and decodes one checkpoint file. ok is false
// when the file does not exist.
func loadSealedCheckpoint(path string, net *nn.Network, seed int64, samples int) (trainCheckpoint, bool, error) {
	payload, err := artifact.ReadFile(path, trainCheckpointKind, trainCheckpointVersion)
	if errors.Is(err, fs.ErrNotExist) {
		return trainCheckpoint{}, false, nil
	}
	if err != nil {
		return trainCheckpoint{}, false, err
	}
	dec := gob.NewDecoder(bytes.NewReader(payload))
	var cp trainCheckpoint
	if err := dec.Decode(&cp); err != nil {
		// The envelope checksum passed, so this is schema drift the version
		// field failed to capture — reject it as corrupt so it quarantines.
		return trainCheckpoint{}, false, fmt.Errorf("model: checkpoint %s undecodable (%v): %w", path, err, artifact.ErrCorrupt)
	}
	if cp.Seed != seed || cp.Samples != samples {
		return trainCheckpoint{}, false, fmt.Errorf(
			"model: checkpoint %s was written for seed %d over %d samples, run has seed %d over %d — stale checkpoint?",
			path, cp.Seed, cp.Samples, seed, samples)
	}
	if err := net.DecodeParams(dec); err != nil {
		return trainCheckpoint{}, false, fmt.Errorf("model: checkpoint %s weights undecodable (%v): %w", path, err, artifact.ErrCorrupt)
	}
	return cp, true, nil
}

// CheckpointStatus classifies what a resume would find at path, for CLIs
// that want to warn before silently starting from scratch: "" when a
// resumable checkpoint (or its retained predecessor) is present, otherwise a
// short human-readable reason ("absent", "empty", "unreadable: ...").
func CheckpointStatus(path string) string {
	reason := "absent"
	for _, p := range []string{path, path + prevSuffix} {
		fi, err := os.Stat(p)
		switch {
		case err == nil && fi.Size() > 0:
			return ""
		case err == nil:
			reason = "empty"
		case !errors.Is(err, fs.ErrNotExist):
			reason = fmt.Sprintf("unreadable: %v", err)
		}
	}
	return reason
}
