package model

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// batchPollCtx cancels deterministically: Err() starts failing after `allow`
// calls. TrainCtx polls once per batch, so the cut lands at an exact batch.
type batchPollCtx struct {
	context.Context
	allow int
	polls int
}

func (c *batchPollCtx) Err() error {
	c.polls++
	if c.polls > c.allow {
		return context.Canceled
	}
	return nil
}

func trainCfg(ckpt string) TrainConfig {
	return TrainConfig{
		Epochs:      6,
		BatchSize:   8,
		LR:          1e-3,
		DecayAt:     3,
		DecayFactor: 0.5,
		Seed:        7,
		Checkpoint:  ckpt,
	}
}

func weightsOf(t *testing.T, p *Predictor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTrainCtxResumeBitIdentical is the acceptance test for training resume:
// interrupt a checkpointed run mid-epoch, resume it, and require the final
// weights and loss history to match an uninterrupted run bit for bit. The
// decay epoch (3) sits beyond the interrupt so the decayed learning rate
// must survive the round trip through the checkpoint.
func TestTrainCtxResumeBitIdentical(t *testing.T) {
	ds := syntheticDataset(24, 3) // 3 batches per epoch at BatchSize 8

	clean, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	wantHist, err := clean.Train(ds, trainCfg(""))
	if err != nil {
		t.Fatal(err)
	}
	want := weightsOf(t, clean)

	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	interrupted, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 3 polls per epoch; allow 2 full epochs plus one batch, so the cut is
	// mid-epoch-3 and the on-disk state is the epoch-2 boundary.
	ctx := &batchPollCtx{Context: context.Background(), allow: 2*3 + 1}
	hist, err := interrupted.TrainCtx(ctx, ds, trainCfg(ckpt))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted training returned %v, want Canceled", err)
	}
	if len(hist) != 2 {
		t.Fatalf("interrupted history has %d epochs, want the 2 completed ones", len(hist))
	}

	resumed, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	tc := trainCfg(ckpt)
	tc.Log = &log
	gotHist, err := resumed.TrainCtx(context.Background(), ds, tc)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !strings.Contains(log.String(), "resuming from") {
		t.Fatalf("resume did not report itself:\n%s", log.String())
	}
	if len(gotHist) != len(wantHist) {
		t.Fatalf("resumed history has %d epochs, want %d", len(gotHist), len(wantHist))
	}
	for i := range wantHist {
		if gotHist[i] != wantHist[i] {
			t.Fatalf("epoch %d loss %v differs from uninterrupted %v", i+1, gotHist[i], wantHist[i])
		}
	}
	if got := weightsOf(t, resumed); !bytes.Equal(got, want) {
		t.Fatal("resumed weights differ from the uninterrupted run")
	}
}

// TestTrainCtxFreshCheckpointPathTrains: a checkpoint path that does not
// exist yet must not disturb a clean run, and the final checkpoint must load
// back into an identical predictor.
func TestTrainCtxFreshCheckpointPathTrains(t *testing.T) {
	ds := syntheticDataset(16, 5)
	ckpt := filepath.Join(t.TempDir(), "sub", "train.ckpt")
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tc := trainCfg(ckpt)
	tc.Epochs = 2
	if _, err := p.TrainCtx(context.Background(), ds, tc); err != nil {
		t.Fatal(err)
	}
	// Immediately resuming a finished run is a no-op with identical weights.
	q, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.TrainCtx(context.Background(), ds, tc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(weightsOf(t, p), weightsOf(t, q)) {
		t.Fatal("no-op resume changed the weights")
	}
}

// TestTrainCtxStaleCheckpointRejected: a checkpoint from a different run
// (other seed) must fail loudly, not silently poison the weights.
func TestTrainCtxStaleCheckpointRejected(t *testing.T) {
	ds := syntheticDataset(16, 5)
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tc := trainCfg(ckpt)
	tc.Epochs = 1
	if _, err := p.TrainCtx(context.Background(), ds, tc); err != nil {
		t.Fatal(err)
	}
	tc.Seed++
	if _, err := p.TrainCtx(context.Background(), ds, tc); err == nil {
		t.Fatal("stale checkpoint must be rejected")
	} else if !strings.Contains(err.Error(), "stale checkpoint") {
		t.Fatalf("unexpected stale error: %v", err)
	}
}
