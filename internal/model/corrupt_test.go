package model

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ldmo/internal/artifact"
	"ldmo/internal/faultinject"
)

// TestTrainCheckpointFileBytesIdentical: identical training state must seal
// to identical checkpoint files — not just decode-equal payloads. The gob
// type IDs are pinned at init (artifact.StabilizeGob), so the bytes are a
// pure function of the state regardless of what else the process encoded
// first. An interrupted-and-resumed run therefore finishes with checkpoint
// files byte-for-byte equal to an uninterrupted run's.
func TestTrainCheckpointFileBytesIdentical(t *testing.T) {
	ds := syntheticDataset(24, 3)
	dir := t.TempDir()

	cleanCkpt := filepath.Join(dir, "clean.ckpt")
	clean, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.TrainCtx(context.Background(), ds, trainCfg(cleanCkpt)); err != nil {
		t.Fatal(err)
	}

	resCkpt := filepath.Join(dir, "resumed.ckpt")
	interrupted, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx := &batchPollCtx{Context: context.Background(), allow: 2*3 + 1}
	if _, err := interrupted.TrainCtx(ctx, ds, trainCfg(resCkpt)); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted training returned %v, want Canceled", err)
	}
	resumed, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := resumed.TrainCtx(context.Background(), ds, trainCfg(resCkpt)); err != nil {
		t.Fatal(err)
	}

	for _, suffix := range []string{"", prevSuffix} {
		want, err := os.ReadFile(cleanCkpt + suffix)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(resCkpt + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("checkpoint%s file bytes differ between clean and resumed runs", suffix)
		}
	}
}

// seedCheckpointPair trains long enough to leave both the latest checkpoint
// and its retained predecessor on disk, returning the checkpoint path and the
// reference weights of a full uninterrupted run.
func seedCheckpointPair(t *testing.T, ds *Dataset, dir string) (string, []byte) {
	t.Helper()
	clean, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := clean.TrainCtx(context.Background(), ds, trainCfg("")); err != nil {
		t.Fatal(err)
	}
	want := weightsOf(t, clean)

	ckpt := filepath.Join(dir, "train.ckpt")
	partial, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	tc := trainCfg(ckpt)
	tc.Epochs = 3 // checkpoints at 1..3, so .prev holds epoch 2
	if _, err := partial.TrainCtx(context.Background(), ds, tc); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt + prevSuffix); err != nil {
		t.Fatalf("previous checkpoint not retained: %v", err)
	}
	return ckpt, want
}

// resumeFull resumes training over the (possibly damaged) checkpoint at ckpt
// for the full schedule and returns the final weights and the log.
func resumeFull(t *testing.T, ds *Dataset, ckpt string) ([]byte, string) {
	t.Helper()
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	tc := trainCfg(ckpt)
	tc.Log = &log
	if _, err := p.TrainCtx(context.Background(), ds, tc); err != nil {
		t.Fatalf("resume over damaged checkpoint failed: %v\nlog:\n%s", err, log.String())
	}
	return weightsOf(t, p), log.String()
}

// TestTrainCheckpointBitflipFallsBackToPrev: a bit-flipped latest checkpoint
// must be quarantined with a log line naming the file and the reason, the
// retained previous checkpoint must take over, and the resumed run must still
// finish bit-identical to an uninterrupted one.
func TestTrainCheckpointBitflipFallsBackToPrev(t *testing.T) {
	defer faultinject.Reset()
	ds := syntheticDataset(24, 3)
	ckpt, want := seedCheckpointPair(t, ds, t.TempDir())

	// One-shot: fires on the first matching read (the latest checkpoint),
	// disarms, and the .prev read goes through clean.
	faultinject.Set(faultinject.ArtifactBitflip, "train.ckpt")
	got, log := resumeFull(t, ds, ckpt)

	if !strings.Contains(log, "discarding checkpoint "+ckpt) || !strings.Contains(log, "quarantined to") {
		t.Fatalf("quarantine not reported:\n%s", log)
	}
	if !strings.Contains(log, "resuming from "+ckpt+" at epoch 2/") {
		t.Fatalf("did not resume from the epoch-2 previous checkpoint:\n%s", log)
	}
	if _, err := os.Stat(ckpt + artifact.QuarantineSuffix); err != nil {
		t.Fatalf("corrupt checkpoint not quarantined: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fallback resume diverged from the uninterrupted run")
	}
}

// TestTrainCheckpointTruncateFallsBackToPrev: same ladder for a torn write
// surviving on disk — the truncated latest checkpoint is quarantined and the
// previous one takes over.
func TestTrainCheckpointTruncateFallsBackToPrev(t *testing.T) {
	defer faultinject.Reset()
	ds := syntheticDataset(24, 3)
	ckpt, want := seedCheckpointPair(t, ds, t.TempDir())

	faultinject.Set(faultinject.ArtifactTruncate, "train.ckpt")
	got, log := resumeFull(t, ds, ckpt)

	if !strings.Contains(log, "discarding checkpoint "+ckpt) {
		t.Fatalf("quarantine not reported:\n%s", log)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fallback resume diverged from the uninterrupted run")
	}
}

// TestTrainCheckpointBothCorruptStartsFresh: when the latest checkpoint AND
// its retained predecessor are both rotten, training must quarantine both,
// say so, and start from scratch — finishing identical to a clean run rather
// than dying or resuming poisoned state.
func TestTrainCheckpointBothCorruptStartsFresh(t *testing.T) {
	ds := syntheticDataset(24, 3)
	ckpt, want := seedCheckpointPair(t, ds, t.TempDir())

	for _, p := range []string{ckpt, ckpt + prevSuffix} {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-1] ^= 0xFF
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	got, log := resumeFull(t, ds, ckpt)
	if !strings.Contains(log, "discarding checkpoint "+ckpt+" (") ||
		!strings.Contains(log, "discarding checkpoint "+ckpt+prevSuffix) {
		t.Fatalf("expected both checkpoints discarded:\n%s", log)
	}
	if strings.Contains(log, "resuming from") {
		t.Fatalf("resumed from a corrupt checkpoint:\n%s", log)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("fresh restart diverged from the clean run")
	}
}

// TestTrainCheckpointVersionSkewQuarantined: a checkpoint sealed under a
// different payload schema version must be rejected as a version mismatch and
// quarantined, not misdecoded.
func TestTrainCheckpointVersionSkewQuarantined(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	if err := artifact.WriteFile(ckpt, trainCheckpointKind, trainCheckpointVersion+1, []byte("future payload")); err != nil {
		t.Fatal(err)
	}
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	cp, ok, err := loadTrainCheckpoint(ckpt, p.Net, 7, 24, &log)
	if err != nil || ok {
		t.Fatalf("skewed checkpoint: got (%+v, %v, %v), want quiet fresh start", cp, ok, err)
	}
	if !strings.Contains(log.String(), "version") {
		t.Fatalf("discard reason does not mention the version: %s", log.String())
	}
	if _, err := os.Stat(ckpt + artifact.QuarantineSuffix); err != nil {
		t.Fatalf("skewed checkpoint not quarantined: %v", err)
	}
}

// TestTrainCheckpointWrongKindQuarantined: an envelope of a different payload
// kind at the checkpoint path (a dataset shard copied over it, say) must be
// rejected and quarantined the same way.
func TestTrainCheckpointWrongKindQuarantined(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "train.ckpt")
	if err := artifact.WriteFile(ckpt, "dataset-shard", trainCheckpointVersion, []byte("not a checkpoint")); err != nil {
		t.Fatal(err)
	}
	p, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	cp, ok, err := loadTrainCheckpoint(ckpt, p.Net, 7, 24, &log)
	if err != nil || ok {
		t.Fatalf("wrong-kind checkpoint: got (%+v, %v, %v), want quiet fresh start", cp, ok, err)
	}
	if !strings.Contains(log.String(), "kind") {
		t.Fatalf("discard reason does not mention the kind: %s", log.String())
	}
	if _, err := os.Stat(ckpt + artifact.QuarantineSuffix); err != nil {
		t.Fatalf("wrong-kind checkpoint not quarantined: %v", err)
	}
}

// TestCheckpointStatus covers the CLI warning classifier.
func TestCheckpointStatus(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "train.ckpt")
	if got := CheckpointStatus(ckpt); got != "absent" {
		t.Fatalf("missing checkpoint status = %q, want absent", got)
	}
	if err := os.WriteFile(ckpt, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := CheckpointStatus(ckpt); got != "empty" {
		t.Fatalf("empty checkpoint status = %q, want empty", got)
	}
	if err := os.WriteFile(ckpt, []byte("something"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := CheckpointStatus(ckpt); got != "" {
		t.Fatalf("present checkpoint status = %q, want resumable", got)
	}
}
